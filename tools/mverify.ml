(* mverify: run the static mcode verifier over assembly files, or over
   every standard mroutine program with --progs (the CI gate).

   Usage:
     mverify [--palcode] [--quiet] FILE.s ...
     mverify [--palcode] [--quiet] --progs

   Exit status 0 when every image verifies with no errors (warnings
   are reported but do not fail), 1 otherwise. *)

module V = Metal_mverify.Mverify
module P = Metal_progs

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The standard mroutine programs, under representative configs. *)
let progs () =
  [ ("privilege",
     P.Privilege.mcode
       { P.Privilege.syscall_table = 0x2000; nsyscalls = 1; kernel_pkeys = 0;
         user_pkeys = 0; fault_entry = 0x3F00 });
    ("pagetable", P.Pagetable.mcode { P.Pagetable.os_fault_entry = 0 });
    ("vmm",
     P.Vmm.mcode
       { P.Vmm.guest_base = 0x10000; guest_size = 0x8000;
         vmm_fault_entry = 0x700 });
    ("capability", P.Capability.mcode ());
    ("enclave", P.Enclave.mcode ());
    ("isolation", P.Isolation.mcode ());
    ("nested", P.Nested.mcode ());
    ("shadowstack", P.Shadowstack.mcode ());
    ("stm", P.Stm.mcode ());
    ("uintr", P.Uintr.mcode ()) ]

let check ~config ~quiet (name, src) =
  match Metal_asm.Asm.assemble src with
  | Error e ->
    Printf.printf "%-12s ASSEMBLY FAILED: %s\n" name
      (Metal_asm.Asm.error_to_string e);
    false
  | Ok img ->
    let r = V.verify ~config img in
    let errs = List.length (V.errors r)
    and warns = List.length (V.warnings r) in
    Printf.printf "%-12s %s (%d entries, %d errors, %d warnings%s)\n" name
      (if V.ok r then "ok" else "FAILED")
      (List.length r.V.entries) errs warns
      (match V.interrupt_latency_bound r with
       | Some b -> Printf.sprintf ", interrupt-latency bound %d cycles" b
       | None -> "");
    if not quiet then
      List.iter
        (fun f -> Printf.printf "  %s\n" (V.finding_to_string f))
        r.V.findings;
    V.ok r

let () =
  let palcode = ref false
  and quiet = ref false
  and use_progs = ref false
  and files = ref [] in
  Arg.parse
    [ ("--palcode", Arg.Set palcode,
       " verify against the PALcode-like configuration");
      ("--quiet", Arg.Set quiet, " only print the per-image summary line");
      ("--progs", Arg.Set use_progs,
       " verify every standard mroutine program (lib/progs)") ]
    (fun f -> files := f :: !files)
    "mverify [--palcode] [--quiet] FILE.s ... | --progs";
  let config =
    if !palcode then Metal_cpu.Config.palcode else Metal_cpu.Config.default
  in
  let images =
    (if !use_progs then progs () else [])
    @ List.rev_map (fun f -> (Filename.basename f, read_file f)) !files
  in
  if images = [] then begin
    prerr_endline "mverify: nothing to verify (give FILE.s or --progs)";
    exit 2
  end;
  let ok =
    List.fold_left
      (fun acc img -> check ~config ~quiet:!quiet img && acc)
      true images
  in
  exit (if ok then 0 else 1)
