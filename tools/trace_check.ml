(* trace-check: CI validator for observability artifacts.

   [trace_check chrome FILE]
     FILE must be a Chrome trace_event JSON document: a top-level
     object with a [traceEvents] array in which every non-metadata
     event carries numeric [tid]/[ts] and timestamps are monotone per
     track (the exporter writes events in recording order, so any
     regression here is a sort bug, not a rendering choice).

   [trace_check metrics FILE]
     FILE must be a [--metrics-out] document (schema
     [metal-metrics-v1]): numeric mode-split counters, event and stall
     count objects, and a well-formed mroutine latency table whose
     per-entry histogram sums match the entry's call count.

   [trace_check profile MERGED FILE...]
     All files are [--profile-out] documents (schema
     [metal-profile-v1]).  Each must be internally consistent:
     [total_cycles = other_cycles + sum of flat cycles], and the
     call-graph rows must account for the same cycles as the flat
     histogram.  When per-job FILEs are given, merging them in
     argument order must reproduce MERGED byte-for-byte — the fleet
     merge is deterministic, so any divergence is a merge bug.

   [trace_check bench BASELINE FRESH [--tolerance PCT]]
     Both files are [bench simperf --json] outputs
     (BENCH_sim_throughput.json schema).  Every workload present in
     BASELINE must also be in FRESH, and FRESH's tracing-disabled
     throughput must not fall more than PCT percent (default 20) below
     the committed baseline — the disabled probe is one load-and-branch
     per would-be event, so a bigger drop means the instrumentation
     leaked into the hot path.  Speedups always pass.

   [trace_check inject FILE]
     FILE is a fault-injection verdict document ([mrun --inject-out],
     schema [metal-inject-v1]) or the bench wrapper
     ([BENCH_inject.json], schema [metal-inject-bench-v1] with a
     [campaigns] array).  Each campaign must have exactly [runs]
     records, summary and per-class verdict counts that recount the
     records, and [events = applied] on every record (each applied
     fault appears exactly once in the probe's event stream).

   [trace_check telemetry MERGED FILE...]
     All files are [--telemetry-out] ndjson documents (schema
     [metal-telemetry-v1]).  Each must be internally consistent: the
     header totals must be the sums (max, for [mroutine_max]) of the
     per-window rows, [total_cycles] must equal the [machine_cycles]
     annotation when one is present (the windows account for every
     pipeline cycle), [machine_cycles] must equal [accounted_cycles]
     when both are present, and re-rendering the parsed series must
     reproduce the file byte-for-byte (the format is canonical).  When
     per-job FILEs are given, merging them in argument order must
     reproduce MERGED exactly — the fleet merge is deterministic. *)

module Json = Metal_trace.Json

let failf fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let parse_file path =
  match Json.parse_file path with
  | Ok j -> j
  | Error e -> failf "%s: %s" path e

let str_field name j = Option.bind (Json.member name j) Json.to_string
let num_field name j = Option.bind (Json.member name j) Json.to_num

let check_chrome path =
  let j = parse_file path in
  let events =
    match Json.member "traceEvents" j with
    | Some a ->
      let l = Json.to_list a in
      if l = [] then failf "%s: traceEvents is not a non-empty array" path;
      l
    | None -> failf "%s: no traceEvents field" path
  in
  let last = Hashtbl.create 8 in
  let timed = ref 0 in
  List.iteri
    (fun i ev ->
       match str_field "ph" ev with
       | None -> failf "%s: event %d has no phase" path i
       | Some "M" -> ()  (* metadata records carry no timestamp *)
       | Some _ ->
         incr timed;
         let tid =
           match num_field "tid" ev with
           | Some t -> int_of_float t
           | None -> failf "%s: event %d has no numeric tid" path i
         and ts =
           match num_field "ts" ev with
           | Some t -> t
           | None -> failf "%s: event %d has no numeric ts" path i
         in
         (match Hashtbl.find_opt last tid with
          | Some prev when ts < prev ->
            failf "%s: event %d: tid %d goes back in time (%.0f after %.0f)"
              path i tid ts prev
          | _ -> ());
         Hashtbl.replace last tid ts)
    events;
  Printf.printf "%s: ok (%d events, %d tracks, timestamps monotone)\n" path
    !timed (Hashtbl.length last)

(* ------------------------------------------------------------------ *)
(* Metrics JSON                                                        *)

let require_schema path tag j =
  match str_field "schema" j with
  | Some s when s = tag -> ()
  | Some s -> failf "%s: schema %S, expected %S" path s tag
  | None -> failf "%s: no schema field" path

let int_field path name j =
  match num_field name j with
  | Some n -> int_of_float n
  | None -> failf "%s: no numeric %s field" path name

let count_object path name j =
  match Json.member name j with
  | Some (Json.Obj kvs) ->
    List.map
      (fun (k, v) ->
         match Json.to_num v with
         | Some n -> (k, int_of_float n)
         | None -> failf "%s: %s.%s is not a number" path name k)
      kvs
  | Some _ -> failf "%s: %s is not an object" path name
  | None -> failf "%s: no %s field" path name

let check_metrics path =
  let j = parse_file path in
  require_schema path "metal-metrics-v1" j;
  List.iter
    (fun f -> ignore (int_field path f j))
    [ "user_cycles"; "metal_cycles"; "user_instructions";
      "metal_instructions"; "ecc_corrections"; "injections";
      "events_recorded"; "events_dropped"; "dropped_entries" ];
  let events = count_object path "events" j in
  (* The dedicated counters are derived from the same stream as the
     per-kind event table; a mismatch means the collector double-books. *)
  let event_count kind =
    match List.assoc_opt kind events with Some n -> n | None -> 0
  in
  List.iter
    (fun (field, kind) ->
       let claimed = int_field path field j in
       if claimed <> event_count kind then
         failf "%s: %s claims %d, events.%s says %d" path field claimed kind
           (event_count kind))
    [ ("ecc_corrections", "ecc_correct"); ("injections", "inject") ];
  ignore (count_object path "stall_cycles" j);
  let mroutines =
    match Json.member "mroutines" j with
    | Some a -> Json.to_list a
    | None -> failf "%s: no mroutines array" path
  in
  List.iter
    (fun m ->
       let entry = int_field path "entry" m in
       let count = int_field path "count" m in
       let lats =
         match Json.member "latencies" m with
         | Some a -> Json.to_list a
         | None -> failf "%s: mroutine %d has no latencies" path entry
       in
       let histogram_total =
         List.fold_left
           (fun acc pair ->
              match List.map Json.to_num (Json.to_list pair) with
              | [ Some _; Some n ] -> acc + int_of_float n
              | _ -> failf "%s: mroutine %d: malformed latency pair" path entry)
           0 lats
       in
       if histogram_total <> count then
         failf "%s: mroutine %d: latency histogram sums to %d, count is %d"
           path entry histogram_total count)
    mroutines;
  (* Optional host-side stepper cache counters (predecode + block
     cache, [Machine.cache_counters]).  They live outside the
     event-derived record, so all we require is shape: an object of
     non-negative integers. *)
  let caches =
    match Json.member "caches" j with
    | None -> []
    | Some _ ->
      let l = count_object path "caches" j in
      List.iter
        (fun (k, v) ->
           if v < 0 then failf "%s: caches.%s is negative (%d)" path k v)
        l;
      l
  in
  Printf.printf "%s: ok (%d event kinds, %d mroutines%s)\n" path
    (List.length events) (List.length mroutines)
    (if caches = [] then ""
     else Printf.sprintf ", %d cache counters" (List.length caches))

(* ------------------------------------------------------------------ *)
(* Profile JSON                                                        *)

module Report = Metal_profile.Profile.Report

let read_raw path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_profile path =
  let j = parse_file path in
  require_schema path "metal-profile-v1" j;
  match Report.of_json j with
  | Ok r -> r
  | Error e -> failf "%s: %s" path e

let check_profile_consistent path (r : Report.t) =
  let flat_cycles =
    List.fold_left (fun acc (f : Report.flat_row) -> acc + f.cycles) 0 r.flat
  and stack_cycles =
    List.fold_left (fun acc (s : Report.stack_row) -> acc + s.cycles) 0
      r.stacks
  in
  if r.total_cycles <> r.other_cycles + flat_cycles then
    failf "%s: total_cycles %d <> other %d + flat %d" path r.total_cycles
      r.other_cycles flat_cycles;
  if stack_cycles <> flat_cycles then
    failf "%s: call-graph accounts for %d cycles, flat histogram for %d"
      path stack_cycles flat_cycles;
  List.iter
    (fun (s : Report.stack_row) ->
       List.iter
         (fun key ->
            if not (List.mem_assoc key r.names) then
              failf "%s: stack key %d has no symbolized name" path key)
         s.stack)
    r.stacks

let check_profile merged parts =
  let m = load_profile merged in
  check_profile_consistent merged m;
  let reports = List.map load_profile parts in
  List.iter2 check_profile_consistent parts reports;
  if parts <> [] then begin
    let remerged =
      List.fold_left Report.merge Report.empty reports
    in
    if Report.to_json remerged <> read_raw merged then
      failf
        "%s: merging %d per-job profiles in index order does not \
         reproduce the merged artifact — fleet merge is non-deterministic"
        merged (List.length parts)
  end;
  Printf.printf
    "%s: ok (%d cycles, %d hot PCs, %d stacks%s)\n" merged m.total_cycles
    (List.length m.flat) (List.length m.stacks)
    (if parts = [] then ""
     else Printf.sprintf ", merge of %d reproduced" (List.length parts))

let workloads j =
  match Json.member "workloads" j with
  | Some a -> Json.to_list a
  | None -> failf "bench JSON has no workloads array"

(* Committed throughput per workload: the block stepper when the
   artifact has it (current schema), else the predecode stepper (the
   pre-block-cache artifacts stay checkable). *)
let workload_ips j =
  match Option.bind (Json.member "blocks_on" j) (num_field "ips") with
  | Some ips -> ips
  | None ->
    (match Option.bind (Json.member "predecode_on" j) (num_field "ips") with
     | Some ips -> ips
     | None -> failf "bench workload has no blocks_on.ips or predecode_on.ips")

let check_bench baseline fresh tolerance =
  let base = parse_file baseline and now = parse_file fresh in
  let fresh_by_name =
    List.filter_map
      (fun w -> Option.map (fun n -> (n, w)) (str_field "name" w))
      (workloads now)
  in
  let floor = 1.0 -. (tolerance /. 100.0) in
  List.iter
    (fun w ->
       let name =
         match str_field "name" w with
         | Some n -> n
         | None -> failf "%s: workload without a name" baseline
       in
       match List.assoc_opt name fresh_by_name with
       | None -> failf "%s: workload %s missing from %s" baseline name fresh
       | Some w' ->
         let ratio = workload_ips w' /. workload_ips w in
         Printf.printf "%-20s %6.2fx of committed throughput\n" name ratio;
         if ratio < floor then
           failf
             "%s: %.1f%% below the committed baseline (tolerance %.0f%%) — \
              the disabled probe is leaking into the hot path"
             name
             ((1.0 -. ratio) *. 100.0)
             tolerance)
    (workloads base);
  (* The block stepper exists to beat the per-cycle stepper; a fresh
     run whose blocks-over-predecode geomean dips below 1.0 means the
     block cache lost its reason to exist (bails dominating, or an
     engage-path regression), so that is a hard failure regardless of
     the noise tolerance above. *)
  match num_field "geomean_blocks_speedup" now with
  | None -> ()
  | Some g ->
    Printf.printf "geomean blocks/predecode %.2fx\n" g;
    if g < 1.0 then
      failf
        "%s: blocks-on geomean %.2fx is below predecode-on — the block \
         cache is a net loss on this host"
        fresh g

(* ------------------------------------------------------------------ *)
(* Fault-injection verdict JSON                                        *)

(* One campaign document ([mrun --inject-out] / one element of the
   bench wrapper).  Beyond the schema, the cross-counts must hold: the
   summary and per-class tables must recount the records exactly, and
   every record must have observed exactly as many [inject] events as
   faults it applied — an event without an application (or the
   reverse) means the injector and the probe disagree about what
   happened. *)
let check_inject_campaign path j =
  require_schema path "metal-inject-v1" j;
  let label =
    match str_field "label" j with
    | Some l -> l
    | None -> failf "%s: campaign has no label" path
  in
  (* The ECC fields ("ecc": true, "corrected" counts, per-record
     "ecc_corrected") appear only in campaigns run with the SECDED
     layer armed; a "corrected" verdict in an ECC-off document is a
     schema violation. *)
  let ecc =
    match Json.member "ecc" j with
    | Some (Json.Bool b) -> b
    | Some _ -> failf "%s: %s: ecc field is not a bool" path label
    | None -> false
  in
  let runs = int_field path "runs" j in
  ignore (int_field path "seed" j);
  ignore (int_field path "oracle_cycles" j);
  let records =
    match Json.member "records" j with
    | Some a -> Json.to_list a
    | None -> failf "%s: %s: no records array" path label
  in
  if List.length records <> runs then
    failf "%s: %s: %d records for %d runs" path label (List.length records)
      runs;
  let tally = Hashtbl.create 8 in
  let bump key = Hashtbl.replace tally key (
    (match Hashtbl.find_opt tally key with Some n -> n | None -> 0) + 1)
  in
  List.iteri
    (fun i r ->
       let idx = int_field path "index" r in
       if idx <> i then
         failf "%s: %s: record %d carries index %d" path label i idx;
       let applied = int_field path "applied" r in
       let events = int_field path "events" r in
       if events <> applied then
         failf
           "%s: %s: record %d observed %d inject events for %d applied \
            faults"
           path label i events applied;
       ignore (int_field path "cycles" r);
       let cls =
         match str_field "class" r with
         | Some c -> c
         | None -> failf "%s: %s: record %d has no class" path label i
       in
       let corrections =
         if ecc then int_field path "ecc_corrected" r
         else begin
           (match Json.member "ecc_corrected" r with
            | Some _ ->
              failf "%s: %s: record %d carries ecc_corrected without ecc"
                path label i
            | None -> ());
           0
         end
       in
       match str_field "verdict" r with
       | Some
           (("masked" | "corrected" | "detected" | "silent_corruption") as v)
         ->
         if v = "corrected" && not ecc then
           failf "%s: %s: record %d: corrected verdict without ecc" path
             label i;
         (* The corrected verdict and the correction counter must
            agree: corrected ⇔ converged with repairs consumed. *)
         if v = "corrected" && corrections = 0 then
           failf
             "%s: %s: record %d: corrected verdict with 0 ecc_corrected"
             path label i;
         if v = "masked" && corrections > 0 then
           failf
             "%s: %s: record %d: masked verdict despite %d ecc_corrected"
             path label i corrections;
         bump ("" , v);
         bump (cls, v)
       | Some v -> failf "%s: %s: record %d: unknown verdict %S" path label i v
       | None -> failf "%s: %s: record %d has no verdict" path label i)
    records;
  let recount scope v =
    match Hashtbl.find_opt tally (scope, v) with Some n -> n | None -> 0
  in
  let check_counts scope obj =
    List.iter
      (fun (field, v) ->
         let claimed = int_field path field obj in
         let actual = recount scope v in
         if claimed <> actual then
           failf "%s: %s: %s%s claims %d, records say %d" path label
             (if scope = "" then "summary " else "class " ^ scope ^ " ")
             field claimed actual)
      ([ ("masked", "masked") ]
       @ (if ecc then [ ("corrected", "corrected") ] else [])
       @ [ ("detected", "detected");
           ("silent_corruption", "silent_corruption") ])
  in
  (match Json.member "summary" j with
   | Some s -> check_counts "" s
   | None -> failf "%s: %s: no summary object" path label);
  let per_class =
    match Json.member "per_class" j with
    | Some a -> Json.to_list a
    | None -> failf "%s: %s: no per_class array" path label
  in
  List.iter
    (fun pc ->
       let cls =
         match str_field "class" pc with
         | Some c -> c
         | None -> failf "%s: %s: per_class row without class" path label
       in
       let claimed = int_field path "runs" pc in
       let actual =
         recount cls "masked" + recount cls "corrected"
         + recount cls "detected" + recount cls "silent_corruption"
       in
       if claimed <> actual then
         failf "%s: %s: class %s claims %d runs, records say %d" path label
           cls claimed actual;
       check_counts cls pc)
    per_class;
  (label, runs, recount "" "masked", recount "" "corrected",
   recount "" "detected", recount "" "silent_corruption")

let check_inject path =
  let j = parse_file path in
  let campaigns =
    match Json.member "campaigns" j with
    | Some a ->
      require_schema path "metal-inject-bench-v1" j;
      Json.to_list a
    | None -> [ j ]
  in
  if campaigns = [] then failf "%s: empty campaigns array" path;
  let totals =
    List.map (check_inject_campaign path) campaigns
  in
  let sum f = List.fold_left (fun acc t -> acc + f t) 0 totals in
  Printf.printf "%s: ok (%d campaigns, %d runs: %d masked, %d corrected, \
                 %d detected, %d silent)\n"
    path (List.length totals)
    (sum (fun (_, r, _, _, _, _) -> r))
    (sum (fun (_, _, m, _, _, _) -> m))
    (sum (fun (_, _, _, c, _, _) -> c))
    (sum (fun (_, _, _, _, d, _) -> d))
    (sum (fun (_, _, _, _, _, s) -> s))

(* ------------------------------------------------------------------ *)
(* Telemetry ndjson                                                    *)

module Series = Metal_telemetry.Telemetry.Series

(* Parse the file through the library (which enforces schema, window
   contiguity and field shapes), then re-derive every header total from
   the window rows and compare against the header the producer wrote —
   a divergence means the collector's accounting drifted from its own
   windows.  Finally re-render: the format is canonical, so the bytes
   must round-trip. *)
let load_telemetry path =
  let raw = read_raw path in
  let series =
    match Series.of_ndjson raw with
    | Ok s -> s
    | Error e -> failf "%s: %s" path e
  in
  let header =
    match String.index_opt raw '\n' with
    | Some i -> (
      match Json.parse (String.sub raw 0 i) with
      | Ok j -> j
      | Error e -> failf "%s: header: %s" path e)
    | None -> failf "%s: missing window lines" path
  in
  let sum f = List.fold_left (fun acc w -> acc + f w) 0 series.Series.windows in
  let check field total =
    let claimed = int_field path field header in
    if claimed <> total then
      failf "%s: header %s claims %d, windows sum to %d" path field claimed
        total
  in
  check "total_cycles" (Series.total_cycles series);
  check "user_cycles" (sum (fun w -> w.Series.user_cycles));
  check "metal_cycles" (sum (fun w -> w.Series.metal_cycles));
  check "instructions" (Series.total_instructions series);
  check "metal_instructions" (sum (fun w -> w.Series.metal_instructions));
  check "tlb_misses" (sum (fun w -> w.Series.tlb_misses));
  check "flushes" (sum (fun w -> w.Series.flushes));
  check "mode_enters" (sum (fun w -> w.Series.mode_enters));
  check "mroutine_exits" (sum (fun w -> w.Series.mroutine_exits));
  check "mroutine_cycles" (sum (fun w -> w.Series.mroutine_cycles));
  check "ecc_corrections" (sum (fun w -> w.Series.ecc_corrections));
  check "injections" (sum (fun w -> w.Series.injections));
  let max_lat =
    List.fold_left
      (fun acc w -> max acc w.Series.mroutine_max)
      0 series.Series.windows
  in
  let claimed_max = int_field path "mroutine_max" header in
  if claimed_max <> max_lat then
    failf "%s: header mroutine_max claims %d, worst window says %d" path
      claimed_max max_lat;
  let stall_counts = count_object path "stall_cycles" header in
  List.iter
    (fun (cause, claimed) ->
       let total =
         sum (fun w ->
             match List.assoc_opt cause w.Series.stalls with
             | Some n -> n
             | None -> 0)
       in
       if claimed <> total then
         failf "%s: header stall_cycles.%s claims %d, windows sum to %d"
           path cause claimed total)
    stall_counts;
  (* The annotations tie the series back to the machine that produced
     it: a halting run's windows cover every pipeline cycle, and the
     cycle-accounting identity (Stats.accounted_cycles) must hold. *)
  if series.Series.machine_cycles > 0
     && Series.total_cycles series <> series.Series.machine_cycles then
    failf "%s: windows cover %d cycles, machine ran %d" path
      (Series.total_cycles series) series.Series.machine_cycles;
  if series.Series.machine_cycles > 0 && series.Series.accounted_cycles > 0
     && series.Series.machine_cycles <> series.Series.accounted_cycles then
    failf "%s: machine_cycles %d <> accounted_cycles %d" path
      series.Series.machine_cycles series.Series.accounted_cycles;
  if Series.to_ndjson series <> raw then
    failf "%s: re-rendering the parsed series does not reproduce the file \
           — the ndjson writer is not canonical" path;
  series

let check_telemetry merged parts =
  let m = load_telemetry merged in
  let part_series = List.map load_telemetry parts in
  if parts <> [] then begin
    let remerged =
      List.fold_left Series.merge Series.empty part_series
    in
    if Series.to_ndjson remerged <> read_raw merged then
      failf
        "%s: merging %d per-job series in index order does not reproduce \
         the merged artifact — fleet merge is non-deterministic"
        merged (List.length parts)
  end;
  Printf.printf
    "%s: ok (%d windows x %d cycles, %d cycles, header totals recounted%s)\n"
    merged
    (List.length m.Series.windows)
    m.Series.window_cycles (Series.total_cycles m)
    (if parts = [] then ""
     else Printf.sprintf ", merge of %d reproduced" (List.length parts))

let usage () =
  prerr_endline
    "usage: trace_check chrome FILE\n\
    \       trace_check metrics FILE\n\
    \       trace_check profile MERGED [FILE...]\n\
    \       trace_check bench BASELINE FRESH [--tolerance PCT]\n\
    \       trace_check inject FILE\n\
    \       trace_check telemetry MERGED [FILE...]";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | _ :: "chrome" :: files when files <> [] -> List.iter check_chrome files
  | _ :: "metrics" :: files when files <> [] -> List.iter check_metrics files
  | _ :: "profile" :: merged :: parts -> check_profile merged parts
  | _ :: "bench" :: baseline :: fresh :: rest ->
    let tolerance =
      match rest with
      | [] -> 20.0
      | [ "--tolerance"; pct ] ->
        (try float_of_string pct with Failure _ -> usage ())
      | _ -> usage ()
    in
    check_bench baseline fresh tolerance
  | _ :: "inject" :: files when files <> [] -> List.iter check_inject files
  | _ :: "telemetry" :: merged :: parts -> check_telemetry merged parts
  | _ -> usage ()
