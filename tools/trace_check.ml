(* trace-check: CI validator for observability artifacts.

   [trace_check chrome FILE]
     FILE must be a Chrome trace_event JSON document: a top-level
     object with a [traceEvents] array in which every non-metadata
     event carries numeric [tid]/[ts] and timestamps are monotone per
     track (the exporter writes events in recording order, so any
     regression here is a sort bug, not a rendering choice).

   [trace_check bench BASELINE FRESH [--tolerance PCT]]
     Both files are [bench simperf --json] outputs
     (BENCH_sim_throughput.json schema).  Every workload present in
     BASELINE must also be in FRESH, and FRESH's tracing-disabled
     throughput must not fall more than PCT percent (default 20) below
     the committed baseline — the disabled probe is one load-and-branch
     per would-be event, so a bigger drop means the instrumentation
     leaked into the hot path.  Speedups always pass. *)

module Json = Metal_trace.Json

let failf fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let parse_file path =
  match Json.parse_file path with
  | Ok j -> j
  | Error e -> failf "%s: %s" path e

let str_field name j = Option.bind (Json.member name j) Json.to_string
let num_field name j = Option.bind (Json.member name j) Json.to_num

let check_chrome path =
  let j = parse_file path in
  let events =
    match Json.member "traceEvents" j with
    | Some a ->
      let l = Json.to_list a in
      if l = [] then failf "%s: traceEvents is not a non-empty array" path;
      l
    | None -> failf "%s: no traceEvents field" path
  in
  let last = Hashtbl.create 8 in
  let timed = ref 0 in
  List.iteri
    (fun i ev ->
       match str_field "ph" ev with
       | None -> failf "%s: event %d has no phase" path i
       | Some "M" -> ()  (* metadata records carry no timestamp *)
       | Some _ ->
         incr timed;
         let tid =
           match num_field "tid" ev with
           | Some t -> int_of_float t
           | None -> failf "%s: event %d has no numeric tid" path i
         and ts =
           match num_field "ts" ev with
           | Some t -> t
           | None -> failf "%s: event %d has no numeric ts" path i
         in
         (match Hashtbl.find_opt last tid with
          | Some prev when ts < prev ->
            failf "%s: event %d: tid %d goes back in time (%.0f after %.0f)"
              path i tid ts prev
          | _ -> ());
         Hashtbl.replace last tid ts)
    events;
  Printf.printf "%s: ok (%d events, %d tracks, timestamps monotone)\n" path
    !timed (Hashtbl.length last)

let workloads j =
  match Json.member "workloads" j with
  | Some a -> Json.to_list a
  | None -> failf "bench JSON has no workloads array"

let workload_ips j =
  match
    Option.bind (Json.member "predecode_on" j) (num_field "ips")
  with
  | Some ips -> ips
  | None -> failf "bench workload has no predecode_on.ips"

let check_bench baseline fresh tolerance =
  let base = parse_file baseline and now = parse_file fresh in
  let fresh_by_name =
    List.filter_map
      (fun w -> Option.map (fun n -> (n, w)) (str_field "name" w))
      (workloads now)
  in
  let floor = 1.0 -. (tolerance /. 100.0) in
  List.iter
    (fun w ->
       let name =
         match str_field "name" w with
         | Some n -> n
         | None -> failf "%s: workload without a name" baseline
       in
       match List.assoc_opt name fresh_by_name with
       | None -> failf "%s: workload %s missing from %s" baseline name fresh
       | Some w' ->
         let ratio = workload_ips w' /. workload_ips w in
         Printf.printf "%-20s %6.2fx of committed throughput\n" name ratio;
         if ratio < floor then
           failf
             "%s: %.1f%% below the committed baseline (tolerance %.0f%%) — \
              the disabled probe is leaking into the hot path"
             name
             ((1.0 -. ratio) *. 100.0)
             tolerance)
    (workloads base)

let usage () =
  prerr_endline
    "usage: trace_check chrome FILE\n\
    \       trace_check bench BASELINE FRESH [--tolerance PCT]";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | _ :: "chrome" :: files when files <> [] -> List.iter check_chrome files
  | _ :: "bench" :: baseline :: fresh :: rest ->
    let tolerance =
      match rest with
      | [] -> 20.0
      | [ "--tolerance"; pct ] ->
        (try float_of_string pct with Failure _ -> usage ())
      | _ -> usage ()
    in
    check_bench baseline fresh tolerance
  | _ -> usage ()
