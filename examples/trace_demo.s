# trace_demo.s — exercise Metal-mode transitions for the
# observability demo:
#
#   metal-run examples/trace_demo.s --mcode examples/trace_demo.mcode \
#     --trace-out /tmp/trace.json --metrics-out /tmp/metrics.json
#
# The loop crosses into the mroutine eight times; the emitted Chrome
# trace shows eight mroutine spans on the mode track and the metrics
# report their menter→mexit latency histogram.

start:
    li s0, 8
loop:
    menter 1
    addi s0, s0, -1
    bne s0, zero, loop
    ebreak
