(* Benchmark harness: regenerates every table and figure of the paper
   plus the quantitative claims its text makes.  See DESIGN.md for the
   experiment index (E1..E12) and EXPERIMENTS.md for paper-vs-measured.

   Run all sections:   dune exec bench/main.exe
   Run some sections:  dune exec bench/main.exe -- table2 stm *)

open Metal_cpu
open Metal_progs
open Util

(* ------------------------------------------------------------------ *)
(* E1: Table 1 — the Metal instructions                                *)

let table1 () =
  section "E1. Table 1: New Metal instructions";
  let rows =
    [ ("menter <entry>", Instr.Metal (Instr.Menter { entry = 5 }),
       "enter Metal mode, run mroutine <entry>; m31 <- return address");
      ("mexit", Instr.Metal Instr.Mexit,
       "exit Metal mode, resume at the address in m31");
      ("rmr rd, mN", Instr.Metal (Instr.Rmr { rd = Reg.t0; mr = 31 }),
       "read Metal register");
      ("wmr mN, rs", Instr.Metal (Instr.Wmr { mr = 0; rs1 = Reg.t0 }),
       "write Metal register");
      ("mld rd, off(rs)",
       Instr.Metal (Instr.Mld { rd = Reg.t0; rs1 = Reg.t1; offset = 8 }),
       "load from the MRAM data segment");
      ("mst rs2, off(rs)",
       Instr.Metal (Instr.Mst { rs2 = Reg.t0; rs1 = Reg.t1; offset = 8 }),
       "store to the MRAM data segment") ]
  in
  Printf.printf "%-18s %-10s %s\n" "instruction" "encoding" "description";
  List.iter
    (fun (name, instr, descr) ->
       Printf.printf "%-18s %08x   %s\n" name (Encode.encode_exn instr) descr)
    rows;
  print_endline
    "\nArchitectural features exposed to Metal mode only (Section 2.3):";
  let features =
    [ ("physld/physst", "direct physical memory access (paging bypass)");
      ("tlbw/tlbflush/tlbprobe", "TLB modification (ASIDs, page keys)");
      ("gprr/gprw", "indexed GPR file access (execution contexts)");
      ("iceptset/iceptclr", "instruction interception control");
      ("mcsrr/mcsrw", "machine control registers (incl. interrupt and \
                       exception delivery)") ]
  in
  List.iter (fun (n, d) -> Printf.printf "  %-24s %s\n" n d) features

(* ------------------------------------------------------------------ *)
(* E2: Table 2 — hardware resources                                    *)

let table2 () =
  section "E2. Table 2: Hardware resources for adding Metal";
  let t = Metal_synth.Report.table2 () in
  print_string (Metal_synth.Report.to_string t);
  Printf.printf
    "\npaper:             %10d %10d      16.1%%   (wires)\n\
     paper:             %10d %10d      14.3%%   (cells)\n"
    170264 197705 180546 206384;
  print_endline "\nWhere the Metal area goes:";
  print_string (Metal_synth.Report.breakdown ())

(* ------------------------------------------------------------------ *)
(* E3: Figure 1 — boot/menter/mexit workflow                           *)

let figure1 () =
  section "E3. Figure 1: Metal workflow (boot -> menter -> mroutine -> mexit)";
  let config = { Config.default with Config.trace = true } in
  let m = machine ~config () in
  load_mcode m
    ".mentry 7, scale\n# custom instruction: a0 <- a0 * 10\nscale:\n\
     slli t0, a0, 3\nslli t1, a0, 1\nadd a0, t0, t1\nmexit\n";
  ignore (load m "li a0, 4\nmenter 7\nmv s0, a0\nebreak\n");
  Machine.set_pc m 0;
  run_to_ebreak m;
  Printf.printf
    "boot: mroutine 'scale' loaded at MRAM entry 7\n\
     run : a0 = 4; menter 7 -> a0 = %d; %d cycles total\n\n"
    (reg m Reg.s0) (cycles m);
  print_endline "retirement trace (M = executed from MRAM in Metal mode):";
  List.iter (fun l -> print_endline ("  " ^ l)) (Machine.trace_log m ~max:16)

(* ------------------------------------------------------------------ *)
(* E4: Figure 2 — kenter/kexit and system-call cost                    *)

let null_kernel =
  {|.org 0x2000
syscall_table:
    .word sys_null
.org 0x3000
sys_null:
    menter 1
.org 0x3F00
fault_stub:
    ebreak
|}

let priv_cfg =
  { Privilege.syscall_table = 0x2000; nsyscalls = 1; kernel_pkeys = 0;
    user_pkeys = 0; fault_entry = 0x3F00 }

let syscall_cost config =
  let n = 100 in
  let setup m =
    ignore (load m null_kernel);
    match Privilege.install m priv_cfg with
    | Ok () -> ()
    | Error e -> fail "%s" e
  in
  per_op_cost ~config ~setup ~n
    ~with_op:(repeat_lines n "li a0, 0\nmenter 0\n" ^ "ebreak\n")
    ~without_op:(repeat_lines n "li a0, 0\nnop\n" ^ "ebreak\n")
    ()

let figure2 () =
  section "E4. Figure 2: system-call entry/exit mroutines";
  print_endline "assembled kenter/kexit (address / word / source):";
  print_string (Privilege.figure2_listing ());
  subsection "null system call round trip (user -> kernel -> user)";
  let cases =
    [ ("Metal (fast decode-stage replacement)", Config.default);
      ("Metal with trap-style transitions",
       { Config.default with Config.transition = Config.Trap_flush });
      ("PALcode-style (main-memory mroutines)", Config.palcode) ]
  in
  let costs = fleet_map (fun (_, config) -> syscall_cost config) cases in
  List.iteri
    (fun i (label, _) -> Printf.printf "%-44s %6.1f cycles\n" label costs.(i))
    cases

(* ------------------------------------------------------------------ *)
(* E5: mode-transition cost (Section 2.2 / Section 5)                  *)

let noop_mroutine = ".mentry 0, f\nf: mexit\n"

let transition_cost config =
  let n = 200 in
  per_op_cost ~config ~mcode:noop_mroutine ~n
    ~with_op:(repeat_lines n "menter 0\n" ^ "ebreak\n")
    ~without_op:(repeat_lines n "nop\n" ^ "ebreak\n")
    ()

let transition () =
  section "E5. menter/mexit transition cost (no-op mroutine)";
  let cases =
    [ ("Metal: fast replacement + dedicated MRAM", Config.default);
      ("fast replacement, mroutines in main memory",
       { Config.default with
         Config.mram_backing = Config.Main_memory { fetch_penalty = 3 } });
      ("trap-style transitions + dedicated MRAM",
       { Config.default with Config.transition = Config.Trap_flush });
      ("PALcode: trap-style + main-memory mroutines", Config.palcode) ]
  in
  Printf.printf "%-46s %s\n" "configuration" "cycles/no-op call";
  let costs = fleet_map (fun (_, config) -> transition_cost config) cases in
  List.iteri
    (fun i (label, _) -> Printf.printf "%-46s %8.1f\n" label costs.(i))
    cases;
  print_endline
    "\npaper: Metal achieves \"virtually zero overhead\" (Section 2.2);\n\
     a no-op PALcode call takes ~18 cycles on the Alpha (Section 5).";
  Printf.printf "measured PALcode/Metal ratio: %.1fx\n"
    (transition_cost Config.palcode /. transition_cost Config.default)

(* ------------------------------------------------------------------ *)
(* E6: custom page tables (Section 3.2)                                *)

let pt_workload ~pages ~accesses =
  Printf.sprintf
    {|start:
    li s0, 0x400000
    li s1, %d
    li s2, 0
    li s3, 0x5000
    li s4, %d
    li s5, 0
loop:
    add t0, s0, s2
    lw t1, 0(t0)
    add s5, s5, t1
    add s2, s2, s3
    bltu s2, s4, nowrap
    sub s2, s2, s4
nowrap:
    addi s1, s1, -1
    bnez s1, loop
    ebreak
|}
    accesses (pages * 4096)

type pt_mode = Pt_metal | Pt_hw | Pt_palcode

let pt_run ?(predecode = Config.default.Config.predecode)
    ?(blockcache = Config.default.Config.blockcache) ~pages ~accesses
    mode =
  let config =
    match mode with
    | Pt_palcode -> Config.palcode
    | Pt_metal | Pt_hw -> Config.default
  in
  let config = { config with Config.predecode; blockcache } in
  let m = machine ~config () in
  (match Pagetable.install m { Pagetable.os_fault_entry = 0 } with
   | Ok () -> ()
   | Error e -> fail "%s" e);
  let alloc =
    Metal_kernel.Frame_alloc.create ~base:0x280000 ~limit:0x400000
  in
  let mem = Metal_hw.Bus.memory m.Machine.bus in
  let pt = Metal_kernel.Page_table.create ~mem ~alloc in
  let map ~vaddr ~paddr =
    match
      Metal_kernel.Page_table.map pt ~vaddr ~paddr Metal_kernel.Page_table.rwx
    with
    | Ok () -> ()
    | Error e -> fail "%s" e
  in
  for i = 0 to 7 do
    map ~vaddr:(i * 4096) ~paddr:(i * 4096)
  done;
  for i = 0 to pages - 1 do
    map ~vaddr:(0x400000 + (i * 4096)) ~paddr:(0x80000 + (i * 4096))
  done;
  Pagetable.set_root m (Metal_kernel.Page_table.root pt);
  Machine.ctrl_write m Csr.pt_root (Metal_kernel.Page_table.root pt);
  (match mode with
   | Pt_hw -> Machine.ctrl_write m Csr.hw_walker 1
   | Pt_metal | Pt_palcode -> ());
  Machine.ctrl_write m Csr.paging 1;
  ignore (load m (pt_workload ~pages ~accesses));
  Machine.set_pc m 0;
  run_to_ebreak m;
  m

let pagetable () =
  section "E6. Custom page tables: TLB-miss handling (32-entry TLB)";
  let accesses = 3000 in
  Printf.printf "%11s | %19s | %19s | %19s\n" "working set"
    "Metal walker" "hardware walker" "OS-trap (PALcode)";
  Printf.printf "%11s | %9s %9s | %9s %9s | %9s %9s\n" "(pages)" "cycles"
    "misses" "cycles" "misses" "cycles" "misses";
  let pages_list = [ 16; 24; 32; 48; 64; 96 ] in
  let modes = [ Pt_metal; Pt_hw; Pt_palcode ] in
  (* The whole sweep (pages x walker mode) runs on the fleet; rows are
     printed from the keyed results afterwards. *)
  let sweep =
    fleet_assoc
      (fun (pages, mode) ->
         let m = pt_run ~pages ~accesses mode in
         (cycles m, m.Machine.stats.Stats.tlb_misses))
      (List.concat_map
         (fun pages -> List.map (fun mode -> (pages, mode)) modes)
         pages_list)
  in
  List.iter
    (fun pages ->
       let mc, mm = sweep (pages, Pt_metal) in
       let hc, hm = sweep (pages, Pt_hw) in
       let pc, pm = sweep (pages, Pt_palcode) in
       Printf.printf "%11d | %9d %9d | %9d %9d | %9d %9d\n" pages mc mm hc hm
         pc pm)
    pages_list;
  subsection "single TLB-refill cost";
  (* Touch 40 cold pages once each vs. the same loop over one hot
     page: the difference per extra miss is the refill cost. *)
  let refills =
    fleet_assoc
      (fun (pages, mode) ->
         let m = pt_run ~pages ~accesses:40 mode in
         (cycles m, m.Machine.stats.Stats.tlb_misses))
      (List.concat_map (fun mode -> [ (40, mode); (1, mode) ]) modes)
  in
  let refill mode =
    let cold_cycles, cold_misses = refills (40, mode) in
    let hot_cycles, hot_misses = refills (1, mode) in
    float_of_int (cold_cycles - hot_cycles)
    /. float_of_int (max 1 (cold_misses - hot_misses))
  in
  Printf.printf "%-34s %6.1f cycles/refill\n" "Metal mroutine walker"
    (refill Pt_metal);
  Printf.printf "%-34s %6.1f cycles/refill\n" "hardware walker" (refill Pt_hw);
  Printf.printf "%-34s %6.1f cycles/refill\n" "OS-trap walker (PALcode)"
    (refill Pt_palcode);
  print_endline
    "\npaper: MRAM proximity \"greatly closes the performance gap between\n\
     hardware and software managed TLBs\" (Section 3.2)."

(* ------------------------------------------------------------------ *)
(* E7: transactional memory (Section 3.3)                              *)

(* A library STM: comparable bookkeeping to the interception handlers,
   but invoked by calls compiled into the program. *)
let stmlib_mcode =
  {|.org 0x1C00
.equ LIB_ACTIVE, 0x780
.equ LIB_RCOUNT, 0x784
.equ LIB_RSET, 0x790

.mentry 60, stmlib_read
.mentry 61, stmlib_write
.mentry 62, stmlib_begin
.mentry 63, stmlib_end

stmlib_begin:
    li t0, 1
    mst t0, LIB_ACTIVE(zero)
    mst zero, LIB_RCOUNT(zero)
    mexit

stmlib_end:
    mst zero, LIB_ACTIVE(zero)
    mexit

# a0 = address -> a0 = value.  The instrumentation is compiled in, so
# the active check runs even outside transactions.
stmlib_read:
    mld t0, LIB_ACTIVE(zero)
    beqz t0, lib_read_raw
    mld t1, LIB_RCOUNT(zero)
    andi t2, t1, 7
    slli t2, t2, 3
    addi t2, t2, LIB_RSET
    physld t3, 0(a0)
    mst a0, 0(t2)
    mst t3, 4(t2)
    addi t1, t1, 1
    mst t1, LIB_RCOUNT(zero)
    mv a0, t3
    mexit
lib_read_raw:
    physld a0, 0(a0)
    mexit

# a0 = address, a1 = value.
stmlib_write:
    mld t0, LIB_ACTIVE(zero)
    beqz t0, lib_write_raw
    mld t1, LIB_RCOUNT(zero)
    addi t1, t1, 1
    mst t1, LIB_RCOUNT(zero)
lib_write_raw:
    physst a1, 0(a0)
    mexit
|}

let array_base = 0x8000
let array_len = 64

let plain_pass_body =
  Printf.sprintf
    {|    li t3, %d
    li t4, %d
pass_loopN:
    lw t5, 0(t3)
    add s5, s5, t5
    addi t3, t3, 4
    addi t4, t4, -1
    bnez t4, pass_loopN
|}
    array_base array_len

let lib_pass_body =
  Printf.sprintf
    {|    li s8, %d
    li s9, %d
lib_loopN:
    mv a0, s8
    menter 60
    add s5, s5, a0
    addi s8, s8, 4
    addi s9, s9, -1
    bnez s9, lib_loopN
|}
    array_base array_len

let numbered body i =
  replace_all ~needle:"N" ~by:(string_of_int i) body

let stm () =
  section "E7. Transactional memory by interception";
  (* Phase experiment: one transactional pass + N plain passes.
     Interception STM leaves the plain passes untouched; a library STM
     pays its compiled-in instrumentation everywhere. *)
  let plain_passes = 10 in
  let metal_prog =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "start:\n    la a0, retry\nretry:\n";
    Buffer.add_string buf (Printf.sprintf "    menter %d\n" Layout.tstart);
    Buffer.add_string buf (numbered plain_pass_body 0);
    Buffer.add_string buf (Printf.sprintf "    menter %d\n" Layout.tcommit);
    for i = 1 to plain_passes do
      Buffer.add_string buf (numbered plain_pass_body i)
    done;
    Buffer.add_string buf "    ebreak\n";
    Buffer.contents buf
  in
  let lib_prog =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "start:\n    menter 62\n";
    Buffer.add_string buf (numbered lib_pass_body 0);
    Buffer.add_string buf "    menter 63\n";
    for i = 1 to plain_passes do
      Buffer.add_string buf (numbered lib_pass_body i)
    done;
    Buffer.add_string buf "    ebreak\n";
    Buffer.contents buf
  in
  let raw_prog =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "start:\n";
    for i = 0 to plain_passes do
      Buffer.add_string buf (numbered plain_pass_body i)
    done;
    Buffer.add_string buf "    ebreak\n";
    Buffer.contents buf
  in
  let setup m =
    for i = 0 to array_len - 1 do
      Machine.write_word m (array_base + (4 * i)) (i + 1)
    done
  in
  let metal_m = exec ~mcode:(Stm.mcode ()) ~setup metal_prog in
  let lib_m = exec ~mcode:stmlib_mcode ~setup lib_prog in
  let raw_m = exec ~setup raw_prog in
  let per_access total =
    float_of_int total /. float_of_int (array_len * (plain_passes + 1))
  in
  Printf.printf
    "workload: 1 transactional pass + %d plain passes over %d words\n\n"
    plain_passes array_len;
  Printf.printf "%-42s %9s %13s\n" "" "cycles" "cycles/access";
  Printf.printf "%-42s %9d %13.1f\n" "no STM (upper bound)" (cycles raw_m)
    (per_access (cycles raw_m));
  Printf.printf "%-42s %9d %13.1f\n" "Metal STM (runtime interception)"
    (cycles metal_m)
    (per_access (cycles metal_m));
  Printf.printf "%-42s %9d %13.1f\n" "library STM (compiled-in calls)"
    (cycles lib_m)
    (per_access (cycles lib_m));
  (* The structural claim, isolated: the marginal cost of one *plain*
     (non-transactional) pass under each regime, measured as the slope
     between 10 and 4 plain passes. *)
  let plain_pass_cost build mcode =
    let prog n =
      let buf = Buffer.create 1024 in
      build buf n;
      Buffer.contents buf
    in
    let hi = exec ?mcode ~setup (prog 10) in
    let lo = exec ?mcode ~setup (prog 4) in
    float_of_int (cycles hi - cycles lo) /. float_of_int (6 * array_len)
  in
  let metal_build buf n =
    Buffer.add_string buf "start:\n    la a0, retry\nretry:\n";
    Buffer.add_string buf (Printf.sprintf "    menter %d\n" Layout.tstart);
    Buffer.add_string buf (numbered plain_pass_body 0);
    Buffer.add_string buf (Printf.sprintf "    menter %d\n" Layout.tcommit);
    for i = 1 to n do
      Buffer.add_string buf (numbered plain_pass_body i)
    done;
    Buffer.add_string buf "    ebreak\n"
  in
  let lib_build buf n =
    Buffer.add_string buf "start:\n    menter 62\n";
    Buffer.add_string buf (numbered lib_pass_body 0);
    Buffer.add_string buf "    menter 63\n";
    for i = 1 to n do
      Buffer.add_string buf (numbered lib_pass_body i)
    done;
    Buffer.add_string buf "    ebreak\n"
  in
  Printf.printf
    "\nmarginal cost of a NON-transactional access (the paper's point):\n";
  Printf.printf "  Metal STM   %5.1f cycles/access (interception is off)\n"
    (plain_pass_cost metal_build (Some (Stm.mcode ())));
  Printf.printf "  library STM %5.1f cycles/access (calls are compiled in)\n"
    (plain_pass_cost lib_build (Some stmlib_mcode));
  let c = Stm.counters metal_m in
  Printf.printf "\nMetal STM counters: %d commits, %d aborts, %d tx reads\n"
    c.Stm.commits c.Stm.aborts c.Stm.reads;
  subsection "conflict injection (DMA agent standing in for a second core)";
  Printf.printf "%-26s %9s %9s\n" "conflict period (cycles)" "commits" "aborts";
  List.iter
    (fun period ->
       let m = machine () in
       (match Stm.install m with Ok () -> () | Error e -> fail "%s" e);
       setup m;
       if period > 0 then begin
         let mem = Metal_hw.Bus.memory m.Machine.bus in
         let writes =
           List.init 30 (fun i -> ((i + 1) * period, array_base, 1000 + i))
         in
         let dma = Metal_hw.Devices.Dma.create ~mem ~writes in
         Metal_hw.Bus.attach m.Machine.bus (Metal_hw.Devices.Dma.device dma)
       end;
       ignore
         (load m
            (Printf.sprintf
               {|start:
    li s0, 20
txn:
    la a0, txn_retry
txn_retry:
    menter %d
    li t3, %d
    lw t4, 0(t3)
    addi t4, t4, 1
    sw t4, 4(t3)
    menter %d
    beqz a0, txn_retry
    addi s0, s0, -1
    bnez s0, txn
    ebreak
|}
               Layout.tstart array_base Layout.tcommit));
       Machine.set_pc m 0;
       run_to_ebreak m;
       let c = Stm.counters m in
       Printf.printf "%-26s %9d %9d\n"
         (if period = 0 then "none" else string_of_int period)
         c.Stm.commits c.Stm.aborts)
    [ 0; 2000; 800; 300 ];
  print_endline
    "\npaper: \"neither compilers nor developers need to replace loads and\n\
     stores with calls into an STM library\" — the plain phases run at raw\n\
     speed under interception STM and still pay the library tax under\n\
     compiled-in instrumentation (Section 3.3)."

(* ------------------------------------------------------------------ *)
(* E8: user-level interrupts (Section 3.4)                             *)

let nic_base = Metal_hw.Bus.mmio_base + 0x100
let uintr_packets = 25

let polling_prog ~packets =
  Printf.sprintf
    {|start:
    li s2, %d
    li s3, %d
work:
    addi s0, s0, 1
    lw t0, 0(s2)
    beqz t0, work
    sw zero, 0xc(s2)
    addi s1, s1, 1
    bne s1, s3, work
    ebreak
|}
    nic_base packets

let uintr_prog ?(packets = uintr_packets) ~kernel_mediated () =
  let handler_target = if kernel_mediated then "kstub" else "handler" in
  Printf.sprintf
    {|start:
    la a0, %s
    menter %d
    li t0, 1
    li t1, %d
    sw t0, 0x10(t1)
    li s3, %d
work:
    addi s0, s0, 1
    bne s1, s3, work
    ebreak

# kernel mediation: dispatch bookkeeping before and after the user
# handler (privilege checks, signal-frame setup, ...).
kstub:
    li t0, 0x7000
    sw s0, 0(t0)
    lw t1, 0(t0)
    sw s1, 4(t0)
    lw t1, 4(t0)
    nop
    nop
    nop
    nop
    nop
    nop
    jal t1, handler_body
    nop
    nop
    nop
    nop
    menter %d

handler:
    jal t1, handler_body
    menter %d

handler_body:
    li t0, %d
drain:
    lw t2, 0(t0)
    beqz t2, hdone
    sw zero, 0xc(t0)
    addi s1, s1, 1
    j drain
hdone:
    jr t1
|}
    handler_target Layout.uintr_setup nic_base packets Layout.uintr_ret
    Layout.uintr_ret nic_base

let uintr_run ?(predecode = Config.default.Config.predecode)
    ?(blockcache = Config.default.Config.blockcache)
    ?(packets = uintr_packets) ~period mode =
  let schedule =
    Metal_hw.Devices.Nic.Periodic { start = 100; period; count = packets }
  in
  let config = { Config.default with Config.predecode; blockcache } in
  let sys = Metal_core.System.create ~config ~nic_schedule:schedule () in
  let m = sys.Metal_core.System.machine in
  let prog =
    match mode with
    | `Polling -> polling_prog ~packets
    | `Uintr ->
      (match Uintr.install m with Ok () -> () | Error e -> fail "%s" e);
      uintr_prog ~packets ~kernel_mediated:false ()
    | `Kernel ->
      (match Uintr.install m with Ok () -> () | Error e -> fail "%s" e);
      uintr_prog ~packets ~kernel_mediated:true ()
  in
  (match Metal_core.System.run_program sys ~max_cycles:10_000_000 prog with
   | Ok _ -> ()
   | Error e -> fail "%s" e);
  let nic = Option.get sys.Metal_core.System.nic in
  let lats = Metal_hw.Devices.Nic.latencies nic in
  let mean =
    if lats = [] then 0.0
    else
      float_of_int (List.fold_left ( + ) 0 lats)
      /. float_of_int (List.length lats)
  in
  (m, mean)

let uintr () =
  section "E8. User-level interrupts: packet handling (DPDK scenario)";
  Printf.printf "%d packets per run; work = loop iterations completed\n\n"
    uintr_packets;
  Printf.printf "%8s | %21s | %21s | %21s\n" "packet" "polling"
    "user-level intr" "kernel-mediated";
  Printf.printf "%8s | %10s %10s | %10s %10s | %10s %10s\n" "period" "work"
    "latency" "work" "latency" "work" "latency";
  let periods = [ 250; 500; 1000; 2000 ] in
  let sweep =
    fleet_assoc
      (fun (period, mode) ->
         let m, lat = uintr_run ~period mode in
         (reg m Reg.s0, lat))
      (List.concat_map
         (fun period ->
            List.map (fun mode -> (period, mode)) [ `Polling; `Uintr; `Kernel ])
         periods)
  in
  List.iter
    (fun period ->
       let pw, pl = sweep (period, `Polling) in
       let uw, ul = sweep (period, `Uintr) in
       let kw, kl = sweep (period, `Kernel) in
       Printf.printf "%8d | %10d %10.1f | %10d %10.1f | %10d %10.1f\n" period
         pw pl uw ul kw kl)
    periods;
  print_endline
    "\npaper: with user-level interrupts, applications \"only need to be\n\
     notified via interrupts when data is available\" (Section 3.4);\n\
     delivery without the kernel detour also beats mediated delivery."

(* ------------------------------------------------------------------ *)
(* E9: in-process isolation call cost (Section 3.1)                    *)

let isolation () =
  section "E9. In-process isolation: protected-call cost";
  let n = 100 in
  let plain =
    per_op_cost ~n
      ~with_op:("start:\n" ^ repeat_lines n "call f\n" ^ "ebreak\nf: ret\n")
      ~without_op:("start:\n" ^ repeat_lines n "nop\n" ^ "ebreak\nf: ret\n")
      ()
  in
  let gate =
    let setup m =
      match
        Isolation.install m
          { Isolation.gate_target = 0x800; open_perms = 0; closed_perms = 0 }
      with
      | Ok () -> ()
      | Error e -> fail "%s" e
    in
    per_op_cost ~setup ~n
      ~with_op:
        (Printf.sprintf "start:\n%sebreak\n.org 0x800\ntrusted:\nmenter %d\n"
           (repeat_lines n (Printf.sprintf "menter %d\n" Layout.dom_enter))
           Layout.dom_exit)
      ~without_op:
        (Printf.sprintf "start:\n%sebreak\n.org 0x800\ntrusted:\nmenter %d\n"
           (repeat_lines n "nop\n") Layout.dom_exit)
      ()
  in
  let syscall = syscall_cost Config.default in
  Printf.printf "%-44s %6.1f cycles\n" "plain function call + return" plain;
  Printf.printf "%-44s %6.1f cycles\n" "Metal domain gate (dom_enter/dom_exit)"
    gate;
  Printf.printf "%-44s %6.1f cycles\n" "process-based isolation (null syscall)"
    syscall;
  print_endline
    "\npaper: Metal \"enables developers to safely encapsulate the\n\
     transition code without CFI\" (Section 3.1) — the gate costs a few\n\
     cycles more than a call, far less than a kernel round trip."

(* ------------------------------------------------------------------ *)
(* E10: design ablation (Section 2.2)                                  *)

let ablation () =
  section "E10. Ablation: what the MRAM and fast transitions buy";
  let configs =
    [ ("fast + dedicated MRAM (Metal)", Config.default);
      ("fast + main-memory penalty 1",
       { Config.default with
         Config.mram_backing = Config.Main_memory { fetch_penalty = 1 } });
      ("fast + main-memory penalty 3",
       { Config.default with
         Config.mram_backing = Config.Main_memory { fetch_penalty = 3 } });
      ("trap + dedicated MRAM",
       { Config.default with Config.transition = Config.Trap_flush });
      ("trap + main-memory penalty 3 (PALcode)", Config.palcode) ]
  in
  Printf.printf "%-42s %14s %14s\n" "configuration" "no-op call" "null syscall";
  let costs =
    fleet_map
      (fun (_, config) -> (transition_cost config, syscall_cost config))
      configs
  in
  List.iteri
    (fun i (label, _) ->
       let t, s = costs.(i) in
       Printf.printf "%-42s %14.1f %14.1f\n" label t s)
    configs;
  print_endline
    "\nBoth design points of Section 2.2 matter: decode-stage replacement\n\
     removes the flush cost, MRAM collocation removes the fetch cost, and\n\
     only together do they reach microcode-level overhead."

(* ------------------------------------------------------------------ *)
(* E11: nested Metal (Section 3.5)                                     *)

let nested () =
  section "E11. Nested Metal: layered store interception";
  let n = 100 in
  let store_block = "li t3, 0x8000\nli t4, 7\n" ^ repeat_lines n "sw t4, 0(t3)\n" in
  let nop_block = "li t3, 0x8000\nli t4, 7\n" ^ repeat_lines n "nop\n" in
  let raw =
    per_op_cost ~n ~with_op:(store_block ^ "ebreak\n")
      ~without_op:(nop_block ^ "ebreak\n") ()
  in
  let one_layer_mcode =
    {|.org 0x1C00
.mentry 60, direct_store
direct_store:
    wmr m16, t0
    wmr m17, t1
    rmr t0, m28
    rmr t1, m27
    physst t1, 0(t0)
    rmr t0, m31
    addi t0, t0, 4
    wmr m31, t0
    rmr t0, m16
    rmr t1, m17
    mexit
|}
  in
  let arm entry m =
    Machine.ctrl_write m (Csr.icept_handler (Icept.code Icept.Store_class))
      (entry + 1);
    Machine.ctrl_write m Csr.icept_enable 1
  in
  let one =
    per_op_cost ~mcode:one_layer_mcode ~setup:(arm 60) ~n
      ~with_op:(store_block ^ "ebreak\n") ~without_op:(nop_block ^ "ebreak\n")
      ()
  in
  let two =
    let setup m =
      (match Nested.install m ~remap_offset:0 with
       | Ok () -> ()
       | Error e -> fail "%s" e);
      arm Layout.nest_store m
    in
    per_op_cost ~setup ~n ~with_op:(store_block ^ "ebreak\n")
      ~without_op:(nop_block ^ "ebreak\n") ()
  in
  Printf.printf "%-42s %6.1f cycles/store\n" "no interception" raw;
  Printf.printf "%-42s %6.1f cycles/store\n" "one layer (direct handler)" one;
  Printf.printf "%-42s %6.1f cycles/store\n"
    "two layers (app intercepts, VMM applies)" two;
  print_endline
    "\npaper: \"the intercept propagates downward through layers that\n\
     intercept the same instruction\" (Section 3.5) — each layer adds a\n\
     bounded, composable cost."

(* ------------------------------------------------------------------ *)
(* E12: control-flow protection (Section 3.5)                          *)

let cfi () =
  section "E12. Shadow-stack control-flow protection";
  let calls = 60 in
  let body enable =
    Printf.sprintf
      {|start:
    li sp, 0x8000
%s
    li s1, %d
loop:
    li a0, 5
    call work
    addi s1, s1, -1
    bnez s1, loop
%s
    ebreak

work:
    addi sp, sp, -4
    sw ra, 0(sp)
    call leaf
    call leaf
    lw ra, 0(sp)
    addi sp, sp, 4
    ret

leaf:
    addi a0, a0, 1
    ret
|}
      (if enable then Printf.sprintf "    menter %d" Layout.ss_enable else "")
      calls
      (if enable then Printf.sprintf "    menter %d" Layout.ss_disable else "")
  in
  let with_ss =
    let m = machine () in
    (match Shadowstack.install m with Ok () -> () | Error e -> fail "%s" e);
    ignore (load m (body true));
    Machine.set_pc m 0;
    run_to_ebreak m;
    m
  in
  let without = exec (body false) in
  let pairs = calls * 3 in
  Printf.printf "workload: %d call/return pairs\n\n" pairs;
  Printf.printf "%-28s %9d cycles\n" "unprotected" (cycles without);
  Printf.printf "%-28s %9d cycles\n" "with shadow stack" (cycles with_ss);
  Printf.printf "overhead: %.1f cycles per call/return pair\n"
    (float_of_int (cycles with_ss - cycles without) /. float_of_int pairs);
  let c = Shadowstack.counters with_ss in
  Printf.printf
    "violations: %d (the corruption test in the suite halts the machine)\n"
    c.Shadowstack.violations

(* ------------------------------------------------------------------ *)
(* E13: page keys accelerate batch permission changes (Section 2.3)    *)

let pkeys () =
  section "E13. Page keys: batch permission changes";
  (* Revoke write access to N pages: with page keys, one mcsrw; the
     classical way rewrites N PTEs and flushes the TLB. *)
  let mcode =
    {|.mentry 0, by_pkey
# revoke writes under key 1 with a single register write
by_pkey:
    li t0, 0x8
    mcsrw pkey_perms, t0
    mexit

.mentry 1, by_ptes
# a0 = page-table L2 base, a1 = number of PTEs: clear each W bit
by_ptes:
    mv t0, a0
    li t1, 0
pte_loop:
    physld t2, 0(t0)
    li t3, 0xFFFFFFFB
    and t2, t2, t3
    physst t2, 0(t0)
    addi t0, t0, 4
    addi t1, t1, 1
    bne t1, a1, pte_loop
    li t4, -1
    tlbflush t4
    mexit
|}
  in
  Printf.printf "%8s %18s %18s\n" "pages" "page keys (cy)" "PTE rewrite (cy)";
  List.iter
    (fun pages ->
       let run entry extra_setup prog =
         let m = machine () in
         load_mcode m mcode;
         extra_setup m;
         ignore (load m prog);
         Machine.set_pc m 0;
         run_to_ebreak m;
         ignore entry;
         cycles m
       in
       (* Build an L2 table's worth of PTEs to rewrite. *)
       let setup m =
         for i = 0 to pages - 1 do
           Machine.write_word m (0x40000 + (4 * i))
             (((0x80 + i) lsl 12) lor 0x7)
         done
       in
       let pkey_cy =
         run 0 setup "menter 0\nebreak\n"
         - run 0 setup "nop\nebreak\n"
       in
       let pte_cy =
         run 1 setup
           (Printf.sprintf "li a0, 0x40000\nli a1, %d\nmenter 1\nebreak\n"
              pages)
         - run 1 setup "li a0, 0x40000\nnop\nnop\nebreak\n"
       in
       Printf.printf "%8d %18d %18d\n" pages pkey_cy pte_cy)
    [ 8; 32; 128; 512 ];
  print_endline
    "\npaper: page keys \"provide an extra level of indirection for page\n\
     permissions to accelerate batch permission changes\" (Section 2.3) —\n\
     constant-time revocation vs. cost linear in the mapping count."

(* ------------------------------------------------------------------ *)
(* E14: MRAM and cache side channels (Section 4)                       *)

let sidechannel () =
  section "E14. Side channels: MRAM bypasses the instruction cache";
  (* A classic prime+probe attack on the I-cache: the attacker warms
     the cache with its probe code, the victim mroutine executes a
     secret-dependent path, and the attacker measures how much slower
     its probe re-runs.  With MRAM collocated and uncached (the Metal
     design), the victim leaves no footprint; with main-memory-resident
     routines (the PALcode model), the execution path is visible. *)
  let icache =
    Some { Metal_hw.Cache.lines = 16; line_bytes = 16; miss_penalty = 10 }
  in
  let probe_src =
    "probe:\n"
    ^ String.concat "" (List.init 60 (fun _ -> "addi t1, t1, 1\n"))
    ^ "ebreak\n"
  in
  let victim_mcode =
    ".mentry 0, victim\nvictim:\nbeqz a0, vshort\n"
    ^ String.concat "" (List.init 30 (fun _ -> "addi t2, t2, 1\n"))
    ^ "vshort:\nmexit\n"
  in
  let leakage ~backing ~secret =
    let config =
      { Config.default with Config.icache; Config.mram_backing = backing }
    in
    let m = machine ~config () in
    load_mcode m victim_mcode;
    ignore (load m ~origin:0x100 probe_src);
    ignore (load m ~origin:0x400 "trigger:\nmenter 0\nebreak\n");
    let phase pc =
      let before = cycles m in
      Machine.set_pc m pc;
      m.Machine.halted <- None;
      run_to_ebreak m;
      cycles m - before
    in
    ignore (phase 0x100);            (* prime *)
    let warm = phase 0x100 in        (* warm baseline *)
    Machine.set_reg m Reg.a0 secret;
    ignore (phase 0x400);            (* victim runs with the secret *)
    let probed = phase 0x100 in
    probed - warm
  in
  Printf.printf "%-38s %14s %14s %10s\n" "configuration" "leak(secret=0)"
    "leak(secret=1)" "signal";
  List.iter
    (fun (label, backing) ->
       let l0 = leakage ~backing ~secret:0 in
       let l1 = leakage ~backing ~secret:1 in
       Printf.printf "%-38s %11d cy %11d cy %7d cy\n" label l0 l1
         (abs (l1 - l0)))
    [ ("Metal (dedicated, uncached MRAM)", Config.Dedicated);
      ("PALcode (main-memory mroutines)",
       Config.Main_memory { fetch_penalty = 10 }) ];
  print_endline
    "\npaper: \"Metal does not cache MReg. or MRAM\" (Section 4) — with the\n\
     dedicated MRAM the attacker cannot distinguish the secret (signal 0);\n\
     main-memory-resident vertical microcode leaks its execution path."

(* ------------------------------------------------------------------ *)
(* Simulator throughput: simulated instructions per host second        *)

(* Three long workloads, each run through the three steppers: the slow
   option-latch oracle (predecode off), the predecode fast path, and
   the block-translation cache on top of it.  The slow position is the
   ablation/correctness oracle — the decode-every-fetch hot loop — and
   the two ratios are the speedups each layer buys.  With --json the
   results (plus the merged block-cache counters of the blocks-on
   runs) land in BENCH_sim_throughput.json. *)

let retired m = m.Machine.stats.Stats.instructions

type sim_mode = M_slow | M_pre | M_blocks

let sim_mode_flags = function
  | M_slow -> (false, false)
  | M_pre -> (true, false)
  | M_blocks -> (true, true)

(* Pointwise sum of two [Blockcache.stats_fields] lists (canonical
   order, so the empty list acts as the identity). *)
let merge_fields a b =
  if a = [] then b else List.map2 (fun (k, v) (_, v') -> (k, v + v')) a b

let bc_fields m = Blockcache.stats_fields m.Machine.blockcache

(* E6-shaped workload: the mcode TLB-miss walker sweep (paging on,
   Metal-mode fetches, physld-heavy mroutines). *)
let simperf_walker ~mode () =
  let predecode, blockcache = sim_mode_flags mode in
  List.fold_left
    (fun (acc, st) pages ->
       let m = pt_run ~predecode ~blockcache ~pages ~accesses:6000 Pt_metal in
       (acc + retired m, merge_fields st (bc_fields m)))
    (0, [])
    [ 16; 32; 64; 96 ]

(* E8-shaped workload: the NIC packet sweep under user-level
   interrupts (device ticks, interrupt delivery, handler drains). *)
let simperf_nic ~mode () =
  let predecode, blockcache = sim_mode_flags mode in
  List.fold_left
    (fun (acc, st) period ->
       let m, _ =
         uintr_run ~predecode ~blockcache ~packets:400 ~period `Uintr
       in
       (acc + retired m, merge_fields st (bc_fields m)))
    (0, [])
    [ 250; 500; 1000; 2000 ]

(* Differential-style random programs: straight-line ALU/memory/branch
   bodies (the test_differential generator's shape) wrapped in a
   counted loop so each program refetches its body thousands of
   times. *)
let simperf_random_programs =
  lazy
    (let seed = ref 0x2545F491 in
     let rand bound =
       seed := !seed lxor (!seed lsl 13);
       seed := !seed lxor (!seed lsr 17);
       seed := !seed lxor (!seed lsl 5);
       (!seed land max_int) mod bound
     in
     let data_base = 0x1000 in
     let base_reg = 28 and counter_reg = 29 in
     let gen_body n =
       let reg () = rand 16 in
       let alu =
         [| Instr.Add; Instr.Sub; Instr.Sll; Instr.Slt; Instr.Sltu;
            Instr.Xor; Instr.Srl; Instr.Sra; Instr.Or; Instr.And |]
       in
       let cond =
         [| Instr.Beq; Instr.Bne; Instr.Blt; Instr.Bge; Instr.Bltu;
            Instr.Bgeu |]
       in
       List.init n (fun i ->
           if i >= n - 2 then
             (* Keep the last two slots fall-through so a skip never
                jumps past the loop back-edge. *)
             Instr.Op { op = alu.(rand 10); rd = reg (); rs1 = reg ();
                        rs2 = reg () }
           else
             match rand 10 with
             | 0 | 1 | 2 ->
               Instr.Op { op = alu.(rand 10); rd = reg (); rs1 = reg ();
                          rs2 = reg () }
             | 3 | 4 ->
               Instr.Op_imm { op = Instr.Add; rd = reg (); rs1 = reg ();
                              imm = rand 4096 - 2048 }
             | 5 ->
               Instr.Load { width = Instr.Word; unsigned = false;
                            rd = reg (); rs1 = base_reg;
                            offset = 4 * rand 64 }
             | 6 ->
               Instr.Store { width = Instr.Word; rs2 = reg ();
                             rs1 = base_reg; offset = 4 * rand 64 }
             | 7 ->
               Instr.Branch { cond = cond.(rand 6); rs1 = reg ();
                              rs2 = reg (); offset = 8 }
             | _ ->
               Instr.Op_imm { op = Instr.Xor; rd = reg (); rs1 = reg ();
                              imm = rand 2048 })
     in
     let image_of instrs =
       let b = Metal_asm.Image.Builder.create () in
       List.iteri
         (fun i instr ->
            match
              Metal_asm.Image.Builder.emit_word b ~addr:(4 * i)
                (Encode.encode_exn instr)
            with
            | Ok () -> ()
            | Error e -> fail "%s" e)
         instrs;
       Metal_asm.Image.Builder.finish b
     in
     List.init 24 (fun _ ->
         let body_len = 30 + rand 30 in
         let body = gen_body body_len in
         let iters = 2000 in
         let prologue =
           [ Instr.Lui { rd = base_reg; imm = data_base lsr 12 };
             Instr.Op_imm { op = Instr.Add; rd = counter_reg; rs1 = 0;
                            imm = iters } ]
         in
         let back_offset = -4 * (body_len + 1) in
         let epilogue =
           [ Instr.Op_imm { op = Instr.Add; rd = counter_reg;
                            rs1 = counter_reg; imm = -1 };
             Instr.Branch { cond = Instr.Bne; rs1 = counter_reg; rs2 = 0;
                            offset = back_offset };
             Instr.Ebreak ]
         in
         image_of (prologue @ body @ epilogue)))

let simperf_random ~mode () =
  let predecode, blockcache = sim_mode_flags mode in
  let config = { Config.default with Config.predecode; blockcache } in
  List.fold_left
    (fun (acc, st) img ->
       let m = machine ~config () in
       (match Machine.load_image m img with
        | Ok () -> ()
        | Error e -> fail "%s" e);
       Machine.set_pc m 0;
       run_to_ebreak m;
       (acc + retired m, merge_fields st (bc_fields m)))
    (0, [])
    (Lazy.force simperf_random_programs)

let time_once f =
  (* Drain pending collection work so GC pauses from the previous
     round's garbage don't land inside the timed region. *)
  Gc.minor ();
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The workloads are deterministic, so the minimum over several rounds
   is the least noise-contaminated estimate; interleaving the three
   configurations keeps slow host-load drift from biasing the ratios.
   Returns the per-mode (instructions, best seconds) plus the
   block-cache counters of one blocks-on round. *)
let timed_sweep run =
  let rounds = 9 in
  let n = Array.make 3 0 and t = Array.make 3 infinity in
  let stats = ref [] in
  for _ = 1 to rounds do
    List.iteri
      (fun i mode ->
         let (count, st), secs = time_once (run ~mode) in
         n.(i) <- count;
         if secs < t.(i) then t.(i) <- secs;
         if mode = M_blocks then stats := st)
      [ M_blocks; M_pre; M_slow ]
  done;
  (n, t, !stats)

(* Allocation gate: replaying a hot, chained block must not allocate —
   the compiled loop runs on integers and pre-built slot records.  A
   counted tight loop (~1.4M cycles of chained block replay) is run
   once to warm the host, then again on a fresh machine under a
   minor-heap watch.  The budget of 0.05 words/cycle amortizes the
   one-time block build and engage-time bookkeeping (window
   descriptors, chain patches) while failing on any per-cycle boxing
   that sneaks into [compiled_cycle]. *)
let simperf_alloc_gate () =
  let prog =
    {|
    li s0, 0
    li s1, 200000
loop:
    addi s0, s0, 1
    addi t0, s0, 7
    xor t1, t0, s0
    slt t2, t1, s1
    bne s0, s1, loop
    ebreak
|}
  in
  let m = machine () in
  ignore (load m prog);
  Machine.set_pc m 0;
  run_to_ebreak m;
  let m2 = machine () in
  ignore (load m2 prog);
  Machine.set_pc m2 0;
  let w0 = Gc.minor_words () in
  run_to_ebreak m2;
  let dw = Gc.minor_words () -. w0 in
  let cycles = m2.Machine.stats.Stats.cycles in
  let per_cycle = dw /. float_of_int cycles in
  Printf.printf
    "allocation gate: %.0f minor words / %d cycles = %.4f words per cycle\n"
    dw cycles per_cycle;
  if per_cycle > 0.05 then
    fail
      "block replay allocates %.4f minor words per cycle (budget 0.05) — \
       boxing leaked into the compiled loop"
      per_cycle;
  per_cycle

let simperf_json = ref false

let simperf () =
  section "E15. Simulator throughput (simulated instructions / host second)";
  let workloads =
    [ ("e6_walker_sweep", simperf_walker);
      ("e8_nic_sweep", simperf_nic);
      ("random_programs", simperf_random) ]
  in
  (* Touch every code path once so timing excludes cold-start work. *)
  List.iter
    (fun mode ->
       let predecode, blockcache = sim_mode_flags mode in
       ignore (pt_run ~predecode ~blockcache ~pages:4 ~accesses:50 Pt_metal))
    [ M_blocks; M_pre; M_slow ];
  Printf.printf "%-18s %12s %9s %9s %9s %8s %8s\n" "workload" "sim instrs"
    "blocks" "predec" "slow" "blk/pre" "pre/slow";
  let results =
    List.map
      (fun (name, run) ->
         let n, t, stats = timed_sweep run in
         if n.(0) <> n.(1) || n.(1) <> n.(2) then
           fail
             "%s: instruction counts diverge across steppers \
              (blocks %d, predecode %d, slow %d)"
             name n.(0) n.(1) n.(2);
         let ips i = float_of_int n.(i) /. t.(i) in
         let blk_pre = ips 0 /. ips 1 and pre_slow = ips 1 /. ips 2 in
         Printf.printf "%-18s %12d %9.2f %9.2f %9.2f %7.2fx %7.2fx\n" name
           n.(0) (ips 0 /. 1e6) (ips 1 /. 1e6) (ips 2 /. 1e6) blk_pre
           pre_slow;
         if Sys.getenv_opt "SIMPERF_STATS" <> None then begin
           Printf.printf "  %s:" name;
           List.iter
             (fun (k, v) -> if v > 0 then Printf.printf " %s=%d" k v)
             stats;
           print_newline ()
         end;
         (name, n.(0), t, (ips 0, ips 1, ips 2), blk_pre, pre_slow, stats))
      workloads
  in
  let geomean f =
    exp
      (List.fold_left (fun a r -> a +. log (f r)) 0.0 results
       /. float_of_int (List.length results))
  in
  let geo_blk = geomean (fun (_, _, _, _, s, _, _) -> s) in
  let geo_pre = geomean (fun (_, _, _, _, _, s, _) -> s) in
  Printf.printf
    "\ngeometric-mean speedup: block cache over predecode %.2fx, \
     predecode over slow %.2fx\n"
    geo_blk geo_pre;
  let stats =
    List.fold_left
      (fun acc (_, _, _, _, _, _, st) -> merge_fields acc st)
      [] results
  in
  Printf.printf "block cache:";
  List.iter (fun (k, v) -> if v > 0 then Printf.printf " %s=%d" k v) stats;
  print_newline ();
  let alloc_per_cycle = simperf_alloc_gate () in
  if !simperf_json then begin
    let oc = open_out "BENCH_sim_throughput.json" in
    Printf.fprintf oc "{\n  \"benchmark\": \"sim_throughput\",\n";
    Printf.fprintf oc "  \"unit\": \"simulated instructions per host second\",\n";
    Printf.fprintf oc "  \"workloads\": [\n";
    List.iteri
      (fun i (name, n, t, (ips_b, ips_p, ips_s), blk_pre, pre_slow, _) ->
         Printf.fprintf oc
           "    {\"name\": %S, \"instructions\": %d,\n\
           \     \"blocks_on\": {\"seconds\": %.6f, \"ips\": %.0f},\n\
           \     \"predecode_on\": {\"seconds\": %.6f, \"ips\": %.0f},\n\
           \     \"slow\": {\"seconds\": %.6f, \"ips\": %.0f},\n\
           \     \"speedup_blocks\": %.3f, \"speedup_predecode\": %.3f}%s\n"
           name n t.(0) ips_b t.(1) ips_p t.(2) ips_s blk_pre pre_slow
           (if i = List.length results - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ],\n  \"blockcache\": {";
    List.iteri
      (fun i (k, v) ->
         Printf.fprintf oc "%s\"%s\": %d" (if i > 0 then ", " else "") k v)
      stats;
    Printf.fprintf oc "},\n";
    Printf.fprintf oc "  \"replay_minor_words_per_cycle\": %.4f,\n"
      alloc_per_cycle;
    Printf.fprintf oc
      "  \"geomean_blocks_speedup\": %.3f,\n\
      \  \"geomean_predecode_speedup\": %.3f\n}\n"
      geo_blk geo_pre;
    close_out oc;
    print_endline "wrote BENCH_sim_throughput.json"
  end

(* ------------------------------------------------------------------ *)
(* E16: fleet throughput — batch simulation across domain counts       *)

(* The batch runner from lib/fleet executing the three simperf
   workload families as one mixed 32-job batch, swept over domain
   counts.  Per-job results must be bit-identical at every domain
   count (the work-stealing schedule may differ; the simulations may
   not) — the sweep aborts if they are not.  Aggregate throughput is
   simulated instructions per host second across the whole batch. *)

type fleet_work =
  | W_walker of int  (* E6 page-table walker, pages *)
  | W_nic of int  (* E8 user-interrupt NIC, packet period *)
  | W_random of int  (* random-program corpus index *)

let fleet_work_label = function
  | W_walker pages -> Printf.sprintf "e6_walker_p%d" pages
  | W_nic period -> Printf.sprintf "e8_nic_t%d" period
  | W_random i -> Printf.sprintf "random_%02d" i

let fleet_json = ref false

let fleet () =
  section "E16. Fleet throughput (work-stealing batch runner on domains)";
  let images = Array.of_list (Lazy.force simperf_random_programs) in
  let works =
    List.map (fun p -> W_walker p) [ 16; 32; 64; 96 ]
    @ List.map (fun p -> W_nic p) [ 250; 500; 1000; 2000 ]
    @ List.init (Array.length images) (fun i -> W_random i)
  in
  let run_work w =
    let snapshot m = (retired m, Stats.copy m.Machine.stats) in
    match w with
    | W_walker pages -> snapshot (pt_run ~pages ~accesses:3000 Pt_metal)
    | W_nic period -> snapshot (fst (uintr_run ~packets:200 ~period `Uintr))
    | W_random i ->
      let m = machine () in
      (match Machine.load_image m images.(i) with
       | Ok () -> ()
       | Error e -> fail "%s" e);
      Machine.set_pc m 0;
      run_to_ebreak m;
      snapshot m
  in
  (* Warm every code path once so the sweep times steady-state work. *)
  ignore (run_work (W_walker 4));
  ignore (run_work (W_nic 2000));
  let domain_counts = [ 1; 2; 4; 8 ] in
  let rounds = 2 in
  let baseline = ref [||] in
  Printf.printf "%d jobs (E6 walker / E8 NIC / random programs); host cores: %d\n\n"
    (List.length works)
    (Domain.recommended_domain_count ());
  Printf.printf "%8s %9s %10s %12s %10s %11s\n" "domains" "effective"
    "seconds" "sim instrs" "Minstr/s" "speedup";
  let rows =
    List.map
      (fun domains ->
         let best_t = ref infinity and results = ref [||] in
         for _ = 1 to rounds do
           let r, t = time_once (fun () -> fleet_map ~domains run_work works) in
           results := r;
           if t < !best_t then best_t := t
         done;
         if domains = 1 then baseline := !results
         else begin
           (* bit-identical per-job results regardless of domain count *)
           Array.iteri
             (fun i (n, stats) ->
                let n0, stats0 = !baseline.(i) in
                if n <> n0 || stats <> stats0 then
                  fail
                    "fleet: job %s diverges at %d domains\n  1 domain: %s\n  %d domains: %s"
                    (fleet_work_label (List.nth works i))
                    domains
                    (Stats.to_string stats0)
                    domains (Stats.to_string stats))
             !results
         end;
         let instrs = Array.fold_left (fun a (n, _) -> a + n) 0 !results in
         let ips = float_of_int instrs /. !best_t in
         (domains, Fleet.effective_domains domains, !best_t, instrs, ips))
      domain_counts
  in
  let _, _, _, _, ips1 = List.hd rows in
  List.iter
    (fun (domains, effective, t, instrs, ips) ->
       Printf.printf "%8d %9d %10.3f %12d %10.2f %10.2fx\n" domains
         effective t instrs (ips /. 1e6) (ips /. ips1))
    rows;
  print_endline
    "\nper-job Stats are bit-identical across all domain counts (verified\n\
     above; the determinism property in test_fleet enforces the same for\n\
     randomized batches).  Speedup tracks the host's core count: with a\n\
     single-core host the sweep degenerates to scheduling overhead.";
  if !fleet_json then begin
    let oc = open_out "BENCH_fleet_throughput.json" in
    Printf.fprintf oc "{\n  \"benchmark\": \"fleet_throughput\",\n";
    Printf.fprintf oc
      "  \"unit\": \"aggregate simulated instructions per host second\",\n";
    Printf.fprintf oc "  \"host_cores\": %d,\n"
      (Domain.recommended_domain_count ());
    Printf.fprintf oc "  \"jobs\": %d,\n" (List.length works);
    Printf.fprintf oc
      "  \"workloads\": [\"e6_walker_sweep\", \"e8_nic_sweep\", \
       \"random_programs\"],\n";
    Printf.fprintf oc "  \"deterministic_across_domain_counts\": true,\n";
    Printf.fprintf oc "  \"domain_sweep\": [\n";
    List.iteri
      (fun i (domains, effective, t, instrs, ips) ->
         Printf.fprintf oc
           "    {\"domains_requested\": %d, \"domains_effective\": %d, \
            \"seconds\": %.6f, \"instructions\": %d, \"ips\": %.0f, \
            \"speedup_vs_1\": %.3f}%s\n"
           domains effective t instrs ips (ips /. ips1)
           (if i = List.length rows - 1 then "" else ","))
      rows;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    print_endline "wrote BENCH_fleet_throughput.json"
  end

(* ------------------------------------------------------------------ *)
(* E17: observability — tracing overhead and trace-derived attribution *)

(* Two claims to quantify: (a) the disabled probe is free enough that
   the simperf numbers stand (one load-and-branch per would-be event);
   (b) the event stream alone reconstructs the Figure-2 transition
   costs — per-mroutine menter→mexit latency measured from the trace,
   not from Stats. *)

let trace_obs () =
  section "E17. Observability: tracing overhead and cycle attribution";
  let images = Lazy.force simperf_random_programs in
  let run_corpus ~collect () =
    List.fold_left
      (fun acc img ->
         let m = machine () in
         (match Machine.load_image m img with
          | Ok () -> ()
          | Error e -> fail "%s" e);
         Machine.set_pc m 0;
         if collect then begin
           let c = Metal_trace.Collector.create ~capacity:8192 () in
           Machine.set_probe m (Metal_trace.Collector.probe c)
         end;
         run_to_ebreak m;
         acc + retired m)
      0 images
  in
  ignore (run_corpus ~collect:false ());
  let rounds = 3 in
  let t_off = ref infinity and t_on = ref infinity and n = ref 0 in
  for _ = 1 to rounds do
    let r, t = time_once (run_corpus ~collect:false) in
    n := r;
    if t < !t_off then t_off := t;
    let _, t = time_once (run_corpus ~collect:true) in
    if t < !t_on then t_on := t
  done;
  Printf.printf
    "random corpus (%d sim instrs):\n\
    \  probe disabled   %.3f s (%.2f Minstr/s)\n\
    \  collector armed  %.3f s (%.2f Minstr/s)\n\
    \  collection overhead: %.1f%%\n\n"
    !n !t_off
    (float_of_int !n /. !t_off /. 1e6)
    !t_on
    (float_of_int !n /. !t_on /. 1e6)
    ((!t_on /. !t_off -. 1.0) *. 100.0);
  (* Figure-2 view from the event stream: a ping workload crossing
     into a 4-instruction mroutine, under fast decode-replacement
     transitions and under trap-style flushes. *)
  let ping config =
    let m = machine ~config () in
    load_mcode m
      ".mentry 1, ping\n\
       ping:\n\
       wmr m11, t0\n\
       rmr t0, m10\n\
       addi t0, t0, 1\n\
       wmr m10, t0\n\
       rmr t0, m11\n\
       mexit\n";
    ignore
      (load m
         "start:\n\
          li s0, 200\n\
          loop:\n\
          menter 1\n\
          addi s0, s0, -1\n\
          bne s0, zero, loop\n\
          ebreak\n");
    let c = Metal_trace.Collector.create () in
    Machine.set_probe m (Metal_trace.Collector.probe c);
    Machine.set_pc m 0;
    run_to_ebreak m;
    Metal_trace.Collector.metrics c
  in
  let report name config =
    let mx = ping config in
    List.iter
      (fun r ->
         Printf.printf
           "%-24s entry %d: %4d crossings, %5.2f cycles/crossing \
            (min %d, max %d)\n"
           name r.Metal_trace.Metrics.entry r.Metal_trace.Metrics.count
           (float_of_int r.Metal_trace.Metrics.total_cycles
            /. float_of_int (max 1 r.Metal_trace.Metrics.count))
           r.Metal_trace.Metrics.min_cycles r.Metal_trace.Metrics.max_cycles)
      mx.Metal_trace.Metrics.mroutines
  in
  print_endline "transition cost measured from the event stream alone:";
  report "fast replacement" Config.default;
  report "trap-style flush"
    { Config.default with Config.transition = Config.Trap_flush };
  report "palcode (mem mroutines)" Config.palcode;
  print_endline
    "\nthe per-mroutine latency table above is derived purely from\n\
     mode_enter/mode_exit events (Metal_trace.Collector), and matches\n\
     the Stats-derived Figure 2 costs in the transition section."

(* ------------------------------------------------------------------ *)
(* E18: cycle-exact profiler — hot-spot attribution on the Figure-2
   workloads                                                           *)

(* Three claims: (a) the flat profile accounts for every simulated
   cycle (total = Stats.accounted_cycles — the harness FAILS loudly on
   any divergence, same policy as the stall-accounting property);
   (b) the hot-spot ranking is a property of the program, not of the
   simulator — both steppers produce the identical report; (c) the
   fleet-merged profile is byte-identical for 1 domain and N. *)

module Profile = Metal_profile.Profile

let profile_json = ref false

let profile_bench () =
  section "E18. Cycle-exact profiler: hot spots of the Figure-2 workloads";
  let mcode_src =
    ".mentry 1, ping\n\
     ping:\n\
     wmr m11, t0\n\
     rmr t0, m10\n\
     addi t0, t0, 1\n\
     wmr m10, t0\n\
     rmr t0, m11\n\
     mexit\n"
  and guest_src =
    "start:\n\
     li s0, 200\n\
     loop:\n\
     menter 1\n\
     addi s0, s0, -1\n\
     bne s0, zero, loop\n\
     ebreak\n"
  in
  let mimg =
    match Metal_asm.Asm.assemble mcode_src with
    | Ok img -> img
    | Error e -> fail "mcode assembly: %s" (Metal_asm.Asm.error_to_string e)
  in
  (* One profiled run: returns the symbolized report and the machine's
     own cycle accounting for the cross-check. *)
  let profiled config =
    let m = machine ~config () in
    (match Machine.load_mcode m mimg with
     | Ok () -> ()
     | Error e -> fail "mcode load: %s" e);
    let img = load m guest_src in
    let p =
      Profile.create
        ~guest_words:(min 65536 (config.Config.mem_size / 4))
        ~mram_words:config.Config.mram_code_words ()
    in
    Machine.set_probe m (Profile.probe p);
    Machine.set_pc m 0;
    run_to_ebreak m;
    let s = m.Machine.stats in
    let accounted =
      Stats.accounted_cycles s ~pending_stall:m.Machine.stall_cycles
    in
    let symtab = Profile.Symtab.of_images ~guest:img ~mcode:mimg () in
    (Profile.report ~symtab ~upto:s.Stats.cycles p, accounted)
  in
  let configs =
    [ ("fast replacement", Config.default);
      ("trap-style flush",
       { Config.default with Config.transition = Config.Trap_flush });
      ("palcode (mem mroutines)", Config.palcode) ]
  in
  let results =
    List.map
      (fun (name, config) ->
         let r, accounted = profiled config in
         if r.Profile.Report.total_cycles <> accounted then
           fail
             "%s: profile accounts for %d cycles, Stats.accounted_cycles \
              says %d — the profiler lost or double-charged cycles"
             name r.Profile.Report.total_cycles accounted;
         (* (b): the ranking must survive swapping the stepper *)
         let slow, _ =
           profiled { config with Config.predecode = false }
         in
         if not (Profile.Report.equal r slow) then
           fail "%s: fast and slow steppers produce different profiles" name;
         (name, config, r))
      configs
  in
  List.iter
    (fun (name, _, r) ->
       Printf.printf "--- %s (%d cycles, every one attributed) ---\n" name
         r.Profile.Report.total_cycles;
       Format.printf "%a@." (Profile.Report.pp ~top:5) r)
    results;
  (* (c): fleet merge determinism on a batch of the same workload *)
  let jobs =
    Array.init 8 (fun _ ->
        Metal_fleet.Fleet.job ~profile:true
          (Metal_fleet.Fleet.Asm
             { src = guest_src; origin = 0; mcode = Some mcode_src }))
  in
  let merged domains =
    Profile.Report.to_json
      (Metal_fleet.Fleet.merge_profiles
         (Metal_fleet.Fleet.run ~domains jobs))
  in
  let n_domains = max 2 (Metal_fleet.Fleet.default_domains ()) in
  let j1 = merged 1 and jn = merged n_domains in
  if j1 <> jn then
    fail "fleet-merged profile differs between 1 domain and %d" n_domains;
  Printf.printf
    "fleet merge: 8 profiled jobs, merged report byte-identical on 1 vs %d \
     domains\n"
    n_domains;
  if !profile_json then begin
    let oc = open_out "BENCH_profile.json" in
    Printf.fprintf oc "{\n  \"benchmark\": \"profile\",\n";
    Printf.fprintf oc "  \"workloads\": [\n";
    List.iteri
      (fun i (name, _, (r : Profile.Report.t)) ->
         let hottest =
           match
             List.sort
               (fun (a : Profile.Report.flat_row) (b : Profile.Report.flat_row) ->
                  compare (b.cycles, a.pc) (a.cycles, b.pc))
               r.Profile.Report.flat
           with
           | h :: _ -> h
           | [] -> fail "%s: empty flat profile" name
         in
         Printf.fprintf oc
           "    {\"name\": %S, \"total_cycles\": %d, \"other_cycles\": %d,\n\
           \     \"hottest\": {\"seg\": %d, \"pc\": %d, \"name\": %S, \
            \"cycles\": %d}}%s\n"
           name r.Profile.Report.total_cycles r.Profile.Report.other_cycles
           hottest.seg hottest.pc hottest.name hottest.cycles
           (if i = List.length results - 1 then "" else ","))
      results;
    Printf.fprintf oc "  ],\n  \"fleet_merge_deterministic\": true\n}\n";
    close_out oc;
    print_endline "wrote BENCH_profile.json"
  end

(* ------------------------------------------------------------------ *)
(* E19: static WCET bounds vs measured mroutine latency                *)

(* The mverify WCET pass claims: for every invocation of an mroutine
   entry, measured mode_enter→mode_exit latency ≤ the static bound.
   This section runs the Figure-2 null-syscall workload (kenter +
   kexit round trips) under the three Figure-2 configurations, on both
   steppers, measures per-entry worst latencies from the event stream
   (Metal_trace.Metrics), and hard-fails on any bound violation or
   stepper disagreement.  The table reports tightness =
   measured / bound. *)

module Mverify = Metal_mverify.Mverify

let verify_bench () =
  section "E19. Static WCET bounds vs measured mroutine latency (Figure 2)";
  let mcode_src = Privilege.mcode priv_cfg in
  let mimg =
    match Metal_asm.Asm.assemble mcode_src with
    | Ok img -> img
    | Error e -> fail "mcode assembly: %s" (Metal_asm.Asm.error_to_string e)
  in
  let n = 100 in
  let guest = repeat_lines n "li a0, 0\nmenter 0\n" ^ "ebreak\n" in
  let measured config =
    let m = machine ~config () in
    ignore (load m null_kernel);
    (match Privilege.install m priv_cfg with
     | Ok () -> ()
     | Error e -> fail "%s" e);
    let c = Metal_trace.Collector.create () in
    Machine.set_probe m (Metal_trace.Collector.probe c);
    ignore (load m guest);
    Machine.set_pc m 0;
    run_to_ebreak m;
    List.map
      (fun r ->
         ( r.Metal_trace.Metrics.entry,
           (r.Metal_trace.Metrics.count, r.Metal_trace.Metrics.max_cycles) ))
      (Metal_trace.Collector.metrics c).Metal_trace.Metrics.mroutines
  in
  let cases =
    [ ("Metal (fast decode-stage replacement)", Config.default);
      ("Metal with trap-style transitions",
       { Config.default with Config.transition = Config.Trap_flush });
      ("PALcode-style (main-memory mroutines)", Config.palcode) ]
  in
  Printf.printf "%-40s %-16s %9s %7s %10s\n" "configuration" "entry"
    "measured" "bound" "tightness";
  List.iter
    (fun (label, config) ->
       let report = Mverify.verify ~config mimg in
       if not (Mverify.ok report) then
         fail "%s: privilege mcode fails verification:\n%s" label
           (String.concat "\n"
              (List.map Mverify.finding_to_string (Mverify.errors report)));
       let fast = measured config
       and slow = measured { config with Config.predecode = false } in
       if fast <> slow then
         fail "%s: fast and slow steppers disagree on measured latencies"
           label;
       if fast = [] then fail "%s: no mroutine invocations measured" label;
       List.iter
         (fun (entry, (count, max_cycles)) ->
            let bound =
              match Mverify.wcet report ~entry with
              | Some b -> b
              | None -> fail "%s: no WCET bound for entry %d" label entry
            in
            if max_cycles > bound then
              fail
                "%s: entry %d measured %d cycles > static bound %d — the \
                 WCET model is unsound"
                label entry max_cycles bound;
            let name =
              List.find_map
                (fun (e : Mverify.entry_report) ->
                   if e.Mverify.entry = entry then e.Mverify.name else None)
                report.Mverify.entries
            in
            Printf.printf "%-40s %2d %-13s %6d x%-3d %6d %9.2f\n" label entry
              (match name with Some s -> s | None -> "")
              max_cycles count bound
              (float_of_int max_cycles /. float_of_int bound))
         fast)
    cases;
  print_endline
    "\nevery measured mode_enter->mode_exit span stayed within its static\n\
     bound on both steppers; the largest per-entry bound is the documented\n\
     interrupt-latency bound while the image is installed."

(* ------------------------------------------------------------------ *)
(* E20: fault-injection campaigns — verdict rates and detection gates  *)

(* lib/inject's robustness semantics on the Figure-2 workloads: a
   survey campaign over every fault class reports the masked /
   corrected / detected / silent-corruption rates — once with ECC off
   (the ablation showing mram-data/mreg upsets corrupting silently)
   and once with the SECDED layer armed — then the hard gates run:

   - curated zero-silent campaigns (MRAM code flips with user-mode
     triggers and the integrity re-check armed; spurious/dropped
     interrupts against a workload with no handlers) where every
     possible outcome is Masked or Detected by construction — any
     Silent_corruption fails the bench;
   - ECC zero-silent campaigns: mram-data/mreg single-bit flips with
     the SECDED layer armed must never corrupt silently, and at least
     one run per campaign must classify Corrected (the layer fired);
   - verdict determinism: every survey campaign re-run on 1 fleet
     domain must be byte-identical to the max-domain run.

   With --json the campaigns are written to BENCH_inject.json (schema
   metal-inject-bench-v1, one metal-inject-v1 document per campaign)
   for trace_check inject and the ci.sh diff against the committed
   artifact. *)

module Inject = Metal_inject.Inject

let inject_json = ref false

let inject_bench () =
  section "E20. Fault-injection campaigns: robustness verdicts (lib/inject)";
  let ping_mcode =
    ".mentry 1, ping\n\
     ping:\n\
     wmr m11, t0\n\
     rmr t0, m10\n\
     addi t0, t0, 1\n\
     wmr m10, t0\n\
     rmr t0, m11\n\
     mexit\n"
  and ping_guest =
    "start:\n\
     li s0, 200\n\
     loop:\n\
     menter 1\n\
     addi s0, s0, -1\n\
     bne s0, zero, loop\n\
     ebreak\n"
  in
  let prepare_ping sys =
    let m = sys.Metal_core.System.machine in
    load_mcode m ping_mcode;
    ignore (load m ping_guest);
    Machine.set_pc m 0
  and prepare_null sys =
    let m = sys.Metal_core.System.machine in
    ignore (load m null_kernel);
    (match Privilege.install m priv_cfg with
     | Ok () -> ()
     | Error e -> fail "%s" e);
    ignore (load m (repeat_lines 40 "li a0, 0\nmenter 0\n" ^ "ebreak\n"));
    Machine.set_pc m 0
  in
  let ping = Inject.workload ~label:"ping_loop" ~fuel:2_000_000 prepare_ping
  and null =
    Inject.workload ~label:"null_syscall" ~fuel:2_000_000 prepare_null
  in
  (* The same workloads with the SECDED layer armed: single-bit MRAM
     data / m-register upsets are corrected at consumption instead of
     corrupting silently. *)
  let ecc_config = { Config.default with Config.ecc = true } in
  let ping_ecc =
    Inject.workload ~config:ecc_config ~label:"ping_loop+ecc"
      ~fuel:2_000_000 prepare_ping
  and null_ecc =
    Inject.workload ~config:ecc_config ~label:"null_syscall+ecc"
      ~fuel:2_000_000 prepare_null
  in
  let campaign ?domains ~spec w =
    match Inject.run_campaign ?domains ~spec w with
    | Ok c -> c
    | Error e -> fail "campaign %s: %s" w.Inject.label e
  in
  (* Survey: every fault class, verdict-rate table per workload — once
     without ECC (the ablation showing which classes corrupt silently)
     and once with the SECDED layer armed. *)
  let print_survey (c : Inject.campaign) =
    Printf.printf "\n%s: %d runs, oracle %d cycles\n" c.Inject.label
      c.Inject.spec.Inject.runs c.Inject.oracle_cycles;
    Printf.printf "%-14s %5s %7s%s %9s %7s\n" "class" "runs" "masked"
      (if c.Inject.ecc then "  corrected" else "")
      "detected" "silent";
    let count cls p =
      Array.fold_left
        (fun acc (r : Inject.run_record) ->
           if
             (cls = None
              || cls = Some (Inject.fault_class r.Inject.injection.Inject.fault))
             && p r.Inject.verdict
           then acc + 1
           else acc)
        0 c.Inject.records
    in
    let row label cls =
      Printf.printf "%-14s %5d %7d%s %9d %7d\n" label
        (count cls (fun _ -> true))
        (count cls (function Inject.Masked -> true | _ -> false))
        (if c.Inject.ecc then
           Printf.sprintf " %10d"
             (count cls (function Inject.Corrected _ -> true | _ -> false))
         else "")
        (count cls (function Inject.Detected _ -> true | _ -> false))
        (count cls (function Inject.Silent _ -> true | _ -> false))
    in
    List.iter
      (fun cls -> row (Inject.class_to_string cls) (Some cls))
      c.Inject.spec.Inject.classes;
    row "total" None
  in
  let survey_spec = { Inject.default_spec with Inject.runs = 64 } in
  let surveys =
    List.map (fun w -> campaign ~spec:survey_spec w) [ ping; null ]
  in
  List.iter print_survey surveys;
  let ecc_surveys =
    List.map (fun w -> campaign ~spec:survey_spec w) [ ping_ecc; null_ecc ]
  in
  List.iter print_survey ecc_surveys;
  (* Gate 1: curated zero-silent campaigns.  MRAM code flips from
     user-mode boundaries with integrity armed are detected at the
     next menter or never fetched again (masked); spurious/dropped
     interrupts against ping (no handlers installed, interrupts
     disabled) cannot change architectural state.  Any silent verdict
     here is a detection hole. *)
  let curated =
    [ ( "mram-code+integrity",
        { Inject.seed = 101; Inject.runs = 48;
          Inject.classes = [ Inject.Mram_code_flip ];
          Inject.integrity = true; Inject.user_only = true } );
      ( "irq-without-handlers",
        { Inject.seed = 102; Inject.runs = 32;
          Inject.classes = [ Inject.Irq_spurious; Inject.Irq_drop ];
          Inject.integrity = true; Inject.user_only = false } ) ]
  in
  let curated_campaigns =
    List.map
      (fun (name, spec) ->
         let c = campaign ~spec ping in
         let _, _, detected, silent = Inject.summary c in
         if silent > 0 then
           fail
             "curated campaign %s: %d silent corruptions — a fault class \
              that must be masked-or-detected slipped through"
             name silent;
         Printf.printf "curated %-22s %2d runs: 0 silent (%d detected)\n"
           name c.Inject.spec.Inject.runs detected;
         c)
      curated
  in
  (* Gate 1b: with the SECDED layer armed, the two classes that leak
     silently through the ECC-off survey (MRAM data words and Metal
     registers are unchecked state) must show zero silent corruptions:
     every single-bit upset is either never consumed (masked under the
     corrected read view) or repaired at its consumption point
     (corrected).  A silent verdict here means a read path bypassed
     the decoder. *)
  let ecc_spec =
    { Inject.seed = 103; Inject.runs = 48;
      Inject.classes = [ Inject.Mram_data_flip; Inject.Mreg_flip ];
      Inject.integrity = false; Inject.user_only = false }
  in
  let ecc_curated =
    List.map
      (fun w ->
         let c = campaign ~spec:ecc_spec w in
         let _, corrected, detected, silent = Inject.summary c in
         if silent > 0 then
           fail
             "ecc campaign %s: %d silent corruptions — a single-bit \
              mram-data/mreg upset slipped past the SECDED layer"
             c.Inject.label silent;
         Printf.printf
           "ecc     %-22s %2d runs: 0 silent (%d corrected, %d detected)\n"
           c.Inject.label c.Inject.spec.Inject.runs corrected detected;
         c)
      [ ping_ecc; null_ecc ]
  in
  (* Sanity: at least one run across the ECC campaigns must classify
     Corrected — zero everywhere would mean the layer never fired and
     the zero-silent gate proved nothing.  (Per-campaign this is too
     strict: null_syscall's mroutines rewrite their m-registers on
     every menter, so most upsets are overwritten before any read.) *)
  let total_corrected =
    List.fold_left
      (fun acc c -> let _, co, _, _ = Inject.summary c in acc + co)
      0 ecc_curated
  in
  if total_corrected = 0 then
    fail
      "ecc campaigns: no corrected runs anywhere — the SECDED layer \
       never fired, the zero-silent gate is vacuous";
  (* Gate 2: verdicts are a pure function of the spec — byte-identical
     across fleet domain counts. *)
  let n_domains = max 2 (Metal_fleet.Fleet.default_domains ()) in
  List.iter
    (fun w ->
       let j1 = Inject.to_json (campaign ~domains:1 ~spec:survey_spec w)
       and jn =
         Inject.to_json (campaign ~domains:n_domains ~spec:survey_spec w)
       in
       if j1 <> jn then
         fail "%s: verdicts differ between 1 domain and %d" w.Inject.label
           n_domains)
    [ ping; null; ping_ecc; null_ecc ];
  Printf.printf
    "determinism: survey verdicts byte-identical on 1 vs %d domains\n"
    n_domains;
  if !inject_json then begin
    let oc = open_out "BENCH_inject.json" in
    Printf.fprintf oc
      "{\n  \"schema\": \"metal-inject-bench-v1\",\n  \"campaigns\": [\n";
    let all = surveys @ curated_campaigns @ ecc_surveys @ ecc_curated in
    List.iteri
      (fun i c ->
         let doc = String.trim (Inject.to_json c) in
         Printf.fprintf oc "%s%s\n" doc
           (if i = List.length all - 1 then "" else ","))
      all;
    Printf.fprintf oc "  ]\n}\n";
    close_out oc;
    print_endline "wrote BENCH_inject.json"
  end

(* ------------------------------------------------------------------ *)
(* E21: windowed telemetry — collection overhead, watchdog alarms and
   the runtime-vs-static WCET cross-check                              *)

(* Four claims: (a) the telemetry collector is a pure observer — the
   architectural Stats of a run are bit-identical with and without the
   probe armed (cycle overhead 0), and the wall-clock cost of windowing
   the stream is small; (b) the windows account for every pipeline
   cycle: series totals equal Stats on both steppers; (c) the runtime
   wcet watchdog, fed the static bounds from Mverify, confirms every
   measured menter→mexit latency within its bound (wcet_violations=0);
   (d) degradation trips the alarms deterministically — injected mreg
   upsets under ECC raise ecc_storm, a memory-bound phase under
   mem_latency raises ipc_floor in the later windows only, and the
   fleet-merged series and alarm lists are byte-identical across
   domain counts. *)

module Telemetry = Metal_telemetry.Telemetry

let telemetry_json = ref false

let telemetry_bench () =
  section
    "E21. Windowed telemetry: overhead, watchdogs, runtime WCET cross-check";
  let images = Lazy.force simperf_random_programs in
  let run_corpus ~probe () =
    List.fold_left
      (fun acc img ->
         let m = machine () in
         (match Machine.load_image m img with
          | Ok () -> ()
          | Error e -> fail "%s" e);
         Machine.set_pc m 0;
         (match probe with
          | `None -> ()
          | `Telemetry ->
            let t = Telemetry.create () in
            Machine.set_probe m (Telemetry.probe t)
          | `Both ->
            let t = Telemetry.create () in
            let c = Metal_trace.Collector.create ~capacity:8192 () in
            let pt = Telemetry.probe t
            and pc = Metal_trace.Collector.probe c in
            Machine.set_probe m (fun cy k a b ->
                pc cy k a b;
                pt cy k a b));
         run_to_ebreak m;
         acc + retired m)
      0 images
  in
  ignore (run_corpus ~probe:`None ());
  let rounds = 3 in
  let n = ref 0 in
  let t_off = ref infinity and t_tel = ref infinity and t_both = ref infinity in
  for _ = 1 to rounds do
    let r, t = time_once (run_corpus ~probe:`None) in
    n := r;
    if t < !t_off then t_off := t;
    let _, t = time_once (run_corpus ~probe:`Telemetry) in
    if t < !t_tel then t_tel := t;
    let _, t = time_once (run_corpus ~probe:`Both) in
    if t < !t_both then t_both := t
  done;
  let pct t = (t /. !t_off -. 1.0) *. 100.0 in
  Printf.printf
    "random corpus (%d sim instrs):\n\
    \  probe disabled       %.3f s (%.2f Minstr/s)\n\
    \  telemetry armed      %.3f s (%+.1f%%)\n\
    \  telemetry+collector  %.3f s (%+.1f%%)\n"
    !n !t_off
    (float_of_int !n /. !t_off /. 1e6)
    !t_tel (pct !t_tel) !t_both (pct !t_both);
  (* Observer invariance: the architectural run is bit-identical with
     the probe armed — Stats (cycles included) must not move at all. *)
  let stats_of probe =
    let m = machine () in
    (match Machine.load_image m (List.hd images) with
     | Ok () -> ()
     | Error e -> fail "%s" e);
    Machine.set_pc m 0;
    (match probe with
     | `None -> ()
     | `Telemetry ->
       let t = Telemetry.create () in
       Machine.set_probe m (Telemetry.probe t));
    run_to_ebreak m;
    m.Machine.stats
  in
  if stats_of `None <> stats_of `Telemetry then
    fail "telemetry probe perturbed the architectural Stats of the run";
  print_endline
    "observer invariance: Stats bit-identical with telemetry armed \
     (cycle overhead 0)";
  (* (b)+(c): the windowed Figure-2 ping view with the wcet watchdog
     fed the static bounds, on both steppers. *)
  subsection "windowed Figure-2 ping + runtime wcet watchdog";
  let ping_mcode =
    ".mentry 1, ping\n\
     ping:\n\
     wmr m11, t0\n\
     rmr t0, m10\n\
     addi t0, t0, 1\n\
     wmr m10, t0\n\
     rmr t0, m11\n\
     mexit\n"
  and ping_guest =
    "start:\n\
     li s0, 200\n\
     loop:\n\
     menter 1\n\
     addi s0, s0, -1\n\
     bne s0, zero, loop\n\
     ebreak\n"
  in
  let ping_img =
    match Metal_asm.Asm.assemble ping_mcode with
    | Ok img -> img
    | Error e -> fail "mcode assembly: %s" (Metal_asm.Asm.error_to_string e)
  in
  let vreport = Mverify.verify ~config:Config.default ping_img in
  if not (Mverify.ok vreport) then
    fail "ping mcode fails static verification";
  let bounds =
    List.filter_map
      (fun (e : Mverify.entry_report) ->
         Option.map (fun w -> (e.Mverify.entry, w)) e.Mverify.wcet)
      vreport.Mverify.entries
  in
  let wcet_rules =
    match Telemetry.Watchdog.rules_of_string "wcet" with
    | Ok r -> r
    | Error e -> fail "wcet spec: %s" e
  in
  let ping_run ~predecode =
    let config = { Config.default with Config.predecode } in
    let m = machine ~config () in
    load_mcode m ping_mcode;
    ignore (load m ping_guest);
    let t =
      Telemetry.create ~window_cycles:256 ~rules:wcet_rules
        ~wcet_bounds:bounds ()
    in
    Machine.set_probe m (Telemetry.probe t);
    Machine.set_pc m 0;
    run_to_ebreak m;
    let stats = m.Machine.stats in
    let series =
      Telemetry.Series.annotate (Telemetry.series t)
        ~machine_cycles:stats.Stats.cycles
        ~accounted_cycles:
          (Stats.accounted_cycles stats ~pending_stall:m.Machine.stall_cycles)
    in
    (series, Telemetry.alarms t, stats)
  in
  let series, alarms, stats = ping_run ~predecode:true in
  let series_slow, alarms_slow, _ = ping_run ~predecode:false in
  if not (Telemetry.Series.equal series series_slow) then
    fail "fast and slow steppers produce different telemetry series";
  if alarms <> alarms_slow then
    fail "fast and slow steppers produce different watchdog alarms";
  if Telemetry.Series.total_cycles series <> stats.Stats.cycles then
    fail "telemetry windows cover %d cycles, the machine ran %d"
      (Telemetry.Series.total_cycles series)
      stats.Stats.cycles;
  if Telemetry.Series.total_instructions series <> stats.Stats.instructions
  then
    fail "telemetry windows count %d instructions, the machine retired %d"
      (Telemetry.Series.total_instructions series)
      stats.Stats.instructions;
  Format.printf "%a@." Telemetry.Series.pp series;
  print_endline
    "window sums equal Stats totals on both steppers (every cycle accounted)";
  let entry_bound =
    match bounds with
    | [ (entry, b) ] -> (entry, b)
    | _ -> fail "expected exactly one ping entry bound"
  in
  let measured_max =
    List.fold_left
      (fun acc (w : Telemetry.Series.window) -> max acc w.mroutine_max)
      0 series.Telemetry.Series.windows
  in
  if alarms <> [] then
    fail "runtime wcet watchdog fired %d alarms:\n%s" (List.length alarms)
      (String.concat "\n"
         (List.map Telemetry.Watchdog.alarm_to_string alarms));
  Printf.printf
    "wcet_violations=%d (entry %d: measured max %d <= static bound %d, \
     both steppers)\n"
    0 (fst entry_bound) measured_max (snd entry_bound);
  (* (d1): injected mreg upsets under ECC trip the ecc_storm rule, and
     the scenario is a pure function of the plan — replaying it yields
     the identical series and alarm list. *)
  subsection "degradation alarms: ecc_storm under injected mreg upsets";
  let storm_rules =
    match Telemetry.Watchdog.rules_of_string "ecc_storm:2" with
    | Ok r -> r
    | Error e -> fail "ecc_storm spec: %s" e
  in
  let storm_run () =
    let m = machine ~config:{ Config.default with Config.ecc = true } () in
    load_mcode m ping_mcode;
    ignore (load m ping_guest);
    let t = Telemetry.create ~window_cycles:128 ~rules:storm_rules () in
    Machine.set_probe m (Telemetry.probe t);
    Machine.set_pc m 0;
    let plan =
      List.map
        (fun c ->
           { Inject.trigger = Inject.At_cycle c;
             Inject.fault = Inject.Mreg { m = 10; bit = c mod 8 } })
        [ 100; 110; 120; 130; 140; 150 ]
    in
    let stop, applied = Inject.run_plan m ~fuel:2_000_000 ~plan in
    (match stop with
     | Inject.Halted (Machine.Halt_ebreak _) -> ()
     | _ -> fail "ecc_storm workload did not reach its ebreak");
    if applied <> List.length plan then
      fail "ecc_storm plan applied %d of %d injections" applied
        (List.length plan);
    (Telemetry.series t, Telemetry.alarms t)
  in
  let storm_series, storm_alarms = storm_run () in
  let storm_series', storm_alarms' = storm_run () in
  if
    (not (Telemetry.Series.equal storm_series storm_series'))
    || storm_alarms <> storm_alarms'
  then fail "ecc_storm scenario is not deterministic across replays";
  if storm_alarms = [] then
    fail "injected mreg upsets raised no ecc_storm alarms";
  List.iter
    (fun (a : Telemetry.Watchdog.alarm) ->
       if a.Telemetry.Watchdog.rule <> "ecc_storm:2" then
         fail "unexpected alarm %s in the ecc_storm scenario"
           a.Telemetry.Watchdog.rule)
    storm_alarms;
  List.iter
    (fun a ->
       print_endline ("  " ^ Telemetry.Watchdog.alarm_to_string a))
    storm_alarms;
  let storm_first =
    List.fold_left
      (fun acc (a : Telemetry.Watchdog.alarm) ->
         min acc a.Telemetry.Watchdog.window)
      max_int storm_alarms
  in
  let storm_corrections =
    List.fold_left
      (fun acc (w : Telemetry.Series.window) -> acc + w.ecc_corrections)
      0 storm_series.Telemetry.Series.windows
  in
  (* (d2): a memory-bound phase under mem_latency drags the IPC below
     the floor in the later windows only, through the fleet — merged
     series and per-job alarms byte-identical across domain counts. *)
  subsection "degradation alarms: ipc_floor on a two-phase program (fleet)";
  let two_phase =
    "start:\n\
     li s0, 300\n\
     li s1, 0x1000\n\
     alu:\n\
     addi t0, t0, 1\n\
     xor t1, t0, t1\n\
     addi s0, s0, -1\n\
     bne s0, zero, alu\n\
     li s0, 300\n\
     mem:\n\
     lw t2, 0(s1)\n\
     lw t3, 4(s1)\n\
     addi s0, s0, -1\n\
     bne s0, zero, mem\n\
     ebreak\n"
  in
  let floor_rules =
    match Telemetry.Watchdog.rules_of_string "ipc_floor:0.5" with
    | Ok r -> r
    | Error e -> fail "ipc_floor spec: %s" e
  in
  let jobs =
    Array.init 4 (fun i ->
        Metal_fleet.Fleet.job
          ~label:(Printf.sprintf "two_phase_%d" i)
          ~config:{ Config.default with Config.mem_latency = 8 }
          ~telemetry:true ~telemetry_window:256 ~watch:floor_rules
          (Metal_fleet.Fleet.Asm
             { src = two_phase; origin = 0; mcode = None }))
  in
  let o1 = Metal_fleet.Fleet.run ~domains:1 jobs in
  let n_domains = max 2 (Metal_fleet.Fleet.default_domains ()) in
  let on = Metal_fleet.Fleet.run ~domains:n_domains jobs in
  (match Metal_fleet.Fleet.identical o1 on with
   | Ok () -> ()
   | Error e ->
     fail "fleet telemetry diverges between 1 and %d domains: %s" n_domains e);
  let merged1 =
    Telemetry.Series.to_ndjson (Metal_fleet.Fleet.merge_telemetry o1)
  and mergedn =
    Telemetry.Series.to_ndjson (Metal_fleet.Fleet.merge_telemetry on)
  in
  if merged1 <> mergedn then
    fail "merged telemetry ndjson differs between 1 and %d domains"
      n_domains;
  Printf.printf
    "determinism: merged series + alarms byte-identical on 1 vs %d domains\n"
    n_domains;
  let floor_alarms =
    match o1.(0).Metal_fleet.Fleet.result with
    | Ok ok -> ok.Metal_fleet.Fleet.alarms
    | Error e ->
      fail "two-phase job failed: %s" (Metal_fleet.Fleet.fail_to_string e)
  in
  if floor_alarms = [] then
    fail "memory-bound phase raised no ipc_floor alarms";
  List.iter
    (fun (a : Telemetry.Watchdog.alarm) ->
       if a.Telemetry.Watchdog.rule <> "ipc_floor:0.5" then
         fail "unexpected alarm %s in the ipc_floor scenario"
           a.Telemetry.Watchdog.rule)
    floor_alarms;
  let floor_first =
    List.fold_left
      (fun acc (a : Telemetry.Watchdog.alarm) ->
         min acc a.Telemetry.Watchdog.window)
      max_int floor_alarms
  in
  if floor_first = 0 then
    fail "ipc_floor fired in the first window — the ALU phase should be \
          above the floor";
  Printf.printf
    "ipc_floor:0.5 fired %d times from window %d on (ALU-phase windows \
     0..%d clean)\n"
    (List.length floor_alarms)
    floor_first (floor_first - 1);
  if !telemetry_json then begin
    (* Every value below is cycle-derived and deterministic — ci.sh
       byte-diffs this artifact; wall-clock numbers stay on stdout. *)
    let oc = open_out "BENCH_telemetry.json" in
    Printf.fprintf oc "{\n  \"schema\": \"metal-telemetry-bench-v1\",\n";
    Printf.fprintf oc
      "  \"ping\": {\"window_cycles\": %d, \"windows\": %d, \
       \"total_cycles\": %d, \"instructions\": %d, \"mroutine_exits\": %d, \
       \"mroutine_max\": %d},\n"
      series.Telemetry.Series.window_cycles
      (List.length series.Telemetry.Series.windows)
      (Telemetry.Series.total_cycles series)
      (Telemetry.Series.total_instructions series)
      (List.fold_left
         (fun acc (w : Telemetry.Series.window) -> acc + w.mroutine_exits)
         0 series.Telemetry.Series.windows)
      measured_max;
    Printf.fprintf oc
      "  \"wcet\": {\"entry\": %d, \"static_bound\": %d, \
       \"measured_max\": %d, \"violations\": 0, \"steppers_agree\": true},\n"
      (fst entry_bound) (snd entry_bound) measured_max;
    Printf.fprintf oc
      "  \"ecc_storm\": {\"rule\": \"ecc_storm:2\", \"injections\": 6, \
       \"corrections\": %d, \"alarms\": %d, \"first_window\": %d},\n"
      storm_corrections
      (List.length storm_alarms)
      storm_first;
    Printf.fprintf oc
      "  \"ipc_floor\": {\"rule\": \"ipc_floor:0.5\", \"jobs\": %d, \
       \"alarms_per_job\": %d, \"first_window\": %d, \
       \"fleet_merge_identical\": true}\n"
      (Array.length jobs)
      (List.length floor_alarms)
      floor_first;
    Printf.fprintf oc "}\n";
    close_out oc;
    print_endline "wrote BENCH_telemetry.json"
  end

(* ------------------------------------------------------------------ *)
(* Host microbenchmarks (Bechamel)                                     *)

let host () =
  section "Host microbenchmarks (Bechamel: simulator throughput)";
  let open Bechamel in
  let make_machine () =
    let m = machine () in
    ignore
      (load m "loop:\naddi t0, t0, 1\nslli t1, t0, 3\nxor t2, t1, t0\nj loop\n");
    Machine.set_pc m 0;
    m
  in
  let sim_m = make_machine () in
  let step_test =
    Test.make ~name:"pipeline-step"
      (Staged.stage (fun () -> Pipeline.step sim_m))
  in
  let decode_test =
    let w =
      Encode.encode_exn (Instr.Op { op = Instr.Add; rd = 1; rs1 = 2; rs2 = 3 })
    in
    Test.make ~name:"decode" (Staged.stage (fun () -> ignore (Decode.decode w)))
  in
  let asm_test =
    Test.make ~name:"assemble-20-lines"
      (Staged.stage (fun () ->
           ignore (Metal_asm.Asm.assemble (repeat_lines 20 "addi a0, a0, 1\n"))))
  in
  let synth_test =
    Test.make ~name:"table2"
      (Staged.stage (fun () -> ignore (Metal_synth.Report.table2 ())))
  in
  let tests =
    Test.make_grouped ~name:"metal"
      [ step_test; decode_test; asm_test; synth_test ]
  in
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.3) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.iter
    (fun (name, ols) ->
       match Analyze.OLS.estimates ols with
       | Some [ est ] -> Printf.printf "%-28s %12.1f ns/op\n" name est
       | Some _ | None -> Printf.printf "%-28s (no estimate)\n" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

let sections =
  [ ("table1", table1); ("table2", table2); ("figure1", figure1);
    ("figure2", figure2); ("transition", transition);
    ("pagetable", pagetable); ("stm", stm); ("uintr", uintr);
    ("isolation", isolation); ("ablation", ablation); ("nested", nested);
    ("cfi", cfi); ("pkeys", pkeys); ("sidechannel", sidechannel);
    ("simperf", simperf); ("fleet", fleet); ("trace", trace_obs);
    ("profile", profile_bench); ("verify", verify_bench);
    ("inject", inject_bench); ("telemetry", telemetry_bench);
    ("host", host) ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
         if a = "--json" then begin
           simperf_json := true;
           fleet_json := true;
           profile_json := true;
           inject_json := true;
           telemetry_json := true;
           false
         end
         else true)
      args
  in
  let requested =
    match args with
    | _ :: _ as picks -> picks
    | [] -> List.map fst sections
  in
  print_endline
    "Metal: An Open Architecture for Developing Processor Features\n\
     benchmark harness - regenerates the paper's tables, figures and claims";
  List.iter
    (fun name ->
       match List.assoc_opt name sections with
       | Some f -> f ()
       | None ->
         Printf.eprintf "unknown section %S (known: %s)\n" name
           (String.concat ", " (List.map fst sections));
         exit 1)
    requested
