(* Shared machinery for the benchmark harness. *)

open Metal_cpu

let fail fmt = Printf.ksprintf failwith fmt

let machine ?(config = Config.default) () = Machine.create ~config ()

let load m ?origin src =
  match Metal_asm.Asm.assemble ?origin src with
  | Error e -> fail "assembly: %s" (Metal_asm.Asm.error_to_string e)
  | Ok img ->
    (match Machine.load_image m img with
     | Ok () -> ()
     | Error e -> fail "load: %s" e);
    img

let load_mcode m src =
  match Metal_asm.Asm.assemble src with
  | Error e -> fail "mcode assembly: %s" (Metal_asm.Asm.error_to_string e)
  | Ok img ->
    (match Machine.load_mcode m img with
     | Ok () -> ()
     | Error e -> fail "mcode load: %s" e)

let run_to_ebreak ?(max_cycles = 50_000_000) m =
  match Pipeline.run m ~max_cycles with
  | Some (Machine.Halt_ebreak _) -> ()
  | Some h -> fail "unexpected halt: %s" (Machine.halted_to_string h)
  | None -> fail "cycle budget exhausted"

let cycles m = m.Machine.stats.Stats.cycles

let reg m r = Machine.get_reg m r

(* Run [src] (with optional mroutines) to its ebreak and return the
   machine for inspection. *)
let exec ?config ?mcode ?setup src =
  let m = machine ?config () in
  (match mcode with None -> () | Some s -> load_mcode m s);
  (match setup with None -> () | Some f -> f m);
  ignore (load m src);
  Machine.set_pc m 0;
  run_to_ebreak m;
  m

(* Per-invocation cost: run a program containing [n] occurrences of an
   operation and the same program without them; the difference divided
   by [n]. *)
let per_op_cost ?config ?mcode ?setup ~n ~with_op ~without_op () =
  let a = exec ?config ?mcode ?setup with_op in
  let b = exec ?config ?mcode ?setup without_op in
  float_of_int (cycles a - cycles b) /. float_of_int n

(* Tables *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n--- %s ---\n" title

let row_format widths =
  String.concat "  " (List.map (fun w -> Printf.sprintf "%%-%ds" w) widths)

let print_row widths cells =
  List.iteri
    (fun i cell ->
       let w = List.nth widths i in
       Printf.printf "%-*s  " w cell)
    cells;
  print_newline ()

let _ = row_format

let repeat_lines n line = String.concat "" (List.init n (fun _ -> line))

(* Fleet helpers: run a sweep's work items in parallel and unwrap.  A
   failed item aborts the section — the bench tables have no place for
   partial rows. *)

module Fleet = Metal_fleet.Fleet

let fleet_map ?domains f items =
  Array.map
    (function Ok v -> v | Error e -> fail "fleet job failed: %s" e)
    (Fleet.map ?domains f (Array.of_list items))

(* [fleet_assoc f items] keyed variant: returns a lookup function so
   call sites read like the sequential code they replace. *)
let fleet_assoc ?domains f items =
  let results = fleet_map ?domains f items in
  let table = List.mapi (fun i item -> (item, results.(i))) items in
  fun item ->
    match List.assoc_opt item table with
    | Some r -> r
    | None -> fail "fleet_assoc: unknown item"

(* Replace every occurrence of [needle] in [haystack]. *)
let replace_all ~needle ~by haystack =
  let nlen = String.length needle in
  let buf = Buffer.create (String.length haystack) in
  let rec go i =
    if i > String.length haystack - nlen then
      Buffer.add_string buf (String.sub haystack i (String.length haystack - i))
    else if String.sub haystack i nlen = needle then begin
      Buffer.add_string buf by;
      go (i + nlen)
    end
    else begin
      Buffer.add_char buf haystack.[i];
      go (i + 1)
    end
  in
  go 0;
  Buffer.contents buf
