lib/mgen/mgen.ml: Buffer Csr List Metal_asm Metal_cpu Metal_hw Printf Reg Result Word
