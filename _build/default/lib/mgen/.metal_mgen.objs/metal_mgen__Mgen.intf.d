lib/mgen/mgen.mli: Csr Metal_cpu Reg
