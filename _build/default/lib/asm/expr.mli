(** Constant expressions in assembler operands.

    Supports integers, symbols, [+ - * /], unary minus, parentheses and
    the relocation helpers [%hi(e)]/[%lo(e)] used by [lui]/[addi]
    pairs.  [%hi] rounds so that [%hi(e) << 12 + sign-extend(%lo(e))]
    reconstructs [e]. *)

type t =
  | Num of int
  | Sym of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Hi of t
  | Lo of t

val parse : Lex.token list -> (t * Lex.token list, string) result
(** [parse tokens] parses the longest expression prefix, returning the
    rest of the tokens. *)

val eval : lookup:(string -> int option) -> t -> (int, string) result
(** [eval ~lookup e] evaluates [e]; [lookup] resolves symbols.  Fails
    on undefined symbols or division by zero. *)

val symbols : t -> string list
(** All symbols referenced by [e]. *)

val to_string : t -> string
