(** Disassembler. *)

val word : Word.t -> string
(** [word w] is the assembly rendering of [w], or [".word 0x..."] for
    undecodable words. *)

val image : Image.t -> string
(** Disassemble every 4-byte-aligned word of every chunk of an image,
    one ["addr: word  text"] line each. *)

val range : read:(int -> Word.t) -> start:int -> count:int -> string
(** Disassemble [count] words starting at [start], reading through
    [read]. *)
