type t =
  | Num of int
  | Sym of string
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Hi of t
  | Lo of t

let ( let* ) = Result.bind

(* Grammar:
     expr   ::= term (('+' | '-') term)*
     term   ::= factor (('*' | '/') factor)*
     factor ::= INT | IDENT | '-' factor | '(' expr ')'
              | '%' ('hi'|'lo') '(' expr ')' *)
let rec parse tokens = parse_sum tokens

and parse_sum tokens =
  let* lhs, rest = parse_term tokens in
  let rec loop lhs rest =
    match rest with
    | Lex.Plus :: more ->
      let* rhs, rest = parse_term more in
      loop (Add (lhs, rhs)) rest
    | Lex.Minus :: more ->
      let* rhs, rest = parse_term more in
      loop (Sub (lhs, rhs)) rest
    | _ -> Ok (lhs, rest)
  in
  loop lhs rest

and parse_term tokens =
  let* lhs, rest = parse_factor tokens in
  let rec loop lhs rest =
    match rest with
    | Lex.Star :: more ->
      let* rhs, rest = parse_factor more in
      loop (Mul (lhs, rhs)) rest
    | Lex.Slash :: more ->
      let* rhs, rest = parse_factor more in
      loop (Div (lhs, rhs)) rest
    | _ -> Ok (lhs, rest)
  in
  loop lhs rest

and parse_factor tokens =
  match tokens with
  | Lex.Int v :: rest -> Ok (Num v, rest)
  | Lex.Ident s :: rest -> Ok (Sym s, rest)
  | Lex.Minus :: rest ->
    let* e, rest = parse_factor rest in
    Ok (Neg e, rest)
  | Lex.Lparen :: rest ->
    let* e, rest = parse_sum rest in
    begin match rest with
    | Lex.Rparen :: rest -> Ok (e, rest)
    | _ -> Error "expected ')'"
    end
  | Lex.Percent :: Lex.Ident kind :: Lex.Lparen :: rest ->
    let* e, rest = parse_sum rest in
    begin match rest with
    | Lex.Rparen :: rest ->
      begin match kind with
      | "hi" -> Ok (Hi e, rest)
      | "lo" -> Ok (Lo e, rest)
      | _ -> Error (Printf.sprintf "unknown relocation %%%s" kind)
      end
    | _ -> Error "expected ')' after relocation"
    end
  | t :: _ ->
    Error (Printf.sprintf "expected expression, found %S" (Lex.token_to_string t))
  | [] -> Error "expected expression, found end of line"

let rec eval ~lookup e =
  match e with
  | Num v -> Ok v
  | Sym s ->
    begin match lookup s with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "undefined symbol %S" s)
    end
  | Neg e ->
    let* v = eval ~lookup e in
    Ok (-v)
  | Add (a, b) ->
    let* a = eval ~lookup a in
    let* b = eval ~lookup b in
    Ok (a + b)
  | Sub (a, b) ->
    let* a = eval ~lookup a in
    let* b = eval ~lookup b in
    Ok (a - b)
  | Mul (a, b) ->
    let* a = eval ~lookup a in
    let* b = eval ~lookup b in
    Ok (a * b)
  | Div (a, b) ->
    let* a = eval ~lookup a in
    let* b = eval ~lookup b in
    if b = 0 then Error "division by zero in expression" else Ok (a / b)
  | Hi e ->
    let* v = eval ~lookup e in
    let v = Word.of_int v in
    (* Round up when the low half is negative as a 12-bit value. *)
    Ok (Word.bits ~hi:31 ~lo:12 (Word.add v 0x800))
  | Lo e ->
    let* v = eval ~lookup e in
    Ok (Word.sign_extend ~width:12 (Word.of_int v))

let rec symbols = function
  | Num _ -> []
  | Sym s -> [ s ]
  | Neg e | Hi e | Lo e -> symbols e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> symbols a @ symbols b

let rec to_string = function
  | Num v -> string_of_int v
  | Sym s -> s
  | Neg e -> "-" ^ to_string e
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_string a) (to_string b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_string a) (to_string b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_string a) (to_string b)
  | Div (a, b) -> Printf.sprintf "(%s / %s)" (to_string a) (to_string b)
  | Hi e -> Printf.sprintf "%%hi(%s)" (to_string e)
  | Lo e -> Printf.sprintf "%%lo(%s)" (to_string e)
