(** Line lexer for the assembler.

    Assembly sources are line-oriented: comments run from ['#'] or
    [";"] (or ["//"]) to end of line; each line holds optional labels,
    then at most one directive or instruction. *)

type token =
  | Ident of string  (** identifiers, mnemonics, directives like [".org"] *)
  | Int of int       (** decimal, [0x..], [0b..], [0o..] or ['c'] literals *)
  | Str of string    (** double-quoted, with escapes *)
  | Lparen
  | Rparen
  | Comma
  | Colon
  | Plus
  | Minus
  | Star
  | Slash
  | Percent

val equal_token : token -> token -> bool

val token_to_string : token -> string

val tokenize : string -> (token list, string) result
(** [tokenize line] lexes one source line, comments stripped.  Returns
    a descriptive error for bad literals or stray characters. *)
