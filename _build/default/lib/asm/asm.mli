(** Two-pass assembler for the Metal ISA.

    Sources are line-oriented: optional labels ([name:]), then one
    directive or instruction.  Comments start with [#], [;] or [//].

    {2 Directives}
    - [.org EXPR] — set the location counter (absolute).
    - [.align N] — align to [2{^N}] bytes.
    - [.space EXPR] — reserve bytes (not emitted).
    - [.word E, ...], [.half E, ...], [.byte E, ...] — emit data.
    - [.ascii "s"], [.asciiz "s"] — emit a string (the latter
      NUL-terminated).
    - [.equ NAME, EXPR] — define a constant (backward references only).
    - [.mentry N, LABEL] — declare mroutine entry [N] at [LABEL]
      (consumed by the MRAM loader).
    - [.global NAME] — mark a symbol as exported (documentation only;
      all symbols are visible in the image).

    {2 Pseudo-instructions}
    [nop], [li], [la], [mv], [not], [neg], [seqz], [snez], [sltz],
    [sgtz], [j], [jr], [ret], [call], [tail], [beqz], [bnez], [blez],
    [bgez], [bltz], [bgtz], [bgt], [ble], [bgtu], [bleu].

    Branch and jump targets are absolute expressions (normally labels);
    the assembler converts them to pc-relative offsets.  The symbol
    [.]  evaluates to the current instruction's address. *)

type error = { line : int; msg : string }

val error_to_string : error -> string

val assemble : ?origin:int -> string -> (Image.t, error) result
(** [assemble ?origin source] assembles [source].  [origin] (default
    0) is the initial location counter; [.org] overrides it. *)

val assemble_exn : ?origin:int -> string -> Image.t
(** @raise Invalid_argument with the formatted error. *)
