lib/asm/image.mli: Format Word
