lib/asm/disasm.ml: Buffer Char Decode Image Instr List Printf String
