lib/asm/asm.ml: Char Csr Encode Expr Hashtbl Image Instr Lex List Printf Reg Result String Word
