lib/asm/lex.mli:
