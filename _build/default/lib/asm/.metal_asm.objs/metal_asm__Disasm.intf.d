lib/asm/disasm.mli: Image Word
