lib/asm/asm.mli: Image
