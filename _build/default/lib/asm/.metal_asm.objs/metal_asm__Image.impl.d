lib/asm/image.ml: Buffer Char Format Hashtbl List Printf Result String Word
