lib/asm/lex.ml: Buffer Char List Printf String
