lib/asm/expr.mli: Lex
