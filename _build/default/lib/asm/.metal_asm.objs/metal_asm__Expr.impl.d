lib/asm/expr.ml: Lex Printf Result Word
