type token =
  | Ident of string
  | Int of int
  | Str of string
  | Lparen
  | Rparen
  | Comma
  | Colon
  | Plus
  | Minus
  | Star
  | Slash
  | Percent

let equal_token (a : token) (b : token) = a = b

let token_to_string = function
  | Ident s -> s
  | Int n -> string_of_int n
  | Str s -> Printf.sprintf "%S" s
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Colon -> ":"
  | Plus -> "+"
  | Minus -> "-"
  | Star -> "*"
  | Slash -> "/"
  | Percent -> "%"

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '.'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

(* Strip comments: '#' and ';' always start a comment; "//" does too. *)
let strip_comments line =
  let n = String.length line in
  let rec scan i in_string =
    if i >= n then n
    else
      match line.[i] with
      | '"' -> scan (i + 1) (not in_string)
      | '\\' when in_string && i + 1 < n -> scan (i + 2) in_string
      | ('#' | ';') when not in_string -> i
      | '/' when (not in_string) && i + 1 < n && line.[i + 1] = '/' -> i
      | _ -> scan (i + 1) in_string
  in
  String.sub line 0 (scan 0 false)

let lex_string line start =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= n then Error "unterminated string literal"
    else
      match line.[i] with
      | '"' -> Ok (Buffer.contents buf, i + 1)
      | '\\' ->
        if i + 1 >= n then Error "dangling escape in string"
        else begin
          let c =
            match line.[i + 1] with
            | 'n' -> Ok '\n'
            | 't' -> Ok '\t'
            | 'r' -> Ok '\r'
            | '0' -> Ok '\000'
            | '\\' -> Ok '\\'
            | '"' -> Ok '"'
            | c -> Error (Printf.sprintf "unknown escape '\\%c'" c)
          in
          match c with
          | Ok c ->
            Buffer.add_char buf c;
            go (i + 2)
          | Error e -> Error e
        end
      | c ->
        Buffer.add_char buf c;
        go (i + 1)
  in
  go start

let lex_char line start =
  let n = String.length line in
  if start >= n then Error "unterminated character literal"
  else
    let value, next =
      if line.[start] = '\\' && start + 1 < n then
        let c =
          match line.[start + 1] with
          | 'n' -> Some '\n'
          | 't' -> Some '\t'
          | 'r' -> Some '\r'
          | '0' -> Some '\000'
          | '\\' -> Some '\\'
          | '\'' -> Some '\''
          | _ -> None
        in
        (c, start + 2)
      else (Some line.[start], start + 1)
    in
    match value with
    | None -> Error "unknown escape in character literal"
    | Some c ->
      if next < n && line.[next] = '\'' then Ok (Char.code c, next + 1)
      else Error "unterminated character literal"

let lex_number line start =
  let n = String.length line in
  let rec span i =
    if i < n
       && (is_ident_char line.[i] || line.[i] = 'x' || line.[i] = 'X')
    then span (i + 1)
    else i
  in
  let stop = span start in
  let text = String.sub line start (stop - start) in
  match int_of_string_opt text with
  | Some v -> Ok (v, stop)
  | None -> Error (Printf.sprintf "bad numeric literal %S" text)

let tokenize line =
  let line = strip_comments line in
  let n = String.length line in
  let rec go i acc =
    if i >= n then Ok (List.rev acc)
    else
      match line.[i] with
      | ' ' | '\t' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (Lparen :: acc)
      | ')' -> go (i + 1) (Rparen :: acc)
      | ',' -> go (i + 1) (Comma :: acc)
      | ':' -> go (i + 1) (Colon :: acc)
      | '+' -> go (i + 1) (Plus :: acc)
      | '-' -> go (i + 1) (Minus :: acc)
      | '*' -> go (i + 1) (Star :: acc)
      | '/' -> go (i + 1) (Slash :: acc)
      | '%' -> go (i + 1) (Percent :: acc)
      | '"' ->
        begin match lex_string line (i + 1) with
        | Ok (s, next) -> go next (Str s :: acc)
        | Error e -> Error e
        end
      | '\'' ->
        begin match lex_char line (i + 1) with
        | Ok (v, next) -> go next (Int v :: acc)
        | Error e -> Error e
        end
      | c when is_digit c ->
        begin match lex_number line i with
        | Ok (v, next) -> go next (Int v :: acc)
        | Error e -> Error e
        end
      | c when is_ident_start c ->
        let rec span j = if j < n && is_ident_char line.[j] then span (j + 1) else j in
        let stop = span i in
        (* Allow bracketed CSR names like exc_handler[ecall] as one ident. *)
        let stop =
          if stop < n && line.[stop] = '[' then begin
            let rec close j =
              if j >= n then stop
              else if line.[j] = ']' then j + 1
              else close (j + 1)
            in
            close (stop + 1)
          end
          else stop
        in
        go stop (Ident (String.sub line i (stop - i)) :: acc)
      | c -> Error (Printf.sprintf "unexpected character %C" c)
  in
  go 0 []
