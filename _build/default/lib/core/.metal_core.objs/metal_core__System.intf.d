lib/core/system.mli: Metal_asm Metal_cpu Metal_hw Word
