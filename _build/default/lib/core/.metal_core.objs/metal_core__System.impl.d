lib/core/system.ml: Metal_asm Metal_cpu Metal_hw Reg
