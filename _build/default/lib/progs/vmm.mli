(** Virtualization: nested page tables in mcode (Section 3.5).

    "Developers can use Metal to implement virtualization.  For
    example, Metal allows hypervisors to implement nested page
    tables."

    The guest OS manages an ordinary two-level page table whose
    addresses are *guest-physical*; the VMM confines the guest to a
    contiguous guest-physical window mapped at a host-physical base.
    The page-fault mroutine performs the two-stage translation: it
    walks the guest's table, translating every guest-physical access
    (table reads and the final leaf) through the VMM's window, and
    inserts the composed guest-virtual -> host-physical mapping into
    the TLB.  A guest reference outside its window is a VMM violation
    and is delivered to the hypervisor. *)

type config = {
  guest_base : int;
      (** host-physical base of the guest's memory window. *)
  guest_size : int;  (** window size in bytes (page-aligned). *)
  vmm_fault_entry : int;
      (** host address handling guest violations and true guest page
          faults; 0 halts the machine (debug).  Receives the guest
          pc in t5 and the offending address in t6. *)
}

val mcode : config -> string
(** Entry {!Layout.vmm_pf}. *)

val install : Metal_cpu.Machine.t -> config -> (unit, string) result
(** Load the walker, configure the window and delegate the three
    page-fault causes to it. *)

val set_guest_root : Metal_cpu.Machine.t -> int -> unit
(** Set the guest page-table root (a guest-physical address); the
    guest would do this through a para-virtual call. *)

type counters = { nested_walks : int; vmm_violations : int }

val counters : Metal_cpu.Machine.t -> counters
