type config = { guest_base : int; guest_size : int; vmm_fault_entry : int }

let base = Layout.vmm_data
let off_gbase = base + 0x00
let off_gsize = base + 0x04
let off_groot = base + 0x08
let off_walks = base + 0x0C
let off_violations = base + 0x10

let mcode cfg =
  Printf.sprintf
    {|# Virtualization: nested page tables (paper Section 3.5).
.org %d
.equ VGBASE, %d
.equ VGSIZE, %d
.equ VGROOT, %d
.equ VWALKS, %d
.equ VVIOL, %d
.equ VMM_FAULT, %d

.mentry %d, vmm_pf

# Two-stage page-fault walker: guest-virtual -> guest-physical (guest
# page table) -> host-physical (VMM window).  t0-t6 parked in m16-m22.
vmm_pf:
    wmr m16, t0
    wmr m17, t1
    wmr m18, t2
    wmr m19, t3
    wmr m20, t4
    wmr m21, t5
    wmr m22, t6
    mld t4, VWALKS(zero)
    addi t4, t4, 1
    mst t4, VWALKS(zero)
    rmr t0, m29                # guest virtual address
    mld t1, VGROOT(zero)       # guest page-table root (guest-physical)
    mld t6, VGSIZE(zero)
    bgeu t1, t6, vmm_violation
    mld t6, VGBASE(zero)
    add t1, t1, t6             # host-physical root
    srli t2, t0, 22
    slli t2, t2, 2
    add t2, t2, t1
    physld t3, 0(t2)           # guest level-1 PTE
    andi t4, t3, 1
    beqz t4, vmm_deliver
    andi t4, t3, 0xE
    bnez t4, vmm_deliver       # no superpages under nesting
    li t4, 0xFFFFF000
    and t1, t3, t4             # level-2 table (guest-physical)
    mld t6, VGSIZE(zero)
    bgeu t1, t6, vmm_violation
    mld t6, VGBASE(zero)
    add t1, t1, t6
    srli t2, t0, 12
    andi t2, t2, 0x3FF
    slli t2, t2, 2
    add t2, t2, t1
    physld t3, 0(t2)           # guest leaf PTE
    andi t4, t3, 1
    beqz t4, vmm_deliver
    andi t4, t3, 0xE
    beqz t4, vmm_deliver
    rmr t4, m30                # demanded permission, by cause
    addi t4, t4, -4
    li t5, 8
    beqz t4, vmm_perm
    li t5, 2
    addi t4, t4, -1
    beqz t4, vmm_perm
    li t5, 4
vmm_perm:
    and t6, t3, t5
    beqz t6, vmm_deliver
    li t4, 0xFFFFF000
    and t1, t3, t4             # guest-physical frame
    mld t6, VGSIZE(zero)
    bgeu t1, t6, vmm_violation
    mld t6, VGBASE(zero)
    add t1, t1, t6             # host-physical frame
    li t4, 0xFFFFF000
    and t6, t0, t4
    mcsrr t5, asid
    slli t5, t5, 4
    or t6, t6, t5              # TLB tag (never global under nesting)
    andi t3, t3, 0x1EE         # pkey + XWR from the guest PTE
    or t3, t3, t1
    tlbw t6, t3
    rmr t0, m16
    rmr t1, m17
    rmr t2, m18
    rmr t3, m19
    rmr t4, m20
    rmr t5, m21
    rmr t6, m22
    mexit

# The guest escaped its window: count it and hand off to the VMM.
vmm_violation:
    mld t4, VVIOL(zero)
    addi t4, t4, 1
    mst t4, VVIOL(zero)

# True guest fault or violation: deliver to the hypervisor.
vmm_deliver:
    li t4, VMM_FAULT
    bnez t4, vmm_os
    ebreak
vmm_os:
    rmr t5, m31
    rmr t6, m29
    wmr m31, t4
    rmr t0, m16
    rmr t1, m17
    rmr t2, m18
    rmr t3, m19
    rmr t4, m20
    mexit
|}
    Layout.vmm_org off_gbase off_gsize off_groot off_walks off_violations
    cfg.vmm_fault_entry Layout.vmm_pf

let install m cfg =
  if cfg.guest_base land 0xFFF <> 0 || cfg.guest_size land 0xFFF <> 0 then
    Error "vmm: guest window must be page-aligned"
  else
    match Metal_asm.Asm.assemble (mcode cfg) with
    | Error e -> Error (Metal_asm.Asm.error_to_string e)
    | Ok img ->
      begin match Metal_cpu.Machine.load_mcode m img with
      | Error _ as e -> e
      | Ok () ->
        let mram = m.Metal_cpu.Machine.mram in
        let put off v = ignore (Metal_hw.Mram.store_word mram ~addr:off v) in
        put off_gbase cfg.guest_base;
        put off_gsize cfg.guest_size;
        List.iter
          (fun cause ->
             Metal_cpu.Machine.install_handler m cause ~entry:Layout.vmm_pf)
          [ Cause.Page_fault_fetch; Cause.Page_fault_load;
            Cause.Page_fault_store ];
        Ok ()
      end

let set_guest_root m root =
  ignore (Metal_hw.Mram.store_word m.Metal_cpu.Machine.mram ~addr:off_groot root)

type counters = { nested_walks : int; vmm_violations : int }

let read_slot m off =
  match Metal_hw.Mram.load_word m.Metal_cpu.Machine.mram ~addr:off with
  | Some v -> v
  | None -> 0

let counters m =
  { nested_walks = read_slot m off_walks;
    vmm_violations = read_slot m off_violations }
