(* Entry numbers *)
let kenter = 0
let kexit = 1
let ktlbw = 2
let exc_trampoline = 3
let pf_handler = 8
let pf_set_root = 9
let tstart = 16
let tcommit = 17
let tabort = 18
let tread = 19
let twrite = 20
let uintr_deliver = 24
let uintr_setup = 25
let uintr_ret = 26
let dom_enter = 28
let dom_exit = 29
let ss_call = 32
let ss_ret = 33
let ss_enable = 34
let ss_disable = 35
let cap_create = 40
let cap_load = 41
let cap_store = 42
let cap_revoke = 43
let enc_enter = 48
let enc_exit = 49
let enc_hash = 50
let nest_store = 56
let vmm_pf = 57

(* Code-segment origins.  The default MRAM code segment is 16 KiB
   (0x4000); regions are sized generously for each program. *)
let privilege_org = 0x0000
let pagetable_org = 0x0200
let stm_org = 0x0400
let uintr_org = 0x0900
let isolation_org = 0x0B00
let shadowstack_org = 0x0D00
let capability_org = 0x1000
let enclave_org = 0x1400
let nested_org = 0x1700
let vmm_org = 0x1800

(* Data-segment regions (default data segment: 8 KiB). *)
let pagetable_data = 0x0000
let stm_data = 0x0100
let uintr_data = 0x0020
let isolation_data = 0x0040
let shadowstack_data = 0x0540
let capability_data = 0x0660
let enclave_data = 0x0060
let nested_data = 0x0080
let vmm_data = 0x00A0
