let capacity = 16

let base = Layout.capability_data
let off_count = base + 0x00
let off_table = base + 0x10

let mcode () =
  Printf.sprintf
    {|# Hardware capabilities in mcode (paper Section 3.5).
.org %d
.equ CAP_COUNT, %d
.equ CAP_TABLE, %d
.equ CAP_CAPACITY, %d

.mentry %d, cap_create
.mentry %d, cap_load
.mentry %d, cap_store
.mentry %d, cap_revoke

# a0 = base, a1 = length, a2 = perms (bit0 read, bit1 write).
# Returns the capability index in a0, or -1 when the table is full.
cap_create:
    mld t0, CAP_COUNT(zero)
    li t1, CAP_CAPACITY
    beq t0, t1, cap_full
    slli t1, t0, 4
    addi t1, t1, CAP_TABLE
    mst a0, 0(t1)
    mst a1, 4(t1)
    mst a2, 8(t1)
    li t2, 1
    mst t2, 12(t1)
    addi t2, t0, 1
    mst t2, CAP_COUNT(zero)
    mv a0, t0
    mexit
cap_full:
    li a0, -1
    mexit

# a0 = index, a1 = offset -> a0 = value, a1 = 0.
cap_load:
    mld t0, CAP_COUNT(zero)
    bgeu a0, t0, cap_err_bad
    slli t1, a0, 4
    addi t1, t1, CAP_TABLE
    mld t2, 12(t1)
    beqz t2, cap_err_revoked
    mld t2, 4(t1)
    addi t3, a1, 4
    bgtu t3, t2, cap_err_bounds
    mld t2, 8(t1)
    andi t2, t2, 1
    beqz t2, cap_err_perms
    mld t0, 0(t1)
    add t0, t0, a1
    physld a0, 0(t0)
    li a1, 0
    mexit

# a0 = index, a1 = offset, a2 = value -> a0 = 0.
cap_store:
    mld t0, CAP_COUNT(zero)
    bgeu a0, t0, cap_err_bad
    slli t1, a0, 4
    addi t1, t1, CAP_TABLE
    mld t2, 12(t1)
    beqz t2, cap_err_revoked
    mld t2, 4(t1)
    addi t3, a1, 4
    bgtu t3, t2, cap_err_bounds
    mld t2, 8(t1)
    andi t2, t2, 2
    beqz t2, cap_err_perms
    mld t0, 0(t1)
    add t0, t0, a1
    physst a2, 0(t0)
    li a0, 0
    li a1, 0
    mexit

cap_err_bad:
    li a0, -1
    li a1, 1
    mexit
cap_err_revoked:
    li a0, -1
    li a1, 2
    mexit
cap_err_bounds:
    li a0, -1
    li a1, 3
    mexit
cap_err_perms:
    li a0, -1
    li a1, 4
    mexit

# a0 = index.  Revocation is immediate for every holder of the index.
cap_revoke:
    mld t0, CAP_COUNT(zero)
    bgeu a0, t0, cap_err_bad
    slli t1, a0, 4
    addi t1, t1, CAP_TABLE
    mst zero, 12(t1)
    li a0, 0
    mexit
|}
    Layout.capability_org off_count off_table capacity Layout.cap_create
    Layout.cap_load Layout.cap_store Layout.cap_revoke

let install m =
  match Metal_asm.Asm.assemble (mcode ()) with
  | Error e -> Error (Metal_asm.Asm.error_to_string e)
  | Ok img -> Metal_cpu.Machine.load_mcode m img
