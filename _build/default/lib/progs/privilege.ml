type config = {
  syscall_table : int;
  nsyscalls : int;
  kernel_pkeys : int;
  user_pkeys : int;
  fault_entry : int;
}

let mcode cfg =
  Printf.sprintf
    {|# User-defined privilege levels (paper Section 3.1, Figure 2).
.org %d
.equ SYSCALL_TABLE, %d
.equ NSYSCALLS, %d
.equ KERNEL_PKEYS, %d
.equ USER_PKEYS, %d
.equ FAULT_ENTRY, %d

.mentry %d, kenter
.mentry %d, kexit
.mentry %d, ktlbw
.mentry %d, exc_trampoline

# System call entry (Figure 2).  a0 carries the syscall number; the
# userspace return address is saved in ra per the ABI.
kenter:
    wmr m0, zero            # privilege := kernel
    li t0, KERNEL_PKEYS
    mcsrw pkey_perms, t0    # open kernel-keyed pages
    rmr ra, m31             # save userspace return address
    li t0, NSYSCALLS
    bltu a0, t0, kenter_ok
    li t0, FAULT_ENTRY      # bad syscall number: kernel fault entry
    wmr m31, t0
    mexit
kenter_ok:
    slli t0, a0, 2
    li t1, SYSCALL_TABLE
    add t0, t0, t1
    physld t0, 0(t0)        # t0 = kernel entry point for this syscall
    wmr m31, t0
    mexit                   # jump into the kernel

# System call exit (Figure 2): return to the address saved in ra.
kexit:
    li t0, 1
    wmr m0, t0              # privilege := user
    li t0, USER_PKEYS
    mcsrw pkey_perms, t0    # close kernel-keyed pages
    wmr m31, ra
    mexit

# Privileged TLB write: a0 = packed tag, a1 = packed data.  Only
# privilege level 0 may modify the TLB.
ktlbw:
    rmr t0, m0
    bnez t0, kpriv_violation
    tlbw a0, a1
    mexit
kpriv_violation:
    li t0, FAULT_ENTRY
    wmr m31, t0
    mexit

# Delegated-exception trampoline: enter the kernel at FAULT_ENTRY with
# kernel privilege; publish epc in t5 and the cause code in t6.
exc_trampoline:
    wmr m0, zero
    li t0, KERNEL_PKEYS
    mcsrw pkey_perms, t0
    rmr t5, m31
    rmr t6, m30
    li t0, FAULT_ENTRY
    wmr m31, t0
    mexit
|}
    Layout.privilege_org cfg.syscall_table cfg.nsyscalls cfg.kernel_pkeys
    cfg.user_pkeys cfg.fault_entry Layout.kenter Layout.kexit Layout.ktlbw
    Layout.exc_trampoline

let install m cfg =
  match Metal_asm.Asm.assemble (mcode cfg) with
  | Error e -> Error (Metal_asm.Asm.error_to_string e)
  | Ok img -> Metal_cpu.Machine.load_mcode m img

let figure2_listing () =
  let cfg =
    { syscall_table = 0x2000; nsyscalls = 8; kernel_pkeys = 0;
      user_pkeys = 0xC0000000; fault_entry = 0x1000 }
  in
  match Metal_asm.Asm.assemble (mcode cfg) with
  | Error e -> "assembly error: " ^ Metal_asm.Asm.error_to_string e
  | Ok img -> Format.asprintf "%a" Metal_asm.Image.pp_listing img
