(** User-defined privilege levels (Section 3.1, Figure 2).

    Implements the traditional kernel/user model in Metal: [m0] holds
    the current privilege level (0 = kernel, 1 = user); [kenter] is
    the system-call entry mroutine and [kexit] the exit mroutine.
    Privilege is enforced with page keys: [kenter] switches the
    page-key permission register to the kernel view, [kexit] back to
    the user view, so kernel-keyed pages become inaccessible the
    instant the machine returns to user code.

    Privileged mroutines (here [ktlbw]) check the caller's privilege
    level in [m0] and divert to the kernel fault entry on violation —
    "developers can freely define custom privilege levels ... by
    checking callers' privilege levels in mroutines" (Section 2). *)

type config = {
  syscall_table : int;
      (** physical address of the table of syscall handler entry
          points (one word each). *)
  nsyscalls : int;
  kernel_pkeys : int;
      (** [pkey_perms] value while in the kernel (typically 0: no key
          restrictions). *)
  user_pkeys : int;
      (** [pkey_perms] value in user mode (kernel keys disabled). *)
  fault_entry : int;
      (** address the kernel handles privilege violations and
          delegated exceptions at. *)
}

val mcode : config -> string
(** The mroutine assembly (entries {!Layout.kenter}, {!Layout.kexit},
    {!Layout.ktlbw}, {!Layout.exc_trampoline}). *)

val install : Metal_cpu.Machine.t -> config -> (unit, string) result
(** Assemble and load into MRAM. *)

val figure2_listing : unit -> string
(** The kenter/kexit listing as in Figure 2 of the paper (assembly
    plus encodings), for the benchmark harness. *)
