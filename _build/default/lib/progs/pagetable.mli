(** Custom page tables in mcode (Section 3.2).

    The page-fault mroutine walks an x86-style two-level radix tree in
    physical memory (via [physld], bypassing paging), refills the TLB
    with [tlbw], and retries the faulting instruction by returning to
    the faulting pc.  Invalid or permission-violating accesses are
    delivered to the OS fault entry.  The pointer to the page-table
    root lives in the MRAM data segment — "the data segment holds
    mroutine private data used for bookkeeping, e.g., the pointer to
    the page table structure" (Section 2.1).

    PTE format (shared with the optional hardware walker):
    physical page base in bits 31:12, page key in 8:5, G bit 4,
    X bit 3, W bit 2, R bit 1, V bit 0; a valid PTE with X=W=R=0
    points to the next-level table; a level-1 leaf maps a 4 MiB
    superpage.

    The handler preserves the interrupted context: clobbered
    temporaries are parked in m16–m22 for the duration of the walk
    (statically allocated, per Section 2.1). *)

type config = {
  os_fault_entry : int;
      (** address of the OS's fault handler for true page faults;
          0 halts the machine on unhandled faults (debug setups).
          The handler receives the faulting pc in t5 and the faulting
          virtual address in t6. *)
}

val mcode : config -> string
(** Entries {!Layout.pf_handler} and {!Layout.pf_set_root}. *)

val install : Metal_cpu.Machine.t -> config -> (unit, string) result
(** Load into MRAM and delegate all three page-fault causes to the
    walker. *)

val set_root : Metal_cpu.Machine.t -> int -> unit
(** Host-side helper: write the page-table root pointer into the MRAM
    data slot (guest code can do the same through entry
    {!Layout.pf_set_root}). *)
