(** In-process isolation (Section 3.1).

    Protects sensitive data (e.g. cryptographic keys) from the rest of
    the process: secret pages carry a dedicated page key that the
    normal page-key permission register disables; the only way to
    reach them is through the [dom_enter] gate mroutine, which opens
    the key and transfers control to the registered trusted entry
    point.  [dom_exit] closes the key and returns to the caller.

    "Metal enables developers to safely encapsulate the transition
    code without CFI" — the gate lives in MRAM, so no userspace code
    path can open the key without also transferring control to the
    trusted entry. *)

type config = {
  gate_target : int;
      (** trusted-domain entry point (virtual address). *)
  open_perms : int;
      (** [pkey_perms] value inside the domain. *)
  closed_perms : int;
      (** [pkey_perms] value outside (secret key disabled). *)
}

val mcode : unit -> string
(** Entries {!Layout.dom_enter} and {!Layout.dom_exit}. *)

val install : Metal_cpu.Machine.t -> config -> (unit, string) result
(** Load the mcode, store the configuration in the MRAM data segment
    and set the machine's current [pkey_perms] to [closed_perms]. *)
