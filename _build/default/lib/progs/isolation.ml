type config = { gate_target : int; open_perms : int; closed_perms : int }

let base = Layout.isolation_data
let off_saved_ra = base + 0x00
let off_open = base + 0x04
let off_closed = base + 0x08
let off_target = base + 0x0C

let mcode () =
  Printf.sprintf
    {|# In-process isolation gates (paper Section 3.1).
.org %d
.equ DOM_SAVED_RA, %d
.equ DOM_OPEN, %d
.equ DOM_CLOSED, %d
.equ DOM_TARGET, %d

.mentry %d, dom_enter
.mentry %d, dom_exit

# One-way gate into the trusted domain.  Opening the secret page key
# and transferring control are inseparable.  t0 is caller-saved.
dom_enter:
    rmr t0, m31
    mst t0, DOM_SAVED_RA(zero)
    mld t0, DOM_OPEN(zero)
    mcsrw pkey_perms, t0
    mld t0, DOM_TARGET(zero)
    wmr m31, t0
    mexit

# Leave the domain: close the key, return to the original caller.
dom_exit:
    mld t0, DOM_CLOSED(zero)
    mcsrw pkey_perms, t0
    mld t0, DOM_SAVED_RA(zero)
    wmr m31, t0
    mexit
|}
    Layout.isolation_org off_saved_ra off_open off_closed off_target
    Layout.dom_enter Layout.dom_exit

let install m cfg =
  match Metal_asm.Asm.assemble (mcode ()) with
  | Error e -> Error (Metal_asm.Asm.error_to_string e)
  | Ok img ->
    begin match Metal_cpu.Machine.load_mcode m img with
    | Error _ as e -> e
    | Ok () ->
      let mram = m.Metal_cpu.Machine.mram in
      let put off v = ignore (Metal_hw.Mram.store_word mram ~addr:off v) in
      put off_open cfg.open_perms;
      put off_closed cfg.closed_perms;
      put off_target cfg.gate_target;
      Metal_cpu.Machine.ctrl_write m Csr.pkey_perms cfg.closed_perms;
      Ok ()
    end
