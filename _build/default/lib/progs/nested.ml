let base = Layout.nested_data
let off_l1_count = base + 0x00
let off_l0_count = base + 0x04
let off_remap = base + 0x08

let mcode () =
  Printf.sprintf
    {|# Nested Metal: layered store interception (paper Section 3.5).
.org %d
.equ NEST_L1, %d
.equ NEST_L0, %d
.equ NEST_REMAP, %d

.mentry %d, nest_l1

# Application layer (L1): intercepts the store first, records it and
# propagates downward to the VMM layer.  t0-t2 and ra parked.
nest_l1:
    wmr m16, t0
    wmr m17, t1
    wmr m18, t2
    wmr m23, ra
    mld t2, NEST_L1(zero)
    addi t2, t2, 1
    mst t2, NEST_L1(zero)
    rmr t0, m28            # address
    rmr t1, m27            # value
    jal nest_l0
    rmr t0, m31
    addi t0, t0, 4
    wmr m31, t0
    rmr ra, m23
    rmr t0, m16
    rmr t1, m17
    rmr t2, m18
    mexit

# VMM layer (L0): remaps the address (nested translation stand-in)
# and performs the store.
nest_l0:
    mld t2, NEST_L0(zero)
    addi t2, t2, 1
    mst t2, NEST_L0(zero)
    mld t2, NEST_REMAP(zero)
    add t0, t0, t2
    physst t1, 0(t0)
    ret
|}
    Layout.nested_org off_l1_count off_l0_count off_remap Layout.nest_store

let install m ~remap_offset =
  match Metal_asm.Asm.assemble (mcode ()) with
  | Error e -> Error (Metal_asm.Asm.error_to_string e)
  | Ok img ->
    begin match Metal_cpu.Machine.load_mcode m img with
    | Error _ as e -> e
    | Ok () ->
      ignore
        (Metal_hw.Mram.store_word m.Metal_cpu.Machine.mram ~addr:off_remap
           remap_offset);
      Ok ()
    end

type counters = { l1_intercepts : int; l0_stores : int }

let read_slot m off =
  match Metal_hw.Mram.load_word m.Metal_cpu.Machine.mram ~addr:off with
  | Some v -> v
  | None -> 0

let counters m =
  { l1_intercepts = read_slot m off_l1_count;
    l0_stores = read_slot m off_l0_count }
