(** Hardware capabilities (Section 3.5).

    A capability table in the MRAM data segment, in the tradition of
    the IBM System/38 and Intel iAPX 432 microcode capability systems
    the paper cites.  A capability names a memory region with read and
    write permissions; loads and stores through a capability are
    bounds- and permission-checked in mcode, and revocation is
    immediate because the table is the single source of truth.

    Guest ABI (all via [menter]):
    - create: a0 = base, a1 = length (bytes), a2 = perms (bit 0 read,
      bit 1 write) -> a0 = capability index, or -1 when full.
    - load: a0 = index, a1 = byte offset -> a0 = value, a1 = 0; on
      violation a0 = -1, a1 = error (1 bad cap, 2 revoked, 3 bounds,
      4 perms).
    - store: a0 = index, a1 = offset, a2 = value -> a0 = 0 / -1 with
      a1 = error.
    - revoke: a0 = index -> a0 = 0, or -1 for a bad index. *)

val capacity : int
(** Maximum live capabilities (16). *)

val mcode : unit -> string
(** Entries {!Layout.cap_create}, {!Layout.cap_load},
    {!Layout.cap_store}, {!Layout.cap_revoke}. *)

val install : Metal_cpu.Machine.t -> (unit, string) result
