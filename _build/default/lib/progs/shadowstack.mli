(** Shadow-stack control-flow protection (Section 3.5).

    Intercepts calls and returns: [jal]-class instructions with a link
    register push the return address onto a shadow stack in the MRAM
    data segment (inaccessible to normal-mode code); [jalr]-class
    instructions with [rd = x0] (returns) pop it and compare against
    the actual target.  A mismatch or shadow-stack underflow stops the
    machine and bumps the violation counter — a corrupted on-stack
    return address cannot redirect control.

    "Metal can offer similar application control flow protection as
    existing techniques such as shadow stacks ... applications can
    store cryptographic keys inside Metal registers or MRAM." *)

val capacity : int
(** Shadow-stack depth (call nesting), 64 frames.  Deeper nesting
    trips the violation handler — a static-allocation limit in the
    spirit of Section 2.1. *)

val mcode : unit -> string
(** Entries {!Layout.ss_call}, {!Layout.ss_ret}, {!Layout.ss_enable},
    {!Layout.ss_disable}. *)

val install : Metal_cpu.Machine.t -> (unit, string) result

type counters = { depth : int; violations : int }

val counters : Metal_cpu.Machine.t -> counters
