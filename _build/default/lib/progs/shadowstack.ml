let capacity = 64

let base = Layout.shadowstack_data
let off_count = base + 0x00
let off_violations = base + 0x04
let off_stack = base + 0x10

let mcode () =
  Printf.sprintf
    {|# Shadow-stack control-flow protection (paper Section 3.5).
.org %d
.equ SS_COUNT, %d
.equ SS_VIOLATIONS, %d
.equ SS_STACK, %d
.equ SS_CAP, %d

.mentry %d, ss_call
.mentry %d, ss_ret
.mentry %d, ss_enable
.mentry %d, ss_disable

# jal-class interception: a call when it links (rd != x0), otherwise a
# plain jump.  t0-t2 parked in m16-m18.
ss_call:
    wmr m16, t0
    wmr m17, t1
    wmr m18, t2
    rmr t0, m26
    bnez t0, ss_push_link
    j ss_redirect

# jalr-class interception: a return when rd = x0, otherwise an
# indirect call.
ss_ret:
    wmr m16, t0
    wmr m17, t1
    wmr m18, t2
    rmr t0, m26
    bnez t0, ss_push_link
    mld t1, SS_COUNT(zero)
    beqz t1, ss_violation
    addi t1, t1, -1
    mst t1, SS_COUNT(zero)
    slli t2, t1, 2
    addi t2, t2, SS_STACK
    mld t1, 0(t2)
    rmr t0, m28
    bne t1, t0, ss_violation
    wmr m31, t0
    rmr t0, m16
    rmr t1, m17
    rmr t2, m18
    mexit

# Push the return address and write the link register, patching the
# parked copy when the link register is a parked temp.
ss_push_link:
    mld t1, SS_COUNT(zero)
    li t2, SS_CAP
    beq t1, t2, ss_violation
    slli t2, t1, 2
    addi t2, t2, SS_STACK
    rmr t0, m31
    addi t0, t0, 4
    mst t0, 0(t2)
    addi t1, t1, 1
    mst t1, SS_COUNT(zero)
    rmr t1, m26
    li t2, 5
    beq t1, t2, ss_fix_t0
    li t2, 6
    beq t1, t2, ss_fix_t1
    li t2, 7
    beq t1, t2, ss_fix_t2
    gprw t1, t0
    j ss_redirect
ss_fix_t0:
    wmr m16, t0
    j ss_redirect
ss_fix_t1:
    wmr m17, t0
    j ss_redirect
ss_fix_t2:
    wmr m18, t0
ss_redirect:
    rmr t0, m28
    wmr m31, t0
    rmr t0, m16
    rmr t1, m17
    rmr t2, m18
    mexit

# Control-flow violation: record it and stop the machine.
ss_violation:
    mld t0, SS_VIOLATIONS(zero)
    addi t0, t0, 1
    mst t0, SS_VIOLATIONS(zero)
    ebreak

ss_enable:
    li t0, 2
    li t1, %d
    iceptset t0, t1
    li t0, 3
    li t1, %d
    iceptset t0, t1
    li t0, 1
    mcsrw icept_enable, t0
    mexit

ss_disable:
    li t0, 2
    iceptclr t0
    li t0, 3
    iceptclr t0
    mexit
|}
    Layout.shadowstack_org off_count off_violations off_stack capacity
    Layout.ss_call Layout.ss_ret Layout.ss_enable Layout.ss_disable
    Layout.ss_call Layout.ss_ret

let install m =
  match Metal_asm.Asm.assemble (mcode ()) with
  | Error e -> Error (Metal_asm.Asm.error_to_string e)
  | Ok img -> Metal_cpu.Machine.load_mcode m img

type counters = { depth : int; violations : int }

let read_slot m off =
  match Metal_hw.Mram.load_word m.Metal_cpu.Machine.mram ~addr:off with
  | Some v -> v
  | None -> 0

let counters m =
  { depth = read_slot m off_count; violations = read_slot m off_violations }
