type config = { os_fault_entry : int }

let mcode cfg =
  Printf.sprintf
    {|# Custom page tables (paper Section 3.2): radix-tree walker.
.org %d
.equ PT_ROOT_OFF, %d
.equ OS_FAULT_ENTRY, %d

.mentry %d, pf_walk
.mentry %d, pf_set_root

# Page-fault handler.  m31 = faulting pc, m30 = cause, m29 = vaddr.
# Parks t0-t6 in m16-m22 so the interrupted context is preserved.
pf_walk:
    wmr m16, t0
    wmr m17, t1
    wmr m18, t2
    wmr m19, t3
    wmr m20, t4
    wmr m21, t5
    wmr m22, t6
    rmr t0, m29                # faulting virtual address
    mld t1, PT_ROOT_OFF(zero)  # page-table root (physical)
    srli t2, t0, 22
    slli t2, t2, 2
    add t2, t2, t1
    physld t3, 0(t2)           # level-1 PTE
    andi t4, t3, 1
    beqz t4, pf_deliver        # invalid
    andi t4, t3, 0xE
    bnez t4, pf_super          # leaf at level 1: 4 MiB superpage
    li t4, 0xFFFFF000
    and t3, t3, t4             # next-level table base
    srli t2, t0, 12
    andi t2, t2, 0x3FF
    slli t2, t2, 2
    add t2, t2, t3
    physld t3, 0(t2)           # leaf PTE
    andi t4, t3, 1
    beqz t4, pf_deliver
    andi t4, t3, 0xE
    beqz t4, pf_deliver        # non-leaf at level 2: malformed

# Check the permission demanded by the cause code:
# 4 = fetch (X, bit 3), 5 = load (R, bit 1), 6 = store (W, bit 2).
pf_check:
    rmr t4, m30
    addi t4, t4, -4
    li t5, 8                   # X
    beqz t4, pf_perm
    li t5, 2                   # R
    addi t4, t4, -1
    beqz t4, pf_perm
    li t5, 4                   # W
pf_perm:
    and t6, t3, t5
    beqz t6, pf_deliver

# Refill the TLB.  tag = (vaddr & ~0xFFF) | (asid << 4) | G;
# data = PTE with the V and G bits masked off (the formats line up).
    li t4, 0xFFFFF000
    and t6, t0, t4
    mcsrr t5, asid
    slli t5, t5, 4
    or t6, t6, t5
    srli t5, t3, 4
    andi t5, t5, 1
    or t6, t6, t5
    li t4, 0xFFFFF1EE
    and t3, t3, t4
    tlbw t6, t3
    rmr t0, m16
    rmr t1, m17
    rmr t2, m18
    rmr t3, m19
    rmr t4, m20
    rmr t5, m21
    rmr t6, m22
    mexit                      # retry the faulting instruction

# Level-1 leaf: synthesize the effective 4 KiB frame inside the 4 MiB
# superpage, keeping the pkey/G/XWR flags.
pf_super:
    li t4, 0xFFC00000
    and t5, t3, t4             # superpage base
    li t4, 0x003FF000
    and t6, t0, t4             # offset bits from the vaddr
    or t5, t5, t6
    andi t4, t3, 0x1FE         # pkey | G | XWR
    or t3, t5, t4
    j pf_check

# True fault: hand off to the OS (or stop a debug machine).
pf_deliver:
    li t4, OS_FAULT_ENTRY
    bnez t4, pf_os
    ebreak
pf_os:
    rmr t5, m31                # faulting pc
    rmr t6, m29                # faulting vaddr
    wmr m31, t4
    rmr t0, m16
    rmr t1, m17
    rmr t2, m18
    rmr t3, m19
    rmr t4, m20
    mexit                      # enter the OS fault handler

# a0 = physical address of the page-table root.
pf_set_root:
    mst a0, PT_ROOT_OFF(zero)
    mexit
|}
    Layout.pagetable_org Layout.pagetable_data cfg.os_fault_entry
    Layout.pf_handler Layout.pf_set_root

let install m cfg =
  match Metal_asm.Asm.assemble (mcode cfg) with
  | Error e -> Error (Metal_asm.Asm.error_to_string e)
  | Ok img ->
    begin match Metal_cpu.Machine.load_mcode m img with
    | Error _ as e -> e
    | Ok () ->
      List.iter
        (fun cause ->
           Metal_cpu.Machine.install_handler m cause ~entry:Layout.pf_handler)
        [ Cause.Page_fault_fetch; Cause.Page_fault_load;
          Cause.Page_fault_store ];
      Ok ()
    end

let set_root m root =
  let mram = m.Metal_cpu.Machine.mram in
  if not (Metal_hw.Mram.store_word mram ~addr:Layout.pagetable_data root) then
    invalid_arg "Pagetable.set_root: data slot out of range"
