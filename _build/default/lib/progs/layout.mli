(** Global MRAM layout for the standard mroutine library.

    Developers "must statically allocate resources including Metal
    registers used across invocations or the MRAM data segment"
    (Section 2.1).  This module is that static allocation: every
    mroutine program in [Metal_progs] gets a fixed entry-number range,
    a code-segment region and a data-segment region, so any subset of
    the programs can be co-resident in MRAM. *)

(** {2 Entry numbers} *)

val kenter : int
(** 0 *)

val kexit : int
(** 1 *)

val ktlbw : int
(** 2: privileged TLB write with an m0 check *)

val exc_trampoline : int
(** 3: generic exception -> kernel delivery *)

val pf_handler : int
(** 8: custom page-table walker *)

val pf_set_root : int
(** 9 *)

val tstart : int
(** 16 *)

val tcommit : int
(** 17 *)

val tabort : int
(** 18 *)

val tread : int
(** 19: load interception *)

val twrite : int
(** 20: store interception *)

val uintr_deliver : int
(** 24 *)

val uintr_setup : int
(** 25 *)

val uintr_ret : int
(** 26 *)

val dom_enter : int
(** 28 *)

val dom_exit : int
(** 29 *)

val ss_call : int
(** 32: jal interception *)

val ss_ret : int
(** 33: jalr interception *)

val ss_enable : int
(** 34 *)

val ss_disable : int
(** 35 *)

val cap_create : int
(** 40 *)

val cap_load : int
(** 41 *)

val cap_store : int
(** 42 *)

val cap_revoke : int
(** 43 *)

val enc_enter : int
(** 48 *)

val enc_exit : int
(** 49 *)

val enc_hash : int
(** 50 *)

val nest_store : int
(** 56: layered store interception demo *)

val vmm_pf : int
(** 57: nested-translation page-fault walker (virtualization) *)


(** {2 Code-segment origins (byte offsets into MRAM code)} *)

val privilege_org : int
val pagetable_org : int
val stm_org : int
val uintr_org : int
val isolation_org : int
val shadowstack_org : int
val capability_org : int
val enclave_org : int
val nested_org : int
val vmm_org : int

(** {2 Data-segment regions (byte offsets into MRAM data)} *)

val pagetable_data : int
(** word: physical address of the page-table root. *)

val stm_data : int
(** STM block; see {!Stm} for the field layout. *)

val uintr_data : int
val isolation_data : int
val shadowstack_data : int
val capability_data : int
val enclave_data : int
val nested_data : int
val vmm_data : int
