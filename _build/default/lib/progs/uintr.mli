(** User-level interrupts (Section 3.4).

    The NIC interrupt is delegated to {!Layout.uintr_deliver}, which
    redirects execution to a handler registered by the (unprivileged)
    user process — without any privilege-level change, as in the
    DPDK/SPDK scenario the paper motivates: "such applications only
    need to be notified via interrupts when data is available".

    Delivery parks the interrupted pc and the two scratch registers
    (t0, t1) the user handler may freely use; the handler returns with
    [menter uintr_ret], which restores them and resumes the
    interrupted code.  A delivery arriving while the handler runs is
    coalesced (counted, pending bit cleared) — the handler is expected
    to drain the device queue. *)

val irq : int
(** The interrupt line delivered to userspace (the NIC line). *)

val mcode : unit -> string
(** Entries {!Layout.uintr_deliver}, {!Layout.uintr_setup},
    {!Layout.uintr_ret}. *)

val install : Metal_cpu.Machine.t -> (unit, string) result
(** Load the mcode, route the NIC line to the deliver mroutine and
    enable it in the interrupt-enable mask.  The user process still
    has to register its handler (entry {!Layout.uintr_setup} with the
    handler address in a0). *)

type counters = { delivered : int; coalesced : int }

val counters : Metal_cpu.Machine.t -> counters
