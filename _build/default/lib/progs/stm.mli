(** Transactional memory via instruction interception (Section 3.3).

    Word-granular software transactional memory in the style of
    TL2/NOrec with value-based validation: [tstart] turns on
    interception of loads and stores; every intercepted load ([tread])
    is satisfied from the write log or memory and recorded in the read
    set; every intercepted store ([twrite]) is buffered in the write
    log; [tcommit] turns interception off, validates that every read
    location still holds the value observed, and either applies the
    write log or restarts the transaction at the abort handler.

    "The benefit of using Metal is that neither compilers nor
    developers need to replace loads and stores with calls into an STM
    library.  Instead, Metal turns on and off interception of loads
    and stores at runtime" (Section 3.3).

    Guest protocol:
    - [la a0, retry_point; menter tstart] — begin (a0 = restart pc).
    - ordinary loads/stores — transparently instrumented.
    - [menter tcommit] — a0 = 1 on commit; on conflict the transaction
      restarts at the retry point with a0 = 0.
    - [menter tabort] — explicit abort (restarts at the retry point).

    The handlers park clobbered temporaries in m16–m22 and fix up the
    parked copy when an intercepted load targets a parked register, so
    instrumentation is fully transparent to the guest.  Transactions
    assume physical addressing (paging off) since buffered accesses
    replay through [physld]/[physst]. *)

val capacity : int
(** Maximum read-set/write-log entries per transaction (64);
    overflowing transactions abort (counted separately). *)

val mcode : unit -> string
(** Entries {!Layout.tstart}, {!Layout.tcommit}, {!Layout.tabort},
    {!Layout.tread}, {!Layout.twrite}. *)

val install : Metal_cpu.Machine.t -> (unit, string) result

type counters = {
  commits : int;
  aborts : int;
  overflow_aborts : int;
  reads : int;
  writes : int;
}

val counters : Metal_cpu.Machine.t -> counters
(** Read the statistics the mroutines keep in the MRAM data segment. *)

val reset_counters : Metal_cpu.Machine.t -> unit
