lib/progs/capability.mli: Metal_cpu
