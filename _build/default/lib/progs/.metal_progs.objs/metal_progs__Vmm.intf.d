lib/progs/vmm.mli: Metal_cpu
