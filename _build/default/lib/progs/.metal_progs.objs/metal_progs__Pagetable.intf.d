lib/progs/pagetable.mli: Metal_cpu
