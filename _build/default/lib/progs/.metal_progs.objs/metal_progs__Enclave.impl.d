lib/progs/enclave.ml: Csr Layout Metal_asm Metal_cpu Metal_hw Printf Word
