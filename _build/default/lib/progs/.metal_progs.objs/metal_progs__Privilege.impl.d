lib/progs/privilege.ml: Format Layout Metal_asm Metal_cpu Printf
