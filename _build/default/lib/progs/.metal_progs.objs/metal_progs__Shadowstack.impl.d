lib/progs/shadowstack.ml: Layout Metal_asm Metal_cpu Metal_hw Printf
