lib/progs/vmm.ml: Cause Layout List Metal_asm Metal_cpu Metal_hw Printf
