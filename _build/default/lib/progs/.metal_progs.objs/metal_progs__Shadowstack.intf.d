lib/progs/shadowstack.mli: Metal_cpu
