lib/progs/layout.mli:
