lib/progs/layout.ml:
