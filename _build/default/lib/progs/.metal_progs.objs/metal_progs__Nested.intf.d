lib/progs/nested.mli: Metal_cpu
