lib/progs/privilege.mli: Metal_cpu
