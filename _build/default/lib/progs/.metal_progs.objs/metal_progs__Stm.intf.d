lib/progs/stm.mli: Metal_cpu
