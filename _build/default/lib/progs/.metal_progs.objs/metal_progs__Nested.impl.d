lib/progs/nested.ml: Layout Metal_asm Metal_cpu Metal_hw Printf
