lib/progs/uintr.mli: Metal_cpu
