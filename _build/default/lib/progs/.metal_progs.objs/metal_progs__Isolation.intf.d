lib/progs/isolation.mli: Metal_cpu
