lib/progs/stm.ml: Layout List Metal_asm Metal_cpu Metal_hw Printf
