lib/progs/enclave.mli: Metal_cpu
