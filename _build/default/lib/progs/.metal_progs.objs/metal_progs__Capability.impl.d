lib/progs/capability.ml: Layout Metal_asm Metal_cpu Printf
