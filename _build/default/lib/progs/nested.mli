(** Nested Metal (Section 3.5).

    Demonstrates the layered-mroutine composition the paper sketches:
    "Instruction interception proceeds in reverse, with higher layers
    intercepting the instruction first ... The intercept propagates
    downward through layers that intercept the same instruction."

    Stores are intercepted by the application-layer handler (L1),
    which records the event and propagates the access down to the
    VMM-layer handler (L0) — a subroutine in the same MRAM code
    segment — which applies its own address remapping (standing in for
    nested translation) before performing the store. *)

val mcode : unit -> string
(** Entry {!Layout.nest_store}; the L0 handler is internal. *)

val install :
  Metal_cpu.Machine.t -> remap_offset:int -> (unit, string) result
(** Load and configure the L0 remapping offset; the caller still has
    to arm interception of the store class at entry
    {!Layout.nest_store}. *)

type counters = { l1_intercepts : int; l0_stores : int }

val counters : Metal_cpu.Machine.t -> counters
