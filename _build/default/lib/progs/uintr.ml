let irq = Metal_hw.Intc.nic_irq

let base = Layout.uintr_data
let off_handler = base + 0x00
let off_saved_pc = base + 0x04
let off_in_handler = base + 0x08
let off_delivered = base + 0x0C
let off_coalesced = base + 0x10
let off_saved_t0 = base + 0x14
let off_saved_t1 = base + 0x18

let mcode () =
  Printf.sprintf
    {|# User-level interrupt delivery (paper Section 3.4).
.org %d
.equ HANDLER, %d
.equ SAVED_PC, %d
.equ IN_HANDLER, %d
.equ DELIVERED, %d
.equ COALESCED, %d
.equ SAVED_T0, %d
.equ SAVED_T1, %d
.equ IRQ_MASK, %d

.mentry %d, uintr_deliver
.mentry %d, uintr_setup
.mentry %d, uintr_ret

# Interrupt delivery.  m31 = interrupted pc.  Redirects to the user
# handler with t0/t1 freed up for it; everything else is untouched.
uintr_deliver:
    wmr m16, t0
    mld t0, IN_HANDLER(zero)
    bnez t0, uintr_coalesce
    mld t0, HANDLER(zero)
    beqz t0, uintr_coalesce      # no handler registered: drop
    li t0, 1
    mst t0, IN_HANDLER(zero)
    rmr t0, m31
    mst t0, SAVED_PC(zero)
    mld t0, DELIVERED(zero)
    addi t0, t0, 1
    mst t0, DELIVERED(zero)
    li t0, IRQ_MASK
    mcsrw int_pending, t0        # acknowledge the line
    rmr t0, m16
    mst t0, SAVED_T0(zero)       # free t0/t1 for the user handler
    mst t1, SAVED_T1(zero)
    mld t0, HANDLER(zero)
    wmr m31, t0
    mexit
uintr_coalesce:
    li t0, IRQ_MASK
    mcsrw int_pending, t0
    mld t0, COALESCED(zero)
    addi t0, t0, 1
    mst t0, COALESCED(zero)
    rmr t0, m16
    mexit

# Register the user handler: a0 = handler address.
uintr_setup:
    mst a0, HANDLER(zero)
    mst zero, IN_HANDLER(zero)
    mexit

# Return from the user handler to the interrupted code.
uintr_ret:
    mst zero, IN_HANDLER(zero)
    mld t0, SAVED_PC(zero)
    wmr m31, t0
    mld t0, SAVED_T0(zero)
    mld t1, SAVED_T1(zero)
    mexit
|}
    Layout.uintr_org off_handler off_saved_pc off_in_handler off_delivered
    off_coalesced off_saved_t0 off_saved_t1 (1 lsl irq) Layout.uintr_deliver
    Layout.uintr_setup Layout.uintr_ret

let install m =
  match Metal_asm.Asm.assemble (mcode ()) with
  | Error e -> Error (Metal_asm.Asm.error_to_string e)
  | Ok img ->
    begin match Metal_cpu.Machine.load_mcode m img with
    | Error _ as e -> e
    | Ok () ->
      Metal_cpu.Machine.install_interrupt_handler m ~irq
        ~entry:Layout.uintr_deliver;
      let enabled = Metal_cpu.Machine.ctrl_read m Csr.int_enable in
      Metal_cpu.Machine.ctrl_write m Csr.int_enable (enabled lor (1 lsl irq));
      Ok ()
    end

type counters = { delivered : int; coalesced : int }

let read_slot m off =
  match Metal_hw.Mram.load_word m.Metal_cpu.Machine.mram ~addr:off with
  | Some v -> v
  | None -> 0

let counters m =
  { delivered = read_slot m off_delivered;
    coalesced = read_slot m off_coalesced }
