(** Golden-model interpreter for the base ISA.

    An independent, instruction-at-a-time implementation of RV32I used
    to cross-check the pipelined machine: whatever forwarding, hazard
    and flush logic the pipeline applies, the architectural outcome of
    a program must match this model exactly.  Metal instructions,
    paging and devices are out of scope (the differential tests run
    base-ISA programs with paging off). *)

type t = {
  regs : Word.t array;  (** 32 GPRs, x0 pinned to zero *)
  mem : Bytes.t;
  mutable pc : Word.t;
  mutable retired : int;
}

type stop =
  | Stop_ebreak of int  (** pc of the ebreak *)
  | Stop_limit
  | Stop_fault of string

val create : mem_size:int -> t

val load_image : t -> Metal_asm.Image.t -> (unit, string) result

val run : t -> max_instructions:int -> stop

val get_reg : t -> Reg.t -> Word.t

val read_word : t -> int -> Word.t
