(** Execution statistics accumulated by the pipeline. *)

type t = {
  mutable cycles : int;
  mutable instructions : int;  (** retired instructions (incl. events) *)
  mutable metal_instructions : int;  (** retired while in Metal mode *)
  mutable bubbles : int;  (** empty slots retiring from MEM *)
  mutable load_use_stalls : int;
  mutable interlock_stalls : int;  (** mexit/intercept operand interlocks *)
  mutable flushes : int;  (** pipeline flushes (branches, traps) *)
  mutable menters : int;
  mutable mexits : int;
  mutable exceptions : int;
  mutable interrupts : int;
  mutable intercepts : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable hw_walks : int;
  mutable mem_stall_cycles : int;  (** cycles lost to memory latency *)
  mutable fetch_stall_cycles : int;  (** cycles lost to Metal-code fetch *)
}

val create : unit -> t

val reset : t -> unit

val copy : t -> t

val diff : after:t -> before:t -> t
(** Field-wise subtraction: the cost of a measured region. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
