lib/cpu/pipeline.mli: Machine
