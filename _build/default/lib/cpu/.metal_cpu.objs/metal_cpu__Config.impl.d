lib/cpu/config.ml: Metal_hw
