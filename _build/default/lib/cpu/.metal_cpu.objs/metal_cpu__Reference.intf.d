lib/cpu/reference.mli: Bytes Metal_asm Reg Word
