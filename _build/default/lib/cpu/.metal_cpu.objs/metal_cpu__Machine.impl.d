lib/cpu/machine.ml: Array Cause Config Csr Icept Instr List Metal_hw Option Printf Queue Reg Stats Word
