lib/cpu/machine.mli: Cause Config Csr Icept Instr Metal_asm Metal_hw Queue Reg Stats Word
