lib/cpu/pipeline.ml: Array Bus Cause Config Csr Decode Icept Instr List Machine Metal_hw Printf Reg Stats Tlb Word
