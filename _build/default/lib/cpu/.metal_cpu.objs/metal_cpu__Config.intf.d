lib/cpu/config.mli: Metal_hw
