lib/cpu/reference.ml: Array Bytes Char Decode Instr List Metal_asm Printf String Word
