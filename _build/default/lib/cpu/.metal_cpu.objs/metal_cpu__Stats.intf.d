lib/cpu/stats.mli: Format
