lib/cpu/stats.ml: Format
