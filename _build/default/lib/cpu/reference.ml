type t = {
  regs : Word.t array;
  mem : Bytes.t;
  mutable pc : Word.t;
  mutable retired : int;
}

type stop =
  | Stop_ebreak of int
  | Stop_limit
  | Stop_fault of string

let create ~mem_size =
  { regs = Array.make 32 0; mem = Bytes.make mem_size '\000'; pc = 0;
    retired = 0 }

let load_image t (img : Metal_asm.Image.t) =
  List.fold_left
    (fun acc (addr, data) ->
       match acc with
       | Error _ as e -> e
       | Ok () ->
         if addr < 0 || addr + String.length data > Bytes.length t.mem then
           Error "image outside reference memory"
         else begin
           Bytes.blit_string data 0 t.mem addr (String.length data);
           Ok ()
         end)
    (Ok ()) img.Metal_asm.Image.chunks

let get_reg t r = t.regs.(r)

let set_reg t r v = if r <> 0 then t.regs.(r) <- Word.of_int v

let in_range t addr width = addr >= 0 && addr + width <= Bytes.length t.mem

let read8 t addr = Char.code (Bytes.get t.mem addr)

let read_word t addr =
  read8 t addr
  lor (read8 t (addr + 1) lsl 8)
  lor (read8 t (addr + 2) lsl 16)
  lor (read8 t (addr + 3) lsl 24)

let write8 t addr v = Bytes.set t.mem addr (Char.chr (v land 0xFF))

exception Fault of string

let load t ~width ~unsigned addr =
  let bytes = match width with Instr.Byte -> 1 | Instr.Half -> 2 | Instr.Word -> 4 in
  if addr land (bytes - 1) <> 0 then
    raise (Fault (Printf.sprintf "misaligned load at %s" (Word.to_hex addr)));
  if not (in_range t addr bytes) then
    raise (Fault (Printf.sprintf "load outside memory at %s" (Word.to_hex addr)));
  let raw =
    match width with
    | Instr.Byte -> read8 t addr
    | Instr.Half -> read8 t addr lor (read8 t (addr + 1) lsl 8)
    | Instr.Word -> read_word t addr
  in
  match (width, unsigned) with
  | Instr.Byte, false -> Word.of_int (Word.sign_extend ~width:8 raw)
  | Instr.Half, false -> Word.of_int (Word.sign_extend ~width:16 raw)
  | (Instr.Byte | Instr.Half), true | Instr.Word, _ -> raw

let store t ~width addr v =
  let bytes = match width with Instr.Byte -> 1 | Instr.Half -> 2 | Instr.Word -> 4 in
  if addr land (bytes - 1) <> 0 then
    raise (Fault (Printf.sprintf "misaligned store at %s" (Word.to_hex addr)));
  if not (in_range t addr bytes) then
    raise (Fault (Printf.sprintf "store outside memory at %s" (Word.to_hex addr)));
  for i = 0 to bytes - 1 do
    write8 t (addr + i) ((v lsr (8 * i)) land 0xFF)
  done

let alu op a b =
  match op with
  | Instr.Add -> Word.add a b
  | Instr.Sub -> Word.sub a b
  | Instr.Sll -> Word.shift_left a b
  | Instr.Slt -> if Word.lt_signed a b then 1 else 0
  | Instr.Sltu -> if Word.lt_unsigned a b then 1 else 0
  | Instr.Xor -> Word.logxor a b
  | Instr.Srl -> Word.shift_right_logical a b
  | Instr.Sra -> Word.shift_right_arith a b
  | Instr.Or -> Word.logor a b
  | Instr.And -> Word.logand a b

let taken cond a b =
  match cond with
  | Instr.Beq -> a = b
  | Instr.Bne -> a <> b
  | Instr.Blt -> Word.lt_signed a b
  | Instr.Bge -> Word.ge_signed a b
  | Instr.Bltu -> Word.lt_unsigned a b
  | Instr.Bgeu -> Word.ge_unsigned a b

(* Execute one instruction; Some pc = ebreak hit. *)
let step t =
  let pc = t.pc in
  if pc land 3 <> 0 || not (in_range t pc 4) then
    raise (Fault (Printf.sprintf "bad fetch at %s" (Word.to_hex pc)));
  let word = read_word t pc in
  match Decode.decode word with
  | Error e -> raise (Fault (Printf.sprintf "illegal at %s: %s" (Word.to_hex pc) e))
  | Ok instr ->
    t.retired <- t.retired + 1;
    let next = Word.add pc 4 in
    begin match instr with
    | Instr.Lui { rd; imm } ->
      set_reg t rd (imm lsl 12);
      t.pc <- next;
      None
    | Instr.Auipc { rd; imm } ->
      set_reg t rd (Word.add pc (imm lsl 12));
      t.pc <- next;
      None
    | Instr.Jal { rd; offset } ->
      set_reg t rd next;
      t.pc <- Word.add pc offset;
      None
    | Instr.Jalr { rd; rs1; offset } ->
      let target = Word.logand (Word.add t.regs.(rs1) offset) (Word.lognot 1) in
      set_reg t rd next;
      t.pc <- target;
      None
    | Instr.Branch { cond; rs1; rs2; offset } ->
      t.pc <- (if taken cond t.regs.(rs1) t.regs.(rs2) then Word.add pc offset
               else next);
      None
    | Instr.Load { width; unsigned; rd; rs1; offset } ->
      set_reg t rd (load t ~width ~unsigned (Word.add t.regs.(rs1) offset));
      t.pc <- next;
      None
    | Instr.Store { width; rs2; rs1; offset } ->
      store t ~width (Word.add t.regs.(rs1) offset) t.regs.(rs2);
      t.pc <- next;
      None
    | Instr.Op_imm { op; rd; rs1; imm } ->
      set_reg t rd (alu op t.regs.(rs1) (Word.of_int imm));
      t.pc <- next;
      None
    | Instr.Op { op; rd; rs1; rs2 } ->
      set_reg t rd (alu op t.regs.(rs1) t.regs.(rs2));
      t.pc <- next;
      None
    | Instr.Fence ->
      t.pc <- next;
      None
    | Instr.Ebreak -> Some pc
    | Instr.Ecall -> raise (Fault "ecall in reference model")
    | Instr.Metal _ -> raise (Fault "metal instruction in reference model")
    end

let run t ~max_instructions =
  let rec go n =
    if n = 0 then Stop_limit
    else
      match step t with
      | Some pc -> Stop_ebreak pc
      | None -> go (n - 1)
      | exception Fault msg -> Stop_fault msg
  in
  go max_instructions
