let page_size = 4096

let entries_per_table = 1024

let leaf ~pa ?(pkey = 0) ?(global = false) ~r ~w ~x () =
  assert (pa land 0xFFF = 0);
  Word.of_int
    (pa
     lor ((pkey land 0xF) lsl 5)
     lor (if global then 0x10 else 0)
     lor (if x then 0x8 else 0)
     lor (if w then 0x4 else 0)
     lor (if r then 0x2 else 0)
     lor 0x1)

let table ~pa =
  assert (pa land 0xFFF = 0);
  Word.of_int (pa lor 0x1)

let invalid = 0

let is_valid pte = pte land 1 = 1

let is_leaf pte = is_valid pte && pte land 0xE <> 0

let pa_of pte = pte land 0xFFFFF000

let l1_index vaddr = (vaddr lsr 22) land 0x3FF

let l2_index vaddr = (vaddr lsr 12) land 0x3FF
