type state =
  | Ready
  | Running
  | Blocked  (* waiting in sys_recv *)
  | Exited of int
  | Faulted of string

type t = {
  pid : int;
  space : Addr_space.t;
  regs : Word.t array;
  mutable pc : int;
  mutable privilege : int;
  mutable pkey_perms : Word.t;
  mutable state : state;
  mutable yields : int;
  mailbox : Word.t Queue.t;
}

let create ~pid ~space ~entry ~sp ~user_pkeys =
  let regs = Array.make 32 0 in
  regs.(Reg.sp) <- Word.of_int sp;
  {
    pid;
    space;
    regs;
    pc = entry;
    privilege = 1;
    pkey_perms = user_pkeys;
    state = Ready;
    yields = 0;
    mailbox = Queue.create ();
  }

let save m t =
  Array.blit m.Metal_cpu.Machine.regs 0 t.regs 0 32;
  t.privilege <- Metal_cpu.Machine.get_mreg m Reg.Mconv.privilege;
  t.pkey_perms <- Metal_cpu.Machine.ctrl_read m Csr.pkey_perms

let restore m t =
  Addr_space.activate m t.space;
  Array.blit t.regs 0 m.Metal_cpu.Machine.regs 0 32;
  m.Metal_cpu.Machine.regs.(0) <- 0;
  Metal_cpu.Machine.set_mreg m Reg.Mconv.privilege t.privilege;
  Metal_cpu.Machine.ctrl_write m Csr.pkey_perms t.pkey_perms;
  Metal_cpu.Machine.set_pc m t.pc;
  t.state <- Running

let state_to_string = function
  | Ready -> "ready"
  | Running -> "running"
  | Blocked -> "blocked"
  | Exited code -> Printf.sprintf "exited(%d)" code
  | Faulted msg -> Printf.sprintf "faulted(%s)" msg
