(** Processes: per-process architectural context and address space. *)

type state =
  | Ready
  | Running
  | Blocked  (** parked in [sys_recv] until a message arrives *)
  | Exited of int  (** exit code *)
  | Faulted of string

type t = {
  pid : int;
  space : Addr_space.t;
  regs : Word.t array;  (** 32 GPRs, saved while not running *)
  mutable pc : int;
  mutable privilege : int;  (** saved m0 (0 kernel / 1 user) *)
  mutable pkey_perms : Word.t;  (** saved page-key view *)
  mutable state : state;
  mutable yields : int;
  mailbox : Word.t Queue.t;  (** pending IPC messages (bounded) *)
}

val create :
  pid:int -> space:Addr_space.t -> entry:int -> sp:int ->
  user_pkeys:int -> t

val save : Metal_cpu.Machine.t -> t -> unit
(** Capture GPRs, pc (caller supplies via [t.pc] beforehand),
    privilege and page-key state from the machine. *)

val restore : Metal_cpu.Machine.t -> t -> unit
(** Install the context: activate the address space, restore GPRs,
    privilege, page keys, and reset the pipeline at [t.pc]. *)

val state_to_string : state -> string
