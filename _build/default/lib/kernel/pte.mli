(** Page-table entries.

    The format shared by the hardware walker ({!Metal_cpu.Pipeline})
    and the mcode walker ({!Metal_progs.Pagetable}): physical page
    base in bits 31:12, page key in bits 8:5, G bit 4, X bit 3, W bit
    2, R bit 1, V bit 0.  A valid entry with X=W=R=0 points to the
    next-level table; a level-1 leaf maps a 4 MiB superpage. *)

val page_size : int
(** 4096. *)

val entries_per_table : int
(** 1024 (two-level, 10+10+12 split). *)

val leaf :
  pa:int -> ?pkey:int -> ?global:bool -> r:bool -> w:bool -> x:bool ->
  unit -> Word.t
(** A leaf PTE mapping [pa] (page-aligned). *)

val table : pa:int -> Word.t
(** A non-leaf PTE pointing at the next-level table at [pa]. *)

val invalid : Word.t

val is_valid : Word.t -> bool

val is_leaf : Word.t -> bool
(** Valid and at least one of X/W/R set. *)

val pa_of : Word.t -> int
(** The physical base (bits 31:12). *)

val l1_index : int -> int
(** [l1_index vaddr] = bits 31:22. *)

val l2_index : int -> int
(** [l2_index vaddr] = bits 21:12. *)
