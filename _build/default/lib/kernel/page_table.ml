type t = { mem : Metal_hw.Phys_mem.t; alloc : Frame_alloc.t; root : int }

type perms = { r : bool; w : bool; x : bool }

let rwx = { r = true; w = true; x = true }
let rw = { r = true; w = true; x = false }
let rx = { r = true; w = false; x = true }
let ro = { r = true; w = false; x = false }

let create ~mem ~alloc =
  let root = Frame_alloc.alloc_exn alloc in
  { mem; alloc; root }

let root t = t.root

let read_pte t pa = Metal_hw.Phys_mem.read32 t.mem pa

let write_pte t pa v = Metal_hw.Phys_mem.write32 t.mem pa v

(* Physical address of the leaf slot for [vaddr], allocating the
   second-level table when [grow]. *)
let leaf_slot t ~grow vaddr =
  let l1_slot = t.root + (4 * Pte.l1_index vaddr) in
  let pte1 = read_pte t l1_slot in
  if Pte.is_leaf pte1 then Error "address covered by a superpage"
  else if Pte.is_valid pte1 then
    Ok (Some (Pte.pa_of pte1 + (4 * Pte.l2_index vaddr)))
  else if not grow then Ok None
  else
    match Frame_alloc.alloc t.alloc with
    | None -> Error "out of frames for page tables"
    | Some table ->
      write_pte t l1_slot (Pte.table ~pa:table);
      Ok (Some (table + (4 * Pte.l2_index vaddr)))

let map t ~vaddr ~paddr ?(pkey = 0) ?(global = false) perms =
  if vaddr land 0xFFF <> 0 || paddr land 0xFFF <> 0 then
    Error "map: addresses must be page-aligned"
  else
    match leaf_slot t ~grow:true vaddr with
    | Error _ as e -> e
    | Ok None -> Error "map: internal"
    | Ok (Some slot) ->
      write_pte t slot
        (Pte.leaf ~pa:paddr ~pkey ~global ~r:perms.r ~w:perms.w ~x:perms.x ());
      Ok ()

let map_range t ~vaddr ~paddr ~size ?(pkey = 0) ?(global = false) perms =
  if size <= 0 then Error "map_range: empty"
  else begin
    let pages = (size + Pte.page_size - 1) / Pte.page_size in
    let rec go i =
      if i = pages then Ok ()
      else
        match
          map t
            ~vaddr:(vaddr + (i * Pte.page_size))
            ~paddr:(paddr + (i * Pte.page_size))
            ~pkey ~global perms
        with
        | Ok () -> go (i + 1)
        | Error _ as e -> e
    in
    go 0
  end

let map_superpage t ~vaddr ~paddr ?(pkey = 0) ?(global = false) perms =
  let align = (1 lsl 22) - 1 in
  if vaddr land align <> 0 || paddr land align <> 0 then
    Error "map_superpage: addresses must be 4 MiB-aligned"
  else begin
    let l1_slot = t.root + (4 * Pte.l1_index vaddr) in
    write_pte t l1_slot
      (Pte.leaf ~pa:paddr ~pkey ~global ~r:perms.r ~w:perms.w ~x:perms.x ());
    Ok ()
  end

let unmap t ~vaddr =
  match leaf_slot t ~grow:false vaddr with
  | Error _ ->
    (* Superpage: invalidate the level-1 slot. *)
    let l1_slot = t.root + (4 * Pte.l1_index vaddr) in
    let pte1 = read_pte t l1_slot in
    if Pte.is_leaf pte1 then begin
      write_pte t l1_slot Pte.invalid;
      true
    end
    else false
  | Ok None -> false
  | Ok (Some slot) ->
    if Pte.is_valid (read_pte t slot) then begin
      write_pte t slot Pte.invalid;
      true
    end
    else false

let lookup t ~vaddr =
  let l1_slot = t.root + (4 * Pte.l1_index vaddr) in
  let pte1 = read_pte t l1_slot in
  if not (Pte.is_valid pte1) then None
  else if Pte.is_leaf pte1 then
    let base = Pte.pa_of pte1 lor ((vaddr lsr 12) land 0x3FF) lsl 12 in
    Some (base lor (vaddr land 0xFFF), pte1)
  else
    let slot = Pte.pa_of pte1 + (4 * Pte.l2_index vaddr) in
    let pte2 = read_pte t slot in
    if Pte.is_leaf pte2 then Some (Pte.pa_of pte2 lor (vaddr land 0xFFF), pte2)
    else None
