lib/kernel/page_table.ml: Frame_alloc Metal_hw Pte
