lib/kernel/frame_alloc.ml: Pte
