lib/kernel/kernel.ml: Addr_space Array Cause Csr Frame_alloc List Loader Metal_asm Metal_cpu Metal_hw Metal_progs Page_table Printf Process Pte Queue Reg Result Word
