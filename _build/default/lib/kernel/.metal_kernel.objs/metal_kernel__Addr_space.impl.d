lib/kernel/addr_space.ml: Csr Metal_cpu Metal_hw Metal_progs Page_table
