lib/kernel/loader.ml: Addr_space Char Frame_alloc List Metal_asm Metal_cpu Metal_hw Page_table Pte Result String
