lib/kernel/pte.ml: Word
