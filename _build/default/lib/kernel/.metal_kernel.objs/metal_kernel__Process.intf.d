lib/kernel/process.mli: Addr_space Metal_cpu Queue Word
