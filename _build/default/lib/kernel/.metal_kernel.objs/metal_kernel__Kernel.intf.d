lib/kernel/kernel.mli: Frame_alloc Metal_cpu Metal_hw Process
