lib/kernel/page_table.mli: Frame_alloc Metal_hw Word
