lib/kernel/process.ml: Addr_space Array Csr Metal_cpu Printf Queue Reg Word
