lib/kernel/loader.mli: Addr_space Frame_alloc Metal_asm Metal_cpu Page_table
