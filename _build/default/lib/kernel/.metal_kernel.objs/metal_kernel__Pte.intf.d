lib/kernel/pte.mli: Word
