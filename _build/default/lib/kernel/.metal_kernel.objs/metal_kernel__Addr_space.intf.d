lib/kernel/addr_space.mli: Frame_alloc Metal_cpu Page_table
