(** Physical frame allocator: a bump allocator over a region of
    physical memory, handing out 4 KiB frames. *)

type t

val create : base:int -> limit:int -> t
(** [create ~base ~limit] manages frames in [base, limit); both must
    be page-aligned. *)

val alloc : t -> int option
(** The physical address of a fresh (zeroed-at-boot) frame. *)

val alloc_exn : t -> int
(** @raise Failure when out of frames. *)

val allocated : t -> int
(** Frames handed out so far. *)

val remaining : t -> int
