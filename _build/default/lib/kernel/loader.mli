(** User-program loader: place an assembled image into a virtual
    address space, allocating and mapping frames page by page. *)

val load :
  Metal_cpu.Machine.t ->
  space:Addr_space.t ->
  alloc:Frame_alloc.t ->
  ?pkey:int ->
  ?perms:Page_table.perms ->
  Metal_asm.Image.t ->
  (unit, string) result
(** Image chunk addresses are interpreted as virtual addresses.
    Defaults: pkey 0, rwx permissions. *)

val map_fresh :
  Metal_cpu.Machine.t ->
  space:Addr_space.t ->
  alloc:Frame_alloc.t ->
  vaddr:int ->
  size:int ->
  ?pkey:int ->
  ?perms:Page_table.perms ->
  unit ->
  (unit, string) result
(** Map [size] bytes of fresh zeroed frames at [vaddr] (stacks,
    heaps). *)
