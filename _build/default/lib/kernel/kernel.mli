(** A minimal operating system built on Metal's privilege mroutines.

    Demonstrates the paper's thesis end to end: the kernel/user
    boundary is implemented *entirely in mcode* (kenter/kexit,
    Figure 2), page faults are handled by the custom page-table
    mroutine, kernel memory is protected from user code with page
    keys, and system calls dispatch through the table [kenter] reads.

    The kernel's passive side (scheduler decisions, process table) is
    host-driven: kernel stubs park the machine with [ebreak] at
    well-known addresses and the host scheduler reacts — the
    in-machine code paths (syscall entry/exit, privilege switching,
    fault delivery, page-table walks) are all real guest/mcode
    execution, which is what the experiments measure.

    System calls (number in a0, via [menter kenter]; result in a0):
    - 0 [putchar]: a1 = character.
    - 1 [getpid].
    - 2 [yield].
    - 3 [exit]: a1 = exit code.
    - 4 [puts]: a1 = string address, a2 = length.
    - 5 [send]: a1 = destination pid, a2 = message word; a0 = 0, or
      -1 for a bad destination, -2 when the mailbox is full.
    - 6 [recv]: blocks until a message arrives; a0 = message. *)

type t = {
  machine : Metal_cpu.Machine.t;
  console : Metal_hw.Devices.Console.t;
  alloc : Frame_alloc.t;
  mutable procs : Process.t list;  (** run queue, head runs next *)
  yield_pc : int;
  exit_pc : int;
  fault_pc : int;
  send_pc : int;
  recv_pc : int;
  user_entry : int;
  mutable next_pid : int;
}

val syscall_putchar : int
val syscall_getpid : int
val syscall_yield : int
val syscall_exit : int
val syscall_puts : int
val syscall_send : int
val syscall_recv : int

val nsyscalls : int

val mailbox_capacity : int

val kernel_base : int
(** Physical/virtual base of the kernel image (identity-mapped). *)

val user_code_base : int
(** Virtual address user programs are assembled at (0x10000). *)

val user_stack_top : int

val boot : ?config:Metal_cpu.Config.t -> unit -> (t, string) result
(** Create the machine, load the kernel image, install the privilege
    and page-table mroutines, delegate exceptions, enable paging. *)

val spawn : t -> source:string -> (Process.t, string) result
(** Assemble [source] at {!user_code_base}, build an address space
    (kernel globals + code + stack) and enqueue the process. *)

type outcome =
  | All_done  (** no runnable process left (inspect their states) *)
  | Deadlocked  (** every remaining process is blocked in [recv] *)
  | Out_of_cycles
  | Machine_halted of Metal_cpu.Machine.halt  (** unexpected halt *)

val run : t -> max_cycles:int -> outcome
(** Round-robin schedule until every process exits or faults. *)

val console_output : t -> string

val find_process : t -> pid:int -> Process.t option
