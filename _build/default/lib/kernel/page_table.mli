(** Two-level radix page tables in simulated physical memory.

    Builds the structures both walkers consume: the optional hardware
    walker and the Metal page-fault mroutine
    ({!Metal_progs.Pagetable}). *)

type t

val create : mem:Metal_hw.Phys_mem.t -> alloc:Frame_alloc.t -> t
(** Allocates the root table. *)

val root : t -> int
(** Physical address of the root table. *)

type perms = { r : bool; w : bool; x : bool }

val rwx : perms
val rw : perms
val rx : perms
val ro : perms

val map :
  t -> vaddr:int -> paddr:int -> ?pkey:int -> ?global:bool -> perms ->
  (unit, string) result
(** Map one 4 KiB page; allocates the second-level table on demand.
    Remapping an existing page overwrites the leaf. *)

val map_range :
  t -> vaddr:int -> paddr:int -> size:int -> ?pkey:int -> ?global:bool ->
  perms -> (unit, string) result
(** Map [size] bytes (rounded up to whole pages). *)

val map_superpage :
  t -> vaddr:int -> paddr:int -> ?pkey:int -> ?global:bool -> perms ->
  (unit, string) result
(** Map a 4 MiB superpage with a level-1 leaf (both addresses 4
    MiB-aligned). *)

val unmap : t -> vaddr:int -> bool
(** Invalidate the leaf for [vaddr]; false when it was not mapped.
    The caller is responsible for flushing the TLB. *)

val lookup : t -> vaddr:int -> (int * Word.t) option
(** [(physical address, leaf pte)] for [vaddr], walking in software —
    used by tests to cross-check both walkers. *)
