(** Table 2 report: hardware resources with and without Metal. *)

type row = { label : string; baseline : int; metal : int; change_pct : float }

type t = { wires : row; cells : row }

val table2 : ?config:Netlist.config -> unit -> t

val pp : Format.formatter -> t -> unit
(** Renders the table in the paper's layout. *)

val to_string : t -> string

val breakdown : ?config:Netlist.config -> unit -> string
(** Per-component cost listing for both configurations (the detail
    behind Table 2). *)
