lib/synth/report.ml: Buffer Component Cost_model Format List Netlist Printf
