lib/synth/cost_model.mli: Component
