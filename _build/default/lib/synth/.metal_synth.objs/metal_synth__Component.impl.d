lib/synth/component.ml: Printf
