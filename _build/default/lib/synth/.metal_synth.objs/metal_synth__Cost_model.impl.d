lib/synth/cost_model.ml: Component List
