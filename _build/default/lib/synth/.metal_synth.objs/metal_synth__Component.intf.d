lib/synth/component.mli:
