lib/synth/report.mli: Format Netlist
