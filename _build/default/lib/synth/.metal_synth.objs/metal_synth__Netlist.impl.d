lib/synth/netlist.ml: Component
