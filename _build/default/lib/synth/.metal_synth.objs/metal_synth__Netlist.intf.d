lib/synth/netlist.mli: Component
