(** Standard-cell and wire cost model.

    Per-component costs are derived from textbook gate counts
    (flip-flop ~6 gate-equivalents, full adder ~9, 2:1 mux ~1.5 per
    bit, ...) and a global calibration factor chosen so the baseline
    processor's totals land near the paper's Table 2 baseline
    (180,546 cells / 170,264 wires).  The calibration affects both
    configurations identically, so the relative cost of Metal — the
    result Table 2 reports — comes entirely from the netlist
    structure. *)

type cost = { cells : int; wires : int }

val zero : cost

val add : cost -> cost -> cost

val scale : int -> cost -> cost

val of_kind : Component.kind -> cost
(** Uncalibrated cost of one instance. *)

val of_component : Component.t -> cost
(** Calibrated cost of all instances of a component. *)

val total : Component.t list -> cost

val calibration : float
(** The global factor applied by {!of_component}. *)
