type row = { label : string; baseline : int; metal : int; change_pct : float }

type t = { wires : row; cells : row }

let row label baseline metal =
  let change_pct =
    100.0 *. (float_of_int (metal - baseline) /. float_of_int baseline)
  in
  { label; baseline; metal; change_pct }

let table2 ?(config = Netlist.prototype) () =
  let b = Cost_model.total (Netlist.baseline config) in
  let m = Cost_model.total (Netlist.metal config) in
  {
    wires = row "Number of Wires" b.Cost_model.wires m.Cost_model.wires;
    cells = row "Number of Cells" b.Cost_model.cells m.Cost_model.cells;
  }

let pp fmt t =
  let line r =
    Format.fprintf fmt "%-18s %10d %10d %9.1f%%@." r.label r.baseline r.metal
      r.change_pct
  in
  Format.fprintf fmt "%-18s %10s %10s %10s@." "" "Baseline" "Metal" "%Change";
  line t.wires;
  line t.cells

let to_string t = Format.asprintf "%a" pp t

let breakdown ?(config = Netlist.prototype) () =
  let buf = Buffer.create 1024 in
  let section title comps =
    Buffer.add_string buf (title ^ "\n");
    List.iter
      (fun comp ->
         let cost = Cost_model.of_component comp in
         Buffer.add_string buf
           (Printf.sprintf "  %-34s cells=%7d wires=%7d\n"
              (Component.describe comp) cost.Cost_model.cells
              cost.Cost_model.wires))
      comps;
    let t = Cost_model.total comps in
    Buffer.add_string buf
      (Printf.sprintf "  %-34s cells=%7d wires=%7d\n" "TOTAL"
         t.Cost_model.cells t.Cost_model.wires)
  in
  section "Baseline processor" (Netlist.baseline config);
  section "Metal additions" (Netlist.metal_additions config);
  Buffer.contents buf
