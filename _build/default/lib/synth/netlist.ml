type config = {
  mram_code_bytes : int;
  mram_data_bytes : int;
  mreg_count : int;
  tlb_entries : int;
}

let prototype =
  { mram_code_bytes = 2048; mram_data_bytes = 512; mreg_count = 32;
    tlb_entries = 64 }

let mk = Component.make

let baseline cfg =
  [
    (* Fetch *)
    mk "pc" (Component.Latch { bits = 32 });
    mk "fetch next-pc adder" (Component.Adder { width = 32 });
    mk "fetch redirect mux" (Component.Mux { width = 32; ways = 3 });
    mk "icache data" (Component.Sram { bytes = 8192; ports = 1 });
    mk "icache tags" (Component.Cam { entries = 64; tag_bits = 20; data_bits = 2 });
    (* Decode *)
    mk "instruction decoder" (Component.Decoder { in_bits = 32; out_signals = 96 });
    mk "immediate mux" (Component.Mux { width = 32; ways = 5 });
    mk "register file"
      (Component.Regfile { entries = 32; width = 32; read_ports = 2;
                           write_ports = 1 });
    mk "hazard unit" (Component.Control { states = 8; signals = 24 });
    mk "jal target adder" (Component.Adder { width = 32 });
    (* Execute *)
    mk "alu" (Component.Alu { width = 32 });
    mk "barrel shifter" (Component.Shifter { width = 32 });
    mk "branch comparator" (Component.Comparator { width = 32 });
    mk "branch target adder" (Component.Adder { width = 32 });
    mk ~count:2 "forwarding mux" (Component.Mux { width = 32; ways = 3 });
    (* Memory *)
    mk "dcache data" (Component.Sram { bytes = 8192; ports = 1 });
    mk "dcache tags" (Component.Cam { entries = 64; tag_bits = 20; data_bits = 2 });
    mk "tlb"
      (Component.Cam { entries = cfg.tlb_entries; tag_bits = 29;
                       data_bits = 27 });
    mk "page-table walker" (Component.Control { states = 12; signals = 30 });
    mk "pkey permission check" (Component.Comparator { width = 32 });
    mk "load align/extend" (Component.Mux { width = 32; ways = 5 });
    mk "store align" (Component.Mux { width = 32; ways = 4 });
    mk "bus interface" (Component.Control { states = 10; signals = 40 });
    (* Writeback *)
    mk "writeback mux" (Component.Mux { width = 32; ways = 3 });
    (* System state *)
    mk "csr file"
      (Component.Regfile { entries = 64; width = 32; read_ports = 1;
                           write_ports = 1 });
    mk "interrupt controller" (Component.Control { states = 6; signals = 20 });
    mk "irq pending" (Component.Latch { bits = 16 });
    (* Pipeline latches *)
    mk "if/id latch" (Component.Latch { bits = 72 });
    mk "id/ex latch" (Component.Latch { bits = 180 });
    mk "ex/mem latch" (Component.Latch { bits = 140 });
    mk "mem/wb latch" (Component.Latch { bits = 72 });
  ]

let metal_additions cfg =
  [
    mk "mram code segment"
      (Component.Sram { bytes = cfg.mram_code_bytes; ports = 1 });
    mk "mram data segment"
      (Component.Sram { bytes = cfg.mram_data_bytes; ports = 1 });
    mk "mroutine entry table" (Component.Sram { bytes = 64 * 2; ports = 1 });
    mk "metal register file"
      (Component.Regfile { entries = cfg.mreg_count; width = 32;
                           read_ports = 1; write_ports = 1 });
    mk "metal mode control" (Component.Control { states = 10; signals = 36 });
    mk "menter/mexit replacement mux" (Component.Mux { width = 32; ways = 3 });
    mk "metal fetch path mux" (Component.Mux { width = 32; ways = 2 });
    mk "intercept match table"
      (Component.Cam { entries = 16; tag_bits = 8; data_bits = 8 });
    mk "event register write path" (Component.Mux { width = 32; ways = 6 });
    mk "mram address decode" (Component.Decoder { in_bits = 12; out_signals = 16 });
  ]

let metal cfg = baseline cfg @ metal_additions cfg
