type config = { lines : int; line_bytes : int; miss_penalty : int }

type t = {
  cfg : config;
  tags : int array;  (* -1 = invalid *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let is_pow2 v = v > 0 && v land (v - 1) = 0

let create cfg =
  if not (is_pow2 cfg.lines && is_pow2 cfg.line_bytes) then
    invalid_arg "Cache.create: lines and line_bytes must be powers of two";
  if cfg.miss_penalty < 0 then invalid_arg "Cache.create: negative penalty";
  { cfg; tags = Array.make cfg.lines (-1); hit_count = 0; miss_count = 0 }

let config t = t.cfg

let split t addr =
  let line = addr / t.cfg.line_bytes in
  (line mod t.cfg.lines, line / t.cfg.lines)

let access t ~addr =
  let index, tag = split t addr in
  if t.tags.(index) = tag then begin
    t.hit_count <- t.hit_count + 1;
    true
  end
  else begin
    t.miss_count <- t.miss_count + 1;
    t.tags.(index) <- tag;
    false
  end

let probe t ~addr =
  let index, tag = split t addr in
  t.tags.(index) = tag

let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)

let hits t = t.hit_count

let misses t = t.miss_count

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags
