(** Interrupt controller: a set of level/edge pending bits raised by
    devices and consumed by the pipeline.  Line enabling and delivery
    routing live in the machine control registers. *)

type t

val lines : int
(** Number of interrupt lines (16). *)

val timer_irq : int
(** Line 0. *)

val nic_irq : int
(** Line 1. *)

val console_irq : int
(** Line 2. *)

val ipi_irq : int
(** Line 3: software-raised, for tests. *)

val create : unit -> t

val raise_irq : t -> int -> unit
(** Set the pending bit for a line. *)

val clear : t -> mask:int -> unit
(** Clear every pending bit set in [mask]. *)

val pending : t -> int
(** Current pending bitmask. *)

val highest_pending : t -> enabled:int -> int option
(** Lowest-numbered pending line that is also set in [enabled]. *)
