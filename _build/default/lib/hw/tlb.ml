type entry = {
  asid : int;
  global : bool;
  vpn : int;
  ppn : int;
  r : bool;
  w : bool;
  x : bool;
  pkey : int;
}

type t = { slots : entry option array; mutable victim : int }

let page_shift = 12

let create ~entries =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  { slots = Array.make entries None; victim = 0 }

let capacity t = Array.length t.slots

let matches ~asid ~vpn = function
  | Some e -> e.vpn = vpn && (e.global || e.asid = asid)
  | None -> false

let lookup t ~asid ~vpn =
  let n = Array.length t.slots in
  let rec find i =
    if i >= n then None
    else if matches ~asid ~vpn t.slots.(i) then t.slots.(i)
    else find (i + 1)
  in
  find 0

let insert t e =
  let n = Array.length t.slots in
  let rec find_tag i =
    if i >= n then None
    else
      match t.slots.(i) with
      | Some e' when e'.vpn = e.vpn && e'.asid = e.asid && e'.global = e.global
        -> Some i
      | Some _ | None -> find_tag (i + 1)
  in
  let rec find_free i =
    if i >= n then None else if t.slots.(i) = None then Some i else find_free (i + 1)
  in
  let slot =
    match find_tag 0 with
    | Some i -> i
    | None ->
      begin match find_free 0 with
      | Some i -> i
      | None ->
        let i = t.victim in
        t.victim <- (t.victim + 1) mod n;
        i
      end
  in
  t.slots.(slot) <- Some e

let insert_packed t ~tag ~data =
  let vpn, asid, global = Instr.unpack_tlb_tag tag in
  let ppn, pkey, r, w, x = Instr.unpack_tlb_data data in
  insert t { asid; global; vpn; ppn; r; w; x; pkey }

let probe_packed t ~asid ~vaddr =
  let vpn = Word.bits ~hi:31 ~lo:12 vaddr in
  match lookup t ~asid ~vpn with
  | None -> 0
  | Some e -> Instr.pack_tlb_data ~ppn:e.ppn ~pkey:e.pkey ~r:e.r ~w:e.w ~x:e.x

let flush_all t = Array.fill t.slots 0 (Array.length t.slots) None

let flush_asid t ~asid =
  Array.iteri
    (fun i slot ->
       match slot with
       | Some e when (not e.global) && e.asid = asid -> t.slots.(i) <- None
       | Some _ | None -> ())
    t.slots

let entries t =
  Array.to_list t.slots |> List.filter_map (fun e -> e)
