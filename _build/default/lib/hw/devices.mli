(** Memory-mapped devices and host-side agents.

    These model the environment the paper's applications need: a
    console for program output, a NIC-like packet source for the
    user-level-interrupt experiments (Section 3.4, the DPDK/SPDK
    motivation) and a DMA agent that mutates memory behind the
    processor's back (used to inject conflicts into the transactional
    memory experiments, standing in for a second core). *)

(** {1 Console} *)

module Console : sig
  type t

  val create : base:int -> t

  val device : t -> Bus.device

  val output : t -> string
  (** Everything written to the TX register so far. *)

  val clear : t -> unit

  val reg_tx : int
  (** Write: emit low byte.  Offset 0x0. *)

  val reg_status : int
  (** Read: always 1 (ready).  Offset 0x4. *)
end

(** {1 NIC packet source} *)

module Nic : sig
  type t

  type schedule =
    | Periodic of { start : int; period : int; count : int }
        (** one packet every [period] cycles. *)
    | At of int list  (** explicit arrival cycles. *)

  val create : base:int -> intc:Intc.t -> schedule:schedule -> t

  val device : t -> Bus.device

  (** MMIO register offsets. *)

  val reg_rx_count : int
  (** Read: packets queued.  Offset 0x0. *)

  val reg_rx_seq : int
  (** Read: head packet sequence number.  Offset 0x4. *)

  val reg_rx_word : int
  (** Read: next payload word of the head packet.  Offset 0x8. *)

  val reg_rx_pop : int
  (** Write: retire the head packet.  Offset 0xc. *)

  val reg_irq_ctrl : int
  (** Read/write: bit 0 enables the rx interrupt.  Offset 0x10. *)

  val arrived : t -> int
  (** Packets that have arrived so far. *)

  val delivered : t -> int
  (** Packets retired via [reg_rx_pop]. *)

  val queued : t -> int

  val latencies : t -> int list
  (** Per-retired-packet (pop cycle - arrival cycle), oldest first. *)

  val done_sending : t -> bool
  (** The schedule is exhausted and the queue is empty. *)
end

(** {1 DMA agent} *)

module Dma : sig
  type t

  val create : mem:Phys_mem.t -> writes:(int * int * Word.t) list -> t
  (** [writes] is a list of (cycle, physical address, value) word
      stores performed behind the pipeline's back. *)

  val device : t -> Bus.device
  (** A tick-only device (no MMIO window is decoded: reads return 0). *)

  val performed : t -> int
end
