lib/hw/mregs.ml: Array Printf Reg Word
