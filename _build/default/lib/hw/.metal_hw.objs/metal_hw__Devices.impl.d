lib/hw/devices.ml: Buffer Bus Char Intc List Phys_mem Queue Word
