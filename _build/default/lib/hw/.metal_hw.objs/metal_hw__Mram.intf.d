lib/hw/mram.mli: Metal_asm Word
