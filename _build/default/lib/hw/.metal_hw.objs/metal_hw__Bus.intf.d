lib/hw/bus.mli: Cause Instr Phys_mem Word
