lib/hw/bus.ml: Cause Instr List Phys_mem Printf Word
