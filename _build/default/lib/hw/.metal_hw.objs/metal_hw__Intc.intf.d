lib/hw/intc.mli:
