lib/hw/intc.ml:
