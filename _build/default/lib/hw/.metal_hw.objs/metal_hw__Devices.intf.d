lib/hw/devices.mli: Bus Intc Phys_mem Word
