lib/hw/cache.mli:
