lib/hw/mram.ml: Array Bytes Char List Metal_asm Printf Result String Word
