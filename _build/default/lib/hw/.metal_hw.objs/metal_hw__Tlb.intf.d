lib/hw/tlb.mli: Word
