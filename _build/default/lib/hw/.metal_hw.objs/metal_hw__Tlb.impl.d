lib/hw/tlb.ml: Array Instr List Word
