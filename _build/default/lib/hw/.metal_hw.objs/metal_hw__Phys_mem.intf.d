lib/hw/phys_mem.mli: Metal_asm Word
