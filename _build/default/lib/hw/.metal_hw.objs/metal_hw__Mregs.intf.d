lib/hw/mregs.mli: Reg Word
