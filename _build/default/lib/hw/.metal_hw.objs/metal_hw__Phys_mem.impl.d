lib/hw/phys_mem.ml: Bytes Char List Metal_asm Printf String
