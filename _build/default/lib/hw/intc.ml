type t = { mutable pending : int }

let lines = 16

let timer_irq = 0
let nic_irq = 1
let console_irq = 2
let ipi_irq = 3

let create () = { pending = 0 }

let raise_irq t irq =
  assert (irq >= 0 && irq < lines);
  t.pending <- t.pending lor (1 lsl irq)

let clear t ~mask = t.pending <- t.pending land lnot mask

let pending t = t.pending

let highest_pending t ~enabled =
  let live = t.pending land enabled in
  if live = 0 then None
  else
    let rec find i = if live land (1 lsl i) <> 0 then Some i else find (i + 1) in
    find 0
