(** Direct-mapped cache timing model.

    Tag-only (the simulator's memory is flat, so only hit/miss timing
    matters).  Used for the optional instruction and data caches; the
    MRAM deliberately bypasses it — "Accesses to the RAM do not alter
    processor caches ... This also prevents side channels on the RAM"
    (Section 2, Section 4). *)

type config = {
  lines : int;  (** power of two *)
  line_bytes : int;  (** power of two *)
  miss_penalty : int;  (** extra stall cycles per miss *)
}

type t

val create : config -> t

val config : t -> config

val access : t -> addr:int -> bool
(** Look up [addr]; fills the line on a miss.  Returns [true] on a
    hit.  Counters are updated. *)

val probe : t -> addr:int -> bool
(** Non-allocating lookup (no fill, no counters). *)

val flush : t -> unit

val hits : t -> int

val misses : t -> int

val resident_lines : t -> int
(** Number of valid lines, for inspection. *)
