module Console = struct
  type t = { base : int; buf : Buffer.t }

  let reg_tx = 0x0
  let reg_status = 0x4

  let create ~base = { base; buf = Buffer.create 256 }

  let output t = Buffer.contents t.buf

  let clear t = Buffer.clear t.buf

  let device t =
    {
      Bus.name = "console";
      base = t.base;
      size = 0x8;
      read32 = (fun off -> if off = reg_status then 1 else 0);
      write32 =
        (fun off v ->
           if off = reg_tx then Buffer.add_char t.buf (Char.chr (v land 0xFF)));
      tick = (fun ~cycle:_ -> ());
    }
end

module Nic = struct
  type packet = { seq : int; mutable next_word : int; arrival : int }

  type schedule =
    | Periodic of { start : int; period : int; count : int }
    | At of int list

  type t = {
    base : int;
    intc : Intc.t;
    mutable pending_arrivals : int list;  (** sorted arrival cycles *)
    queue : packet Queue.t;
    mutable seq : int;
    mutable arrived : int;
    mutable delivered : int;
    mutable irq_enabled : bool;
    mutable latencies_rev : int list;
    mutable now : int;
  }

  let reg_rx_count = 0x0
  let reg_rx_seq = 0x4
  let reg_rx_word = 0x8
  let reg_rx_pop = 0xc
  let reg_irq_ctrl = 0x10

  let expand_schedule = function
    | At cycles -> List.sort compare cycles
    | Periodic { start; period; count } ->
      List.init count (fun i -> start + (i * period))

  let create ~base ~intc ~schedule =
    {
      base;
      intc;
      pending_arrivals = expand_schedule schedule;
      queue = Queue.create ();
      seq = 0;
      arrived = 0;
      delivered = 0;
      irq_enabled = false;
      latencies_rev = [];
      now = 0;
    }

  let arrived t = t.arrived

  let delivered t = t.delivered

  let queued t = Queue.length t.queue

  let latencies t = List.rev t.latencies_rev

  let done_sending t = t.pending_arrivals = [] && Queue.is_empty t.queue

  (* Payload words are a simple function of the sequence number so
     guest code can checksum them. *)
  let payload_word seq i = Word.of_int ((seq * 0x9E3779B9) + i)

  let read32 t off =
    if off = reg_rx_count then Queue.length t.queue
    else if off = reg_rx_seq then
      (match Queue.peek_opt t.queue with Some p -> p.seq | None -> 0xFFFFFFFF)
    else if off = reg_rx_word then
      match Queue.peek_opt t.queue with
      | Some p ->
        let w = payload_word p.seq p.next_word in
        p.next_word <- p.next_word + 1;
        w
      | None -> 0
    else if off = reg_irq_ctrl then if t.irq_enabled then 1 else 0
    else 0

  let write32 t off v =
    if off = reg_rx_pop then begin
      match Queue.take_opt t.queue with
      | Some p ->
        t.delivered <- t.delivered + 1;
        t.latencies_rev <- (t.now - p.arrival) :: t.latencies_rev
      | None -> ()
    end
    else if off = reg_irq_ctrl then t.irq_enabled <- v land 1 = 1

  let tick t ~cycle =
    t.now <- cycle;
    let rec deliver () =
      match t.pending_arrivals with
      | c :: rest when c <= cycle ->
        t.pending_arrivals <- rest;
        Queue.add { seq = t.seq; next_word = 0; arrival = cycle } t.queue;
        t.seq <- t.seq + 1;
        t.arrived <- t.arrived + 1;
        if t.irq_enabled then Intc.raise_irq t.intc Intc.nic_irq;
        deliver ()
      | _ -> ()
    in
    deliver ()

  let device t =
    {
      Bus.name = "nic";
      base = t.base;
      size = 0x20;
      read32 = read32 t;
      write32 = write32 t;
      tick = tick t;
    }
end

module Dma = struct
  type t = {
    mem : Phys_mem.t;
    mutable writes : (int * int * Word.t) list;  (** sorted by cycle *)
    mutable performed : int;
  }

  let create ~mem ~writes =
    { mem;
      writes = List.sort (fun (a, _, _) (b, _, _) -> compare a b) writes;
      performed = 0 }

  let performed t = t.performed

  let tick t ~cycle =
    let rec go () =
      match t.writes with
      | (c, addr, v) :: rest when c <= cycle ->
        t.writes <- rest;
        Phys_mem.write32 t.mem addr v;
        t.performed <- t.performed + 1;
        go ()
      | _ -> ()
    in
    go ()

  let device t =
    {
      Bus.name = "dma-agent";
      (* Outside RAM and other windows; never actually addressed. *)
      base = 0xFFFF_FF00;
      size = 0x4;
      read32 = (fun _ -> 0);
      write32 = (fun _ _ -> ());
      tick = tick t;
    }
end
