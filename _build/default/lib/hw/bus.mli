(** Physical address bus: memory plus memory-mapped devices.

    Devices occupy word-granular windows; only aligned 32-bit accesses
    reach them (narrower MMIO accesses fault).  Everything below the
    memory size is RAM. *)

type device = {
  name : string;
  base : int;
  size : int;  (** window size in bytes (multiple of 4) *)
  read32 : int -> Word.t;  (** read at byte offset within the window *)
  write32 : int -> Word.t -> unit;
  tick : cycle:int -> unit;  (** called once per machine cycle *)
}

type t

val create : mem:Phys_mem.t -> t

val memory : t -> Phys_mem.t

val attach : t -> device -> unit
(** @raise Invalid_argument on overlap with RAM or another device. *)

val load : t -> width:Instr.mem_width -> addr:int -> (Word.t, Cause.t) result
(** Zero-extended read (the pipeline applies sign extension).
    Alignment is the pipeline's responsibility; out-of-range accesses
    return [Access_fault]. *)

val store :
  t -> width:Instr.mem_width -> addr:int -> Word.t -> (unit, Cause.t) result

val tick : t -> cycle:int -> unit
(** Advance every device by one cycle. *)

val mmio_base : int
(** Conventional start of the MMIO window (0xF000_0000). *)
