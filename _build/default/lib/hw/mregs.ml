type t = { regs : Word.t array }

let create () = { regs = Array.make Reg.mreg_count 0 }

let check m =
  if m < 0 || m >= Reg.mreg_count then
    invalid_arg (Printf.sprintf "Mregs: invalid metal register %d" m)

let read t m =
  check m;
  t.regs.(m)

let write t m v =
  check m;
  t.regs.(m) <- Word.of_int v

let dump t = Array.copy t.regs
