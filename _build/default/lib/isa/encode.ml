let opcode_lui = 0x37
let opcode_auipc = 0x17
let opcode_jal = 0x6F
let opcode_jalr = 0x67
let opcode_branch = 0x63
let opcode_load = 0x03
let opcode_store = 0x23
let opcode_op_imm = 0x13
let opcode_op = 0x33
let opcode_system = 0x73
let opcode_misc_mem = 0x0F
let opcode_custom0 = 0x0B
let opcode_custom1 = 0x2B

let ( let* ) = Result.bind

let check_reg name r =
  if Reg.is_valid r then Ok r
  else Error (Printf.sprintf "%s: invalid register index %d" name r)

let check_signed name width v =
  if Word.fits_signed ~width v then Ok (Word.zero_extend ~width v)
  else
    Error
      (Printf.sprintf "%s: immediate %d does not fit in %d signed bits" name
         v width)

let check_unsigned name width v =
  if Word.fits_unsigned ~width v then Ok v
  else
    Error
      (Printf.sprintf "%s: value %d does not fit in %d unsigned bits" name v
         width)

let check_even name v =
  if v land 1 = 0 then Ok v
  else Error (Printf.sprintf "%s: offset %d is not even" name v)

let r_type ~funct7 ~rs2 ~rs1 ~funct3 ~rd ~opcode =
  Word.of_int
    ((funct7 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
     lor (rd lsl 7) lor opcode)

let i_type ~imm12 ~rs1 ~funct3 ~rd ~opcode =
  Word.of_int
    ((imm12 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12) lor (rd lsl 7)
     lor opcode)

let s_type ~imm12 ~rs2 ~rs1 ~funct3 ~opcode =
  let hi = (imm12 lsr 5) land 0x7F and lo = imm12 land 0x1F in
  Word.of_int
    ((hi lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15) lor (funct3 lsl 12)
     lor (lo lsl 7) lor opcode)

let b_type ~imm13 ~rs2 ~rs1 ~funct3 ~opcode =
  (* imm13 is the zero-extended 13-bit branch offset (bit 0 = 0). *)
  let b12 = (imm13 lsr 12) land 1
  and b11 = (imm13 lsr 11) land 1
  and b10_5 = (imm13 lsr 5) land 0x3F
  and b4_1 = (imm13 lsr 1) land 0xF in
  Word.of_int
    ((b12 lsl 31) lor (b10_5 lsl 25) lor (rs2 lsl 20) lor (rs1 lsl 15)
     lor (funct3 lsl 12) lor (b4_1 lsl 8) lor (b11 lsl 7) lor opcode)

let u_type ~imm20 ~rd ~opcode =
  Word.of_int ((imm20 lsl 12) lor (rd lsl 7) lor opcode)

let j_type ~imm21 ~rd ~opcode =
  (* imm21 is the zero-extended 21-bit jump offset (bit 0 = 0). *)
  let b20 = (imm21 lsr 20) land 1
  and b19_12 = (imm21 lsr 12) land 0xFF
  and b11 = (imm21 lsr 11) land 1
  and b10_1 = (imm21 lsr 1) land 0x3FF in
  Word.of_int
    ((b20 lsl 31) lor (b10_1 lsl 21) lor (b11 lsl 20) lor (b19_12 lsl 12)
     lor (rd lsl 7) lor opcode)

let alu_funct3 = function
  | Instr.Add | Instr.Sub -> 0
  | Instr.Sll -> 1
  | Instr.Slt -> 2
  | Instr.Sltu -> 3
  | Instr.Xor -> 4
  | Instr.Srl | Instr.Sra -> 5
  | Instr.Or -> 6
  | Instr.And -> 7

let alu_funct7 = function
  | Instr.Sub | Instr.Sra -> 0x20
  | Instr.Add | Instr.Sll | Instr.Slt | Instr.Sltu | Instr.Xor | Instr.Srl
  | Instr.Or | Instr.And -> 0

let branch_funct3 = function
  | Instr.Beq -> 0
  | Instr.Bne -> 1
  | Instr.Blt -> 4
  | Instr.Bge -> 5
  | Instr.Bltu -> 6
  | Instr.Bgeu -> 7

let load_funct3 width unsigned =
  match (width, unsigned) with
  | Instr.Byte, false -> Ok 0
  | Instr.Half, false -> Ok 1
  | Instr.Word, false -> Ok 2
  | Instr.Byte, true -> Ok 4
  | Instr.Half, true -> Ok 5
  | Instr.Word, true -> Error "lwu: unsigned word load is not encodable"

let store_funct3 = function Instr.Byte -> 0 | Instr.Half -> 1 | Instr.Word -> 2

let encode_feature f =
  let open Instr in
  match f with
  | Physld { rd; rs1; offset } ->
    let* rd = check_reg "physld" rd in
    let* rs1 = check_reg "physld" rs1 in
    let* imm12 = check_signed "physld" 12 offset in
    Ok (i_type ~imm12 ~rs1 ~funct3:0 ~rd ~opcode:opcode_custom1)
  | Physst { rs2; rs1; offset } ->
    let* rs2 = check_reg "physst" rs2 in
    let* rs1 = check_reg "physst" rs1 in
    let* imm12 = check_signed "physst" 12 offset in
    Ok (s_type ~imm12 ~rs2 ~rs1 ~funct3:1 ~opcode:opcode_custom1)
  | Tlbw { rs1; rs2 } ->
    let* rs1 = check_reg "tlbw" rs1 in
    let* rs2 = check_reg "tlbw" rs2 in
    Ok (r_type ~funct7:0 ~rs2 ~rs1 ~funct3:2 ~rd:0 ~opcode:opcode_custom1)
  | Tlbflush { rs1 } ->
    let* rs1 = check_reg "tlbflush" rs1 in
    Ok (r_type ~funct7:1 ~rs2:0 ~rs1 ~funct3:2 ~rd:0 ~opcode:opcode_custom1)
  | Tlbprobe { rd; rs1 } ->
    let* rd = check_reg "tlbprobe" rd in
    let* rs1 = check_reg "tlbprobe" rs1 in
    Ok (r_type ~funct7:2 ~rs2:0 ~rs1 ~funct3:2 ~rd ~opcode:opcode_custom1)
  | Gprr { rd; rs1 } ->
    let* rd = check_reg "gprr" rd in
    let* rs1 = check_reg "gprr" rs1 in
    Ok (r_type ~funct7:3 ~rs2:0 ~rs1 ~funct3:2 ~rd ~opcode:opcode_custom1)
  | Gprw { rs1; rs2 } ->
    let* rs1 = check_reg "gprw" rs1 in
    let* rs2 = check_reg "gprw" rs2 in
    Ok (r_type ~funct7:4 ~rs2 ~rs1 ~funct3:2 ~rd:0 ~opcode:opcode_custom1)
  | Iceptset { rs1; rs2 } ->
    let* rs1 = check_reg "iceptset" rs1 in
    let* rs2 = check_reg "iceptset" rs2 in
    Ok (r_type ~funct7:5 ~rs2 ~rs1 ~funct3:2 ~rd:0 ~opcode:opcode_custom1)
  | Iceptclr { rs1 } ->
    let* rs1 = check_reg "iceptclr" rs1 in
    Ok (r_type ~funct7:6 ~rs2:0 ~rs1 ~funct3:2 ~rd:0 ~opcode:opcode_custom1)
  | Mcsrr { rd; csr } ->
    let* rd = check_reg "mcsrr" rd in
    let* imm12 = check_unsigned "mcsrr" 12 csr in
    Ok (i_type ~imm12 ~rs1:0 ~funct3:3 ~rd ~opcode:opcode_custom1)
  | Mcsrw { csr; rs1 } ->
    let* rs1 = check_reg "mcsrw" rs1 in
    let* imm12 = check_unsigned "mcsrw" 12 csr in
    Ok (i_type ~imm12 ~rs1 ~funct3:4 ~rd:0 ~opcode:opcode_custom1)

let encode_metal m =
  let open Instr in
  match m with
  | Menter { entry } ->
    let* imm12 = check_unsigned "menter" 6 entry in
    Ok (i_type ~imm12 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:opcode_custom0)
  | Mexit -> Ok (i_type ~imm12:0 ~rs1:0 ~funct3:1 ~rd:0 ~opcode:opcode_custom0)
  | Rmr { rd; mr } ->
    let* rd = check_reg "rmr" rd in
    let* imm12 = check_unsigned "rmr" 5 mr in
    Ok (i_type ~imm12 ~rs1:0 ~funct3:2 ~rd ~opcode:opcode_custom0)
  | Wmr { mr; rs1 } ->
    let* rs1 = check_reg "wmr" rs1 in
    let* imm12 = check_unsigned "wmr" 5 mr in
    Ok (i_type ~imm12 ~rs1 ~funct3:3 ~rd:0 ~opcode:opcode_custom0)
  | Mld { rd; rs1; offset } ->
    let* rd = check_reg "mld" rd in
    let* rs1 = check_reg "mld" rs1 in
    let* imm12 = check_signed "mld" 12 offset in
    Ok (i_type ~imm12 ~rs1 ~funct3:4 ~rd ~opcode:opcode_custom0)
  | Mst { rs2; rs1; offset } ->
    let* rs2 = check_reg "mst" rs2 in
    let* rs1 = check_reg "mst" rs1 in
    let* imm12 = check_signed "mst" 12 offset in
    Ok (s_type ~imm12 ~rs2 ~rs1 ~funct3:5 ~opcode:opcode_custom0)
  | Feature f -> encode_feature f

let encode i =
  let open Instr in
  match i with
  | Lui { rd; imm } ->
    let* rd = check_reg "lui" rd in
    let* imm20 = check_unsigned "lui" 20 imm in
    Ok (u_type ~imm20 ~rd ~opcode:opcode_lui)
  | Auipc { rd; imm } ->
    let* rd = check_reg "auipc" rd in
    let* imm20 = check_unsigned "auipc" 20 imm in
    Ok (u_type ~imm20 ~rd ~opcode:opcode_auipc)
  | Jal { rd; offset } ->
    let* rd = check_reg "jal" rd in
    let* _ = check_even "jal" offset in
    let* imm21 = check_signed "jal" 21 offset in
    Ok (j_type ~imm21 ~rd ~opcode:opcode_jal)
  | Jalr { rd; rs1; offset } ->
    let* rd = check_reg "jalr" rd in
    let* rs1 = check_reg "jalr" rs1 in
    let* imm12 = check_signed "jalr" 12 offset in
    Ok (i_type ~imm12 ~rs1 ~funct3:0 ~rd ~opcode:opcode_jalr)
  | Branch { cond; rs1; rs2; offset } ->
    let* rs1 = check_reg "branch" rs1 in
    let* rs2 = check_reg "branch" rs2 in
    let* _ = check_even "branch" offset in
    let* imm13 = check_signed "branch" 13 offset in
    Ok
      (b_type ~imm13 ~rs2 ~rs1 ~funct3:(branch_funct3 cond)
         ~opcode:opcode_branch)
  | Load { width; unsigned; rd; rs1; offset } ->
    let* rd = check_reg "load" rd in
    let* rs1 = check_reg "load" rs1 in
    let* funct3 = load_funct3 width unsigned in
    let* imm12 = check_signed "load" 12 offset in
    Ok (i_type ~imm12 ~rs1 ~funct3 ~rd ~opcode:opcode_load)
  | Store { width; rs2; rs1; offset } ->
    let* rs2 = check_reg "store" rs2 in
    let* rs1 = check_reg "store" rs1 in
    let* imm12 = check_signed "store" 12 offset in
    Ok (s_type ~imm12 ~rs2 ~rs1 ~funct3:(store_funct3 width)
          ~opcode:opcode_store)
  | Op_imm { op; rd; rs1; imm } ->
    let* rd = check_reg "op-imm" rd in
    let* rs1 = check_reg "op-imm" rs1 in
    begin match op with
    | Sub -> Error "subi is not encodable; use addi with a negated immediate"
    | Sll | Srl | Sra ->
      let* shamt = check_unsigned (Instr.alu_op_name op ^ "i") 5 imm in
      let imm12 = (alu_funct7 op lsl 5) lor shamt in
      Ok (i_type ~imm12 ~rs1 ~funct3:(alu_funct3 op) ~rd ~opcode:opcode_op_imm)
    | Add | Slt | Sltu | Xor | Or | And ->
      let* imm12 = check_signed (Instr.alu_op_name op ^ "i") 12 imm in
      Ok (i_type ~imm12 ~rs1 ~funct3:(alu_funct3 op) ~rd ~opcode:opcode_op_imm)
    end
  | Op { op; rd; rs1; rs2 } ->
    let* rd = check_reg "op" rd in
    let* rs1 = check_reg "op" rs1 in
    let* rs2 = check_reg "op" rs2 in
    Ok
      (r_type ~funct7:(alu_funct7 op) ~rs2 ~rs1 ~funct3:(alu_funct3 op) ~rd
         ~opcode:opcode_op)
  | Ecall -> Ok (i_type ~imm12:0 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:opcode_system)
  | Ebreak -> Ok (i_type ~imm12:1 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:opcode_system)
  | Fence -> Ok (i_type ~imm12:0 ~rs1:0 ~funct3:0 ~rd:0 ~opcode:opcode_misc_mem)
  | Metal m -> encode_metal m

let encode_exn i =
  match encode i with
  | Ok w -> w
  | Error msg ->
    invalid_arg (Printf.sprintf "Encode.encode_exn: %s (%s)" msg
                   (Instr.to_string i))
