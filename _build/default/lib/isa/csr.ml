type t = int

let paging = 0
let asid = 1
let pt_root = 2
let pkey_perms = 3
let int_enable = 4
let int_pending = 5
let cycle = 6
let icept_enable = 7
let timer_cmp = 8
let hw_walker = 9
let fault_vaddr = 10
let fault_cause = 11
let instret = 12

let exc_handler c = 16 + Cause.code c

let int_handler irq =
  assert (irq >= 0 && irq < 16);
  32 + irq

let icept_handler cls =
  assert (cls >= 0 && cls < 16);
  48 + cls

let count = 64

let is_valid id = id >= 0 && id < count

let is_read_only id =
  id = cycle || id = fault_vaddr || id = fault_cause || id = instret

let base_names =
  [ (paging, "paging"); (asid, "asid"); (pt_root, "pt_root");
    (pkey_perms, "pkey_perms"); (int_enable, "int_enable");
    (int_pending, "int_pending"); (cycle, "cycle");
    (icept_enable, "icept_enable"); (timer_cmp, "timer_cmp");
    (hw_walker, "hw_walker"); (fault_vaddr, "fault_vaddr");
    (fault_cause, "fault_cause"); (instret, "instret") ]

let name id =
  match List.assoc_opt id base_names with
  | Some n -> n
  | None ->
    if id >= 16 && id < 32 then
      begin match Cause.of_code (id - 16) with
      | Some c -> Printf.sprintf "exc_handler[%s]" (Cause.to_string c)
      | None -> Printf.sprintf "exc_handler[%d]" (id - 16)
      end
    else if id >= 32 && id < 48 then
      Printf.sprintf "int_handler[%d]" (id - 32)
    else if id >= 48 && id < 64 then
      Printf.sprintf "icept_handler[%d]" (id - 48)
    else Printf.sprintf "csr%d" id

let of_name s =
  let rev = List.map (fun (id, n) -> (n, id)) base_names in
  match List.assoc_opt s rev with
  | Some id -> Some id
  | None ->
    let indexed prefix base limit =
      let plen = String.length prefix in
      if String.length s > plen + 1
         && String.sub s 0 plen = prefix
         && s.[plen] = '['
         && s.[String.length s - 1] = ']'
      then
        let inner = String.sub s (plen + 1) (String.length s - plen - 2) in
        match int_of_string_opt inner with
        | Some n when n >= 0 && n < limit -> Some (base + n)
        | Some _ | None ->
          (* Allow symbolic exception names: exc_handler[ecall]. *)
          if prefix = "exc_handler" then
            List.find_map
              (fun c ->
                 if Cause.to_string c = inner then Some (base + Cause.code c)
                 else None)
              Cause.all
          else None
      else None
    in
    match indexed "exc_handler" 16 16 with
    | Some id -> Some id
    | None ->
      match indexed "int_handler" 32 16 with
      | Some id -> Some id
      | None -> indexed "icept_handler" 48 16
