(** Instruction-interception classes.

    Metal "allows intercepting any instruction with an mroutine"
    (Section 2.3).  Instructions are grouped into classes; an mroutine
    is attached to a class with [iceptset].  Interception only applies
    in normal mode, so intercept mroutines can freely reuse the
    intercepted instructions (cf. nested Metal, Section 3.5). *)

type t =
  | Load_class
  | Store_class
  | Jal_class
  | Jalr_class
  | Branch_class
  | System_class  (** ecall / ebreak *)

val code : t -> int
(** Class code in [0, 15], used with [iceptset]/[iceptclr] and in the
    [m30] intercept cause ({!Cause.intercept_code}). *)

val of_code : int -> t option

val all : t list

val to_string : t -> string

val classify : Instr.t -> t option
(** [classify i] is the interception class of [i], or [None] for
    instructions that cannot be intercepted (ALU ops, [lui], [auipc],
    [fence] and Metal instructions). *)
