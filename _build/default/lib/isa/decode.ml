let ( let* ) = Result.bind

let bits = Word.bits

let opcode w = bits ~hi:6 ~lo:0 w
let rd w = bits ~hi:11 ~lo:7 w
let funct3 w = bits ~hi:14 ~lo:12 w
let rs1 w = bits ~hi:19 ~lo:15 w
let rs2 w = bits ~hi:24 ~lo:20 w
let funct7 w = bits ~hi:31 ~lo:25 w

let i_imm w = Word.sign_extend ~width:12 (bits ~hi:31 ~lo:20 w)

let i_uimm w = bits ~hi:31 ~lo:20 w

let s_imm w =
  Word.sign_extend ~width:12 ((funct7 w lsl 5) lor rd w)

let b_imm w =
  let v =
    (Word.bit 31 w lsl 12)
    lor (Word.bit 7 w lsl 11)
    lor (bits ~hi:30 ~lo:25 w lsl 5)
    lor (bits ~hi:11 ~lo:8 w lsl 1)
  in
  Word.sign_extend ~width:13 v

let u_imm w = bits ~hi:31 ~lo:12 w

let j_imm w =
  let v =
    (Word.bit 31 w lsl 20)
    lor (bits ~hi:19 ~lo:12 w lsl 12)
    lor (Word.bit 20 w lsl 11)
    lor (bits ~hi:30 ~lo:21 w lsl 1)
  in
  Word.sign_extend ~width:21 v

let alu_op_of ~funct3:f3 ~alt =
  match (f3, alt) with
  | 0, false -> Ok Instr.Add
  | 0, true -> Ok Instr.Sub
  | 1, false -> Ok Instr.Sll
  | 2, false -> Ok Instr.Slt
  | 3, false -> Ok Instr.Sltu
  | 4, false -> Ok Instr.Xor
  | 5, false -> Ok Instr.Srl
  | 5, true -> Ok Instr.Sra
  | 6, false -> Ok Instr.Or
  | 7, false -> Ok Instr.And
  | _ -> Error (Printf.sprintf "invalid ALU funct3/funct7: %d/alt=%b" f3 alt)

let decode_branch w =
  let cond =
    match funct3 w with
    | 0 -> Ok Instr.Beq
    | 1 -> Ok Instr.Bne
    | 4 -> Ok Instr.Blt
    | 5 -> Ok Instr.Bge
    | 6 -> Ok Instr.Bltu
    | 7 -> Ok Instr.Bgeu
    | f3 -> Error (Printf.sprintf "invalid branch funct3 %d" f3)
  in
  let* cond = cond in
  Ok (Instr.Branch { cond; rs1 = rs1 w; rs2 = rs2 w; offset = b_imm w })

let decode_load w =
  let parts =
    match funct3 w with
    | 0 -> Ok (Instr.Byte, false)
    | 1 -> Ok (Instr.Half, false)
    | 2 -> Ok (Instr.Word, false)
    | 4 -> Ok (Instr.Byte, true)
    | 5 -> Ok (Instr.Half, true)
    | f3 -> Error (Printf.sprintf "invalid load funct3 %d" f3)
  in
  let* width, unsigned = parts in
  Ok (Instr.Load { width; unsigned; rd = rd w; rs1 = rs1 w; offset = i_imm w })

let decode_store w =
  let width =
    match funct3 w with
    | 0 -> Ok Instr.Byte
    | 1 -> Ok Instr.Half
    | 2 -> Ok Instr.Word
    | f3 -> Error (Printf.sprintf "invalid store funct3 %d" f3)
  in
  let* width = width in
  Ok (Instr.Store { width; rs2 = rs2 w; rs1 = rs1 w; offset = s_imm w })

let decode_op_imm w =
  let f3 = funct3 w in
  match f3 with
  | 1 | 5 ->
    let alt = funct7 w = 0x20 in
    if funct7 w <> 0 && funct7 w <> 0x20 then
      Error (Printf.sprintf "invalid shift funct7 0x%x" (funct7 w))
    else
      let* op = alu_op_of ~funct3:f3 ~alt in
      Ok (Instr.Op_imm { op; rd = rd w; rs1 = rs1 w; imm = rs2 w })
  | _ ->
    let* op = alu_op_of ~funct3:f3 ~alt:false in
    Ok (Instr.Op_imm { op; rd = rd w; rs1 = rs1 w; imm = i_imm w })

let decode_op w =
  let alt =
    match funct7 w with
    | 0 -> Ok false
    | 0x20 -> Ok true
    | f7 -> Error (Printf.sprintf "invalid OP funct7 0x%x" f7)
  in
  let* alt = alt in
  let* op = alu_op_of ~funct3:(funct3 w) ~alt in
  begin match (op, alt) with
  | (Instr.Sub | Instr.Sra), _ | _, false ->
    Ok (Instr.Op { op; rd = rd w; rs1 = rs1 w; rs2 = rs2 w })
  | _, true -> Error "invalid OP funct7 for this funct3"
  end

let decode_system w =
  if funct3 w <> 0 || rd w <> 0 || rs1 w <> 0 then
    Error "unsupported SYSTEM instruction"
  else
    match i_uimm w with
    | 0 -> Ok Instr.Ecall
    | 1 -> Ok Instr.Ebreak
    | imm -> Error (Printf.sprintf "unsupported SYSTEM imm %d" imm)

let decode_custom0 w =
  match funct3 w with
  | 0 ->
    let entry = i_uimm w in
    if entry < 64 then Ok (Instr.Metal (Instr.Menter { entry }))
    else Error (Printf.sprintf "menter: entry %d out of range" entry)
  | 1 -> Ok (Instr.Metal Instr.Mexit)
  | 2 ->
    let mr = i_uimm w in
    if mr < Reg.mreg_count then Ok (Instr.Metal (Instr.Rmr { rd = rd w; mr }))
    else Error (Printf.sprintf "rmr: metal register %d out of range" mr)
  | 3 ->
    let mr = i_uimm w in
    if mr < Reg.mreg_count then Ok (Instr.Metal (Instr.Wmr { mr; rs1 = rs1 w }))
    else Error (Printf.sprintf "wmr: metal register %d out of range" mr)
  | 4 ->
    Ok (Instr.Metal (Instr.Mld { rd = rd w; rs1 = rs1 w; offset = i_imm w }))
  | 5 ->
    Ok (Instr.Metal (Instr.Mst { rs2 = rs2 w; rs1 = rs1 w; offset = s_imm w }))
  | f3 -> Error (Printf.sprintf "invalid custom-0 funct3 %d" f3)

let decode_custom1 w =
  let feature f = Ok (Instr.Metal (Instr.Feature f)) in
  match funct3 w with
  | 0 -> feature (Instr.Physld { rd = rd w; rs1 = rs1 w; offset = i_imm w })
  | 1 -> feature (Instr.Physst { rs2 = rs2 w; rs1 = rs1 w; offset = s_imm w })
  | 2 ->
    begin match funct7 w with
    | 0 -> feature (Instr.Tlbw { rs1 = rs1 w; rs2 = rs2 w })
    | 1 -> feature (Instr.Tlbflush { rs1 = rs1 w })
    | 2 -> feature (Instr.Tlbprobe { rd = rd w; rs1 = rs1 w })
    | 3 -> feature (Instr.Gprr { rd = rd w; rs1 = rs1 w })
    | 4 -> feature (Instr.Gprw { rs1 = rs1 w; rs2 = rs2 w })
    | 5 -> feature (Instr.Iceptset { rs1 = rs1 w; rs2 = rs2 w })
    | 6 -> feature (Instr.Iceptclr { rs1 = rs1 w })
    | f7 -> Error (Printf.sprintf "invalid custom-1 funct7 %d" f7)
    end
  | 3 ->
    let csr = i_uimm w in
    if Csr.is_valid csr then feature (Instr.Mcsrr { rd = rd w; csr })
    else Error (Printf.sprintf "mcsrr: invalid csr %d" csr)
  | 4 ->
    let csr = i_uimm w in
    if Csr.is_valid csr then feature (Instr.Mcsrw { csr; rs1 = rs1 w })
    else Error (Printf.sprintf "mcsrw: invalid csr %d" csr)
  | f3 -> Error (Printf.sprintf "invalid custom-1 funct3 %d" f3)

let decode w =
  match opcode w with
  | 0x37 -> Ok (Instr.Lui { rd = rd w; imm = u_imm w })
  | 0x17 -> Ok (Instr.Auipc { rd = rd w; imm = u_imm w })
  | 0x6F -> Ok (Instr.Jal { rd = rd w; offset = j_imm w })
  | 0x67 ->
    if funct3 w = 0 then
      Ok (Instr.Jalr { rd = rd w; rs1 = rs1 w; offset = i_imm w })
    else Error (Printf.sprintf "invalid jalr funct3 %d" (funct3 w))
  | 0x63 -> decode_branch w
  | 0x03 -> decode_load w
  | 0x23 -> decode_store w
  | 0x13 -> decode_op_imm w
  | 0x33 -> decode_op w
  | 0x73 -> decode_system w
  | 0x0F -> Ok Instr.Fence
  | 0x0B -> decode_custom0 w
  | 0x2B -> decode_custom1 w
  | op -> Error (Printf.sprintf "unknown opcode 0x%02x" op)

let decode_exn w =
  match decode w with
  | Ok i -> i
  | Error msg ->
    invalid_arg
      (Printf.sprintf "Decode.decode_exn: %s (%s)" msg (Word.to_hex w))
