(** Binary instruction encoder.

    Produces standard RV32I encodings; the Metal extension uses the
    custom-0 (0x0B) and custom-1 (0x2B) opcode spaces.  Encoding fails
    with a descriptive message when an operand does not fit its field
    (e.g. a branch offset out of range), which the assembler surfaces
    as a source error. *)

val encode : Instr.t -> (Word.t, string) result

val encode_exn : Instr.t -> Word.t
(** @raise Invalid_argument when {!encode} would return [Error]. *)

val opcode_custom0 : int
(** The Metal Table-1 opcode space (0x0B). *)

val opcode_custom1 : int
(** The Metal architectural-feature opcode space (0x2B). *)
