(** 32-bit machine words.

    Words are represented as OCaml [int] values in the range
    [0, 2{^32}).  All operations keep results inside that range.  This
    representation is exact on 64-bit hosts and avoids boxing. *)

type t = int
(** A 32-bit word, always in [0, 0xFFFF_FFFF]. *)

val mask : int
(** [mask] is [0xFFFF_FFFF]. *)

val of_int : int -> t
(** [of_int v] truncates [v] to its low 32 bits. *)

val to_signed : t -> int
(** [to_signed w] interprets [w] as a two's-complement 32-bit value,
    returning an OCaml int in [-2{^31}, 2{^31}). *)

val of_signed : int -> t
(** [of_signed v] is [of_int v]; named for call-site clarity when [v]
    may be negative. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
(** [shift_left w n] shifts by [n land 31]. *)

val shift_right_logical : t -> int -> t
(** [shift_right_logical w n] shifts by [n land 31], filling with zeros. *)

val shift_right_arith : t -> int -> t
(** [shift_right_arith w n] shifts by [n land 31], replicating the sign
    bit. *)

val lt_signed : t -> t -> bool
val lt_unsigned : t -> t -> bool
val ge_signed : t -> t -> bool
val ge_unsigned : t -> t -> bool

val bits : hi:int -> lo:int -> t -> int
(** [bits ~hi ~lo w] extracts bits [hi..lo] inclusive, right-aligned.
    Requires [31 >= hi >= lo >= 0]. *)

val bit : int -> t -> int
(** [bit i w] is bit [i] of [w] (0 or 1). *)

val sign_extend : width:int -> int -> int
(** [sign_extend ~width v] sign-extends the low [width] bits of [v] to
    an OCaml int.  Requires [1 <= width <= 32]. *)

val zero_extend : width:int -> int -> int
(** [zero_extend ~width v] keeps only the low [width] bits of [v]. *)

val fits_signed : width:int -> int -> bool
(** [fits_signed ~width v] is true when [v] is representable as a
    signed [width]-bit value. *)

val fits_unsigned : width:int -> int -> bool
(** [fits_unsigned ~width v] is true when [v] is representable as an
    unsigned [width]-bit value. *)

val to_hex : t -> string
(** [to_hex w] renders [w] as ["0x%08x"]. *)

val pp : Format.formatter -> t -> unit
(** [pp] prints in hexadecimal. *)
