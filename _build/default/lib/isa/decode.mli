(** Binary instruction decoder.

    Inverse of {!Encode.encode}: decodes a 32-bit instruction word into
    the structured instruction, or reports why the word is not a valid
    encoding (the pipeline turns that into an illegal-instruction
    exception). *)

val decode : Word.t -> (Instr.t, string) result

val decode_exn : Word.t -> Instr.t
(** @raise Invalid_argument on undecodable words. *)
