type t = int

let mask = 0xFFFF_FFFF

let of_int v = v land mask

let to_signed w =
  if w land 0x8000_0000 <> 0 then w - 0x1_0000_0000 else w

let of_signed = of_int

let add a b = (a + b) land mask
let sub a b = (a - b) land mask
let mul a b = (a * b) land mask

let logand a b = a land b
let logor a b = a lor b
let logxor a b = a lxor b
let lognot a = a lxor mask

let shift_left w n = (w lsl (n land 31)) land mask

let shift_right_logical w n = w lsr (n land 31)

let shift_right_arith w n =
  let n = n land 31 in
  (to_signed w asr n) land mask

let lt_signed a b = to_signed a < to_signed b
let lt_unsigned a b = a < b
let ge_signed a b = to_signed a >= to_signed b
let ge_unsigned a b = a >= b

let bits ~hi ~lo w =
  assert (hi >= lo && hi <= 31 && lo >= 0);
  (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)

let bit i w = (w lsr i) land 1

let sign_extend ~width v =
  assert (width >= 1 && width <= 32);
  let v = v land ((1 lsl width) - 1) in
  if v land (1 lsl (width - 1)) <> 0 then v - (1 lsl width) else v

let zero_extend ~width v = v land ((1 lsl width) - 1)

let fits_signed ~width v =
  let half = 1 lsl (width - 1) in
  v >= -half && v < half

let fits_unsigned ~width v = v >= 0 && v < 1 lsl width

let to_hex w = Printf.sprintf "0x%08x" w

let pp fmt w = Format.fprintf fmt "%s" (to_hex w)
