(** General-purpose and Metal register names.

    GPRs follow the RISC-V integer register file: [x0]..[x31] with the
    standard ABI aliases ([zero], [ra], [sp], ...).  [x0] is hardwired
    to zero.  Metal registers [m0]..[m31] form a separate file only
    accessible in Metal mode via [rmr]/[wmr]. *)

type t = int
(** A GPR index in [0, 31]. *)

val zero : t
val ra : t
val sp : t
val gp : t
val tp : t
val t0 : t
val t1 : t
val t2 : t
val fp : t
val s0 : t
val s1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val a4 : t
val a5 : t
val a6 : t
val a7 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val s8 : t
val s9 : t
val s10 : t
val s11 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t

val is_valid : t -> bool
(** [is_valid r] is true when [0 <= r <= 31]. *)

val to_string : t -> string
(** [to_string r] is the ABI name ([a0], [sp], ...). *)

val to_xname : t -> string
(** [to_xname r] is the numeric name ([x10], ...). *)

val of_string : string -> t option
(** [of_string s] parses either an ABI name or a numeric [xN] name. *)

type mreg = int
(** A Metal register index in [0, 31]. *)

val mreg_count : int
(** Number of Metal registers (32). *)

val mreg_to_string : mreg -> string
(** [mreg_to_string m] is ["m<N>"]. *)

val mreg_of_string : string -> mreg option
(** [mreg_of_string s] parses ["m<N>"] for N in [0, 31]. *)

(** Conventional Metal register roles used by the machine and the
    standard mroutines (Section 2 and 3 of the paper). *)
module Mconv : sig
  val return_address : mreg
  (** [m31]: resume address consumed by [mexit]; written by the
      hardware on [menter] (pc+4), exception entry (faulting pc) and
      interrupt entry (next pc). *)

  val event_cause : mreg
  (** [m30]: event cause code, written by hardware on exception,
      interrupt and interception entry. *)

  val event_value : mreg
  (** [m29]: event value: faulting virtual address (page faults),
      instruction word (illegal instruction, interception). *)

  val event_addr : mreg
  (** [m28]: effective address of an intercepted load/store. *)

  val event_store_value : mreg
  (** [m27]: store data of an intercepted store. *)

  val event_rd : mreg
  (** [m26]: destination GPR index of an intercepted load. *)

  val privilege : mreg
  (** [m0]: current privilege level, by convention of the privilege
      mroutines (Figure 2). *)
end
