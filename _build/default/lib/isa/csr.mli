(** Machine control registers.

    The paper leaves the mechanism for exposing architectural features
    to the processor; our implementation exposes them as control
    registers readable and writable only in Metal mode via
    [mcsrr]/[mcsrw] (Section 2.3).  Identifiers are stable small
    integers used in the instruction immediate field. *)

type t = int
(** A control register identifier in [0, 4095]. *)

val paging : t
(** 0: paging enable (0 = identity physical addressing, 1 = TLB). *)

val asid : t
(** 1: current address-space identifier (8 bits). *)

val pt_root : t
(** 2: physical address of the page-table root used by the optional
    hardware walker. *)

val pkey_perms : t
(** 3: page-key permission register; 2 bits per key for 16 keys.
    Bit [2k] set disables reads under key [k]; bit [2k+1] set disables
    writes. *)

val int_enable : t
(** 4: interrupt-enable bitmask, one bit per interrupt line. *)

val int_pending : t
(** 5: pending-interrupt bitmask.  Reads return the pending set;
    writes clear the bits that are set in the written value. *)

val cycle : t
(** 6: read-only cycle counter. *)

val icept_enable : t
(** 7: global instruction-interception enable bit. *)

val timer_cmp : t
(** 8: timer compare value; the timer device raises its interrupt when
    the cycle counter reaches it (0 disables). *)

val hw_walker : t
(** 9: hardware page-table walker enable (the baseline against Metal
    page-fault mroutines). *)

val fault_vaddr : t
(** 10: read-only; virtual address of the last translation fault. *)

val fault_cause : t
(** 11: read-only; cause code of the last exception. *)

val instret : t
(** 12: read-only retired-instruction counter. *)

val exc_handler : Cause.t -> t
(** [exc_handler c] (16 + code c): mroutine entry number + 1 that
    handles exception cause [c]; 0 means unhandled (machine fault). *)

val int_handler : int -> t
(** [int_handler irq] (32 + irq): mroutine entry number + 1 delivering
    interrupt line [irq]; 0 means masked at delivery. *)

val icept_handler : int -> t
(** [icept_handler cls] (48 + cls): mroutine entry number + 1 that
    intercepts instruction class [cls]; 0 means not intercepted.
    Normally configured via [iceptset]/[iceptclr]. *)

val count : int
(** Size of the control-register file. *)

val is_valid : t -> bool

val is_read_only : t -> bool
(** True for counters and fault-status registers the hardware owns. *)

val name : t -> string
(** [name id] is a symbolic name for diagnostics, e.g. ["paging"],
    ["exc_handler[ecall]"]. *)

val of_name : string -> t option
(** Inverse of {!name} for the assembler's named CSR operands. *)
