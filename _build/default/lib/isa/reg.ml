type t = int

let zero = 0
let ra = 1
let sp = 2
let gp = 3
let tp = 4
let t0 = 5
let t1 = 6
let t2 = 7
let fp = 8
let s0 = 8
let s1 = 9
let a0 = 10
let a1 = 11
let a2 = 12
let a3 = 13
let a4 = 14
let a5 = 15
let a6 = 16
let a7 = 17
let s2 = 18
let s3 = 19
let s4 = 20
let s5 = 21
let s6 = 22
let s7 = 23
let s8 = 24
let s9 = 25
let s10 = 26
let s11 = 27
let t3 = 28
let t4 = 29
let t5 = 30
let t6 = 31

let is_valid r = r >= 0 && r <= 31

let abi_names =
  [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2";
     "s0"; "s1"; "a0"; "a1"; "a2"; "a3"; "a4"; "a5";
     "a6"; "a7"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7";
     "s8"; "s9"; "s10"; "s11"; "t3"; "t4"; "t5"; "t6" |]

let to_string r =
  assert (is_valid r);
  abi_names.(r)

let to_xname r =
  assert (is_valid r);
  "x" ^ string_of_int r

let parse_indexed ~prefix ~limit s =
  let plen = String.length prefix in
  let slen = String.length s in
  if slen <= plen || not (String.sub s 0 plen = prefix) then None
  else
    match int_of_string_opt (String.sub s plen (slen - plen)) with
    | Some n when n >= 0 && n < limit ->
      (* Reject forms like "x007" or "x+1" that int_of_string accepts. *)
      if String.sub s plen (slen - plen) = string_of_int n then Some n
      else None
    | Some _ | None -> None

let of_string s =
  match parse_indexed ~prefix:"x" ~limit:32 s with
  | Some n -> Some n
  | None ->
    if s = "fp" then Some fp
    else
      let rec find i =
        if i >= Array.length abi_names then None
        else if abi_names.(i) = s then Some i
        else find (i + 1)
      in
      find 0

type mreg = int

let mreg_count = 32

let mreg_to_string m =
  assert (m >= 0 && m < mreg_count);
  "m" ^ string_of_int m

let mreg_of_string s = parse_indexed ~prefix:"m" ~limit:mreg_count s

module Mconv = struct
  let return_address = 31
  let event_cause = 30
  let event_value = 29
  let event_addr = 28
  let event_store_value = 27
  let event_rd = 26
  let privilege = 0
end
