lib/isa/encode.ml: Instr Printf Reg Result Word
