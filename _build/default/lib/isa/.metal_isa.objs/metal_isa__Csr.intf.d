lib/isa/csr.mli: Cause
