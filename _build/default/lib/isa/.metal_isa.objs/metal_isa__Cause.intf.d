lib/isa/cause.mli:
