lib/isa/decode.mli: Instr Word
