lib/isa/encode.mli: Instr Word
