lib/isa/icept.mli: Instr
