lib/isa/reg.mli:
