lib/isa/cause.ml: List
