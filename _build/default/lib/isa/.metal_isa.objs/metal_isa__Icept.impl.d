lib/isa/icept.ml: Instr List
