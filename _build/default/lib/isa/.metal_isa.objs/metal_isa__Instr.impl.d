lib/isa/instr.ml: Csr Format List Printf Reg Word
