lib/isa/csr.ml: Cause List Printf String
