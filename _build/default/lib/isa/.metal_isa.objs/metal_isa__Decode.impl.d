lib/isa/decode.ml: Csr Instr Printf Reg Result Word
