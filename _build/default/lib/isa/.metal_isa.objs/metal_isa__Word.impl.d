lib/isa/word.ml: Format Printf
