type t =
  | Load_class
  | Store_class
  | Jal_class
  | Jalr_class
  | Branch_class
  | System_class

let all =
  [ Load_class; Store_class; Jal_class; Jalr_class; Branch_class;
    System_class ]

let code = function
  | Load_class -> 0
  | Store_class -> 1
  | Jal_class -> 2
  | Jalr_class -> 3
  | Branch_class -> 4
  | System_class -> 5

let of_code n = List.find_opt (fun c -> code c = n) all

let to_string = function
  | Load_class -> "load"
  | Store_class -> "store"
  | Jal_class -> "jal"
  | Jalr_class -> "jalr"
  | Branch_class -> "branch"
  | System_class -> "system"

let classify = function
  | Instr.Load _ -> Some Load_class
  | Instr.Store _ -> Some Store_class
  | Instr.Jal _ -> Some Jal_class
  | Instr.Jalr _ -> Some Jalr_class
  | Instr.Branch _ -> Some Branch_class
  | Instr.Ecall | Instr.Ebreak -> Some System_class
  | Instr.Lui _ | Instr.Auipc _ | Instr.Op_imm _ | Instr.Op _
  | Instr.Fence | Instr.Metal _ -> None
