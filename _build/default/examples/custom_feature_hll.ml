(* Writing processor features in a high-level language.

   The paper's conclusion: "With compiler support, it can be practical
   to write hardware features in high level languages such as C."
   Mgen is that compiler support for this repository: mroutines are
   written as structured OCaml-embedded programs and compiled to
   mcode.

   Here we add a saturating-add instruction and a bounds-checked
   array-access instruction to the processor, without writing a line
   of assembly. *)

open Metal_mgen

(* a0 <- saturating_add(a0, a1): clamps to INT32_MAX/INT32_MIN. *)
let saturating_add =
  Mgen.(
    routine ~name:"sat_add" ~entry:0
      [ let_ "s" (add (param 0) (param 1));
        (* overflow iff the operands share a sign that differs from the
           result's sign *)
        let_ "ovf"
          (shr
             (and_ (xor (var "s") (param 0))
                (xor (var "s") (param 1)))
             (int 31));
        if_ (ne (var "ovf") (int 0))
          [ if_ (ne (shr (param 0) (int 31)) (int 0))
              [ set_param 0 (int 0x80000000) ]  (* negative saturation *)
              [ set_param 0 (int 0x7FFFFFFF) ] ]
          [ set_param 0 (var "s") ] ])

(* a0 <- array[a1] with bounds check: a0 = base, a1 = index, a2 = len;
   returns the element, or -1 with a1 = 1 on a bounds violation. *)
let checked_index =
  Mgen.(
    routine ~name:"checked_index" ~entry:1
      [ if_ (geu (param 1) (param 2))
          [ set_param 0 (int (-1)); set_param 1 (int 1) ]
          [ set_param 0 (load (add (param 0) (shl (param 1) (int 2))));
            set_param 1 (int 0) ] ])

let () =
  print_endline "=== Processor features written in a high-level language ===\n";
  print_endline "Mgen source compiles to the following mcode:\n";
  (match Mgen.compile [ saturating_add; checked_index ] with
   | Ok src -> print_string src
   | Error e -> failwith e);
  let sys = Metal_core.System.create () in
  (match Mgen.install sys.Metal_core.System.machine
           [ saturating_add; checked_index ] with
   | Ok () -> ()
   | Error e -> failwith e);
  (* seed an array for the checked-index instruction *)
  List.iteri
    (fun i v -> Metal_cpu.Machine.write_word sys.Metal_core.System.machine
        (0x8000 + (4 * i)) v)
    [ 10; 20; 30; 40 ];
  (match
     Metal_core.System.run_program sys
       {|start:
    li a0, 0x7FFFFFF0
    li a1, 100
    menter 0              # saturating add: clamps at INT32_MAX
    mv s0, a0
    li a0, 0x8000
    li a1, 2
    li a2, 4
    menter 1              # checked index: in bounds
    mv s1, a0
    li a0, 0x8000
    li a1, 9
    li a2, 4
    menter 1              # checked index: out of bounds
    mv s2, a0
    mv s3, a1
    ebreak
|}
   with
   | Ok _ -> ()
   | Error e -> failwith e);
  let r n = Metal_core.System.reg sys n in
  Printf.printf "\nsat_add(0x7FFFFFF0, 100)   = 0x%08x (clamped)\n" (r "s0");
  Printf.printf "checked_index(arr, 2, 4)   = %d\n" (r "s1");
  Printf.printf "checked_index(arr, 9, 4)   = %d (error flag %d)\n"
    (Word.to_signed (r "s2"))
    (r "s3")
