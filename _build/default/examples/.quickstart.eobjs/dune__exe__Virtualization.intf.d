examples/virtualization.mli:
