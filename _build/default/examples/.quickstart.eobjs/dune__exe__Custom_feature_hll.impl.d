examples/custom_feature_hll.ml: List Metal_core Metal_cpu Metal_mgen Mgen Printf Word
