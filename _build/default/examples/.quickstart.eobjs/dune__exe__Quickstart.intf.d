examples/quickstart.mli:
