examples/multiprocess_os.ml: Kernel List Metal_cpu Metal_kernel Printf Process String
