examples/user_interrupts.mli:
