examples/user_interrupts.ml: Layout List Machine Metal_core Metal_cpu Metal_hw Metal_progs Option Printf Reg Stats Uintr
