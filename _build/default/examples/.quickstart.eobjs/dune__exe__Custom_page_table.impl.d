examples/custom_page_table.ml: Config Csr Frame_alloc Machine Metal_asm Metal_cpu Metal_hw Metal_kernel Metal_progs Page_table Pipeline Printf Stats
