examples/transactional_memory.mli:
