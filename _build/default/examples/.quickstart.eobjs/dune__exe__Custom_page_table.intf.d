examples/custom_page_table.mli:
