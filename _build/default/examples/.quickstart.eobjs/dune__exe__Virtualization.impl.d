examples/virtualization.ml: Csr Machine Metal_asm Metal_cpu Metal_kernel Metal_progs Pipeline Printf Reg Vmm Word
