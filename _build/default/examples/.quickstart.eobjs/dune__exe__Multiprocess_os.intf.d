examples/multiprocess_os.mli:
