examples/transactional_memory.ml: Layout List Machine Metal_asm Metal_cpu Metal_hw Metal_progs Pipeline Printf Reg Stats Stm
