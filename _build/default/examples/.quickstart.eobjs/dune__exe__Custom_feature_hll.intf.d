examples/custom_feature_hll.mli:
