examples/quickstart.ml: List Metal_core Metal_cpu Printf
