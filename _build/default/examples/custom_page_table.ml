(* Custom page tables (paper Section 3.2).

   An OS maps a working set and runs a pointer-chasing workload over
   it three ways:
   - TLB refills handled by the Metal page-fault mroutine walking an
     x86-style radix tree (the paper's design);
   - the same tree walked by the hardware walker (what vendors bake
     in);
   - the paper's motivation case: an OS-trap software walker, modelled
     by the PALcode configuration (mroutines in main memory,
     trap-style transitions).

   The interesting number is cycles per TLB miss. *)

open Metal_cpu
open Metal_kernel

let working_set_pages = 24
let accesses = 2000

(* Touch [accesses] words spread across the working set with a stride
   that misses the TLB frequently. *)
let workload =
  Printf.sprintf
    {|start:
    li s0, 0x400000       # working-set base (virtual)
    li s1, %d             # accesses
    li s2, 0              # offset
    li s3, 0x5000         # stride (pages + a bit)
    li s4, %d             # working-set size in bytes
    li s5, 0              # checksum
loop:
    add t0, s0, s2
    lw t1, 0(t0)
    add s5, s5, t1
    add s2, s2, s3
    bltu s2, s4, nowrap
    sub s2, s2, s4
nowrap:
    addi s1, s1, -1
    bnez s1, loop
    ebreak
|}
    accesses
    (working_set_pages * 4096)

let setup ?(config = Config.default) ~use_hw_walker () =
  let m = Machine.create ~config () in
  (match Metal_progs.Pagetable.install m
           { Metal_progs.Pagetable.os_fault_entry = 0 }
   with
   | Ok () -> ()
   | Error e -> failwith e);
  let alloc = Frame_alloc.create ~base:0x200000 ~limit:0x400000 in
  let mem = Metal_hw.Bus.memory m.Machine.bus in
  let pt = Page_table.create ~mem ~alloc in
  (* Identity-map the code pages, then the working set. *)
  let map ~vaddr ~paddr =
    match Page_table.map pt ~vaddr ~paddr Page_table.rwx with
    | Ok () -> ()
    | Error e -> failwith e
  in
  for i = 0 to 7 do
    map ~vaddr:(i * 4096) ~paddr:(i * 4096)
  done;
  for i = 0 to working_set_pages - 1 do
    map ~vaddr:(0x400000 + (i * 4096)) ~paddr:(0x10000 + (i * 4096))
  done;
  Metal_progs.Pagetable.set_root m (Page_table.root pt);
  Machine.ctrl_write m Csr.pt_root (Page_table.root pt);
  if use_hw_walker then Machine.ctrl_write m Csr.hw_walker 1;
  Machine.ctrl_write m Csr.paging 1;
  let img = Metal_asm.Asm.assemble_exn workload in
  (match Machine.load_image m img with
   | Ok () -> ()
   | Error e -> failwith e);
  Machine.set_pc m 0;
  m

let run m =
  match Pipeline.run m ~max_cycles:10_000_000 with
  | Some (Machine.Halt_ebreak _) -> ()
  | Some h -> failwith (Machine.halted_to_string h)
  | None -> failwith "did not finish"

let report label m =
  let s = m.Machine.stats in
  let misses = s.Stats.tlb_misses in
  Printf.printf "%-28s %9d cycles  %6d TLB misses  %5.1f cycles/miss\n" label
    s.Stats.cycles misses
    (if misses = 0 then 0.0
     else
       float_of_int (s.Stats.cycles - (accesses * 8)) /. float_of_int misses)

let () =
  Printf.printf
    "=== Custom page tables: %d random accesses over a %d-page working set ===\n\n"
    accesses working_set_pages;
  let metal = setup ~use_hw_walker:false () in
  run metal;
  report "Metal mroutine walker" metal;
  let hw = setup ~use_hw_walker:true () in
  run hw;
  report "hardware walker" hw;
  let pal = setup ~config:Config.palcode ~use_hw_walker:false () in
  run pal;
  report "OS-trap walker (PALcode)" pal;
  print_endline
    "\nThe Metal walker closes most of the gap to the hardware walker\n\
     while keeping the page-table format entirely under OS control\n\
     (Section 3.2: software-managed TLBs without the historical cost)."
