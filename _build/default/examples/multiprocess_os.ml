(* A multi-process OS whose kernel/user boundary is pure mcode.

   Everything the paper's Section 3.1 promises, end to end: kenter and
   kexit (Figure 2) implement the privilege switch, page keys seal
   kernel memory the moment control returns to user code, the custom
   page-table mroutine (Section 3.2) handles every TLB miss, and the
   whole thing schedules three processes that talk through system
   calls. *)

open Metal_kernel

let writer name count =
  Printf.sprintf
    {|start:
    li s0, %d
loop:
    la a1, msg
    li a2, %d
    li a0, %d            # puts
    menter 0
    li a0, %d            # yield
    menter 0
    addi s0, s0, -1
    bnez s0, loop
    li a0, %d            # exit
    li a1, 0
    menter 0
msg: .asciiz "%s"
|}
    count (String.length name) Kernel.syscall_puts Kernel.syscall_yield
    Kernel.syscall_exit name

let pid_reporter =
  Printf.sprintf
    {|start:
    li a0, %d            # getpid
    menter 0
    addi a1, a0, '0'
    li a0, %d            # putchar
    menter 0
    li a0, %d
    li a1, 0
    menter 0
|}
    Kernel.syscall_getpid Kernel.syscall_putchar Kernel.syscall_exit

(* An IPC pair: the client sends a number, the server doubles it and
   replies; the client prints the result as a character. *)
let ipc_server ~client_pid =
  Printf.sprintf
    {|start:
    li a0, %d            # recv (blocks until the client's request)
    menter 0
    slli a2, a0, 1       # double it
    li a1, %d            # reply to the client
    li a0, %d            # send
    menter 0
    li a0, %d
    li a1, 0
    menter 0
|}
    Kernel.syscall_recv client_pid Kernel.syscall_send Kernel.syscall_exit

let ipc_client ~server_pid =
  Printf.sprintf
    {|start:
    li a1, %d            # server pid
    li a2, 30
    li a0, %d            # send 30
    menter 0
    li a0, %d            # recv the doubled reply (blocks)
    menter 0
    addi a1, a0, '0' - 60
    li a0, %d            # prints '0' when the reply is 60
    menter 0
    li a0, %d
    li a1, 0
    menter 0
|}
    server_pid Kernel.syscall_send Kernel.syscall_recv
    Kernel.syscall_putchar Kernel.syscall_exit

let () =
  print_endline "=== Processes on the Metal mini-kernel ===\n";
  let k =
    match Kernel.boot () with Ok k -> k | Error e -> failwith e
  in
  let spawn src =
    match Kernel.spawn k ~source:src with
    | Ok p -> p
    | Error e -> failwith e
  in
  let p1 = spawn (writer "ping." 3) in
  let p2 = spawn (writer "PONG." 3) in
  let p3 = spawn pid_reporter in
  let _server = spawn (ipc_server ~client_pid:5) in  (* pid 4 *)
  let _client = spawn (ipc_client ~server_pid:4) in  (* pid 5 *)
  (match Kernel.run k ~max_cycles:2_000_000 with
   | Kernel.All_done -> ()
   | Kernel.Deadlocked -> failwith "deadlock"
   | Kernel.Out_of_cycles -> failwith "scheduler ran out of cycles"
   | Kernel.Machine_halted h ->
     failwith (Metal_cpu.Machine.halted_to_string h));
  Printf.printf "console output:\n  %s\n\n" (Kernel.console_output k);
  ignore (p1, p2, p3);
  List.iter
    (fun (p : Process.t) ->
       Printf.printf "pid %d: %s after %d yields\n" p.Process.pid
         (Process.state_to_string p.Process.state)
         p.Process.yields)
    k.Kernel.procs;
  print_endline
    "\npids 4 and 5 exchanged a message through the kernel's blocking\n\
     mailbox IPC (the '0' in the console is the doubled reply).";
  let s = k.Kernel.machine.Metal_cpu.Machine.stats in
  Printf.printf
    "\nmachine: %d cycles, %d instructions (%d in Metal mode),\n\
     %d menter/%d mexit transitions, %d TLB misses handled by the\n\
     page-fault mroutine, %d exceptions delegated.\n"
    s.Metal_cpu.Stats.cycles s.Metal_cpu.Stats.instructions
    s.Metal_cpu.Stats.metal_instructions s.Metal_cpu.Stats.menters
    s.Metal_cpu.Stats.mexits s.Metal_cpu.Stats.tlb_misses
    s.Metal_cpu.Stats.exceptions
