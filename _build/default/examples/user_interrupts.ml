(* User-level interrupts (paper Section 3.4).

   The DPDK scenario: a userspace process does useful work while
   packets arrive on a NIC.  With polling it must check the device on
   every loop iteration; with Metal user-level interrupts the NIC
   interrupt is delivered straight to a userspace handler with no
   privilege transition and no kernel.

   We measure useful work units completed and per-packet delivery
   latency at the same packet rate. *)

open Metal_cpu
open Metal_progs

let packets = 20
let period = 400

let nic = Metal_hw.Bus.mmio_base + 0x100

let polling_program =
  Printf.sprintf
    {|start:
    li s2, %d            # NIC base
    li s3, %d            # packets expected
work:
    addi s0, s0, 1       # useful work unit
    lw t0, 0(s2)         # poll rx count
    beqz t0, work
    sw zero, 0xc(s2)     # pop
    addi s1, s1, 1
    bne s1, s3, work
    ebreak
|}
    nic packets

let uintr_program =
  Printf.sprintf
    {|start:
    la a0, handler
    menter %d            # register user handler
    li t0, 1
    li t1, %d
    sw t0, 0x10(t1)      # enable NIC rx interrupt
    li s3, %d
work:
    addi s0, s0, 1       # useful work unit, no device checks
    bne s1, s3, work
    ebreak

handler:
    li t0, %d
drain:
    lw t1, 0(t0)
    beqz t1, done
    sw zero, 0xc(t0)
    addi s1, s1, 1
    j drain
done:
    menter %d            # return to the interrupted work loop
|}
    Layout.uintr_setup nic packets nic Layout.uintr_ret

let run ~use_uintr program =
  let sys =
    Metal_core.System.create
      ~nic_schedule:
        (Metal_hw.Devices.Nic.Periodic { start = 100; period; count = packets })
      ()
  in
  if use_uintr then begin
    match Uintr.install sys.Metal_core.System.machine with
    | Ok () -> ()
    | Error e -> failwith e
  end;
  (match Metal_core.System.run_program sys ~max_cycles:1_000_000 program with
   | Ok _ -> ()
   | Error e -> failwith e);
  sys

let mean xs =
  if xs = [] then 0.0
  else float_of_int (List.fold_left ( + ) 0 xs) /. float_of_int (List.length xs)

let report label sys =
  let m = sys.Metal_core.System.machine in
  let nic = Option.get sys.Metal_core.System.nic in
  Printf.printf
    "%-22s %8d cycles  %7d work units  %6.1f avg packet latency\n" label
    m.Machine.stats.Stats.cycles
    (Machine.get_reg m Reg.s0)
    (mean (Metal_hw.Devices.Nic.latencies nic))

let () =
  Printf.printf
    "=== User-level interrupts: %d packets, one every %d cycles ===\n\n"
    packets period;
  report "polling (DPDK-style)" (run ~use_uintr:false polling_program);
  report "user-level interrupts" (run ~use_uintr:true uintr_program);
  print_endline
    "\nPolling spends a device read on every single loop iteration;\n\
     with user-level interrupts the work loop is untouched and packets\n\
     still get handled promptly, with no kernel in the path\n\
     (Section 3.4: reduced CPU occupancy for DPDK/SPDK-style apps)."
