(* Virtualization with nested page tables in mcode (Section 3.5).

   A hypervisor confines a guest to a guest-physical window and lets
   the guest OS manage its own page tables.  Every TLB miss runs the
   two-stage walker mroutine: guest-virtual -> guest-physical (guest
   page table) -> host-physical (VMM window).  A guest that escapes
   its window is caught and delivered to the hypervisor. *)

open Metal_cpu
open Metal_progs

let guest_base = 0x100000
let guest_size = 0x40000

let () =
  print_endline "=== A guest OS under the Metal nested-translation VMM ===\n";
  let m = Machine.create () in
  (* Hypervisor handler injected at guest VA 0x700 (identity page). *)
  (match Vmm.install m { Vmm.guest_base; guest_size; vmm_fault_entry = 0x700 }
   with
   | Ok () -> ()
   | Error e -> failwith e);
  (* The guest OS builds its own page table in guest-physical memory:
     root at gpa 0x1000, one leaf table at gpa 0x2000. *)
  let gw gpa v = Machine.write_word m (guest_base + gpa) v in
  gw 0x1000 (Metal_kernel.Pte.table ~pa:0x2000);
  for i = 0 to 7 do
    gw (0x2000 + (4 * i))
      (Metal_kernel.Pte.leaf ~pa:(i * 0x1000) ~r:true ~w:true ~x:true ())
  done;
  (* guest VA 0x10000 -> gpa 0x3000 (the guest's "heap") *)
  gw (0x2000 + (4 * 0x10))
    (Metal_kernel.Pte.leaf ~pa:0x3000 ~r:true ~w:true ~x:false ());
  Vmm.set_guest_root m 0x1000;
  (* Guest program at guest VA 0 (= gpa 0 = host guest_base). *)
  let guest =
    {|start:
    li t0, 0x10000
    li t1, 1234
    sw t1, 0(t0)          # store through two translation stages
    lw s0, 0(t0)
    li t0, 0x66000        # unmapped guest VA: a guest page fault,
    lw s1, 0(t0)          # delivered to the hypervisor
    ebreak
|}
  in
  let img = Metal_asm.Asm.assemble_exn ~origin:guest_base guest in
  (match Machine.load_image m img with Ok () -> () | Error e -> failwith e);
  let handler = Metal_asm.Asm.assemble_exn ~origin:(guest_base + 0x700)
      "vmm_entry:\nebreak\n" in
  (match Machine.load_image m handler with Ok () -> () | Error e -> failwith e);
  Machine.set_pc m 0;
  Machine.ctrl_write m Csr.paging 1;
  (match Pipeline.run m ~max_cycles:100_000 with
   | Some (Machine.Halt_ebreak { pc; _ }) ->
     Printf.printf "machine parked at %s (the hypervisor's entry)\n"
       (Word.to_hex pc)
   | Some h -> failwith (Machine.halted_to_string h)
   | None -> failwith "did not finish");
  Printf.printf "guest read back %d through nested translation\n"
    (Machine.get_reg m Reg.s0);
  Printf.printf "the store landed at host %s = %d\n"
    (Word.to_hex (guest_base + 0x3000))
    (Machine.read_word m (guest_base + 0x3000));
  Printf.printf "hypervisor received the guest fault for VA %s\n"
    (Word.to_hex (Machine.get_reg m Reg.t6));
  let c = Vmm.counters m in
  Printf.printf "\nnested walks: %d, window violations: %d\n"
    c.Vmm.nested_walks c.Vmm.vmm_violations;
  print_endline
    "\nThe guest never saw a host-physical address: its page tables hold\n\
     guest-physical values, composed with the VMM window by the\n\
     two-stage walker mroutine (Section 3.5: \"Metal allows hypervisors\n\
     to implement nested page tables\")."
