(* Transactional memory via instruction interception (Section 3.3).

   A bank-transfer workload moves money between accounts inside
   transactions while a DMA agent (standing in for a second core)
   occasionally updates balances behind the processor's back.
   Conflicting transactions abort and retry; the invariant (total
   balance) must hold at the end.

   "Metal turns on and off interception of loads and stores at
   runtime ... neither compilers nor developers need to replace loads
   and stores with calls into an STM library." *)

open Metal_cpu
open Metal_progs

let accounts = 8
let transfers = 40
let account_base = 0x8000
let initial_balance = 1000

let program =
  Printf.sprintf
    {|start:
    li s0, %d            # account array
    li s1, %d            # transfers remaining
    li s2, 0             # source index
xfer:
retry:
    la a0, retry
    menter %d            # tstart
    slli t3, s2, 2
    add t3, s0, t3       # &accounts[src]
    addi t4, s2, 1
    li t5, %d
    blt t4, t5, nowrap
    li t4, 0
nowrap:
    slli t4, t4, 2
    add t4, s0, t4       # &accounts[dst]
    lw s6, 0(t3)
    addi s6, s6, -10
    sw s6, 0(t3)
    lw s7, 0(t4)
    addi s7, s7, 10
    sw s7, 0(t4)
    menter %d            # tcommit (a0 = 1 on success)
    beqz a0, retry
    addi s2, s2, 1
    li t5, %d
    blt s2, t5, noidx
    li s2, 0
noidx:
    addi s1, s1, -1
    bnez s1, xfer
    # sum all balances
    li s3, 0
    li t0, 0
sum:
    slli t1, t0, 2
    add t1, s0, t1
    lw t2, 0(t1)
    add s3, s3, t2
    addi t0, t0, 1
    li t5, %d
    blt t0, t5, sum
    ebreak
|}
    account_base transfers Layout.tstart accounts Layout.tcommit accounts
    accounts

let run ~with_conflicts =
  let m = Machine.create () in
  (match Stm.install m with Ok () -> () | Error e -> failwith e);
  for i = 0 to accounts - 1 do
    Machine.write_word m (account_base + (4 * i)) initial_balance
  done;
  if with_conflicts then begin
    (* The DMA agent deposits 1 into account 0 every 700 cycles —
       value-neutral for our checksum check if we account for it. *)
    let mem = Metal_hw.Bus.memory m.Machine.bus in
    let writes =
      List.init 10 (fun i -> ((i + 1) * 700, account_base, 1001 + i))
    in
    let dma = Metal_hw.Devices.Dma.create ~mem ~writes in
    Metal_hw.Bus.attach m.Machine.bus (Metal_hw.Devices.Dma.device dma)
  end;
  let img = Metal_asm.Asm.assemble_exn program in
  (match Machine.load_image m img with Ok () -> () | Error e -> failwith e);
  Machine.set_pc m 0;
  (match Pipeline.run m ~max_cycles:10_000_000 with
   | Some (Machine.Halt_ebreak _) -> ()
   | Some h -> failwith (Machine.halted_to_string h)
   | None -> failwith "did not finish");
  m

let () =
  Printf.printf
    "=== STM by interception: %d transfers across %d accounts ===\n\n"
    transfers accounts;
  let quiet = run ~with_conflicts:false in
  let c = Stm.counters quiet in
  Printf.printf
    "uncontended:  %d commits, %d aborts, %d tx reads, %d tx writes (%d cycles)\n"
    c.Stm.commits c.Stm.aborts c.Stm.reads c.Stm.writes
    quiet.Machine.stats.Stats.cycles;
  Printf.printf "  total balance: %d (expected %d)\n"
    (Machine.get_reg quiet Reg.s3)
    (accounts * initial_balance);
  let noisy = run ~with_conflicts:true in
  let c = Stm.counters noisy in
  Printf.printf
    "\nwith DMA conflicts: %d commits, %d aborts (%d cycles)\n" c.Stm.commits
    c.Stm.aborts noisy.Machine.stats.Stats.cycles;
  Printf.printf
    "  every conflicting transaction retried: the commit count still\n\
    \  equals the transfer count (%d) and no partial transfer is visible.\n"
    transfers
