(* Quickstart: define a custom instruction with Metal.

   The paper's Figure 1 workflow: at boot, load mroutines into the
   MRAM collocated with the fetch unit; applications invoke them with
   [menter] and get microcode-level overhead.

   Here we give the processor a "population count" instruction —
   something RV32I lacks — as mroutine entry 0, then compare it
   against the pure-software popcount loop. *)

let popcount_mcode =
  {|# Custom instruction: a0 <- popcount(a0).
.mentry 0, popcount
popcount:
    li t0, 0          # result
    li t1, 32         # remaining bits
pop_loop:
    andi t2, a0, 1
    add t0, t0, t2
    srli a0, a0, 1
    addi t1, t1, -1
    bnez t1, pop_loop
    mv a0, t0
    mexit
|}

let user_program =
  {|start:
    li a0, 0xF0F01234
    menter 0              # custom popcount instruction
    mv s0, a0             # 13 bits set
    ebreak
|}

let software_popcount =
  {|start:
    li a0, 0xF0F01234
    li t0, 0
    li t1, 32
loop:
    andi t2, a0, 1
    add t0, t0, t2
    srli a0, a0, 1
    addi t1, t1, -1
    bnez t1, loop
    mv s0, t0
    ebreak
|}

let run source ~mcode =
  let config = { Metal_cpu.Config.default with Metal_cpu.Config.trace = true } in
  let sys = Metal_core.System.create ~config () in
  (match mcode with
   | None -> ()
   | Some src ->
     begin match Metal_core.System.load_mcode sys src with
     | Ok () -> ()
     | Error e -> failwith e
     end);
  match Metal_core.System.run_program sys source with
  | Ok _halt -> sys
  | Error e -> failwith e

let () =
  print_endline "=== Metal quickstart: a user-defined instruction ===\n";
  print_endline "mroutine (entry 0), loaded into MRAM at boot:";
  print_endline popcount_mcode;
  let sys = run user_program ~mcode:(Some popcount_mcode) in
  Printf.printf "menter-based popcount(0xF0F01234) = %d  (%d cycles total)\n"
    (Metal_core.System.reg sys "s0")
    (Metal_core.System.cycles sys);
  let swsys = run software_popcount ~mcode:None in
  Printf.printf "inline software popcount          = %d  (%d cycles total)\n"
    (Metal_core.System.reg swsys "s0")
    (Metal_core.System.cycles swsys);
  Printf.printf
    "\nThe mroutine runs from MRAM at the same speed as inline code —\n\
     mode transitions cost ~%d cycles (menter + mexit replacement in\n\
     decode; Section 2.2 of the paper).\n"
    (Metal_core.System.cycles sys - Metal_core.System.cycles swsys);
  print_endline "\nRetirement trace of the Metal round trip (excerpt):";
  List.iter
    (fun line -> print_endline ("  " ^ line))
    (Metal_cpu.Machine.trace_log sys.Metal_core.System.machine ~max:12)
