(* metal-asm: assemble Metal assembly and inspect the result. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run path origin show_disasm show_symbols show_entries =
  let source = read_file path in
  match Metal_asm.Asm.assemble ~origin source with
  | Error e ->
    Printf.eprintf "%s: %s\n" path (Metal_asm.Asm.error_to_string e);
    1
  | Ok img ->
    if show_disasm then print_string (Metal_asm.Disasm.image img)
    else Format.printf "%a" Metal_asm.Image.pp_listing img;
    if show_symbols then begin
      print_endline "symbols:";
      List.iter
        (fun (name, v) -> Printf.printf "  %-24s 0x%08x\n" name v)
        (List.sort compare img.Metal_asm.Image.symbols)
    end;
    if show_entries && img.Metal_asm.Image.mentries <> [] then begin
      print_endline "mroutine entries:";
      List.iter
        (fun (entry, addr) -> Printf.printf "  %2d -> 0x%04x\n" entry addr)
        img.Metal_asm.Image.mentries
    end;
    0

open Cmdliner

let path =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
         ~doc:"Assembly source file.")

let origin =
  Arg.(value & opt int 0 & info [ "origin" ] ~docv:"ADDR"
         ~doc:"Initial location counter.")

let disasm =
  Arg.(value & flag & info [ "d"; "disasm" ]
         ~doc:"Disassemble the image instead of printing the listing.")

let symbols =
  Arg.(value & flag & info [ "s"; "symbols" ] ~doc:"Print the symbol table.")

let entries =
  Arg.(value & flag & info [ "e"; "entries" ]
         ~doc:"Print the mroutine entry table.")

let cmd =
  Cmd.v
    (Cmd.info "metal-asm" ~doc:"Assembler for the Metal ISA")
    Term.(const run $ path $ origin $ disasm $ symbols $ entries)

let () = exit (Cmd.eval' cmd)
