bin/mrun.ml: Arg Cmd Cmdliner Format Fun List Metal_core Metal_cpu Metal_kernel Printf Reg Result Term Word
