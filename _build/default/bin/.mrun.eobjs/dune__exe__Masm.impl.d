bin/masm.ml: Arg Cmd Cmdliner Format Fun List Metal_asm Printf Term
