bin/masm.mli:
