bin/msynth.ml: Arg Cmd Cmdliner Metal_synth Term
