bin/msynth.mli:
