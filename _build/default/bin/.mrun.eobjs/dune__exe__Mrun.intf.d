bin/mrun.mli:
