bench/main.mli:
