bench/util.ml: Buffer Config List Machine Metal_asm Metal_cpu Pipeline Printf Stats String
