(* Second batch of application tests: capacity limits, coalescing,
   attestation entry points, and failure-handling paths. *)

open Metal_cpu
open Metal_progs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine () = Machine.create ()

let load m ?origin src =
  let img = Metal_asm.Asm.assemble_exn ?origin src in
  match Machine.load_image m img with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let run_to_ebreak ?(max_cycles = 2_000_000) m =
  match Pipeline.run m ~max_cycles with
  | Some (Machine.Halt_ebreak { pc; _ }) -> pc
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "cycle budget exhausted"

let reg m name =
  match Reg.of_string name with
  | Some r -> Machine.get_reg m r
  | None -> Alcotest.fail name

let expect_ok = function Ok () -> () | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* STM: read-set overflow with a bounded retry policy in the guest *)

let test_stm_overflow_detected_by_guest () =
  let m = machine () in
  expect_ok (Stm.install m);
  (* The transaction reads more distinct words than the read set
     holds; the guest retries at most twice, then takes a fallback. *)
  load m
    (Printf.sprintf
       {|start:
    li s11, 2              # retry budget
retry:
    bnez s11, go
    li s0, 0xFA11          # fallback path (e.g. grab a lock)
    ebreak
go:
    addi s11, s11, -1
    la a0, retry
    menter %d
    li t3, 0x8000
    li t4, %d
scan:
    lw t5, 0(t3)
    addi t3, t3, 4
    addi t4, t4, -1
    bnez t4, scan
    menter %d
    li s0, 0xC0
    ebreak
|}
       Layout.tstart
       (Stm.capacity + 8)
       Layout.tcommit);
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "guest fell back" 0xFA11 (reg m "s0");
  let c = Stm.counters m in
  check_bool "overflow aborts counted" true (c.Stm.overflow_aborts >= 1);
  check_int "no commit" 0 c.Stm.commits

let test_stm_counters_reset () =
  let m = machine () in
  expect_ok (Stm.install m);
  load m
    (Printf.sprintf
       "la a0, r\nr:\nmenter %d\nli t0, 0x8000\nlw t1, 0(t0)\nmenter %d\nebreak\n"
       Layout.tstart Layout.tcommit);
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "one commit" 1 (Stm.counters m).Stm.commits;
  Stm.reset_counters m;
  check_int "reset" 0 (Stm.counters m).Stm.commits

(* ------------------------------------------------------------------ *)
(* uintr: coalescing while the handler runs *)

let test_uintr_coalescing () =
  let m = machine () in
  let nic =
    Metal_hw.Devices.Nic.create ~base:(Metal_hw.Bus.mmio_base + 0x100)
      ~intc:m.Machine.intc
      (* Second packet lands while the (slow) handler for the first is
         still running. *)
      ~schedule:(Metal_hw.Devices.Nic.At [ 100; 130 ])
  in
  Metal_hw.Bus.attach m.Machine.bus (Metal_hw.Devices.Nic.device nic);
  expect_ok (Uintr.install m);
  load m
    (Printf.sprintf
       {|start:
    la a0, handler
    menter %d
    li t0, 1
    li t1, %d
    sw t0, 0x10(t1)
loop:
    addi s0, s0, 1
    li t2, 2
    bne s1, t2, loop
    ebreak

handler:
    li t0, 400             # slow handler: burn cycles first
slow:
    addi t0, t0, -1
    bnez t0, slow
    li t0, %d
drain:
    lw t1, 0(t0)
    beqz t1, done
    sw zero, 0xc(t0)
    addi s1, s1, 1
    j drain
done:
    menter %d
|}
       Layout.uintr_setup
       (Metal_hw.Bus.mmio_base + 0x100)
       (Metal_hw.Bus.mmio_base + 0x100)
       Layout.uintr_ret);
  Machine.set_pc m 0;
  ignore (run_to_ebreak ~max_cycles:100_000 m);
  check_int "both packets handled" 2 (reg m "s1");
  let c = Uintr.counters m in
  (* The second interrupt arrived while in-handler: coalesced, and the
     drain loop picked its packet up. *)
  check_int "one delivery" 1 c.Uintr.delivered;
  check_int "one coalesced" 1 c.Uintr.coalesced

(* ------------------------------------------------------------------ *)
(* Capabilities: table exhaustion *)

let test_capability_exhaustion () =
  let m = machine () in
  expect_ok (Capability.install m);
  load m
    (Printf.sprintf
       {|start:
    li s0, %d              # capacity + 1 creations
loop:
    li a0, 0x8000
    li a1, 4
    li a2, 3
    menter %d
    mv s1, a0              # last result
    addi s0, s0, -1
    bnez s0, loop
    ebreak
|}
       (Capability.capacity + 1)
       Layout.cap_create);
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "table full" 0xFFFFFFFF (reg m "s1")

(* ------------------------------------------------------------------ *)
(* Enclave: explicit attestation entry *)

let test_enclave_hash_entry () =
  let m = machine () in
  load m ~origin:0x6000 "enclave_entry:\n li a0, 1\n menter 49\n";
  expect_ok
    (Enclave.install m
       { Enclave.entry = 0x6000; region_base = 0x6000; region_size = 12;
         open_perms = 0; closed_perms = 0 });
  load m (Printf.sprintf "menter %d\nmv s0, a0\nebreak\n" Layout.enc_hash);
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "hash matches the recorded measurement" (Enclave.measurement m)
    (reg m "s0");
  check_bool "measurement nonzero" true (Enclave.measurement m <> 0)

(* ------------------------------------------------------------------ *)
(* Shadow stack: depth overflow trips the violation handler *)

let test_shadowstack_depth_overflow () =
  let m = machine () in
  expect_ok (Shadowstack.install m);
  load m
    (Printf.sprintf
       {|start:
    li sp, 0x8000
    menter %d
    li s0, %d
    call recurse
    menter %d
    ebreak

recurse:
    addi sp, sp, -4
    sw ra, 0(sp)
    addi s0, s0, -1
    beqz s0, unwind
    call recurse
unwind:
    lw ra, 0(sp)
    addi sp, sp, 4
    ret
|}
       Layout.ss_enable
       (Shadowstack.capacity + 4)
       Layout.ss_disable);
  Machine.set_pc m 0;
  (match Pipeline.run m ~max_cycles:200_000 with
   | Some (Machine.Halt_ebreak { metal = true; _ }) -> ()
   | Some h -> Alcotest.fail (Machine.halted_to_string h)
   | None -> Alcotest.fail "no halt");
  check_int "violation recorded" 1 (Shadowstack.counters m).Shadowstack.violations

(* Nesting within capacity is fine. *)
let test_shadowstack_deep_but_legal () =
  let m = machine () in
  expect_ok (Shadowstack.install m);
  load m
    (Printf.sprintf
       {|start:
    li sp, 0x8000
    menter %d
    li s0, %d
    call recurse
    menter %d
    ebreak

recurse:
    addi sp, sp, -4
    sw ra, 0(sp)
    addi s0, s0, -1
    beqz s0, unwind
    call recurse
unwind:
    lw ra, 0(sp)
    addi sp, sp, 4
    ret
|}
       Layout.ss_enable
       (Shadowstack.capacity - 4)
       Layout.ss_disable);
  Machine.set_pc m 0;
  ignore (run_to_ebreak ~max_cycles:200_000 m);
  check_int "no violations" 0 (Shadowstack.counters m).Shadowstack.violations;
  check_int "balanced" 0 (Shadowstack.counters m).Shadowstack.depth

(* ------------------------------------------------------------------ *)
(* Privilege: kenter listing structure (Figure 2 fidelity) *)

let test_figure2_structure () =
  let listing = Privilege.figure2_listing () in
  (* The paper's structure: kenter saves the caller in ra, computes
     the entry point via t0 and exits into the kernel; kexit returns
     through ra. *)
  List.iter
    (fun needle ->
       check_bool needle true (Tutil.contains listing needle))
    [ "rmr ra, m31"; "slli t0, a0, 2"; "physld t0, 0(t0)";
      "wmr m31, t0"; "wmr m31, ra"; "mexit" ]

(* Nested: remap disabled (offset 0) behaves as a transparent layer. *)
let test_nested_transparent_when_unmapped () =
  let m = machine () in
  expect_ok (Nested.install m ~remap_offset:0);
  Machine.ctrl_write m
    (Csr.icept_handler (Icept.code Icept.Store_class))
    (Layout.nest_store + 1);
  Machine.ctrl_write m Csr.icept_enable 1;
  load m "li t3, 0x8000\nli t4, 9\nsw t4, 0(t3)\nlw s0, 0(t3)\nebreak\n";
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "store visible at original address" 9 (reg m "s0")

let () =
  Alcotest.run "progs2"
    [
      ( "stm",
        [ Alcotest.test_case "overflow fallback" `Quick
            test_stm_overflow_detected_by_guest;
          Alcotest.test_case "counter reset" `Quick test_stm_counters_reset ] );
      ( "uintr",
        [ Alcotest.test_case "coalescing" `Quick test_uintr_coalescing ] );
      ( "capability",
        [ Alcotest.test_case "exhaustion" `Quick test_capability_exhaustion ] );
      ( "enclave",
        [ Alcotest.test_case "hash entry" `Quick test_enclave_hash_entry ] );
      ( "shadowstack",
        [ Alcotest.test_case "depth overflow" `Quick
            test_shadowstack_depth_overflow;
          Alcotest.test_case "deep but legal" `Quick
            test_shadowstack_deep_but_legal ] );
      ( "figure2",
        [ Alcotest.test_case "structure" `Quick test_figure2_structure ] );
      ( "nested",
        [ Alcotest.test_case "transparent" `Quick
            test_nested_transparent_when_unmapped ] );
    ]
