(* Kernel-layer tests: PTEs, frame allocation, page-table building,
   loading, and the full OS on Metal (syscalls through kenter/kexit,
   scheduling, isolation between processes). *)

open Metal_cpu
open Metal_kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Pte *)

let test_pte_roundtrip () =
  let pte = Pte.leaf ~pa:0xABCDE000 ~pkey:5 ~global:true ~r:true ~w:false
      ~x:true () in
  check_bool "valid" true (Pte.is_valid pte);
  check_bool "leaf" true (Pte.is_leaf pte);
  check_int "pa" 0xABCDE000 (Pte.pa_of pte);
  let t = Pte.table ~pa:0x1000 in
  check_bool "table valid" true (Pte.is_valid t);
  check_bool "table not leaf" false (Pte.is_leaf t);
  check_bool "invalid" false (Pte.is_valid Pte.invalid)

let test_pte_indices () =
  check_int "l1" 0x3FF (Pte.l1_index 0xFFFFFFFF);
  check_int "l2" 0x3FF (Pte.l2_index 0xFFFFFFFF);
  check_int "l1 of 4M" 1 (Pte.l1_index 0x400000);
  check_int "l2 of 4M" 0 (Pte.l2_index 0x400000);
  check_int "l2 of page 1" 1 (Pte.l2_index 0x1000)

(* ------------------------------------------------------------------ *)
(* Frame_alloc *)

let test_frame_alloc () =
  let a = Frame_alloc.create ~base:0x10000 ~limit:0x13000 in
  check_int "first" 0x10000 (Frame_alloc.alloc_exn a);
  check_int "second" 0x11000 (Frame_alloc.alloc_exn a);
  check_int "allocated" 2 (Frame_alloc.allocated a);
  check_int "remaining" 1 (Frame_alloc.remaining a);
  check_int "third" 0x12000 (Frame_alloc.alloc_exn a);
  check_bool "exhausted" true (Frame_alloc.alloc a = None)

(* ------------------------------------------------------------------ *)
(* Page_table *)

let fresh_pt () =
  let mem = Metal_hw.Phys_mem.create ~size:(1024 * 1024) in
  let alloc = Frame_alloc.create ~base:0x40000 ~limit:0x100000 in
  (Page_table.create ~mem ~alloc, mem, alloc)

let test_pt_map_lookup () =
  let pt, _, _ = fresh_pt () in
  (match Page_table.map pt ~vaddr:0x12345000 ~paddr:0x9000 Page_table.rw with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Page_table.lookup pt ~vaddr:0x12345678 with
   | Some (pa, pte) ->
     check_int "translated" 0x9678 pa;
     check_bool "leaf" true (Pte.is_leaf pte)
   | None -> Alcotest.fail "lookup failed");
  check_bool "unmapped misses" true
    (Page_table.lookup pt ~vaddr:0x999000 = None)

let test_pt_unmap () =
  let pt, _, _ = fresh_pt () in
  (match Page_table.map pt ~vaddr:0x5000 ~paddr:0x9000 Page_table.rw with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  check_bool "unmap hits" true (Page_table.unmap pt ~vaddr:0x5000);
  check_bool "gone" true (Page_table.lookup pt ~vaddr:0x5000 = None);
  check_bool "double unmap misses" false (Page_table.unmap pt ~vaddr:0x5000)

let test_pt_superpage () =
  let pt, _, _ = fresh_pt () in
  (match
     Page_table.map_superpage pt ~vaddr:0x800000 ~paddr:0x400000
       Page_table.rwx
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Page_table.lookup pt ~vaddr:0x823456 with
   | Some (pa, _) -> check_int "superpage translation" 0x423456 pa
   | None -> Alcotest.fail "superpage lookup");
  check_bool "misaligned rejected" true
    (Result.is_error
       (Page_table.map_superpage pt ~vaddr:0x1000 ~paddr:0 Page_table.rwx))

let test_pt_remap_overwrites () =
  let pt, _, _ = fresh_pt () in
  (match Page_table.map pt ~vaddr:0x5000 ~paddr:0x9000 Page_table.rw with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Page_table.map pt ~vaddr:0x5000 ~paddr:0xA000 Page_table.ro with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  match Page_table.lookup pt ~vaddr:0x5000 with
  | Some (pa, _) -> check_int "remapped" 0xA000 pa
  | None -> Alcotest.fail "lookup after remap"

let test_pt_table_sharing () =
  (* Two pages in the same 4 MiB region share one L2 table. *)
  let pt, _, alloc = fresh_pt () in
  let before = Frame_alloc.allocated alloc in
  (match Page_table.map pt ~vaddr:0x1000 ~paddr:0x9000 Page_table.rw with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match Page_table.map pt ~vaddr:0x2000 ~paddr:0xA000 Page_table.rw with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  check_int "one extra table" 1 (Frame_alloc.allocated alloc - before)

(* ------------------------------------------------------------------ *)
(* Kernel: processes and syscalls *)

let boot_exn () =
  match Kernel.boot () with
  | Ok k -> k
  | Error e -> Alcotest.fail e

let spawn_exn k src =
  match Kernel.spawn k ~source:src with
  | Ok p -> p
  | Error e -> Alcotest.fail e

let run_all k =
  match Kernel.run k ~max_cycles:2_000_000 with
  | Kernel.All_done -> ()
  | Kernel.Deadlocked -> Alcotest.fail "deadlocked"
  | Kernel.Out_of_cycles -> Alcotest.fail "out of cycles"
  | Kernel.Machine_halted h -> Alcotest.fail (Machine.halted_to_string h)

let exit_sys code =
  Printf.sprintf "li a0, %d\nli a1, %d\nmenter 0\n" Kernel.syscall_exit code

let test_hello_process () =
  let k = boot_exn () in
  let p =
    spawn_exn k
      (Printf.sprintf
         "start:\nla a1, msg\nli a2, 5\nli a0, %d\nmenter 0\n%s\n\
          msg: .asciiz \"hello\"\n"
         Kernel.syscall_puts (exit_sys 0))
  in
  run_all k;
  check_str "console" "hello" (Kernel.console_output k);
  check_bool "exited cleanly" true (p.Process.state = Process.Exited 0)

let test_putchar_and_exit_code () =
  let k = boot_exn () in
  let p =
    spawn_exn k
      (Printf.sprintf "li a0, %d\nli a1, 'X'\nmenter 0\n%s"
         Kernel.syscall_putchar (exit_sys 42))
  in
  run_all k;
  check_str "char" "X" (Kernel.console_output k);
  check_bool "exit code" true (p.Process.state = Process.Exited 42)

let test_getpid () =
  let k = boot_exn () in
  let src =
    Printf.sprintf
      "li a0, %d\nmenter 0\naddi a1, a0, '0'\nli a0, %d\nmenter 0\n%s"
      Kernel.syscall_getpid Kernel.syscall_putchar (exit_sys 0)
  in
  ignore (spawn_exn k src);
  ignore (spawn_exn k src);
  run_all k;
  check_str "pids printed" "12" (Kernel.console_output k)

let test_yield_interleaving () =
  let k = boot_exn () in
  let prog c =
    Printf.sprintf
      {|li s0, 3
loop:
    li a0, %d
    li a1, '%c'
    menter 0
    li a0, %d
    menter 0
    addi s0, s0, -1
    bnez s0, loop
%s|}
      Kernel.syscall_putchar c Kernel.syscall_yield (exit_sys 0)
  in
  ignore (spawn_exn k (prog 'a'));
  ignore (spawn_exn k (prog 'b'));
  run_all k;
  check_str "round-robin interleaving" "ababab" (Kernel.console_output k)

let test_address_space_isolation () =
  (* Both processes write different values at the same virtual
     address; each must read back its own. *)
  let k = boot_exn () in
  let prog v =
    Printf.sprintf
      {|la s2, slot
    li s3, %d
    sw s3, 0(s2)
    li a0, %d
    menter 0
    lw s4, 0(s2)
    li a0, %d
    mv a1, s4
    menter 0
slot: .word 0
|}
      v Kernel.syscall_yield Kernel.syscall_exit
  in
  let p1 = spawn_exn k (prog 111) in
  let p2 = spawn_exn k (prog 222) in
  run_all k;
  check_bool "p1 sees its own data" true (p1.Process.state = Process.Exited 111);
  check_bool "p2 sees its own data" true (p2.Process.state = Process.Exited 222)

let test_kernel_memory_protected () =
  (* User code reading a kernel-keyed page must fault. *)
  let k = boot_exn () in
  let p =
    spawn_exn k
      (Printf.sprintf "li t0, %d\nlw t1, 0(t0)\n%s" Kernel.kernel_base
         (exit_sys 0))
  in
  run_all k;
  (match p.Process.state with
   | Process.Faulted _ -> ()
   | s -> Alcotest.fail ("expected fault, got " ^ Process.state_to_string s))

let test_unmapped_access_faults_process () =
  let k = boot_exn () in
  let p =
    spawn_exn k (Printf.sprintf "li t0, 0x7F000000\nlw t1, 0(t0)\n%s"
                   (exit_sys 0))
  in
  run_all k;
  match p.Process.state with
  | Process.Faulted _ -> ()
  | s -> Alcotest.fail ("expected fault, got " ^ Process.state_to_string s)

let test_stray_ebreak_faults_process () =
  let k = boot_exn () in
  let p = spawn_exn k "ebreak\n" in
  run_all k;
  match p.Process.state with
  | Process.Faulted _ -> ()
  | s -> Alcotest.fail ("expected fault, got " ^ Process.state_to_string s)

let test_bad_syscall_faults_process () =
  let k = boot_exn () in
  let p = spawn_exn k "li a0, 99\nmenter 0\nebreak\n" in
  run_all k;
  match p.Process.state with
  | Process.Faulted _ -> ()
  | s -> Alcotest.fail ("expected fault, got " ^ Process.state_to_string s)

let test_many_processes () =
  let k = boot_exn () in
  for i = 1 to 8 do
    ignore
      (spawn_exn k
         (Printf.sprintf
            "li a0, %d\nli a1, %d\nmenter 0\nli a0, %d\nli a1, %d\nmenter 0\n"
            Kernel.syscall_putchar
            (Char.code 'a' + i - 1)
            Kernel.syscall_exit i))
  done;
  run_all k;
  check_str "all ran" "abcdefgh" (Kernel.console_output k);
  List.iter
    (fun p ->
       match p.Process.state with
       | Process.Exited code -> check_int "exit code is pid" p.Process.pid code
       | s -> Alcotest.fail (Process.state_to_string s))
    k.Kernel.procs

(* ------------------------------------------------------------------ *)
(* IPC: send/recv with blocking receivers *)

let sys n = Printf.sprintf "li a0, %d\nmenter 0\n" n

let test_ipc_ping_pong () =
  let k = boot_exn () in
  (* pid 1: send 41 to pid 2, then block on the reply; exit with it. *)
  let p1 =
    spawn_exn k
      (Printf.sprintf
         "li a1, 2\nli a2, 41\n%s%s\nmv a1, a0\nli a0, %d\nmenter 0\n"
         (sys Kernel.syscall_send) (sys Kernel.syscall_recv)
         Kernel.syscall_exit)
  in
  (* pid 2: recv, add 1, send back to pid 1. *)
  let p2 =
    spawn_exn k
      (Printf.sprintf
         "%s\naddi a2, a0, 1\nli a1, 1\n%s%s"
         (sys Kernel.syscall_recv) (sys Kernel.syscall_send) (exit_sys 0))
  in
  run_all k;
  check_bool "p1 got the reply" true (p1.Process.state = Process.Exited 42);
  check_bool "p2 exited" true (p2.Process.state = Process.Exited 0)

let test_ipc_bad_destination () =
  let k = boot_exn () in
  let p =
    spawn_exn k
      (Printf.sprintf
         "li a1, 99\nli a2, 1\n%s\nmv a1, a0\nli a0, %d\nmenter 0\n"
         (sys Kernel.syscall_send) Kernel.syscall_exit)
  in
  run_all k;
  check_bool "send to bad pid returns -1" true
    (p.Process.state = Process.Exited (-1))

let test_ipc_mailbox_full () =
  let k = boot_exn () in
  (* pid 1 sends capacity+1 messages to pid 2, which never receives;
     the final status (last send) is the exit code. *)
  let p1 =
    spawn_exn k
      (Printf.sprintf
         "li s0, %d\nloop:\nli a1, 2\nli a2, 7\n%s\nmv s1, a0\n\
          addi s0, s0, -1\nbnez s0, loop\nmv a1, s1\nli a0, %d\nmenter 0\n"
         (Kernel.mailbox_capacity + 1)
         (sys Kernel.syscall_send) Kernel.syscall_exit)
  in
  ignore
    (spawn_exn k
       (Printf.sprintf "li s0, 40\nspin:\n%s\naddi s0, s0, -1\n\
                        bnez s0, spin\n%s"
          (sys Kernel.syscall_yield) (exit_sys 0)));
  run_all k;
  check_bool "overflowing send returns -2" true
    (p1.Process.state = Process.Exited (-2))

let test_ipc_deadlock_detected () =
  let k = boot_exn () in
  ignore (spawn_exn k (sys Kernel.syscall_recv ^ exit_sys 0));
  (match Kernel.run k ~max_cycles:1_000_000 with
   | Kernel.Deadlocked -> ()
   | Kernel.All_done -> Alcotest.fail "reported done with a blocked process"
   | Kernel.Out_of_cycles -> Alcotest.fail "out of cycles"
   | Kernel.Machine_halted h -> Alcotest.fail (Machine.halted_to_string h))

let test_ipc_queued_messages_order () =
  let k = boot_exn () in
  (* pid 1 sends 3 messages then yields forever; pid 2 receives them in
     order and prints them as digits. *)
  ignore
    (spawn_exn k
       (Printf.sprintf
          "li a1, 2\nli a2, 1\n%sli a1, 2\nli a2, 2\n%sli a1, 2\n\
           li a2, 3\n%s%s"
          (sys Kernel.syscall_send) (sys Kernel.syscall_send)
          (sys Kernel.syscall_send) (exit_sys 0)));
  ignore
    (spawn_exn k
       (Printf.sprintf
          "li s0, 3\nloop:\n%s\naddi a1, a0, '0'\nli a0, %d\nmenter 0\n\
           addi s0, s0, -1\nbnez s0, loop\n%s"
          (sys Kernel.syscall_recv) Kernel.syscall_putchar (exit_sys 0)));
  run_all k;
  check_str "fifo order" "123" (Kernel.console_output k)

let () =
  Alcotest.run "kernel"
    [
      ( "pte",
        [ Alcotest.test_case "roundtrip" `Quick test_pte_roundtrip;
          Alcotest.test_case "indices" `Quick test_pte_indices ] );
      ( "frames", [ Alcotest.test_case "bump" `Quick test_frame_alloc ] );
      ( "page-table",
        [ Alcotest.test_case "map/lookup" `Quick test_pt_map_lookup;
          Alcotest.test_case "unmap" `Quick test_pt_unmap;
          Alcotest.test_case "superpage" `Quick test_pt_superpage;
          Alcotest.test_case "remap" `Quick test_pt_remap_overwrites;
          Alcotest.test_case "table sharing" `Quick test_pt_table_sharing ] );
      ( "os",
        [ Alcotest.test_case "hello" `Quick test_hello_process;
          Alcotest.test_case "putchar/exit" `Quick test_putchar_and_exit_code;
          Alcotest.test_case "getpid" `Quick test_getpid;
          Alcotest.test_case "yield" `Quick test_yield_interleaving;
          Alcotest.test_case "isolation" `Quick test_address_space_isolation;
          Alcotest.test_case "kernel protected" `Quick
            test_kernel_memory_protected;
          Alcotest.test_case "unmapped faults" `Quick
            test_unmapped_access_faults_process;
          Alcotest.test_case "stray ebreak" `Quick
            test_stray_ebreak_faults_process;
          Alcotest.test_case "bad syscall" `Quick test_bad_syscall_faults_process;
          Alcotest.test_case "many processes" `Quick test_many_processes ] );
      ( "ipc",
        [ Alcotest.test_case "ping-pong" `Quick test_ipc_ping_pong;
          Alcotest.test_case "bad destination" `Quick test_ipc_bad_destination;
          Alcotest.test_case "mailbox full" `Quick test_ipc_mailbox_full;
          Alcotest.test_case "deadlock" `Quick test_ipc_deadlock_detected;
          Alcotest.test_case "fifo order" `Quick test_ipc_queued_messages_order ] );
    ]
