test/test_cpu2.mli:
