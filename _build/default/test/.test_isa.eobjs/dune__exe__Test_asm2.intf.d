test/test_asm2.mli:
