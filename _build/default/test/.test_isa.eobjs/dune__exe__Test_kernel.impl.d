test/test_kernel.ml: Alcotest Char Frame_alloc Kernel List Machine Metal_cpu Metal_hw Metal_kernel Page_table Printf Process Pte Result
