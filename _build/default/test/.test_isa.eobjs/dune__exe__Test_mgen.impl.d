test/test_mgen.ml: Alcotest Csr Machine Metal_asm Metal_cpu Metal_hw Metal_mgen Mgen Pipeline Reg
