test/test_hw.ml: Alcotest Bus Cache Cause Char Devices Encode Instr Intc List Metal_asm Metal_hw Mram Mregs Phys_mem Result Tlb
