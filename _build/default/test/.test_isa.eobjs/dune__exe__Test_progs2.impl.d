test/test_progs2.ml: Alcotest Capability Csr Enclave Icept Layout List Machine Metal_asm Metal_cpu Metal_hw Metal_progs Nested Pipeline Printf Privilege Reg Shadowstack Stm Tutil Uintr
