test/test_mgen.mli:
