test/test_asm2.ml: Alcotest Asm Decode Disasm Format Image Instr List Metal_asm Printf Result Tutil
