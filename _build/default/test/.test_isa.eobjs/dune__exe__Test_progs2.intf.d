test/test_progs2.mli:
