test/test_asm.ml: Alcotest Asm Char Decode Disasm Encode Expr Image Instr Lex List Metal_asm Printf QCheck QCheck_alcotest Result String Tutil Word
