test/tutil.ml: String
