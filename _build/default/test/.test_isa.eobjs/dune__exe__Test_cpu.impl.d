test/test_cpu.ml: Alcotest Cause Config Csr Icept List Machine Metal_asm Metal_cpu Pipeline Printf Reg Stats String Word
