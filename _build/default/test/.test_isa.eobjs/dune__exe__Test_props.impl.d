test/test_props.ml: Alcotest Encode Instr List Machine Metal_asm Metal_cpu Metal_mgen Pipeline Printf QCheck QCheck_alcotest Reg String Word
