test/test_cpu2.ml: Alcotest Cause Config Csr Icept List Machine Metal_asm Metal_cpu Metal_hw Metal_kernel Metal_progs Option Pipeline Printf Reg Stats String
