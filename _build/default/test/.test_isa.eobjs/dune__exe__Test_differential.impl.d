test/test_differential.ml: Alcotest Array Bytes Char Config Encode Instr List Machine Metal_asm Metal_cpu Metal_hw Pipeline Printf QCheck QCheck_alcotest Reference Reg Stats String Word
