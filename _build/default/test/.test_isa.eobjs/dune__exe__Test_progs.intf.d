test/test_progs.mli:
