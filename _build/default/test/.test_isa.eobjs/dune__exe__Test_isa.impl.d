test/test_isa.ml: Alcotest Cause Csr Decode Encode Gen Icept Instr List Printf QCheck QCheck_alcotest Reg Word
