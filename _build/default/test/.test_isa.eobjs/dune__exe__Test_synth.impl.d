test/test_synth.ml: Alcotest Component Cost_model List Metal_synth Netlist Printf Report Tutil
