(* Assembler edge cases: range limits, directive corners, expression
   operands in unusual positions, and disassembler helpers. *)

open Metal_asm

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok src =
  match Asm.assemble src with
  | Ok img -> img
  | Error e -> Alcotest.fail (Asm.error_to_string e)

let fails src = Result.is_error (Asm.assemble src)

let word_of img addr =
  match Image.word_at img addr with
  | Some w -> w
  | None -> Alcotest.fail (Printf.sprintf "no word at 0x%x" addr)

(* ------------------------------------------------------------------ *)

let test_empty_and_comment_only () =
  let img = ok "" in
  check_int "empty" 0 (Image.size img);
  let img = ok "# nothing\n; here\n// either\n\n" in
  check_int "comments only" 0 (Image.size img);
  check_bool "no bounds" true (Image.bounds img = None)

let test_branch_range_limits () =
  (* B-type reaches +-4 KiB. *)
  check_bool "in range" true
    (not (fails (".org 0\nbeq a0, a1, . + 4094\n.org 8000\nnop\n")));
  check_bool "beyond range" true (fails "beq a0, a1, . + 4096\n");
  check_bool "odd target" true (fails "beq a0, a1, . + 3\n")

let test_jal_range_limits () =
  check_bool "in range" true (not (fails "jal . + 1048574\n"));
  check_bool "beyond" true (fails "jal . + 1048576\n")

let test_align_and_space_math () =
  let img =
    ok ".org 1\n.byte 1\n.align 3\naligned: .word 0xAA\n.space 12\n\
        after: .word after\n"
  in
  Alcotest.(check (option int)) "aligned to 8" (Some 8)
    (Image.find_symbol img "aligned");
  Alcotest.(check (option int)) "after space" (Some 24)
    (Image.find_symbol img "after");
  check_int "after holds own address" 24 (word_of img 24)

let test_equ_chains () =
  let img =
    ok ".equ A, 4\n.equ B, A * 3\n.equ C, B + A\n.word C\n"
  in
  check_int "chained equ" 16 (word_of img 0)

let test_menter_expression_operand () =
  let img = ok ".equ KENTER, 2\nmenter KENTER + 1\n" in
  match Decode.decode_exn (word_of img 0) with
  | Instr.Metal (Instr.Menter { entry }) -> check_int "entry" 3 entry
  | i -> Alcotest.fail (Instr.to_string i)

let test_store_negative_displacement_label_math () =
  let img =
    ok ".equ BUF, 0x100\nli t0, BUF + 16\nsw a0, BUF - 0x100 - 4(t0)\n"
  in
  (* BUF+16 fits a 12-bit immediate, so li is one instruction and the
     store sits at 4. *)
  match Decode.decode_exn (word_of img 4) with
  | Instr.Store { offset = -4; _ } -> ()
  | i -> Alcotest.fail (Instr.to_string i)

let test_multiple_labels_one_line () =
  let img = ok "a: b: c: nop\n" in
  Alcotest.(check (option int)) "a" (Some 0) (Image.find_symbol img "a");
  Alcotest.(check (option int)) "c" (Some 0) (Image.find_symbol img "c")

let test_directive_errors () =
  check_bool ".align huge" true (fails ".align 25\n");
  check_bool ".space negative" true (fails ".space -4\n");
  check_bool ".byte range silently masks" true
    (not (fails ".byte 300\n"));
  check_bool ".asciiz needs string" true (fails ".asciiz 42\n");
  check_bool ".equ needs name" true (fails ".equ 1, 2\n");
  check_bool ".mentry needs two" true (fails ".mentry 3\n");
  check_bool "unaligned instruction" true (fails ".org 2\nnop\n")

let test_operand_arity_errors () =
  check_bool "add too few" true (fails "add a0, a1\n");
  check_bool "add too many" true (fails "add a0, a1, a2, a3\n");
  check_bool "lw not mem form" true (fails "lw a0, a1, 4\n");
  check_bool "mexit takes none" true (fails "mexit a0\n");
  check_bool "wmr wants mreg first" true (fails "wmr t0, m1\n")

let test_mentry_duplicate_rejected () =
  check_bool "dup entry" true
    (fails ".mentry 0, a\n.mentry 0, b\na: mexit\nb: mexit\n")

let test_case_sensitivity () =
  (* Mnemonics and registers are lowercase-only, like most RISC
     assemblers. *)
  check_bool "upper mnemonic rejected" true (fails "ADDI a0, a0, 1\n");
  check_bool "upper register rejected" true (fails "addi A0, a0, 1\n")

let test_disasm_range () =
  let img = ok "addi a0, zero, 1\nebreak\n" in
  let read addr =
    match Image.word_at img addr with Some w -> w | None -> 0
  in
  let text = Disasm.range ~read ~start:0 ~count:2 in
  check_bool "first line" true (Tutil.contains text "addi a0, zero, 1");
  check_bool "second line" true (Tutil.contains text "ebreak");
  check_bool "undecodable rendered as .word" true
    (Tutil.contains (Disasm.word 0xFFFFFFFF) ".word")

let test_listing_format () =
  let img = ok "li a0, 0x12345678\n" in
  let text = Format.asprintf "%a" Image.pp_listing img in
  check_bool "two entries for big li" true
    (Tutil.contains text "lui" && Tutil.contains text "addi");
  check_int "listing count" 2 (List.length img.Image.listing)

let test_image_accessors () =
  let img = ok ".org 0x10\n.word 1\n.org 0x20\n.word 2\n" in
  check_int "two chunks" 2 (List.length img.Image.chunks);
  check_int "size sums chunks" 8 (Image.size img);
  Alcotest.(check (option (pair int int))) "bounds span" (Some (0x10, 0x24))
    (Some (match Image.bounds img with Some b -> b | None -> (0, 0)));
  check_bool "hole reads None" true (Image.word_at img 0x18 = None);
  check_bool "byte in hole None" true (Image.byte_at img 0x19 = None)

let () =
  Alcotest.run "asm-edge"
    [
      ( "layout",
        [ Alcotest.test_case "empty" `Quick test_empty_and_comment_only;
          Alcotest.test_case "align/space" `Quick test_align_and_space_math;
          Alcotest.test_case "equ chains" `Quick test_equ_chains;
          Alcotest.test_case "multi labels" `Quick test_multiple_labels_one_line;
          Alcotest.test_case "image accessors" `Quick test_image_accessors ] );
      ( "ranges",
        [ Alcotest.test_case "branch" `Quick test_branch_range_limits;
          Alcotest.test_case "jal" `Quick test_jal_range_limits ] );
      ( "operands",
        [ Alcotest.test_case "menter expr" `Quick test_menter_expression_operand;
          Alcotest.test_case "displacement math" `Quick
            test_store_negative_displacement_label_math;
          Alcotest.test_case "arity" `Quick test_operand_arity_errors;
          Alcotest.test_case "case" `Quick test_case_sensitivity ] );
      ( "directives",
        [ Alcotest.test_case "errors" `Quick test_directive_errors;
          Alcotest.test_case "mentry dup" `Quick test_mentry_duplicate_rejected ] );
      ( "disasm",
        [ Alcotest.test_case "range" `Quick test_disasm_range;
          Alcotest.test_case "listing" `Quick test_listing_format ] );
    ]
