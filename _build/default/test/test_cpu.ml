(* Pipeline tests: functional correctness of the base ISA under
   hazards and forwarding, cycle-accounting sanity, Metal mode
   transitions, exceptions, interrupts and interception. *)

open Metal_cpu

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot ?(config = Config.default) ?mcode src =
  let m = Machine.create ~config () in
  let img = Metal_asm.Asm.assemble_exn src in
  (match Machine.load_image m img with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match mcode with
   | None -> ()
   | Some msrc ->
     let mimg = Metal_asm.Asm.assemble_exn msrc in
     begin match Machine.load_mcode m mimg with
     | Ok () -> ()
     | Error e -> Alcotest.fail e
     end);
  let entry =
    match Metal_asm.Image.find_symbol img "start" with
    | Some a -> a
    | None ->
      (match Metal_asm.Image.bounds img with Some (lo, _) -> lo | None -> 0)
  in
  Machine.set_pc m entry;
  m

let run_to_ebreak ?(max_cycles = 100_000) m =
  match Pipeline.run m ~max_cycles with
  | Some (Machine.Halt_ebreak _) -> ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "cycle budget exhausted"

let reg m r =
  match Reg.of_string r with
  | Some idx -> Machine.get_reg m idx
  | None -> Alcotest.fail ("bad reg " ^ r)

let exec ?config ?mcode src =
  let m = boot ?config ?mcode src in
  run_to_ebreak m;
  m

(* ------------------------------------------------------------------ *)
(* Base ISA functional tests *)

let test_arith () =
  let m = exec "li a0, 5\nli a1, 7\nadd a2, a0, a1\nsub a3, a0, a1\nebreak\n" in
  check_int "add" 12 (reg m "a2");
  check_int "sub wraps" 0xFFFFFFFE (reg m "a3")

let test_logic_shift () =
  let m =
    exec
      "li a0, 0xF0F0\nli a1, 0x0FF0\nand a2, a0, a1\nor a3, a0, a1\n\
       xor a4, a0, a1\nslli a5, a0, 4\nsrli a6, a0, 4\nli t0, -16\n\
       srai a7, t0, 2\nebreak\n"
  in
  check_int "and" 0x0F0 (reg m "a2");
  check_int "or" 0xFFF0 (reg m "a3");
  check_int "xor" 0xFF00 (reg m "a4");
  check_int "slli" 0xF0F00 (reg m "a5");
  check_int "srli" 0xF0F (reg m "a6");
  check_int "srai" (Word.of_int (-4)) (reg m "a7")

let test_slt () =
  let m =
    exec
      "li a0, -1\nli a1, 1\nslt a2, a0, a1\nsltu a3, a0, a1\n\
       slti a4, a0, 0\nsltiu a5, a1, 2\nebreak\n"
  in
  check_int "slt signed" 1 (reg m "a2");
  check_int "sltu unsigned" 0 (reg m "a3");
  check_int "slti" 1 (reg m "a4");
  check_int "sltiu" 1 (reg m "a5")

let test_lui_auipc () =
  let m = exec ".org 0x100\nlui a0, 0x12345\nauipc a1, 1\nebreak\n" in
  check_int "lui" 0x12345000 (reg m "a0");
  check_int "auipc" (0x104 + 0x1000) (reg m "a1")

let test_x0_immutable () =
  let m = exec "li t0, 99\nadd zero, t0, t0\naddi a0, zero, 3\nebreak\n" in
  check_int "x0 stays zero" 3 (reg m "a0")

let test_memory () =
  let m =
    exec
      "li t0, 0x200\nli t1, 0x11223344\nsw t1, 0(t0)\nlw a0, 0(t0)\n\
       lb a1, 3(t0)\nlbu a2, 3(t0)\nlh a3, 0(t0)\nlhu a4, 0(t0)\n\
       sb t1, 8(t0)\nlw a5, 8(t0)\nebreak\n"
  in
  check_int "lw" 0x11223344 (reg m "a0");
  check_int "lb sign" 0x11 (reg m "a1");
  check_int "lbu" 0x11 (reg m "a2");
  check_int "lh" 0x3344 (reg m "a3");
  check_int "lhu" 0x3344 (reg m "a4");
  check_int "sb" 0x44 (reg m "a5")

let test_load_sign_extension () =
  let m =
    exec
      "li t0, 0x200\nli t1, 0x80FF\nsh t1, 0(t0)\nlh a0, 0(t0)\n\
       lhu a1, 0(t0)\nlb a2, 1(t0)\nebreak\n"
  in
  check_int "lh negative" (Word.of_int (-32513)) (reg m "a0");
  check_int "lhu" 0x80FF (reg m "a1");
  check_int "lb negative" (Word.of_int (-128)) (reg m "a2")

let test_branches () =
  let m =
    exec
      "li a0, 0\nli t0, 5\nli t1, 5\nbeq t0, t1, L1\nli a0, 99\n\
       L1: addi a0, a0, 1\nbne t0, t1, L2\naddi a0, a0, 2\n\
       L2: li t2, -1\nbltu t2, t0, L3\naddi a0, a0, 4\n\
       L3: blt t2, t0, L4\nli a0, 99\nL4: ebreak\n"
  in
  (* beq taken (+1), bne not taken (+2), bltu not taken since -1 is
     huge unsigned (+4), blt taken. *)
  check_int "branch semantics" 7 (reg m "a0")

let test_loop_sum () =
  let m =
    exec
      "li a0, 0\nli t0, 10\nloop:\nadd a0, a0, t0\naddi t0, t0, -1\n\
       bnez t0, loop\nebreak\n"
  in
  check_int "sum 1..10" 55 (reg m "a0")

let test_call_ret () =
  let m =
    exec
      "li sp, 0x1000\nli a0, 3\ncall double\ncall double\nebreak\n\
       double:\nadd a0, a0, a0\nret\n"
  in
  check_int "nested calls" 12 (reg m "a0")

let test_jalr_link () =
  let m =
    exec "la t0, target\njalr s0, 0(t0)\nebreak\ntarget:\nauipc s1, 0\njr s0\n"
  in
  check_int "link value" 12 (reg m "s0");
  check_int "landed" 16 (reg m "s1");
  check_int "returned via ra-less ret?" 0 0

(* Forwarding and hazards *)

let test_forwarding_chain () =
  let m =
    exec "li a0, 1\nadd a1, a0, a0\nadd a2, a1, a1\nadd a3, a2, a2\nebreak\n"
  in
  check_int "back-to-back deps" 8 (reg m "a3")

let test_load_use () =
  let m =
    exec
      "li t0, 0x300\nli t1, 41\nsw t1, 0(t0)\nlw a0, 0(t0)\naddi a0, a0, 1\nebreak\n"
  in
  check_int "load-use value" 42 (reg m "a0");
  check_bool "stall recorded" true (m.Machine.stats.Stats.load_use_stalls >= 1)

let test_store_data_forwarding () =
  let m =
    exec
      "li t0, 0x300\nli t1, 7\nadd t2, t1, t1\nsw t2, 0(t0)\nlw a0, 0(t0)\nebreak\n"
  in
  check_int "forwarded store data" 14 (reg m "a0")

(* Cycle accounting sanity: a linear program of N instructions retires
   in about N + pipeline-depth cycles. *)
let test_ipc_linear () =
  let body = String.concat "" (List.init 50 (fun _ -> "addi a0, a0, 1\n")) in
  let m = exec (body ^ "ebreak\n") in
  check_int "linear result" 50 (reg m "a0");
  let c = m.Machine.stats.Stats.cycles in
  check_bool (Printf.sprintf "cycles ~ N (%d)" c) true (c >= 51 && c <= 60)

let test_branch_penalty () =
  (* Each taken branch costs 2 bubbles; compare a taken-branch loop
     with the linear equivalent. *)
  let m =
    exec "li t0, 20\nloop: addi t0, t0, -1\nbnez t0, loop\nebreak\n"
  in
  let c = m.Machine.stats.Stats.cycles in
  (* 20 iterations * (2 instr + 2 flush) + overhead *)
  check_bool (Printf.sprintf "taken branch cost (%d)" c) true
    (c >= 80 && c <= 95)

(* ------------------------------------------------------------------ *)
(* Halts and exceptions *)

let test_unhandled_fault_halts () =
  let m = boot "li t0, 0x10000000\nlw a0, 0(t0)\nebreak\n" in
  (match Pipeline.run m ~max_cycles:1000 with
   | Some (Machine.Halt_fault { cause = Cause.Access_fault; _ }) -> ()
   | Some h -> Alcotest.fail (Machine.halted_to_string h)
   | None -> Alcotest.fail "no halt")

let test_misaligned_load_halts () =
  let m = boot "li t0, 0x201\nlw a0, 0(t0)\nebreak\n" in
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_fault { cause = Cause.Misaligned_load; info; _ }) ->
    check_int "tval" 0x201 info
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

let test_illegal_instruction_halts () =
  let m = boot ".word 0xFFFFFFFF\nebreak\n" in
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_fault { cause = Cause.Illegal_instruction; _ }) -> ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

let test_metal_instr_illegal_in_normal_mode () =
  let m = boot "physld a0, (zero)\nebreak\n" in
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_fault { cause = Cause.Illegal_instruction; _ }) -> ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

let test_ecall_unhandled () =
  let m = boot "ecall\nebreak\n" in
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_fault { cause = Cause.Ecall; pc; _ }) ->
    check_int "epc" 0 pc
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

(* Precision: an older faulting instruction must squash a younger one
   that would otherwise write state. *)
let test_precise_exception () =
  let m =
    boot "li t0, 0x10000000\nli a0, 1\nlw t1, 0(t0)\nli a0, 2\nebreak\n"
  in
  (match Pipeline.run m ~max_cycles:1000 with
   | Some (Machine.Halt_fault { cause = Cause.Access_fault; _ }) -> ()
   | Some h -> Alcotest.fail (Machine.halted_to_string h)
   | None -> Alcotest.fail "no halt");
  check_int "younger write squashed" 1 (reg m "a0")

(* ------------------------------------------------------------------ *)
(* Metal mode basics *)

let incr_mroutine = ".mentry 0, incr\nincr:\naddi a0, a0, 1\nmexit\n"

let test_menter_roundtrip () =
  let m = exec ~mcode:incr_mroutine "li a0, 10\nmenter 0\naddi a0, a0, 100\nebreak\n" in
  check_int "mroutine ran and returned" 111 (reg m "a0");
  check_int "menter count" 1 m.Machine.stats.Stats.menters;
  check_int "mexit count" 1 m.Machine.stats.Stats.mexits

let test_menter_m31 () =
  let mcode = ".mentry 0, f\nf:\nrmr a1, m31\nmexit\n" in
  let m = exec ~mcode ".org 0x40\nstart: menter 0\nebreak\n" in
  check_int "m31 = return address" 0x44 (reg m "a1")

let test_mregs_persist () =
  let mcode =
    ".mentry 0, put\n.mentry 1, get\n\
     put: wmr m5, a0\nmexit\n\
     get: rmr a1, m5\nmexit\n"
  in
  let m = exec ~mcode "li a0, 0x77\nmenter 0\nli a0, 0\nmenter 1\nebreak\n" in
  check_int "state carried across invocations" 0x77 (reg m "a1")

let test_mram_data_segment () =
  let mcode =
    ".mentry 0, save\n.mentry 1, load\n\
     save: mst a0, 16(zero)\nmexit\n\
     load: mld a1, 16(zero)\nmexit\n"
  in
  let m = exec ~mcode "li a0, 1234\nmenter 0\nmenter 1\nebreak\n" in
  check_int "mram data" 1234 (reg m "a1")

let test_menter_invalid_entry () =
  let m = boot ~mcode:incr_mroutine "menter 9\nebreak\n" in
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_fault { cause = Cause.Illegal_instruction; _ }) -> ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

let test_fast_transition_cost () =
  (* A no-op mroutine call should cost only a handful of cycles with
     fast replacement (paper: "virtually zero overhead"). *)
  let mcode = ".mentry 0, f\nf: mexit\n" in
  let baseline = exec "nop\nnop\nnop\nnop\nebreak\n" in
  let with_call = exec ~mcode "nop\nnop\nmenter 0\nnop\nnop\nebreak\n" in
  let delta =
    with_call.Machine.stats.Stats.cycles - baseline.Machine.stats.Stats.cycles
  in
  check_bool (Printf.sprintf "fast no-op call costs %d cycles" delta) true
    (delta <= 4)

let test_trap_transition_cost () =
  let mcode = ".mentry 0, f\nf: mexit\n" in
  let config = { Config.default with Config.transition = Config.Trap_flush } in
  let baseline = exec ~config "nop\nnop\nnop\nnop\nebreak\n" in
  let with_call = exec ~config ~mcode "nop\nnop\nmenter 0\nnop\nnop\nebreak\n" in
  let delta =
    with_call.Machine.stats.Stats.cycles - baseline.Machine.stats.Stats.cycles
  in
  check_bool (Printf.sprintf "trap no-op call costs %d cycles" delta) true
    (delta >= 6)

let test_palcode_slower_than_fast () =
  let mcode = ".mentry 0, f\nf: nop\nnop\nmexit\n" in
  let prog = "menter 0\nebreak\n" in
  let fast = exec ~mcode prog in
  let pal = exec ~config:Config.palcode ~mcode prog in
  check_bool "palcode slower" true
    (pal.Machine.stats.Stats.cycles > fast.Machine.stats.Stats.cycles + 5)

let test_metal_fault_fatal () =
  let mcode = ".mentry 0, f\nf: lw a0, 0(t6)\nmexit\n" in
  let m = boot ~mcode "li t6, 0x10000000\nmenter 0\nebreak\n" in
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_metal_fault { cause = Cause.Access_fault; _ }) -> ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

let test_mroutine_ebreak_halts () =
  let mcode = ".mentry 0, f\nf: ebreak\n" in
  let m = boot ~mcode "menter 0\nebreak\n" in
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_ebreak { metal = true; _ }) -> ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

let test_gpr_shared_with_metal () =
  (* mroutines operate on the caller's GPRs directly (Figure 2 uses t0
     and ra). *)
  let mcode = ".mentry 0, f\nf:\nslli a0, a0, 4\nori a0, a0, 5\nmexit\n" in
  let m = exec ~mcode "li a0, 1\nmenter 0\nebreak\n" in
  check_int "shared gprs" 0x15 (reg m "a0")

let test_gprr_gprw () =
  let mcode =
    ".mentry 0, f\nf:\nli t0, 11\ngprr t1, t0\naddi t1, t1, 1\n\
     li t2, 12\ngprw t2, t1\nmexit\n"
  in
  (* reads a1 (x11), writes a1+1 into a2 (x12). *)
  let m = exec ~mcode "li a1, 41\nmenter 0\nnop\nnop\nebreak\n" in
  check_int "indexed gpr write" 42 (reg m "a2")

(* ------------------------------------------------------------------ *)
(* Exception delegation to mroutines *)

let test_ecall_delegated () =
  let mcode =
    ".mentry 3, handler\nhandler:\nrmr t0, m31\naddi t0, t0, 4\n\
     wmr m31, t0\nli a0, 777\nmexit\n"
  in
  let m = boot ~mcode "ecall\nmv a1, a0\nebreak\n" in
  Machine.install_handler m Cause.Ecall ~entry:3;
  run_to_ebreak m;
  check_int "handler result visible after sret" 777 (reg m "a1");
  check_int "exceptions counted" 1 m.Machine.stats.Stats.exceptions

let test_exception_retry () =
  (* The handler fixes the situation and retries the faulting load by
     returning to m31 unmodified. *)
  let mcode =
    ".mentry 1, fix\nfix:\n\
     # redirect the load target to a valid address\n\
     li t6, 0x400\nli t5, 4242\nsw t5, 0(t6)\nmexit\n"
  in
  (* t6 starts out-of-range; handler rewrites t6 then retries. *)
  let m =
    boot ~mcode "li t6, 0x10000000\nlw a0, 0(t6)\nebreak\n"
  in
  Machine.install_handler m Cause.Access_fault ~entry:1;
  run_to_ebreak m;
  check_int "retried load sees fix" 4242 (reg m "a0")

let test_interrupt_delivery () =
  let mcode =
    ".mentry 2, tick\ntick:\n\
     addi s0, s0, 1\n\
     li t6, 1\nmcsrw int_pending, t6\n\
     mexit\n"
  in
  let m =
    boot ~mcode
      "li s0, 0\nli t0, 200\nloop: addi t0, t0, -1\nbnez t0, loop\nebreak\n"
  in
  Machine.install_interrupt_handler m ~irq:0 ~entry:2;
  Machine.ctrl_write m Csr.int_enable 1;
  Machine.ctrl_write m Csr.timer_cmp 50;
  run_to_ebreak m;
  check_int "timer handler ran once" 1 (reg m "s0");
  check_int "interrupts counted" 1 m.Machine.stats.Stats.interrupts

let test_interrupt_not_in_metal () =
  (* While an mroutine runs, interrupts stay pending (mroutines are
     non-interruptible). *)
  let mcode =
    ".mentry 0, spin\nspin:\nli t0, 100\nsl: addi t0, t0, -1\nbnez t0, sl\nmexit\n\
     .mentry 2, tick\ntick:\naddi s0, s0, 1\nli t6, 1\nmcsrw int_pending, t6\n\
     rmr s1, m31\nmexit\n"
  in
  let m = boot ~mcode "li s0, 0\nmenter 0\nmv s2, s0\nebreak\n" in
  Machine.install_interrupt_handler m ~irq:0 ~entry:2;
  Machine.ctrl_write m Csr.int_enable 1;
  Machine.ctrl_write m Csr.timer_cmp 20;
  run_to_ebreak m;
  check_int "handler ran after mroutine" 1 (reg m "s0")

(* ------------------------------------------------------------------ *)
(* Instruction interception *)

let test_intercept_store () =
  (* Count intercepted stores, then perform them via physst. *)
  let mcode =
    ".mentry 4, st\nst:\n\
     addi s10, s10, 1      # count\n\
     rmr t0, m28           # address\n\
     rmr t1, m27           # value\n\
     physst t1, 0(t0)\n\
     rmr t2, m31\naddi t2, t2, 4\nwmr m31, t2\n\
     mexit\n"
  in
  let m =
    boot ~mcode
      "li t3, 0x500\nli t4, 9\nsw t4, 0(t3)\nsw t4, 4(t3)\nlw a0, 0(t3)\n\
       lw a1, 4(t3)\nebreak\n"
  in
  (* enable interception of stores via control registers *)
  Machine.ctrl_write m (Csr.icept_handler (Icept.code Icept.Store_class)) 5;
  Machine.ctrl_write m Csr.icept_enable 1;
  run_to_ebreak m;
  check_int "stores executed by handler" 9 (reg m "a0");
  check_int "second store" 9 (reg m "a1");
  check_int "count" 2 (reg m "s10");
  check_int "intercepts counted" 2 m.Machine.stats.Stats.intercepts

let test_intercept_load () =
  (* Emulate loads: return effective address + 1000 instead of memory
     contents, using gprw with the published rd index. *)
  let mcode =
    ".mentry 4, ld\nld:\n\
     rmr t0, m28\n\
     addi t0, t0, 1000\n\
     rmr t1, m26\n\
     gprw t1, t0\n\
     rmr t2, m31\naddi t2, t2, 4\nwmr m31, t2\n\
     mexit\n"
  in
  let m = boot ~mcode "li t3, 0x500\nlw a0, 0(t3)\nlw a1, 8(t3)\nebreak\n" in
  Machine.ctrl_write m (Csr.icept_handler (Icept.code Icept.Load_class)) 5;
  Machine.ctrl_write m Csr.icept_enable 1;
  run_to_ebreak m;
  check_int "emulated load 1" (0x500 + 1000) (reg m "a0");
  check_int "emulated load 2" (0x508 + 1000) (reg m "a1")

let test_intercept_toggle () =
  (* iceptset/iceptclr from inside an mroutine switch interception
     dynamically (the STM use case). *)
  let mcode =
    ".mentry 0, on\non:\nli t0, 1\nli t1, 4\niceptset t0, t1\n\
     li t2, 1\nmcsrw icept_enable, t2\nmexit\n\
     .mentry 1, off\noff:\nli t0, 1\niceptclr t0\nmexit\n\
     .mentry 4, st\nst:\naddi s10, s10, 1\nrmr t0, m28\nrmr t1, m27\n\
     physst t1, 0(t0)\nrmr t2, m31\naddi t2, t2, 4\nwmr m31, t2\nmexit\n"
  in
  let m =
    exec ~mcode
      "li t3, 0x500\nli t4, 1\n\
       sw t4, 0(t3)       # not intercepted\n\
       menter 0\n\
       sw t4, 4(t3)       # intercepted\n\
       menter 1\n\
       sw t4, 8(t3)       # not intercepted\n\
       ebreak\n"
  in
  check_int "exactly one intercepted" 1 (reg m "s10")

let () =
  Alcotest.run "cpu"
    [
      ( "base-isa",
        [ Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "logic/shift" `Quick test_logic_shift;
          Alcotest.test_case "slt" `Quick test_slt;
          Alcotest.test_case "lui/auipc" `Quick test_lui_auipc;
          Alcotest.test_case "x0" `Quick test_x0_immutable;
          Alcotest.test_case "memory" `Quick test_memory;
          Alcotest.test_case "sign extension" `Quick test_load_sign_extension;
          Alcotest.test_case "branches" `Quick test_branches;
          Alcotest.test_case "loop" `Quick test_loop_sum;
          Alcotest.test_case "call/ret" `Quick test_call_ret;
          Alcotest.test_case "jalr link" `Quick test_jalr_link ] );
      ( "pipeline",
        [ Alcotest.test_case "forwarding" `Quick test_forwarding_chain;
          Alcotest.test_case "load-use" `Quick test_load_use;
          Alcotest.test_case "store forwarding" `Quick test_store_data_forwarding;
          Alcotest.test_case "ipc linear" `Quick test_ipc_linear;
          Alcotest.test_case "branch penalty" `Quick test_branch_penalty ] );
      ( "faults",
        [ Alcotest.test_case "unhandled fault" `Quick test_unhandled_fault_halts;
          Alcotest.test_case "misaligned" `Quick test_misaligned_load_halts;
          Alcotest.test_case "illegal" `Quick test_illegal_instruction_halts;
          Alcotest.test_case "metal-only in normal" `Quick
            test_metal_instr_illegal_in_normal_mode;
          Alcotest.test_case "ecall unhandled" `Quick test_ecall_unhandled;
          Alcotest.test_case "precision" `Quick test_precise_exception ] );
      ( "metal",
        [ Alcotest.test_case "roundtrip" `Quick test_menter_roundtrip;
          Alcotest.test_case "m31" `Quick test_menter_m31;
          Alcotest.test_case "mreg persistence" `Quick test_mregs_persist;
          Alcotest.test_case "mram data" `Quick test_mram_data_segment;
          Alcotest.test_case "invalid entry" `Quick test_menter_invalid_entry;
          Alcotest.test_case "fast cost" `Quick test_fast_transition_cost;
          Alcotest.test_case "trap cost" `Quick test_trap_transition_cost;
          Alcotest.test_case "palcode cost" `Quick test_palcode_slower_than_fast;
          Alcotest.test_case "metal fault fatal" `Quick test_metal_fault_fatal;
          Alcotest.test_case "mroutine ebreak" `Quick test_mroutine_ebreak_halts;
          Alcotest.test_case "shared gprs" `Quick test_gpr_shared_with_metal;
          Alcotest.test_case "gprr/gprw" `Quick test_gprr_gprw ] );
      ( "delegation",
        [ Alcotest.test_case "ecall" `Quick test_ecall_delegated;
          Alcotest.test_case "retry" `Quick test_exception_retry;
          Alcotest.test_case "interrupt" `Quick test_interrupt_delivery;
          Alcotest.test_case "non-interruptible" `Quick test_interrupt_not_in_metal ] );
      ( "interception",
        [ Alcotest.test_case "store" `Quick test_intercept_store;
          Alcotest.test_case "load" `Quick test_intercept_load;
          Alcotest.test_case "toggle" `Quick test_intercept_toggle ] );
    ]
