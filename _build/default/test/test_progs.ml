(* Tests for the mroutine application library: privilege levels,
   custom page tables, STM, user-level interrupts, isolation, shadow
   stack, capabilities, enclaves and nested Metal. *)

open Metal_cpu
open Metal_progs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let machine ?(config = Config.default) () = Machine.create ~config ()

let load_program m ?origin src =
  let img = Metal_asm.Asm.assemble_exn ?origin src in
  (match Machine.load_image m img with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  img

let run_to_ebreak ?(max_cycles = 1_000_000) m =
  match Pipeline.run m ~max_cycles with
  | Some (Machine.Halt_ebreak { pc; _ }) -> pc
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "cycle budget exhausted"

let reg m name =
  match Reg.of_string name with
  | Some r -> Machine.get_reg m r
  | None -> Alcotest.fail ("bad register " ^ name)

let expect_ok = function
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ *)
(* Privilege levels (Figure 2) *)

(* A miniature kernel: syscall table at 0x2000, handlers at 0x3000,
   fault entry at 0x3F00 (an ebreak the tests recognize). *)
let fault_entry = 0x3F00

let priv_config =
  { Privilege.syscall_table = 0x2000; nsyscalls = 2; kernel_pkeys = 0;
    user_pkeys = 0; fault_entry }

let priv_kernel =
  Printf.sprintf
    {|.org 0x2000
syscall_table:
    .word sys_answer
    .word sys_double
.org 0x3000
sys_answer:
    li a0, 123
    menter %d
sys_double:
    add a0, a1, a1
    menter %d
.org 0x3F00
fault_stub:
    ebreak
|}
    Layout.kexit Layout.kexit

let priv_machine () =
  let m = machine () in
  ignore (load_program m priv_kernel);
  expect_ok (Privilege.install m priv_config);
  m

let test_figure2_assembles () =
  let listing = Privilege.figure2_listing () in
  check_bool "has kenter words" true (String.length listing > 200)

let test_syscall_roundtrip () =
  let m = priv_machine () in
  ignore
    (load_program m
       "li a0, 0\nmenter 0\nmv s0, a0\nli a0, 1\nli a1, 21\nmenter 0\n\
        mv s1, a0\nebreak\n");
  Machine.set_pc m 0;
  Machine.set_mreg m Reg.Mconv.privilege 1;
  ignore (run_to_ebreak m);
  check_int "syscall 0 result" 123 (reg m "s0");
  check_int "syscall 1 result" 42 (reg m "s1");
  check_int "back in user mode" 1 (Machine.get_mreg m Reg.Mconv.privilege)

let test_privilege_level_during_syscall () =
  (* While the kernel handler runs, m0 must be 0.  sys_double reads it
     indirectly: give the kernel a handler that stores m0... the
     kernel cannot read m0 (normal mode); instead verify via ktlbw:
     calling it from the kernel succeeds, from user it faults. *)
  let m = priv_machine () in
  ignore
    (load_program m ~origin:0x100
       "# user: call ktlbw directly -> privilege violation\n\
        li a0, 0x5014\nli a1, 0x6006\nmenter 2\nebreak\n");
  Machine.set_pc m 0x100;
  Machine.set_mreg m Reg.Mconv.privilege 1;
  let pc = run_to_ebreak m in
  check_int "diverted to fault entry" fault_entry pc;
  check_bool "tlb untouched" true
    (Metal_hw.Tlb.entries m.Machine.tlb = [])

let test_ktlbw_from_kernel () =
  let m = priv_machine () in
  ignore
    (load_program m ~origin:0x100
       "li a0, 0x5014\nli a1, 0x6006\nmenter 2\nebreak\n");
  Machine.set_pc m 0x100;
  Machine.set_mreg m Reg.Mconv.privilege 0;
  let pc = run_to_ebreak m in
  check_bool "no violation" true (pc <> fault_entry);
  check_int "tlb filled" 1 (List.length (Metal_hw.Tlb.entries m.Machine.tlb))

let test_bad_syscall_number () =
  let m = priv_machine () in
  ignore (load_program m ~origin:0x100 "li a0, 99\nmenter 0\nebreak\n");
  Machine.set_pc m 0x100;
  let pc = run_to_ebreak m in
  check_int "bad syscall diverted" fault_entry pc

let test_exc_trampoline () =
  let m = priv_machine () in
  Machine.install_handler m Cause.Illegal_instruction
    ~entry:Layout.exc_trampoline;
  ignore (load_program m ~origin:0x100 ".word 0xFFFFFFFF\nebreak\n");
  Machine.set_pc m 0x100;
  let pc = run_to_ebreak m in
  check_int "delivered to kernel" fault_entry pc;
  check_int "epc published" 0x100 (reg m "t5");
  check_int "cause published" (Cause.code Cause.Illegal_instruction)
    (reg m "t6")

(* ------------------------------------------------------------------ *)
(* Custom page tables *)

open Metal_kernel

let pt_machine ?(os_fault_entry = 0) () =
  let m = machine () in
  expect_ok (Pagetable.install m { Pagetable.os_fault_entry });
  let alloc = Frame_alloc.create ~base:0x100000 ~limit:0x200000 in
  let mem = Metal_hw.Bus.memory m.Machine.bus in
  let pt = Page_table.create ~mem ~alloc in
  Pagetable.set_root m (Page_table.root pt);
  Machine.ctrl_write m Csr.pt_root (Page_table.root pt);
  (m, pt, alloc)

let identity_map pt ~base ~pages perms =
  for i = 0 to pages - 1 do
    match
      Page_table.map pt
        ~vaddr:(base + (i * 4096))
        ~paddr:(base + (i * 4096))
        perms
    with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done

let test_walker_basic () =
  let m, pt, _ = pt_machine () in
  identity_map pt ~base:0 ~pages:8 Page_table.rwx;
  (* A data page mapped at a non-identity address. *)
  (match Page_table.map pt ~vaddr:0x40000 ~paddr:0x9000 Page_table.rw with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Machine.write_word m 0x9010 777;
  ignore
    (load_program m
       "li t0, 0x40000\nlw a0, 16(t0)\nli t1, 888\nsw t1, 20(t0)\n\
        lw a1, 20(t0)\nebreak\n");
  Machine.set_pc m 0;
  Machine.ctrl_write m Csr.paging 1;
  ignore (run_to_ebreak m);
  check_int "read through mapping" 777 (reg m "a0");
  check_int "write through mapping" 888 (reg m "a1");
  check_int "physical backing updated" 888 (Machine.read_word m 0x9014);
  check_bool "walker took misses" true
    (m.Machine.stats.Stats.tlb_misses >= 2);
  check_bool "mroutine walks, not hw" true (m.Machine.stats.Stats.hw_walks = 0)

let test_walker_matches_hw_walker () =
  (* The same page table must give identical translations through the
     mcode walker and the hardware walker. *)
  let run_with ~hw =
    let m, pt, _ = pt_machine () in
    identity_map pt ~base:0 ~pages:8 Page_table.rwx;
    (match Page_table.map pt ~vaddr:0x73000 ~paddr:0xA000 Page_table.rw with
     | Ok () -> ()
     | Error e -> Alcotest.fail e);
    Machine.write_word m 0xA020 4242;
    ignore (load_program m "li t0, 0x73000\nlw a0, 32(t0)\nebreak\n");
    Machine.set_pc m 0;
    if hw then Machine.ctrl_write m Csr.hw_walker 1;
    Machine.ctrl_write m Csr.paging 1;
    ignore (run_to_ebreak m);
    (reg m "a0", m.Machine.stats.Stats.hw_walks)
  in
  let v_mcode, walks_mcode = run_with ~hw:false in
  let v_hw, walks_hw = run_with ~hw:true in
  check_int "same value via mcode" 4242 v_mcode;
  check_int "same value via hw" 4242 v_hw;
  check_int "no hw walks in mcode mode" 0 walks_mcode;
  check_bool "hw walks in hw mode" true (walks_hw > 0)

let test_walker_protection () =
  let m, pt, _ = pt_machine () in
  identity_map pt ~base:0 ~pages:8 Page_table.rwx;
  (match Page_table.map pt ~vaddr:0x50000 ~paddr:0xB000 Page_table.ro with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  ignore
    (load_program m "li t0, 0x50000\nli t1, 1\nsw t1, 0(t0)\nebreak\n");
  Machine.set_pc m 0;
  Machine.ctrl_write m Csr.paging 1;
  (* os_fault_entry = 0: walker stops the machine on a true fault. *)
  (match Pipeline.run m ~max_cycles:100_000 with
   | Some (Machine.Halt_ebreak { metal = true; _ }) -> ()
   | Some h -> Alcotest.fail (Machine.halted_to_string h)
   | None -> Alcotest.fail "no halt")

let test_walker_delivers_to_os () =
  let m, pt, _ = pt_machine ~os_fault_entry:0x700 () in
  identity_map pt ~base:0 ~pages:8 Page_table.rwx;
  ignore
    (load_program m ~origin:0
       "li t0, 0x66000\nlw a0, 0(t0)\nebreak\n.org 0x700\nos_fault:\nebreak\n");
  Machine.set_pc m 0;
  Machine.ctrl_write m Csr.paging 1;
  let pc = run_to_ebreak m in
  check_int "landed in the OS handler" 0x700 pc;
  check_int "vaddr published" 0x66000 (reg m "t6")

let test_walker_superpage () =
  let m, pt, _ = pt_machine () in
  identity_map pt ~base:0 ~pages:8 Page_table.rwx;
  (match
     Page_table.map_superpage pt ~vaddr:0x400000 ~paddr:0x000000
       Page_table.rw
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Machine.write_word m 0x123000 31337;
  ignore
    (load_program m "li t0, 0x523000\nlw a0, 0(t0)\nebreak\n");
  Machine.set_pc m 0;
  Machine.ctrl_write m Csr.paging 1;
  ignore (run_to_ebreak m);
  check_int "superpage translation" 31337 (reg m "a0")

let test_walker_preserves_context () =
  (* The fault can hit in the middle of live t-register use; the
     handler must not clobber anything. *)
  let m, pt, _ = pt_machine () in
  identity_map pt ~base:0 ~pages:8 Page_table.rwx;
  (match Page_table.map pt ~vaddr:0x40000 ~paddr:0x9000 Page_table.rw with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  ignore
    (load_program m
       "li t1, 11\nli t2, 22\nli t3, 33\nli t4, 44\nli t5, 55\nli t6, 66\n\
        li t0, 0x40000\nsw t1, 0(t0)\nlw a0, 0(t0)\n\
        add a1, t1, t2\nadd a2, t3, t4\nadd a3, t5, t6\nebreak\n");
  Machine.set_pc m 0;
  Machine.ctrl_write m Csr.paging 1;
  ignore (run_to_ebreak m);
  check_int "load after fill" 11 (reg m "a0");
  check_int "t1+t2 preserved" 33 (reg m "a1");
  check_int "t3+t4 preserved" 77 (reg m "a2");
  check_int "t5+t6 preserved" 121 (reg m "a3")

(* ------------------------------------------------------------------ *)
(* STM *)

let stm_machine () =
  let m = machine () in
  expect_ok (Stm.install m);
  m

(* A transaction that moves 100 from account A (0x8000) to B (0x8004). *)
let stm_transfer =
  Printf.sprintf
    {|start:
    li s0, 0x8000
retry:
    la a0, retry
    menter %d          # tstart
    lw t0, 0(s0)
    addi t0, t0, -100
    sw t0, 0(s0)
    lw t1, 4(s0)
    addi t1, t1, 100
    sw t1, 4(s0)
    menter %d          # tcommit
    bnez a0, done
    j retry
done:
    lw s1, 0(s0)
    lw s2, 4(s0)
    ebreak
|}
    Layout.tstart Layout.tcommit

let test_stm_commit () =
  let m = stm_machine () in
  Machine.write_word m 0x8000 500;
  Machine.write_word m 0x8004 300;
  ignore (load_program m ~origin:0 stm_transfer);
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "A debited" 400 (reg m "s1");
  check_int "B credited" 400 (reg m "s2");
  let c = Stm.counters m in
  check_int "one commit" 1 c.Stm.commits;
  check_int "no aborts" 0 c.Stm.aborts;
  check_bool "reads recorded" true (c.Stm.reads >= 2);
  check_bool "writes recorded" true (c.Stm.writes >= 2)

let test_stm_buffering_invisible_until_commit () =
  (* Uncommitted writes must not be visible in memory. *)
  let m = stm_machine () in
  Machine.write_word m 0x8000 1;
  ignore
    (load_program m
       (Printf.sprintf
          "la a0, retry\nretry:\nmenter %d\nli t0, 0x8000\nli t1, 9\n\
           sw t1, 0(t0)\nlw s0, 0(t0)\nebreak\n"
          Layout.tstart));
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "read own write" 9 (reg m "s0");
  check_int "memory untouched before commit" 1 (Machine.read_word m 0x8000)

let test_stm_conflict_aborts_and_retries () =
  (* A DMA agent (standing in for another core) bumps a read-set
     address after the transaction reads it; the first commit must
     fail, the retry must succeed. *)
  let m = stm_machine () in
  Machine.write_word m 0x8000 500;
  Machine.write_word m 0x8004 300;
  let mem = Metal_hw.Bus.memory m.Machine.bus in
  let dma =
    Metal_hw.Devices.Dma.create ~mem ~writes:[ (120, 0x8000, 501) ]
  in
  Metal_hw.Bus.attach m.Machine.bus (Metal_hw.Devices.Dma.device dma);
  ignore (load_program m ~origin:0 stm_transfer);
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  let c = Stm.counters m in
  check_bool "at least one abort" true (c.Stm.aborts >= 1);
  check_int "exactly one commit" 1 c.Stm.commits;
  check_int "final A" 401 (reg m "s1");
  check_int "final B" 400 (reg m "s2")

let test_stm_explicit_abort () =
  let m = stm_machine () in
  Machine.write_word m 0x8000 7;
  ignore
    (load_program m
       (Printf.sprintf
          "li s0, 0x8000\nla a0, after\nmenter %d\nli t0, 0x8000\nli t1, 99\n\
           sw t1, 0(t0)\nmenter %d\nafter:\nlw s1, 0(s0)\nebreak\n"
          Layout.tstart Layout.tabort));
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "write discarded" 7 (reg m "s1");
  let c = Stm.counters m in
  check_int "abort counted" 1 c.Stm.aborts;
  check_int "no commit" 0 c.Stm.commits

let test_stm_load_into_temp_register () =
  (* The interception fixup path: a transactional load whose
     destination is one of the handler's parked temporaries. *)
  let m = stm_machine () in
  Machine.write_word m 0x8000 1234;
  ignore
    (load_program m
       (Printf.sprintf
          "la a0, r\nr:\nmenter %d\nli s0, 0x8000\nlw t5, 0(s0)\n\
           mv s1, t5\nmenter %d\nebreak\n"
          Layout.tstart Layout.tcommit));
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "load into t5 works" 1234 (reg m "s1")

(* ------------------------------------------------------------------ *)
(* User-level interrupts *)

let test_uintr_delivery () =
  let m = machine () in
  let nic =
    Metal_hw.Devices.Nic.create ~base:(Metal_hw.Bus.mmio_base + 0x100)
      ~intc:m.Machine.intc
      ~schedule:(Metal_hw.Devices.Nic.Periodic { start = 200; period = 150;
                                                 count = 3 })
  in
  Metal_hw.Bus.attach m.Machine.bus (Metal_hw.Devices.Nic.device nic);
  expect_ok (Uintr.install m);
  ignore
    (load_program m
       (Printf.sprintf
          {|start:
    la a0, handler
    menter %d             # register the handler
    li t0, 1
    li t1, %d
    sw t0, 0x10(t1)       # enable the NIC rx interrupt
loop:
    addi s0, s0, 1        # background work
    li t2, 3
    bne s1, t2, loop
    ebreak

# User-level interrupt handler: drain the queue (t0/t1 are free).
handler:
    li t0, %d
drain:
    lw t1, 0(t0)          # rx count
    beqz t1, hdone
    sw zero, 0xc(t0)      # pop
    addi s1, s1, 1        # packets handled
    j drain
hdone:
    menter %d             # uintr return
|}
          Layout.uintr_setup
          (Metal_hw.Bus.mmio_base + 0x100)
          (Metal_hw.Bus.mmio_base + 0x100)
          Layout.uintr_ret));
  Machine.set_pc m 0;
  ignore (run_to_ebreak ~max_cycles:100_000 m);
  check_int "all packets handled in user mode" 3 (reg m "s1");
  check_bool "background work continued" true (reg m "s0" > 50);
  let c = Uintr.counters m in
  check_bool "deliveries counted" true (c.Uintr.delivered >= 1);
  check_int "all delivered by nic" 3 (Metal_hw.Devices.Nic.delivered nic)

(* ------------------------------------------------------------------ *)
(* In-process isolation *)

let isolation_setup () =
  let m = machine () in
  let alloc = Frame_alloc.create ~base:0x100000 ~limit:0x200000 in
  let mem = Metal_hw.Bus.memory m.Machine.bus in
  let pt = Page_table.create ~mem ~alloc in
  (* Identity-map code low pages (pkey 0) and a secret page with
     pkey 2 at 0x50000 -> 0xC000. *)
  identity_map pt ~base:0 ~pages:8 Page_table.rwx;
  (match
     Page_table.map pt ~vaddr:0x50000 ~paddr:0xC000 ~pkey:2 Page_table.rw
   with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  expect_ok (Pagetable.install m { Pagetable.os_fault_entry = 0 });
  Pagetable.set_root m (Page_table.root pt);
  Machine.ctrl_write m Csr.paging 1;
  m

(* pkey 2 read/write-disable bits: 2*2=4 (read), 5 (write). *)
let closed_perms = 0x30
let open_perms = 0

let test_isolation_blocks_outside () =
  let m = isolation_setup () in
  expect_ok
    (Isolation.install m
       { Isolation.gate_target = 0x600; open_perms; closed_perms });
  ignore
    (load_program m "li t0, 0x50000\nlw a0, 0(t0)\nebreak\n");
  Machine.set_pc m 0;
  (match Pipeline.run m ~max_cycles:100_000 with
   | Some (Machine.Halt_fault { cause = Cause.Pkey_violation_load; _ }) -> ()
   | Some h -> Alcotest.fail (Machine.halted_to_string h)
   | None -> Alcotest.fail "no halt")

let test_isolation_gate_allows () =
  let m = isolation_setup () in
  expect_ok
    (Isolation.install m
       { Isolation.gate_target = 0x600; open_perms; closed_perms });
  Machine.write_word m 0xC000 0x5EC12E7;
  ignore
    (load_program m
       (Printf.sprintf
          {|start:
    menter %d              # enter the trusted domain
    mv s0, a0              # secret read inside
    li t0, 0x50000
    lw s1, 0(t0)           # outside again: must fault
    ebreak
.org 0x600
trusted:
    li t0, 0x50000
    lw a0, 0(t0)           # allowed inside the domain
    menter %d              # leave
|}
          Layout.dom_enter Layout.dom_exit));
  Machine.set_pc m 0;
  (match Pipeline.run m ~max_cycles:100_000 with
   | Some (Machine.Halt_fault { cause = Cause.Pkey_violation_load; _ }) -> ()
   | Some h -> Alcotest.fail (Machine.halted_to_string h)
   | None -> Alcotest.fail "no halt");
  check_int "secret read inside the domain" 0x5EC12E7 (reg m "s0")

(* ------------------------------------------------------------------ *)
(* Shadow stack *)

let ss_program body =
  Printf.sprintf
    {|start:
    li sp, 0x8000
    menter %d            # ss_enable
%s
    menter %d            # ss_disable
    ebreak

double:
    add a0, a0, a0
    ret

apply_twice:
    addi sp, sp, -4
    sw ra, 0(sp)
    call double
    call double
    lw ra, 0(sp)
    addi sp, sp, 4
    ret
|}
    Layout.ss_enable body Layout.ss_disable

let test_shadowstack_transparent () =
  let m = machine () in
  expect_ok (Shadowstack.install m);
  ignore
    (load_program m
       (ss_program "    li a0, 3\n    call apply_twice\n    mv s0, a0\n"));
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "nested calls still work" 12 (reg m "s0");
  let c = Shadowstack.counters m in
  check_int "no violations" 0 c.Shadowstack.violations;
  check_int "balanced" 0 c.Shadowstack.depth

let test_shadowstack_catches_corruption () =
  let m = machine () in
  expect_ok (Shadowstack.install m);
  ignore
    (load_program m
       (Printf.sprintf
          {|start:
    li sp, 0x8000
    menter %d            # ss_enable
    li a0, 3
    call victim
    menter %d            # ss_disable
    ebreak

# victim overwrites its saved return address and returns through it.
victim:
    addi sp, sp, -4
    sw ra, 0(sp)
    la t3, evil
    sw t3, 0(sp)
    lw ra, 0(sp)
    addi sp, sp, 4
    ret

evil:
    li s0, 666
    ebreak
|}
          Layout.ss_enable Layout.ss_disable));
  Machine.set_pc m 0;
  (match Pipeline.run m ~max_cycles:100_000 with
   | Some (Machine.Halt_ebreak { metal = true; _ }) -> ()
   | Some h -> Alcotest.fail (Machine.halted_to_string h)
   | None -> Alcotest.fail "no halt");
  let c = Shadowstack.counters m in
  check_int "violation recorded" 1 c.Shadowstack.violations;
  check_bool "evil code never ran" true (reg m "s0" <> 666)

(* ------------------------------------------------------------------ *)
(* Capabilities *)

let test_capabilities () =
  let m = machine () in
  expect_ok (Capability.install m);
  Machine.write_word m 0x8000 11;
  Machine.write_word m 0x8004 22;
  ignore
    (load_program m
       (Printf.sprintf
          {|start:
    li a0, 0x8000
    li a1, 8
    li a2, 3
    menter %d           # create rw capability over 8 bytes
    mv s0, a0           # capability index
    li a1, 4
    menter %d           # load offset 4
    mv s1, a0
    mv a0, s0
    li a1, 0
    li a2, 99
    menter %d           # store offset 0
    mv s2, a0
    mv a0, s0
    li a1, 8
    menter %d           # load offset 8: out of bounds
    mv s3, a0
    mv s4, a1
    mv a0, s0
    menter %d           # revoke
    mv a0, s0
    li a1, 0
    menter %d           # load after revoke
    mv s5, a0
    mv s6, a1
    ebreak
|}
          Layout.cap_create Layout.cap_load Layout.cap_store Layout.cap_load
          Layout.cap_revoke Layout.cap_load));
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "cap index" 0 (reg m "s0");
  check_int "load via cap" 22 (reg m "s1");
  check_int "store ok" 0 (reg m "s2");
  check_int "stored value" 99 (Machine.read_word m 0x8000);
  check_int "bounds error" 0xFFFFFFFF (reg m "s3");
  check_int "bounds code" 3 (reg m "s4");
  check_int "revoked error" 0xFFFFFFFF (reg m "s5");
  check_int "revoked code" 2 (reg m "s6")

let test_capability_perms () =
  let m = machine () in
  expect_ok (Capability.install m);
  ignore
    (load_program m
       (Printf.sprintf
          "li a0, 0x8000\nli a1, 4\nli a2, 1\nmenter %d\n\
           li a1, 0\nli a2, 5\nmenter %d\nmv s0, a0\nmv s1, a1\nebreak\n"
          Layout.cap_create Layout.cap_store));
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "write denied on read-only cap" 0xFFFFFFFF (reg m "s0");
  check_int "perm error code" 4 (reg m "s1")

(* ------------------------------------------------------------------ *)
(* Enclaves *)

let enclave_region = 0x6000
let enclave_code =
  "enclave_entry:\n li t0, 0x7777\n mv a0, t0\n menter 49\n"

let test_enclave_enter_exit () =
  let m = machine () in
  ignore (load_program m ~origin:enclave_region enclave_code);
  expect_ok
    (Enclave.install m
       { Enclave.entry = enclave_region; region_base = enclave_region;
         region_size = 16; open_perms = 0; closed_perms = 0 });
  ignore
    (load_program m
       (Printf.sprintf "menter %d\nmv s0, a0\nebreak\n" Layout.enc_enter));
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "enclave result" 0x7777 (reg m "s0")

let test_enclave_attestation () =
  let m = machine () in
  ignore (load_program m ~origin:enclave_region enclave_code);
  expect_ok
    (Enclave.install m
       { Enclave.entry = enclave_region; region_base = enclave_region;
         region_size = 16; open_perms = 0; closed_perms = 0 });
  (* Tamper with the enclave code after measurement. *)
  Machine.write_word m enclave_region 0x0;
  ignore
    (load_program m
       (Printf.sprintf "li s0, 0\nmenter %d\nmv s0, a0\nebreak\n"
          Layout.enc_enter));
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "tampered enclave refused" 0xFFFFFFFF (reg m "s0")

(* ------------------------------------------------------------------ *)
(* Nested Metal *)

let test_nested_interception () =
  let m = machine () in
  expect_ok (Nested.install m ~remap_offset:0x1000);
  Machine.ctrl_write m
    (Csr.icept_handler (Icept.code Icept.Store_class))
    (Layout.nest_store + 1);
  Machine.ctrl_write m Csr.icept_enable 1;
  ignore
    (load_program m
       "li t3, 0x8000\nli t4, 55\nsw t4, 0(t3)\nsw t4, 4(t3)\nebreak\n");
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  let c = Nested.counters m in
  check_int "L1 saw both stores" 2 c.Nested.l1_intercepts;
  check_int "L0 performed both" 2 c.Nested.l0_stores;
  check_int "store remapped" 55 (Machine.read_word m 0x9000);
  check_int "second store remapped" 55 (Machine.read_word m 0x9004);
  check_int "original address untouched" 0 (Machine.read_word m 0x8000)

(* ------------------------------------------------------------------ *)
(* Virtualization: nested page tables *)

let guest_base = 0x100000
let guest_size = 0x40000

(* Build a guest page table by hand: tables live at guest-physical
   addresses inside the window; their PTEs hold guest-physical
   values. *)
let build_guest_tables m =
  let gw gpa v = Machine.write_word m (guest_base + gpa) v in
  (* root at gpa 0x1000, one L2 table at gpa 0x2000 *)
  gw 0x1000 (Pte.table ~pa:0x2000);
  (* identity-map guest VA [0, 0x8000) to the same gpa, rwx *)
  for i = 0 to 7 do
    gw (0x2000 + (4 * i))
      (Pte.leaf ~pa:(i * 0x1000) ~r:true ~w:true ~x:true ())
  done;
  (* guest VA 0x10000 -> gpa 0x3000, rw *)
  gw (0x2000 + (4 * 0x10)) (Pte.leaf ~pa:0x3000 ~r:true ~w:true ~x:false ());
  (* guest VA 0x11000 -> a gpa outside the window: a VMM violation *)
  gw (0x2000 + (4 * 0x11))
    (Pte.leaf ~pa:0x80000000 ~r:true ~w:true ~x:false ())

let vmm_machine () =
  let m = machine () in
  expect_ok
    (Vmm.install m
       { Vmm.guest_base; guest_size; vmm_fault_entry = 0 });
  Vmm.set_guest_root m 0x1000;
  build_guest_tables m;
  m

let test_vmm_nested_translation () =
  let m = vmm_machine () in
  (* guest program at guest VA 0 = gpa 0 = host guest_base *)
  ignore
    (load_program m ~origin:guest_base
       "li t0, 0x10000\nlw a0, 0(t0)\nli t1, 77\nsw t1, 4(t0)\n\
        lw a1, 4(t0)\nebreak\n");
  (* the secret cell at guest VA 0x10000 = gpa 0x3000 = host 0x103000 *)
  Machine.write_word m (guest_base + 0x3000) 4321;
  Machine.set_pc m guest_base;
  (* Hmm: guest VA 0 must equal where we set pc; pc is virtual. *)
  Machine.set_pc m 0;
  Machine.ctrl_write m Csr.paging 1;
  ignore (run_to_ebreak m);
  check_int "nested read" 4321 (reg m "a0");
  check_int "nested write visible to guest" 77 (reg m "a1");
  check_int "landed in host memory" 77
    (Machine.read_word m (guest_base + 0x3004));
  let c = Vmm.counters m in
  check_bool "walks counted" true (c.Vmm.nested_walks >= 2);
  check_int "no violations" 0 c.Vmm.vmm_violations

let test_vmm_violation () =
  let m = vmm_machine () in
  ignore
    (load_program m ~origin:guest_base
       "li t0, 0x11000\nlw a0, 0(t0)\nebreak\n");
  Machine.set_pc m 0;
  Machine.ctrl_write m Csr.paging 1;
  (match Pipeline.run m ~max_cycles:100_000 with
   | Some (Machine.Halt_ebreak { metal = true; _ }) -> ()
   | Some h -> Alcotest.fail (Machine.halted_to_string h)
   | None -> Alcotest.fail "no halt");
  let c = Vmm.counters m in
  check_int "violation recorded" 1 c.Vmm.vmm_violations

let test_vmm_guest_fault_delivered () =
  let m = machine () in
  expect_ok
    (Vmm.install m
       { Vmm.guest_base; guest_size; vmm_fault_entry = 0x700 });
  Vmm.set_guest_root m 0x1000;
  build_guest_tables m;
  ignore
    (load_program m ~origin:guest_base
       "li t0, 0x66000\nlw a0, 0(t0)\nebreak\n");
  (* The hypervisor's entry must be reachable under the current
     translation; inject it at guest VA 0x700 (identity-mapped to
     gpa 0x700 = host guest_base + 0x700). *)
  ignore
    (load_program m ~origin:(guest_base + 0x700) "vmm_handler:\nebreak\n");
  Machine.set_pc m 0;
  Machine.ctrl_write m Csr.paging 1;
  let pc = run_to_ebreak m in
  check_int "delivered to the hypervisor" 0x700 pc;
  check_int "guest vaddr published" 0x66000 (reg m "t6");
  let c = Vmm.counters m in
  check_int "not a window violation" 0 c.Vmm.vmm_violations

let () =
  Alcotest.run "progs"
    [
      ( "privilege",
        [ Alcotest.test_case "figure2" `Quick test_figure2_assembles;
          Alcotest.test_case "syscall roundtrip" `Quick test_syscall_roundtrip;
          Alcotest.test_case "privileged mroutine check" `Quick
            test_privilege_level_during_syscall;
          Alcotest.test_case "ktlbw from kernel" `Quick test_ktlbw_from_kernel;
          Alcotest.test_case "bad syscall" `Quick test_bad_syscall_number;
          Alcotest.test_case "exception trampoline" `Quick test_exc_trampoline ] );
      ( "pagetable",
        [ Alcotest.test_case "walker basic" `Quick test_walker_basic;
          Alcotest.test_case "matches hw walker" `Quick
            test_walker_matches_hw_walker;
          Alcotest.test_case "protection" `Quick test_walker_protection;
          Alcotest.test_case "os delivery" `Quick test_walker_delivers_to_os;
          Alcotest.test_case "superpage" `Quick test_walker_superpage;
          Alcotest.test_case "context preserved" `Quick
            test_walker_preserves_context ] );
      ( "stm",
        [ Alcotest.test_case "commit" `Quick test_stm_commit;
          Alcotest.test_case "buffering" `Quick
            test_stm_buffering_invisible_until_commit;
          Alcotest.test_case "conflict/retry" `Quick
            test_stm_conflict_aborts_and_retries;
          Alcotest.test_case "explicit abort" `Quick test_stm_explicit_abort;
          Alcotest.test_case "load into temp" `Quick
            test_stm_load_into_temp_register ] );
      ( "uintr", [ Alcotest.test_case "delivery" `Quick test_uintr_delivery ] );
      ( "isolation",
        [ Alcotest.test_case "blocked outside" `Quick
            test_isolation_blocks_outside;
          Alcotest.test_case "gate allows" `Quick test_isolation_gate_allows ] );
      ( "shadowstack",
        [ Alcotest.test_case "transparent" `Quick test_shadowstack_transparent;
          Alcotest.test_case "catches corruption" `Quick
            test_shadowstack_catches_corruption ] );
      ( "capability",
        [ Alcotest.test_case "lifecycle" `Quick test_capabilities;
          Alcotest.test_case "perms" `Quick test_capability_perms ] );
      ( "enclave",
        [ Alcotest.test_case "enter/exit" `Quick test_enclave_enter_exit;
          Alcotest.test_case "attestation" `Quick test_enclave_attestation ] );
      ( "nested",
        [ Alcotest.test_case "two layers" `Quick test_nested_interception ] );
      ( "vmm",
        [ Alcotest.test_case "nested translation" `Quick
            test_vmm_nested_translation;
          Alcotest.test_case "window violation" `Quick test_vmm_violation;
          Alcotest.test_case "guest fault to hypervisor" `Quick
            test_vmm_guest_fault_delivered ] );
    ]
