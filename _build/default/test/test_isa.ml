(* ISA unit and property tests: word arithmetic, register naming,
   encode/decode round trips over the whole instruction space. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Word *)

let test_word_masking () =
  check_int "of_int truncates" 0 (Word.of_int 0x1_0000_0000);
  check_int "of_int keeps low bits" 0xDEADBEEF (Word.of_int 0xDEADBEEF);
  check_int "negative wraps" 0xFFFFFFFF (Word.of_int (-1))

let test_word_signed () =
  check_int "to_signed positive" 5 (Word.to_signed 5);
  check_int "to_signed negative" (-1) (Word.to_signed 0xFFFFFFFF);
  check_int "to_signed min" (-0x80000000) (Word.to_signed 0x80000000)

let test_word_arith () =
  check_int "add wraps" 0 (Word.add 0xFFFFFFFF 1);
  check_int "sub wraps" 0xFFFFFFFF (Word.sub 0 1);
  check_int "mul wraps" ((0x10001 * 0x10001) land 0xFFFFFFFF)
    (Word.mul 0x10001 0x10001)

let test_word_shifts () =
  check_int "sll" 0x10 (Word.shift_left 1 4);
  check_int "sll masks amount" 2 (Word.shift_left 1 33);
  check_int "srl" 0x7FFFFFFF (Word.shift_right_logical 0xFFFFFFFE 1);
  check_int "sra sign" 0xFFFFFFFF (Word.shift_right_arith 0x80000000 31);
  check_int "sra positive" 0x20000000 (Word.shift_right_arith 0x40000000 1)

let test_word_compare () =
  check_bool "lt_signed" true (Word.lt_signed 0xFFFFFFFF 0);
  check_bool "lt_unsigned" false (Word.lt_unsigned 0xFFFFFFFF 0);
  check_bool "ge_signed" true (Word.ge_signed 0 0xFFFFFFFF);
  check_bool "ge_unsigned eq" true (Word.ge_unsigned 7 7)

let test_word_bits () =
  check_int "bits" 0xAB (Word.bits ~hi:15 ~lo:8 0xCCABCC);
  check_int "bit set" 1 (Word.bit 31 0x80000000);
  check_int "bit clear" 0 (Word.bit 0 0x80000000);
  check_int "sign_extend 12" (-1) (Word.sign_extend ~width:12 0xFFF);
  check_int "sign_extend keeps positive" 5 (Word.sign_extend ~width:12 5);
  check_bool "fits_signed edge" true (Word.fits_signed ~width:12 (-2048));
  check_bool "fits_signed over" false (Word.fits_signed ~width:12 2048);
  check_bool "fits_unsigned" true (Word.fits_unsigned ~width:5 31);
  check_bool "fits_unsigned over" false (Word.fits_unsigned ~width:5 32)

(* ------------------------------------------------------------------ *)
(* Reg *)

let test_reg_names () =
  check_str "a0" "a0" (Reg.to_string Reg.a0);
  check_str "x10" "x10" (Reg.to_xname Reg.a0);
  Alcotest.(check (option int)) "parse abi" (Some 10) (Reg.of_string "a0");
  Alcotest.(check (option int)) "parse xN" (Some 31) (Reg.of_string "x31");
  Alcotest.(check (option int)) "fp alias" (Some 8) (Reg.of_string "fp");
  Alcotest.(check (option int)) "reject x32" None (Reg.of_string "x32");
  Alcotest.(check (option int)) "reject junk" None (Reg.of_string "q7");
  Alcotest.(check (option int)) "reject x007" None (Reg.of_string "x007")

let test_mreg_names () =
  check_str "m31" "m31" (Reg.mreg_to_string 31);
  Alcotest.(check (option int)) "parse m0" (Some 0) (Reg.mreg_of_string "m0");
  Alcotest.(check (option int)) "reject m32" None (Reg.mreg_of_string "m32")

(* ------------------------------------------------------------------ *)
(* Cause / Csr / Icept *)

let test_cause_codes () =
  List.iter
    (fun c ->
       match Cause.of_code (Cause.code c) with
       | Some c' -> check_bool (Cause.to_string c) true (c = c')
       | None -> Alcotest.fail "of_code roundtrip")
    Cause.all;
  check_bool "interrupt code flagged" true
    (Cause.is_interrupt_code (Cause.interrupt_code 3));
  check_bool "intercept code flagged" true
    (Cause.is_intercept_code (Cause.intercept_code 1));
  check_bool "exception code unflagged" false
    (Cause.is_interrupt_code (Cause.code Cause.Ecall))

let test_csr_names () =
  check_str "paging" "paging" (Csr.name Csr.paging);
  Alcotest.(check (option int)) "of_name paging" (Some Csr.paging)
    (Csr.of_name "paging");
  Alcotest.(check (option int)) "of_name exc" (Some (Csr.exc_handler Cause.Ecall))
    (Csr.of_name "exc_handler[ecall]");
  Alcotest.(check (option int)) "of_name int" (Some (Csr.int_handler 3))
    (Csr.of_name "int_handler[3]");
  check_str "roundtrip exc name" "exc_handler[ecall]"
    (Csr.name (Csr.exc_handler Cause.Ecall));
  check_bool "cycle read-only" true (Csr.is_read_only Csr.cycle);
  check_bool "paging writable" false (Csr.is_read_only Csr.paging)

let test_icept_classify () =
  let open Instr in
  let is cls i =
    match Icept.classify i with
    | Some c -> c = cls
    | None -> false
  in
  check_bool "load" true
    (is Icept.Load_class (Load { width = Word; unsigned = false; rd = 1;
                                 rs1 = 2; offset = 0 }));
  check_bool "store" true
    (is Icept.Store_class (Store { width = Word; rs2 = 1; rs1 = 2; offset = 0 }));
  check_bool "ecall" true (is Icept.System_class Ecall);
  check_bool "alu not interceptable" true
    (Icept.classify (Op { op = Add; rd = 1; rs1 = 2; rs2 = 3 }) = None);
  List.iter
    (fun c ->
       match Icept.of_code (Icept.code c) with
       | Some c' -> check_bool "icept code roundtrip" true (c = c')
       | None -> Alcotest.fail "icept of_code")
    Icept.all

(* ------------------------------------------------------------------ *)
(* Encode / decode: directed cases *)

let roundtrip i =
  match Encode.encode i with
  | Error e -> Alcotest.fail (Printf.sprintf "encode %s: %s" (Instr.to_string i) e)
  | Ok w ->
    begin match Decode.decode w with
    | Error e ->
      Alcotest.fail
        (Printf.sprintf "decode %s (%s): %s" (Word.to_hex w)
           (Instr.to_string i) e)
    | Ok i' ->
      Alcotest.(check string) "roundtrip" (Instr.to_string i)
        (Instr.to_string i')
    end

let test_encode_known_words () =
  (* Cross-checked against the RISC-V spec: addi x1, x0, 1. *)
  check_int "addi x1,x0,1" 0x00100093
    (Encode.encode_exn (Instr.Op_imm { op = Instr.Add; rd = 1; rs1 = 0; imm = 1 }));
  check_int "ecall" 0x00000073 (Encode.encode_exn Instr.Ecall);
  check_int "ebreak" 0x00100073 (Encode.encode_exn Instr.Ebreak);
  check_int "lui x5, 0x12345" 0x123452B7
    (Encode.encode_exn (Instr.Lui { rd = 5; imm = 0x12345 }));
  check_int "jal x0, 0" 0x0000006F
    (Encode.encode_exn (Instr.Jal { rd = 0; offset = 0 }));
  check_int "sw x2, 8(x1)" 0x0020A423
    (Encode.encode_exn
       (Instr.Store { width = Instr.Word; rs2 = 2; rs1 = 1; offset = 8 }))

let test_roundtrip_directed () =
  let open Instr in
  List.iter roundtrip
    [ Lui { rd = 1; imm = 0xFFFFF };
      Auipc { rd = 31; imm = 0 };
      Jal { rd = 1; offset = -2048 };
      Jal { rd = 0; offset = 1048574 };
      Jalr { rd = 1; rs1 = 2; offset = -1 };
      Branch { cond = Beq; rs1 = 1; rs2 = 2; offset = -4096 };
      Branch { cond = Bgeu; rs1 = 31; rs2 = 30; offset = 4094 };
      Load { width = Byte; unsigned = true; rd = 7; rs1 = 8; offset = -2048 };
      Load { width = Half; unsigned = false; rd = 7; rs1 = 8; offset = 2047 };
      Store { width = Word; rs2 = 3; rs1 = 4; offset = -1 };
      Op_imm { op = Add; rd = 1; rs1 = 1; imm = -2048 };
      Op_imm { op = Sra; rd = 1; rs1 = 1; imm = 31 };
      Op_imm { op = Sll; rd = 1; rs1 = 1; imm = 0 };
      Op { op = Sub; rd = 1; rs1 = 2; rs2 = 3 };
      Op { op = And; rd = 31; rs1 = 31; rs2 = 31 };
      Ecall; Ebreak; Fence;
      Metal (Menter { entry = 63 });
      Metal Mexit;
      Metal (Rmr { rd = 5; mr = 31 });
      Metal (Wmr { mr = 0; rs1 = 6 });
      Metal (Mld { rd = 2; rs1 = 3; offset = 16 });
      Metal (Mst { rs2 = 2; rs1 = 3; offset = -4 });
      Metal (Feature (Physld { rd = 1; rs1 = 2; offset = 0 }));
      Metal (Feature (Physst { rs2 = 1; rs1 = 2; offset = 2047 }));
      Metal (Feature (Tlbw { rs1 = 1; rs2 = 2 }));
      Metal (Feature (Tlbflush { rs1 = 1 }));
      Metal (Feature (Tlbprobe { rd = 1; rs1 = 2 }));
      Metal (Feature (Gprr { rd = 1; rs1 = 2 }));
      Metal (Feature (Gprw { rs1 = 1; rs2 = 2 }));
      Metal (Feature (Iceptset { rs1 = 1; rs2 = 2 }));
      Metal (Feature (Iceptclr { rs1 = 1 }));
      Metal (Feature (Mcsrr { rd = 1; csr = Csr.cycle }));
      Metal (Feature (Mcsrw { csr = Csr.paging; rs1 = 1 })) ]

let test_encode_rejects () =
  let rejects i =
    match Encode.encode i with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should reject " ^ Instr.to_string i)
  in
  let open Instr in
  rejects (Jal { rd = 0; offset = 3 });
  rejects (Jal { rd = 0; offset = 1 lsl 21 });
  rejects (Branch { cond = Beq; rs1 = 0; rs2 = 0; offset = 4097 });
  rejects (Op_imm { op = Sub; rd = 1; rs1 = 1; imm = 0 });
  rejects (Op_imm { op = Sll; rd = 1; rs1 = 1; imm = 32 });
  rejects (Op_imm { op = Add; rd = 1; rs1 = 1; imm = 2048 });
  rejects (Lui { rd = 1; imm = 0x100000 });
  rejects (Metal (Menter { entry = 64 }));
  rejects (Metal (Rmr { rd = 1; mr = 32 }));
  rejects (Load { width = Word; unsigned = true; rd = 1; rs1 = 1; offset = 0 })

let test_decode_rejects () =
  let rejects w =
    match Decode.decode w with
    | Error _ -> ()
    | Ok i -> Alcotest.fail ("should reject: " ^ Instr.to_string i)
  in
  rejects 0x0;                (* opcode 0 *)
  rejects 0xFFFFFFFF;
  rejects 0x00002073;         (* SYSTEM funct3=2: unsupported csr op *)
  rejects 0x0000701B;         (* bogus opcode 0x1B *)
  rejects 0x40001013          (* slli with funct7=0x20 *)

(* ------------------------------------------------------------------ *)
(* Property: encode/decode roundtrip on generated instructions *)

let gen_reg = QCheck.Gen.int_range 0 31

let gen_instr : Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Instr in
  let gen_alu_imm_op = oneofl [ Add; Slt; Sltu; Xor; Or; And ] in
  let gen_alu_op = oneofl [ Add; Sub; Sll; Slt; Sltu; Xor; Srl; Sra; Or; And ] in
  let gen_shift_op = oneofl [ Sll; Srl; Sra ] in
  let gen_cond = oneofl [ Beq; Bne; Blt; Bge; Bltu; Bgeu ] in
  let gen_width = oneofl [ Byte; Half; Word ] in
  let imm12 = int_range (-2048) 2047 in
  let b_off = map (fun v -> v * 2) (int_range (-2048) 2047) in
  let j_off = map (fun v -> v * 2) (int_range (-524288) 524287) in
  oneof
    [ map2 (fun rd imm -> Lui { rd; imm }) gen_reg (int_range 0 0xFFFFF);
      map2 (fun rd imm -> Auipc { rd; imm }) gen_reg (int_range 0 0xFFFFF);
      map2 (fun rd offset -> Jal { rd; offset }) gen_reg j_off;
      map3 (fun rd rs1 offset -> Jalr { rd; rs1; offset }) gen_reg gen_reg imm12;
      map3
        (fun cond (rs1, rs2) offset -> Branch { cond; rs1; rs2; offset })
        gen_cond (pair gen_reg gen_reg) b_off;
      map3
        (fun (width, unsigned) (rd, rs1) offset ->
           let unsigned = if width = Word then false else unsigned in
           Load { width; unsigned; rd; rs1; offset })
        (pair gen_width bool) (pair gen_reg gen_reg) imm12;
      map3
        (fun width (rs2, rs1) offset -> Store { width; rs2; rs1; offset })
        gen_width (pair gen_reg gen_reg) imm12;
      map3 (fun op (rd, rs1) imm -> Op_imm { op; rd; rs1; imm }) gen_alu_imm_op
        (pair gen_reg gen_reg) imm12;
      map3 (fun op (rd, rs1) imm -> Op_imm { op; rd; rs1; imm }) gen_shift_op
        (pair gen_reg gen_reg) (int_range 0 31);
      map3 (fun op (rd, rs1) rs2 -> Op { op; rd; rs1; rs2 }) gen_alu_op
        (pair gen_reg gen_reg) gen_reg;
      oneofl [ Ecall; Ebreak; Fence ];
      map (fun entry -> Metal (Menter { entry })) (int_range 0 63);
      return (Metal Mexit);
      map2 (fun rd mr -> Metal (Rmr { rd; mr })) gen_reg (int_range 0 31);
      map2 (fun mr rs1 -> Metal (Wmr { mr; rs1 })) (int_range 0 31) gen_reg;
      map3 (fun rd rs1 offset -> Metal (Mld { rd; rs1; offset })) gen_reg
        gen_reg imm12;
      map3 (fun rs2 rs1 offset -> Metal (Mst { rs2; rs1; offset })) gen_reg
        gen_reg imm12;
      map3
        (fun rd rs1 offset -> Metal (Feature (Physld { rd; rs1; offset })))
        gen_reg gen_reg imm12;
      map2 (fun rs1 rs2 -> Metal (Feature (Tlbw { rs1; rs2 }))) gen_reg gen_reg;
      map2 (fun rd csr -> Metal (Feature (Mcsrr { rd; csr }))) gen_reg
        (int_range 0 (Csr.count - 1));
    ]

let arbitrary_instr =
  QCheck.make ~print:Instr.to_string gen_instr

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:4000 arbitrary_instr
    (fun i ->
       match Encode.encode i with
       | Error _ -> QCheck.Test.fail_report "generated unencodable instruction"
       | Ok w ->
         begin match Decode.decode w with
         | Error e -> QCheck.Test.fail_report ("decode failed: " ^ e)
         | Ok i' -> Instr.to_string i = Instr.to_string i'
         end)

let prop_reencode =
  QCheck.Test.make ~name:"decode/encode fixpoint on valid words" ~count:2000
    arbitrary_instr (fun i ->
      let w = Encode.encode_exn i in
      let i' = Decode.decode_exn w in
      Encode.encode_exn i' = w)

let prop_decode_total =
  QCheck.Test.make ~name:"decode never raises" ~count:10000
    QCheck.(make Gen.(map (fun x -> x land 0xFFFFFFFF) (int_bound max_int)))
    (fun w ->
       match Decode.decode w with
       | Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "isa"
    [
      ( "word",
        [ Alcotest.test_case "masking" `Quick test_word_masking;
          Alcotest.test_case "signed" `Quick test_word_signed;
          Alcotest.test_case "arith" `Quick test_word_arith;
          Alcotest.test_case "shifts" `Quick test_word_shifts;
          Alcotest.test_case "compare" `Quick test_word_compare;
          Alcotest.test_case "bits" `Quick test_word_bits ] );
      ( "reg",
        [ Alcotest.test_case "gpr names" `Quick test_reg_names;
          Alcotest.test_case "mreg names" `Quick test_mreg_names ] );
      ( "cause-csr-icept",
        [ Alcotest.test_case "cause codes" `Quick test_cause_codes;
          Alcotest.test_case "csr names" `Quick test_csr_names;
          Alcotest.test_case "icept classify" `Quick test_icept_classify ] );
      ( "encode",
        [ Alcotest.test_case "known words" `Quick test_encode_known_words;
          Alcotest.test_case "directed roundtrips" `Quick test_roundtrip_directed;
          Alcotest.test_case "encode rejects" `Quick test_encode_rejects;
          Alcotest.test_case "decode rejects" `Quick test_decode_rejects ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_reencode; prop_decode_total ] );
    ]
