(* Synthesis cost model tests: Table 2 shape and component algebra. *)

open Metal_synth

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_cost_monotone_in_size () =
  let cells k = (Cost_model.of_kind k).Cost_model.cells in
  check_bool "bigger sram costs more" true
    (cells (Component.Sram { bytes = 8192; ports = 1 })
     > cells (Component.Sram { bytes = 4096; ports = 1 }));
  check_bool "bigger regfile costs more" true
    (cells (Component.Regfile { entries = 64; width = 32; read_ports = 2;
                                write_ports = 1 })
     > cells (Component.Regfile { entries = 32; width = 32; read_ports = 2;
                                  write_ports = 1 }));
  check_bool "more read ports cost more" true
    (cells (Component.Regfile { entries = 32; width = 32; read_ports = 3;
                                write_ports = 1 })
     > cells (Component.Regfile { entries = 32; width = 32; read_ports = 1;
                                  write_ports = 1 }));
  check_bool "wider mux costs more" true
    (cells (Component.Mux { width = 32; ways = 4 })
     > cells (Component.Mux { width = 32; ways = 2 }))

let test_cost_algebra () =
  let a = { Cost_model.cells = 3; wires = 4 } in
  let b = { Cost_model.cells = 10; wires = 20 } in
  check_int "add cells" 13 (Cost_model.add a b).Cost_model.cells;
  check_int "scale wires" 12 (Cost_model.scale 3 a).Cost_model.wires;
  check_int "zero" 0 Cost_model.zero.Cost_model.cells;
  let comp = Component.make ~count:2 "x" (Component.Latch { bits = 10 }) in
  let one = Cost_model.of_kind (Component.Latch { bits = 10 }) in
  let two = Cost_model.of_component comp in
  check_bool "count multiplies (with calibration)" true
    (two.Cost_model.cells
     = int_of_float
         (float_of_int (2 * one.Cost_model.cells) *. Cost_model.calibration))

let test_table2_shape () =
  let t = Report.table2 () in
  (* The paper's Table 2: baseline 180,546 cells / 170,264 wires;
     Metal +14.3% cells, +16.1% wires.  The model must land close. *)
  let close ~pct target v =
    let diff = abs (v - target) in
    float_of_int diff /. float_of_int target < pct
  in
  check_bool
    (Printf.sprintf "baseline cells ~ paper (%d)" t.Report.cells.Report.baseline)
    true
    (close ~pct:0.05 180546 t.Report.cells.Report.baseline);
  check_bool
    (Printf.sprintf "baseline wires ~ paper (%d)" t.Report.wires.Report.baseline)
    true
    (close ~pct:0.05 170264 t.Report.wires.Report.baseline);
  check_bool
    (Printf.sprintf "cell delta in band (%.1f%%)" t.Report.cells.Report.change_pct)
    true
    (t.Report.cells.Report.change_pct > 10.0
     && t.Report.cells.Report.change_pct < 18.0);
  check_bool
    (Printf.sprintf "wire delta in band (%.1f%%)" t.Report.wires.Report.change_pct)
    true
    (t.Report.wires.Report.change_pct > 12.0
     && t.Report.wires.Report.change_pct < 20.0);
  check_bool "wires grow faster than cells (paper shape)" true
    (t.Report.wires.Report.change_pct > t.Report.cells.Report.change_pct)

let test_metal_additions_structure () =
  let cfg = Netlist.prototype in
  let base = Netlist.baseline cfg in
  let metal = Netlist.metal cfg in
  check_int "metal = baseline + additions"
    (List.length base + List.length (Netlist.metal_additions cfg))
    (List.length metal);
  let names = List.map (fun c -> c.Component.name) (Netlist.metal_additions cfg) in
  List.iter
    (fun needle ->
       check_bool needle true
         (List.exists (fun n -> n = needle) names))
    [ "mram code segment"; "mram data segment"; "metal register file";
      "metal mode control"; "intercept match table" ]

let test_bigger_mram_costs_more () =
  let small = Report.table2 ~config:Netlist.prototype () in
  let big =
    Report.table2
      ~config:{ Netlist.prototype with Netlist.mram_code_bytes = 8192 } ()
  in
  check_bool "larger MRAM raises the delta" true
    (big.Report.cells.Report.change_pct > small.Report.cells.Report.change_pct);
  check_int "baseline unchanged" small.Report.cells.Report.baseline
    big.Report.cells.Report.baseline

let test_report_rendering () =
  let t = Report.table2 () in
  let s = Report.to_string t in
  check_bool "has header" true (Tutil.contains s "Baseline");
  check_bool "has cells row" true (Tutil.contains s "Number of Cells");
  check_bool "has wires row" true (Tutil.contains s "Number of Wires");
  let b = Report.breakdown () in
  check_bool "breakdown lists mram" true (Tutil.contains b "mram code segment");
  check_bool "breakdown lists totals" true (Tutil.contains b "TOTAL")

let () =
  Alcotest.run "synth"
    [
      ( "cost-model",
        [ Alcotest.test_case "monotonicity" `Quick test_cost_monotone_in_size;
          Alcotest.test_case "algebra" `Quick test_cost_algebra ] );
      ( "table2",
        [ Alcotest.test_case "shape vs paper" `Quick test_table2_shape;
          Alcotest.test_case "netlist structure" `Quick
            test_metal_additions_structure;
          Alcotest.test_case "mram scaling" `Quick test_bigger_mram_costs_more;
          Alcotest.test_case "rendering" `Quick test_report_rendering ] );
    ]
