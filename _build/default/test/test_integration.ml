(* Integration tests: compositions of Metal extensions that must
   coexist in one MRAM — the scenario the paper's Section 3.5 sketches
   (many extensions resident, each in its static allocation). *)

open Metal_cpu
open Metal_progs
open Metal_kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let expect_ok = function
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let reg m name =
  match Reg.of_string name with
  | Some r -> Machine.get_reg m r
  | None -> Alcotest.fail ("bad reg " ^ name)

let load m ?origin src =
  match Metal_asm.Asm.assemble ?origin src with
  | Error e -> Alcotest.fail (Metal_asm.Asm.error_to_string e)
  | Ok img ->
    (match Machine.load_image m img with
     | Ok () -> ()
     | Error e -> Alcotest.fail e)

let run_to_ebreak ?(max_cycles = 2_000_000) m =
  match Pipeline.run m ~max_cycles with
  | Some (Machine.Halt_ebreak { pc; _ }) -> pc
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "cycle budget exhausted"

(* ------------------------------------------------------------------ *)
(* Every standard mroutine program loaded into one MRAM *)

let install_everything m =
  expect_ok
    (Privilege.install m
       { Privilege.syscall_table = 0x2000; nsyscalls = 1; kernel_pkeys = 0;
         user_pkeys = 0; fault_entry = 0x3F00 });
  expect_ok (Pagetable.install m { Pagetable.os_fault_entry = 0 });
  expect_ok (Stm.install m);
  expect_ok (Uintr.install m);
  expect_ok
    (Isolation.install m
       { Isolation.gate_target = 0x900; open_perms = 0; closed_perms = 0 });
  expect_ok (Shadowstack.install m);
  expect_ok (Capability.install m);
  expect_ok (Nested.install m ~remap_offset:0)

let test_all_coresident () =
  let m = Machine.create () in
  install_everything m;
  (* One program touching several resident extensions in sequence. *)
  load m
    (Printf.sprintf
       {|start:
    li sp, 0x7000
    # capability round trip
    li a0, 0x8000
    li a1, 8
    li a2, 3
    menter %d
    mv s0, a0              # index 0
    li a1, 0
    li a2, 1234
    menter %d              # store through the capability
    # isolation gate round trip
    menter %d
    # transaction
    la a0, retry
retry:
    menter %d
    li t0, 0x8000
    lw t1, 0(t0)
    addi t1, t1, 1
    sw t1, 0(t0)
    menter %d
    mv s2, a0
    li s4, 0x8000
    lw s3, 0(s4)
    ebreak
.org 0x900
trusted:
    li s1, 55
    menter %d
|}
       Layout.cap_create Layout.cap_store Layout.dom_enter Layout.tstart
       Layout.tcommit Layout.dom_exit);
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "capability index" 0 (reg m "s0");
  check_int "gate ran trusted code" 55 (reg m "s1");
  check_int "transaction committed" 1 (reg m "s2");
  check_int "tx result visible" 1235 (reg m "s3");
  check_int "cap store landed" 1235 (Machine.read_word m 0x8000)

(* ------------------------------------------------------------------ *)
(* STM and shadow stack composed: transactional code making protected
   calls; both interception users active at once. *)

let test_stm_with_shadowstack () =
  let m = Machine.create () in
  expect_ok (Stm.install m);
  expect_ok (Shadowstack.install m);
  Machine.write_word m 0x8000 10;
  load m
    (Printf.sprintf
       {|start:
    li sp, 0x7000
    menter %d              # shadow stack on
    la a0, retry
retry:
    menter %d              # transaction start
    li s2, 0x8000
    lw a0, 0(s2)
    call bump              # protected call inside the transaction
    sw a0, 0(s2)
    menter %d              # commit
    mv s0, a0
    menter %d              # shadow stack off
    lw s1, 0(s2)
    ebreak

bump:
    addi a0, a0, 7
    ret
|}
       Layout.ss_enable Layout.tstart Layout.tcommit Layout.ss_disable);
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "committed" 1 (reg m "s0");
  check_int "value through tx + call" 17 (reg m "s1");
  let ss = Shadowstack.counters m in
  check_int "no CFI violations" 0 ss.Shadowstack.violations;
  let stm = Stm.counters m in
  check_int "one commit" 1 stm.Stm.commits;
  (* The transactional load/store still went through the write log. *)
  check_bool "tx reads recorded" true (stm.Stm.reads >= 1)

(* ------------------------------------------------------------------ *)
(* A timer interrupt arriving mid-transaction: the handler runs (it is
   not interceptable — mroutines execute in Metal mode) and the
   transaction still commits. *)

let load_mcode_exn m src =
  match Metal_asm.Asm.assemble src with
  | Error e -> Alcotest.fail (Metal_asm.Asm.error_to_string e)
  | Ok img ->
    (match Machine.load_mcode m img with
     | Ok () -> ()
     | Error e -> Alcotest.fail e)

let test_interrupt_during_transaction () =
  let m = Machine.create () in
  expect_ok (Stm.install m);
  load_mcode_exn m
    ".org 0x1E00\n.mentry 59, tick\ntick:\nwmr m15, t6\nli t6, 1\n\
     mcsrw int_pending, t6\nrmr t6, m15\naddi s11, s11, 1\nmexit\n";
  Machine.install_interrupt_handler m ~irq:0 ~entry:59;
  Machine.ctrl_write m Csr.int_enable 1;
  Machine.write_word m 0x8000 5;
  load m
    (Printf.sprintf
       {|start:
    la a0, retry
retry:
    menter %d
    li s2, 0x8000
    li s3, 40              # long transaction body (fits the read set)
txloop:
    lw t1, 0(s2)
    addi t1, t1, 1
    sw t1, 0(s2)
    addi s3, s3, -1
    bnez s3, txloop
    menter %d
    mv s0, a0
    lw s1, 0(s2)
    ebreak
|}
       Layout.tstart Layout.tcommit);
  Machine.set_pc m 0;
  Machine.ctrl_write m Csr.timer_cmp 500;
  ignore (run_to_ebreak m);
  check_int "timer handler ran" 1 (reg m "s11");
  check_int "transaction still committed" 1 (reg m "s0");
  check_int "all 40 increments applied" 45 (reg m "s1");
  check_int "interrupt was taken" 1 m.Machine.stats.Stats.interrupts

(* ------------------------------------------------------------------ *)
(* Configuration invariance: the OS produces identical output under
   fast, trap-style and PALcode configurations (only timing differs). *)

let kernel_console_under config =
  let k =
    match Kernel.boot ~config () with
    | Ok k -> k
    | Error e -> Alcotest.fail e
  in
  let prog c =
    Printf.sprintf
      "li s0, 2\nloop:\nli a0, %d\nli a1, '%c'\nmenter 0\nli a0, %d\nmenter 0\n\
       addi s0, s0, -1\nbnez s0, loop\nli a0, %d\nli a1, 0\nmenter 0\n"
      Kernel.syscall_putchar c Kernel.syscall_yield Kernel.syscall_exit
  in
  (match Kernel.spawn k ~source:(prog 'x') with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  (match Kernel.spawn k ~source:(prog 'y') with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  (match Kernel.run k ~max_cycles:5_000_000 with
   | Kernel.All_done -> ()
   | Kernel.Deadlocked -> Alcotest.fail "deadlocked"
   | Kernel.Out_of_cycles -> Alcotest.fail "cycles"
   | Kernel.Machine_halted h -> Alcotest.fail (Machine.halted_to_string h));
  (Kernel.console_output k, k.Kernel.machine.Machine.stats.Stats.cycles)

let test_config_invariance () =
  let fast, fast_cycles = kernel_console_under Config.default in
  let trap, trap_cycles =
    kernel_console_under
      { Config.default with Config.transition = Config.Trap_flush }
  in
  let pal, pal_cycles = kernel_console_under Config.palcode in
  check_str "fast output" "xyxy" fast;
  check_str "trap output identical" fast trap;
  check_str "palcode output identical" fast pal;
  check_bool "trap slower than fast" true (trap_cycles > fast_cycles);
  check_bool "palcode slower than trap" true (pal_cycles > trap_cycles)

(* ------------------------------------------------------------------ *)
(* ASIDs: context switches do not flush the TLB, so a process's hot
   mappings survive other processes running. *)

let test_asid_tlb_persistence () =
  let k =
    match Kernel.boot () with Ok k -> k | Error e -> Alcotest.fail e
  in
  let prog =
    Printf.sprintf
      "li s0, 20\nloop:\nla s2, slot\nlw s3, 0(s2)\nli a0, %d\nmenter 0\n\
       addi s0, s0, -1\nbnez s0, loop\nli a0, %d\nli a1, 0\nmenter 0\n\
       slot: .word 7\n"
      Kernel.syscall_yield Kernel.syscall_exit
  in
  (match Kernel.spawn k ~source:prog with Ok _ -> () | Error e -> Alcotest.fail e);
  (match Kernel.spawn k ~source:prog with Ok _ -> () | Error e -> Alcotest.fail e);
  (match Kernel.run k ~max_cycles:5_000_000 with
   | Kernel.All_done -> ()
   | Kernel.Deadlocked | Kernel.Out_of_cycles | Kernel.Machine_halted _ ->
     Alcotest.fail "did not finish");
  let misses = k.Kernel.machine.Machine.stats.Stats.tlb_misses in
  (* 2 processes * 20 iterations: with ASIDs the data/code pages miss
     only on first touch, not on every one of the 40 switches. *)
  check_bool
    (Printf.sprintf "TLB misses stay bounded (%d)" misses)
    true (misses < 30)

(* ------------------------------------------------------------------ *)
(* Capabilities used from inside an enclave. *)

let test_capability_inside_enclave () =
  let m = Machine.create () in
  expect_ok (Capability.install m);
  let enclave_code =
    Printf.sprintf
      "enclave_entry:\n mv a1, a0\n li a0, 0\n menter %d\n mv s4, a0\n\
       menter %d\n"
      Layout.cap_load Layout.enc_exit
  in
  load m ~origin:0x6000 enclave_code;
  expect_ok
    (Enclave.install m
       { Enclave.entry = 0x6000; region_base = 0x6000; region_size = 32;
         open_perms = 0; closed_perms = 0 });
  Machine.write_word m 0x8000 0xBEEF;
  load m
    (Printf.sprintf
       "start:\nli a0, 0x8000\nli a1, 4\nli a2, 1\nmenter %d\n\
        menter %d\nmv s5, s4\nebreak\n"
       Layout.cap_create Layout.enc_enter);
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  check_int "cap read inside enclave" 0xBEEF (reg m "s5")

(* ------------------------------------------------------------------ *)
(* Scheduler stress: several processes, many yields, deterministic
   round-robin output. *)

let test_scheduler_stress () =
  let k =
    match Kernel.boot () with Ok k -> k | Error e -> Alcotest.fail e
  in
  let nprocs = 6 and rounds = 10 in
  for i = 0 to nprocs - 1 do
    let c = Char.chr (Char.code 'a' + i) in
    let src =
      Printf.sprintf
        "li s0, %d\nloop:\nli a0, %d\nli a1, '%c'\nmenter 0\nli a0, %d\n\
         menter 0\naddi s0, s0, -1\nbnez s0, loop\nli a0, %d\nli a1, %d\n\
         menter 0\n"
        rounds Kernel.syscall_putchar c Kernel.syscall_yield
        Kernel.syscall_exit (i + 10)
    in
    match Kernel.spawn k ~source:src with
    | Ok _ -> ()
    | Error e -> Alcotest.fail e
  done;
  (match Kernel.run k ~max_cycles:20_000_000 with
   | Kernel.All_done -> ()
   | Kernel.Deadlocked -> Alcotest.fail "deadlocked"
   | Kernel.Out_of_cycles -> Alcotest.fail "cycles"
   | Kernel.Machine_halted h -> Alcotest.fail (Machine.halted_to_string h));
  let out = Kernel.console_output k in
  check_int "every write arrived" (nprocs * rounds) (String.length out);
  let expected =
    String.concat ""
      (List.init rounds (fun _ -> "abcdef"))
  in
  check_str "strict round-robin" expected out;
  List.iter
    (fun p ->
       match p.Process.state with
       | Process.Exited code -> check_int "exit code" (p.Process.pid + 9) code
       | s -> Alcotest.fail (Process.state_to_string s))
    k.Kernel.procs

(* ------------------------------------------------------------------ *)
(* The facade end to end. *)

let test_system_facade () =
  let sys = Metal_core.System.create () in
  (match Metal_core.System.load_mcode sys
           ".mentry 0, f\nf:\nslli a0, a0, 1\nmexit\n" with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match
     Metal_core.System.run_program sys
       "start:\nli a0, 21\nmenter 0\nli t0, 0xF0000000\nli t1, '!'\n\
        sw t1, 0(t0)\nebreak\n"
   with
   | Ok (Machine.Halt_ebreak _) -> ()
   | Ok h -> Alcotest.fail (Machine.halted_to_string h)
   | Error e -> Alcotest.fail e);
  check_int "mroutine result" 42 (Metal_core.System.reg sys "a0");
  check_str "console via MMIO" "!" (Metal_core.System.console_output sys);
  check_bool "cycles counted" true (Metal_core.System.cycles sys > 0)

(* The OS runs identically whether TLB refills come from the Metal
   page-fault mroutine or the hardware walker (same page tables). *)
let test_kernel_under_hw_walker () =
  let k =
    match Kernel.boot () with Ok k -> k | Error e -> Alcotest.fail e
  in
  Metal_cpu.Machine.ctrl_write k.Kernel.machine Csr.hw_walker 1;
  (match Kernel.spawn k
           ~source:(Printf.sprintf
                      "la a1, msg\nli a2, 2\nli a0, %d\nmenter 0\n\
                       li a0, %d\nli a1, 0\nmenter 0\nmsg: .asciiz \"ok\"\n"
                      Kernel.syscall_puts Kernel.syscall_exit)
   with
   | Ok _ -> ()
   | Error e -> Alcotest.fail e);
  (match Kernel.run k ~max_cycles:2_000_000 with
   | Kernel.All_done -> ()
   | Kernel.Deadlocked | Kernel.Out_of_cycles | Kernel.Machine_halted _ ->
     Alcotest.fail "did not finish");
  check_str "same output" "ok" (Kernel.console_output k);
  check_bool "hardware walks happened" true
    (k.Kernel.machine.Machine.stats.Stats.hw_walks > 0)

let () =
  Alcotest.run "integration"
    [
      ( "composition",
        [ Alcotest.test_case "all extensions coresident" `Quick
            test_all_coresident;
          Alcotest.test_case "stm + shadow stack" `Quick
            test_stm_with_shadowstack;
          Alcotest.test_case "interrupt mid-transaction" `Quick
            test_interrupt_during_transaction;
          Alcotest.test_case "capability in enclave" `Quick
            test_capability_inside_enclave ] );
      ( "os",
        [ Alcotest.test_case "config invariance" `Quick test_config_invariance;
          Alcotest.test_case "asid persistence" `Quick
            test_asid_tlb_persistence;
          Alcotest.test_case "scheduler stress" `Quick test_scheduler_stress;
          Alcotest.test_case "hw walker" `Quick test_kernel_under_hw_walker ] );
      ( "facade", [ Alcotest.test_case "system" `Quick test_system_facade ] );
    ]
