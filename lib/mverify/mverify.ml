(* Static verifier for assembled mcode images.

   Runs before an image is installed into MRAM: decodes every
   mroutine entry into a CFG and checks the safety properties the
   paper's story rests on (Sections 2.2 and 5) — control flow stays
   inside the MRAM code segment, every path reaches mexit, static
   mld/mst slots stay inside the data segment, no mode-illegal
   instructions — and computes a per-entry WCET upper bound in
   pipeline cycles from the Wcost table and the [.mbound] loop
   annotations.  Since mroutines are non-interruptible, the largest
   entry bound is the machine's interrupt-latency bound. *)

module Image = Metal_asm.Image
module Config = Metal_cpu.Config
module Wcost = Metal_cpu.Wcost

type severity = Error | Warning

type finding = {
  severity : severity;
  entry : int option;  (** mroutine entry the finding belongs to *)
  addr : int option;  (** MRAM code offset, when meaningful *)
  check : string;  (** short check identifier, e.g. "segment" *)
  message : string;
}

type entry_report = {
  entry : int;
  addr : int;
  name : string option;  (** label at the entry address, if any *)
  reachable : int;  (** reachable instruction count *)
  wcet : int option;  (** None when an error defeats the bound *)
}

type t = {
  entries : entry_report list;
  findings : finding list;  (** image-level and per-entry, in order *)
}

let errors t = List.filter (fun f -> f.severity = Error) t.findings
let warnings t = List.filter (fun f -> f.severity = Warning) t.findings
let ok t = errors t = []

let interrupt_latency_bound t =
  List.fold_left
    (fun acc (e : entry_report) ->
       match (acc, e.wcet) with
       | None, _ | _, None -> None
       | Some a, Some w -> Some (max a w))
    (Some 0) t.entries

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)

let finding_to_string f =
  Printf.sprintf "%s: %s%s%s: %s"
    (match f.severity with Error -> "error" | Warning -> "warning")
    (match f.entry with
     | Some e -> Printf.sprintf "entry %d" e
     | None -> "image")
    (match f.addr with
     | Some a -> Printf.sprintf " @0x%04x" a
     | None -> "")
    (Printf.sprintf " [%s]" f.check)
    f.message

let pp ppf t =
  List.iter
    (fun (e : entry_report) ->
       Format.fprintf ppf "entry %2d @0x%04x %-18s %4d instrs  %s@."
         e.entry e.addr
         (match e.name with Some n -> n | None -> "")
         e.reachable
         (match e.wcet with
          | Some w -> Printf.sprintf "WCET %5d cycles" w
          | None -> "WCET -- (errors)"))
    t.entries;
  List.iter (fun f -> Format.fprintf ppf "%s@." (finding_to_string f))
    t.findings;
  match interrupt_latency_bound t with
  | Some b when t.entries <> [] ->
    Format.fprintf ppf "interrupt-latency bound: %d cycles@." b
  | _ -> ()

let to_string t = Format.asprintf "%a" pp t

(* ------------------------------------------------------------------ *)
(* CFG construction                                                    *)

(* Successor classification of one decoded instruction.  [jal] with a
   link register is a call (the return address is keyed by the link
   register); [jalr rd=x0, 0(r)] is the matching return and flows to
   every recorded return address of [r] — a sound over-approximation
   of the subroutine idiom the standard mroutines use (enclave links
   through t3, nested through ra).  Any other [jalr] is statically
   unanalyzable and rejected. *)
type flow =
  | Seq of int list  (** statically-known successors *)
  | Call of { link : Reg.t; ret : int; target : int }
  | Ret of Reg.t
  | Stop  (** mexit / ebreak: a genuine terminator *)
  | Bad of string  (** statically unanalyzable or mode-illegal *)

let flow_of ~pc (i : Instr.t) =
  match i with
  | Instr.Jal { rd = 0; offset } -> Seq [ pc + offset ]
  | Instr.Jal { rd; offset } ->
    Call { link = rd; ret = pc + 4; target = pc + offset }
  | Instr.Jalr { rd = 0; rs1; offset = 0 } -> Ret rs1
  | Instr.Jalr _ ->
    Bad "indirect jump (jalr) with no matching jal link is not \
         statically analyzable"
  | Instr.Metal Instr.Mexit -> Stop
  | Instr.Ebreak -> Stop
  | Instr.Ecall -> Bad "ecall inside an mroutine is a fatal metal fault"
  | Instr.Metal (Instr.Menter _) ->
    Bad "menter is illegal in Metal mode (mroutines do not nest)"
  | _ -> Seq (Instr.static_successors ~pc i)

(* Per-entry analysis state. *)
type cfg = {
  insns : (int, Instr.t) Hashtbl.t;  (** reachable, decoded *)
  succs : (int, int list) Hashtbl.t;
  mutable order : int list;  (** visit order, for deterministic output *)
}

(* ------------------------------------------------------------------ *)
(* WCET: longest path over the SCC condensation, loops weighted by
   their [.mbound].                                                    *)

(* [Unbounded h]: loop header [h] has no [.mbound].  [Irreducible h]:
   a loop with several entry points, which the bound model cannot
   weigh. *)
exception Unbounded of int
exception Irreducible of int

let sccs nodes succs =
  let index = Hashtbl.create 64
  and low = Hashtbl.create 64
  and onstack = Hashtbl.create 64 in
  let stack = ref [] and counter = ref 0 and comps = ref [] in
  let rec strong v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace low v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace onstack v ();
    List.iter
      (fun w ->
         if not (Hashtbl.mem index w) then begin
           strong w;
           Hashtbl.replace low v
             (min (Hashtbl.find low v) (Hashtbl.find low w))
         end
         else if Hashtbl.mem onstack w then
           Hashtbl.replace low v
             (min (Hashtbl.find low v) (Hashtbl.find index w)))
      (succs v);
    if Hashtbl.find low v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          Hashtbl.remove onstack w;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> assert false
      in
      comps := pop [] :: !comps
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong v) nodes;
  (* Tarjan finishes sink components first; the prepends above leave
     the list in topological order (sources first). *)
  !comps

(* Longest path through [nodes] (edges [succs] restricted to the
   node set) starting from [entries].  A non-trivial SCC weighs its
   header's [.mbound] times the longest header-to-header path inside
   it; nested loops recurse. *)
let rec subgraph_wcet ~cost ~mbound ~nodes ~succs ~entries =
  let in_nodes v = Hashtbl.mem nodes v in
  let succs_in v = List.filter in_nodes (succs v) in
  let node_list = Hashtbl.fold (fun v () acc -> v :: acc) nodes [] in
  let node_list = List.sort compare node_list in
  let comps = sccs node_list succs_in in
  let comp_of = Hashtbl.create 64 in
  List.iteri
    (fun ci comp -> List.iter (fun v -> Hashtbl.replace comp_of v ci) comp)
    comps;
  let is_loop = function
    | [ v ] -> List.mem v (succs_in v)
    | _ -> true
  in
  let weight comp =
    match comp with
    | [ v ] when not (is_loop comp) -> cost v
    | _ ->
      let in_comp v = List.mem v comp in
      let headers =
        List.filter
          (fun v ->
             List.mem v entries
             || Hashtbl.fold
                  (fun u () acc ->
                     acc
                     || ((not (in_comp u)) && List.mem v (succs_in u)))
                  nodes false)
          comp
      in
      (match headers with
       | [ h ] ->
         (match mbound h with
          | None -> raise (Unbounded h)
          | Some b ->
            let body = Hashtbl.create 16 in
            List.iter (fun v -> Hashtbl.replace body v ()) comp;
            (* Cut the back edges into the header: the remaining body
               is walked at most [b] times. *)
            let body_succs v =
              List.filter (fun w -> in_comp w && w <> h) (succs_in v)
            in
            let inner =
              subgraph_wcet ~cost ~mbound ~nodes:body ~succs:body_succs
                ~entries:[ h ]
            in
            b * inner)
       | h :: _ -> raise (Irreducible h)
       | [] -> assert false)
  in
  let n = List.length comps in
  let comp_arr = Array.of_list comps in
  let weights = Array.map weight comp_arr in
  let longest = Array.make n min_int in
  List.iter
    (fun e ->
       let ci = Hashtbl.find comp_of e in
       longest.(ci) <- max longest.(ci) weights.(ci))
    entries;
  (* comps are in topological order already. *)
  let best = ref 0 in
  Array.iteri
    (fun ci comp ->
       if longest.(ci) > min_int then begin
         best := max !best longest.(ci);
         List.iter
           (fun v ->
              List.iter
                (fun w ->
                   let cj = Hashtbl.find comp_of w in
                   if cj <> ci then
                     longest.(cj) <-
                       max longest.(cj) (longest.(ci) + weights.(cj)))
                (succs_in v))
           comp
       end)
    comp_arr;
  !best

(* ------------------------------------------------------------------ *)
(* Register conventions                                                *)

let reg_name = Reg.to_string

(* Registers the interrupted guest still owns and an mroutine must
   not clobber: the callee-saved set plus the stack/global/thread
   pointers and the return address.  [a*] is the mroutine's
   argument/result interface and [t*] is scratch by the documented
   Mconv, so neither is linted. *)
let caller_visible r =
  (r >= 8 && r <= 9) (* s0, s1 *)
  || (r >= 18 && r <= 27) (* s2..s11 *)
  || r = 1 (* ra *) || r = 2 (* sp *) || r = 3 (* gp *) || r = 4 (* tp *)

(* m-registers hardware writes on entry/event delivery; reading them
   uninitialized is the point. *)
let mconv_written mr =
  mr = Reg.Mconv.return_address || mr = Reg.Mconv.event_cause
  || mr = Reg.Mconv.event_value || mr = Reg.Mconv.event_addr
  || mr = Reg.Mconv.event_store_value || mr = Reg.Mconv.event_rd

(* ------------------------------------------------------------------ *)
(* The verifier                                                        *)

let verify ?(config = Config.default) (img : Image.t) =
  let code_bytes = 4 * config.Config.mram_code_words in
  let data_bytes = config.Config.mram_data_bytes in
  let findings = ref [] in
  let add severity ?entry ?addr check fmt =
    Printf.ksprintf
      (fun message ->
         findings := { severity; entry; addr; check; message } :: !findings)
      fmt
  in
  (* ---- image-level checks ---- *)
  List.iter
    (fun (start, data) ->
       if start < 0 || start + String.length data > code_bytes then
         add Error ~addr:start "segment"
           "chunk [0x%x, 0x%x) exceeds the MRAM code segment (%d bytes)"
           start
           (start + String.length data)
           code_bytes
       else if start land 3 <> 0 || String.length data land 3 <> 0 then
         add Error ~addr:start "segment" "chunk at 0x%x is not word-aligned"
           start)
    img.Image.chunks;
  List.iter
    (fun (entry, addr) ->
       if entry < 0 || entry >= Metal_hw.Mram.max_entries then
         add Error ~entry "entry" "entry number %d out of range (max %d)"
           entry
           (Metal_hw.Mram.max_entries - 1)
       else if addr < 0 || addr >= code_bytes || addr land 3 <> 0 then
         add Error ~entry ~addr "entry"
           "entry address 0x%x outside the MRAM code segment" addr)
    img.Image.mentries;
  (* m-registers written anywhere in the image (wmr), for the
     uninitialized-read lint; entries of one image commonly share
     persistent m-register state (stm's transaction status, the
     privilege bit in m0). *)
  let image_wmr = Hashtbl.create 8 in
  List.iter
    (fun (addr, _, _) ->
       match Option.bind (Image.word_at img addr) (fun w ->
           Result.to_option (Decode.decode w)) with
       | Some i ->
         (match Instr.writes_mreg i with
          | Some mr -> Hashtbl.replace image_wmr mr ()
          | None -> ())
       | None -> ())
    img.Image.listing;
  (* ---- per-entry analysis ---- *)
  let analyze (entry, entry_addr) =
    let had_error = ref false in
    let adde severity ?addr check fmt =
      (match severity with Error -> had_error := true | Warning -> ());
      add severity ~entry ?addr check fmt
    in
    let cfg =
      { insns = Hashtbl.create 64; succs = Hashtbl.create 64; order = [] }
    in
    (* return addresses recorded per link register, and the jr sites
       waiting on them *)
    let links : (Reg.t, int list ref) Hashtbl.t = Hashtbl.create 4 in
    let rets : (Reg.t, int list ref) Hashtbl.t = Hashtbl.create 4 in
    let work = Queue.create () in
    let enqueue ~from a =
      if a < 0 || a >= code_bytes then
        adde Error ?addr:from "segment"
          "control flow leaves the MRAM code segment (target 0x%x)" a
      else if a land 3 <> 0 then
        adde Error ?addr:from "segment" "misaligned control-flow target 0x%x"
          a
      else if not (Hashtbl.mem cfg.insns a) then Queue.add a work
    in
    let connect a ss =
      let old =
        match Hashtbl.find_opt cfg.succs a with Some l -> l | None -> []
      in
      let fresh = List.filter (fun s -> not (List.mem s old)) ss in
      if fresh <> [] then begin
        Hashtbl.replace cfg.succs a (old @ fresh);
        List.iter (enqueue ~from:(Some a)) fresh
      end
    in
    let record_link link ret =
      let l =
        match Hashtbl.find_opt links link with
        | Some l -> l
        | None ->
          let l = ref [] in
          Hashtbl.add links link l;
          l
      in
      if not (List.mem ret !l) then begin
        l := ret :: !l;
        (* late-arriving return address: give it to jr sites already
           visited *)
        match Hashtbl.find_opt rets link with
        | Some sites -> List.iter (fun site -> connect site [ ret ]) !sites
        | None -> ()
      end
    in
    let visit a =
      if not (Hashtbl.mem cfg.insns a) then begin
        match Image.word_at img a with
        | None ->
          adde Error ~addr:a "terminate"
            "execution reaches 0x%x, which holds no code (falls off the \
             assembled image before mexit)"
            a
        | Some w ->
          (match Decode.decode w with
           | Error _ ->
             adde Error ~addr:a "decode"
               "undecodable instruction word 0x%08x (fatal illegal \
                instruction in Metal mode)"
               w
           | Ok i ->
             Hashtbl.replace cfg.insns a i;
             cfg.order <- a :: cfg.order;
             (match flow_of ~pc:a i with
              | Seq ss -> connect a ss
              | Stop -> Hashtbl.replace cfg.succs a []
              | Call { link; ret; target } ->
                record_link link ret;
                connect a [ target ]
              | Ret r ->
                let sites =
                  match Hashtbl.find_opt rets r with
                  | Some l -> l
                  | None ->
                    let l = ref [] in
                    Hashtbl.add rets r l;
                    l
                in
                sites := a :: !sites;
                (match Hashtbl.find_opt links r with
                 | Some l when !l <> [] -> connect a !l
                 | _ -> ())
              | Bad msg -> adde Error ~addr:a "forbidden" "%s" msg))
      end
    in
    enqueue ~from:None entry_addr;
    while not (Queue.is_empty work) do
      visit (Queue.pop work)
    done;
    (* A jr that never received a return address from a matching jal
       is a stray ret: control flow we cannot account for. *)
    Hashtbl.iter
      (fun r sites ->
         List.iter
           (fun site ->
              match Hashtbl.find_opt cfg.succs site with
              | Some (_ :: _) -> ()
              | _ ->
                adde Error ~addr:site "terminate"
                  "return through %s with no recorded jal link (stray ret)"
                  (reg_name r))
           !sites)
      rets;
    let order = List.rev cfg.order in
    (* ---- per-instruction checks over the reachable set ---- *)
    List.iter
      (fun a ->
         let i = Hashtbl.find cfg.insns a in
         (match i with
          | Instr.Metal (Instr.Mld { rs1 = 0; offset; _ })
          | Instr.Metal (Instr.Mst { rs1 = 0; offset; _ }) ->
            if offset < 0 || offset + 4 > data_bytes then
              adde Error ~addr:a "data"
                "static mld/mst slot %d outside the MRAM data segment \
                 (%d bytes)"
                offset data_bytes
            else if offset land 3 <> 0 then
              adde Error ~addr:a "data" "misaligned mld/mst slot %d" offset
          | Instr.Ebreak ->
            adde Warning ~addr:a "forbidden"
              "ebreak halts the machine (debug stop; acceptable as a \
               deliberate terminator)"
          | _ -> ());
         (match Instr.reads_mreg i with
          | Some mr
            when (not (mconv_written mr)) && not (Hashtbl.mem image_wmr mr)
            ->
            adde Warning ~addr:a "mreg"
              "reads %s, which no wmr in this image initializes"
              (Reg.mreg_to_string mr)
          | _ -> ());
         match Instr.writes_gpr i with
         | Some r when caller_visible r ->
           (* Parked registers are saved to an m-register and restored
              before mexit (wmr mK, r ... rmr r, mK): not a clobber. *)
           let parked =
             List.exists
               (fun a' ->
                  match Hashtbl.find_opt cfg.insns a' with
                  | Some (Instr.Metal (Instr.Wmr { mr; rs1 })) ->
                    rs1 = r
                    && List.exists
                         (fun a'' ->
                            match Hashtbl.find_opt cfg.insns a'' with
                            | Some (Instr.Metal (Instr.Rmr { rd; mr = mr' }))
                              -> rd = r && mr' = mr
                            | _ -> false)
                         order
                  | _ -> false)
               order
           in
           if not parked then
             adde Warning ~addr:a "regs"
               "clobbers caller-visible register %s (not parked in an \
                m-register)"
               (reg_name r)
         | _ -> ())
      order;
    (* ---- WCET ---- *)
    let wcet =
      if !had_error then None
      else begin
        let nodes = Hashtbl.create 64 in
        List.iter (fun a -> Hashtbl.replace nodes a ()) order;
        let succs a =
          match Hashtbl.find_opt cfg.succs a with Some l -> l | None -> []
        in
        let cost a = Wcost.instr config (Hashtbl.find cfg.insns a) in
        let mbound a = List.assoc_opt a img.Image.mbounds in
        match
          subgraph_wcet ~cost ~mbound ~nodes ~succs ~entries:[ entry_addr ]
        with
        | path -> Some (Wcost.entry_overhead config + path)
        | exception Unbounded h ->
          adde Error ~addr:h "wcet"
            "loop through 0x%x has no .mbound annotation (unbounded \
             worst-case execution time)"
            h;
          None
        | exception Irreducible h ->
          adde Error ~addr:h "wcet"
            "irreducible loop through 0x%x (multiple entry points)" h;
          None
      end
    in
    let name =
      (* Prefer label-looking symbols over .equ constants (ALL_CAPS),
         which can share the entry's numeric value by coincidence. *)
      let matches =
        List.filter_map
          (fun (n, v) -> if v = entry_addr then Some n else None)
          img.Image.symbols
      in
      let is_const n = String.uppercase_ascii n = n in
      match List.filter (fun n -> not (is_const n)) matches with
      | n :: _ -> Some n
      | [] -> (match matches with n :: _ -> Some n | [] -> None)
    in
    { entry; addr = entry_addr; name; reachable = List.length order; wcet }
  in
  let entries =
    List.filter_map
      (fun (entry, addr) ->
         if
           entry >= 0
           && entry < Metal_hw.Mram.max_entries
           && addr >= 0
           && addr < code_bytes
           && addr land 3 = 0
         then Some (analyze (entry, addr))
         else None)
      img.Image.mentries
  in
  { entries; findings = List.rev !findings }

let wcet t ~entry =
  List.find_map
    (fun (e : entry_report) -> if e.entry = entry then e.wcet else None)
    t.entries
