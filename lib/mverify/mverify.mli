(** Static verifier for assembled mcode images.

    [verify] runs over an {!Metal_asm.Image.t} before it is installed
    into MRAM: each [.mentry] is decoded into a control-flow graph and
    checked for the safety properties mroutines must uphold (the paper,
    Sections 2.2 and 5):

    - control flow (fetches, branch/jal targets, fall-through) stays
      inside the MRAM code segment and never reaches a word the image
      does not define;
    - every path terminates in [mexit] (or a deliberate [ebreak] debug
      stop — flagged as a warning), with no stray [ret] and no
      statically unanalyzable [jalr];
    - mode screening: no [ecall], no nested [menter], every word
      decodes;
    - static [mld]/[mst] slots (rs1 = x0) stay word-aligned inside the
      MRAM data segment;
    - register-convention lint: clobbers of guest-visible registers
      (callee-saved, [sp]/[gp]/[tp]/[ra]) that are not parked in an
      m-register, and reads of m-registers no [wmr] initializes;
    - a worst-case execution time (WCET) upper bound per entry, in
      pipeline cycles, from the {!Metal_cpu.Wcost} table and the
      [.mbound] loop annotations.  Loops without a [.mbound] (or
      irreducible loops) defeat the bound and are errors.

    Because mroutines are non-interruptible, the maximum entry WCET is
    the machine's interrupt-latency bound while the image is
    installed. *)

type severity = Error | Warning

type finding = {
  severity : severity;
  entry : int option;  (** mroutine entry the finding belongs to;
                           [None] for image-level findings *)
  addr : int option;  (** MRAM code offset, when meaningful *)
  check : string;  (** short check identifier: "segment", "terminate",
                       "decode", "forbidden", "data", "mreg", "regs",
                       "wcet", "entry" *)
  message : string;
}

type entry_report = {
  entry : int;  (** mroutine entry number *)
  addr : int;  (** entry address in the MRAM code segment *)
  name : string option;  (** label at the entry address, if any *)
  reachable : int;  (** reachable instruction count *)
  wcet : int option;
      (** worst-case mode_enter→mode_exit latency in cycles, including
          {!Metal_cpu.Wcost.entry_overhead}; [None] when an error
          defeats the bound *)
}

type t = {
  entries : entry_report list;  (** one per valid [.mentry] *)
  findings : finding list;  (** image-level first, then per-entry *)
}

val verify : ?config:Metal_cpu.Config.t -> Metal_asm.Image.t -> t
(** Verify every mroutine entry of [img] against [config] (default
    {!Metal_cpu.Config.default}).  Never raises: all problems are
    reported as findings. *)

val ok : t -> bool
(** True when no {!Error}-severity finding was produced.  Warnings do
    not fail verification. *)

val errors : t -> finding list
val warnings : t -> finding list

val wcet : t -> entry:int -> int option
(** WCET bound of a specific entry, if it verified cleanly. *)

val interrupt_latency_bound : t -> int option
(** The maximum entry WCET: an upper bound on how long the machine can
    stay non-interruptible in Metal mode.  [None] if any entry's bound
    was defeated. *)

val finding_to_string : finding -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
