type binop =
  | B_add | B_sub | B_and | B_or | B_xor | B_shl | B_shr | B_sar
  | B_eq | B_ne | B_lt | B_ltu | B_ge | B_geu

type expr =
  | E_int of int
  | E_var of string
  | E_param of int
  | E_mreg of Reg.mreg
  | E_csr of Csr.t
  | E_load of expr
  | E_probe of expr
  | E_bin of binop * expr * expr

type stmt =
  | S_let of string * expr
  | S_set of string * expr
  | S_set_param of int * expr
  | S_set_mreg of Reg.mreg * expr
  | S_set_csr of Csr.t * expr
  | S_store of expr * expr
  | S_tlbw of expr * expr
  | S_if of expr * stmt list * stmt list
  | S_while of int option * expr * stmt list
      (** Optional iteration bound, emitted as a [.mbound] annotation
          on the loop head for the static verifier's WCET pass. *)
  | S_exit

type routine = { name : string; entry : int; body : stmt list }

(* Constructors *)

let int v = E_int v
let var name = E_var name
let param n = E_param n
let mreg m = E_mreg m
let csr c = E_csr c
let load e = E_load e
let tlb_probe e = E_probe e

let add a b = E_bin (B_add, a, b)
let sub a b = E_bin (B_sub, a, b)
let and_ a b = E_bin (B_and, a, b)
let or_ a b = E_bin (B_or, a, b)
let xor a b = E_bin (B_xor, a, b)
let shl a b = E_bin (B_shl, a, b)
let shr a b = E_bin (B_shr, a, b)
let sar a b = E_bin (B_sar, a, b)
let asr_ = sar
let eq a b = E_bin (B_eq, a, b)
let ne a b = E_bin (B_ne, a, b)
let lt a b = E_bin (B_lt, a, b)
let ltu a b = E_bin (B_ltu, a, b)
let ge a b = E_bin (B_ge, a, b)
let geu a b = E_bin (B_geu, a, b)

let let_ name e = S_let (name, e)
let set name e = S_set (name, e)
let set_param n e = S_set_param (n, e)
let set_mreg m e = S_set_mreg (m, e)
let set_csr c e = S_set_csr (c, e)
let store ~addr ~value = S_store (addr, value)
let tlb_write ~tag ~data = S_tlbw (tag, data)
let if_ c t e = S_if (c, t, e)
let while_ ?bound c b =
  (match bound with
   | Some k when k < 0 -> invalid_arg "Mgen.while_: negative bound"
   | _ -> ());
  S_while (bound, c, b)
let exit = S_exit

let routine ~name ~entry body = { name; entry; body }

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)

exception Error of string

let err fmt = Printf.ksprintf (fun m -> raise (Error m)) fmt

(* Scratch register pool, in allocation order. *)
let scratch = [ "t0"; "t1"; "t2"; "t3"; "t4"; "t5"; "t6" ]

let param_reg n =
  if n < 0 || n > 7 then err "parameter index %d out of range (a0..a7)" n;
  "a" ^ string_of_int n

type state = {
  buf : Buffer.t;
  mutable label : int;
  mutable slots : (string * int) list;  (** variable -> data offset *)
  mutable next_slot : int;
  data_limit : int;
}

let emit st fmt = Printf.ksprintf (fun s -> Buffer.add_string st.buf ("    " ^ s ^ "\n")) fmt

let emit_label st l = Buffer.add_string st.buf (l ^ ":\n")

let fresh_label st prefix =
  st.label <- st.label + 1;
  Printf.sprintf "Lmgen_%s_%d" prefix st.label

let slot_of st name =
  match List.assoc_opt name st.slots with
  | Some off -> off
  | None -> err "undefined variable %S" name

let alloc_slot st name =
  if List.mem_assoc name st.slots then err "variable %S redeclared" name;
  let off = st.next_slot in
  if off + 4 > st.data_limit then
    err "too many variables (data region exhausted at %S)" name;
  st.next_slot <- off + 4;
  st.slots <- (name, off) :: st.slots;
  off

(* Evaluate [e] into register [dst] using [free] for subexpressions. *)
let rec gen_expr st ~dst ~free e =
  match e with
  | E_int v -> emit st "li %s, %d" dst (Word.to_signed (Word.of_int v))
  | E_var name -> emit st "mld %s, %d(zero)" dst (slot_of st name)
  | E_param n -> emit st "mv %s, %s" dst (param_reg n)
  | E_mreg m ->
    if m < 0 || m >= Reg.mreg_count then err "bad metal register m%d" m;
    emit st "rmr %s, m%d" dst m
  | E_csr c ->
    if not (Csr.is_valid c) then err "bad control register %d" c;
    emit st "mcsrr %s, %s" dst (Csr.name c)
  | E_load a ->
    gen_expr st ~dst ~free a;
    emit st "physld %s, 0(%s)" dst dst
  | E_probe a ->
    gen_expr st ~dst ~free a;
    emit st "tlbprobe %s, %s" dst dst
  | E_bin (op, a, b) ->
    gen_expr st ~dst ~free a;
    begin match free with
    | [] -> err "expression too deep (scratch registers exhausted)"
    | r :: rest ->
      gen_expr st ~dst:r ~free:rest b;
      begin match op with
      | B_add -> emit st "add %s, %s, %s" dst dst r
      | B_sub -> emit st "sub %s, %s, %s" dst dst r
      | B_and -> emit st "and %s, %s, %s" dst dst r
      | B_or -> emit st "or %s, %s, %s" dst dst r
      | B_xor -> emit st "xor %s, %s, %s" dst dst r
      | B_shl -> emit st "sll %s, %s, %s" dst dst r
      | B_shr -> emit st "srl %s, %s, %s" dst dst r
      | B_sar -> emit st "sra %s, %s, %s" dst dst r
      | B_eq ->
        emit st "sub %s, %s, %s" dst dst r;
        emit st "seqz %s, %s" dst dst
      | B_ne ->
        emit st "sub %s, %s, %s" dst dst r;
        emit st "snez %s, %s" dst dst
      | B_lt -> emit st "slt %s, %s, %s" dst dst r
      | B_ltu -> emit st "sltu %s, %s, %s" dst dst r
      | B_ge ->
        emit st "slt %s, %s, %s" dst dst r;
        emit st "xori %s, %s, 1" dst dst
      | B_geu ->
        emit st "sltu %s, %s, %s" dst dst r;
        emit st "xori %s, %s, 1" dst dst
      end
    end

let rec gen_stmt st s =
  match s with
  | S_let (name, e) ->
    (* Evaluate before the slot exists: let x = x is an error. *)
    (match scratch with
     | dst :: free -> gen_expr st ~dst ~free e
     | [] -> assert false);
    let off = alloc_slot st name in
    emit st "mst t0, %d(zero)" off
  | S_set (name, e) ->
    let off = slot_of st name in
    (match scratch with
     | dst :: free -> gen_expr st ~dst ~free e
     | [] -> assert false);
    emit st "mst t0, %d(zero)" off
  | S_set_param (n, e) ->
    let reg = param_reg n in
    (match scratch with
     | dst :: free -> gen_expr st ~dst ~free e
     | [] -> assert false);
    emit st "mv %s, t0" reg
  | S_set_mreg (m, e) ->
    if m < 0 || m >= Reg.mreg_count then err "bad metal register m%d" m;
    (match scratch with
     | dst :: free -> gen_expr st ~dst ~free e
     | [] -> assert false);
    emit st "wmr m%d, t0" m
  | S_set_csr (c, e) ->
    if not (Csr.is_valid c) then err "bad control register %d" c;
    (match scratch with
     | dst :: free -> gen_expr st ~dst ~free e
     | [] -> assert false);
    emit st "mcsrw %s, t0" (Csr.name c)
  | S_store (addr, value) ->
    (match scratch with
     | dst :: (r :: _ as free) ->
       gen_expr st ~dst ~free addr;
       (match free with
        | v :: free' -> gen_expr st ~dst:v ~free:free' value
        | [] -> assert false);
       emit st "physst %s, 0(%s)" r dst
     | _ -> assert false)
  | S_tlbw (tag, data) ->
    (match scratch with
     | dst :: (r :: _ as free) ->
       gen_expr st ~dst ~free tag;
       (match free with
        | v :: free' -> gen_expr st ~dst:v ~free:free' data
        | [] -> assert false);
       emit st "tlbw %s, %s" dst r
     | _ -> assert false)
  | S_if (c, then_, else_) ->
    let l_else = fresh_label st "else" and l_end = fresh_label st "endif" in
    (match scratch with
     | dst :: free -> gen_expr st ~dst ~free c
     | [] -> assert false);
    emit st "beqz t0, %s" l_else;
    List.iter (gen_stmt st) then_;
    emit st "j %s" l_end;
    emit_label st l_else;
    List.iter (gen_stmt st) else_;
    emit_label st l_end
  | S_while (bound, c, body) ->
    let l_head = fresh_label st "while" and l_end = fresh_label st "endwhile" in
    (* The head block runs once more than the body (the final, failing
       condition test), hence bound + 1. *)
    (match bound with
     | Some k -> emit st ".mbound %d" (k + 1)
     | None -> ());
    emit_label st l_head;
    (match scratch with
     | dst :: free -> gen_expr st ~dst ~free c
     | [] -> assert false);
    emit st "beqz t0, %s" l_end;
    List.iter (gen_stmt st) body;
    emit st "j %s" l_head;
    emit_label st l_end
  | S_exit -> emit st "mexit"

let rec ends_with_exit = function
  | [] -> false
  | [ S_exit ] -> true
  | [ S_if (_, t, e) ] -> ends_with_exit t && ends_with_exit e
  | _ :: rest -> ends_with_exit rest

let gen_routine st r =
  if r.entry < 0 || r.entry >= Metal_hw.Mram.max_entries then
    err "routine %S: entry %d out of range" r.name r.entry;
  Buffer.add_string st.buf
    (Printf.sprintf "\n# mgen routine %S (entry %d)\n" r.name r.entry);
  emit_label st ("mgen_" ^ r.name);
  List.iter (gen_stmt st) r.body;
  if not (ends_with_exit r.body) then emit st "mexit"

let compile ?(org = 0x2000) ?(data_base = 0xB8) routines =
  try
    if data_base land 3 <> 0 then err "data_base must be word-aligned";
    let st =
      { buf = Buffer.create 1024; label = 0; slots = []; next_slot = data_base;
        data_limit = 0x7FC }
    in
    Buffer.add_string st.buf
      (Printf.sprintf "# generated by Mgen\n.org %d\n" org);
    List.iter
      (fun r ->
         Buffer.add_string st.buf
           (Printf.sprintf ".mentry %d, mgen_%s\n" r.entry r.name))
      routines;
    let names = List.map (fun r -> r.name) routines in
    let rec dup = function
      | [] -> ()
      | n :: rest ->
        if List.mem n rest then err "duplicate routine name %S" n else dup rest
    in
    dup names;
    List.iter (gen_routine st) routines;
    Ok (Buffer.contents st.buf)
  with Error msg -> Result.error ("mgen: " ^ msg)

let compile_exn ?org ?data_base routines =
  match compile ?org ?data_base routines with
  | Ok s -> s
  | Error e -> invalid_arg e

let install m ?org ?data_base routines =
  match compile ?org ?data_base routines with
  | Error _ as e -> e
  | Ok src ->
    begin match Metal_asm.Asm.assemble src with
    | Error e -> Error (Metal_asm.Asm.error_to_string e)
    | Ok img -> Metal_cpu.Machine.load_mcode m img
    end
