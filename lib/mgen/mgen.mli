(** Mgen: a structured language for writing mroutines.

    The paper closes with: "With compiler support, it can be practical
    to write hardware features in high level languages such as C."
    Mgen is that compiler support, scaled to mroutines: a small
    expression/statement language embedded in OCaml that compiles to
    mcode.  It enforces the Metal programming model by construction —
    variables are statically allocated MRAM data slots (Section 2.1),
    every routine ends in [mexit], and the Metal primitives (Metal
    registers, physical memory, TLB and control-register access) are
    first-class.

    {2 Example: a popcount instruction}

    {[
      let popcount =
        Mgen.routine ~name:"popcount" ~entry:0
          [ let_ "bits" (param 0);
            let_ "n" (int 0);
            while_ (ne (var "bits") (int 0))
              [ set "n" (add (var "n") (and_ (var "bits") (int 1)));
                set "bits" (shr (var "bits") (int 1)) ];
            set_param 0 (var "n") ]
    ]}

    Compiled with {!compile} and loaded like any hand-written mcode. *)

(** {2 Expressions} *)

type expr

val int : int -> expr
(** A 32-bit constant. *)

val var : string -> expr
(** A routine-local variable (an MRAM data slot). *)

val param : int -> expr
(** Argument register [a<n>] (n in 0..7). *)

val mreg : Reg.mreg -> expr
(** Read a Metal register ([rmr]). *)

val csr : Csr.t -> expr
(** Read a machine control register ([mcsrr]). *)

val load : expr -> expr
(** Physical word load ([physld]). *)

val tlb_probe : expr -> expr

val add : expr -> expr -> expr
val sub : expr -> expr -> expr
val and_ : expr -> expr -> expr
val or_ : expr -> expr -> expr
val xor : expr -> expr -> expr
val shl : expr -> expr -> expr
val shr : expr -> expr -> expr
(** Logical right shift. *)

val sar : expr -> expr -> expr
(** Arithmetic right shift. *)

val asr_ : expr -> expr -> expr
(** Alias for {!sar} under the RISC-style mnemonic ([asr] itself is an
    OCaml keyword, hence the trailing underscore). *)

val eq : expr -> expr -> expr
val ne : expr -> expr -> expr
val lt : expr -> expr -> expr
(** Signed. *)

val ltu : expr -> expr -> expr
val ge : expr -> expr -> expr
val geu : expr -> expr -> expr

(** {2 Statements} *)

type stmt

val let_ : string -> expr -> stmt
(** Declare and initialize a variable (static MRAM allocation). *)

val set : string -> expr -> stmt

val set_param : int -> expr -> stmt
(** Write [a<n>] (results are returned in argument registers). *)

val set_mreg : Reg.mreg -> expr -> stmt

val set_csr : Csr.t -> expr -> stmt

val store : addr:expr -> value:expr -> stmt
(** Physical word store ([physst]). *)

val tlb_write : tag:expr -> data:expr -> stmt

val if_ : expr -> stmt list -> stmt list -> stmt

val while_ : ?bound:int -> expr -> stmt list -> stmt
(** [while_ ?bound cond body].  [bound] is the maximum number of body
    iterations; when given, the generated loop head carries a
    [.mbound] annotation so the static verifier ({!Metal_mverify})
    can compute a WCET bound for the routine.  Unbounded loops are
    rejected by the verifier. *)

val exit : stmt
(** [mexit]; implicit at the end of every routine body. *)

(** {2 Routines} *)

type routine

val routine : name:string -> entry:int -> stmt list -> routine

val compile :
  ?org:int -> ?data_base:int -> routine list -> (string, string) result
(** Compile to mcode assembly.  [org] is the MRAM code offset (default
    0x2000, clear of the standard library in {!Metal_progs.Layout});
    [data_base] the first MRAM data slot for variables (default 0x7A0).
    Fails on undefined variables, out-of-range parameters, expressions
    deeper than the scratch register pool, or too many variables. *)

val compile_exn : ?org:int -> ?data_base:int -> routine list -> string

val install :
  Metal_cpu.Machine.t -> ?org:int -> ?data_base:int -> routine list ->
  (unit, string) result
(** Compile, assemble and load into MRAM. *)
