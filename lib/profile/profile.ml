module Event = Metal_trace.Event
module Json = Metal_trace.Json

(* Function keys: [addr lsl 2 lor kind]. *)
let k_guest = 0
let k_entry = 1
let k_mram = 2
let k_root = 3
let root_key = k_root
let key ~kind v = (v lsl 2) lor kind
let key_kind k = k land 3
let key_value k = k lsr 2

(* ------------------------------------------------------------------ *)
(* Symbolization                                                       *)

module Symtab = struct
  type t = {
    guest : (int * string) array;  (* addr-sorted code labels *)
    mram : (int * string) array;
    entries : (int * string) list;  (* entry number -> label *)
  }

  let empty = { guest = [||]; mram = [||]; entries = [] }

  (* Labels that point into the image's address range, sorted by
     address (first name wins on aliases).  Filtering by bounds drops
     [.equ] constants, which are values, not code. *)
  let code_labels img =
    match Metal_asm.Image.bounds img with
    | None -> [||]
    | Some (lo, hi) ->
      let labels =
        List.filter
          (fun (_, v) -> v >= lo && v < hi)
          img.Metal_asm.Image.symbols
      in
      let sorted =
        List.sort_uniq
          (fun (n1, v1) (n2, v2) -> compare (v1, n1) (v2, n2))
          labels
      in
      let seen = Hashtbl.create 16 in
      Array.of_list
        (List.filter_map
           (fun (n, v) ->
              if Hashtbl.mem seen v then None
              else begin
                Hashtbl.add seen v ();
                Some (v, n)
              end)
           sorted)

  let of_images ?guest ?mcode () =
    let arr = function None -> [||] | Some img -> code_labels img in
    let mram = arr mcode in
    let entries =
      match mcode with
      | None -> []
      | Some img ->
        List.filter_map
          (fun (entry, addr) ->
             let exact =
               Array.fold_left
                 (fun acc (a, n) -> if a = addr then Some n else acc)
                 None mram
             in
             Option.map (fun n -> (entry, n)) exact)
          img.Metal_asm.Image.mentries
    in
    { guest = arr guest; mram; entries }

  let exact arr addr =
    let rec go lo hi =
      if lo > hi then None
      else
        let mid = (lo + hi) / 2 in
        let a, n = arr.(mid) in
        if a = addr then Some n
        else if a < addr then go (mid + 1) hi
        else go lo (mid - 1)
    in
    go 0 (Array.length arr - 1)

  (* Nearest label at or below [addr]. *)
  let nearest arr addr =
    let rec go lo hi best =
      if lo > hi then best
      else
        let mid = (lo + hi) / 2 in
        let a, n = arr.(mid) in
        if a <= addr then go (mid + 1) hi (Some n) else go lo (mid - 1) best
    in
    go 0 (Array.length arr - 1) None

  let flat_name t ~seg pc =
    let arr = if seg = 0 then t.guest else t.mram in
    match nearest arr pc with None -> "" | Some n -> n

  let name t k =
    let v = key_value k in
    match key_kind k with
    | 0 ->
      (match exact t.guest v with
       | Some n -> n
       | None -> Printf.sprintf "0x%x" v)
    | 1 ->
      (match List.assoc_opt v t.entries with
       | Some n -> Printf.sprintf "m%d:%s" v n
       | None -> Printf.sprintf "mroutine_%d" v)
    | 2 ->
      (match exact t.mram v with
       | Some n -> "mram:" ^ n
       | None -> Printf.sprintf "mram:0x%x" v)
    | _ -> "root"
end

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)

module Report = struct
  type flat_row = {
    seg : int;
    pc : int;
    name : string;
    cycles : int;
    instrs : int;
    stalls : int;
  }

  type stack_row = { stack : int list; calls : int; cycles : int; instrs : int }

  type t = {
    total_cycles : int;
    other_cycles : int;
    flat : flat_row list;
    stacks : stack_row list;
    names : (int * string) list;
  }

  let empty =
    { total_cycles = 0; other_cycles = 0; flat = []; stacks = []; names = [] }

  let merge a b =
    let flat =
      let tbl = Hashtbl.create 64 in
      let add r =
        match Hashtbl.find_opt tbl (r.seg, r.pc) with
        | None -> Hashtbl.replace tbl (r.seg, r.pc) r
        | Some r' ->
          Hashtbl.replace tbl (r.seg, r.pc)
            {
              r' with
              name = (if r'.name = "" then r.name else r'.name);
              cycles = r'.cycles + r.cycles;
              instrs = r'.instrs + r.instrs;
              stalls = r'.stalls + r.stalls;
            }
      in
      List.iter add a.flat;
      List.iter add b.flat;
      List.sort
        (fun r1 r2 -> compare (r1.seg, r1.pc) (r2.seg, r2.pc))
        (Hashtbl.fold (fun _ r acc -> r :: acc) tbl [])
    and stacks =
      let tbl = Hashtbl.create 64 in
      let add r =
        match Hashtbl.find_opt tbl r.stack with
        | None -> Hashtbl.replace tbl r.stack r
        | Some r' ->
          Hashtbl.replace tbl r.stack
            {
              r' with
              calls = r'.calls + r.calls;
              cycles = r'.cycles + r.cycles;
              instrs = r'.instrs + r.instrs;
            }
      in
      List.iter add a.stacks;
      List.iter add b.stacks;
      List.sort
        (fun r1 r2 -> compare r1.stack r2.stack)
        (Hashtbl.fold (fun _ r acc -> r :: acc) tbl [])
    and names =
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (k, n) -> if not (Hashtbl.mem tbl k) then Hashtbl.add tbl k n)
        (a.names @ b.names);
      List.sort compare (Hashtbl.fold (fun k n acc -> (k, n) :: acc) tbl [])
    in
    {
      total_cycles = a.total_cycles + b.total_cycles;
      other_cycles = a.other_cycles + b.other_cycles;
      flat;
      stacks;
      names;
    }

  let equal (a : t) (b : t) = a = b

  let seg_name = function 0 -> "guest" | _ -> "mram"

  let to_json t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "{\n  \"schema\": \"metal-profile-v1\",\n";
    Buffer.add_string buf
      (Printf.sprintf "  \"total_cycles\": %d,\n  \"other_cycles\": %d,\n"
         t.total_cycles t.other_cycles);
    Buffer.add_string buf "  \"flat\": [";
    List.iteri
      (fun i r ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_string buf
           (Printf.sprintf
              "\n    {\"seg\": %S, \"pc\": %d, \"name\": %S, \
               \"cycles\": %d, \"instrs\": %d, \"stalls\": %d}"
              (seg_name r.seg) r.pc r.name r.cycles r.instrs r.stalls))
      t.flat;
    if t.flat <> [] then Buffer.add_string buf "\n  ";
    Buffer.add_string buf "],\n  \"stacks\": [";
    List.iteri
      (fun i r ->
         if i > 0 then Buffer.add_char buf ',';
         Buffer.add_string buf
           (Printf.sprintf
              "\n    {\"stack\": [%s], \"calls\": %d, \"cycles\": %d, \
               \"instrs\": %d}"
              (String.concat ", " (List.map string_of_int r.stack))
              r.calls r.cycles r.instrs))
      t.stacks;
    if t.stacks <> [] then Buffer.add_string buf "\n  ";
    Buffer.add_string buf "],\n  \"names\": {";
    List.iteri
      (fun i (k, n) ->
         if i > 0 then Buffer.add_string buf ", ";
         Buffer.add_string buf (Printf.sprintf "\"%d\": %S" k n))
      t.names;
    Buffer.add_string buf "}\n}\n";
    Buffer.contents buf

  let of_json j =
    let ( let* ) = Result.bind in
    (* Counts are exact integers; a fractional value means the file
       was edited or produced by a broken writer, so reject it rather
       than silently truncating. *)
    let strict_int ~what f =
      if Float.is_integer f then Ok (int_of_float f)
      else Error (Printf.sprintf "%s: non-integral number %g" what f)
    in
    let int_field name obj =
      match Option.bind (Json.member name obj) Json.to_num with
      | Some f -> strict_int ~what:(Printf.sprintf "field %S" name) f
      | None -> Error (Printf.sprintf "missing numeric field %S" name)
    in
    let str_field name obj =
      match Option.bind (Json.member name obj) Json.to_string with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "missing string field %S" name)
    in
    let* schema = str_field "schema" j in
    if schema <> "metal-profile-v1" then
      Error (Printf.sprintf "unexpected schema %S" schema)
    else
      let* total_cycles = int_field "total_cycles" j in
      let* other_cycles = int_field "other_cycles" j in
      let rec map_m f = function
        | [] -> Ok []
        | x :: rest ->
          let* y = f x in
          let* ys = map_m f rest in
          Ok (y :: ys)
      in
      let* flat =
        match Json.member "flat" j with
        | None -> Error "missing flat array"
        | Some a ->
          map_m
            (fun r ->
               let* seg = str_field "seg" r in
               let* pc = int_field "pc" r in
               let* name = str_field "name" r in
               let* cycles = int_field "cycles" r in
               let* instrs = int_field "instrs" r in
               let* stalls = int_field "stalls" r in
               Ok
                 {
                   seg = (if seg = "guest" then 0 else 1);
                   pc;
                   name;
                   cycles;
                   instrs;
                   stalls;
                 })
            (Json.to_list a)
      in
      let* stacks =
        match Json.member "stacks" j with
        | None -> Error "missing stacks array"
        | Some a ->
          map_m
            (fun r ->
               let* stack =
                 match Json.member "stack" r with
                 | None -> Error "stack row without a stack"
                 | Some s ->
                   map_m
                     (fun k ->
                        match Json.to_num k with
                        | Some f -> strict_int ~what:"stack key" f
                        | None -> Error "non-numeric stack key")
                     (Json.to_list s)
               in
               let* calls = int_field "calls" r in
               let* cycles = int_field "cycles" r in
               let* instrs = int_field "instrs" r in
               Ok { stack; calls; cycles; instrs })
            (Json.to_list a)
      in
      let* names =
        match Json.member "names" j with
        | Some (Json.Obj fields) ->
          map_m
            (fun (k, v) ->
               match (int_of_string_opt k, Json.to_string v) with
               | Some k, Some n -> Ok (k, n)
               | _ -> Error "bad names entry")
            fields
        | _ -> Error "missing names object"
      in
      Ok { total_cycles; other_cycles; flat; stacks; names }

  let key_name t k =
    match List.assoc_opt k t.names with
    | Some n -> n
    | None -> Printf.sprintf "key_%d" k

  let to_folded t =
    let buf = Buffer.create 1024 in
    List.iter
      (fun r ->
         if r.cycles > 0 then
           Buffer.add_string buf
             (Printf.sprintf "%s %d\n"
                (String.concat ";" (List.map (key_name t) r.stack))
                r.cycles))
      t.stacks;
    Buffer.contents buf

  let pp ?(top = 10) fmt t =
    let flat_total =
      List.fold_left (fun acc (r : flat_row) -> acc + r.cycles) 0 t.flat
    in
    Format.fprintf fmt
      "@[<v>profile: %d cycles (%d attributed to code, %d other)@,"
      t.total_cycles flat_total t.other_cycles;
    let hot =
      List.filteri
        (fun i _ -> i < top)
        (List.sort
           (fun (a : flat_row) (b : flat_row) ->
              compare (b.cycles, a.seg, a.pc) (a.cycles, b.seg, b.pc))
           (List.filter (fun (r : flat_row) -> r.cycles > 0) t.flat))
    in
    if hot <> [] then begin
      Format.fprintf fmt "%-7s %-10s %-16s %8s %8s %8s" "seg" "pc" "symbol"
        "cycles" "instrs" "stalls";
      List.iter
        (fun r ->
           Format.fprintf fmt "@,%-7s 0x%08x %-16s %8d %8d %8d"
             (seg_name r.seg) r.pc
             (if r.name = "" then "-" else r.name)
             r.cycles r.instrs r.stalls)
        hot
    end;
    (* Self = leaf rows; cumulative counts each key once per row. *)
    let self = Hashtbl.create 32
    and cum = Hashtbl.create 32
    and calls = Hashtbl.create 32 in
    let bump tbl k v =
      Hashtbl.replace tbl k (v + Option.value ~default:0 (Hashtbl.find_opt tbl k))
    in
    List.iter
      (fun r ->
         (match List.rev r.stack with
          | leaf :: _ ->
            bump self leaf r.cycles;
            bump calls leaf r.calls
          | [] -> ());
         List.iter
           (fun k -> bump cum k r.cycles)
           (List.sort_uniq compare r.stack))
      t.stacks;
    let funcs =
      List.filteri
        (fun i _ -> i < top)
        (List.sort
           (fun (k1, c1) (k2, c2) -> compare (-c1, k1) (-c2, k2))
           (Hashtbl.fold
              (fun k c acc -> if k = root_key then acc else (k, c) :: acc)
              cum []))
    in
    if funcs <> [] then begin
      Format.fprintf fmt "@,%-24s %8s %8s %8s" "function" "self" "cum" "calls";
      List.iter
        (fun (k, c) ->
           Format.fprintf fmt "@,%-24s %8d %8d %8d" (key_name t k)
             (Option.value ~default:0 (Hashtbl.find_opt self k))
             c
             (Option.value ~default:0 (Hashtbl.find_opt calls k)))
        funcs
    end;
    Format.fprintf fmt "@]"
end

(* ------------------------------------------------------------------ *)
(* Live profiler                                                       *)

(* Calling-context tree node.  Children are keyed by function key;
   nodes are allocated only on the first visit of a context, so the
   steady-state hot path is hashtable lookups and integer stores. *)
type node = {
  nkey : int;
  parent : node option;
  mutable ncalls : int;
  mutable self_cycles : int;
  mutable self_instrs : int;
  children : (int, node) Hashtbl.t;
}

type seg_flat = {
  limit : int;
  cycles : int array;
  instrs : int array;
  stalls : int array;
  spill : (int, int array) Hashtbl.t;  (* word index -> [|c; i; s|] *)
}

type t = {
  guest : seg_flat;
  mram : seg_flat;
  root : node;
  mutable cur : node;
  mutable last_mark : int;
  mutable other_cycles : int;
  mutable pending_stall : int;
  mutable last_metal : bool;
}

let make_seg words =
  {
    limit = words;
    cycles = Array.make words 0;
    instrs = Array.make words 0;
    stalls = Array.make words 0;
    spill = Hashtbl.create 8;
  }

let create ?(guest_words = 65536) ?(mram_words = 4096) () =
  let root =
    {
      nkey = root_key;
      parent = None;
      ncalls = 0;
      self_cycles = 0;
      self_instrs = 0;
      children = Hashtbl.create 8;
    }
  in
  {
    guest = make_seg guest_words;
    mram = make_seg mram_words;
    root;
    cur = root;
    last_mark = 0;
    other_cycles = 0;
    pending_stall = 0;
    last_metal = false;
  }

let flat_add seg ~pc ~delta ~stalls =
  let idx = pc lsr 2 in
  if idx >= 0 && idx < seg.limit then begin
    seg.cycles.(idx) <- seg.cycles.(idx) + delta;
    seg.instrs.(idx) <- seg.instrs.(idx) + 1;
    seg.stalls.(idx) <- seg.stalls.(idx) + stalls
  end
  else begin
    let cell =
      match Hashtbl.find_opt seg.spill idx with
      | Some c -> c
      | None ->
        let c = Array.make 3 0 in
        Hashtbl.add seg.spill idx c;
        c
    in
    cell.(0) <- cell.(0) + delta;
    cell.(1) <- cell.(1) + 1;
    cell.(2) <- cell.(2) + stalls
  end

let push t k =
  let child =
    match Hashtbl.find_opt t.cur.children k with
    | Some n -> n
    | None ->
      let n =
        {
          nkey = k;
          parent = Some t.cur;
          ncalls = 0;
          self_cycles = 0;
          self_instrs = 0;
          children = Hashtbl.create 4;
        }
      in
      Hashtbl.add t.cur.children k n;
      n
  in
  child.ncalls <- child.ncalls + 1;
  t.cur <- child

let probe t cycle kind a b =
  if kind = Event.retire then begin
    let metal = b = 1 in
    t.last_metal <- metal;
    let delta = cycle - t.last_mark in
    t.last_mark <- cycle;
    let stalls = t.pending_stall in
    t.pending_stall <- 0;
    flat_add (if metal then t.mram else t.guest) ~pc:a ~delta ~stalls;
    t.cur.self_cycles <- t.cur.self_cycles + delta;
    t.cur.self_instrs <- t.cur.self_instrs + 1
  end
  else if kind = Event.call then
    (* The hint follows its own retire, so [last_metal] is the mode of
       the jal/jalr itself — and jumps never switch modes, so it is
       also the callee's segment. *)
    push t (key ~kind:(if t.last_metal then k_mram else k_guest) a)
  else if kind = Event.ret then begin
    (* Never pop a mode frame on a plain return: mroutines exit via
       mexit, so an underflowing ret is stray control flow. *)
    match t.cur.parent with
    | Some p when key_kind t.cur.nkey <> k_entry -> t.cur <- p
    | Some _ | None -> ()
  end
  else if kind = Event.mode_enter then push t (key ~kind:k_entry a)
  else if kind = Event.mode_exit then begin
    (* Unwind to just below the nearest mode frame; intervening call
       frames belong to the mroutine and end with it.  Without an
       open mode frame (stray exit) stay put. *)
    let rec entry_depth n =
      if key_kind n.nkey = k_entry then Some n
      else match n.parent with None -> None | Some p -> entry_depth p
    in
    match entry_depth t.cur with
    | Some frame ->
      (match frame.parent with Some p -> t.cur <- p | None -> ())
    | None -> ()
  end
  else if kind = Event.exn || kind = Event.interrupt then begin
    (* Delivery cycles have no retiring pc; keep the accounting exact
       in a separate bucket. *)
    let delta = cycle - t.last_mark in
    t.last_mark <- cycle;
    t.other_cycles <- t.other_cycles + delta
  end
  else if kind = Event.stall_begin then
    t.pending_stall <- t.pending_stall + b

(* ------------------------------------------------------------------ *)
(* Snapshot                                                            *)

let report ?(symtab = Symtab.empty) ~upto t =
  let flat_rows seg_id seg =
    let rows = ref [] in
    let row idx c i s =
      if c <> 0 || i <> 0 || s <> 0 then begin
        let pc = idx lsl 2 in
        rows :=
          {
            Report.seg = seg_id;
            pc;
            name = Symtab.flat_name symtab ~seg:seg_id pc;
            cycles = c;
            instrs = i;
            stalls = s;
          }
          :: !rows
      end
    in
    Array.iteri
      (fun idx c -> row idx c seg.instrs.(idx) seg.stalls.(idx))
      seg.cycles;
    Hashtbl.iter (fun idx cell -> row idx cell.(0) cell.(1) cell.(2)) seg.spill;
    !rows
  in
  let flat =
    List.sort
      (fun (r1 : Report.flat_row) r2 ->
         compare (r1.seg, r1.pc) (r2.seg, r2.pc))
      (flat_rows 0 t.guest @ flat_rows 1 t.mram)
  in
  let stacks = ref [] and keys = Hashtbl.create 32 in
  let rec walk n rev_stack =
    let rev_stack = n.nkey :: rev_stack in
    if not (Hashtbl.mem keys n.nkey) then Hashtbl.add keys n.nkey ();
    if n.self_cycles <> 0 || n.self_instrs <> 0 || n.ncalls <> 0 then
      stacks :=
        {
          Report.stack = List.rev rev_stack;
          calls = n.ncalls;
          cycles = n.self_cycles;
          instrs = n.self_instrs;
        }
        :: !stacks;
    Hashtbl.iter (fun _ child -> walk child rev_stack) n.children
  in
  walk t.root [];
  let stacks =
    List.sort
      (fun (r1 : Report.stack_row) r2 -> compare r1.stack r2.stack)
      !stacks
  in
  let names =
    List.sort compare
      (Hashtbl.fold (fun k () acc -> (k, Symtab.name symtab k) :: acc) keys [])
  in
  let flat_total =
    List.fold_left (fun acc (r : Report.flat_row) -> acc + r.cycles) 0 flat
  in
  let other = t.other_cycles + (upto - t.last_mark) in
  {
    Report.total_cycles = flat_total + other;
    other_cycles = other;
    flat;
    stacks;
    names;
  }
