(** Cycle-exact profiler over the probe event stream.

    A [Profile.t] is installed through the same [Machine.set_probe]
    hook as [Metal_trace.Collector] (compose them with a fan-out
    closure when both are wanted).  It maintains:

    - a flat per-PC histogram (cycles / instructions / attributed
      stall cycles) in dense arrays per segment — guest code and MRAM
      — with a hashtable spill for cold PCs beyond the dense window,
      so the hot path never allocates;
    - a calling-context tree reconstructed from the [call]/[ret]
      retire hints and the [mode_enter]/[mode_exit] events, with the
      mcode side keyed by MRAM entry.

    Cycle attribution is delta-based: every cycle between two marks
    (retire, exception, interrupt, end of run) is attributed to
    exactly one bucket, so the report's [total_cycles] equals
    [Stats.accounted_cycles] — the differential suite checks this
    identity on both steppers. *)

(** Symbolization against assembled images. *)
module Symtab : sig
  type t

  val empty : t

  val of_images :
    ?guest:Metal_asm.Image.t -> ?mcode:Metal_asm.Image.t -> unit -> t
  (** Code labels (symbols within the image bounds) from the guest
      image name guest functions; the mcode image's labels and
      [.mentry] table name MRAM functions and entries. *)
end

(** Immutable profile snapshots: mergeable, serializable, printable. *)
module Report : sig
  (** Function keys are integers: [addr lsl 2 lor kind] with kind 0 =
      guest function, 1 = MRAM entry (value is the entry number), 2 =
      MRAM function, 3 = the synthetic root. *)

  type flat_row = {
    seg : int;  (** 0 = guest, 1 = MRAM *)
    pc : int;
    name : string;  (** nearest label at/below [pc], or [""] *)
    cycles : int;
    instrs : int;
    stalls : int;
  }

  type stack_row = {
    stack : int list;  (** function keys, root first *)
    calls : int;
    cycles : int;  (** self cycles of the leaf frame *)
    instrs : int;
  }

  type t = {
    total_cycles : int;  (** [other_cycles] + sum of flat cycles *)
    other_cycles : int;
        (** exception/interrupt delivery and end-of-run tail *)
    flat : flat_row list;  (** sorted by [(seg, pc)] *)
    stacks : stack_row list;  (** sorted by [stack] *)
    names : (int * string) list;  (** key -> symbolized name, sorted *)
  }

  val empty : t

  val merge : t -> t -> t
  (** Deterministic: merging per-job reports in index order yields the
      same bytes for any domain count. *)

  val equal : t -> t -> bool

  val to_json : t -> string
  (** Schema ["metal-profile-v1"]. *)

  val of_json : Metal_trace.Json.t -> (t, string) result

  val to_folded : t -> string
  (** Folded-stack flamegraph text: one ["a;b;c cycles"] line per
      stack with non-zero self cycles. *)

  val pp : ?top:int -> Format.formatter -> t -> unit
  (** Human hot-spot report: top-N PCs by cycles and top-N functions
      by cumulative cycles. *)
end

type t

val create : ?guest_words:int -> ?mram_words:int -> unit -> t
(** [guest_words] bounds the dense flat window (default 65536 words =
    256 KiB of code; colder PCs spill to a hashtable); [mram_words]
    sizes the MRAM segment (default 4096, [Config.mram_code_words]). *)

val probe : t -> int -> int -> int -> int -> unit
(** [(cycle, kind, a, b)] — install via [Machine.set_probe]. *)

val report : ?symtab:Symtab.t -> upto:int -> t -> Report.t
(** Snapshot without mutating the profiler; [upto] is the final
    [Stats.cycles] so the unmarked tail is attributed to
    [other_cycles]. *)
