(** Byte-addressed physical memory (little-endian). *)

type t

val create : size:int -> t
(** [create ~size] allocates [size] zeroed bytes.  [size] must be a
    positive multiple of 4. *)

val size : t -> int

val version : t -> int
(** Write-version counter: incremented on every mutation ([write8],
    [write16], [write32], [blit_string]/[load_image], including DMA
    writes that go through these accessors).  Consumers that cache
    derived views of memory — e.g. the CPU's predecoded-instruction
    cache — compare the version they captured at fill time against the
    current one to detect (possibly irrelevant) intervening writes. *)

val in_range : t -> addr:int -> width:int -> bool

val read8 : t -> int -> int
val read16 : t -> int -> int
val read32 : t -> int -> Word.t

val write8 : t -> int -> int -> unit
val write16 : t -> int -> int -> unit
val write32 : t -> int -> Word.t -> unit

(** All accessors assume the address is in range ([in_range] checked by
    the bus); they raise [Invalid_argument] otherwise. *)

val load_image : t -> Metal_asm.Image.t -> (unit, string) result
(** Copy every chunk of an assembled image into memory at its absolute
    address. *)

val blit_string : t -> addr:int -> string -> (unit, string) result

val corrupt_bit : t -> addr:int -> bit:int -> Word.t
(** Fault injection ([lib/inject]): flip bit [bit] (0–31) of the
    aligned word at [addr] and return the resulting word.  Bumps
    {!version} like any other write.  Raises [Invalid_argument] when
    out of range. *)

val hash : t -> pos:int -> len:int -> int
(** FNV-1a hash of [len] bytes starting at [pos] (fault-injection
    verdicts compare per-page hashes instead of copying memory). *)
