type config = { lines : int; line_bytes : int; miss_penalty : int }

type t = {
  cfg : config;
  line_shift : int;  (* log2 line_bytes *)
  index_shift : int;  (* log2 lines *)
  index_mask : int;  (* lines - 1 *)
  tags : int array;  (* -1 = invalid *)
  mutable hit_count : int;
  mutable miss_count : int;
}

let is_pow2 v = v > 0 && v land (v - 1) = 0

let log2 v =
  let rec go acc v = if v <= 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v

let create cfg =
  if not (is_pow2 cfg.lines && is_pow2 cfg.line_bytes) then
    invalid_arg "Cache.create: lines and line_bytes must be powers of two";
  if cfg.miss_penalty < 0 then invalid_arg "Cache.create: negative penalty";
  {
    cfg;
    line_shift = log2 cfg.line_bytes;
    index_shift = log2 cfg.lines;
    index_mask = cfg.lines - 1;
    tags = Array.make cfg.lines (-1);
    hit_count = 0;
    miss_count = 0;
  }

let config t = t.cfg

(* Hot path: [create] guarantees pow2 geometry, so the line/index/tag
   split is pure shift-and-mask (addresses are non-negative). *)
let split t addr =
  let line = addr lsr t.line_shift in
  (line land t.index_mask, line lsr t.index_shift)

let access t ~addr =
  let index, tag = split t addr in
  if t.tags.(index) = tag then begin
    t.hit_count <- t.hit_count + 1;
    true
  end
  else begin
    t.miss_count <- t.miss_count + 1;
    t.tags.(index) <- tag;
    false
  end

let probe t ~addr =
  let index, tag = split t addr in
  t.tags.(index) = tag

let flush t = Array.fill t.tags 0 (Array.length t.tags) (-1)

let hits t = t.hit_count

let misses t = t.miss_count

let resident_lines t =
  Array.fold_left (fun acc tag -> if tag >= 0 then acc + 1 else acc) 0 t.tags
