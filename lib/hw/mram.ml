type t = {
  code : Word.t array;  (** one slot per instruction word *)
  data : Bytes.t;
  check : Bytes.t;
      (** SECDED check storage: one 7-bit check byte per data-segment
          word when ECC is armed; empty when it is off.  [Ecc.encode 0
          = 0], so the zero fill is consistent with the zeroed data. *)
  entry_table : int array;  (** -1 = unregistered *)
  mutable version : int;  (** bumped on any reconfiguration or write *)
}

let max_entries = 64

let create ?(ecc = false) ~code_words ~data_bytes () =
  if code_words <= 0 then invalid_arg "Mram.create: code_words";
  if data_bytes <= 0 || data_bytes land 3 <> 0 then
    invalid_arg "Mram.create: data_bytes must be a positive multiple of 4";
  {
    code = Array.make code_words 0;
    data = Bytes.make data_bytes '\000';
    check = (if ecc then Bytes.make (data_bytes / 4) '\000' else Bytes.empty);
    entry_table = Array.make max_entries (-1);
    version = 0;
  }

let ecc t = Bytes.length t.check > 0

let version t = t.version

let code_bytes t = 4 * Array.length t.code

let data_bytes t = Bytes.length t.data

let set_entry t ~entry ~addr =
  if entry < 0 || entry >= max_entries then
    Error (Printf.sprintf "mroutine entry %d out of range" entry)
  else if addr < 0 || addr >= code_bytes t || addr land 3 <> 0 then
    Error (Printf.sprintf "mroutine entry %d at invalid offset 0x%x" entry addr)
  else if t.entry_table.(entry) >= 0 && t.entry_table.(entry) <> addr then
    Error (Printf.sprintf "mroutine entry %d already registered" entry)
  else begin
    t.version <- t.version + 1;
    t.entry_table.(entry) <- addr;
    Ok ()
  end

let entry_addr t entry =
  if entry < 0 || entry >= max_entries then None
  else
    let a = t.entry_table.(entry) in
    if a < 0 then None else Some a

let entries t =
  let acc = ref [] in
  for e = max_entries - 1 downto 0 do
    if t.entry_table.(e) >= 0 then acc := (e, t.entry_table.(e)) :: !acc
  done;
  !acc

let load_image t (img : Metal_asm.Image.t) =
  let ( let* ) = Result.bind in
  let load_chunk (addr, data) =
    if addr land 3 <> 0 || String.length data land 3 <> 0 then
      Error (Printf.sprintf "mcode chunk at 0x%x not word-aligned" addr)
    else if addr < 0 || addr + String.length data > code_bytes t then
      Error
        (Printf.sprintf "mcode chunk [0x%x, 0x%x) exceeds MRAM code segment"
           addr
           (addr + String.length data))
    else begin
      t.version <- t.version + 1;
      for i = 0 to (String.length data / 4) - 1 do
        let w =
          Char.code data.[4 * i]
          lor (Char.code data.[(4 * i) + 1] lsl 8)
          lor (Char.code data.[(4 * i) + 2] lsl 16)
          lor (Char.code data.[(4 * i) + 3] lsl 24)
        in
        t.code.((addr / 4) + i) <- w
      done;
      Ok ()
    end
  in
  let* () =
    List.fold_left
      (fun acc chunk -> Result.bind acc (fun () -> load_chunk chunk))
      (Ok ()) img.Metal_asm.Image.chunks
  in
  List.fold_left
    (fun acc (entry, addr) ->
       Result.bind acc (fun () -> set_entry t ~entry ~addr))
    (Ok ()) img.Metal_asm.Image.mentries

let fetch t ~addr =
  if addr < 0 || addr land 3 <> 0 || addr >= code_bytes t then None
  else Some t.code.(addr / 4)

let raw_word t addr =
  Char.code (Bytes.get t.data addr)
  lor (Char.code (Bytes.get t.data (addr + 1)) lsl 8)
  lor (Char.code (Bytes.get t.data (addr + 2)) lsl 16)
  lor (Char.code (Bytes.get t.data (addr + 3)) lsl 24)

let load_word_checked t ~addr =
  if addr < 0 || addr land 3 <> 0 || addr + 4 > Bytes.length t.data then None
  else
    let w = raw_word t addr in
    if Bytes.length t.check = 0 then Some (w, Ecc.Clean)
    else
      let r = Ecc.decode ~data:w ~check:(Char.code (Bytes.get t.check (addr / 4))) in
      match r with
      | Ecc.Clean | Ecc.Uncorrectable -> Some (w, r)
      | Ecc.Corrected { data; _ } -> Some (data, r)

let load_word t ~addr =
  match load_word_checked t ~addr with
  | None -> None
  | Some (w, _) -> Some w

let store_word t ~addr v =
  if addr < 0 || addr land 3 <> 0 || addr + 4 > Bytes.length t.data then false
  else begin
    t.version <- t.version + 1;
    Bytes.set t.data addr (Char.chr (v land 0xFF));
    Bytes.set t.data (addr + 1) (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set t.data (addr + 2) (Char.chr ((v lsr 16) land 0xFF));
    Bytes.set t.data (addr + 3) (Char.chr ((v lsr 24) land 0xFF));
    if Bytes.length t.check > 0 then
      Bytes.set t.check (addr / 4) (Char.chr (Ecc.encode v));
    true
  end

let clear_data t =
  Bytes.fill t.data 0 (Bytes.length t.data) '\000';
  if Bytes.length t.check > 0 then
    Bytes.fill t.check 0 (Bytes.length t.check) '\000'

(* Fault injection (lib/inject): flip one bit of a stored word.  Both
   mutators bump [version] exactly like a legitimate write would, so
   the predecoded-instruction cache re-syncs instead of serving a
   decode of the pre-fault word. *)

let corrupt_code_bit t ~word ~bit =
  if word < 0 || word >= Array.length t.code || bit < 0 || bit > 31 then false
  else begin
    t.version <- t.version + 1;
    t.code.(word) <- t.code.(word) lxor (1 lsl bit);
    true
  end

let corrupt_data_bit t ~addr ~bit =
  if
    bit < 0 || bit > 31 || addr < 0 || addr land 3 <> 0
    || addr + 4 > Bytes.length t.data
  then false
  else begin
    (* Flip the *stored* byte directly: a fault lands under the ECC
       encoder, so the check bits keep describing the pre-fault word
       and the decoder can see (and correct) the upset.  Going through
       [store_word] would regenerate the check bits and neutralise the
       injection. *)
    t.version <- t.version + 1;
    let off = addr + (bit / 8) in
    Bytes.set t.data off
      (Char.chr (Char.code (Bytes.get t.data off) lxor (1 lsl (bit mod 8))));
    true
  end

let checksum_code t =
  let h = ref 0x811c9dc5 in
  Array.iter
    (fun w -> h := (!h lxor w) * 0x01000193 land max_int)
    t.code;
  !h
