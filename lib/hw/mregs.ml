type t = { regs : Word.t array }

let create () = { regs = Array.make Reg.mreg_count 0 }

let check m =
  if m < 0 || m >= Reg.mreg_count then
    invalid_arg (Printf.sprintf "Mregs: invalid metal register %d" m)

let read t m =
  check m;
  t.regs.(m)

let write t m v =
  check m;
  t.regs.(m) <- Word.of_int v

let dump t = Array.copy t.regs

(* Fault injection (lib/inject): single-bit upset of one Metal
   register. *)
let flip_bit t m ~bit =
  check m;
  if bit < 0 || bit > 31 then invalid_arg "Mregs.flip_bit: bit";
  t.regs.(m) <- t.regs.(m) lxor (1 lsl bit)
