type t = {
  regs : Word.t array;
  checks : int array;
      (** SECDED check bits per register when ECC is armed; [[||]]
          when off.  [Ecc.encode 0 = 0] keeps the zero fill valid. *)
}

let create ?(ecc = false) () =
  {
    regs = Array.make Reg.mreg_count 0;
    checks = (if ecc then Array.make Reg.mreg_count 0 else [||]);
  }

let ecc t = Array.length t.checks > 0

let check m =
  if m < 0 || m >= Reg.mreg_count then
    invalid_arg (Printf.sprintf "Mregs: invalid metal register %d" m)

let read_checked t m =
  check m;
  let w = t.regs.(m) in
  if Array.length t.checks = 0 then (w, Ecc.Clean)
  else
    let r = Ecc.decode ~data:w ~check:t.checks.(m) in
    match r with
    | Ecc.Clean | Ecc.Uncorrectable -> (w, r)
    | Ecc.Corrected { data; _ } -> (data, r)

let read t m =
  check m;
  let w = t.regs.(m) in
  if Array.length t.checks = 0 then w
  else
    match Ecc.decode ~data:w ~check:t.checks.(m) with
    | Ecc.Clean | Ecc.Uncorrectable -> w
    | Ecc.Corrected { data; _ } -> data

let write t m v =
  check m;
  t.regs.(m) <- Word.of_int v;
  if Array.length t.checks > 0 then t.checks.(m) <- Ecc.encode t.regs.(m)

let dump t =
  if Array.length t.checks = 0 then Array.copy t.regs
  else Array.init Reg.mreg_count (fun m -> read t m)

(* Fault injection (lib/inject): single-bit upset of one Metal
   register.  The flip lands on the stored word only — the check bits
   keep describing the pre-fault value, exactly like a particle strike
   under a hardware ECC encoder. *)
let flip_bit t m ~bit =
  check m;
  if bit < 0 || bit > 31 then invalid_arg "Mregs.flip_bit: bit";
  t.regs.(m) <- t.regs.(m) lxor (1 lsl bit)
