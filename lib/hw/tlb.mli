(** Software-managed translation lookaside buffer.

    Fully associative with round-robin replacement.  Entries carry an
    address-space identifier (or the global bit), R/W/X permissions and
    a 4-bit page key (Section 2.3: "Page Keys and Address Space IDs").
    4 KiB pages. *)

type entry = {
  asid : int;    (** 8-bit ASID; ignored when [global]. *)
  global : bool;
  vpn : int;     (** virtual page number (20 bits). *)
  ppn : int;     (** physical page number (20 bits). *)
  r : bool;
  w : bool;
  x : bool;
  pkey : int;    (** 4-bit page key. *)
}

type t

val page_shift : int  (** 12 *)

val create : entries:int -> t

val capacity : t -> int

val generation : t -> int
(** Mutation counter: bumped by every [insert], flush, or injected
    fault.  A caller that cached the result of a {!lookup} may keep
    using it only while the generation is unchanged (the block
    stepper's inline TLB fast path relies on this). *)

val lookup : t -> asid:int -> vpn:int -> entry option
(** Match on [vpn] and ([global] or equal [asid]). *)

val insert : t -> entry -> unit
(** Replace an entry with the same tag if present, otherwise evict
    round-robin. *)

val insert_packed : t -> tag:Word.t -> data:Word.t -> unit
(** Insert from the packed [tlbw] operands
    ({!Instr.pack_tlb_tag}/{!Instr.pack_tlb_data}). *)

val probe_packed : t -> asid:int -> vaddr:Word.t -> Word.t
(** The packed data of the matching entry, or 0 on miss ([tlbprobe]). *)

val flush_all : t -> unit

val flush_asid : t -> asid:int -> unit
(** Drop non-global entries of one address space. *)

val entries : t -> entry list
(** Live entries, for inspection and tests. *)

(** {2 Fault injection}

    Narrow mutation surface for [lib/inject].  Both mutators invalidate
    the internal lookup memo, so modelled behaviour after the fault is
    identical to a TLB that really holds the corrupted state. *)

val corrupt_slot : t -> slot:int -> bit:int -> bool
(** Flip one bit of the packed representation of the entry in [slot]:
    bits 0–31 address the {!Instr.pack_tlb_data} word (permissions,
    page key, PPN), bits 32–63 the {!Instr.pack_tlb_tag} word (global,
    ASID, VPN).  [false] (no change) when the slot is empty or an index
    is out of range.  Flipping a bit the packed layout does not use is
    a silent no-op by construction. *)

val drop_slot : t -> slot:int -> bool
(** Spuriously invalidate the entry in [slot]; [false] when already
    empty or out of range. *)
