type t = { data : Bytes.t; mutable version : int }

let create ~size =
  if size <= 0 || size land 3 <> 0 then
    invalid_arg "Phys_mem.create: size must be a positive multiple of 4";
  { data = Bytes.make size '\000'; version = 0 }

let size t = Bytes.length t.data

let version t = t.version

let in_range t ~addr ~width =
  addr >= 0 && addr + width <= Bytes.length t.data

let check t addr width =
  if not (in_range t ~addr ~width) then
    invalid_arg
      (Printf.sprintf "Phys_mem: out-of-range access 0x%08x/%d" addr width)

let read8 t addr =
  check t addr 1;
  Char.code (Bytes.get t.data addr)

let read16 t addr =
  check t addr 2;
  Char.code (Bytes.get t.data addr)
  lor (Char.code (Bytes.get t.data (addr + 1)) lsl 8)

let read32 t addr =
  check t addr 4;
  Char.code (Bytes.get t.data addr)
  lor (Char.code (Bytes.get t.data (addr + 1)) lsl 8)
  lor (Char.code (Bytes.get t.data (addr + 2)) lsl 16)
  lor (Char.code (Bytes.get t.data (addr + 3)) lsl 24)

let write8 t addr v =
  check t addr 1;
  t.version <- t.version + 1;
  Bytes.set t.data addr (Char.chr (v land 0xFF))

let write16 t addr v =
  check t addr 2;
  t.version <- t.version + 1;
  Bytes.set t.data addr (Char.chr (v land 0xFF));
  Bytes.set t.data (addr + 1) (Char.chr ((v lsr 8) land 0xFF))

let write32 t addr v =
  check t addr 4;
  t.version <- t.version + 1;
  Bytes.set t.data addr (Char.chr (v land 0xFF));
  Bytes.set t.data (addr + 1) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set t.data (addr + 2) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set t.data (addr + 3) (Char.chr ((v lsr 24) land 0xFF))

let blit_string t ~addr s =
  if not (in_range t ~addr ~width:(String.length s)) then
    Error
      (Printf.sprintf "image chunk [0x%08x, 0x%08x) outside physical memory"
         addr
         (addr + String.length s))
  else begin
    t.version <- t.version + 1;
    Bytes.blit_string s 0 t.data addr (String.length s);
    Ok ()
  end

let load_image t (img : Metal_asm.Image.t) =
  List.fold_left
    (fun acc (addr, data) ->
       match acc with
       | Error _ as e -> e
       | Ok () -> blit_string t ~addr data)
    (Ok ()) img.Metal_asm.Image.chunks

(* Fault injection (lib/inject): single-bit upset of an aligned word.
   Goes through read32/write32 so the version counter advances exactly
   as for a legitimate store (the predecode cache must re-sync). *)
let corrupt_bit t ~addr ~bit =
  if bit < 0 || bit > 31 then invalid_arg "Phys_mem.corrupt_bit: bit";
  let v = read32 t addr lxor (1 lsl bit) in
  write32 t addr v;
  v

let hash t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length t.data then
    invalid_arg "Phys_mem.hash: range";
  let h = ref 0x811c9dc5 in
  for i = pos to pos + len - 1 do
    h := (!h lxor Char.code (Bytes.unsafe_get t.data i)) * 0x01000193
         land max_int
  done;
  !h
