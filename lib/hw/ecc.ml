(* SECDED Hamming(39,32): 32 data bits, 6 Hamming check bits at the
   power-of-two codeword positions 1,2,4,8,16,32 and one overall parity
   bit.  Codeword positions run 1..38; the 32 non-power positions hold
   the data bits in ascending order.  The overall parity bit makes the
   whole 39-bit codeword even-parity, which is what upgrades plain
   Hamming SEC to SECDED: a double flip leaves overall parity even but
   a non-zero syndrome, so it is detected instead of miscorrected. *)

let check_bits = 7
let codeword_bits = 39

(* Codeword position (1..38) of data bit i. *)
let data_pos =
  let a = Array.make 32 0 in
  let i = ref 0 in
  for p = 1 to 38 do
    if p land (p - 1) <> 0 then begin
      a.(!i) <- p;
      incr i
    end
  done;
  assert (!i = 32);
  a

(* Data bit index stored at codeword position p, or -1 for the check
   positions. *)
let pos_data =
  let a = Array.make (codeword_bits + 1) (-1) in
  Array.iteri (fun i p -> a.(p) <- i) data_pos;
  a

(* For Hamming check bit j (position 2^j): mask over the *data* word of
   every data bit whose codeword position has bit j set. *)
let masks =
  let m = Array.make 6 0 in
  Array.iteri
    (fun i p ->
       for j = 0 to 5 do
         if (p lsr j) land 1 = 1 then m.(j) <- m.(j) lor (1 lsl i)
       done)
    data_pos;
  m

let parity x =
  let x = x lxor (x lsr 16) in
  let x = x lxor (x lsr 8) in
  let x = x lxor (x lsr 4) in
  let x = x lxor (x lsr 2) in
  let x = x lxor (x lsr 1) in
  x land 1

let hamming data =
  let c = ref 0 in
  for j = 0 to 5 do
    if parity (data land masks.(j)) = 1 then c := !c lor (1 lsl j)
  done;
  !c

let encode data =
  let data = data land 0xFFFFFFFF in
  let h = hamming data in
  (* Overall parity over data + the 6 Hamming bits; the stored parity
     bit keeps the full codeword even. *)
  h lor ((parity data lxor parity h) lsl 6)

type result =
  | Clean
  | Corrected of { data : Word.t; bit : int }
  | Uncorrectable

let decode ~data ~check =
  let data = data land 0xFFFFFFFF in
  let check = check land 0x7F in
  let s = hamming data lxor (check land 0x3F) in
  (* Even total parity over all 39 stored bits when clean or after an
     even number of flips. *)
  let p_err = parity data lxor parity check in
  if s = 0 then
    if p_err = 0 then Clean else Corrected { data; bit = 38 }
  else if p_err = 0 then Uncorrectable (* double flip: syndrome without parity *)
  else if s > 38 then Uncorrectable (* syndrome points outside the codeword *)
  else if s land (s - 1) = 0 then
    (* A Hamming check bit itself flipped; the data is intact. *)
    let rec log2 n acc = if n = 1 then acc else log2 (n lsr 1) (acc + 1) in
    Corrected { data; bit = 32 + log2 s 0 }
  else
    let i = pos_data.(s) in
    Corrected { data = data lxor (1 lsl i); bit = i }
