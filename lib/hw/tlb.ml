type entry = {
  asid : int;
  global : bool;
  vpn : int;
  ppn : int;
  r : bool;
  w : bool;
  x : bool;
  pkey : int;
}

(* [lookup] is on the simulator's per-cycle fetch path, so the linear
   scan is fronted by a small direct-mapped memo of recent (asid, vpn)
   results.  The memo is purely a host-side cache of the scan's answer:
   any mutation bumps [gen], which invalidates every memo slot in O(1),
   so modelled behaviour (hits, misses, replacement) is unchanged. *)

let memo_size = 256
let memo_mask = memo_size - 1

type t = {
  slots : entry option array;
  mutable victim : int;
  memo_key : int array;
  memo_val : entry option array;
  memo_gen : int array;
  mutable gen : int;
}

let page_shift = 12

let create ~entries =
  if entries <= 0 then invalid_arg "Tlb.create: entries must be positive";
  { slots = Array.make entries None;
    victim = 0;
    memo_key = Array.make memo_size (-1);
    memo_val = Array.make memo_size None;
    memo_gen = Array.make memo_size 0;
    gen = 1;
  }

let capacity t = Array.length t.slots

let generation t = t.gen

let matches ~asid ~vpn = function
  | Some e -> e.vpn = vpn && (e.global || e.asid = asid)
  | None -> false

let lookup t ~asid ~vpn =
  let key = (asid lsl 20) lor vpn in
  let idx = key land memo_mask in
  if t.memo_gen.(idx) = t.gen && t.memo_key.(idx) = key then t.memo_val.(idx)
  else begin
    let n = Array.length t.slots in
    let rec find i =
      if i >= n then None
      else if matches ~asid ~vpn t.slots.(i) then t.slots.(i)
      else find (i + 1)
    in
    let r = find 0 in
    t.memo_key.(idx) <- key;
    t.memo_val.(idx) <- r;
    t.memo_gen.(idx) <- t.gen;
    r
  end

let insert t e =
  t.gen <- t.gen + 1;
  let n = Array.length t.slots in
  let rec find_tag i =
    if i >= n then None
    else
      match t.slots.(i) with
      | Some e' when e'.vpn = e.vpn && e'.asid = e.asid && e'.global = e.global
        -> Some i
      | Some _ | None -> find_tag (i + 1)
  in
  let rec find_free i =
    if i >= n then None else if t.slots.(i) = None then Some i else find_free (i + 1)
  in
  let slot =
    match find_tag 0 with
    | Some i -> i
    | None ->
      begin match find_free 0 with
      | Some i -> i
      | None ->
        let i = t.victim in
        t.victim <- (t.victim + 1) mod n;
        i
      end
  in
  t.slots.(slot) <- Some e

let insert_packed t ~tag ~data =
  let vpn, asid, global = Instr.unpack_tlb_tag tag in
  let ppn, pkey, r, w, x = Instr.unpack_tlb_data data in
  insert t { asid; global; vpn; ppn; r; w; x; pkey }

let probe_packed t ~asid ~vaddr =
  let vpn = Word.bits ~hi:31 ~lo:12 vaddr in
  match lookup t ~asid ~vpn with
  | None -> 0
  | Some e -> Instr.pack_tlb_data ~ppn:e.ppn ~pkey:e.pkey ~r:e.r ~w:e.w ~x:e.x

let flush_all t =
  t.gen <- t.gen + 1;
  Array.fill t.slots 0 (Array.length t.slots) None

let flush_asid t ~asid =
  t.gen <- t.gen + 1;
  Array.iteri
    (fun i slot ->
       match slot with
       | Some e when (not e.global) && e.asid = asid -> t.slots.(i) <- None
       | Some _ | None -> ())
    t.slots

let entries t =
  Array.to_list t.slots |> List.filter_map (fun e -> e)

(* Fault injection (lib/inject): single-bit corruption of an entry's
   packed (tag, data) representation, and spurious invalidation of one
   slot.  Both bump [gen] so the lookup memo is flushed, exactly as
   for a legitimate mutation. *)

let corrupt_slot t ~slot ~bit =
  if slot < 0 || slot >= Array.length t.slots || bit < 0 || bit > 63 then false
  else
    match t.slots.(slot) with
    | None -> false
    | Some e ->
      let tag = Instr.pack_tlb_tag ~vpn:e.vpn ~asid:e.asid ~global:e.global
      and data =
        Instr.pack_tlb_data ~ppn:e.ppn ~pkey:e.pkey ~r:e.r ~w:e.w ~x:e.x
      in
      let tag, data =
        if bit < 32 then (tag, data lxor (1 lsl bit))
        else (tag lxor (1 lsl (bit - 32)), data)
      in
      let vpn, asid, global = Instr.unpack_tlb_tag (Word.of_int tag) in
      let ppn, pkey, r, w, x = Instr.unpack_tlb_data (Word.of_int data) in
      t.gen <- t.gen + 1;
      t.slots.(slot) <- Some { asid; global; vpn; ppn; r; w; x; pkey };
      true

let drop_slot t ~slot =
  if slot < 0 || slot >= Array.length t.slots || t.slots.(slot) = None then
    false
  else begin
    t.gen <- t.gen + 1;
    t.slots.(slot) <- None;
    true
  end
