(** The Metal register file m0–m31 (Section 2).

    Holds Metal's internal state across mroutine invocations.  Not
    cached, invisible to normal mode.  See {!Metal_isa.Reg.Mconv} for
    the register-use conventions. *)

type t

val create : unit -> t

val read : t -> Reg.mreg -> Word.t

val write : t -> Reg.mreg -> Word.t -> unit

val dump : t -> Word.t array
(** A copy of the register file, for inspection and tests. *)

val flip_bit : t -> Reg.mreg -> bit:int -> unit
(** Fault injection ([lib/inject]): flip bit [bit] (0–31) of register
    [m].  Raises [Invalid_argument] on an invalid register or bit. *)
