(** The Metal register file m0–m31 (Section 2).

    Holds Metal's internal state across mroutine invocations.  Not
    cached, invisible to normal mode.  See {!Metal_isa.Reg.Mconv} for
    the register-use conventions. *)

type t

val create : ?ecc:bool -> unit -> t
(** With [~ecc:true] (default false) every register carries SECDED
    Hamming(39,32) check bits ({!Ecc}): regenerated on {!write},
    verified on every read. *)

val ecc : t -> bool

val read : t -> Reg.mreg -> Word.t
(** With ECC armed this is the *corrected view*: a single-bit upset is
    repaired silently; an uncorrectable register reads raw.  Use
    {!read_checked} where the decode status matters. *)

val read_checked : t -> Reg.mreg -> Word.t * Ecc.result
(** Like {!read} but also reports what the SECDED decoder saw.  The
    word is always the corrected view; [Ecc.Clean] when ECC is off. *)

val write : t -> Reg.mreg -> Word.t -> unit

val dump : t -> Word.t array
(** A copy of the register file (corrected view), for inspection and
    tests. *)

val flip_bit : t -> Reg.mreg -> bit:int -> unit
(** Fault injection ([lib/inject]): flip bit [bit] (0–31) of register
    [m] in the *stored* word, underneath the ECC encoder (check bits
    untouched).  Raises [Invalid_argument] on an invalid register or
    bit. *)
