(** MRAM: the RAM collocated with the instruction fetch unit that
    stores mroutines (Section 2).

    The RAM partitions code and data into separate segments.  The code
    segment holds up to 64 mroutines addressed by a Metal-mode program
    counter (byte offset into the segment); the data segment holds
    mroutine private data accessed with [mld]/[mst].  MRAM contents are
    never cached and are invisible to normal-mode code. *)

type t

val create : ?ecc:bool -> code_words:int -> data_bytes:int -> unit -> t
(** [data_bytes] must be a multiple of 4.  With [~ecc:true] (default
    false) the data segment carries SECDED Hamming(39,32) check bits
    per word ({!Ecc}): regenerated on {!store_word}, verified on every
    read.  The code segment is already covered by {!checksum_code}. *)

val ecc : t -> bool
(** Whether the data segment carries ECC check bits. *)

val code_bytes : t -> int
val data_bytes : t -> int

val version : t -> int
(** Reconfiguration counter: incremented on [load_image], [set_entry]
    and [store_word].  The CPU's predecoded-instruction cache compares
    this against the value captured at fill time to invalidate stale
    Metal-mode entries. *)

val max_entries : int
(** 64 mroutine entries. *)

val load_image : t -> Metal_asm.Image.t -> (unit, string) result
(** Load an assembled mcode image: chunk addresses are byte offsets
    into the code segment; every [.mentry] in the image is registered.
    Loading is additive — several images may be loaded at disjoint
    offsets (e.g. with [.org]) as long as entries do not collide. *)

val set_entry : t -> entry:int -> addr:int -> (unit, string) result
(** Register entry [entry] at code offset [addr] directly. *)

val entry_addr : t -> int -> int option
(** Code offset of an mroutine entry, if registered. *)

val entries : t -> (int * int) list
(** All registered (entry, offset) pairs, sorted. *)

val fetch : t -> addr:int -> Word.t option
(** Instruction fetch at a byte offset ([None] when out of segment or
    unaligned). *)

val load_word : t -> addr:int -> Word.t option
(** [mld]: word read from the data segment.  With ECC armed this is
    the *corrected view*: a single-bit upset is repaired silently (no
    event, no scrub of the stored bytes); an uncorrectable word is
    returned raw.  Use {!load_word_checked} where the decode status
    matters (the pipeline consumption points). *)

val load_word_checked : t -> addr:int -> (Word.t * Ecc.result) option
(** Like {!load_word} but also reports what the SECDED decoder saw.
    The returned word is always the corrected view; with ECC off the
    status is always [Ecc.Clean].  [None] only for out-of-segment or
    unaligned addresses. *)

val store_word : t -> addr:int -> Word.t -> bool
(** [mst]: word write to the data segment; false when out of range. *)

val clear_data : t -> unit
(** Zero the data segment (used between benchmark runs). *)

(** {2 Fault injection}

    Narrow mutation surface for [lib/inject]: single-bit upsets in the
    stored arrays.  Both mutators bump {!version}, so cached derived
    state (the CPU's predecode cache) is invalidated exactly as for a
    legitimate write — a flipped code word must be re-fetched and
    re-decoded, never served from a stale predecode entry. *)

val corrupt_code_bit : t -> word:int -> bit:int -> bool
(** Flip bit [bit] of code-segment word index [word]; [false] (and no
    change) when either is out of range. *)

val corrupt_data_bit : t -> addr:int -> bit:int -> bool
(** Flip bit [bit] of the data-segment word at byte offset [addr]
    (word-aligned); [false] when out of range.  The flip lands on the
    *stored* bytes underneath the ECC encoder (check bits untouched),
    so with ECC armed the upset remains visible to the decoder. *)

val checksum_code : t -> int
(** FNV-1a hash of the full code segment.  {!Metal_cpu.Machine} records
    it at [load_mcode] time and re-checks it on Metal-mode entry when
    integrity checking is enabled (the dynamic analogue of the static
    mverify pass). *)
