(** SECDED Hamming(39,32) codec for Metal's fault-vulnerable state.

    Every protected 32-bit word carries 7 check bits: 6 Hamming parity
    bits plus one overall parity bit.  A single flipped bit anywhere in
    the 39-bit codeword (data, Hamming check bits, or the parity bit)
    is corrected; any two flipped bits are detected as uncorrectable
    and never miscorrected.  [encode 0 = 0], so zero-initialised
    storage is a valid codeword without an explicit scrub pass.

    Used by {!Mram} (data segment) and {!Mregs} when the machine is
    created with ECC armed ([Metal_cpu.Config.ecc]). *)

val check_bits : int
(** 7: width of the stored check word. *)

val codeword_bits : int
(** 39: 32 data + 6 Hamming + 1 overall parity. *)

val encode : Word.t -> int
(** Check word (7 bits) for a 32-bit data word. *)

type result =
  | Clean  (** No error. *)
  | Corrected of { data : Word.t; bit : int }
      (** Single-bit error corrected.  [data] is the corrected word;
          [bit] identifies the flipped codeword bit: 0–31 a data bit,
          32–37 Hamming check bit [bit - 32], 38 the overall parity
          bit. *)
  | Uncorrectable  (** Double-bit (or worse) error detected. *)

val decode : data:Word.t -> check:int -> result
(** Decode a stored (data, check) pair.  For [Corrected], the caller
    should consume [data] from the result, not the raw stored word. *)
