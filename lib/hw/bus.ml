type device = {
  name : string;
  base : int;
  size : int;
  read32 : int -> Word.t;
  write32 : int -> Word.t -> unit;
  tick : cycle:int -> unit;
}

type t = { mem : Phys_mem.t; mutable devices : device list }

let mmio_base = 0xF000_0000

let create ~mem = { mem; devices = [] }

let memory t = t.mem

let overlaps a_base a_size b_base b_size =
  a_base < b_base + b_size && b_base < a_base + a_size

let attach t d =
  if d.size <= 0 || d.size land 3 <> 0 || d.base land 3 <> 0 then
    invalid_arg "Bus.attach: window must be word-aligned";
  if overlaps d.base d.size 0 (Phys_mem.size t.mem) then
    invalid_arg (Printf.sprintf "Bus.attach: %s overlaps RAM" d.name);
  List.iter
    (fun d' ->
       if overlaps d.base d.size d'.base d'.size then
         invalid_arg
           (Printf.sprintf "Bus.attach: %s overlaps %s" d.name d'.name))
    t.devices;
  t.devices <- d :: t.devices

let find_device t addr =
  List.find_opt (fun d -> addr >= d.base && addr < d.base + d.size) t.devices

let width_bytes = function Instr.Byte -> 1 | Instr.Half -> 2 | Instr.Word -> 4

let load t ~width ~addr =
  let bytes = width_bytes width in
  if Phys_mem.in_range t.mem ~addr ~width:bytes then
    Ok
      (match width with
       | Instr.Byte -> Phys_mem.read8 t.mem addr
       | Instr.Half -> Phys_mem.read16 t.mem addr
       | Instr.Word -> Phys_mem.read32 t.mem addr)
  else
    match find_device t addr with
    | Some d when width = Instr.Word -> Ok (d.read32 (addr - d.base))
    | Some _ | None -> Error Cause.Access_fault

let store t ~width ~addr v =
  let bytes = width_bytes width in
  if Phys_mem.in_range t.mem ~addr ~width:bytes then begin
    begin match width with
    | Instr.Byte -> Phys_mem.write8 t.mem addr v
    | Instr.Half -> Phys_mem.write16 t.mem addr v
    | Instr.Word -> Phys_mem.write32 t.mem addr v
    end;
    Ok ()
  end
  else
    match find_device t addr with
    | Some d when width = Instr.Word ->
      d.write32 (addr - d.base) v;
      Ok ()
    | Some _ | None -> Error Cause.Access_fault

(* Called every simulated cycle; a top-level loop avoids the closure
   [List.iter] would allocate per call. *)
let rec tick_devices devices ~cycle =
  match devices with
  | [] -> ()
  | d :: rest ->
    d.tick ~cycle;
    tick_devices rest ~cycle

let tick t ~cycle = tick_devices t.devices ~cycle
