type t = {
  chunks : (int * string) list;
  symbols : (string * int) list;
  mentries : (int * int) list;
  mbounds : (int * int) list;
  listing : (int * Word.t * string) list;
}

module Builder = struct
  type image = t

  type t = {
    bytes : (int, int) Hashtbl.t;
    mutable symbols : (string * int) list;
    mutable mentries : (int * int) list;
    mutable mbounds : (int * int) list;
    mutable listing : (int * Word.t * string) list;
  }

  let create () =
    { bytes = Hashtbl.create 1024; symbols = []; mentries = [];
      mbounds = []; listing = [] }

  let emit_byte b ~addr v =
    if Hashtbl.mem b.bytes addr then
      Error (Printf.sprintf "overlapping emission at address 0x%08x" addr)
    else begin
      Hashtbl.add b.bytes addr (v land 0xFF);
      Ok ()
    end

  let ( let* ) = Result.bind

  let emit_word b ~addr w =
    let* () = emit_byte b ~addr (w land 0xFF) in
    let* () = emit_byte b ~addr:(addr + 1) ((w lsr 8) land 0xFF) in
    let* () = emit_byte b ~addr:(addr + 2) ((w lsr 16) land 0xFF) in
    emit_byte b ~addr:(addr + 3) ((w lsr 24) land 0xFF)

  let add_symbol b name v =
    match List.assoc_opt name b.symbols with
    | Some v' when v' <> v ->
      Error (Printf.sprintf "symbol %S redefined (0x%x vs 0x%x)" name v' v)
    | Some _ -> Ok ()
    | None ->
      b.symbols <- (name, v) :: b.symbols;
      Ok ()

  let add_mentry b ~entry ~addr =
    if List.mem_assoc entry b.mentries then
      Error (Printf.sprintf "duplicate .mentry %d" entry)
    else begin
      b.mentries <- (entry, addr) :: b.mentries;
      Ok ()
    end

  let add_mbound b ~addr ~bound =
    match List.assoc_opt addr b.mbounds with
    | Some b' when b' <> bound ->
      Error
        (Printf.sprintf "conflicting .mbound at 0x%08x (%d vs %d)" addr b'
           bound)
    | Some _ -> Ok ()
    | None ->
      b.mbounds <- (addr, bound) :: b.mbounds;
      Ok ()

  let add_listing b ~addr w src = b.listing <- (addr, w, src) :: b.listing

  let finish b =
    let addrs = Hashtbl.fold (fun a _ acc -> a :: acc) b.bytes [] in
    let addrs = List.sort compare addrs in
    let chunks =
      let rec build acc current = function
        | [] ->
          let acc =
            match current with
            | None -> acc
            | Some (start, buf) -> (start, Buffer.contents buf) :: acc
          in
          List.rev acc
        | a :: rest ->
          let byte = Hashtbl.find b.bytes a in
          begin match current with
          | Some (start, buf) when start + Buffer.length buf = a ->
            Buffer.add_char buf (Char.chr byte);
            build acc (Some (start, buf)) rest
          | Some (start, buf) ->
            let buf' = Buffer.create 64 in
            Buffer.add_char buf' (Char.chr byte);
            build ((start, Buffer.contents buf) :: acc) (Some (a, buf')) rest
          | None ->
            let buf = Buffer.create 64 in
            Buffer.add_char buf (Char.chr byte);
            build acc (Some (a, buf)) rest
          end
      in
      build [] None addrs
    in
    {
      chunks;
      symbols = List.rev b.symbols;
      mentries = List.sort compare b.mentries;
      mbounds = List.sort compare b.mbounds;
      listing = List.rev b.listing;
    }
end

let empty =
  { chunks = []; symbols = []; mentries = []; mbounds = []; listing = [] }

let find_symbol img name = List.assoc_opt name img.symbols

let byte_at img addr =
  List.find_map
    (fun (start, data) ->
       if addr >= start && addr < start + String.length data then
         Some (Char.code data.[addr - start])
       else None)
    img.chunks

let word_at img addr =
  match
    (byte_at img addr, byte_at img (addr + 1), byte_at img (addr + 2),
     byte_at img (addr + 3))
  with
  | Some b0, Some b1, Some b2, Some b3 ->
    Some (b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24))
  | _ -> None

let size img =
  List.fold_left (fun acc (_, data) -> acc + String.length data) 0 img.chunks

let bounds img =
  match img.chunks with
  | [] -> None
  | chunks ->
    let lo = List.fold_left (fun acc (a, _) -> min acc a) max_int chunks in
    let hi =
      List.fold_left (fun acc (a, d) -> max acc (a + String.length d)) 0 chunks
    in
    Some (lo, hi)

let pp_listing fmt img =
  List.iter
    (fun (addr, w, src) ->
       Format.fprintf fmt "%08x: %08x  %s@." addr w src)
    img.listing
