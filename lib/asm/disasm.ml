let word w =
  match Decode.decode w with
  | Ok i -> Instr.to_string i
  | Error _ -> Printf.sprintf ".word 0x%08x" w

let line addr w = Printf.sprintf "%08x: %08x  %s" addr w (word w)

let image (img : Image.t) =
  let buf = Buffer.create 256 in
  List.iter
    (fun (start, data) ->
       let words = String.length data / 4 in
       for i = 0 to words - 1 do
         let w =
           Char.code data.[4 * i]
           lor (Char.code data.[(4 * i) + 1] lsl 8)
           lor (Char.code data.[(4 * i) + 2] lsl 16)
           lor (Char.code data.[(4 * i) + 3] lsl 24)
         in
         Buffer.add_string buf (line (start + (4 * i)) w);
         Buffer.add_char buf '\n'
       done;
       (* A chunk need not be word-sized: .byte/.ascii tails are real
          bytes in the image and must not vanish from the listing. *)
       for i = 4 * words to String.length data - 1 do
         Buffer.add_string buf
           (Printf.sprintf "%08x: %02x        .byte 0x%02x" (start + i)
              (Char.code data.[i]) (Char.code data.[i]));
         Buffer.add_char buf '\n'
       done)
    img.Image.chunks;
  Buffer.contents buf

let range ~read ~start ~count =
  let buf = Buffer.create 256 in
  for i = 0 to count - 1 do
    let addr = start + (4 * i) in
    Buffer.add_string buf (line addr (read addr));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
