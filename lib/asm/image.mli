(** Assembled program images.

    An image is a set of byte chunks at absolute addresses plus the
    symbol table, the mroutine entry table (from [.mentry] directives)
    and a listing used for disassembly and debugging. *)

type t = {
  chunks : (int * string) list;
      (** Coalesced, address-sorted, non-overlapping (address, bytes). *)
  symbols : (string * int) list;  (** label/[.equ] name -> value. *)
  mentries : (int * int) list;
      (** mroutine entry number -> address within the image. *)
  mbounds : (int * int) list;
      (** address -> execution bound (from [.mbound] directives): the
          instruction at that address executes at most [bound] times
          per mroutine invocation.  Consumed by the static verifier's
          WCET pass; address-sorted. *)
  listing : (int * Word.t * string) list;
      (** (address, instruction word, source text) per emitted
          instruction, in emission order. *)
}

module Builder : sig
  type image = t

  type t

  val create : unit -> t

  val emit_byte : t -> addr:int -> int -> (unit, string) result
  (** Fails on overlapping emission. *)

  val emit_word : t -> addr:int -> Word.t -> (unit, string) result
  (** Little-endian. *)

  val add_symbol : t -> string -> int -> (unit, string) result
  (** Fails on redefinition with a different value. *)

  val add_mentry : t -> entry:int -> addr:int -> (unit, string) result
  (** Fails on duplicate entry numbers. *)

  val add_mbound : t -> addr:int -> bound:int -> (unit, string) result
  (** Record a loop bound for the instruction at [addr]; fails on a
      conflicting bound at the same address. *)

  val add_listing : t -> addr:int -> Word.t -> string -> unit

  val finish : t -> image
end

val empty : t

val find_symbol : t -> string -> int option

val byte_at : t -> int -> int option
(** [byte_at img addr] reads one byte, or [None] outside all chunks. *)

val word_at : t -> int -> Word.t option
(** Little-endian 32-bit read; [None] if any byte is missing. *)

val size : t -> int
(** Total number of emitted bytes. *)

val bounds : t -> (int * int) option
(** [(lowest, highest + 1)] address range covered, or [None] when
    empty. *)

val pp_listing : Format.formatter -> t -> unit
(** Address / word / source listing, one instruction per line. *)
