type error = { line : int; msg : string }

let error_to_string { line; msg } = Printf.sprintf "line %d: %s" line msg

exception Fail of error

let fail line fmt = Printf.ksprintf (fun msg -> raise (Fail { line; msg })) fmt

type body =
  | Directive of string * Lex.token list
  | Insn of string * Lex.token list

type stmt = {
  line : int;
  source : string;
  labels : string list;
  body : body option;
  mutable addr : int;
  mutable size : int;
  mutable li_small : bool;  (** for [li]: single-instruction form. *)
}

(* ------------------------------------------------------------------ *)
(* Parsing (pass 0)                                                    *)

let parse_line ~line source =
  match Lex.tokenize source with
  | Error msg -> raise (Fail { line; msg })
  | Ok tokens ->
    let rec take_labels acc = function
      | Lex.Ident name :: Lex.Colon :: rest when name.[0] <> '.' ->
        take_labels (name :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let labels, rest = take_labels [] tokens in
    let body =
      match rest with
      | [] -> None
      | Lex.Ident name :: operands when name.[0] = '.' ->
        Some (Directive (name, operands))
      | Lex.Ident name :: operands -> Some (Insn (name, operands))
      | t :: _ ->
        fail line "expected label, directive or instruction, found %S"
          (Lex.token_to_string t)
    in
    { line; source = String.trim source; labels; body; addr = 0; size = 0;
      li_small = false }

let parse source =
  let lines = String.split_on_char '\n' source in
  List.mapi (fun i l -> parse_line ~line:(i + 1) l) lines

(* ------------------------------------------------------------------ *)
(* Operand helpers                                                     *)

(* Split a token list on commas (the grammar has no nested commas). *)
let split_operands tokens =
  let rec go current acc = function
    | [] ->
      let acc = if current = [] && acc = [] then [] else List.rev current :: acc in
      List.rev acc
    | Lex.Comma :: rest -> go [] (List.rev current :: acc) rest
    | t :: rest -> go (t :: current) acc rest
  in
  go [] [] tokens

let as_reg line = function
  | [ Lex.Ident r ] ->
    begin match Reg.of_string r with
    | Some reg -> reg
    | None -> fail line "unknown register %S" r
    end
  | toks ->
    fail line "expected a register, found %S"
      (String.concat " " (List.map Lex.token_to_string toks))

let as_mreg line = function
  | [ Lex.Ident r ] ->
    begin match Reg.mreg_of_string r with
    | Some m -> m
    | None -> fail line "unknown metal register %S" r
    end
  | toks ->
    fail line "expected a metal register (m0..m31), found %S"
      (String.concat " " (List.map Lex.token_to_string toks))

let parse_expr line toks =
  match Expr.parse toks with
  | Ok (e, []) -> e
  | Ok (_, t :: _) ->
    fail line "trailing tokens after expression: %S" (Lex.token_to_string t)
  | Error msg -> fail line "%s" msg

(* EXPR '(' REG ')' with an optional empty displacement: '(' REG ')'. *)
let as_mem line toks =
  let disp, rest =
    match toks with
    | Lex.Lparen :: _ -> (Expr.Num 0, toks)
    | _ ->
      begin match Expr.parse toks with
      | Ok (e, rest) -> (e, rest)
      | Error msg -> fail line "%s" msg
      end
  in
  match rest with
  | [ Lex.Lparen; Lex.Ident r; Lex.Rparen ] ->
    begin match Reg.of_string r with
    | Some reg -> (disp, reg)
    | None -> fail line "unknown register %S" r
    end
  | _ -> fail line "expected displacement(register) operand"

let as_csr line = function
  | [ Lex.Ident name ] as toks ->
    begin match Csr.of_name name with
    | Some id -> Expr.Num id
    | None -> parse_expr line toks
    end
  | toks -> parse_expr line toks

(* ------------------------------------------------------------------ *)
(* Instruction table                                                   *)

let alu_imm_ops =
  [ ("addi", Instr.Add); ("slti", Instr.Slt); ("sltiu", Instr.Sltu);
    ("xori", Instr.Xor); ("ori", Instr.Or); ("andi", Instr.And);
    ("slli", Instr.Sll); ("srli", Instr.Srl); ("srai", Instr.Sra) ]

let alu_reg_ops =
  [ ("add", Instr.Add); ("sub", Instr.Sub); ("sll", Instr.Sll);
    ("slt", Instr.Slt); ("sltu", Instr.Sltu); ("xor", Instr.Xor);
    ("srl", Instr.Srl); ("sra", Instr.Sra); ("or", Instr.Or);
    ("and", Instr.And) ]

let branches =
  [ ("beq", Instr.Beq); ("bne", Instr.Bne); ("blt", Instr.Blt);
    ("bge", Instr.Bge); ("bltu", Instr.Bltu); ("bgeu", Instr.Bgeu) ]

let swapped_branches =
  [ ("bgt", Instr.Blt); ("ble", Instr.Bge); ("bgtu", Instr.Bltu);
    ("bleu", Instr.Bgeu) ]

let zero_branches =
  [ ("beqz", Instr.Beq); ("bnez", Instr.Bne); ("bltz", Instr.Blt);
    ("bgez", Instr.Bge) ]

let loads =
  [ ("lb", (Instr.Byte, false)); ("lh", (Instr.Half, false));
    ("lw", (Instr.Word, false)); ("lbu", (Instr.Byte, true));
    ("lhu", (Instr.Half, true)) ]

let stores = [ ("sb", Instr.Byte); ("sh", Instr.Half); ("sw", Instr.Word) ]

let is_mnemonic name =
  List.mem_assoc name alu_imm_ops || List.mem_assoc name alu_reg_ops
  || List.mem_assoc name branches || List.mem_assoc name swapped_branches
  || List.mem_assoc name zero_branches || List.mem_assoc name loads
  || List.mem_assoc name stores
  || List.mem name
       [ "lui"; "auipc"; "jal"; "jalr"; "ecall"; "ebreak"; "fence";
         "menter"; "mexit"; "rmr"; "wmr"; "mld"; "mst"; "physld"; "physst";
         "tlbw"; "tlbflush"; "tlbprobe"; "gprr"; "gprw"; "iceptset";
         "iceptclr"; "mcsrr"; "mcsrw"; "nop"; "li"; "la"; "mv"; "not";
         "neg"; "seqz"; "snez"; "sltz"; "sgtz"; "j"; "jr"; "ret"; "call";
         "tail"; "blez"; "bgtz" ]

(* Number of bytes an instruction statement occupies.  [try_eval]
   attempts evaluation against the pass-1 symbol table. *)
let insn_size line ~try_eval name operands =
  if not (is_mnemonic name) then fail line "unknown instruction %S" name;
  match name with
  | "la" -> (8, false)
  | "li" ->
    begin match split_operands operands with
    | [ _; etoks ] ->
      let e = parse_expr line etoks in
      begin match try_eval e with
      | Some v when Word.fits_signed ~width:12 v -> (4, true)
      | Some _ | None -> (8, false)
      end
    | _ -> fail line "li expects: li rd, expr"
    end
  | _ -> (4, false)

(* ------------------------------------------------------------------ *)
(* Expansion (pass 2): statement -> concrete instructions              *)

let li_parts v =
  let v = Word.of_int v in
  let hi = Word.bits ~hi:31 ~lo:12 (Word.add v 0x800) in
  let lo = Word.sign_extend ~width:12 v in
  (hi, lo)

let expand line ~eval ~addr ~li_small name operands =
  let ops = split_operands operands in
  let reg = as_reg line in
  let mreg = as_mreg line in
  let expr toks = parse_expr line toks in
  let value toks = eval (expr toks) in
  let mem toks =
    let disp, base = as_mem line toks in
    (eval disp, base)
  in
  let target toks = eval (expr toks) - addr in
  let arity n =
    if List.length ops <> n then
      fail line "%s expects %d operand(s), got %d" name n (List.length ops)
  in
  let branch cond rs1 rs2 t = Instr.Branch { cond; rs1; rs2; offset = t } in
  match name with
  | _ when List.mem_assoc name alu_imm_ops ->
    arity 3;
    let op = List.assoc name alu_imm_ops in
    [ Instr.Op_imm { op; rd = reg (List.nth ops 0); rs1 = reg (List.nth ops 1);
                     imm = value (List.nth ops 2) } ]
  | _ when List.mem_assoc name alu_reg_ops ->
    arity 3;
    let op = List.assoc name alu_reg_ops in
    [ Instr.Op { op; rd = reg (List.nth ops 0); rs1 = reg (List.nth ops 1);
                 rs2 = reg (List.nth ops 2) } ]
  | _ when List.mem_assoc name branches ->
    arity 3;
    let cond = List.assoc name branches in
    [ branch cond (reg (List.nth ops 0)) (reg (List.nth ops 1))
        (target (List.nth ops 2)) ]
  | _ when List.mem_assoc name swapped_branches ->
    arity 3;
    let cond = List.assoc name swapped_branches in
    [ branch cond (reg (List.nth ops 1)) (reg (List.nth ops 0))
        (target (List.nth ops 2)) ]
  | _ when List.mem_assoc name zero_branches ->
    arity 2;
    let cond = List.assoc name zero_branches in
    [ branch cond (reg (List.nth ops 0)) Reg.zero (target (List.nth ops 1)) ]
  | "blez" ->
    arity 2;
    [ branch Instr.Bge Reg.zero (reg (List.nth ops 0)) (target (List.nth ops 1)) ]
  | "bgtz" ->
    arity 2;
    [ branch Instr.Blt Reg.zero (reg (List.nth ops 0)) (target (List.nth ops 1)) ]
  | _ when List.mem_assoc name loads ->
    arity 2;
    let width, unsigned = List.assoc name loads in
    let offset, rs1 = mem (List.nth ops 1) in
    [ Instr.Load { width; unsigned; rd = reg (List.nth ops 0); rs1; offset } ]
  | _ when List.mem_assoc name stores ->
    arity 2;
    let width = List.assoc name stores in
    let offset, rs1 = mem (List.nth ops 1) in
    [ Instr.Store { width; rs2 = reg (List.nth ops 0); rs1; offset } ]
  | "lui" ->
    arity 2;
    [ Instr.Lui { rd = reg (List.nth ops 0); imm = value (List.nth ops 1) } ]
  | "auipc" ->
    arity 2;
    [ Instr.Auipc { rd = reg (List.nth ops 0); imm = value (List.nth ops 1) } ]
  | "jal" ->
    begin match ops with
    | [ t ] -> [ Instr.Jal { rd = Reg.ra; offset = target t } ]
    | [ rd; t ] -> [ Instr.Jal { rd = reg rd; offset = target t } ]
    | _ -> fail line "jal expects: jal [rd,] target"
    end
  | "jalr" ->
    begin match ops with
    | [ rs ] -> [ Instr.Jalr { rd = Reg.ra; rs1 = reg rs; offset = 0 } ]
    | [ rd; m ] ->
      let offset, rs1 = mem m in
      [ Instr.Jalr { rd = reg rd; rs1; offset } ]
    | _ -> fail line "jalr expects: jalr rs | jalr rd, off(rs)"
    end
  | "ecall" -> arity 0; [ Instr.Ecall ]
  | "ebreak" -> arity 0; [ Instr.Ebreak ]
  | "fence" -> arity 0; [ Instr.Fence ]
  (* Metal instructions *)
  | "menter" ->
    arity 1;
    [ Instr.Metal (Instr.Menter { entry = value (List.nth ops 0) }) ]
  | "mexit" -> arity 0; [ Instr.Metal Instr.Mexit ]
  | "rmr" ->
    arity 2;
    [ Instr.Metal (Instr.Rmr { rd = reg (List.nth ops 0);
                               mr = mreg (List.nth ops 1) }) ]
  | "wmr" ->
    arity 2;
    [ Instr.Metal (Instr.Wmr { mr = mreg (List.nth ops 0);
                               rs1 = reg (List.nth ops 1) }) ]
  | "mld" ->
    arity 2;
    let offset, rs1 = mem (List.nth ops 1) in
    [ Instr.Metal (Instr.Mld { rd = reg (List.nth ops 0); rs1; offset }) ]
  | "mst" ->
    arity 2;
    let offset, rs1 = mem (List.nth ops 1) in
    [ Instr.Metal (Instr.Mst { rs2 = reg (List.nth ops 0); rs1; offset }) ]
  | "physld" ->
    arity 2;
    let offset, rs1 = mem (List.nth ops 1) in
    [ Instr.Metal (Instr.Feature
                     (Instr.Physld { rd = reg (List.nth ops 0); rs1; offset })) ]
  | "physst" ->
    arity 2;
    let offset, rs1 = mem (List.nth ops 1) in
    [ Instr.Metal (Instr.Feature
                     (Instr.Physst { rs2 = reg (List.nth ops 0); rs1; offset })) ]
  | "tlbw" ->
    arity 2;
    [ Instr.Metal (Instr.Feature
                     (Instr.Tlbw { rs1 = reg (List.nth ops 0);
                                   rs2 = reg (List.nth ops 1) })) ]
  | "tlbflush" ->
    arity 1;
    [ Instr.Metal (Instr.Feature (Instr.Tlbflush { rs1 = reg (List.nth ops 0) })) ]
  | "tlbprobe" ->
    arity 2;
    [ Instr.Metal (Instr.Feature
                     (Instr.Tlbprobe { rd = reg (List.nth ops 0);
                                       rs1 = reg (List.nth ops 1) })) ]
  | "gprr" ->
    arity 2;
    [ Instr.Metal (Instr.Feature
                     (Instr.Gprr { rd = reg (List.nth ops 0);
                                   rs1 = reg (List.nth ops 1) })) ]
  | "gprw" ->
    arity 2;
    [ Instr.Metal (Instr.Feature
                     (Instr.Gprw { rs1 = reg (List.nth ops 0);
                                   rs2 = reg (List.nth ops 1) })) ]
  | "iceptset" ->
    arity 2;
    [ Instr.Metal (Instr.Feature
                     (Instr.Iceptset { rs1 = reg (List.nth ops 0);
                                       rs2 = reg (List.nth ops 1) })) ]
  | "iceptclr" ->
    arity 1;
    [ Instr.Metal (Instr.Feature (Instr.Iceptclr { rs1 = reg (List.nth ops 0) })) ]
  | "mcsrr" ->
    arity 2;
    let csr = eval (as_csr line (List.nth ops 1)) in
    [ Instr.Metal (Instr.Feature (Instr.Mcsrr { rd = reg (List.nth ops 0); csr })) ]
  | "mcsrw" ->
    arity 2;
    let csr = eval (as_csr line (List.nth ops 0)) in
    [ Instr.Metal (Instr.Feature (Instr.Mcsrw { csr; rs1 = reg (List.nth ops 1) })) ]
  (* Pseudo-instructions *)
  | "nop" -> arity 0; [ Instr.Op_imm { op = Instr.Add; rd = 0; rs1 = 0; imm = 0 } ]
  | "li" ->
    arity 2;
    let rd = reg (List.nth ops 0) in
    let v = value (List.nth ops 1) in
    if li_small then [ Instr.Op_imm { op = Instr.Add; rd; rs1 = 0; imm = v } ]
    else
      let hi, lo = li_parts v in
      [ Instr.Lui { rd; imm = hi };
        Instr.Op_imm { op = Instr.Add; rd; rs1 = rd; imm = lo } ]
  | "la" ->
    arity 2;
    let rd = reg (List.nth ops 0) in
    let v = value (List.nth ops 1) in
    let hi, lo = li_parts v in
    [ Instr.Lui { rd; imm = hi };
      Instr.Op_imm { op = Instr.Add; rd; rs1 = rd; imm = lo } ]
  | "mv" ->
    arity 2;
    [ Instr.Op_imm { op = Instr.Add; rd = reg (List.nth ops 0);
                     rs1 = reg (List.nth ops 1); imm = 0 } ]
  | "not" ->
    arity 2;
    [ Instr.Op_imm { op = Instr.Xor; rd = reg (List.nth ops 0);
                     rs1 = reg (List.nth ops 1); imm = -1 } ]
  | "neg" ->
    arity 2;
    [ Instr.Op { op = Instr.Sub; rd = reg (List.nth ops 0); rs1 = 0;
                 rs2 = reg (List.nth ops 1) } ]
  | "seqz" ->
    arity 2;
    [ Instr.Op_imm { op = Instr.Sltu; rd = reg (List.nth ops 0);
                     rs1 = reg (List.nth ops 1); imm = 1 } ]
  | "snez" ->
    arity 2;
    [ Instr.Op { op = Instr.Sltu; rd = reg (List.nth ops 0); rs1 = 0;
                 rs2 = reg (List.nth ops 1) } ]
  | "sltz" ->
    arity 2;
    [ Instr.Op { op = Instr.Slt; rd = reg (List.nth ops 0);
                 rs1 = reg (List.nth ops 1); rs2 = 0 } ]
  | "sgtz" ->
    arity 2;
    [ Instr.Op { op = Instr.Slt; rd = reg (List.nth ops 0); rs1 = 0;
                 rs2 = reg (List.nth ops 1) } ]
  | "j" ->
    arity 1;
    [ Instr.Jal { rd = 0; offset = target (List.nth ops 0) } ]
  | "jr" ->
    arity 1;
    [ Instr.Jalr { rd = 0; rs1 = reg (List.nth ops 0); offset = 0 } ]
  | "ret" -> arity 0; [ Instr.Jalr { rd = 0; rs1 = Reg.ra; offset = 0 } ]
  | "call" ->
    arity 1;
    [ Instr.Jal { rd = Reg.ra; offset = target (List.nth ops 0) } ]
  | "tail" ->
    arity 1;
    [ Instr.Jal { rd = 0; offset = target (List.nth ops 0) } ]
  | _ -> fail line "unknown instruction %S" name

(* ------------------------------------------------------------------ *)
(* Directives                                                          *)

let directive_known = function
  | ".org" | ".align" | ".space" | ".word" | ".half" | ".byte" | ".ascii"
  | ".asciiz" | ".equ" | ".mentry" | ".mbound" | ".global" | ".text"
  | ".data" -> true
  | _ -> false

(* Size and layout effect of a directive during pass 1.  [define] adds
   a symbol; [resolve] evaluates an expression or fails. *)
let directive_pass1 line ~resolve ~define ~lc name operands =
  let ops = split_operands operands in
  match name with
  | ".org" ->
    begin match ops with
    | [ toks ] -> (resolve (parse_expr line toks), 0)
    | _ -> fail line ".org expects one expression"
    end
  | ".align" ->
    begin match ops with
    | [ toks ] ->
      let n = resolve (parse_expr line toks) in
      if n < 0 || n > 20 then fail line ".align %d out of range" n;
      let align = 1 lsl n in
      let aligned = (lc + align - 1) land lnot (align - 1) in
      (aligned, 0)
    | _ -> fail line ".align expects one expression"
    end
  | ".space" ->
    begin match ops with
    | [ toks ] ->
      let n = resolve (parse_expr line toks) in
      if n < 0 then fail line ".space with negative size";
      (lc, n)
    | _ -> fail line ".space expects one expression"
    end
  | ".word" -> (lc, 4 * List.length ops)
  | ".half" -> (lc, 2 * List.length ops)
  | ".byte" -> (lc, List.length ops)
  | ".ascii" | ".asciiz" ->
    begin match ops with
    | [ [ Lex.Str s ] ] ->
      (lc, String.length s + if name = ".asciiz" then 1 else 0)
    | _ -> fail line "%s expects one string literal" name
    end
  | ".equ" ->
    begin match ops with
    | [ [ Lex.Ident sym ]; etoks ] ->
      define sym (resolve (parse_expr line etoks));
      (lc, 0)
    | _ -> fail line ".equ expects: .equ name, expr"
    end
  | ".mentry" | ".mbound" | ".global" | ".text" | ".data" -> (lc, 0)
  | _ -> fail line "unknown directive %S" name

let directive_pass2 line ~eval ~builder ~addr name operands =
  let ops = split_operands operands in
  let emit_scalar width v idx =
    let base = addr + (width * idx) in
    let rec put i =
      if i < width then begin
        begin match Image.Builder.emit_byte builder ~addr:(base + i)
                      ((v lsr (8 * i)) land 0xFF) with
        | Ok () -> ()
        | Error msg -> fail line "%s" msg
        end;
        put (i + 1)
      end
    in
    put 0
  in
  match name with
  | ".word" | ".half" | ".byte" ->
    let width =
      match name with ".word" -> 4 | ".half" -> 2 | _ -> 1
    in
    List.iteri (fun i toks -> emit_scalar width (eval (parse_expr line toks)) i)
      ops
  | ".ascii" | ".asciiz" ->
    begin match ops with
    | [ [ Lex.Str s ] ] ->
      String.iteri
        (fun i c ->
           match Image.Builder.emit_byte builder ~addr:(addr + i)
                   (Char.code c) with
           | Ok () -> ()
           | Error msg -> fail line "%s" msg)
        s;
      if name = ".asciiz" then
        begin match Image.Builder.emit_byte builder
                      ~addr:(addr + String.length s) 0 with
        | Ok () -> ()
        | Error msg -> fail line "%s" msg
        end
    | _ -> fail line "%s expects one string literal" name
    end
  | ".mentry" ->
    begin match ops with
    | [ etoks; ltoks ] ->
      let entry = eval (parse_expr line etoks) in
      let target = eval (parse_expr line ltoks) in
      begin match Image.Builder.add_mentry builder ~entry ~addr:target with
      | Ok () -> ()
      | Error msg -> fail line "%s" msg
      end
    | _ -> fail line ".mentry expects: .mentry entry, label"
    end
  | ".mbound" ->
    (* Loop-bound annotation: the instruction assembled at the current
       location counter executes at most BOUND times per mroutine
       invocation.  Pure metadata (emits no bytes); the static
       verifier's WCET pass consumes it. *)
    begin match ops with
    | [ btoks ] ->
      let bound = eval (parse_expr line btoks) in
      if bound < 1 then fail line ".mbound %d must be >= 1" bound;
      begin match Image.Builder.add_mbound builder ~addr ~bound with
      | Ok () -> ()
      | Error msg -> fail line "%s" msg
      end
    | _ -> fail line ".mbound expects one expression"
    end
  | ".org" | ".align" | ".space" | ".equ" | ".global" | ".text" | ".data" -> ()
  | _ -> fail line "unknown directive %S" name

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let assemble ?(origin = 0) source =
  try
    let stmts = parse source in
    let symbols : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let define line name v =
      match Hashtbl.find_opt symbols name with
      | Some v' when v' <> v ->
        fail line "symbol %S redefined (0x%x vs 0x%x)" name v' v
      | Some _ | None -> Hashtbl.replace symbols name v
    in
    (* Pass 1: layout. *)
    let lc = ref origin in
    List.iter
      (fun stmt ->
         List.iter (fun l -> define stmt.line l !lc) stmt.labels;
         stmt.addr <- !lc;
         begin match stmt.body with
         | None -> ()
         | Some (Directive (name, operands)) ->
           if not (directive_known name) then
             fail stmt.line "unknown directive %S" name;
           let resolve e =
             let lookup s =
               if s = "." then Some !lc else Hashtbl.find_opt symbols s
             in
             match Expr.eval ~lookup e with
             | Ok v -> v
             | Error msg -> fail stmt.line "%s" msg
           in
           let new_lc, size =
             directive_pass1 stmt.line ~resolve
               ~define:(fun s v -> define stmt.line s v) ~lc:!lc name operands
           in
           stmt.addr <- new_lc;
           stmt.size <- size;
           lc := new_lc + size
         | Some (Insn (name, operands)) ->
           let try_eval e =
             let lookup s =
               if s = "." then Some !lc else Hashtbl.find_opt symbols s
             in
             Result.to_option (Expr.eval ~lookup e)
           in
           let size, li_small = insn_size stmt.line ~try_eval name operands in
           stmt.size <- size;
           stmt.li_small <- li_small;
           lc := !lc + size
         end)
      stmts;
    (* Pass 2: emission. *)
    let builder = Image.Builder.create () in
    List.iter
      (fun stmt ->
         let lookup s =
           if s = "." then Some stmt.addr else Hashtbl.find_opt symbols s
         in
         let eval e =
           match Expr.eval ~lookup e with
           | Ok v -> v
           | Error msg -> fail stmt.line "%s" msg
         in
         match stmt.body with
         | None -> ()
         | Some (Directive (name, operands)) ->
           directive_pass2 stmt.line ~eval ~builder ~addr:stmt.addr name
             operands
         | Some (Insn (name, operands)) ->
           if stmt.addr land 3 <> 0 then
             fail stmt.line "instruction at unaligned address 0x%08x" stmt.addr;
           let instrs =
             expand stmt.line ~eval ~addr:stmt.addr ~li_small:stmt.li_small
               name operands
           in
           if 4 * List.length instrs <> stmt.size then
             fail stmt.line "internal: pass-1/pass-2 size mismatch";
           List.iteri
             (fun i instr ->
                let addr = stmt.addr + (4 * i) in
                (* pc-relative pseudo parts were computed against
                   stmt.addr; the only multi-instruction expansions are
                   li/la, which are not pc-relative, so this is safe. *)
                match Encode.encode instr with
                | Error msg -> fail stmt.line "%s" msg
                | Ok w ->
                  begin match Image.Builder.emit_word builder ~addr w with
                  | Ok () -> ()
                  | Error msg -> fail stmt.line "%s" msg
                  end;
                  Image.Builder.add_listing builder ~addr w
                    (Instr.to_string instr))
             instrs)
      stmts;
    Hashtbl.iter
      (fun name v ->
         match Image.Builder.add_symbol builder name v with
         | Ok () -> ()
         | Error _ -> ())
      symbols;
    Ok (Image.Builder.finish builder)
  with Fail e -> Error e

let assemble_exn ?origin source =
  match assemble ?origin source with
  | Ok img -> img
  | Error e -> invalid_arg ("Asm.assemble_exn: " ^ error_to_string e)
