(** Fleet: a work-stealing batch runner for Metal simulations on
    OCaml 5 domains.

    Architecture evaluation is a batch workload — calibration sweeps,
    design-space walks, differential corpora — and every simulation in
    such a batch is independent: a {!Metal_cpu.Machine.t} owns all of
    its state, so N machines can advance on N domains without sharing
    anything.  The fleet turns an array of jobs into an array of
    results with three guarantees:

    - {b Determinism.}  Results are keyed by job index, every job
      builds its machine inside the worker, and nothing is shared
      between jobs, so per-job results ({!Metal_cpu.Stats.t} included)
      are bit-identical regardless of the domain count or which domain
      ran which job.  The determinism property in [test_fleet]
      enforces this (64 jobs, 1 domain vs 8).
    - {b Isolation.}  A crashing job (assembly error, load error,
      exhausted fuel, escaped exception) yields a typed error result;
      it never kills the fleet or poisons its neighbours.
    - {b Utilisation.}  Jobs are dealt round-robin into per-domain
      bounded queues; a worker that drains its own queue steals from
      the others, so one long job does not leave the remaining domains
      idle behind it.

    Scheduling layer: {!map} runs an arbitrary pure-per-element
    function over an array.  Job layer: {!run} executes typed
    simulation jobs ({!job}: program + config + fuel + seed) and is
    what [mrun --jobs] and the [bench fleet] section use. *)

(** {1 Generic parallel map} *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val effective_domains : int -> int
(** The domain count actually used for a request: clamped to
    [1 .. Domain.recommended_domain_count ()].  Oversubscribing
    pure-CPU workers only adds scheduling overhead, so {!map} and
    {!run} apply this clamp to every request. *)

val map :
  ?domains:int -> ('a -> 'b) -> 'a array -> ('b, string) result array
(** [map ~domains f jobs] applies [f] to every element, distributing
    the work over [domains] domains (default {!default_domains}; [<= 1]
    runs everything inline on the calling domain, spawning nothing).
    Result [i] is [f jobs.(i)], or [Error] carrying the exception text
    if [f] raised on that element.  Element order is preserved; [f]
    must not touch state shared with other elements. *)

(** {1 Typed simulation jobs} *)

type source =
  | Asm of { src : string; origin : int; mcode : string option }
      (** Assembly text (and optional mroutine source loaded into MRAM
          first), loaded at [origin]; execution starts at the [start]
          symbol when defined, else at the image's lowest address. *)
  | Image of Metal_asm.Image.t
      (** A pre-assembled image, started the same way.  Sharing one
          image between jobs is safe: loading copies it into the
          machine's memory. *)

type job = {
  label : string;  (** for reports; not interpreted *)
  config : Metal_cpu.Config.t;
  source : source;
  fuel : int;  (** cycle budget; exhausting it is a typed error *)
  seed : int;
      (** identifies the corpus element that produced this job
          (generators record it here so failures are reproducible);
          not interpreted by the runner *)
  collect : bool;
      (** attach a {!Metal_trace.Collector} probe to the job's machine
          and return its metrics and event ring in the result *)
  trace_capacity : int;  (** event-ring capacity when [collect] *)
  profile : bool;
      (** attach a {!Metal_profile.Profile} to the job's machine
          (composes with [collect] through one fan-out probe) and
          return its symbolized report in the result *)
  telemetry : bool;
      (** attach a {!Metal_telemetry.Telemetry} windowed collector
          (composes with the other observers through the fan-out
          probe) and return its series in the result *)
  telemetry_window : int;  (** window size in cycles when [telemetry] *)
  watch : Metal_telemetry.Telemetry.Watchdog.rule list;
      (** watchdog rules evaluated by the telemetry collector (a
          non-empty list arms telemetry even when [telemetry] is
          false); alarms land in the result *)
  wcet_bounds : (int * int) list;
      (** per-MRAM-entry static WCET bounds for the [wcet] rule *)
}

val job :
  ?label:string ->
  ?config:Metal_cpu.Config.t ->
  ?fuel:int ->
  ?seed:int ->
  ?collect:bool ->
  ?trace_capacity:int ->
  ?profile:bool ->
  ?telemetry:bool ->
  ?telemetry_window:int ->
  ?watch:Metal_telemetry.Telemetry.Watchdog.rule list ->
  ?wcet_bounds:(int * int) list ->
  source ->
  job
(** Defaults: label [""], {!Metal_cpu.Config.default}, fuel 10M,
    seed 0, no collection, ring capacity 65536, no profiling, no
    telemetry (window {!Metal_telemetry.Telemetry.default_window}),
    no watchdog rules. *)

type ok = {
  halt : Metal_cpu.Machine.halt;
  stats : Metal_cpu.Stats.t;  (** private snapshot of the machine's counters *)
  regs : Word.t array;  (** GPR file at halt (32 words) *)
  console : string;  (** console device output *)
  metrics : Metal_trace.Metrics.t option;  (** when [job.collect] *)
  events : Metal_trace.Ring.t option;
      (** the job's event ring (when [job.collect]); feed it to
          {!Metal_trace.Chrome.write} for a per-job trace file *)
  profile : Metal_profile.Profile.Report.t option;
      (** cycle-exact profile (when [job.profile]), symbolized against
          the job's own images *)
  telemetry : Metal_telemetry.Telemetry.Series.t option;
      (** windowed series (when [job.telemetry] or [job.watch] is
          non-empty), annotated with the job's [Stats.cycles] and
          [Stats.accounted_cycles] *)
  alarms : Metal_telemetry.Telemetry.Watchdog.alarm list;
      (** watchdog alarms the job raised, in firing order *)
}

type fail =
  | Assemble_error of string
  | Load_error of string
  | Fuel_exhausted of { fuel : int }
  | Crashed of string
      (** an exception escaped the simulator; the text includes the
          exception and, when available, a backtrace *)

val fail_to_string : fail -> string

type outcome = {
  index : int;  (** position of the job in the input array *)
  job : job;
  domain : int;
      (** which worker executed it — informational only; every other
          field is independent of it *)
  result : (ok, fail) result;
}

val run_job : job -> (ok, fail) result
(** Run one job inline on the calling domain. *)

val run : ?domains:int -> job array -> outcome array
(** Run a batch on the fleet.  [run ~domains:1 jobs] and
    [run ~domains:8 jobs] differ only in each outcome's [domain]
    field. *)

val merge_metrics : outcome array -> Metal_trace.Metrics.t
(** Fold the metrics of every successful collecting job, in index
    order.  Deterministic across domain counts (outcomes are
    index-keyed); jobs without collection contribute nothing. *)

val merge_profiles : outcome array -> Metal_profile.Profile.Report.t
(** Fold the profiles of every successful profiling job, in index
    order; bit-identical for any domain count. *)

val merge_telemetry : outcome array -> Metal_telemetry.Telemetry.Series.t
(** Fold the telemetry series of every successful telemetry job, in
    index order (windows sum pointwise by index, annotations sum);
    bit-identical for any domain count. *)

val identical : outcome array -> outcome array -> (unit, string) result
(** Check two runs of the same batch for bit-identical per-job results
    (halt, stats, registers, console, event streams, metrics, error);
    [Error] names the first diverging job.  The [domain] field is
    ignored. *)
