(* Work-stealing batch runner on OCaml 5 domains.

   The scheduling core is [run_indexed]: indices 0..n-1 are dealt
   round-robin into one bounded queue per worker (a plain array of
   indices with an atomic head — the bound is the deal, no queue ever
   grows), each worker drains its own queue and then steals from the
   others' heads.  [Atomic.fetch_and_add] hands each index to exactly
   one worker whether it arrives as owner or thief.  Workers collect
   [(index, result)] pairs in a private buffer and the caller merges
   the buffers after [Domain.join], so the only cross-domain
   communication is the atomic heads and the join itself; results are
   therefore independent of the domain count and of which worker ran
   what. *)

(* Workers are pure CPU burners, so running more domains than the host
   recommends only adds scheduling overhead (BENCH_fleet_throughput
   measured 0.46x at 8 domains on a 1-core host).  Every requested
   count is clamped; [effective_domains] is exported so callers (bench
   fleet, mrun --jobs) can report requested vs. effective. *)
let effective_domains d = max 1 (min d (Domain.recommended_domain_count ()))
let default_domains () = Domain.recommended_domain_count ()

(* [f] must not raise: both public layers wrap their payload in a
   catch-all before it reaches the engine, because an exception
   escaping a worker would take the whole domain (and the join) down
   with it. *)
let run_indexed ~domains f n =
  (* Failure texts must be actionable: make sure backtraces are being
     recorded before any job runs (the flag is global, but each
     spawned domain gets its own backtrace buffer, so [exn_text]'s raw
     capture at the catch site stays per-worker). *)
  Printexc.record_backtrace true;
  let d = min (effective_domains domains) (max 1 n) in
  if d = 1 then begin
    (* inline on the calling domain, left to right, no spawns *)
    let results = Array.make n None in
    for i = 0 to n - 1 do
      results.(i) <- Some (f ~worker:0 i)
    done;
    Array.map
      (function Some r -> r | None -> invalid_arg "Fleet: lost job")
      results
  end
  else begin
    let queues =
      Array.init d (fun w ->
          Array.init ((n - w + d - 1) / d) (fun k -> w + (k * d)))
    in
    let heads = Array.init d (fun _ -> Atomic.make 0) in
    let buffers = Array.make d [] in
    let worker w () =
      Printexc.record_backtrace true;
      let buf = ref [] in
      let rec drain v =
        let q = queues.(v) in
        let i = Atomic.fetch_and_add heads.(v) 1 in
        if i < Array.length q then begin
          let idx = q.(i) in
          buf := (idx, f ~worker:w idx) :: !buf;
          drain v
        end
      in
      drain w;
      for k = 1 to d - 1 do
        drain ((w + k) mod d)
      done;
      buffers.(w) <- !buf
    in
    let thieves =
      Array.init (d - 1) (fun k -> Domain.spawn (worker (k + 1)))
    in
    worker 0 ();
    Array.iter Domain.join thieves;
    let results = Array.make n None in
    Array.iter
      (fun buf -> List.iter (fun (i, r) -> results.(i) <- Some r) buf)
      buffers;
    Array.map
      (function Some r -> r | None -> invalid_arg "Fleet: lost job")
      results
  end

(* [bt] must be captured with [Printexc.get_raw_backtrace] as the
   *first* action of the handler: any intervening call (even
   [Printexc.to_string]) can run handlers of its own and overwrite the
   per-domain backtrace buffer, which is how this function used to
   return an empty backtrace every time. *)
let exn_text e bt =
  let bt = Printexc.raw_backtrace_to_string bt in
  if bt = "" then Printexc.to_string e
  else Printexc.to_string e ^ "\n" ^ bt

let map ?domains f jobs =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  run_indexed ~domains
    (fun ~worker:_ i ->
       match f jobs.(i) with
       | r -> Ok r
       | exception e ->
         let bt = Printexc.get_raw_backtrace () in
         Error (exn_text e bt))
    (Array.length jobs)

(* ------------------------------------------------------------------ *)
(* Typed simulation jobs                                               *)

type source =
  | Asm of { src : string; origin : int; mcode : string option }
  | Image of Metal_asm.Image.t

type job = {
  label : string;
  config : Metal_cpu.Config.t;
  source : source;
  fuel : int;
  seed : int;
  collect : bool;
  trace_capacity : int;
  profile : bool;
  telemetry : bool;
  telemetry_window : int;
  watch : Metal_telemetry.Telemetry.Watchdog.rule list;
  wcet_bounds : (int * int) list;
}

let job ?(label = "") ?(config = Metal_cpu.Config.default)
    ?(fuel = 10_000_000) ?(seed = 0) ?(collect = false)
    ?(trace_capacity = 65536) ?(profile = false) ?(telemetry = false)
    ?(telemetry_window = Metal_telemetry.Telemetry.default_window)
    ?(watch = []) ?(wcet_bounds = []) source =
  { label; config; source; fuel; seed; collect; trace_capacity; profile;
    telemetry; telemetry_window; watch; wcet_bounds }

type ok = {
  halt : Metal_cpu.Machine.halt;
  stats : Metal_cpu.Stats.t;
  regs : Word.t array;
  console : string;
  metrics : Metal_trace.Metrics.t option;
  events : Metal_trace.Ring.t option;
  profile : Metal_profile.Profile.Report.t option;
  telemetry : Metal_telemetry.Telemetry.Series.t option;
      (* annotated with the job's Stats totals *)
  alarms : Metal_telemetry.Telemetry.Watchdog.alarm list;
}

type fail =
  | Assemble_error of string
  | Load_error of string
  | Fuel_exhausted of { fuel : int }
  | Crashed of string

let fail_to_string = function
  | Assemble_error e -> "assembly: " ^ e
  | Load_error e -> "load: " ^ e
  | Fuel_exhausted { fuel } -> Printf.sprintf "fuel exhausted (%d cycles)" fuel
  | Crashed e -> "crashed: " ^ e

type outcome = {
  index : int;
  job : job;
  domain : int;
  result : (ok, fail) result;
}

let start_pc img =
  match Metal_asm.Image.find_symbol img "start" with
  | Some a -> a
  | None ->
    (match Metal_asm.Image.bounds img with Some (lo, _) -> lo | None -> 0)

let run_job j =
  try
    let sys = Metal_core.System.create ~config:j.config () in
    let m = sys.Metal_core.System.machine in
    let ( let* ) = Result.bind in
    let* img, mimg =
      match j.source with
      | Image img ->
        (match Metal_cpu.Machine.load_image m img with
         | Ok () -> Ok (img, None)
         | Error e -> Error (Load_error e))
      | Asm { src; origin; mcode } ->
        let* mimg =
          match mcode with
          | None -> Ok None
          | Some msrc ->
            (match Metal_asm.Asm.assemble msrc with
             | Error e ->
               Error (Assemble_error (Metal_asm.Asm.error_to_string e))
             | Ok mimg ->
               (match Metal_cpu.Machine.load_mcode m mimg with
                | Ok () -> Ok (Some mimg)
                | Error e -> Error (Load_error e)))
        in
        (match Metal_asm.Asm.assemble ~origin src with
         | Error e -> Error (Assemble_error (Metal_asm.Asm.error_to_string e))
         | Ok img ->
           (match Metal_cpu.Machine.load_image m img with
            | Ok () -> Ok (img, mimg)
            | Error e -> Error (Load_error e)))
    in
    Metal_cpu.Machine.set_pc m (start_pc img);
    let collector =
      if j.collect then
        Some (Metal_trace.Collector.create ~capacity:j.trace_capacity ())
      else None
    and profiler =
      if j.profile then
        Some
          (Metal_profile.Profile.create
             ~guest_words:
               (min 65536 (j.config.Metal_cpu.Config.mem_size / 4))
             ~mram_words:j.config.Metal_cpu.Config.mram_code_words ())
      else None
    in
    let telemetry =
      if j.telemetry || j.watch <> [] then
        Some
          (Metal_telemetry.Telemetry.create
             ~window_cycles:j.telemetry_window ~rules:j.watch
             ~wcet_bounds:j.wcet_bounds ())
      else None
    in
    (* One probe slot on the machine: fan out when several observers
       are wanted. *)
    let probes =
      List.filter_map Fun.id
        [
          Option.map Metal_trace.Collector.probe collector;
          Option.map Metal_profile.Profile.probe profiler;
          Option.map Metal_telemetry.Telemetry.probe telemetry;
        ]
    in
    (match probes with
     | [] -> ()
     | [ p ] -> Metal_cpu.Machine.set_probe m p
     | ps ->
       Metal_cpu.Machine.set_probe m (fun cycle kind a b ->
           List.iter (fun p -> p cycle kind a b) ps));
    match Metal_cpu.Pipeline.run m ~max_cycles:j.fuel with
    | None -> Error (Fuel_exhausted { fuel = j.fuel })
    | Some halt ->
      let stats = Metal_cpu.Stats.copy m.Metal_cpu.Machine.stats in
      Ok
        {
          halt;
          stats;
          regs = Array.copy m.Metal_cpu.Machine.regs;
          console = Metal_core.System.console_output sys;
          metrics =
            Option.map Metal_trace.Collector.metrics collector;
          events = Option.map Metal_trace.Collector.ring collector;
          profile =
            Option.map
              (fun p ->
                 let symtab =
                   Metal_profile.Profile.Symtab.of_images ~guest:img
                     ?mcode:mimg ()
                 in
                 Metal_profile.Profile.report ~symtab
                   ~upto:stats.Metal_cpu.Stats.cycles p)
              profiler;
          telemetry =
            Option.map
              (fun t ->
                 Metal_telemetry.Telemetry.Series.annotate
                   (Metal_telemetry.Telemetry.series t)
                   ~machine_cycles:stats.Metal_cpu.Stats.cycles
                   ~accounted_cycles:
                     (Metal_cpu.Stats.accounted_cycles stats
                        ~pending_stall:m.Metal_cpu.Machine.stall_cycles))
              telemetry;
          alarms =
            (match telemetry with
             | None -> []
             | Some t -> Metal_telemetry.Telemetry.alarms t);
        }
  with e ->
    let bt = Printexc.get_raw_backtrace () in
    Error (Crashed (exn_text e bt))

let run ?domains jobs =
  let domains =
    match domains with Some d -> d | None -> default_domains ()
  in
  run_indexed ~domains
    (fun ~worker i ->
       { index = i; job = jobs.(i); domain = worker; result = run_job jobs.(i) })
    (Array.length jobs)

(* Merge per-job metrics in index order.  Jobs without collection
   contribute nothing; the result is independent of the domain count
   because outcomes are already index-keyed. *)
let merge_metrics outcomes =
  Array.fold_left
    (fun acc o ->
       match o.result with
       | Ok { metrics = Some mx; _ } -> Metal_trace.Metrics.merge acc mx
       | Ok { metrics = None; _ } | Error _ -> acc)
    Metal_trace.Metrics.empty outcomes

(* Same index-order fold for telemetry: windows merge pointwise by
   index, so the merged series is bit-identical for any domain
   count. *)
let merge_telemetry outcomes =
  Array.fold_left
    (fun acc o ->
       match o.result with
       | Ok { telemetry = Some s; _ } ->
         Metal_telemetry.Telemetry.Series.merge acc s
       | Ok { telemetry = None; _ } | Error _ -> acc)
    Metal_telemetry.Telemetry.Series.empty outcomes

(* Same index-order fold for profiles: the merged report is
   bit-identical for any domain count. *)
let merge_profiles outcomes =
  Array.fold_left
    (fun acc o ->
       match o.result with
       | Ok { profile = Some p; _ } ->
         Metal_profile.Profile.Report.merge acc p
       | Ok { profile = None; _ } | Error _ -> acc)
    Metal_profile.Profile.Report.empty outcomes

(* ------------------------------------------------------------------ *)
(* Determinism check                                                   *)

let identical a b =
  if Array.length a <> Array.length b then
    Error
      (Printf.sprintf "batch sizes differ: %d vs %d" (Array.length a)
         (Array.length b))
  else begin
    let divergence = ref None in
    Array.iteri
      (fun i oa ->
         if !divergence = None then begin
           let ob = b.(i) in
           let where what =
             divergence :=
               Some
                 (Printf.sprintf "job %d (%S): %s differs" i oa.job.label what)
           in
           match (oa.result, ob.result) with
           | Ok ra, Ok rb ->
             if ra.halt <> rb.halt then where "halt"
             else if ra.stats <> rb.stats then
               divergence :=
                 Some
                   (Printf.sprintf
                      "job %d (%S): stats differ\n  a: %s\n  b: %s" i
                      oa.job.label
                      (Metal_cpu.Stats.to_string ra.stats)
                      (Metal_cpu.Stats.to_string rb.stats))
             else if ra.regs <> rb.regs then where "registers"
             else if ra.console <> rb.console then where "console output"
             else if
               Option.map Metal_trace.Ring.to_list ra.events
               <> Option.map Metal_trace.Ring.to_list rb.events
             then where "event streams"
             else if ra.metrics <> rb.metrics then where "metrics"
             else if ra.profile <> rb.profile then where "profile"
             else if ra.telemetry <> rb.telemetry then where "telemetry"
             else if ra.alarms <> rb.alarms then where "alarms"
           | Error ea, Error eb ->
             if ea <> eb then where "error"
           | Ok _, Error e ->
             where (Printf.sprintf "outcome kind (b failed: %s)"
                      (fail_to_string e))
           | Error e, Ok _ ->
             where (Printf.sprintf "outcome kind (a failed: %s)"
                      (fail_to_string e))
         end)
      a;
    match !divergence with None -> Ok () | Some msg -> Error msg
  end
