(** High-level entry point: a Metal machine with devices, assembly
    loading and run helpers.

    This is the API the examples and benchmarks use; the underlying
    layers ([Metal_isa], [Metal_asm], [Metal_hw], [Metal_cpu],
    [Metal_progs], [Metal_kernel], [Metal_synth]) remain fully
    accessible for anything this convenience layer does not cover. *)

type t = {
  machine : Metal_cpu.Machine.t;
  console : Metal_hw.Devices.Console.t;
  nic : Metal_hw.Devices.Nic.t option;
}

val create :
  ?config:Metal_cpu.Config.t ->
  ?nic_schedule:Metal_hw.Devices.Nic.schedule ->
  unit ->
  t
(** A machine with a console at the MMIO base and, when a schedule is
    given, a NIC at MMIO base + 0x100. *)

val nic_base : int

val load_program : t -> ?origin:int -> string -> (Metal_asm.Image.t, string) result
(** Assemble and load into physical memory. *)

val load_mcode : t -> string -> (unit, string) result
(** Assemble and load into MRAM (registers [.mentry] entries). *)

val start : t -> ?pc:int -> unit -> unit
(** Reset the pipeline at [pc] (default 0) in normal mode. *)

val run : t -> ?max_cycles:int -> unit -> Metal_cpu.Machine.halt
(** Run to a halt.  Budget exhaustion (default 10M cycles) is the
    typed {!Metal_cpu.Machine.Halt_out_of_cycles}, not an
    exception. *)

val run_program :
  t -> ?origin:int -> ?max_cycles:int -> string ->
  (Metal_cpu.Machine.halt, string) result
(** Assemble, load, reset at the image start (symbol [start] if
    defined, else the lowest address) and run to a halt.  Budget
    exhaustion maps to [Error] carrying
    {!Metal_cpu.Pipeline.timeout_diagnostics}. *)

val reg : t -> string -> Word.t
(** Read a GPR by name ("a0", "x10", ...).
    @raise Invalid_argument on unknown names. *)

val cycles : t -> int

val stats : t -> Metal_cpu.Stats.t

val console_output : t -> string
