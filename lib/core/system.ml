type t = {
  machine : Metal_cpu.Machine.t;
  console : Metal_hw.Devices.Console.t;
  nic : Metal_hw.Devices.Nic.t option;
}

let nic_base = Metal_hw.Bus.mmio_base + 0x100

let create ?(config = Metal_cpu.Config.default) ?nic_schedule () =
  let machine = Metal_cpu.Machine.create ~config () in
  let console =
    Metal_hw.Devices.Console.create ~base:Metal_hw.Bus.mmio_base
  in
  Metal_hw.Bus.attach machine.Metal_cpu.Machine.bus
    (Metal_hw.Devices.Console.device console);
  let nic =
    match nic_schedule with
    | None -> None
    | Some schedule ->
      let nic =
        Metal_hw.Devices.Nic.create ~base:nic_base
          ~intc:machine.Metal_cpu.Machine.intc ~schedule
      in
      Metal_hw.Bus.attach machine.Metal_cpu.Machine.bus
        (Metal_hw.Devices.Nic.device nic);
      Some nic
  in
  { machine; console; nic }

let load_program t ?origin source =
  match Metal_asm.Asm.assemble ?origin source with
  | Error e -> Error (Metal_asm.Asm.error_to_string e)
  | Ok img ->
    begin match Metal_cpu.Machine.load_image t.machine img with
    | Ok () -> Ok img
    | Error e -> Error e
    end

let load_mcode t source =
  match Metal_asm.Asm.assemble source with
  | Error e -> Error (Metal_asm.Asm.error_to_string e)
  | Ok img -> Metal_cpu.Machine.load_mcode t.machine img

let start t ?(pc = 0) () = Metal_cpu.Machine.set_pc t.machine pc

let run t ?(max_cycles = 10_000_000) () =
  Metal_cpu.Pipeline.run_exn t.machine ~max_cycles

let run_program t ?origin ?max_cycles source =
  match load_program t ?origin source with
  | Error _ as e -> e
  | Ok img ->
    let pc =
      match Metal_asm.Image.find_symbol img "start" with
      | Some a -> a
      | None ->
        (match Metal_asm.Image.bounds img with
         | Some (lo, _) -> lo
         | None -> 0)
    in
    start t ~pc ();
    (match run t ?max_cycles () with
     | Metal_cpu.Machine.Halt_out_of_cycles { budget; _ } ->
       Error (Metal_cpu.Pipeline.timeout_diagnostics t.machine ~budget)
     | halt -> Ok halt)

let reg t name =
  match Reg.of_string name with
  | Some r -> Metal_cpu.Machine.get_reg t.machine r
  | None -> invalid_arg ("System.reg: unknown register " ^ name)

let cycles t = t.machine.Metal_cpu.Machine.stats.Metal_cpu.Stats.cycles

let stats t = t.machine.Metal_cpu.Machine.stats

let console_output t = Metal_hw.Devices.Console.output t.console
