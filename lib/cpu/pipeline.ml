open Machine
module P = Predecode
module B = Blockcache
module Ev = Metal_trace.Event

(* The stage functions below mutate the machine's latch records in
   place and return int-encoded outcomes instead of options/results:
   together with the predecoded-instruction cache this makes [step]
   allocation-free in steady state (allocation survives only on rare
   paths — faults, events, traces, cache fills). *)

(* ------------------------------------------------------------------ *)
(* Classification helpers                                              *)

(* Instructions whose GPR result is only available after the MEM
   stage; a dependent instruction immediately behind them must stall
   one cycle (load-use interlock). *)
let produces_at_mem = function
  | Instr.Load _ -> true
  | Instr.Metal m ->
    begin match m with
    | Instr.Mld _ | Instr.Rmr _ -> true
    | Instr.Feature
        (Instr.Physld _ | Instr.Tlbprobe _ | Instr.Gprr _ | Instr.Mcsrr _) ->
      true
    | Instr.Menter _ | Instr.Mexit | Instr.Wmr _ | Instr.Mst _
    | Instr.Feature _ -> false
    end
  | Instr.Lui _ | Instr.Auipc _ | Instr.Jal _ | Instr.Jalr _ | Instr.Branch _
  | Instr.Store _ | Instr.Op_imm _ | Instr.Op _ | Instr.Ecall | Instr.Ebreak
  | Instr.Fence -> false

(* Destination GPR, 0 when the instruction writes none (or targets x0,
   which all consumers ignore).  Allocation-free counterpart of
   [Instr.writes_gpr]. *)
let instr_dst = function
  | Instr.Lui { rd; _ } | Instr.Auipc { rd; _ } | Instr.Jal { rd; _ }
  | Instr.Jalr { rd; _ } | Instr.Load { rd; _ } | Instr.Op_imm { rd; _ }
  | Instr.Op { rd; _ } -> rd
  | Instr.Metal m ->
    begin match m with
    | Instr.Rmr { rd; _ } | Instr.Mld { rd; _ } -> rd
    | Instr.Feature
        ( Instr.Physld { rd; _ } | Instr.Tlbprobe { rd; _ }
        | Instr.Gprr { rd; _ } | Instr.Mcsrr { rd; _ } ) -> rd
    | Instr.Feature
        ( Instr.Physst _ | Instr.Tlbw _ | Instr.Tlbflush _ | Instr.Gprw _
        | Instr.Iceptset _ | Instr.Iceptclr _ | Instr.Mcsrw _ )
    | Instr.Menter _ | Instr.Mexit | Instr.Wmr _ | Instr.Mst _ -> 0
    end
  | Instr.Branch _ | Instr.Store _ | Instr.Ecall | Instr.Ebreak
  | Instr.Fence -> 0

let uop_dst = function
  | U_instr i -> instr_dst i
  | U_event _ | U_poison _ -> 0

let uop_produces_at_mem = function
  | U_instr i -> produces_at_mem i
  | U_event _ | U_poison _ -> false

(* Instructions that modify Metal registers at MEM: [mexit] decodes
   against m31, so it interlocks on these. *)
let uop_writes_mreg = function
  | U_instr (Instr.Metal (Instr.Wmr _ | Instr.Menter _)) -> true
  | U_event _ -> true
  | U_instr _ | U_poison _ -> false

(* ------------------------------------------------------------------ *)
(* Address translation                                                 *)

type access = A_fetch | A_load | A_store

let fault_of_access = function
  | A_fetch -> Cause.Page_fault_fetch
  | A_load -> Cause.Page_fault_load
  | A_store -> Cause.Page_fault_store

(* Hardware page-table walk (the baseline the paper's custom page
   tables compete with).  PTE layout, shared with the mcode walker in
   Metal_progs.Pagetable:
     bits 31:12  physical page base (a physical address, not a shifted
                 ppn, so mcode can mask instead of shift)
     bits 8:5    page key
     bit 4       global
     bit 3       X, bit 2 W, bit 1 R, bit 0 V
   A valid PTE with R=W=X=0 points at the next-level table. *)
let hw_walk m ~vpn ~asid =
  let open Metal_hw in
  m.stats.Stats.hw_walks <- m.stats.Stats.hw_walks + 1;
  emit m Ev.hw_walk vpn 0;
  let read_pte pa =
    let lat = m.config.Config.walker_latency in
    m.stall_cycles <- m.stall_cycles + lat;
    if lat > 0 then begin
      m.stats.Stats.walker_stall_cycles <-
        m.stats.Stats.walker_stall_cycles + lat;
      emit m Ev.stall_begin Ev.stall_walker lat
    end;
    match Bus.load m.bus ~width:Instr.Word ~addr:pa with
    | Ok w -> Some w
    | Error _ -> None
  in
  let root = m.ctrl.(Csr.pt_root) in
  let entry_of pte ~vpn ~ppn_extra =
    let r = Word.bit 1 pte = 1
    and w = Word.bit 2 pte = 1
    and x = Word.bit 3 pte = 1
    and global = Word.bit 4 pte = 1
    and pkey = Word.bits ~hi:8 ~lo:5 pte in
    let ppn = Word.bits ~hi:31 ~lo:12 pte lor ppn_extra in
    { Tlb.asid; global; vpn; ppn; r; w; x; pkey }
  in
  match read_pte (root + (4 * (vpn lsr 10))) with
  | None -> None
  | Some pte1 ->
    if Word.bit 0 pte1 = 0 then None
    else if Word.bits ~hi:3 ~lo:1 pte1 <> 0 then
      (* 4 MiB superpage leaf at level 1. *)
      Some (entry_of pte1 ~vpn ~ppn_extra:(vpn land 0x3FF))
    else begin
      let table = pte1 land 0xFFFFF000 in
      match read_pte (table + (4 * (vpn land 0x3FF))) with
      | None -> None
      | Some pte2 ->
        if Word.bit 0 pte2 = 0 || Word.bits ~hi:3 ~lo:1 pte2 = 0 then None
        else Some (entry_of pte2 ~vpn ~ppn_extra:0)
    end

let translate_fault m cause vaddr =
  m.fault_vaddr <- Word.of_int vaddr;
  m.xlate_cause <- cause;
  -1

let check_entry m ~access ~metal vaddr (e : Metal_hw.Tlb.entry) =
  let open Metal_hw.Tlb in
  let perm_ok =
    match access with A_fetch -> e.x | A_load -> e.r | A_store -> e.w
  in
  if not perm_ok then translate_fault m (fault_of_access access) vaddr
  else if not metal then begin
    let perms = m.ctrl.(Csr.pkey_perms) in
    let read_disabled = Word.bit (2 * e.pkey) perms = 1 in
    let write_disabled = Word.bit ((2 * e.pkey) + 1) perms = 1 in
    match access with
    | A_load when read_disabled ->
      translate_fault m Cause.Pkey_violation_load vaddr
    | A_store when write_disabled ->
      translate_fault m Cause.Pkey_violation_store vaddr
    | A_fetch | A_load | A_store ->
      (e.ppn lsl page_shift) lor (vaddr land 0xFFF)
  end
  else (e.ppn lsl page_shift) lor (vaddr land 0xFFF)

(* Translate [vaddr] for [access] in the current address space.
   Returns the physical address, or -1 with the cause in
   [m.xlate_cause] (and the address in [m.fault_vaddr]).  Metal mode
   skips page-key checks (mroutines are fully privileged). *)
let translate m ~access ~metal vaddr =
  if m.ctrl.(Csr.paging) land 1 = 0 then vaddr
  else begin
    let asid = m.ctrl.(Csr.asid) land 0xFF in
    let vpn = vaddr lsr Metal_hw.Tlb.page_shift in
    match Metal_hw.Tlb.lookup m.tlb ~asid ~vpn with
    | Some e ->
      m.stats.Stats.tlb_hits <- m.stats.Stats.tlb_hits + 1;
      check_entry m ~access ~metal vaddr e
    | None ->
      m.stats.Stats.tlb_misses <- m.stats.Stats.tlb_misses + 1;
      emit m Ev.tlb_miss vaddr
        (match access with A_fetch -> 0 | A_load -> 1 | A_store -> 2);
      if m.ctrl.(Csr.hw_walker) land 1 = 1 then
        match hw_walk m ~vpn ~asid with
        | Some e ->
          Metal_hw.Tlb.insert m.tlb e;
          check_entry m ~access ~metal vaddr e
        | None -> translate_fault m (fault_of_access access) vaddr
      else translate_fault m (fault_of_access access) vaddr
  end

(* Charge a cache access: a miss stalls the pipe for the cache's
   penalty.  [count] attributes the stall to the right statistic. *)
let charge_cache m cache ~addr ~fetch =
  match cache with
  | None -> ()
  | Some c ->
    if not (Metal_hw.Cache.access c ~addr) then begin
      let p = (Metal_hw.Cache.config c).Metal_hw.Cache.miss_penalty in
      m.stall_cycles <- m.stall_cycles + p;
      if fetch then begin
        m.stats.Stats.fetch_stall_cycles <-
          m.stats.Stats.fetch_stall_cycles + p;
        emit m Ev.stall_begin Ev.stall_fetch_cache p
      end
      else begin
        m.stats.Stats.mem_stall_cycles <- m.stats.Stats.mem_stall_cycles + p;
        emit m Ev.stall_begin Ev.stall_data_cache p
      end
    end

(* ------------------------------------------------------------------ *)
(* Event delivery                                                      *)

let flush_all m =
  m.if_id.fvalid <- false;
  m.id_ex.dvalid <- false;
  m.ex_mem.xvalid <- false;
  m.stats.Stats.flushes <- m.stats.Stats.flushes + 1;
  emit m Ev.flush Ev.flush_event 0

let redirect m ~target ~metal =
  m.fetch_pc <- Word.of_int target;
  m.fetch_metal <- metal;
  m.fetch_frozen <- false

(* Enter the mroutine registered as handler [handler_value] (stored as
   entry+1), writing [writes] into the Metal register file.  Fails the
   whole machine when the configuration is inconsistent. *)
let deliver_to_mroutine m ~handler_value ~writes ~reason ~on_missing =
  let entry = handler_value - 1 in
  match Metal_hw.Mram.entry_addr m.mram entry with
  | None ->
    m.halted <- Some on_missing;
    false
  | Some target ->
    List.iter (fun (mr, v) -> set_mreg m mr v) writes;
    flush_all m;
    m.wb_rd <- 0;
    redirect m ~target ~metal:true;
    emit m Ev.mode_enter entry reason;
    true

let raise_exception m ~cause ~epc ~tval ~metal =
  m.stats.Stats.exceptions <- m.stats.Stats.exceptions + 1;
  m.fault_cause <- Cause.code cause;
  emit m Ev.exn (Cause.code cause) tval;
  if m.config.Config.trace then
    add_trace m ~cycle:m.stats.Stats.cycles
      (Printf.sprintf "exception %s at %s tval=%s" (Cause.to_string cause)
         (Word.to_hex epc) (Word.to_hex tval));
  if metal then begin
    m.halted <- Some (Halt_metal_fault { cause; pc = epc; info = tval });
    m.wb_rd <- 0
  end
  else begin
    let handler_value = m.ctrl.(Csr.exc_handler cause) in
    if handler_value = 0 then begin
      m.halted <- Some (Halt_fault { cause; pc = epc; info = tval });
      m.wb_rd <- 0
    end
    else begin
      let writes =
        [ (Reg.Mconv.return_address, Word.of_int epc);
          (Reg.Mconv.event_cause, Cause.code cause);
          (Reg.Mconv.event_value, tval) ]
      in
      ignore
        (deliver_to_mroutine m ~handler_value ~writes
           ~reason:Ev.reason_exception
           ~on_missing:
             (Halt_fault { cause; pc = epc; info = tval }))
    end
  end

(* ------------------------------------------------------------------ *)
(* MEM stage                                                           *)

let width_alignment = function Instr.Byte -> 0 | Instr.Half -> 1 | Instr.Word -> 3

let sign_extend_load ~width ~unsigned v =
  match (width, unsigned) with
  | Instr.Byte, false -> Word.of_int (Word.sign_extend ~width:8 v)
  | Instr.Half, false -> Word.of_int (Word.sign_extend ~width:16 v)
  | (Instr.Byte | Instr.Half), true | Instr.Word, _ -> v

let retire m =
  let x = m.ex_mem in
  let stats = m.stats in
  stats.Stats.instructions <- stats.Stats.instructions + 1;
  if x.xmetal then
    stats.Stats.metal_instructions <- stats.Stats.metal_instructions + 1;
  emit m Ev.retire x.xpc (if x.xmetal then 1 else 0);
  if m.config.Config.trace then
    add_trace m ~cycle:stats.Stats.cycles
      (Printf.sprintf "retire %s%s %s" (Word.to_hex x.xpc)
         (if x.xmetal then " M" else "  ")
         (match x.xuop with
          | U_instr i -> Instr.to_string i
          | U_event { kind = Event_menter e; _ } ->
            Printf.sprintf "<menter %d>" e
          | U_event { kind = Event_intercept c; _ } ->
            Printf.sprintf "<intercept %s>" (Icept.to_string c)
          | U_poison _ -> "<poison>"))

let mem_writeback m rd value =
  if rd = 0 then m.wb_rd <- 0
  else begin
    m.wb_rd <- rd;
    m.wb_value <- value
  end;
  retire m;
  true

let mem_no_writeback m =
  m.wb_rd <- 0;
  retire m;
  true

let mem_except m cause tval =
  let x = m.ex_mem in
  m.wb_rd <- 0;
  raise_exception m ~cause ~epc:x.xpc ~tval ~metal:x.xmetal;
  false

let charge_mem_latency m =
  let l = m.config.Config.mem_latency in
  if l > 0 then begin
    m.stall_cycles <- m.stall_cycles + l;
    m.stats.Stats.mem_stall_cycles <- m.stats.Stats.mem_stall_cycles + l;
    emit m Ev.stall_begin Ev.stall_mem_latency l
  end

(* One extra stall cycle for the in-line SECDED verify on the MRAM
   data read port ([mld] with Config.ecc armed); the m-register read
   path is modeled combinational and charges nothing.  Mirrors
   [charge_mem_latency], and Wcost.instr accounts for it. *)
let charge_ecc_check m =
  m.stall_cycles <- m.stall_cycles + 1;
  m.stats.Stats.mem_stall_cycles <- m.stats.Stats.mem_stall_cycles + 1;
  emit m Ev.stall_begin Ev.stall_ecc_check 1

(* A pipeline store that landed in physical memory: tell the predecode
   and block caches so they can invalidate precisely instead of
   flushing. *)
let note_store m pa =
  if Metal_hw.Phys_mem.in_range (Metal_hw.Bus.memory m.bus) ~addr:pa ~width:1
  then begin
    if m.use_predecode then P.note_phys_store m.predecode ~addr:pa;
    if m.use_blocks then Blockcache.note_phys_store m.blockcache ~addr:pa
  end

let do_mem_metal m (x : executed) mi =
  let stats = m.stats in
  match mi with
  | Instr.Mld { rd; _ } ->
    if m.config.Config.ecc then begin
      match Metal_hw.Mram.load_word_checked m.mram ~addr:x.alu with
      | None -> mem_except m Cause.Access_fault x.alu
      | Some (v, st) ->
        charge_ecc_check m;
        (match st with
         | Metal_hw.Ecc.Clean -> mem_writeback m rd v
         | Metal_hw.Ecc.Corrected _ ->
           emit m Ev.ecc_correct 0 x.alu;
           mem_writeback m rd v
         | Metal_hw.Ecc.Uncorrectable ->
           mem_except m Cause.Ecc_uncorrectable x.alu)
    end
    else begin match Metal_hw.Mram.load_word m.mram ~addr:x.alu with
    | Some v -> mem_writeback m rd v
    | None -> mem_except m Cause.Access_fault x.alu
    end
  | Instr.Mst _ ->
    if Metal_hw.Mram.store_word m.mram ~addr:x.alu x.sval then begin
      if m.use_predecode then P.note_mram_store m.predecode;
      mem_no_writeback m
    end
    else mem_except m Cause.Access_fault x.alu
  | Instr.Rmr { rd; mr } ->
    if m.config.Config.ecc then begin
      match get_mreg_checked m mr with
      | v, Metal_hw.Ecc.Clean -> mem_writeback m rd v
      | v, Metal_hw.Ecc.Corrected _ ->
        emit m Ev.ecc_correct 1 mr;
        mem_writeback m rd v
      | _, Metal_hw.Ecc.Uncorrectable ->
        mem_except m Cause.Ecc_uncorrectable mr
    end
    else mem_writeback m rd (get_mreg m mr)
  | Instr.Wmr { mr; _ } ->
    set_mreg m mr x.alu;
    mem_no_writeback m
  | Instr.Menter { entry } ->
    (* Slow-path (trap-style) Metal entry; the fast path consumes
       menter at decode and never reaches here. *)
    begin match Metal_hw.Mram.entry_addr m.mram entry with
    | None -> mem_except m Cause.Illegal_instruction 0
    | Some target ->
      set_mreg m Reg.Mconv.return_address (Word.add x.xpc 4);
      stats.Stats.menters <- stats.Stats.menters + 1;
      stats.Stats.instructions <- stats.Stats.instructions + 1;
      emit m Ev.retire x.xpc (if x.xmetal then 1 else 0);
      flush_all m;
      m.wb_rd <- 0;
      redirect m ~target ~metal:true;
      emit m Ev.mode_enter entry Ev.reason_menter_trap;
      false
    end
  | Instr.Mexit when m.config.Config.ecc
                     && (match get_mreg_checked m Reg.Mconv.return_address with
                         | _, Metal_hw.Ecc.Uncorrectable -> true
                         | _ -> false) ->
    mem_except m Cause.Ecc_uncorrectable Reg.Mconv.return_address
  | Instr.Mexit ->
    if m.config.Config.ecc then begin
      match get_mreg_checked m Reg.Mconv.return_address with
      | _, Metal_hw.Ecc.Corrected _ ->
        emit m Ev.ecc_correct 1 Reg.Mconv.return_address
      | _ -> ()
    end;
    let target = get_mreg m Reg.Mconv.return_address in
    stats.Stats.mexits <- stats.Stats.mexits + 1;
    stats.Stats.instructions <- stats.Stats.instructions + 1;
    if x.xmetal then
      stats.Stats.metal_instructions <- stats.Stats.metal_instructions + 1;
    emit m Ev.retire x.xpc (if x.xmetal then 1 else 0);
    flush_all m;
    m.wb_rd <- 0;
    redirect m ~target ~metal:false;
    emit m Ev.mode_exit target 0;
    false
  | Instr.Feature f ->
    begin match f with
    | Instr.Physld { rd; _ } ->
      if x.alu land 3 <> 0 then mem_except m Cause.Misaligned_load x.alu
      else begin
        charge_mem_latency m;
        match Metal_hw.Bus.load m.bus ~width:Instr.Word ~addr:x.alu with
        | Ok v -> mem_writeback m rd v
        | Error cause -> mem_except m cause x.alu
      end
    | Instr.Physst _ ->
      if x.alu land 3 <> 0 then mem_except m Cause.Misaligned_store x.alu
      else begin
        charge_mem_latency m;
        match Metal_hw.Bus.store m.bus ~width:Instr.Word ~addr:x.alu x.sval with
        | Ok () ->
          note_store m x.alu;
          mem_no_writeback m
        | Error cause -> mem_except m cause x.alu
      end
    | Instr.Tlbw _ ->
      Metal_hw.Tlb.insert_packed m.tlb ~tag:x.alu ~data:x.sval;
      mem_no_writeback m
    | Instr.Tlbflush _ ->
      if x.alu = Word.mask then Metal_hw.Tlb.flush_all m.tlb
      else Metal_hw.Tlb.flush_asid m.tlb ~asid:(x.alu land 0xFF);
      mem_no_writeback m
    | Instr.Tlbprobe { rd; _ } ->
      let asid = m.ctrl.(Csr.asid) land 0xFF in
      mem_writeback m rd (Metal_hw.Tlb.probe_packed m.tlb ~asid ~vaddr:x.alu)
    | Instr.Gprr { rd; _ } -> mem_writeback m rd m.regs.(x.alu land 31)
    | Instr.Gprw _ ->
      let idx = x.alu land 31 in
      if idx <> 0 then m.regs.(idx) <- x.sval;
      mem_no_writeback m
    | Instr.Iceptset _ ->
      ctrl_write m (Csr.icept_handler (x.alu land 15)) (x.sval + 1);
      mem_no_writeback m
    | Instr.Iceptclr _ ->
      ctrl_write m (Csr.icept_handler (x.alu land 15)) 0;
      mem_no_writeback m
    | Instr.Mcsrr { rd; csr } -> mem_writeback m rd (ctrl_read m csr)
    | Instr.Mcsrw { csr; _ } ->
      ctrl_write m csr x.alu;
      mem_no_writeback m
    end

(* Returns [true] when the cycle may continue through EX/ID/IF;
   [false] when MEM flushed the pipe (exception or slow-path
   transition) or halted the machine. *)
let do_mem m =
  let x = m.ex_mem in
  if not x.xvalid then begin
    m.stats.Stats.bubbles <- m.stats.Stats.bubbles + 1;
    m.wb_rd <- 0;
    true
  end
  else
    match x.xuop with
    | U_poison { cause; tval } ->
      m.wb_rd <- 0;
      raise_exception m ~cause ~epc:x.xpc ~tval ~metal:x.xmetal;
      false
    | U_event { kind; writes } ->
      List.iter (fun (mr, v) -> set_mreg m mr v) writes;
      begin match kind with
      | Event_menter _ -> m.stats.Stats.menters <- m.stats.Stats.menters + 1
      | Event_intercept _ ->
        m.stats.Stats.intercepts <- m.stats.Stats.intercepts + 1
      end;
      mem_no_writeback m
    | U_instr instr ->
      begin match instr with
      | Instr.Load { width; unsigned; rd; _ } ->
        let vaddr = x.alu in
        if vaddr land width_alignment width <> 0 then
          mem_except m Cause.Misaligned_load vaddr
        else begin
          let pa = translate m ~access:A_load ~metal:x.xmetal vaddr in
          if pa < 0 then mem_except m m.xlate_cause vaddr
          else begin
            charge_mem_latency m;
            charge_cache m m.dcache ~addr:pa ~fetch:false;
            match Metal_hw.Bus.load m.bus ~width ~addr:pa with
            | Error cause -> mem_except m cause vaddr
            | Ok v -> mem_writeback m rd (sign_extend_load ~width ~unsigned v)
          end
        end
      | Instr.Store { width; _ } ->
        let vaddr = x.alu in
        if vaddr land width_alignment width <> 0 then
          mem_except m Cause.Misaligned_store vaddr
        else begin
          let pa = translate m ~access:A_store ~metal:x.xmetal vaddr in
          if pa < 0 then mem_except m m.xlate_cause vaddr
          else begin
            charge_mem_latency m;
            charge_cache m m.dcache ~addr:pa ~fetch:false;
            match Metal_hw.Bus.store m.bus ~width ~addr:pa x.sval with
            | Error cause -> mem_except m cause vaddr
            | Ok () ->
              note_store m pa;
              mem_no_writeback m
          end
        end
      | Instr.Metal mi -> do_mem_metal m x mi
      | Instr.Ecall -> mem_except m Cause.Ecall 0
      | Instr.Ebreak ->
        if (not x.xmetal) && m.ctrl.(Csr.exc_handler Cause.Breakpoint) <> 0
        then mem_except m Cause.Breakpoint 0
        else begin
          retire m;
          m.wb_rd <- 0;
          m.halted <- Some (Halt_ebreak { pc = x.xpc; metal = x.xmetal });
          false
        end
      | Instr.Jal { rd; offset } ->
        let ok = mem_writeback m rd x.alu in
        (* Call/return hints for the profiler, per the RISC-V calling
           convention: linking through ra/t0 marks a call; jalr x0 via
           ra/t0 marks a return.  Classified at retire (past any
           squash) so both steppers emit identical streams; gated on
           [probe_on] so the disabled path stays one load-and-branch. *)
        if m.probe_on && (rd = 1 || rd = 5) then
          emit m Ev.call (Word.add x.xpc offset) x.xpc;
        ok
      | Instr.Jalr { rd; rs1; _ } ->
        let ok = mem_writeback m rd x.alu in
        if m.probe_on then begin
          if rd = 1 || rd = 5 then emit m Ev.call x.sval x.xpc
          else if rd = 0 && (rs1 = 1 || rs1 = 5) then
            emit m Ev.ret x.sval x.xpc
        end;
        ok
      | Instr.Lui { rd; _ } | Instr.Auipc { rd; _ }
      | Instr.Op_imm { rd; _ } | Instr.Op { rd; _ } ->
        mem_writeback m rd x.alu
      | Instr.Branch _ | Instr.Fence -> mem_no_writeback m
      end

(* ------------------------------------------------------------------ *)
(* EX stage                                                            *)

let alu_compute op a b =
  match op with
  | Instr.Add -> Word.add a b
  | Instr.Sub -> Word.sub a b
  | Instr.Sll -> Word.shift_left a b
  | Instr.Slt -> if Word.lt_signed a b then 1 else 0
  | Instr.Sltu -> if Word.lt_unsigned a b then 1 else 0
  | Instr.Xor -> Word.logxor a b
  | Instr.Srl -> Word.shift_right_logical a b
  | Instr.Sra -> Word.shift_right_arith a b
  | Instr.Or -> Word.logor a b
  | Instr.And -> Word.logand a b

let branch_taken cond a b =
  match cond with
  | Instr.Beq -> a = b
  | Instr.Bne -> a <> b
  | Instr.Blt -> Word.lt_signed a b
  | Instr.Bge -> Word.ge_signed a b
  | Instr.Bltu -> Word.lt_unsigned a b
  | Instr.Bgeu -> Word.ge_unsigned a b

(* Process the EX stage, filling [m.ex_mem] in place from [m.id_ex].
   Forwarding sources are passed as scalars snapshotted before MEM
   overwrote the latches: [fw_rd]/[fw_val] from last cycle's EX/MEM,
   [wb_rd]/[wb_val] from last cycle's MEM/WB.  Returns a taken-branch
   or jalr redirect encoded as [(target lsl 1) lor metal], or -1. *)
let do_ex m ~fw_rd ~fw_val ~wb_rd ~wb_val =
  let d = m.id_ex in
  let x = m.ex_mem in
  if not d.dvalid then begin
    x.xvalid <- false;
    -1
  end
  else begin
    (* Forward from the EX/MEM and MEM/WB latches of the previous
       cycle.  A load-like producer in EX/MEM would be a missed
       load-use stall; the decode-stage interlock prevents it. *)
    let rv1 =
      if d.rs1 = 0 then d.rv1
      else if fw_rd = d.rs1 then fw_val
      else if wb_rd = d.rs1 then wb_val
      else d.rv1
    in
    let rv2 =
      if d.rs2 = 0 then d.rv2
      else if fw_rd = d.rs2 then fw_val
      else if wb_rd = d.rs2 then wb_val
      else d.rv2
    in
    x.xvalid <- true;
    x.xpc <- d.dpc;
    x.xmetal <- d.dmetal;
    x.xuop <- d.duop;
    x.alu <- 0;
    x.sval <- 0;
    match d.duop with
    | U_poison _ | U_event _ -> -1
    | U_instr instr ->
      begin match instr with
      | Instr.Lui { imm; _ } ->
        x.alu <- Word.of_int (imm lsl 12);
        -1
      | Instr.Auipc { imm; _ } ->
        x.alu <- Word.add d.dpc (Word.of_int (imm lsl 12));
        -1
      | Instr.Jal _ ->
        x.alu <- Word.add d.dpc 4;
        -1
      | Instr.Jalr { offset; _ } ->
        let target = Word.logand (Word.add rv1 offset) (Word.lognot 1) in
        x.alu <- Word.add d.dpc 4;
        (* The target is dead for writeback but the profiler needs it
           at retire; sval is otherwise unused by jalr. *)
        x.sval <- target;
        (target lsl 1) lor (if d.dmetal then 1 else 0)
      | Instr.Branch { cond; offset; _ } ->
        if branch_taken cond rv1 rv2 then
          (Word.add d.dpc offset lsl 1) lor (if d.dmetal then 1 else 0)
        else -1
      | Instr.Load { offset; _ } ->
        x.alu <- Word.add rv1 offset;
        -1
      | Instr.Store { offset; _ } ->
        x.alu <- Word.add rv1 offset;
        x.sval <- rv2;
        -1
      | Instr.Op_imm { op; imm; _ } ->
        x.alu <- alu_compute op rv1 (Word.of_int imm);
        -1
      | Instr.Op { op; _ } ->
        x.alu <- alu_compute op rv1 rv2;
        -1
      | Instr.Ecall | Instr.Ebreak | Instr.Fence -> -1
      | Instr.Metal mi ->
        begin match mi with
        | Instr.Mld { offset; _ } -> x.alu <- Word.add rv1 offset
        | Instr.Mst { offset; _ } ->
          x.alu <- Word.add rv1 offset;
          x.sval <- rv2
        | Instr.Menter _ | Instr.Mexit | Instr.Rmr _ -> ()
        | Instr.Wmr _ -> x.alu <- rv1
        | Instr.Feature f ->
          begin match f with
          | Instr.Physld { offset; _ } -> x.alu <- Word.add rv1 offset
          | Instr.Physst { offset; _ } ->
            x.alu <- Word.add rv1 offset;
            x.sval <- rv2
          | Instr.Tlbw _ | Instr.Gprw _ | Instr.Iceptset _ ->
            x.alu <- rv1;
            x.sval <- rv2
          | Instr.Tlbflush _ | Instr.Tlbprobe _ | Instr.Gprr _
          | Instr.Iceptclr _ | Instr.Mcsrw _ -> x.alu <- rv1
          | Instr.Mcsrr _ -> ()
          end
        end;
        -1
      end
  end

(* ------------------------------------------------------------------ *)
(* ID stage                                                            *)

(* Interception is considered only for normal-mode instructions with a
   registered handler and the global enable bit set. *)
let intercept_handler m instr =
  if m.ctrl.(Csr.icept_enable) land 1 = 0 then None
  else
    match Icept.classify instr with
    | None -> None
    | Some cls ->
      let v = m.ctrl.(Csr.icept_handler (Icept.code cls)) in
      if v = 0 then None else Some (cls, v)

(* Source registers by encoding position (x0 allowed): forwarding and
   the interception interlock need rs1/rs2 positionally. *)
let sources_of instr =
  match instr with
  | Instr.Jalr { rs1; _ } | Instr.Load { rs1; _ } | Instr.Op_imm { rs1; _ } ->
    (rs1, 0)
  | Instr.Branch { rs1; rs2; _ } | Instr.Op { rs1; rs2; _ }
  | Instr.Store { rs1; rs2; _ } -> (rs1, rs2)
  | Instr.Metal m ->
    begin match m with
    | Instr.Wmr { rs1; _ } | Instr.Mld { rs1; _ } -> (rs1, 0)
    | Instr.Mst { rs1; rs2; _ } -> (rs1, rs2)
    | Instr.Menter _ | Instr.Mexit | Instr.Rmr _ -> (0, 0)
    | Instr.Feature f ->
      begin match f with
      | Instr.Physld { rs1; _ } | Instr.Tlbflush { rs1 }
      | Instr.Tlbprobe { rs1; _ } | Instr.Gprr { rs1; _ }
      | Instr.Iceptclr { rs1 } | Instr.Mcsrw { rs1; _ } -> (rs1, 0)
      | Instr.Physst { rs1; rs2; _ } | Instr.Tlbw { rs1; rs2 }
      | Instr.Gprw { rs1; rs2 } | Instr.Iceptset { rs1; rs2 } -> (rs1, rs2)
      | Instr.Mcsrr _ -> (0, 0)
      end
    end
  | Instr.Lui _ | Instr.Auipc _ | Instr.Jal _ | Instr.Ecall | Instr.Ebreak
  | Instr.Fence -> (0, 0)

(* Decode [f.word] into the latch's predecode slots (the ablation path
   when the predecode cache is off, and uncacheable fetches).  Also
   folds in the mode-legality check: Metal instructions other than
   menter require Metal mode; menter requires normal mode (no hardware
   nesting). *)
let decode_into (f : fetched) =
  (match Decode.decode f.word with
   | Error _ ->
     f.flegal <- false;
     f.finstr <- nop_instr;
     f.fuop <- nop_uop;
     f.frs1 <- 0;
     f.frs2 <- 0
   | Ok instr ->
     let legal =
       match instr with
       | Instr.Metal (Instr.Menter _) -> not f.fmetal
       | Instr.Metal _ -> f.fmetal
       | _ -> true
     in
     let rs1, rs2 = sources_of instr in
     f.flegal <- legal;
     f.finstr <- instr;
     f.fuop <- U_instr instr;
     f.frs1 <- rs1;
     f.frs2 <- rs2);
  f.fdec_valid <- true

let id_set_dec (d : decoded) (f : fetched) uop rs1 rs2 rv1 rv2 =
  d.dvalid <- true;
  d.dpc <- f.fpc;
  d.dmetal <- f.fmetal;
  d.duop <- uop;
  d.rs1 <- rs1;
  d.rs2 <- rs2;
  d.rv1 <- rv1;
  d.rv2 <- rv2

let id_set_poison (d : decoded) (f : fetched) cause tval =
  d.dvalid <- true;
  d.dpc <- f.fpc;
  d.dmetal <- f.fmetal;
  d.duop <- U_poison { cause; tval };
  d.rs1 <- 0;
  d.rs2 <- 0;
  d.rv1 <- 0;
  d.rv2 <- 0

(* Outcome encoding: [id_stall] keeps IF/ID and inserts a bubble;
   [id_pass] means the latch was filled (or left invalid) with no
   redirect; any non-negative value is a decode-stage redirect
   [(target lsl 2) lor (to_metal lsl 1) lor combinational]. *)
let id_stall = -2
let id_pass = -1

let do_id m ~exm_wr_rd ~exm_wmreg =
  let f = m.if_id in
  let d = m.id_ex in
  if not f.fvalid then begin
    d.dvalid <- false;
    id_pass
  end
  else begin
    (* Interlock inputs from the decode now leaving ID (last cycle's
       ID/EX latch, about to be overwritten in place). *)
    let old_valid = d.dvalid in
    let old_dst = if old_valid then uop_dst d.duop else 0 in
    let old_at_mem = old_valid && uop_produces_at_mem d.duop in
    let old_wmreg = old_valid && uop_writes_mreg d.duop in
    match f.ffault with
    | Some cause ->
      id_set_poison d f cause f.fpc;
      id_pass
    | None ->
      if not f.fdec_valid then decode_into f;
      if not f.flegal then begin
        id_set_poison d f Cause.Illegal_instruction f.word;
        id_pass
      end
      else begin
        let instr = f.finstr in
        let rs1 = f.frs1 and rs2 = f.frs2 in
        let rv1 = m.regs.(rs1) and rv2 = m.regs.(rs2) in
        (* Load-use interlock against the instruction now in EX. *)
        if old_at_mem && old_dst <> 0 && (old_dst = rs1 || old_dst = rs2)
        then begin
          m.stats.Stats.load_use_stalls <-
            m.stats.Stats.load_use_stalls + 1;
          d.dvalid <- false;
          id_stall
        end
        else begin
          match intercept_handler m instr with
          | Some (cls, handler_value) when not f.fmetal ->
            (* Interception needs fresh operand values at decode. *)
            if (old_dst <> 0 && (old_dst = rs1 || old_dst = rs2))
               || (exm_wr_rd <> 0 && (exm_wr_rd = rs1 || exm_wr_rd = rs2))
            then begin
              m.stats.Stats.interlock_stalls <-
                m.stats.Stats.interlock_stalls + 1;
              d.dvalid <- false;
              id_stall
            end
            else begin
              let entry = handler_value - 1 in
              match Metal_hw.Mram.entry_addr m.mram entry with
              | None ->
                (* Mis-configured intercept: treat as illegal. *)
                id_set_poison d f Cause.Illegal_instruction f.word;
                id_pass
              | Some target ->
                let eff_addr, store_val, rd_idx =
                  match instr with
                  | Instr.Load { rs1 = _; offset; rd; _ } ->
                    (Word.add rv1 offset, 0, rd)
                  | Instr.Store { offset; _ } ->
                    (Word.add rv1 offset, rv2, 0)
                  | Instr.Jalr { offset; rd; _ } ->
                    (Word.logand (Word.add rv1 offset) (Word.lognot 1),
                     0, rd)
                  | Instr.Jal { offset; rd } ->
                    (Word.add f.fpc offset, 0, rd)
                  | Instr.Branch { offset; _ } ->
                    (Word.add f.fpc offset, 0, 0)
                  | _ -> (0, 0, 0)
                in
                let writes =
                  [ (Reg.Mconv.return_address, Word.of_int f.fpc);
                    (Reg.Mconv.event_cause,
                     Cause.intercept_code (Icept.code cls));
                    (Reg.Mconv.event_value, f.word);
                    (Reg.Mconv.event_addr, eff_addr);
                    (Reg.Mconv.event_store_value, store_val);
                    (Reg.Mconv.event_rd, rd_idx) ]
                in
                id_set_dec d f
                  (U_event { kind = Event_intercept cls; writes })
                  rs1 rs2 rv1 rv2;
                emit m Ev.intercept (Icept.code cls) f.fpc;
                emit m Ev.mode_enter entry Ev.reason_intercept;
                (target lsl 2) lor 2 lor 1
            end
          | Some _ | None ->
            begin match instr with
            | Instr.Jal { offset; _ } ->
              id_set_dec d f f.fuop rs1 rs2 rv1 rv2;
              (Word.add f.fpc offset lsl 2) lor (if f.fmetal then 2 else 0)
            | Instr.Metal (Instr.Menter { entry })
              when m.config.Config.transition = Config.Fast_replacement ->
              begin match Metal_hw.Mram.entry_addr m.mram entry with
              | None ->
                id_set_poison d f Cause.Illegal_instruction f.word;
                id_pass
              | Some target ->
                let writes =
                  [ (Reg.Mconv.return_address, Word.add f.fpc 4) ]
                in
                id_set_dec d f
                  (U_event { kind = Event_menter entry; writes })
                  rs1 rs2 rv1 rv2;
                emit m Ev.mode_enter entry Ev.reason_menter;
                (target lsl 2) lor 2 lor 1
              end
            | Instr.Metal Instr.Mexit
              when m.config.Config.transition = Config.Fast_replacement ->
              if old_wmreg || exm_wmreg then begin
                m.stats.Stats.interlock_stalls <-
                  m.stats.Stats.interlock_stalls + 1;
                d.dvalid <- false;
                id_stall
              end
              else begin
                let ecc_dead =
                  m.config.Config.ecc
                  &&
                  match get_mreg_checked m Reg.Mconv.return_address with
                  | _, Metal_hw.Ecc.Uncorrectable -> true
                  | _, Metal_hw.Ecc.Corrected _ ->
                    emit m Ev.ecc_correct 1 Reg.Mconv.return_address;
                    false
                  | _, Metal_hw.Ecc.Clean -> false
                in
                if ecc_dead then begin
                  (* The return address is unrecoverable: route the
                     typed fault to MEM like any other decode-stage
                     poison instead of jumping to garbage. *)
                  id_set_poison d f Cause.Ecc_uncorrectable f.word;
                  id_pass
                end
                else begin
                  m.stats.Stats.mexits <- m.stats.Stats.mexits + 1;
                  d.dvalid <- false;
                  let target = get_mreg m Reg.Mconv.return_address in
                  emit m Ev.mode_exit target 0;
                  (target lsl 2) lor 1
                end
              end
            | _ ->
              id_set_dec d f f.fuop rs1 rs2 rv1 rv2;
              id_pass
            end
        end
      end
  end

(* ------------------------------------------------------------------ *)
(* IF stage                                                            *)

let if_set_ok m word =
  let f = m.if_id in
  let pc = m.fetch_pc in
  m.fetch_pc <- Word.add pc 4;
  f.fvalid <- true;
  f.fpc <- pc;
  f.fmetal <- m.fetch_metal;
  f.word <- word;
  f.ffault <- None;
  f.fdec_valid <- false

(* Fetch served from a (just filled or hit) predecode entry: the latch
   carries the cached decode so ID skips [Decode.decode]. *)
let if_set_pre m (e : uop P.entry) =
  let f = m.if_id in
  let pc = m.fetch_pc in
  m.fetch_pc <- Word.add pc 4;
  f.fvalid <- true;
  f.fpc <- pc;
  f.fmetal <- m.fetch_metal;
  f.word <- e.P.word;
  f.ffault <- None;
  f.fdec_valid <- true;
  f.flegal <- e.P.legal;
  f.finstr <- e.P.instr;
  f.fuop <- e.P.uop;
  f.frs1 <- e.P.rs1;
  f.frs2 <- e.P.rs2

let if_set_fault m cause =
  let f = m.if_id in
  m.fetch_frozen <- true;
  f.fvalid <- true;
  f.fpc <- m.fetch_pc;
  f.fmetal <- m.fetch_metal;
  f.word <- 0;
  f.ffault <- Some cause;
  f.fdec_valid <- false

let fill_entry (e : uop P.entry) ~tag ~metal word =
  e.P.tag <- tag;
  e.P.word <- word;
  match Decode.decode word with
  | Error _ ->
    e.P.legal <- false;
    e.P.instr <- nop_instr;
    e.P.uop <- nop_uop;
    e.P.rs1 <- 0;
    e.P.rs2 <- 0
  | Ok instr ->
    let legal =
      match instr with
      | Instr.Metal (Instr.Menter _) -> not metal
      | Instr.Metal _ -> metal
      | _ -> true
    in
    let rs1, rs2 = sources_of instr in
    e.P.legal <- legal;
    e.P.instr <- instr;
    e.P.uop <- U_instr instr;
    e.P.rs1 <- rs1;
    e.P.rs2 <- rs2

let do_if m =
  if m.fetch_frozen then m.if_id.fvalid <- false
  else begin
    let pc = m.fetch_pc in
    if m.fetch_metal then begin
      begin match m.config.Config.mram_backing with
      | Config.Main_memory { fetch_penalty } ->
        (* Main-memory-resident mroutines (the PALcode model) fetch
           through the instruction cache — filling, and polluting, it.
           Dedicated MRAM below bypasses the cache entirely. *)
        begin match m.icache with
        | Some c ->
          if not (Metal_hw.Cache.access c ~addr:(0x4000_0000 lor pc))
          then begin
            m.stall_cycles <- m.stall_cycles + fetch_penalty;
            m.stats.Stats.fetch_stall_cycles <-
              m.stats.Stats.fetch_stall_cycles + fetch_penalty;
            emit m Ev.stall_begin Ev.stall_mram_fetch fetch_penalty
          end
        | None ->
          if fetch_penalty > 0 then begin
            m.stall_cycles <- m.stall_cycles + fetch_penalty;
            m.stats.Stats.fetch_stall_cycles <-
              m.stats.Stats.fetch_stall_cycles + fetch_penalty;
            emit m Ev.stall_begin Ev.stall_mram_fetch fetch_penalty
          end
        end
      | Config.Dedicated -> ()
      end;
      if m.use_predecode then begin
        let p = m.predecode in
        P.sync_mram p ~version:(Metal_hw.Mram.version m.mram);
        let e = p.P.entries.((pc lsr 2) land p.P.mask) in
        let tag = (pc lsl 1) lor 1 in
        if e.P.tag = tag then begin
          p.P.hits <- p.P.hits + 1;
          if_set_pre m e
        end
        else begin
          match Metal_hw.Mram.fetch m.mram ~addr:pc with
          | None -> if_set_fault m Cause.Access_fault
          | Some word ->
            p.P.fills <- p.P.fills + 1;
            fill_entry e ~tag ~metal:true word;
            if_set_pre m e
        end
      end
      else begin
        match Metal_hw.Mram.fetch m.mram ~addr:pc with
        | Some word -> if_set_ok m word
        | None -> if_set_fault m Cause.Access_fault
      end
    end
    else if pc land 3 <> 0 then if_set_fault m Cause.Misaligned_fetch
    else begin
      let pa = translate m ~access:A_fetch ~metal:false pc in
      if pa < 0 then if_set_fault m m.xlate_cause
      else begin
        charge_cache m m.icache ~addr:pa ~fetch:true;
        if m.use_predecode then begin
          let mem = Metal_hw.Bus.memory m.bus in
          let p = m.predecode in
          P.sync_phys p ~version:(Metal_hw.Phys_mem.version mem);
          let e = p.P.entries.((pa lsr 2) land p.P.mask) in
          let tag = pa lsl 1 in
          if e.P.tag = tag then begin
            p.P.hits <- p.P.hits + 1;
            if_set_pre m e
          end
          else begin
            match Metal_hw.Bus.load m.bus ~width:Instr.Word ~addr:pa with
            | Error cause -> if_set_fault m cause
            | Ok word ->
              if Metal_hw.Phys_mem.in_range mem ~addr:pa ~width:4 then begin
                p.P.fills <- p.P.fills + 1;
                fill_entry e ~tag ~metal:false word;
                if_set_pre m e
              end
              else
                (* Device-backed fetch: never cached; ID decodes. *)
                if_set_ok m word
          end
        end
        else begin
          match Metal_hw.Bus.load m.bus ~width:Instr.Word ~addr:pa with
          | Ok word -> if_set_ok m word
          | Error cause -> if_set_fault m cause
        end
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Interrupt delivery                                                  *)

let metal_in_flight m =
  (m.if_id.fvalid && m.if_id.fmetal)
  || (m.id_ex.dvalid && m.id_ex.dmetal)
  || (m.ex_mem.xvalid && m.ex_mem.xmetal)

(* mroutine-entry micro-ops must not be squashed mid-entry: their
   fetch redirect has already happened, so squashing them would lose
   the Metal-register writes the mroutine is about to read. *)
let entry_in_flight m =
  (m.id_ex.dvalid
   && match m.id_ex.duop with U_event _ -> true | U_instr _ | U_poison _ -> false)
  || (m.ex_mem.xvalid
      && match m.ex_mem.xuop with
         | U_event _ -> true
         | U_instr _ | U_poison _ -> false)

let try_interrupt m =
  let enabled = m.ctrl.(Csr.int_enable) in
  if enabled = 0 || m.fetch_metal || metal_in_flight m || entry_in_flight m
  then false
  else
    match Metal_hw.Intc.highest_pending m.intc ~enabled with
    | None -> false
    | Some irq ->
      let handler_value = m.ctrl.(Csr.int_handler irq) in
      if handler_value = 0 then false
      else begin
        let epc =
          if m.ex_mem.xvalid then m.ex_mem.xpc
          else if m.id_ex.dvalid then m.id_ex.dpc
          else if m.if_id.fvalid then m.if_id.fpc
          else m.fetch_pc
        in
        let writes =
          [ (Reg.Mconv.return_address, Word.of_int epc);
            (Reg.Mconv.event_cause, Cause.interrupt_code irq) ]
        in
        m.stats.Stats.interrupts <- m.stats.Stats.interrupts + 1;
        emit m Ev.interrupt irq epc;
        if m.config.Config.trace then
          add_trace m ~cycle:m.stats.Stats.cycles
            (Printf.sprintf "interrupt %d delivered, resume %s" irq
               (Word.to_hex epc));
        deliver_to_mroutine m ~handler_value ~writes
          ~reason:Ev.reason_interrupt
          ~on_missing:
            (Halt_fault
               { cause = Cause.Access_fault; pc = epc; info = irq })
      end

(* ------------------------------------------------------------------ *)
(* Cycle driver                                                        *)

let timer_tick m =
  let cmp = m.ctrl.(Csr.timer_cmp) in
  if cmp <> 0 && m.stats.Stats.cycles >= cmp then begin
    Metal_hw.Intc.raise_irq m.intc Metal_hw.Intc.timer_irq;
    m.ctrl.(Csr.timer_cmp) <- 0
  end

(* The MEM→IF half of a cycle, after the register-file writeback has
   already happened with the MEM/WB scalars passed in.  Shared between
   [step_fast] and the block stepper's bail paths (which re-run a
   partially compiled cycle generically from this point). *)
let cycle_after_wb m ~wb_rd ~wb_val =
  let x = m.ex_mem in
  let x_dst = if x.xvalid then uop_dst x.xuop else 0 in
  let x_at_mem = x.xvalid && uop_produces_at_mem x.xuop in
  let fw_rd = if x_at_mem then 0 else x_dst in
  let fw_val = x.alu in
  let exm_wmreg = x.xvalid && uop_writes_mreg x.xuop in
  if try_interrupt m then ()
  else if not (do_mem m) then ()
  else begin
    let r = do_ex m ~fw_rd ~fw_val ~wb_rd ~wb_val in
    if r >= 0 then begin
      m.id_ex.dvalid <- false;
      m.if_id.fvalid <- false;
      m.stats.Stats.flushes <- m.stats.Stats.flushes + 1;
      emit m Ev.flush Ev.flush_redirect 0;
      redirect m ~target:(r lsr 1) ~metal:(r land 1 = 1)
    end
    else begin
      let c = do_id m ~exm_wr_rd:x_dst ~exm_wmreg in
      if c = id_pass then do_if m
      else if c >= 0 then begin
        redirect m ~target:(c lsr 2) ~metal:(c land 2 <> 0);
        if c land 1 = 1 then do_if m else m.if_id.fvalid <- false
      end
      (* c = id_stall: keep IF/ID, no fetch this cycle. *)
    end
  end

(* WB: regfile writes happen in the first half of the cycle so
   decode-stage reads observe them.  The scalars later stages need
   from last cycle's latches are snapshotted here, before MEM/EX
   overwrite those latches in place. *)
let cycle_body m =
  let wb_rd = m.wb_rd in
  let wb_val = m.wb_value in
  if wb_rd <> 0 then m.regs.(wb_rd) <- wb_val;
  m.wb_rd <- 0;
  cycle_after_wb m ~wb_rd ~wb_val

let step_fast m =
  match m.halted with
  | Some _ -> ()
  | None ->
    m.stats.Stats.cycles <- m.stats.Stats.cycles + 1;
    timer_tick m;
    Metal_hw.Bus.tick m.bus ~cycle:m.stats.Stats.cycles;
    if m.stall_cycles > 0 then begin
      m.stall_cycles <- m.stall_cycles - 1;
      if m.stall_cycles = 0 then emit m Ev.stall_end 0 0
    end
    else cycle_body m

(* ------------------------------------------------------------------ *)
(* Block stepper                                                       *)

(* The block stepper executes straight-line superblocks with the stage
   state held in locals instead of the latch records, eliminating the
   per-cycle latch traffic and uop dispatch of [step_fast].  It is
   engaged per block by [step_block]; anything it cannot prove
   cycle-exact bails to the generic machinery, so Stats, halt cause
   and (when armed) the probe event stream are bit-identical to
   [step_fast] and [Pipeline_slow] by construction:

   - engage guards refuse whole categories up front (armed probe or
     trace, Metal mode, pending stalls/interrupts, armed timer or
     interception, unprovable fetch translation);
   - a few "feeder" cycles run the generic stages with fetch served
     from the block until the three latches hold a dense in-block
     window, which is verified against the cached slots by content;
   - the compiled loop then advances MEM/EX/ID/IF entirely from the
     slot array, re-proving the frozen preconditions (page generation,
     TLB generation, interrupt lines) at every cycle boundary and
     rebuilding the latch records exactly as [step_fast] would have
     left them on every exit path. *)

let block_max_slots = 64

(* Even a two-slot block (tightest countdown loop: op + back-branch)
   pays off once chained; a lone control transfer never does. *)
let block_min_slots = 2

(* Classify one decoded instruction for the block builder.  [None]
   stops the block before the instruction: Metal instructions (mode
   transitions), ecall/ebreak (MEM-stage control flow) and anything
   else the compiled stepper does not model. *)
let mk_slot ~prev word instr =
  let slot ~cls ?(rd = 0) ?(rs1 = 0) ?(rs2 = 0) ?(imm = 0)
      ?(op = Instr.Add) ?(cond = Instr.Beq) ?(width = Instr.Word)
      ?(unsigned = false) () =
    let conflict_prev =
      match prev with
      | Some (p : uop B.slot) ->
        p.B.at_mem && p.B.rd <> 0 && (p.B.rd = rs1 || p.B.rd = rs2)
      | None -> false
    in
    Some
      { B.cls; rd; rs1; rs2; imm; op; cond; width; unsigned;
        amask = width_alignment width;
        wbytes =
          (match width with Instr.Byte -> 1 | Instr.Half -> 2 | Instr.Word -> 4);
        at_mem = cls = B.cls_load;
        conflict_prev; word; instr;
        uop = U_instr instr;
        chain = None }
  in
  match instr with
  | Instr.Op { op; rd; rs1; rs2 } -> slot ~cls:B.cls_op ~rd ~rs1 ~rs2 ~op ()
  | Instr.Op_imm { op; rd; rs1; imm } ->
    (* [do_ex] computes with [Word.of_int imm]; precompute it. *)
    slot ~cls:B.cls_op_imm ~rd ~rs1 ~imm:(Word.of_int imm) ~op ()
  | Instr.Lui { rd; imm } ->
    slot ~cls:B.cls_lui ~rd ~imm:(Word.of_int (imm lsl 12)) ()
  | Instr.Auipc { rd; imm } ->
    slot ~cls:B.cls_auipc ~rd ~imm:(Word.of_int (imm lsl 12)) ()
  | Instr.Load { width; unsigned; rd; rs1; offset } ->
    slot ~cls:B.cls_load ~rd ~rs1 ~imm:offset ~width ~unsigned ()
  | Instr.Store { width; rs1; rs2; offset } ->
    slot ~cls:B.cls_store ~rs1 ~rs2 ~imm:offset ~width ()
  | Instr.Fence -> slot ~cls:B.cls_fence ()
  | Instr.Branch { cond; rs1; rs2; offset } ->
    slot ~cls:B.cls_branch ~rs1 ~rs2 ~imm:offset ~cond ()
  | Instr.Jal { rd; offset } -> slot ~cls:B.cls_jal ~rd ~imm:offset ()
  | Instr.Jalr { rd; rs1; offset } ->
    slot ~cls:B.cls_jalr ~rd ~rs1 ~imm:offset ()
  | Instr.Ecall | Instr.Ebreak | Instr.Metal _ -> None

(* Build (and cache) the superblock starting at physical address [pa]:
   scan forward decoding instructions — running through conditional
   branches, whose not-taken path continues in the block — until an
   unconditional transfer (included as the final slot), an unmodelled
   instruction, a page boundary, the end of RAM, or the length cap.  A
   start that yields fewer than [block_min_slots] slots is cached as
   an empty block so the next engage bails in O(1). *)
let build_block m ~pa =
  let bc = m.blockcache in
  let mem = Metal_hw.Bus.memory m.bus in
  let page = pa lsr 12 in
  let page_end = (page + 1) lsl 12 in
  let rec scan acc addr prev n =
    if n >= block_max_slots || addr + 4 > page_end
       || not (Metal_hw.Phys_mem.in_range mem ~addr ~width:4)
    then (acc, -1)
    else begin
      let word = Metal_hw.Phys_mem.read32 mem addr in
      match Decode.decode word with
      | Error _ -> (acc, -1)
      | Ok instr ->
        (match mk_slot ~prev word instr with
         | None -> (acc, -1)
         | Some s ->
           (* Conditional branches stay mid-block: the not-taken path
              continues compiled, the taken path chains or exits.
              Only unconditional transfers end the superblock. *)
           if s.B.cls >= B.cls_jal then (s :: acc, s.B.cls)
           else scan (s :: acc) (addr + 4) (Some s) (n + 1))
    end
  in
  let rev_slots, term = scan [] pa None 0 in
  let slots = Array.of_list (List.rev rev_slots) in
  let n = Array.length slots in
  let n = if n >= block_min_slots then n else 0 in
  { B.pbase = pa;
    page;
    n;
    slots = (if n = 0 then [||] else slots);
    term;
    built_page_gen = B.page_gen bc ~page;
    built_epoch = bc.B.epoch;
    dtlb_vpn = -1;
    dtlb_base = 0;
    dtlb_load_ok = false;
    dtlb_store_ok = false;
    dtlb_gen = -1;
    dtlb_asid = -1;
    dtlb_perms = 0 }

(* Rebuild the three latch records from compiled-loop state so every
   generic path (and the next engage) sees exactly what [step_fast]
   would have left in them.  [id_i]: a slot index of [b], or -1 for an
   invalid IF/ID latch (warm-up after a redirect), or -2 when the latch
   already holds real (generically fetched) content that must be
   preserved (drain past the block end).  The MEM slot lives in [mb]
   ([b] except for the first cycle after a block→block chain, which
   still retires the predecessor's terminator). *)
let mat_latches m (b : uop B.block) vbase ~(mb : uop B.block) ~mb_vbase
    ~mem_i ~mem_alu ~mem_sval ~ex_i ~ex_rv1 ~ex_rv2 ~id_i =
  let f = m.if_id in
  if id_i = -1 then f.fvalid <- false
  else if id_i >= 0 then begin
    let s = b.B.slots.(id_i) in
    f.fvalid <- true;
    f.fpc <- vbase + (id_i lsl 2);
    f.fmetal <- false;
    f.word <- s.B.word;
    f.ffault <- None;
    f.fdec_valid <- true;
    f.flegal <- true;
    f.finstr <- s.B.instr;
    f.fuop <- s.B.uop;
    f.frs1 <- s.B.rs1;
    f.frs2 <- s.B.rs2
  end;
  let d = m.id_ex in
  if ex_i < 0 then d.dvalid <- false
  else begin
    let s = b.B.slots.(ex_i) in
    d.dvalid <- true;
    d.dpc <- vbase + (ex_i lsl 2);
    d.dmetal <- false;
    d.duop <- s.B.uop;
    d.rs1 <- s.B.rs1;
    d.rs2 <- s.B.rs2;
    d.rv1 <- ex_rv1;
    d.rv2 <- ex_rv2
  end;
  let x = m.ex_mem in
  if mem_i < 0 then x.xvalid <- false
  else begin
    let s = mb.B.slots.(mem_i) in
    x.xvalid <- true;
    x.xpc <- mb_vbase + (mem_i lsl 2);
    x.xmetal <- false;
    x.xuop <- s.B.uop;
    x.alu <- mem_alu;
    x.sval <- mem_sval
  end

(* Serve the fetch from block [b] when the fetch unit points inside it
   and the conditions proved at engage still hold; fall back to the
   generic fetch otherwise.  Equivalent to a TLB hit (counted) plus a
   predecode hit. *)
let feed_if m (b : uop B.block) vbase ~paging ~gen0 =
  let pc = m.fetch_pc in
  let off = pc - vbase in
  if m.fetch_frozen || m.fetch_metal || off < 0 || off land 3 <> 0
     || off asr 2 >= b.B.n
     || not (B.valid m.blockcache b)
     || (paging && Metal_hw.Tlb.generation m.tlb <> gen0)
  then do_if m
  else begin
    if paging then m.stats.Stats.tlb_hits <- m.stats.Stats.tlb_hits + 1;
    let s = b.B.slots.(off asr 2) in
    let f = m.if_id in
    m.fetch_pc <- Word.add pc 4;
    f.fvalid <- true;
    f.fpc <- pc;
    f.fmetal <- false;
    f.word <- s.B.word;
    f.ffault <- None;
    f.fdec_valid <- true;
    f.flegal <- true;
    f.finstr <- s.B.instr;
    f.fuop <- s.B.uop;
    f.frs1 <- s.B.rs1;
    f.frs2 <- s.B.rs2
  end

(* One generic cycle with the fetch served from the block: bit-identical
   to [step_fast] except that an in-block fetch skips the (provably
   hitting) TLB lookup and predecode probe. *)
let fed_cycle m (b : uop B.block) vbase ~paging ~gen0 =
  m.stats.Stats.cycles <- m.stats.Stats.cycles + 1;
  timer_tick m;
  Metal_hw.Bus.tick m.bus ~cycle:m.stats.Stats.cycles;
  if m.stall_cycles > 0 then begin
    m.stall_cycles <- m.stall_cycles - 1;
    if m.stall_cycles = 0 then emit m Ev.stall_end 0 0
  end
  else begin
    let wb_rd = m.wb_rd in
    let wb_val = m.wb_value in
    if wb_rd <> 0 then m.regs.(wb_rd) <- wb_val;
    m.wb_rd <- 0;
    let x = m.ex_mem in
    let x_dst = if x.xvalid then uop_dst x.xuop else 0 in
    let x_at_mem = x.xvalid && uop_produces_at_mem x.xuop in
    let fw_rd = if x_at_mem then 0 else x_dst in
    let fw_val = x.alu in
    let exm_wmreg = x.xvalid && uop_writes_mreg x.xuop in
    if try_interrupt m then ()
    else if not (do_mem m) then ()
    else begin
      let r = do_ex m ~fw_rd ~fw_val ~wb_rd ~wb_val in
      if r >= 0 then begin
        m.id_ex.dvalid <- false;
        m.if_id.fvalid <- false;
        m.stats.Stats.flushes <- m.stats.Stats.flushes + 1;
        emit m Ev.flush Ev.flush_redirect 0;
        redirect m ~target:(r lsr 1) ~metal:(r land 1 = 1)
      end
      else begin
        let c = do_id m ~exm_wr_rd:x_dst ~exm_wmreg in
        if c = id_pass then feed_if m b vbase ~paging ~gen0
        else if c >= 0 then begin
          redirect m ~target:(c lsr 2) ~metal:(c land 2 <> 0);
          if c land 1 = 1 then feed_if m b vbase ~paging ~gen0
          else m.if_id.fvalid <- false
        end
      end
    end
  end

(* Engageable latch windows, youngest-first.  [W_full k]: EX/MEM holds
   slot [k], ID/EX [k+1], IF/ID [k+2], fetch at [k+3] (which may be
   one past the end).  [W_pair j]: EX/MEM empty, ID/EX holds slot [j],
   IF/ID [j+1].  [W_front j]: only IF/ID is occupied, holding slot
   [j].  The partial shapes are how blocks shorter than three slots —
   and pipes refilling after a squash — engage at all.  Latch contents
   are compared against the cached slots: a block rebuilt after SMC
   may disagree with latches fetched before the rebuild. *)
type window = W_none | W_full of int | W_pair of int | W_front of int

let uop_matches_slot u (s : uop B.slot) =
  match u with
  | U_instr i -> i == s.B.instr || i = s.B.instr
  | U_event _ | U_poison _ -> false

let find_window m (b : uop B.block) vbase =
  let f = m.if_id and d = m.id_ex and x = m.ex_mem in
  if m.stall_cycles > 0 || m.fetch_frozen || m.fetch_metal
     || not (f.fvalid && f.fdec_valid && f.ffault = None && not f.fmetal)
  then W_none
  else begin
    let off = f.fpc - vbase in
    let j = off asr 2 in
    if off < 0 || off land 3 <> 0 || j >= b.B.n
       || m.fetch_pc <> vbase + ((j + 1) lsl 2)
       || f.word <> b.B.slots.(j).B.word
    then W_none
    else if not d.dvalid then
      (if x.xvalid then W_none else W_front j)
    else if d.dmetal || j < 1
            || d.dpc <> vbase + ((j - 1) lsl 2)
            || not (uop_matches_slot d.duop b.B.slots.(j - 1))
    then W_none
    else if not x.xvalid then W_pair (j - 1)
    else if x.xmetal || j < 2
            || x.xpc <> vbase + ((j - 2) lsl 2)
            || not (uop_matches_slot x.xuop b.B.slots.(j - 2))
    then W_none
    else W_full (j - 2)
  end

(* MEM stage of the compiled loop.  Returns -1 when the access cannot
   be proved regular (TLB miss or permission fault, device window,
   misalignment) and the cycle must be finished generically; otherwise
   a packed [smc lsl 37 | rd lsl 32 | value] writeback (rd = 0 for no
   writeback).  Nothing is committed on the -1 path, so the generic
   redo charges stats exactly once. *)
let compiled_mem m (b : uop B.block) ~fetch_page ~paging ~gen0 ~asid ~perms
    ~mem_i ~mem_alu ~mem_sval =
  let stats = m.stats in
  if mem_i < 0 then begin
    stats.Stats.bubbles <- stats.Stats.bubbles + 1;
    0
  end
  else begin
    let s = b.B.slots.(mem_i) in
    let cls = s.B.cls in
    if cls = B.cls_load || cls = B.cls_store then begin
      let vaddr = mem_alu in
      if vaddr land s.B.amask <> 0 then -1
      else begin
        let pa =
          if not paging then vaddr
          else begin
            let vpn = vaddr lsr 12 in
            if not (b.B.dtlb_vpn = vpn && b.B.dtlb_gen = gen0
                    && b.B.dtlb_asid = asid && b.B.dtlb_perms = perms)
            then begin
              (* Refill the block's inline entry with a stats-free
                 peek ([Tlb.lookup] is pure; the real hit is counted
                 below, only once the whole access is proved). *)
              match Metal_hw.Tlb.lookup m.tlb ~asid ~vpn with
              | Some e ->
                b.B.dtlb_vpn <- vpn;
                b.B.dtlb_base <- e.Metal_hw.Tlb.ppn lsl 12;
                b.B.dtlb_load_ok <-
                  e.Metal_hw.Tlb.r
                  && Word.bit (2 * e.Metal_hw.Tlb.pkey) perms = 0;
                b.B.dtlb_store_ok <-
                  e.Metal_hw.Tlb.w
                  && Word.bit ((2 * e.Metal_hw.Tlb.pkey) + 1) perms = 0;
                b.B.dtlb_gen <- gen0;
                b.B.dtlb_asid <- asid;
                b.B.dtlb_perms <- perms
              | None -> b.B.dtlb_vpn <- -1
            end;
            if b.B.dtlb_vpn = vpn
               && (if cls = B.cls_load then b.B.dtlb_load_ok
                   else b.B.dtlb_store_ok)
            then b.B.dtlb_base lor (vaddr land 0xFFF)
            else -1
          end
        in
        if pa < 0 then -1
        else begin
          let mem = Metal_hw.Bus.memory m.bus in
          if not (Metal_hw.Phys_mem.in_range mem ~addr:pa ~width:s.B.wbytes)
          then -1
          else begin
            if paging then
              stats.Stats.tlb_hits <- stats.Stats.tlb_hits + 1;
            stats.Stats.instructions <- stats.Stats.instructions + 1;
            if cls = B.cls_load then begin
              let raw =
                match s.B.width with
                | Instr.Word -> Metal_hw.Phys_mem.read32 mem pa
                | Instr.Half -> Metal_hw.Phys_mem.read16 mem pa
                | Instr.Byte -> Metal_hw.Phys_mem.read8 mem pa
              in
              if s.B.rd = 0 then 0
              else
                (s.B.rd lsl 32)
                lor sign_extend_load ~width:s.B.width ~unsigned:s.B.unsigned
                      raw
            end
            else begin
              (match s.B.width with
               | Instr.Word -> Metal_hw.Phys_mem.write32 mem pa mem_sval
               | Instr.Half -> Metal_hw.Phys_mem.write16 mem pa mem_sval
               | Instr.Byte -> Metal_hw.Phys_mem.write8 mem pa mem_sval);
              note_store m pa;
              (* A store into the currently-fetching block's page: the
                 rest of this cycle (the fetch) and the next cycle
                 boundary must see the invalidation. *)
              if pa lsr 12 = fetch_page then 1 lsl 37 else 0
            end
          end
        end
      end
    end
    else begin
      (* ALU classes, fence, branch, jal(r): plain retire with the
         EX result (rd = 0 slots write nothing). *)
      stats.Stats.instructions <- stats.Stats.instructions + 1;
      if s.B.rd = 0 then 0 else (s.B.rd lsl 32) lor mem_alu
    end
  end

(* The compiled loop.  State at each cycle boundary, mirroring the
   latches: [mem_i]/[mem_alu]/[mem_sval] the EX/MEM slot (-1 bubble,
   indexing [mb]), [ex_i]/[ex_rv1]/[ex_rv2] the ID/EX slot (-1
   bubble), [id_i] the IF/ID slot (-1 invalid, -2 real generic
   content), [fi] the fetch index (may be past [n]), and the MEM/WB
   scalars.  Every exit rebuilds the machine latches and flushes the
   per-run counters.  [mb]/[mb_vbase] name the block the MEM slot
   belongs to: [b] except for the first cycle after a block→block
   chain, which still retires the predecessor's terminator. *)
let rec compiled_cycle m (b : uop B.block) vbase ~(mb : uop B.block)
    ~mb_vbase ~paging ~gen0 ~asid ~perms ~enabled ~deadline ~cyc0 ~mem_i
    ~mem_alu ~mem_sval ~ex_i ~ex_rv1 ~ex_rv2 ~id_i ~fi ~wb_rd ~wb_val =
  let bc = m.blockcache in
  let stats = m.stats in
  if stats.Stats.cycles >= deadline
     || b.B.built_page_gen <> B.page_gen bc ~page:b.B.page
     || b.B.built_epoch <> bc.B.epoch
     || (paging && Metal_hw.Tlb.generation m.tlb <> gen0)
  then begin
    (* Clean cycle boundary: leave compiled mode without consuming a
       cycle.  (After SMC the materialized slots are still the ones
       whose content the window proved, so the latches match what
       step_fast would hold.) *)
    mat_latches m b vbase ~mb ~mb_vbase ~mem_i ~mem_alu ~mem_sval ~ex_i
      ~ex_rv1 ~ex_rv2 ~id_i;
    m.wb_rd <- wb_rd;
    m.wb_value <- wb_val;
    bc.B.block_cycles <- bc.B.block_cycles + (stats.Stats.cycles - cyc0);
    B.bail bc
      (if stats.Stats.cycles >= deadline then B.bail_deadline
       else B.bail_version)
  end
  else begin
    stats.Stats.cycles <- stats.Stats.cycles + 1;
    (* timer_cmp was 0 at engage and only Metal code can arm it, so
       [timer_tick] is a proven no-op here. *)
    Metal_hw.Bus.tick m.bus ~cycle:stats.Stats.cycles;
    if enabled <> 0 && enabled land Metal_hw.Intc.pending m.intc <> 0
    then begin
      (* A device raised an enabled line mid-block: the cycle has
         started (cycle count and bus tick), so finish it generically —
         [try_interrupt] inside [cycle_body] replays the precise
         delivery rules. *)
      mat_latches m b vbase ~mb ~mb_vbase ~mem_i ~mem_alu ~mem_sval ~ex_i
        ~ex_rv1 ~ex_rv2 ~id_i;
      m.wb_rd <- wb_rd;
      m.wb_value <- wb_val;
      bc.B.block_cycles <- bc.B.block_cycles + (stats.Stats.cycles - cyc0);
      B.bail bc B.bail_irq;
      cycle_body m
    end
    else begin
      (* WB *)
      if wb_rd <> 0 then m.regs.(wb_rd) <- wb_val;
      (* MEM *)
      let packed =
        compiled_mem m mb ~fetch_page:b.B.page ~paging ~gen0 ~asid ~perms
          ~mem_i ~mem_alu ~mem_sval
      in
      if packed < 0 then begin
        (* Unprovable access: restore the pre-MEM latch shape and
           re-run the second half of the cycle generically (nothing
           was committed, so MEM charges its stats exactly once). *)
        mat_latches m b vbase ~mb ~mb_vbase ~mem_i ~mem_alu ~mem_sval
          ~ex_i ~ex_rv1 ~ex_rv2 ~id_i;
        m.wb_rd <- 0;
        bc.B.block_cycles <- bc.B.block_cycles + (stats.Stats.cycles - cyc0);
        B.bail bc B.bail_mem;
        cycle_after_wb m ~wb_rd ~wb_val
      end
      else begin
        let nwb_rd = (packed lsr 32) land 31 in
        let nwb_val = packed land 0xFFFFFFFF in
        let smc = packed lsr 37 <> 0 in
        let x_dst_pre = if mem_i >= 0 then mb.B.slots.(mem_i).B.rd else 0 in
        let fw_rd =
          if mem_i >= 0 && not mb.B.slots.(mem_i).B.at_mem then
            mb.B.slots.(mem_i).B.rd
          else 0
        in
        let fw_val = mem_alu in
        (* EX *)
        if ex_i < 0 then
          finish_cycle m b vbase ~paging ~gen0 ~asid ~perms ~enabled
            ~deadline ~cyc0 ~nmem_i:(-1) ~nmem_alu:mem_alu
            ~nmem_sval:mem_sval ~ex_i ~ex_rv1 ~ex_rv2 ~id_i ~fi ~nwb_rd
            ~nwb_val ~smc ~x_dst_pre
        else begin
          let s = b.B.slots.(ex_i) in
          let rv1 =
            if s.B.rs1 = 0 then ex_rv1
            else if fw_rd = s.B.rs1 then fw_val
            else if wb_rd = s.B.rs1 then wb_val
            else ex_rv1
          in
          let rv2 =
            if s.B.rs2 = 0 then ex_rv2
            else if fw_rd = s.B.rs2 then fw_val
            else if wb_rd = s.B.rs2 then wb_val
            else ex_rv2
          in
          let cls = s.B.cls in
          if cls = B.cls_op || cls = B.cls_op_imm then
            finish_cycle m b vbase ~paging ~gen0 ~asid ~perms ~enabled
              ~deadline ~cyc0 ~nmem_i:ex_i
              ~nmem_alu:
                (alu_compute s.B.op rv1
                   (if cls = B.cls_op then rv2 else s.B.imm))
              ~nmem_sval:0 ~ex_i ~ex_rv1 ~ex_rv2 ~id_i ~fi ~nwb_rd
              ~nwb_val ~smc ~x_dst_pre
          else if cls = B.cls_load || cls = B.cls_store then
            finish_cycle m b vbase ~paging ~gen0 ~asid ~perms ~enabled
              ~deadline ~cyc0 ~nmem_i:ex_i ~nmem_alu:(Word.add rv1 s.B.imm)
              ~nmem_sval:(if cls = B.cls_store then rv2 else 0) ~ex_i
              ~ex_rv1 ~ex_rv2 ~id_i ~fi ~nwb_rd ~nwb_val ~smc ~x_dst_pre
          else if cls = B.cls_lui then
            finish_cycle m b vbase ~paging ~gen0 ~asid ~perms ~enabled
              ~deadline ~cyc0 ~nmem_i:ex_i ~nmem_alu:s.B.imm ~nmem_sval:0
              ~ex_i ~ex_rv1 ~ex_rv2 ~id_i ~fi ~nwb_rd ~nwb_val ~smc
              ~x_dst_pre
          else if cls = B.cls_auipc then
            finish_cycle m b vbase ~paging ~gen0 ~asid ~perms ~enabled
              ~deadline ~cyc0 ~nmem_i:ex_i
              ~nmem_alu:(Word.add (vbase + (ex_i lsl 2)) s.B.imm)
              ~nmem_sval:0 ~ex_i ~ex_rv1 ~ex_rv2 ~id_i ~fi ~nwb_rd
              ~nwb_val ~smc ~x_dst_pre
          else if cls = B.cls_fence then
            finish_cycle m b vbase ~paging ~gen0 ~asid ~perms ~enabled
              ~deadline ~cyc0 ~nmem_i:ex_i ~nmem_alu:0 ~nmem_sval:0 ~ex_i
              ~ex_rv1 ~ex_rv2 ~id_i ~fi ~nwb_rd ~nwb_val ~smc ~x_dst_pre
          else if cls = B.cls_jal then
            (* A jal can sit in EX only when the dense window formed
               right after its decode redirect; it just links. *)
            finish_cycle m b vbase ~paging ~gen0 ~asid ~perms ~enabled
              ~deadline ~cyc0 ~nmem_i:ex_i
              ~nmem_alu:(Word.add (vbase + (ex_i lsl 2)) 4) ~nmem_sval:0
              ~ex_i ~ex_rv1 ~ex_rv2 ~id_i ~fi ~nwb_rd ~nwb_val ~smc
              ~x_dst_pre
          else if cls = B.cls_branch && not (branch_taken s.B.cond rv1 rv2)
          then
            finish_cycle m b vbase ~paging ~gen0 ~asid ~perms ~enabled
              ~deadline ~cyc0 ~nmem_i:ex_i ~nmem_alu:0 ~nmem_sval:0 ~ex_i
              ~ex_rv1 ~ex_rv2 ~id_i ~fi ~nwb_rd ~nwb_val ~smc ~x_dst_pre
          else begin
            (* Taken branch or jalr: flush and redirect, exactly like
               the [r >= 0] arm of the generic cycle. *)
            let xpc = vbase + (ex_i lsl 2) in
            let target, alu, sval =
              if cls = B.cls_jalr then begin
                let t = Word.logand (Word.add rv1 s.B.imm) (Word.lognot 1) in
                (t, Word.add xpc 4, t)
              end
              else (Word.add xpc s.B.imm, 0, 0)
            in
            m.id_ex.dvalid <- false;
            m.if_id.fvalid <- false;
            stats.Stats.flushes <- stats.Stats.flushes + 1;
            emit m Ev.flush Ev.flush_redirect 0;
            redirect m ~target ~metal:false;
            (* Direct block→block chain: when the taken target is
               already translated (and still maps to the chained
               block), continue compiled — the terminator retires from
               [mb := b] while the successor's warm-up fetches begin.
               No smc concern: the store-into-fetch-page flag only
               gates fetches, and the boundary re-check above
               revalidates both pages next cycle. *)
            let chain_ok t =
              t.B.n > 0 && B.valid bc t
              && t.B.pbase
                 = (if not paging then target
                    else begin
                      match
                        Metal_hw.Tlb.lookup m.tlb ~asid
                          ~vpn:(target lsr 12)
                      with
                      | Some e when e.Metal_hw.Tlb.x ->
                        (e.Metal_hw.Tlb.ppn lsl 12) lor (target land 0xFFF)
                      | Some _ | None -> -1
                    end)
            in
            match s.B.chain with
            | Some t when chain_ok t ->
              bc.B.chain_hits <- bc.B.chain_hits + 1;
              compiled_cycle m t target ~mb:b ~mb_vbase:vbase ~paging
                ~gen0 ~asid ~perms ~enabled ~deadline ~cyc0 ~mem_i:ex_i
                ~mem_alu:alu ~mem_sval:sval ~ex_i:(-1) ~ex_rv1:0 ~ex_rv2:0
                ~id_i:(-1) ~fi:0 ~wb_rd:nwb_rd ~wb_val:nwb_val
            | Some _ | None -> begin
              (* Exit; record the chain edge so the next engage at the
                 target patches it in. *)
              let x = m.ex_mem in
              x.xvalid <- true;
              x.xpc <- xpc;
              x.xmetal <- false;
              x.xuop <- s.B.uop;
              x.alu <- alu;
              x.sval <- sval;
              m.wb_rd <- nwb_rd;
              m.wb_value <- nwb_val;
              bc.B.chain_src <- Some b;
              bc.B.chain_src_pc <- target;
              bc.B.chain_src_vbase <- vbase;
              bc.B.chain_src_i <- ex_i;
              bc.B.block_cycles <-
                bc.B.block_cycles + (stats.Stats.cycles - cyc0);
              B.bail bc B.exit_taken
            end
          end
        end
      end
    end
  end

(* ID + IF + rotation for a compiled cycle whose WB/MEM/EX halves are
   done; [nmem_*] is the post-EX EX/MEM content (always a slot of [b])
   and [nwb_*] this cycle's MEM result. *)
and finish_cycle m (b : uop B.block) vbase ~paging ~gen0 ~asid ~perms
    ~enabled ~deadline ~cyc0 ~nmem_i ~nmem_alu ~nmem_sval ~ex_i ~ex_rv1
    ~ex_rv2 ~id_i ~fi ~nwb_rd ~nwb_val ~smc ~x_dst_pre =
  let bc = m.blockcache in
  let stats = m.stats in
  if id_i = -1 then begin
    (* Warm-up after a redirect: nothing to decode.  Serve the fetch
       and rotate the bubble down. *)
    if smc || fi >= b.B.n then begin
      mat_latches m b vbase ~mb:b ~mb_vbase:vbase ~mem_i:nmem_i
        ~mem_alu:nmem_alu ~mem_sval:nmem_sval ~ex_i:(-1) ~ex_rv1:0
        ~ex_rv2:0 ~id_i:(-1);
      m.wb_rd <- nwb_rd;
      m.wb_value <- nwb_val;
      bc.B.block_cycles <- bc.B.block_cycles + (stats.Stats.cycles - cyc0);
      B.bail bc (if smc then B.bail_version else B.exit_fallthrough);
      do_if m
    end
    else begin
      if paging then stats.Stats.tlb_hits <- stats.Stats.tlb_hits + 1;
      m.fetch_pc <- Word.add m.fetch_pc 4;
      compiled_cycle m b vbase ~mb:b ~mb_vbase:vbase ~paging ~gen0 ~asid
        ~perms ~enabled ~deadline ~cyc0 ~mem_i:nmem_i ~mem_alu:nmem_alu
        ~mem_sval:nmem_sval ~ex_i:(-1) ~ex_rv1:0 ~ex_rv2:0 ~id_i:fi
        ~fi:(fi + 1) ~wb_rd:nwb_rd ~wb_val:nwb_val
    end
  end
  else if id_i = -2 then begin
    (* Drain: the IF/ID latch holds real beyond-block content and EX
       did not redirect (the terminator fell through, or the block has
       no terminator), so decode must go generic.  Hand the rest of
       the cycle to the generic ID + IF. *)
    mat_latches m b vbase ~mb:b ~mb_vbase:vbase ~mem_i:nmem_i
      ~mem_alu:nmem_alu ~mem_sval:nmem_sval ~ex_i ~ex_rv1 ~ex_rv2
      ~id_i:(-2);
    m.wb_rd <- nwb_rd;
    m.wb_value <- nwb_val;
    bc.B.block_cycles <- bc.B.block_cycles + (stats.Stats.cycles - cyc0);
    B.bail bc B.exit_fallthrough;
    (* Remember which block just ran off its own end: the next
       [step_block] can verify the latches against it and resume
       compiled in the successor without feeder cycles. *)
    bc.B.fall_src <- Some b;
    bc.B.fall_vbase <- vbase;
    let c = do_id m ~exm_wr_rd:x_dst_pre ~exm_wmreg:false in
    if c = id_pass then do_if m
    else if c >= 0 then begin
      redirect m ~target:(c lsr 2) ~metal:(c land 2 <> 0);
      if c land 1 = 1 then do_if m else m.if_id.fvalid <- false
    end
  end
  else begin
    let s = b.B.slots.(id_i) in
    if s.B.cls = B.cls_jal then begin
      (* jal resolves at decode with a combinational refetch; hand the
         whole ID outcome (including the redirect encoding) to the
         generic stage and exit. *)
      mat_latches m b vbase ~mb:b ~mb_vbase:vbase ~mem_i:nmem_i
        ~mem_alu:nmem_alu ~mem_sval:nmem_sval ~ex_i ~ex_rv1 ~ex_rv2 ~id_i;
      m.wb_rd <- nwb_rd;
      m.wb_value <- nwb_val;
      bc.B.block_cycles <- bc.B.block_cycles + (stats.Stats.cycles - cyc0);
      B.bail bc B.exit_jump;
      let c = do_id m ~exm_wr_rd:x_dst_pre ~exm_wmreg:false in
      if c = id_pass then do_if m
      else if c >= 0 then begin
        redirect m ~target:(c lsr 2) ~metal:(c land 2 <> 0);
        if c land 1 = 1 then do_if m else m.if_id.fvalid <- false
      end
    end
    else if ex_i >= 0 && s.B.conflict_prev then begin
      (* Load-use interlock: ID keeps its slot, EX gets a bubble, no
         fetch this cycle. *)
      stats.Stats.load_use_stalls <- stats.Stats.load_use_stalls + 1;
      compiled_cycle m b vbase ~mb:b ~mb_vbase:vbase ~paging ~gen0 ~asid
        ~perms ~enabled ~deadline ~cyc0 ~mem_i:nmem_i ~mem_alu:nmem_alu
        ~mem_sval:nmem_sval ~ex_i:(-1) ~ex_rv1 ~ex_rv2 ~id_i ~fi
        ~wb_rd:nwb_rd ~wb_val:nwb_val
    end
    else begin
      let nex_rv1 = m.regs.(s.B.rs1) in
      let nex_rv2 = m.regs.(s.B.rs2) in
      if smc then begin
        (* A store just hit this block's page: decode commits, the
           fetch goes through the full generic path, and the boundary
           re-check next cycle drops the block. *)
        mat_latches m b vbase ~mb:b ~mb_vbase:vbase ~mem_i:nmem_i
          ~mem_alu:nmem_alu ~mem_sval:nmem_sval ~ex_i:id_i
          ~ex_rv1:nex_rv1 ~ex_rv2:nex_rv2 ~id_i;
        (* [mat_latches] wrote IF/ID from [id_i], but this cycle's
           decode consumed it: the generic fetch below overwrites it
           (or marks it invalid on a frozen fetch). *)
        m.wb_rd <- nwb_rd;
        m.wb_value <- nwb_val;
        bc.B.block_cycles <-
          bc.B.block_cycles + (stats.Stats.cycles - cyc0);
        B.bail bc B.bail_version;
        do_if m
      end
      else if fi >= b.B.n then begin
        (* Past the block end: fetch generically (the successor of the
           last slot) and drain, so the terminator still resolves —
           and chains — in compiled mode. *)
        do_if m;
        compiled_cycle m b vbase ~mb:b ~mb_vbase:vbase ~paging ~gen0
          ~asid ~perms ~enabled ~deadline ~cyc0 ~mem_i:nmem_i
          ~mem_alu:nmem_alu ~mem_sval:nmem_sval ~ex_i:id_i
          ~ex_rv1:nex_rv1 ~ex_rv2:nex_rv2 ~id_i:(-2) ~fi:(fi + 1)
          ~wb_rd:nwb_rd ~wb_val:nwb_val
      end
      else begin
        if paging then stats.Stats.tlb_hits <- stats.Stats.tlb_hits + 1;
        m.fetch_pc <- Word.add m.fetch_pc 4;
        compiled_cycle m b vbase ~mb:b ~mb_vbase:vbase ~paging ~gen0
          ~asid ~perms ~enabled ~deadline ~cyc0 ~mem_i:nmem_i
          ~mem_alu:nmem_alu ~mem_sval:nmem_sval ~ex_i:id_i
          ~ex_rv1:nex_rv1 ~ex_rv2:nex_rv2 ~id_i:fi ~fi:(fi + 1)
          ~wb_rd:nwb_rd ~wb_val:nwb_val
      end
    end
  end

(* How many generic (fed) cycles to spend waiting for a dense window
   before giving up on this engage.  Three suffice from a clean
   redirect; the slack rides through an in-flight retire or one
   load-use stall. *)
let block_feed_tries = 6

(* Fall-through fast re-engage.  When [src] drained off its own end
   under the compiled stepper the pipe has a fixed shape: the last
   slot of [src] in EX/MEM, the successor's slot 0 in ID/EX, slot 1 in
   IF/ID, fetch at successor + 8 (exactly one drain cycle precedes the
   exit; stalls and redirects produce different shapes and fail the
   checks below).  Verify the latches against that shape and resume
   compiled in the successor block with zero feeder cycles. *)
let try_fall_engage m (src : uop B.block) ~pc ~paging ~deadline =
  let bc = m.blockcache in
  let svb = bc.B.fall_vbase + (src.B.n lsl 2) in
  let x = m.ex_mem and d = m.id_ex and f = m.if_id in
  if
    src.B.n > 0 && pc = svb + 8
    && x.xvalid
    && (not x.xmetal)
    && x.xuop == src.B.slots.(src.B.n - 1).B.uop
    && x.xpc = bc.B.fall_vbase + ((src.B.n - 1) lsl 2)
    && d.dvalid
    && (not d.dmetal)
    && d.dpc = svb && f.fvalid && f.fdec_valid && f.ffault = None
    && (not f.fmetal)
    && f.fpc = svb + 4
  then begin
    let asid = m.ctrl.(Csr.asid) land 0xFF in
    let spa =
      if not paging then svb
      else
        match Metal_hw.Tlb.lookup m.tlb ~asid ~vpn:(svb lsr 12) with
        | Some e when e.Metal_hw.Tlb.x ->
          (e.Metal_hw.Tlb.ppn lsl 12) lor (svb land 0xFFF)
        | Some _ | None -> -1
    in
    if spa < 0 then false
    else begin
      let b2 =
        match B.find bc ~pa:spa with
        | Some t -> t
        | None ->
          let nb = build_block m ~pa:spa in
          B.add bc nb;
          nb
      in
      if
        b2.B.n >= 2
        && uop_matches_slot d.duop b2.B.slots.(0)
        && f.word = b2.B.slots.(1).B.word
      then begin
        bc.B.fall_hits <- bc.B.fall_hits + 1;
        bc.B.engagements <- bc.B.engagements + 1;
        let gen0 = if paging then Metal_hw.Tlb.generation m.tlb else 0 in
        compiled_cycle m b2 svb ~mb:src ~mb_vbase:bc.B.fall_vbase ~paging
          ~gen0 ~asid ~perms:m.ctrl.(Csr.pkey_perms)
          ~enabled:m.ctrl.(Csr.int_enable) ~deadline
          ~cyc0:m.stats.Stats.cycles ~mem_i:(src.B.n - 1) ~mem_alu:x.alu
          ~mem_sval:x.sval ~ex_i:0 ~ex_rv1:d.rv1 ~ex_rv2:d.rv2 ~id_i:1
          ~fi:2 ~wb_rd:m.wb_rd ~wb_val:m.wb_value;
        true
      end
      else false
    end
  end
  else false

let step_block m ~deadline =
  let bc = m.blockcache in
  (* Guard bails are sticky: once a condition forces a generic cycle it
     usually holds for a whole episode (a Metal excursion, an armed
     timer window, a trace run), so burst [step_fast] until it clears
     rather than re-running the engage preamble every cycle.  Each
     episode counts one bail. *)
  if m.probe_on || m.config.Config.trace then begin
    B.bail bc B.bail_probe;
    step_fast m;
    while
      m.halted = None
      && m.stats.Stats.cycles < deadline
      && (m.probe_on || m.config.Config.trace)
    do
      step_fast m
    done
  end
  else if m.stall_cycles > 0 then begin
    B.bail bc B.bail_stall;
    step_fast m;
    while
      m.halted = None && m.stats.Stats.cycles < deadline
      && m.stall_cycles > 0
    do
      step_fast m
    done
  end
  else if m.fetch_frozen then begin
    B.bail bc B.bail_fetch;
    step_fast m;
    while
      m.halted = None && m.stats.Stats.cycles < deadline && m.fetch_frozen
    do
      step_fast m
    done
  end
  else if m.fetch_metal || metal_in_flight m || entry_in_flight m then begin
    B.bail bc B.bail_metal;
    step_fast m;
    while
      m.halted = None
      && m.stats.Stats.cycles < deadline
      && (m.fetch_metal || metal_in_flight m || entry_in_flight m)
    do
      step_fast m
    done
  end
  else if m.ctrl.(Csr.timer_cmp) <> 0 then begin
    B.bail bc B.bail_timer;
    step_fast m;
    while
      m.halted = None && m.stats.Stats.cycles < deadline
      && m.ctrl.(Csr.timer_cmp) <> 0
    do
      step_fast m
    done
  end
  else if m.ctrl.(Csr.icept_enable) land 1 <> 0 then begin
    B.bail bc B.bail_icept;
    step_fast m;
    while
      m.halted = None && m.stats.Stats.cycles < deadline
      && m.ctrl.(Csr.icept_enable) land 1 <> 0
    do
      step_fast m
    done
  end
  else if
    (let enabled = m.ctrl.(Csr.int_enable) in
     enabled <> 0 && enabled land Metal_hw.Intc.pending m.intc <> 0)
  then begin
    B.bail bc B.bail_irq;
    step_fast m;
    while
      m.halted = None
      && m.stats.Stats.cycles < deadline
      &&
      (let enabled = m.ctrl.(Csr.int_enable) in
       enabled <> 0 && enabled land Metal_hw.Intc.pending m.intc <> 0)
    do
      step_fast m
    done
  end
  else begin
    B.sync_phys bc
      ~version:(Metal_hw.Phys_mem.version (Metal_hw.Bus.memory m.bus));
    B.sync_mram bc ~version:(Metal_hw.Mram.version m.mram);
    let pc = m.fetch_pc in
    if pc land 3 <> 0 then begin
      B.bail bc B.bail_fetch;
      step_fast m
    end
    else begin
      let paging = m.ctrl.(Csr.paging) land 1 = 1 in
      let pa =
        if not paging then pc
        else begin
          (* Stats-free peek: the real (always hitting) lookup is
             charged at each fetch the block serves. *)
          let asid = m.ctrl.(Csr.asid) land 0xFF in
          match Metal_hw.Tlb.lookup m.tlb ~asid ~vpn:(pc lsr 12) with
          | Some e when e.Metal_hw.Tlb.x ->
            (e.Metal_hw.Tlb.ppn lsl 12) lor (pc land 0xFFF)
          | Some _ | None -> -1
        end
      in
      if pa < 0 then begin
        B.bail bc B.bail_tlb;
        step_fast m
      end
      else begin
        let fall0 = bc.B.fall_src in
        if fall0 <> None then bc.B.fall_src <- None;
        if
          match fall0 with
          | Some src -> try_fall_engage m src ~pc ~paging ~deadline
          | None -> false
        then ()
        else begin
        let lookup_or_build () =
          match B.find bc ~pa with
          | Some t -> t
          | None ->
            let nb = build_block m ~pa in
            B.add bc nb;
            nb
        in
        let chain0 = bc.B.chain_src in
        let b =
          match chain0 with
          | Some src ->
            bc.B.chain_src <- None;
            if
              bc.B.chain_src_pc = pc
              && bc.B.chain_src_i >= 0
              && bc.B.chain_src_i < src.B.n
            then begin
              let ss = src.B.slots.(bc.B.chain_src_i) in
              match ss.B.chain with
              | Some t when t.B.pbase = pa && B.usable bc t ->
                bc.B.chain_hits <- bc.B.chain_hits + 1;
                t
              | Some _ | None ->
                let t = lookup_or_build () in
                if t.B.n > 0 then ss.B.chain <- Some t;
                t
            end
            else lookup_or_build ()
          | None -> lookup_or_build ()
        in
        if b.B.n = 0 then begin
          B.bail bc B.bail_unbuildable;
          step_fast m
        end
        else begin
          let vbase = pc in
          let gen0 =
            if paging then Metal_hw.Tlb.generation m.tlb else 0
          in
          let direct =
            (* Post-exit re-engage: a compiled taken exit left the
               terminator of [src] in EX/MEM with ID/EX and IF/ID
               squashed — exactly the state an inline chain
               continuation starts from, so resume compiled with the
               terminator retiring from [mb := src] while [b]'s
               warm-up fetches begin.  The latch is verified against
               the recorded slot: any interleaved generic cycle moves
               EX/MEM on and fails the match. *)
            match chain0 with
            | Some src ->
              bc.B.chain_src_pc = pc
              && bc.B.chain_src_i >= 0
              && bc.B.chain_src_i < src.B.n
              && (not m.if_id.fvalid)
              && (not m.id_ex.dvalid)
              && m.ex_mem.xvalid && not m.ex_mem.xmetal
              && m.ex_mem.xuop == src.B.slots.(bc.B.chain_src_i).B.uop
              && m.ex_mem.xpc
                 = bc.B.chain_src_vbase + (bc.B.chain_src_i lsl 2)
            | None -> false
          in
          if direct then begin
            let src = Option.get chain0 in
            bc.B.engagements <- bc.B.engagements + 1;
            compiled_cycle m b vbase ~mb:src
              ~mb_vbase:bc.B.chain_src_vbase ~paging ~gen0
              ~asid:(m.ctrl.(Csr.asid) land 0xFF)
              ~perms:m.ctrl.(Csr.pkey_perms)
              ~enabled:m.ctrl.(Csr.int_enable) ~deadline
              ~cyc0:m.stats.Stats.cycles ~mem_i:bc.B.chain_src_i
              ~mem_alu:m.ex_mem.alu ~mem_sval:m.ex_mem.sval
              ~ex_i:(-1) ~ex_rv1:0 ~ex_rv2:0 ~id_i:(-1) ~fi:0
              ~wb_rd:m.wb_rd ~wb_val:m.wb_value
          end
          else if (not m.if_id.fvalid) && (not m.id_ex.dvalid)
             && not m.ex_mem.xvalid
          then begin
            (* Clean pipe (program start, post-flush, or post-trap):
               the compiled loop can start from an all-bubble window
               with no feeder cycles at all. *)
            bc.B.engagements <- bc.B.engagements + 1;
            compiled_cycle m b vbase ~mb:b ~mb_vbase:vbase ~paging ~gen0
              ~asid:(m.ctrl.(Csr.asid) land 0xFF)
              ~perms:m.ctrl.(Csr.pkey_perms)
              ~enabled:m.ctrl.(Csr.int_enable) ~deadline
              ~cyc0:m.stats.Stats.cycles ~mem_i:(-1) ~mem_alu:0
              ~mem_sval:0 ~ex_i:(-1) ~ex_rv1:0 ~ex_rv2:0 ~id_i:(-1) ~fi:0
              ~wb_rd:m.wb_rd ~wb_val:m.wb_value
          end
          else begin
          let rec feed tries =
            fed_cycle m b vbase ~paging ~gen0;
            if m.halted <> None then ()
            else if
              (* Control left the block region: no window can form
                 here any more, so stop feeding and let the next
                 engage key on wherever fetch went. *)
              m.fetch_pc - vbase < 0
              || m.fetch_pc - vbase > b.B.n lsl 2
            then B.bail bc B.bail_window
            else begin
              let w = find_window m b vbase in
              if w <> W_none then begin
                (* Re-prove the engage-time preconditions: a Metal
                   excursion during the feeder could have rearmed the
                   timer or interception, toggled paging, or remapped
                   the code page. *)
                if m.ctrl.(Csr.timer_cmp) = 0
                   && m.ctrl.(Csr.icept_enable) land 1 = 0
                   && (m.ctrl.(Csr.paging) land 1 = 1) = paging
                   && B.valid bc b
                then begin
                  let genc =
                    if not paging then 0
                    else Metal_hw.Tlb.generation m.tlb
                  in
                  let code_ok =
                    (not paging) || genc = gen0
                    || (match
                          Metal_hw.Tlb.lookup m.tlb
                            ~asid:(m.ctrl.(Csr.asid) land 0xFF)
                            ~vpn:(vbase lsr 12)
                        with
                        | Some e ->
                          e.Metal_hw.Tlb.x
                          && (e.Metal_hw.Tlb.ppn lsl 12)
                             lor (vbase land 0xFFF)
                             = b.B.pbase
                        | None -> false)
                  in
                  if code_ok then begin
                    bc.B.engagements <- bc.B.engagements + 1;
                    let mem_i, ex_i, id_i =
                      match w with
                      | W_full k -> (k, k + 1, k + 2)
                      | W_pair j -> (-1, j, j + 1)
                      | W_front j -> (-1, -1, j)
                      | W_none -> assert false
                    in
                    compiled_cycle m b vbase ~mb:b ~mb_vbase:vbase ~paging
                      ~gen0:genc ~asid:(m.ctrl.(Csr.asid) land 0xFF)
                      ~perms:m.ctrl.(Csr.pkey_perms)
                      ~enabled:m.ctrl.(Csr.int_enable) ~deadline
                      ~cyc0:m.stats.Stats.cycles ~mem_i
                      ~mem_alu:m.ex_mem.alu ~mem_sval:m.ex_mem.sval
                      ~ex_i ~ex_rv1:m.id_ex.rv1
                      ~ex_rv2:m.id_ex.rv2 ~id_i ~fi:(id_i + 1)
                      ~wb_rd:m.wb_rd ~wb_val:m.wb_value
                  end
                  else B.bail bc B.bail_window
                end
                else B.bail bc B.bail_window
              end
              else if tries > 1 && m.stats.Stats.cycles < deadline then
                feed (tries - 1)
              else B.bail bc B.bail_window
            end
          in
          feed block_feed_tries
          end
        end
        end
      end
    end
  end

(* With the predecode cache disabled the machine runs on the original
   option-latch stepper, which doubles as the ablation baseline and as
   an independent correctness oracle (see [Pipeline_slow]). *)
let step m = if m.use_predecode then step_fast m else Pipeline_slow.step m

let run m ~max_cycles =
  let deadline = m.stats.Stats.cycles + max_cycles in
  if m.use_blocks then begin
    let rec loop () =
      match m.halted with
      | Some h -> Some h
      | None ->
        if m.stats.Stats.cycles >= deadline then None
        else begin
          step_block m ~deadline;
          loop ()
        end
    in
    loop ()
  end
  else begin
    let rec loop () =
      match m.halted with
      | Some h -> Some h
      | None ->
        if m.stats.Stats.cycles >= deadline then None
        else begin
          step m;
          loop ()
        end
    in
    loop ()
  end

let timeout_diagnostics m ~budget =
  let tail = Machine.trace_log m ~max:m.config.Config.timeout_trace_tail in
  Printf.sprintf
    "no halt within %d cycles (pc=%s%s)\n--- stats ---\n%s%s"
    budget (Word.to_hex m.fetch_pc)
    (if m.fetch_metal then ", metal mode" else "")
    (Stats.to_string m.stats)
    (match tail with
     | [] ->
       "\n(trace empty; run with Config.trace = true for a \
        per-retirement log)"
     | lines ->
       "\n--- last trace entries ---\n" ^ String.concat "\n" lines)

let run_exn m ~max_cycles =
  match run m ~max_cycles with
  | Some h -> h
  | None ->
    Machine.Halt_out_of_cycles
      { budget = max_cycles; pc = m.fetch_pc; metal = m.fetch_metal }
