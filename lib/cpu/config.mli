(** Machine configuration.

    The configuration points double as the paper's design ablations:
    {!transition} toggles the fast decode-stage replacement of
    [menter]/[mexit] (Section 2.2) against a conventional trap-style
    flush, and {!mram_backing} toggles the MRAM collocated with the
    fetch unit against PALcode-style main-memory-resident routines
    (Section 5). *)

type transition =
  | Fast_replacement
      (** [menter]/[mexit] are replaced during decode; entering costs
          one pipeline slot and returning costs one bubble. *)
  | Trap_flush
      (** Transitions drain the pipeline like an exception. *)

type mram_backing =
  | Dedicated
      (** mroutines fetch from the collocated MRAM at full speed. *)
  | Main_memory of { fetch_penalty : int }
      (** PALcode-style: every Metal-mode fetch stalls the pipeline
          [fetch_penalty] extra cycles. *)

type t = {
  mem_size : int;  (** bytes of physical RAM. *)
  mram_code_words : int;
  mram_data_bytes : int;
  tlb_entries : int;
  transition : transition;
  mram_backing : mram_backing;
  mem_latency : int;
      (** extra stall cycles per data-memory access (0 = single-cycle
          memory). *)
  walker_latency : int;
      (** extra stall cycles per level of a hardware page-table walk. *)
  icache : Metal_hw.Cache.config option;
      (** optional instruction-cache timing model.  Normal-mode
          fetches go through it; Metal-mode fetches bypass it with
          [Dedicated] MRAM ("accesses to the RAM do not alter
          processor caches", Section 2) but are cached — and pollute
          it — with [Main_memory] backing, where a miss costs that
          backing's [fetch_penalty]. *)
  dcache : Metal_hw.Cache.config option;
      (** optional data-cache timing model for cached loads/stores;
          [mld]/[mst] and [physld]/[physst] bypass it. *)
  trace : bool;  (** record a per-retirement trace (bounded). *)
  timeout_trace_tail : int;
      (** how many trace entries [Pipeline.run_exn] appends to its
          fuel-exhaustion message (requires {!trace}; 0 disables). *)
  predecode : bool;
      (** cache decoded instructions by physical fetch address so the
          hot loop skips [Decode.decode] on refetch.  Purely a host-side
          speedup: simulated cycles, stats and architectural state are
          identical with it off (the off position is the ablation /
          correctness oracle). *)
  predecode_entries : int;
      (** direct-mapped predecode-cache size in entries (power of
          two). *)
  blockcache : bool;
      (** cache superblocks of predecoded straight-line code and retire
          them with the compiled block stepper ({!Pipeline.step_block}).
          Requires {!predecode}; it is also ignored (with a bailout
          counted) for configurations whose timing the block stepper
          cannot prove cycle-exact (non-zero [mem_latency], an i-/d-cache
          model).  Like {!predecode}, purely a host-side speedup:
          simulated cycles, stats, probe events and architectural state
          are identical with it off. *)
  ecc : bool;
      (** arm SECDED Hamming(39,32) ECC on the MRAM data segment and
          the m-register file ({!Metal_hw.Ecc}).  Check bits are
          regenerated on every write and verified at the pipeline
          consumption points: a corrected single-bit upset emits an
          [ecc_correct] probe event and continues; an uncorrectable
          double-bit error raises the typed Metal fault
          [Cause.Ecc_uncorrectable].  [mld] pays one extra stall cycle
          for the in-line check ({!Wcost} accounts for it).  Off
          (default) is bit-identical to a machine without the ECC
          layer. *)
}

val default : t
(** 4 MiB RAM, 4096-word MRAM code / 8 KiB data, 32 TLB entries, fast
    transitions, dedicated MRAM, single-cycle memory, walker latency 2,
    no trace. *)

val palcode : t
(** [default] with trap-style transitions and main-memory mroutines
    (fetch penalty 3): the Alpha-PALcode-like configuration the paper
    compares against. *)
