(** The 5-stage pipeline: IF, ID, EX, MEM, WB.

    Classic in-order RISC pipeline with full forwarding, one-cycle
    load-use stalls, JAL resolved at decode (one bubble) and
    branches/JALR resolved at execute (two bubbles).

    Metal specifics (Section 2.2 of the paper):
    - With {!Config.Fast_replacement}, [menter] is consumed at decode:
      its slot becomes the Metal-entry micro-op and fetch is redirected
      to the mroutine in the same cycle (MRAM is collocated with the
      fetch unit), so entry costs zero bubbles.  [mexit] is likewise
      consumed at decode and the return-path instruction is fetched in
      the same cycle, costing one bubble.
    - With {!Config.Trap_flush}, both drain the pipeline like a trap.
    - Exceptions and interrupts are delivered to mroutines, precisely,
      at the MEM stage / at instruction boundaries.
    - Instruction interception (Section 2.3) rewrites the intercepted
      instruction into an entry micro-op at decode, after an operand
      interlock, and publishes the decoded operands in m26–m29. *)

val step : Machine.t -> unit
(** Advance one cycle (no-op when halted). *)

val step_block : Machine.t -> deadline:int -> unit
(** Advance {e at least} one cycle through the superblock stepper: try
    to engage a cached block at the current fetch point and retire
    straight-line runs without per-instruction dispatch, bailing to
    {!step}'s machinery for anything unprovable.  Cycle-exact and
    event-exact with {!step}; may run up to [deadline] (absolute cycle
    count) before returning.  Callers must only rely on the machine
    state at cycle boundaries — {!run} uses this when
    [Machine.use_blocks]. *)

val run : Machine.t -> max_cycles:int -> Machine.halt option
(** Step until the machine halts; [None] when the cycle budget is
    exhausted first. *)

val run_exn : Machine.t -> max_cycles:int -> Machine.halt
(** Like {!run}, but budget exhaustion becomes the typed
    {!Machine.Halt_out_of_cycles} instead of [None] (the machine is
    left resumable, exactly as with {!run}). *)

val timeout_diagnostics : Machine.t -> budget:int -> string
(** Multi-line diagnostic block for a budget-exhausted run: final pc,
    the stats counters, and the last trace entries (when tracing was
    on).  Used by [System.run_program] and [mrun] error reports. *)
