(** Machine state: the 5-stage pipelined RISC processor with the Metal
    extension.

    This module owns the architectural and microarchitectural state;
    {!Pipeline} advances it cycle by cycle. *)

(** Event kinds carried by pipeline micro-ops created at decode. *)
type event_kind =
  | Event_menter of int  (** mroutine entry number *)
  | Event_intercept of Icept.t

(** Micro-ops flowing down the pipe. *)
type uop =
  | U_instr of Instr.t
  | U_event of { kind : event_kind; writes : (Reg.mreg * Word.t) list }
      (** Metal-mode entry slot: commits its Metal-register writes at
          the MEM stage (decode-stage replacement, Section 2.2). *)
  | U_poison of { cause : Cause.t; tval : Word.t }
      (** A fetch or decode fault carried to MEM for precise delivery;
          [tval] is the faulting address or instruction word. *)

(** Pipeline latches are mutable records reused across cycles so the
    steady-state hot loop never allocates; the [*valid] flag replaces
    the former [option] wrapper. *)

type fetched = {
  mutable fvalid : bool;
  mutable fpc : int;
  mutable fmetal : bool;  (** fetched in Metal mode (from MRAM) *)
  mutable word : Word.t;
  mutable ffault : Cause.t option;
  mutable fdec_valid : bool;
      (** the [fdec_*] predecode payload below is meaningful *)
  mutable flegal : bool;
  mutable finstr : Instr.t;
  mutable fuop : uop;
  mutable frs1 : int;
  mutable frs2 : int;
}

type decoded = {
  mutable dvalid : bool;
  mutable dpc : int;
  mutable dmetal : bool;
  mutable duop : uop;
  mutable rs1 : int;
  mutable rs2 : int;  (** source register indices (0 when unused) *)
  mutable rv1 : Word.t;
  mutable rv2 : Word.t;  (** register values read at decode *)
}

type executed = {
  mutable xvalid : bool;
  mutable xpc : int;
  mutable xmetal : bool;
  mutable xuop : uop;
  mutable alu : Word.t;  (** ALU result / effective address / first operand *)
  mutable sval : Word.t;  (** store data / second operand (forwarded) *)
}

val nop_instr : Instr.t
(** Placeholder filling invalid latch slots (never executed). *)

val nop_uop : uop

type halt =
  | Halt_ebreak of { pc : int; metal : bool }
  | Halt_fault of { cause : Cause.t; pc : int; info : Word.t }
      (** Unhandled exception in normal mode. *)
  | Halt_metal_fault of { cause : Cause.t; pc : int; info : Word.t }
      (** Fault inside an mroutine: always fatal (Section 2.1). *)
  | Halt_out_of_cycles of { budget : int; pc : int; metal : bool }
      (** Cycle-budget exhaustion reported by {!Pipeline.run_exn}; the
          machine itself is {e not} halted (a kernel scheduler may
          resume it), so this constructor never appears in
          [Machine.halted]. *)

type t = {
  config : Config.t;
  bus : Metal_hw.Bus.t;
  tlb : Metal_hw.Tlb.t;
  mram : Metal_hw.Mram.t;
  mregs : Metal_hw.Mregs.t;
  intc : Metal_hw.Intc.t;
  icache : Metal_hw.Cache.t option;  (** optional timing model *)
  dcache : Metal_hw.Cache.t option;
  ctrl : Word.t array;  (** control registers; see {!Metal_isa.Csr} *)
  regs : Word.t array;  (** GPR file; x0 kept at zero *)
  stats : Stats.t;
  predecode : uop Predecode.t;
      (** decoded-instruction cache keyed by physical fetch address;
          consulted only when [use_predecode] *)
  use_predecode : bool;  (** [Config.predecode] at creation *)
  blockcache : uop Blockcache.t;
      (** superblock cache driven by {!Pipeline.step_block};
          consulted only when [use_blocks] *)
  use_blocks : bool;
      (** [Config.blockcache] at creation, with the static
          preconditions folded in (predecode on, single-cycle memory,
          no cache models) *)
  mutable fetch_pc : int;
  mutable fetch_metal : bool;
  mutable fetch_frozen : bool;
      (** set after a fetch fault until the next redirect *)
  if_id : fetched;
  id_ex : decoded;
  ex_mem : executed;
  mutable wb_rd : int;  (** MEM/WB latch: destination (0 = bubble) *)
  mutable wb_value : Word.t;
  mutable stall_cycles : int;
  mutable halted : halt option;
  mutable fault_vaddr : Word.t;
  mutable fault_cause : Word.t;
  mutable xlate_cause : Cause.t;
      (** fault cause of the last failed {!Pipeline.translate} *)
  mutable mram_hash : int;
      (** MRAM code-segment checksum recorded by the most recent
          [load_mcode] (-1 when no mcode was loaded); see
          {!mram_integrity_ok} *)
  trace : (int * string) Queue.t;  (** bounded (cycle, message) log *)
  mutable probe_on : bool;
      (** observability probe armed; the disabled hot path pays one
          load-and-branch per would-be event *)
  mutable probe : int -> int -> int -> int -> unit;
      (** [probe cycle kind a b]; event kinds and payload encodings
          are defined by [Metal_trace.Event] *)
}

val create : ?config:Config.t -> unit -> t

(** {2 Architectural accessors} *)

val get_reg : t -> Reg.t -> Word.t
val set_reg : t -> Reg.t -> Word.t -> unit

val get_mreg : t -> Reg.mreg -> Word.t
(** Corrected view when ECC is armed (see {!Metal_hw.Mregs.read}). *)

val get_mreg_checked : t -> Reg.mreg -> Word.t * Metal_hw.Ecc.result
(** Corrected view plus the SECDED decode status; [Ecc.Clean] when ECC
    is off.  The pipeline consumption points use this to emit
    [ecc_correct] events and raise [Cause.Ecc_uncorrectable]. *)

val set_mreg : t -> Reg.mreg -> Word.t -> unit

val ctrl_read : t -> Csr.t -> Word.t
(** Control-register read with live counters ([cycle], [instret],
    [int_pending], fault registers). *)

val ctrl_write : t -> Csr.t -> Word.t -> unit
(** Control-register write; read-only registers are ignored; writing
    [int_pending] clears the written bits. *)

val set_pc : t -> int -> unit
(** Reset the fetch unit to a normal-mode address and clear the
    pipeline latches. *)

val read_word : t -> int -> Word.t
(** Physical word read (tests and harnesses). *)

val write_word : t -> int -> Word.t -> unit

val load_image : t -> Metal_asm.Image.t -> (unit, string) result
(** Load an assembled image into physical memory. *)

val load_mcode : t -> Metal_asm.Image.t -> (unit, string) result
(** Load an assembled mcode image into MRAM and register its
    [.mentry] table.  On success the code-segment checksum is recorded
    for {!mram_integrity_ok}. *)

val mram_integrity_ok : t -> bool
(** Re-check the MRAM code segment against the checksum recorded at
    the last [load_mcode] (the dynamic, mverify-style integrity check;
    vacuously true when no mcode was ever loaded).  [mst] writes touch
    only the data segment, so a mismatch means the installed mroutine
    {e code} changed underneath the machine — the fault-injection
    harness treats a mismatch on Metal-mode entry as [Detected]. *)

val install_handler : t -> Cause.t -> entry:int -> unit
(** Point the exception handler control register at an mroutine. *)

val install_interrupt_handler : t -> irq:int -> entry:int -> unit

val halted_to_string : halt -> string

val trace_log : t -> max:int -> string list
(** The most recent [max] trace lines (oldest first). *)

val add_trace : t -> cycle:int -> string -> unit
(** Append to the bounded trace (used by the pipeline). *)

(** {2 Observability probe} *)

val set_probe : t -> (int -> int -> int -> int -> unit) -> unit
(** Arm the event probe: subsequent pipeline events call
    [f cycle kind a b].  Typically [Metal_trace.Collector.probe]. *)

val clear_probe : t -> unit
(** Disarm the probe and restore the no-op closure. *)

val emit : t -> int -> int -> int -> unit
(** [emit t kind a b] forwards to the probe (with the current cycle)
    when armed; a single load-and-branch otherwise.  Used by both
    steppers. *)

val cache_counters : t -> (string * int) list
(** Predecode and block-cache counters ([predecode_]/[blockcache_]
    prefixed), in a stable order, for the metrics JSON "caches" object
    and the [mrun] end-of-run summary.  Host-side simulator telemetry:
    deliberately not part of {!Stats} or the event-derived
    [Metrics.t], which stay bit-identical across steppers. *)
