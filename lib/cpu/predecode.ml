type 'u entry = {
  mutable tag : int;
  mutable word : Word.t;
  mutable instr : Instr.t;
  mutable uop : 'u;
  mutable rs1 : int;
  mutable rs2 : int;
  mutable legal : bool;
}

type 'u t = {
  entries : 'u entry array;
  mask : int;
  mutable phys_synced : int;
  mutable mram_synced : int;
  mutable hits : int;
  mutable fills : int;
  mutable flushes : int;
}

let is_pow2 v = v > 0 && v land (v - 1) = 0

let create ~entries ~instr ~uop =
  if not (is_pow2 entries) then
    invalid_arg "Predecode.create: entries must be a power of two";
  {
    entries =
      Array.init entries (fun _ ->
          { tag = -1; word = 0; instr; uop; rs1 = 0; rs2 = 0; legal = false });
    mask = entries - 1;
    phys_synced = 0;
    mram_synced = 0;
    hits = 0;
    fills = 0;
    flushes = 0;
  }

let slot t ~addr = t.entries.((addr lsr 2) land t.mask)

let flush t =
  Array.iter (fun e -> e.tag <- -1) t.entries;
  t.flushes <- t.flushes + 1

(* A write we were not told about (DMA, a host poke, an image load)
   may have rewritten any cached word: drop everything and trust the
   new version.  Pipeline stores are reported through [note_phys_store]
   and keep the cache warm. *)
let sync_phys t ~version =
  if t.phys_synced <> version then begin
    flush t;
    t.phys_synced <- version
  end

let sync_mram t ~version =
  if t.mram_synced <> version then begin
    flush t;
    t.mram_synced <- version
  end

(* A pipeline store to physical memory: the only cached decode it can
   invalidate is the direct-mapped slot of the word it wrote (stores
   are alignment-checked, so a store never straddles words). *)
let note_phys_store t ~addr =
  (slot t ~addr).tag <- -1;
  t.phys_synced <- t.phys_synced + 1

(* [mst] writes the MRAM data segment, which is never fetched, so no
   entry can go stale — only the version bookkeeping must keep up. *)
let note_mram_store t = t.mram_synced <- t.mram_synced + 1
