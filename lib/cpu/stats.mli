(** Execution statistics accumulated by the pipeline. *)

type t = {
  mutable cycles : int;
  mutable instructions : int;  (** retired instructions (incl. events) *)
  mutable metal_instructions : int;  (** retired while in Metal mode *)
  mutable bubbles : int;  (** empty slots retiring from MEM *)
  mutable load_use_stalls : int;
  mutable interlock_stalls : int;  (** mexit/intercept operand interlocks *)
  mutable flushes : int;  (** pipeline flushes (branches, traps) *)
  mutable menters : int;
  mutable mexits : int;
  mutable exceptions : int;
  mutable interrupts : int;
  mutable intercepts : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable hw_walks : int;
  mutable mem_stall_cycles : int;  (** cycles lost to memory latency *)
  mutable fetch_stall_cycles : int;  (** cycles lost to Metal-code fetch *)
  mutable walker_stall_cycles : int;
      (** cycles lost to hardware page-table walker PTE reads *)
}

(** {2 Accounting invariant}

    Both steppers maintain, at every cycle boundary:

    {v cycles = instructions + bubbles + exceptions + interrupts
            + (fetch_stall_cycles + mem_stall_cycles
               + walker_stall_cycles - pending_stall) v}

    where [pending_stall] is the machine's not-yet-consumed
    [stall_cycles] counter.  Each simulated cycle is counted in exactly
    one bucket: a stall consumption, a delivered interrupt, a MEM-stage
    exception, a retired instruction, or a bubble — and each charged
    stall cycle is attributed to exactly one of the three stall
    categories (so no cycle is double-counted across categories).
    [load_use_stalls] and [interlock_stalls] count decode-stage stall
    {e events}, not cycles; the cycles they cost surface as [bubbles]
    when the empty slot reaches MEM.  The differential suite encodes
    this identity as a QCheck property over the seeded corpus. *)

val accounted_cycles : t -> pending_stall:int -> int
(** Right-hand side of the invariant above. *)

val create : unit -> t

val reset : t -> unit

val copy : t -> t

val diff : after:t -> before:t -> t
(** Field-wise subtraction: the cost of a measured region. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val to_json : t -> string
(** Flat one-object JSON (for [--metrics-out] and fleet exports). *)
