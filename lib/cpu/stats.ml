type t = {
  mutable cycles : int;
  mutable instructions : int;
  mutable metal_instructions : int;
  mutable bubbles : int;
  mutable load_use_stalls : int;
  mutable interlock_stalls : int;
  mutable flushes : int;
  mutable menters : int;
  mutable mexits : int;
  mutable exceptions : int;
  mutable interrupts : int;
  mutable intercepts : int;
  mutable tlb_hits : int;
  mutable tlb_misses : int;
  mutable hw_walks : int;
  mutable mem_stall_cycles : int;
  mutable fetch_stall_cycles : int;
  mutable walker_stall_cycles : int;
}

let create () =
  {
    cycles = 0;
    instructions = 0;
    metal_instructions = 0;
    bubbles = 0;
    load_use_stalls = 0;
    interlock_stalls = 0;
    flushes = 0;
    menters = 0;
    mexits = 0;
    exceptions = 0;
    interrupts = 0;
    intercepts = 0;
    tlb_hits = 0;
    tlb_misses = 0;
    hw_walks = 0;
    mem_stall_cycles = 0;
    fetch_stall_cycles = 0;
    walker_stall_cycles = 0;
  }

let reset t =
  t.cycles <- 0;
  t.instructions <- 0;
  t.metal_instructions <- 0;
  t.bubbles <- 0;
  t.load_use_stalls <- 0;
  t.interlock_stalls <- 0;
  t.flushes <- 0;
  t.menters <- 0;
  t.mexits <- 0;
  t.exceptions <- 0;
  t.interrupts <- 0;
  t.intercepts <- 0;
  t.tlb_hits <- 0;
  t.tlb_misses <- 0;
  t.hw_walks <- 0;
  t.mem_stall_cycles <- 0;
  t.fetch_stall_cycles <- 0;
  t.walker_stall_cycles <- 0

let copy t = { t with cycles = t.cycles }

let diff ~after ~before =
  {
    cycles = after.cycles - before.cycles;
    instructions = after.instructions - before.instructions;
    metal_instructions = after.metal_instructions - before.metal_instructions;
    bubbles = after.bubbles - before.bubbles;
    load_use_stalls = after.load_use_stalls - before.load_use_stalls;
    interlock_stalls = after.interlock_stalls - before.interlock_stalls;
    flushes = after.flushes - before.flushes;
    menters = after.menters - before.menters;
    mexits = after.mexits - before.mexits;
    exceptions = after.exceptions - before.exceptions;
    interrupts = after.interrupts - before.interrupts;
    intercepts = after.intercepts - before.intercepts;
    tlb_hits = after.tlb_hits - before.tlb_hits;
    tlb_misses = after.tlb_misses - before.tlb_misses;
    hw_walks = after.hw_walks - before.hw_walks;
    mem_stall_cycles = after.mem_stall_cycles - before.mem_stall_cycles;
    fetch_stall_cycles = after.fetch_stall_cycles - before.fetch_stall_cycles;
    walker_stall_cycles =
      after.walker_stall_cycles - before.walker_stall_cycles;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>cycles=%d instructions=%d (metal=%d) ipc=%.2f@,\
     bubbles=%d load-use=%d interlocks=%d flushes=%d@,\
     menter=%d mexit=%d exceptions=%d interrupts=%d intercepts=%d@,\
     tlb hit/miss=%d/%d hw-walks=%d mem-stalls=%d fetch-stalls=%d \
     walker-stalls=%d@]"
    t.cycles t.instructions t.metal_instructions
    (if t.cycles = 0 then 0.0
     else float_of_int t.instructions /. float_of_int t.cycles)
    t.bubbles t.load_use_stalls t.interlock_stalls t.flushes t.menters
    t.mexits t.exceptions t.interrupts t.intercepts t.tlb_hits t.tlb_misses
    t.hw_walks t.mem_stall_cycles t.fetch_stall_cycles
    t.walker_stall_cycles

let to_string t = Format.asprintf "%a" pp t

(* Right-hand side of the cycle-accounting identity documented in the
   interface: every cycle is a retirement, a bubble, a MEM-stage
   exception, a delivered interrupt, or a consumed (attributed) stall
   cycle. *)
let accounted_cycles t ~pending_stall =
  t.instructions + t.bubbles + t.exceptions + t.interrupts
  + (t.fetch_stall_cycles + t.mem_stall_cycles + t.walker_stall_cycles
     - pending_stall)

let to_json t =
  Printf.sprintf
    "{\"cycles\": %d, \"instructions\": %d, \"metal_instructions\": %d, \
     \"bubbles\": %d, \"load_use_stalls\": %d, \"interlock_stalls\": %d, \
     \"flushes\": %d, \"menters\": %d, \"mexits\": %d, \
     \"exceptions\": %d, \"interrupts\": %d, \"intercepts\": %d, \
     \"tlb_hits\": %d, \"tlb_misses\": %d, \"hw_walks\": %d, \
     \"mem_stall_cycles\": %d, \"fetch_stall_cycles\": %d, \
     \"walker_stall_cycles\": %d}"
    t.cycles t.instructions t.metal_instructions t.bubbles t.load_use_stalls
    t.interlock_stalls t.flushes t.menters t.mexits t.exceptions t.interrupts
    t.intercepts t.tlb_hits t.tlb_misses t.hw_walks t.mem_stall_cycles
    t.fetch_stall_cycles t.walker_stall_cycles
