(** Basic-block translation cache.

    Caches superblocks — runs of predecoded uops extending through
    not-taken conditional branches and ending at an unconditional
    control transfer (jal/jalr) or metal-only instruction — keyed by
    the physical address of their first instruction.  [Pipeline] builds
    the blocks and executes them with its compiled block stepper; this
    module owns storage, invalidation, chaining bookkeeping, and the
    counters surfaced by the metrics exporter and [bench simperf].

    Invalidation reuses the predecode cache's discipline: version
    counters against [Phys_mem.version] / [Mram.version] flush
    everything on unannounced drift, while a pipeline store announced
    through [note_phys_store] invalidates only the blocks on the
    written 4KiB page (and pre-bumps the phys counter exactly like
    [Predecode.note_phys_store]). *)

(** Slot classes ([slot.cls]); the last three terminate a block. *)

val cls_op : int
val cls_op_imm : int
val cls_lui : int
val cls_auipc : int
val cls_load : int
val cls_store : int
val cls_fence : int
val cls_branch : int
val cls_jal : int
val cls_jalr : int

type 'u slot = {
  cls : int;
  rd : int;
  rs1 : int;
  rs2 : int;
  imm : Word.t;
  op : Instr.alu_op;
  cond : Instr.branch_cond;
  width : Instr.mem_width;
  unsigned : bool;
  amask : int;
  wbytes : int;
  at_mem : bool;
  conflict_prev : bool;
  word : Word.t;
  instr : Instr.t;
  uop : 'u;
  mutable chain : 'u block option;
      (** taken successor of this slot, patched once translated *)
}

and 'u block = {
  pbase : int;
  page : int;
  n : int;  (** 0 marks an address where no block can start *)
  slots : 'u slot array;
  term : int;
  built_page_gen : int;
  built_epoch : int;
  mutable dtlb_vpn : int;
  mutable dtlb_base : int;
  mutable dtlb_load_ok : bool;
  mutable dtlb_store_ok : bool;
  mutable dtlb_gen : int;
  mutable dtlb_asid : int;
  mutable dtlb_perms : Word.t;
}

(** Bailout / exit causes (indices into the [bail] table). *)

val bail_probe : int
val bail_stall : int
val bail_fetch : int
val bail_metal : int
val bail_timer : int
val bail_icept : int
val bail_irq : int
val bail_tlb : int
val bail_unbuildable : int
val bail_window : int
val bail_version : int
val bail_deadline : int
val bail_mem : int
val exit_jump : int
val exit_fallthrough : int
val exit_taken : int
val bail_count : int
val bail_name : int -> string

type 'u t = {
  tbl : (int, 'u block) Hashtbl.t;
  page_gens : int array;
  mutable epoch : int;
  mutable phys_synced : int;
  mutable mram_synced : int;
  mutable chain_src : 'u block option;
  mutable chain_src_pc : int;
  mutable chain_src_vbase : int;
  mutable chain_src_i : int;
  mutable fall_src : 'u block option;
  mutable fall_vbase : int;
  mutable blocks_built : int;
  mutable lookups : int;
  mutable lookup_hits : int;
  mutable chain_hits : int;
  mutable fall_hits : int;
  mutable flushes : int;
  mutable invalidations : int;
  mutable engagements : int;
  mutable block_cycles : int;
  bail : int array;
}

val create : pages:int -> 'u t
(** [create ~pages] sizes the per-page generation table for a physical
    memory of [pages] 4KiB pages. *)

val page_gen : 'u t -> page:int -> int
(** Current generation of one 4KiB physical page (0 out of range). *)

val valid : 'u t -> 'u block -> bool
(** No flush and no store on the block's page since it was built. *)

val usable : 'u t -> 'u block -> bool
(** [valid] and non-empty. *)

val flush : 'u t -> unit
val sync_phys : 'u t -> version:int -> unit
val sync_mram : 'u t -> version:int -> unit
val note_phys_store : 'u t -> addr:int -> unit

val find : 'u t -> pa:int -> 'u block option
(** Validity-checked lookup; counts [lookups] / [lookup_hits].
    Returns empty (n = 0) blocks so callers can skip rebuilding
    starts known to be unbuildable. *)

val add : 'u t -> 'u block -> unit
val bail : 'u t -> int -> unit

val stats_fields : 'u t -> (string * int) list
(** Counter names and values for JSON export, in a stable order. *)
