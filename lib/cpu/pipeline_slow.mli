(** The original option-latch pipeline stepper, preserved as the slow
    path behind [Config.predecode = false].

    [Pipeline.step] dispatches here when the predecode cache is
    disabled.  The stepper is cycle-exact with the fast path — the
    differential suite requires identical registers, memory and
    [Stats] under both — but allocates per cycle and decodes at ID
    every time, so it doubles as the ablation baseline the simperf
    benchmark measures the fast path against. *)

val step : Machine.t -> unit
(** Advance the machine one cycle (no-op once halted). *)
