(* The original (pre-predecode) pipeline stepper, kept verbatim as the
   slow path behind [Config.predecode = false].

   It serves two purposes:

   - Ablation baseline: the simperf benchmark times this stepper
     against the predecoded, allocation-free hot loop in [Pipeline] to
     report the speedup the rewrite buys.
   - Correctness oracle: it is a second, independently-structured
     implementation of the same micro-architecture.  The differential
     suite runs every workload under both steppers and requires
     bit-identical architectural state and cycle-exact [Stats].

   The stepper allocates freely (option latches, closures, tuple
   returns, per-cycle decode in ID) exactly as the original did; do
   not "optimise" it — its value is fidelity, not speed.  Latch state
   is stored in the shared [Machine.t] latch records so the two
   steppers agree on machine state; each cycle converts them to the
   option form this code was written against. *)

open Machine
module Ev = Metal_trace.Event

(* Seed-style latch values (immutable; reallocated every cycle). *)

type fetched = {
  fpc : int;
  fmetal : bool;
  word : Word.t;
  ffault : Cause.t option;
}

type decoded = {
  dpc : int;
  dmetal : bool;
  duop : uop;
  rs1 : int;
  rs2 : int;
  rv1 : Word.t;
  rv2 : Word.t;
}

type executed = {
  xpc : int;
  xmetal : bool;
  xuop : uop;
  alu : Word.t;
  sval : Word.t;
}

type writeback = { wrd : Reg.t; wvalue : Word.t }

type lat = {
  mutable if_id : fetched option;
  mutable id_ex : decoded option;
  mutable ex_mem : executed option;
  mutable mem_wb : writeback option;
}

let load_latches (m : Machine.t) =
  let fi : Machine.fetched = m.if_id in
  let di : Machine.decoded = m.id_ex in
  let xi : Machine.executed = m.ex_mem in
  {
    if_id =
      (if fi.Machine.fvalid then
         Some
           { fpc = fi.Machine.fpc; fmetal = fi.Machine.fmetal;
             word = fi.Machine.word; ffault = fi.Machine.ffault }
       else None);
    id_ex =
      (if di.Machine.dvalid then
         Some
           { dpc = di.Machine.dpc; dmetal = di.Machine.dmetal;
             duop = di.Machine.duop; rs1 = di.Machine.rs1;
             rs2 = di.Machine.rs2; rv1 = di.Machine.rv1;
             rv2 = di.Machine.rv2 }
       else None);
    ex_mem =
      (if xi.Machine.xvalid then
         Some
           { xpc = xi.Machine.xpc; xmetal = xi.Machine.xmetal;
             xuop = xi.Machine.xuop; alu = xi.Machine.alu;
             sval = xi.Machine.sval }
       else None);
    mem_wb =
      (if m.wb_rd <> 0 then Some { wrd = m.wb_rd; wvalue = m.wb_value }
       else None);
  }

let store_latches (m : Machine.t) l =
  let fi : Machine.fetched = m.if_id in
  let di : Machine.decoded = m.id_ex in
  let xi : Machine.executed = m.ex_mem in
  (match l.if_id with
   | None -> fi.Machine.fvalid <- false
   | Some f ->
     fi.Machine.fvalid <- true;
     fi.Machine.fpc <- f.fpc;
     fi.Machine.fmetal <- f.fmetal;
     fi.Machine.word <- f.word;
     fi.Machine.ffault <- f.ffault;
     (* The fast path memoizes decode results in this latch; anything
        the slow path fetched must be (re-)decoded at ID. *)
     fi.Machine.fdec_valid <- false);
  (match l.id_ex with
   | None -> di.Machine.dvalid <- false
   | Some d ->
     di.Machine.dvalid <- true;
     di.Machine.dpc <- d.dpc;
     di.Machine.dmetal <- d.dmetal;
     di.Machine.duop <- d.duop;
     di.Machine.rs1 <- d.rs1;
     di.Machine.rs2 <- d.rs2;
     di.Machine.rv1 <- d.rv1;
     di.Machine.rv2 <- d.rv2);
  (match l.ex_mem with
   | None -> xi.Machine.xvalid <- false
   | Some x ->
     xi.Machine.xvalid <- true;
     xi.Machine.xpc <- x.xpc;
     xi.Machine.xmetal <- x.xmetal;
     xi.Machine.xuop <- x.xuop;
     xi.Machine.alu <- x.alu;
     xi.Machine.sval <- x.sval);
  match l.mem_wb with
  | None -> m.wb_rd <- 0
  | Some { wrd; wvalue } ->
    m.wb_rd <- wrd;
    m.wb_value <- wvalue

(* ------------------------------------------------------------------ *)
(* Classification helpers                                              *)

(* Instructions whose GPR result is only available after the MEM
   stage; a dependent instruction immediately behind them must stall
   one cycle (load-use interlock). *)
let produces_at_mem = function
  | Instr.Load _ -> true
  | Instr.Metal m ->
    begin match m with
    | Instr.Mld _ | Instr.Rmr _ -> true
    | Instr.Feature
        (Instr.Physld _ | Instr.Tlbprobe _ | Instr.Gprr _ | Instr.Mcsrr _) ->
      true
    | Instr.Menter _ | Instr.Mexit | Instr.Wmr _ | Instr.Mst _
    | Instr.Feature _ -> false
    end
  | Instr.Lui _ | Instr.Auipc _ | Instr.Jal _ | Instr.Jalr _ | Instr.Branch _
  | Instr.Store _ | Instr.Op_imm _ | Instr.Op _ | Instr.Ecall | Instr.Ebreak
  | Instr.Fence -> false

let uop_writes_gpr = function
  | U_instr i -> Instr.writes_gpr i
  | U_event _ | U_poison _ -> None

let uop_produces_at_mem = function
  | U_instr i -> produces_at_mem i
  | U_event _ | U_poison _ -> false

(* Instructions that modify Metal registers at MEM: [mexit] decodes
   against m31, so it interlocks on these. *)
let uop_writes_mreg = function
  | U_instr (Instr.Metal (Instr.Wmr _ | Instr.Menter _)) -> true
  | U_event _ -> true
  | U_instr _ | U_poison _ -> false

(* ------------------------------------------------------------------ *)
(* Address translation                                                 *)

type access = A_fetch | A_load | A_store

let fault_of_access = function
  | A_fetch -> Cause.Page_fault_fetch
  | A_load -> Cause.Page_fault_load
  | A_store -> Cause.Page_fault_store

let hw_walk m ~vpn ~asid =
  let open Metal_hw in
  m.stats.Stats.hw_walks <- m.stats.Stats.hw_walks + 1;
  emit m Ev.hw_walk vpn 0;
  let read_pte pa =
    let lat = m.config.Config.walker_latency in
    m.stall_cycles <- m.stall_cycles + lat;
    if lat > 0 then begin
      m.stats.Stats.walker_stall_cycles <-
        m.stats.Stats.walker_stall_cycles + lat;
      emit m Ev.stall_begin Ev.stall_walker lat
    end;
    match Bus.load m.bus ~width:Instr.Word ~addr:pa with
    | Ok w -> Some w
    | Error _ -> None
  in
  let root = m.ctrl.(Csr.pt_root) in
  let entry_of pte ~vpn ~ppn_extra =
    let r = Word.bit 1 pte = 1
    and w = Word.bit 2 pte = 1
    and x = Word.bit 3 pte = 1
    and global = Word.bit 4 pte = 1
    and pkey = Word.bits ~hi:8 ~lo:5 pte in
    let ppn = Word.bits ~hi:31 ~lo:12 pte lor ppn_extra in
    { Tlb.asid; global; vpn; ppn; r; w; x; pkey }
  in
  match read_pte (root + (4 * (vpn lsr 10))) with
  | None -> None
  | Some pte1 ->
    if Word.bit 0 pte1 = 0 then None
    else if Word.bits ~hi:3 ~lo:1 pte1 <> 0 then
      (* 4 MiB superpage leaf at level 1. *)
      Some (entry_of pte1 ~vpn ~ppn_extra:(vpn land 0x3FF))
    else begin
      let table = pte1 land 0xFFFFF000 in
      match read_pte (table + (4 * (vpn land 0x3FF))) with
      | None -> None
      | Some pte2 ->
        if Word.bit 0 pte2 = 0 || Word.bits ~hi:3 ~lo:1 pte2 = 0 then None
        else Some (entry_of pte2 ~vpn ~ppn_extra:0)
    end

let translate m ~access ~metal vaddr =
  let open Metal_hw in
  if m.ctrl.(Csr.paging) land 1 = 0 then Ok vaddr
  else begin
    let asid = m.ctrl.(Csr.asid) land 0xFF in
    let vpn = vaddr lsr Tlb.page_shift in
    let fault cause =
      m.fault_vaddr <- Word.of_int vaddr;
      Error cause
    in
    let check (e : Tlb.entry) =
      let perm_ok =
        match access with A_fetch -> e.x | A_load -> e.r | A_store -> e.w
      in
      if not perm_ok then fault (fault_of_access access)
      else if not metal then begin
        let perms = m.ctrl.(Csr.pkey_perms) in
        let read_disabled = Word.bit (2 * e.pkey) perms = 1 in
        let write_disabled = Word.bit ((2 * e.pkey) + 1) perms = 1 in
        match access with
        | A_load when read_disabled -> fault Cause.Pkey_violation_load
        | A_store when write_disabled -> fault Cause.Pkey_violation_store
        | A_fetch | A_load | A_store ->
          Ok ((e.ppn lsl Tlb.page_shift) lor (vaddr land 0xFFF))
      end
      else Ok ((e.ppn lsl Tlb.page_shift) lor (vaddr land 0xFFF))
    in
    match Tlb.lookup m.tlb ~asid ~vpn with
    | Some e ->
      m.stats.Stats.tlb_hits <- m.stats.Stats.tlb_hits + 1;
      check e
    | None ->
      m.stats.Stats.tlb_misses <- m.stats.Stats.tlb_misses + 1;
      emit m Ev.tlb_miss vaddr
        (match access with A_fetch -> 0 | A_load -> 1 | A_store -> 2);
      if m.ctrl.(Csr.hw_walker) land 1 = 1 then
        match hw_walk m ~vpn ~asid with
        | Some e ->
          Tlb.insert m.tlb e;
          check e
        | None -> fault (fault_of_access access)
      else fault (fault_of_access access)
  end

let charge_cache m cache ~addr ~fetch =
  match cache with
  | None -> ()
  | Some c ->
    if not (Metal_hw.Cache.access c ~addr) then begin
      let p = (Metal_hw.Cache.config c).Metal_hw.Cache.miss_penalty in
      m.stall_cycles <- m.stall_cycles + p;
      if fetch then begin
        m.stats.Stats.fetch_stall_cycles <-
          m.stats.Stats.fetch_stall_cycles + p;
        emit m Ev.stall_begin Ev.stall_fetch_cache p
      end
      else begin
        m.stats.Stats.mem_stall_cycles <- m.stats.Stats.mem_stall_cycles + p;
        emit m Ev.stall_begin Ev.stall_data_cache p
      end
    end

(* ------------------------------------------------------------------ *)
(* Event delivery                                                      *)

let flush_all m l =
  l.if_id <- None;
  l.id_ex <- None;
  l.ex_mem <- None;
  m.stats.Stats.flushes <- m.stats.Stats.flushes + 1;
  emit m Ev.flush Ev.flush_event 0

let redirect m ~target ~metal =
  m.fetch_pc <- Word.of_int target;
  m.fetch_metal <- metal;
  m.fetch_frozen <- false

let deliver_to_mroutine m l ~handler_value ~writes ~reason ~on_missing =
  let entry = handler_value - 1 in
  match Metal_hw.Mram.entry_addr m.mram entry with
  | None ->
    m.halted <- Some on_missing;
    false
  | Some target ->
    List.iter (fun (mr, v) -> set_mreg m mr v) writes;
    flush_all m l;
    l.mem_wb <- None;
    redirect m ~target ~metal:true;
    emit m Ev.mode_enter entry reason;
    true

let raise_exception m l ~cause ~epc ~tval ~metal =
  m.stats.Stats.exceptions <- m.stats.Stats.exceptions + 1;
  m.fault_cause <- Cause.code cause;
  emit m Ev.exn (Cause.code cause) tval;
  if m.config.Config.trace then
    add_trace m ~cycle:m.stats.Stats.cycles
      (Printf.sprintf "exception %s at %s tval=%s" (Cause.to_string cause)
         (Word.to_hex epc) (Word.to_hex tval));
  if metal then begin
    m.halted <- Some (Halt_metal_fault { cause; pc = epc; info = tval });
    l.mem_wb <- None
  end
  else begin
    let handler_value = m.ctrl.(Csr.exc_handler cause) in
    if handler_value = 0 then begin
      m.halted <- Some (Halt_fault { cause; pc = epc; info = tval });
      l.mem_wb <- None
    end
    else begin
      let writes =
        [ (Reg.Mconv.return_address, Word.of_int epc);
          (Reg.Mconv.event_cause, Cause.code cause);
          (Reg.Mconv.event_value, tval) ]
      in
      ignore
        (deliver_to_mroutine m l ~handler_value ~writes
           ~reason:Ev.reason_exception
           ~on_missing:
             (Halt_fault { cause; pc = epc; info = tval }))
    end
  end

(* ------------------------------------------------------------------ *)
(* MEM stage                                                           *)

let width_alignment = function Instr.Byte -> 0 | Instr.Half -> 1 | Instr.Word -> 3

let sign_extend_load ~width ~unsigned v =
  match (width, unsigned) with
  | Instr.Byte, false -> Word.of_int (Word.sign_extend ~width:8 v)
  | Instr.Half, false -> Word.of_int (Word.sign_extend ~width:16 v)
  | (Instr.Byte | Instr.Half), true | Instr.Word, _ -> v

(* Returns [true] when the cycle may continue through EX/ID/IF;
   [false] when MEM flushed the pipe (exception or slow-path
   transition) or halted the machine. *)
let rec do_mem m l ex_mem_old =
  let stats = m.stats in
  match ex_mem_old with
  | None ->
    stats.Stats.bubbles <- stats.Stats.bubbles + 1;
    l.mem_wb <- None;
    true
  | Some x ->
    let retire () =
      stats.Stats.instructions <- stats.Stats.instructions + 1;
      if x.xmetal then
        stats.Stats.metal_instructions <- stats.Stats.metal_instructions + 1;
      emit m Ev.retire x.xpc (if x.xmetal then 1 else 0);
      if m.config.Config.trace then
        add_trace m ~cycle:stats.Stats.cycles
          (Printf.sprintf "retire %s%s %s" (Word.to_hex x.xpc)
             (if x.xmetal then " M" else "  ")
             (match x.xuop with
              | U_instr i -> Instr.to_string i
              | U_event { kind = Event_menter e; _ } ->
                Printf.sprintf "<menter %d>" e
              | U_event { kind = Event_intercept c; _ } ->
                Printf.sprintf "<intercept %s>" (Icept.to_string c)
              | U_poison _ -> "<poison>"))
    in
    let writeback rd value =
      l.mem_wb <- (if rd = 0 then None else Some { wrd = rd; wvalue = value });
      retire ();
      true
    in
    let no_writeback () =
      l.mem_wb <- None;
      retire ();
      true
    in
    let except cause tval =
      l.mem_wb <- None;
      raise_exception m l ~cause ~epc:x.xpc ~tval ~metal:x.xmetal;
      false
    in
    let charge_mem_latency () =
      let lat = m.config.Config.mem_latency in
      if lat > 0 then begin
        m.stall_cycles <- m.stall_cycles + lat;
        stats.Stats.mem_stall_cycles <- stats.Stats.mem_stall_cycles + lat;
        emit m Ev.stall_begin Ev.stall_mem_latency lat
      end
    in
    begin match x.xuop with
    | U_poison { cause; tval } ->
      l.mem_wb <- None;
      raise_exception m l ~cause ~epc:x.xpc ~tval ~metal:x.xmetal;
      false
    | U_event { kind; writes } ->
      List.iter (fun (mr, v) -> set_mreg m mr v) writes;
      begin match kind with
      | Event_menter _ -> stats.Stats.menters <- stats.Stats.menters + 1
      | Event_intercept _ ->
        stats.Stats.intercepts <- stats.Stats.intercepts + 1
      end;
      no_writeback ()
    | U_instr instr ->
      begin match instr with
      | Instr.Load { width; unsigned; rd; _ } ->
        let vaddr = x.alu in
        if vaddr land width_alignment width <> 0 then
          except Cause.Misaligned_load vaddr
        else begin
          match translate m ~access:A_load ~metal:x.xmetal vaddr with
          | Error cause -> except cause vaddr
          | Ok pa ->
            charge_mem_latency ();
            charge_cache m m.dcache ~addr:pa ~fetch:false;
            begin match Metal_hw.Bus.load m.bus ~width ~addr:pa with
            | Error cause -> except cause vaddr
            | Ok v -> writeback rd (sign_extend_load ~width ~unsigned v)
            end
        end
      | Instr.Store { width; _ } ->
        let vaddr = x.alu in
        if vaddr land width_alignment width <> 0 then
          except Cause.Misaligned_store vaddr
        else begin
          match translate m ~access:A_store ~metal:x.xmetal vaddr with
          | Error cause -> except cause vaddr
          | Ok pa ->
            charge_mem_latency ();
            charge_cache m m.dcache ~addr:pa ~fetch:false;
            begin match Metal_hw.Bus.store m.bus ~width ~addr:pa x.sval with
            | Error cause -> except cause vaddr
            | Ok () -> no_writeback ()
            end
        end
      | Instr.Metal mi ->
        do_mem_metal m l x mi ~writeback ~no_writeback ~except
      | Instr.Ecall -> except Cause.Ecall 0
      | Instr.Ebreak ->
        if (not x.xmetal) && m.ctrl.(Csr.exc_handler Cause.Breakpoint) <> 0
        then except Cause.Breakpoint 0
        else begin
          retire ();
          l.mem_wb <- None;
          m.halted <- Some (Halt_ebreak { pc = x.xpc; metal = x.xmetal });
          false
        end
      | Instr.Jal { rd; offset } ->
        let ok = writeback rd x.alu in
        (* Call/return hints for the profiler; must match the fast
           stepper's emission bit for bit (differential suite). *)
        if m.probe_on && (rd = 1 || rd = 5) then
          emit m Ev.call (Word.add x.xpc offset) x.xpc;
        ok
      | Instr.Jalr { rd; rs1; _ } ->
        let ok = writeback rd x.alu in
        if m.probe_on then begin
          if rd = 1 || rd = 5 then emit m Ev.call x.sval x.xpc
          else if rd = 0 && (rs1 = 1 || rs1 = 5) then
            emit m Ev.ret x.sval x.xpc
        end;
        ok
      | Instr.Lui { rd; _ } | Instr.Auipc { rd; _ }
      | Instr.Op_imm { rd; _ } | Instr.Op { rd; _ } ->
        writeback rd x.alu
      | Instr.Branch _ | Instr.Fence -> no_writeback ()
      end
    end

and do_mem_metal m l x mi ~writeback ~no_writeback ~except =
  let stats = m.stats in
  match mi with
  | Instr.Mld { rd; _ } ->
    if m.config.Config.ecc then begin
      match Metal_hw.Mram.load_word_checked m.mram ~addr:x.alu with
      | None -> except Cause.Access_fault x.alu
      | Some (v, st) ->
        (* One-cycle in-line SECDED verify; must charge and emit
           exactly like the fast stepper's [charge_ecc_check]. *)
        m.stall_cycles <- m.stall_cycles + 1;
        stats.Stats.mem_stall_cycles <- stats.Stats.mem_stall_cycles + 1;
        emit m Ev.stall_begin Ev.stall_ecc_check 1;
        (match st with
         | Metal_hw.Ecc.Clean -> writeback rd v
         | Metal_hw.Ecc.Corrected _ ->
           emit m Ev.ecc_correct 0 x.alu;
           writeback rd v
         | Metal_hw.Ecc.Uncorrectable ->
           except Cause.Ecc_uncorrectable x.alu)
    end
    else begin match Metal_hw.Mram.load_word m.mram ~addr:x.alu with
    | Some v -> writeback rd v
    | None -> except Cause.Access_fault x.alu
    end
  | Instr.Mst _ ->
    if Metal_hw.Mram.store_word m.mram ~addr:x.alu x.sval then no_writeback ()
    else except Cause.Access_fault x.alu
  | Instr.Rmr { rd; mr } ->
    if m.config.Config.ecc then begin
      match get_mreg_checked m mr with
      | v, Metal_hw.Ecc.Clean -> writeback rd v
      | v, Metal_hw.Ecc.Corrected _ ->
        emit m Ev.ecc_correct 1 mr;
        writeback rd v
      | _, Metal_hw.Ecc.Uncorrectable -> except Cause.Ecc_uncorrectable mr
    end
    else writeback rd (get_mreg m mr)
  | Instr.Wmr { mr; _ } ->
    set_mreg m mr x.alu;
    no_writeback ()
  | Instr.Menter { entry } ->
    (* Slow-path (trap-style) Metal entry; the fast path consumes
       menter at decode and never reaches here. *)
    begin match Metal_hw.Mram.entry_addr m.mram entry with
    | None -> except Cause.Illegal_instruction 0
    | Some target ->
      set_mreg m Reg.Mconv.return_address (Word.add x.xpc 4);
      stats.Stats.menters <- stats.Stats.menters + 1;
      stats.Stats.instructions <- stats.Stats.instructions + 1;
      emit m Ev.retire x.xpc (if x.xmetal then 1 else 0);
      flush_all m l;
      l.mem_wb <- None;
      redirect m ~target ~metal:true;
      emit m Ev.mode_enter entry Ev.reason_menter_trap;
      false
    end
  | Instr.Mexit when m.config.Config.ecc
                     && (match get_mreg_checked m Reg.Mconv.return_address with
                         | _, Metal_hw.Ecc.Uncorrectable -> true
                         | _ -> false) ->
    except Cause.Ecc_uncorrectable Reg.Mconv.return_address
  | Instr.Mexit ->
    if m.config.Config.ecc then begin
      match get_mreg_checked m Reg.Mconv.return_address with
      | _, Metal_hw.Ecc.Corrected _ ->
        emit m Ev.ecc_correct 1 Reg.Mconv.return_address
      | _ -> ()
    end;
    let target = get_mreg m Reg.Mconv.return_address in
    stats.Stats.mexits <- stats.Stats.mexits + 1;
    stats.Stats.instructions <- stats.Stats.instructions + 1;
    if x.xmetal then
      stats.Stats.metal_instructions <- stats.Stats.metal_instructions + 1;
    emit m Ev.retire x.xpc (if x.xmetal then 1 else 0);
    flush_all m l;
    l.mem_wb <- None;
    redirect m ~target ~metal:false;
    emit m Ev.mode_exit target 0;
    false
  | Instr.Feature f ->
    begin match f with
    | Instr.Physld { rd; _ } ->
      if x.alu land 3 <> 0 then except Cause.Misaligned_load x.alu
      else begin
        let lat = m.config.Config.mem_latency in
        if lat > 0 then begin
          m.stall_cycles <- m.stall_cycles + lat;
          stats.Stats.mem_stall_cycles <- stats.Stats.mem_stall_cycles + lat;
          emit m Ev.stall_begin Ev.stall_mem_latency lat
        end;
        match Metal_hw.Bus.load m.bus ~width:Instr.Word ~addr:x.alu with
        | Ok v -> writeback rd v
        | Error cause -> except cause x.alu
      end
    | Instr.Physst _ ->
      if x.alu land 3 <> 0 then except Cause.Misaligned_store x.alu
      else begin
        let lat = m.config.Config.mem_latency in
        if lat > 0 then begin
          m.stall_cycles <- m.stall_cycles + lat;
          stats.Stats.mem_stall_cycles <- stats.Stats.mem_stall_cycles + lat;
          emit m Ev.stall_begin Ev.stall_mem_latency lat
        end;
        match Metal_hw.Bus.store m.bus ~width:Instr.Word ~addr:x.alu x.sval with
        | Ok () -> no_writeback ()
        | Error cause -> except cause x.alu
      end
    | Instr.Tlbw _ ->
      Metal_hw.Tlb.insert_packed m.tlb ~tag:x.alu ~data:x.sval;
      no_writeback ()
    | Instr.Tlbflush _ ->
      if x.alu = Word.mask then Metal_hw.Tlb.flush_all m.tlb
      else Metal_hw.Tlb.flush_asid m.tlb ~asid:(x.alu land 0xFF);
      no_writeback ()
    | Instr.Tlbprobe { rd; _ } ->
      let asid = m.ctrl.(Csr.asid) land 0xFF in
      writeback rd (Metal_hw.Tlb.probe_packed m.tlb ~asid ~vaddr:x.alu)
    | Instr.Gprr { rd; _ } -> writeback rd m.regs.(x.alu land 31)
    | Instr.Gprw _ ->
      let idx = x.alu land 31 in
      if idx <> 0 then m.regs.(idx) <- x.sval;
      no_writeback ()
    | Instr.Iceptset _ ->
      ctrl_write m (Csr.icept_handler (x.alu land 15)) (x.sval + 1);
      no_writeback ()
    | Instr.Iceptclr _ ->
      ctrl_write m (Csr.icept_handler (x.alu land 15)) 0;
      no_writeback ()
    | Instr.Mcsrr { rd; csr } -> writeback rd (ctrl_read m csr)
    | Instr.Mcsrw { csr; _ } ->
      ctrl_write m csr x.alu;
      no_writeback ()
    end

(* ------------------------------------------------------------------ *)
(* EX stage                                                            *)

let alu_compute op a b =
  match op with
  | Instr.Add -> Word.add a b
  | Instr.Sub -> Word.sub a b
  | Instr.Sll -> Word.shift_left a b
  | Instr.Slt -> if Word.lt_signed a b then 1 else 0
  | Instr.Sltu -> if Word.lt_unsigned a b then 1 else 0
  | Instr.Xor -> Word.logxor a b
  | Instr.Srl -> Word.shift_right_logical a b
  | Instr.Sra -> Word.shift_right_arith a b
  | Instr.Or -> Word.logor a b
  | Instr.And -> Word.logand a b

let branch_taken cond a b =
  match cond with
  | Instr.Beq -> a = b
  | Instr.Bne -> a <> b
  | Instr.Blt -> Word.lt_signed a b
  | Instr.Bge -> Word.ge_signed a b
  | Instr.Bltu -> Word.lt_unsigned a b
  | Instr.Bgeu -> Word.ge_unsigned a b

(* Process the EX stage.  Sets [l.ex_mem]; returns a taken-branch /
   jalr redirect: [(target, metal_mode_of_branch)]. *)
let do_ex l id_ex_old ~ex_mem_prev ~mem_wb_prev =
  match id_ex_old with
  | None ->
    l.ex_mem <- None;
    None
  | Some d ->
    (* Forward from the EX/MEM and MEM/WB latches of the previous
       cycle.  A load-like producer in EX/MEM would be a missed
       load-use stall; the decode-stage interlock prevents it. *)
    let forward idx v =
      if idx = 0 then v
      else
        let from_ex_mem =
          match ex_mem_prev with
          | Some x when not (uop_produces_at_mem x.xuop) ->
            begin match uop_writes_gpr x.xuop with
            | Some rd when rd = idx -> Some x.alu
            | Some _ | None -> None
            end
          | Some _ | None -> None
        in
        match from_ex_mem with
        | Some value -> value
        | None ->
          begin match mem_wb_prev with
          | Some { wrd; wvalue } when wrd = idx -> wvalue
          | Some _ | None -> v
          end
    in
    let rv1 = forward d.rs1 d.rv1 in
    let rv2 = forward d.rs2 d.rv2 in
    let finish ?(alu = 0) ?(sval = 0) ?redirect () =
      l.ex_mem <-
        Some { xpc = d.dpc; xmetal = d.dmetal; xuop = d.duop; alu; sval };
      redirect
    in
    begin match d.duop with
    | U_poison _ | U_event _ -> finish ()
    | U_instr instr ->
      begin match instr with
      | Instr.Lui { imm; _ } -> finish ~alu:(Word.of_int (imm lsl 12)) ()
      | Instr.Auipc { imm; _ } ->
        finish ~alu:(Word.add d.dpc (Word.of_int (imm lsl 12))) ()
      | Instr.Jal _ -> finish ~alu:(Word.add d.dpc 4) ()
      | Instr.Jalr { offset; _ } ->
        let target = Word.logand (Word.add rv1 offset) (Word.lognot 1) in
        (* Mirror the fast path: stash the target in sval so retire
           can emit the call/ret hint. *)
        finish ~alu:(Word.add d.dpc 4) ~sval:target
          ~redirect:(target, d.dmetal) ()
      | Instr.Branch { cond; offset; _ } ->
        if branch_taken cond rv1 rv2 then
          finish ~redirect:(Word.add d.dpc offset, d.dmetal) ()
        else finish ()
      | Instr.Load { offset; _ } -> finish ~alu:(Word.add rv1 offset) ()
      | Instr.Store { offset; _ } ->
        finish ~alu:(Word.add rv1 offset) ~sval:rv2 ()
      | Instr.Op_imm { op; imm; _ } ->
        finish ~alu:(alu_compute op rv1 (Word.of_int imm)) ()
      | Instr.Op { op; _ } -> finish ~alu:(alu_compute op rv1 rv2) ()
      | Instr.Ecall | Instr.Ebreak | Instr.Fence -> finish ()
      | Instr.Metal mi ->
        begin match mi with
        | Instr.Mld { offset; _ } -> finish ~alu:(Word.add rv1 offset) ()
        | Instr.Mst { offset; _ } ->
          finish ~alu:(Word.add rv1 offset) ~sval:rv2 ()
        | Instr.Menter _ | Instr.Mexit | Instr.Rmr _ -> finish ()
        | Instr.Wmr _ -> finish ~alu:rv1 ()
        | Instr.Feature f ->
          begin match f with
          | Instr.Physld { offset; _ } -> finish ~alu:(Word.add rv1 offset) ()
          | Instr.Physst { offset; _ } ->
            finish ~alu:(Word.add rv1 offset) ~sval:rv2 ()
          | Instr.Tlbw _ | Instr.Gprw _ | Instr.Iceptset _ ->
            finish ~alu:rv1 ~sval:rv2 ()
          | Instr.Tlbflush _ | Instr.Tlbprobe _ | Instr.Gprr _
          | Instr.Iceptclr _ | Instr.Mcsrw _ -> finish ~alu:rv1 ()
          | Instr.Mcsrr _ -> finish ()
          end
        end
      end
    end

(* ------------------------------------------------------------------ *)
(* ID stage                                                            *)

type id_redirect = { target : int; to_metal : bool; combinational : bool }

type id_outcome =
  | Id_stall
  | Id_pass of decoded option * id_redirect option

(* Interception is considered only for normal-mode instructions with a
   registered handler and the global enable bit set. *)
let intercept_handler m instr =
  if m.ctrl.(Csr.icept_enable) land 1 = 0 then None
  else
    match Icept.classify instr with
    | None -> None
    | Some cls ->
      let v = m.ctrl.(Csr.icept_handler (Icept.code cls)) in
      if v = 0 then None else Some (cls, v)

(* Source registers by encoding position (x0 allowed): forwarding and
   the interception interlock need rs1/rs2 positionally. *)
let sources_of instr =
  match instr with
  | Instr.Jalr { rs1; _ } | Instr.Load { rs1; _ } | Instr.Op_imm { rs1; _ } ->
    (rs1, 0)
  | Instr.Branch { rs1; rs2; _ } | Instr.Op { rs1; rs2; _ }
  | Instr.Store { rs1; rs2; _ } -> (rs1, rs2)
  | Instr.Metal m ->
    begin match m with
    | Instr.Wmr { rs1; _ } | Instr.Mld { rs1; _ } -> (rs1, 0)
    | Instr.Mst { rs1; rs2; _ } -> (rs1, rs2)
    | Instr.Menter _ | Instr.Mexit | Instr.Rmr _ -> (0, 0)
    | Instr.Feature f ->
      begin match f with
      | Instr.Physld { rs1; _ } | Instr.Tlbflush { rs1 }
      | Instr.Tlbprobe { rs1; _ } | Instr.Gprr { rs1; _ }
      | Instr.Iceptclr { rs1 } | Instr.Mcsrw { rs1; _ } -> (rs1, 0)
      | Instr.Physst { rs1; rs2; _ } | Instr.Tlbw { rs1; rs2 }
      | Instr.Gprw { rs1; rs2 } | Instr.Iceptset { rs1; rs2 } -> (rs1, rs2)
      | Instr.Mcsrr _ -> (0, 0)
      end
    end
  | Instr.Lui _ | Instr.Auipc _ | Instr.Jal _ | Instr.Ecall | Instr.Ebreak
  | Instr.Fence -> (0, 0)

(* Does any in-flight producer target one of [srcs]?  Used by the
   interception interlock, which needs operand values at decode. *)
let inflight_writes_gpr ~id_ex_old ~ex_mem_old srcs =
  let hits = function
    | None -> false
    | Some rd -> rd <> 0 && List.mem rd srcs
  in
  (match id_ex_old with
   | Some d -> hits (uop_writes_gpr d.duop)
   | None -> false)
  || match ex_mem_old with
  | Some x -> hits (uop_writes_gpr x.xuop)
  | None -> false

let inflight_writes_mreg ~id_ex_old ~ex_mem_old =
  (match id_ex_old with Some d -> uop_writes_mreg d.duop | None -> false)
  || match ex_mem_old with Some x -> uop_writes_mreg x.xuop | None -> false

let do_id m if_id_old ~id_ex_old ~ex_mem_old =
  match if_id_old with
  | None -> Id_pass (None, None)
  | Some f ->
    let poison cause tval =
      Id_pass
        (Some
           { dpc = f.fpc; dmetal = f.fmetal;
             duop = U_poison { cause; tval }; rs1 = 0; rs2 = 0; rv1 = 0;
             rv2 = 0 },
         None)
    in
    begin match f.ffault with
    | Some cause -> poison cause f.fpc
    | None ->
      begin match Decode.decode f.word with
      | Error _ -> poison Cause.Illegal_instruction f.word
      | Ok instr ->
        (* Legality: Metal instructions other than menter require Metal
           mode; menter requires normal mode (no hardware nesting). *)
        let illegal =
          match instr with
          | Instr.Metal (Instr.Menter _) -> f.fmetal
          | Instr.Metal _ -> not f.fmetal
          | _ -> false
        in
        if illegal then poison Cause.Illegal_instruction f.word
        else begin
          let rs1, rs2 = sources_of instr in
          let rv1 = m.regs.(rs1) and rv2 = m.regs.(rs2) in
          let dec duop =
            { dpc = f.fpc; dmetal = f.fmetal; duop; rs1; rs2; rv1; rv2 }
          in
          (* Load-use interlock against the instruction now in EX. *)
          let load_use =
            match id_ex_old with
            | Some d when uop_produces_at_mem d.duop ->
              begin match uop_writes_gpr d.duop with
              | Some rd -> rd = rs1 || rd = rs2
              | None -> false
              end
            | Some _ | None -> false
          in
          if load_use then begin
            m.stats.Stats.load_use_stalls <-
              m.stats.Stats.load_use_stalls + 1;
            Id_stall
          end
          else begin
            match intercept_handler m instr with
            | Some (cls, handler_value) when not f.fmetal ->
              (* Interception needs fresh operand values at decode. *)
              if inflight_writes_gpr ~id_ex_old ~ex_mem_old [ rs1; rs2 ]
              then begin
                m.stats.Stats.interlock_stalls <-
                  m.stats.Stats.interlock_stalls + 1;
                Id_stall
              end
              else begin
                let entry = handler_value - 1 in
                match Metal_hw.Mram.entry_addr m.mram entry with
                | None ->
                  (* Mis-configured intercept: treat as illegal. *)
                  poison Cause.Illegal_instruction f.word
                | Some target ->
                  let eff_addr, store_val, rd_idx =
                    match instr with
                    | Instr.Load { rs1 = _; offset; rd; _ } ->
                      (Word.add rv1 offset, 0, rd)
                    | Instr.Store { offset; _ } ->
                      (Word.add rv1 offset, rv2, 0)
                    | Instr.Jalr { offset; rd; _ } ->
                      (Word.logand (Word.add rv1 offset) (Word.lognot 1),
                       0, rd)
                    | Instr.Jal { offset; rd } ->
                      (Word.add f.fpc offset, 0, rd)
                    | Instr.Branch { offset; _ } ->
                      (Word.add f.fpc offset, 0, 0)
                    | _ -> (0, 0, 0)
                  in
                  let writes =
                    [ (Reg.Mconv.return_address, Word.of_int f.fpc);
                      (Reg.Mconv.event_cause,
                       Cause.intercept_code (Icept.code cls));
                      (Reg.Mconv.event_value, f.word);
                      (Reg.Mconv.event_addr, eff_addr);
                      (Reg.Mconv.event_store_value, store_val);
                      (Reg.Mconv.event_rd, rd_idx) ]
                  in
                  emit m Ev.intercept (Icept.code cls) f.fpc;
                  emit m Ev.mode_enter entry Ev.reason_intercept;
                  Id_pass
                    (Some
                       (dec
                          (U_event
                             { kind = Event_intercept cls; writes })),
                     Some
                       { target; to_metal = true; combinational = true })
              end
            | Some _ | None ->
              begin match instr with
              | Instr.Jal { offset; _ } ->
                Id_pass
                  (Some (dec (U_instr instr)),
                   Some
                     { target = Word.add f.fpc offset; to_metal = f.fmetal;
                       combinational = false })
              | Instr.Metal (Instr.Menter { entry })
                when m.config.Config.transition = Config.Fast_replacement ->
                begin match Metal_hw.Mram.entry_addr m.mram entry with
                | None -> poison Cause.Illegal_instruction f.word
                | Some target ->
                  let writes =
                    [ (Reg.Mconv.return_address, Word.add f.fpc 4) ]
                  in
                  emit m Ev.mode_enter entry Ev.reason_menter;
                  Id_pass
                    (Some
                       (dec
                          (U_event { kind = Event_menter entry; writes })),
                     Some { target; to_metal = true; combinational = true })
                end
              | Instr.Metal Instr.Mexit
                when m.config.Config.transition = Config.Fast_replacement ->
                if inflight_writes_mreg ~id_ex_old ~ex_mem_old then begin
                  m.stats.Stats.interlock_stalls <-
                    m.stats.Stats.interlock_stalls + 1;
                  Id_stall
                end
                else begin
                  let ecc_dead =
                    m.config.Config.ecc
                    &&
                    match get_mreg_checked m Reg.Mconv.return_address with
                    | _, Metal_hw.Ecc.Uncorrectable -> true
                    | _, Metal_hw.Ecc.Corrected _ ->
                      emit m Ev.ecc_correct 1 Reg.Mconv.return_address;
                      false
                    | _, Metal_hw.Ecc.Clean -> false
                  in
                  if ecc_dead then
                    (* Unrecoverable return address: poison to MEM like
                       the fast stepper. *)
                    poison Cause.Ecc_uncorrectable f.word
                  else begin
                    m.stats.Stats.mexits <- m.stats.Stats.mexits + 1;
                    let target = get_mreg m Reg.Mconv.return_address in
                    emit m Ev.mode_exit target 0;
                    Id_pass
                      (None,
                       Some { target; to_metal = false; combinational = true })
                  end
                end
              | _ -> Id_pass (Some (dec (U_instr instr)), None)
              end
          end
        end
      end
    end

(* ------------------------------------------------------------------ *)
(* IF stage                                                            *)

let do_if m =
  if m.fetch_frozen then None
  else begin
    let pc = m.fetch_pc in
    let fetched ?fault word =
      (match fault with
       | Some _ -> m.fetch_frozen <- true
       | None -> m.fetch_pc <- Word.add pc 4);
      Some { fpc = pc; fmetal = m.fetch_metal; word; ffault = fault }
    in
    if m.fetch_metal then begin
      begin match m.config.Config.mram_backing with
      | Config.Main_memory { fetch_penalty } ->
        (* Main-memory-resident mroutines (the PALcode model) fetch
           through the instruction cache — filling, and polluting, it.
           Dedicated MRAM below bypasses the cache entirely. *)
        begin match m.icache with
        | Some c ->
          if not (Metal_hw.Cache.access c ~addr:(0x4000_0000 lor pc))
          then begin
            m.stall_cycles <- m.stall_cycles + fetch_penalty;
            m.stats.Stats.fetch_stall_cycles <-
              m.stats.Stats.fetch_stall_cycles + fetch_penalty;
            emit m Ev.stall_begin Ev.stall_mram_fetch fetch_penalty
          end
        | None ->
          if fetch_penalty > 0 then begin
            m.stall_cycles <- m.stall_cycles + fetch_penalty;
            m.stats.Stats.fetch_stall_cycles <-
              m.stats.Stats.fetch_stall_cycles + fetch_penalty;
            emit m Ev.stall_begin Ev.stall_mram_fetch fetch_penalty
          end
        end
      | Config.Dedicated -> ()
      end;
      match Metal_hw.Mram.fetch m.mram ~addr:pc with
      | Some word -> fetched word
      | None -> fetched ~fault:Cause.Access_fault 0
    end
    else if pc land 3 <> 0 then fetched ~fault:Cause.Misaligned_fetch 0
    else begin
      match translate m ~access:A_fetch ~metal:false pc with
      | Error cause -> fetched ~fault:cause 0
      | Ok pa ->
        charge_cache m m.icache ~addr:pa ~fetch:true;
        begin match Metal_hw.Bus.load m.bus ~width:Instr.Word ~addr:pa with
        | Ok word -> fetched word
        | Error cause -> fetched ~fault:cause 0
        end
    end
  end

(* ------------------------------------------------------------------ *)
(* Interrupt delivery                                                  *)

let metal_in_flight ~if_id ~id_ex ~ex_mem =
  (match if_id with Some f -> f.fmetal | None -> false)
  || (match id_ex with Some d -> d.dmetal | None -> false)
  || (match ex_mem with Some x -> x.xmetal | None -> false)

(* mroutine-entry micro-ops must not be squashed mid-entry: their
   fetch redirect has already happened, so squashing them would lose
   the Metal-register writes the mroutine is about to read. *)
let entry_in_flight ~id_ex ~ex_mem =
  (match id_ex with Some { duop = U_event _; _ } -> true | _ -> false)
  || match ex_mem with Some { xuop = U_event _; _ } -> true | _ -> false

let try_interrupt m l ~if_id ~id_ex ~ex_mem =
  let enabled = m.ctrl.(Csr.int_enable) in
  if enabled = 0 || m.fetch_metal
     || metal_in_flight ~if_id ~id_ex ~ex_mem
     || entry_in_flight ~id_ex ~ex_mem
  then false
  else
    match Metal_hw.Intc.highest_pending m.intc ~enabled with
    | None -> false
    | Some irq ->
      let handler_value = m.ctrl.(Csr.int_handler irq) in
      if handler_value = 0 then false
      else begin
        let epc =
          match (ex_mem, id_ex, if_id) with
          | Some x, _, _ -> x.xpc
          | None, Some d, _ -> d.dpc
          | None, None, Some f -> f.fpc
          | None, None, None -> m.fetch_pc
        in
        let writes =
          [ (Reg.Mconv.return_address, Word.of_int epc);
            (Reg.Mconv.event_cause, Cause.interrupt_code irq) ]
        in
        m.stats.Stats.interrupts <- m.stats.Stats.interrupts + 1;
        emit m Ev.interrupt irq epc;
        if m.config.Config.trace then
          add_trace m ~cycle:m.stats.Stats.cycles
            (Printf.sprintf "interrupt %d delivered, resume %s" irq
               (Word.to_hex epc));
        deliver_to_mroutine m l ~handler_value ~writes
          ~reason:Ev.reason_interrupt
          ~on_missing:
            (Halt_fault
               { cause = Cause.Access_fault; pc = epc; info = irq })
      end

(* ------------------------------------------------------------------ *)
(* Cycle driver                                                        *)

let timer_tick m =
  let cmp = m.ctrl.(Csr.timer_cmp) in
  if cmp <> 0 && m.stats.Stats.cycles >= cmp then begin
    Metal_hw.Intc.raise_irq m.intc Metal_hw.Intc.timer_irq;
    m.ctrl.(Csr.timer_cmp) <- 0
  end

let step m =
  match m.halted with
  | Some _ -> ()
  | None ->
    m.stats.Stats.cycles <- m.stats.Stats.cycles + 1;
    timer_tick m;
    Metal_hw.Bus.tick m.bus ~cycle:m.stats.Stats.cycles;
    if m.stall_cycles > 0 then begin
      m.stall_cycles <- m.stall_cycles - 1;
      if m.stall_cycles = 0 then emit m Ev.stall_end 0 0
    end
    else begin
      let l = load_latches m in
      let if_id = l.if_id
      and id_ex = l.id_ex
      and ex_mem = l.ex_mem
      and mem_wb = l.mem_wb in
      (* WB: regfile writes happen in the first half of the cycle so
         decode-stage reads observe them. *)
      begin match mem_wb with
      | Some { wrd; wvalue } -> if wrd <> 0 then m.regs.(wrd) <- wvalue
      | None -> ()
      end;
      l.mem_wb <- None;
      (if try_interrupt m l ~if_id ~id_ex ~ex_mem then ()
       else if not (do_mem m l ex_mem) then ()
       else begin
         match do_ex l id_ex ~ex_mem_prev:ex_mem ~mem_wb_prev:mem_wb with
         | Some (target, to_metal) ->
           l.id_ex <- None;
           l.if_id <- None;
           m.stats.Stats.flushes <- m.stats.Stats.flushes + 1;
           emit m Ev.flush Ev.flush_redirect 0;
           redirect m ~target ~metal:to_metal
         | None ->
           begin match do_id m if_id ~id_ex_old:id_ex ~ex_mem_old:ex_mem with
           | Id_stall -> l.id_ex <- None
           | Id_pass (dec, redir) ->
             l.id_ex <- dec;
             begin match redir with
             | None -> l.if_id <- do_if m
             | Some { target; to_metal; combinational } ->
               redirect m ~target ~metal:to_metal;
               if combinational then l.if_id <- do_if m
               else l.if_id <- None
             end
           end
       end);
      store_latches m l
    end
