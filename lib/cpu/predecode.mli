(** Predecoded-instruction cache: a direct-mapped array of decoded
    instructions keyed by physical fetch address, so the steady-state
    hot loop skips both the bus access and {!Metal_isa.Decode.decode}
    on refetch.

    Purely a host-side accelerator — simulated cycles, statistics and
    architectural state are bit-identical with the cache disabled
    ({!Config.t.predecode}).  Correctness against self-modifying code
    rests on two invalidation mechanisms:

    - every mutation of {!Metal_hw.Phys_mem} / {!Metal_hw.Mram} bumps a
      version counter; [sync_phys]/[sync_mram] flush the whole cache
      when a version moved without the pipeline's knowledge (DMA, host
      pokes, image loads, MRAM reconfiguration);
    - the pipeline reports its own stores via [note_phys_store] /
      [note_mram_store], which invalidate precisely and keep the cache
      warm across store-heavy loops.

    The cache is generic in the micro-op payload ['u] so {!Machine} can
    store prebuilt [uop] values without a dependency cycle. *)

type 'u entry = {
  mutable tag : int;
      (** [(addr lsl 1) lor metal_bit]; [-1] = invalid.  [addr] is a
          physical address for normal-mode fetches and an MRAM code
          offset for Metal-mode fetches. *)
  mutable word : Word.t;  (** the instruction word that was decoded *)
  mutable instr : Instr.t;
  mutable uop : 'u;  (** prebuilt micro-op, shared across refetches *)
  mutable rs1 : int;
  mutable rs2 : int;  (** positional source registers *)
  mutable legal : bool;
      (** decodable and legal in the tag's mode; [false] means the ID
          stage poisons with [Illegal_instruction] without redecoding *)
}

type 'u t = {
  entries : 'u entry array;
  mask : int;
  mutable phys_synced : int;  (** {!Metal_hw.Phys_mem.version} we trust *)
  mutable mram_synced : int;  (** {!Metal_hw.Mram.version} we trust *)
  mutable hits : int;
  mutable fills : int;
  mutable flushes : int;
}

val create : entries:int -> instr:Instr.t -> uop:'u -> 'u t
(** [entries] must be a power of two; [instr]/[uop] seed the invalid
    slots (never decoded from). *)

val slot : 'u t -> addr:int -> 'u entry
(** The direct-mapped slot for a (word-aligned) fetch address. *)

val flush : 'u t -> unit

val sync_phys : 'u t -> version:int -> unit
(** Flush unless the cache is current with physical memory at
    [version].  Call before every normal-mode lookup. *)

val sync_mram : 'u t -> version:int -> unit
(** Flush unless current with the MRAM at [version].  Call before
    every Metal-mode lookup. *)

val note_phys_store : 'u t -> addr:int -> unit
(** The pipeline stored to physical [addr]: invalidate that word's
    slot and absorb the version bump without flushing. *)

val note_mram_store : 'u t -> unit
(** The pipeline executed [mst] (MRAM data segment — unfetchable):
    absorb the version bump. *)
