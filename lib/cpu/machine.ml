type event_kind =
  | Event_menter of int
  | Event_intercept of Icept.t

type uop =
  | U_instr of Instr.t
  | U_event of { kind : event_kind; writes : (Reg.mreg * Word.t) list }
  | U_poison of { cause : Cause.t; tval : Word.t }

(* Latches are mutable records reused across cycles: the hot loop
   never allocates in steady state.  A [*valid] flag plays the role the
   former [option] wrapper did. *)
type fetched = {
  mutable fvalid : bool;
  mutable fpc : int;
  mutable fmetal : bool;
  mutable word : Word.t;
  mutable ffault : Cause.t option;
  mutable fdec_valid : bool;
  mutable flegal : bool;
  mutable finstr : Instr.t;
  mutable fuop : uop;
  mutable frs1 : int;
  mutable frs2 : int;
}

type decoded = {
  mutable dvalid : bool;
  mutable dpc : int;
  mutable dmetal : bool;
  mutable duop : uop;
  mutable rs1 : int;
  mutable rs2 : int;
  mutable rv1 : Word.t;
  mutable rv2 : Word.t;
}

type executed = {
  mutable xvalid : bool;
  mutable xpc : int;
  mutable xmetal : bool;
  mutable xuop : uop;
  mutable alu : Word.t;
  mutable sval : Word.t;
}

let nop_instr = Instr.Fence

let nop_uop = U_instr Instr.Fence

type halt =
  | Halt_ebreak of { pc : int; metal : bool }
  | Halt_fault of { cause : Cause.t; pc : int; info : Word.t }
  | Halt_metal_fault of { cause : Cause.t; pc : int; info : Word.t }
  | Halt_out_of_cycles of { budget : int; pc : int; metal : bool }

type t = {
  config : Config.t;
  bus : Metal_hw.Bus.t;
  tlb : Metal_hw.Tlb.t;
  mram : Metal_hw.Mram.t;
  mregs : Metal_hw.Mregs.t;
  intc : Metal_hw.Intc.t;
  icache : Metal_hw.Cache.t option;
  dcache : Metal_hw.Cache.t option;
  ctrl : Word.t array;
  regs : Word.t array;
  stats : Stats.t;
  predecode : uop Predecode.t;
  use_predecode : bool;
  blockcache : uop Blockcache.t;
  use_blocks : bool;
  mutable fetch_pc : int;
  mutable fetch_metal : bool;
  mutable fetch_frozen : bool;
  if_id : fetched;
  id_ex : decoded;
  ex_mem : executed;
  mutable wb_rd : int;
  mutable wb_value : Word.t;
  mutable stall_cycles : int;
  mutable halted : halt option;
  mutable fault_vaddr : Word.t;
  mutable fault_cause : Word.t;
  mutable xlate_cause : Cause.t;
  mutable mram_hash : int;
  trace : (int * string) Queue.t;
  (* Observability probe.  [probe_on] keeps the disabled hot path to a
     single load-and-branch; the closure receives
     [cycle kind a b] (see {!Metal_trace.Event}). *)
  mutable probe_on : bool;
  mutable probe : int -> int -> int -> int -> unit;
}

let no_probe (_ : int) (_ : int) (_ : int) (_ : int) = ()

let create ?(config = Config.default) () =
  let mem = Metal_hw.Phys_mem.create ~size:config.Config.mem_size in
  {
    config;
    bus = Metal_hw.Bus.create ~mem;
    tlb = Metal_hw.Tlb.create ~entries:config.Config.tlb_entries;
    mram =
      Metal_hw.Mram.create ~ecc:config.Config.ecc
        ~code_words:config.Config.mram_code_words
        ~data_bytes:config.Config.mram_data_bytes ();
    mregs = Metal_hw.Mregs.create ~ecc:config.Config.ecc ();
    intc = Metal_hw.Intc.create ();
    icache = Option.map Metal_hw.Cache.create config.Config.icache;
    dcache = Option.map Metal_hw.Cache.create config.Config.dcache;
    ctrl = Array.make Csr.count 0;
    regs = Array.make 32 0;
    stats = Stats.create ();
    predecode =
      Predecode.create ~entries:config.Config.predecode_entries
        ~instr:nop_instr ~uop:nop_uop;
    use_predecode = config.Config.predecode;
    blockcache =
      Blockcache.create
        ~pages:(max 1 ((config.Config.mem_size + 4095) / 4096));
    use_blocks =
      (* The compiled stepper's timing proofs assume single-cycle
         memory and no cache models; anything else falls back to the
         per-instruction steppers wholesale. *)
      config.Config.blockcache && config.Config.predecode
      && config.Config.mem_latency = 0
      && config.Config.icache = None && config.Config.dcache = None;
    fetch_pc = 0;
    fetch_metal = false;
    fetch_frozen = false;
    if_id =
      {
        fvalid = false;
        fpc = 0;
        fmetal = false;
        word = 0;
        ffault = None;
        fdec_valid = false;
        flegal = false;
        finstr = nop_instr;
        fuop = nop_uop;
        frs1 = 0;
        frs2 = 0;
      };
    id_ex =
      {
        dvalid = false;
        dpc = 0;
        dmetal = false;
        duop = nop_uop;
        rs1 = 0;
        rs2 = 0;
        rv1 = 0;
        rv2 = 0;
      };
    ex_mem =
      { xvalid = false; xpc = 0; xmetal = false; xuop = nop_uop; alu = 0;
        sval = 0 };
    wb_rd = 0;
    wb_value = 0;
    stall_cycles = 0;
    halted = None;
    fault_vaddr = 0;
    fault_cause = 0;
    xlate_cause = Cause.Access_fault;
    mram_hash = -1;
    trace = Queue.create ();
    probe_on = false;
    probe = no_probe;
  }

let set_probe t f =
  t.probe <- f;
  t.probe_on <- true

let clear_probe t =
  t.probe_on <- false;
  t.probe <- no_probe

let[@inline] emit t kind a b =
  if t.probe_on then t.probe t.stats.Stats.cycles kind a b

let get_reg t r =
  assert (Reg.is_valid r);
  t.regs.(r)

let set_reg t r v =
  assert (Reg.is_valid r);
  if r <> 0 then t.regs.(r) <- Word.of_int v

let get_mreg t m = Metal_hw.Mregs.read t.mregs m

let get_mreg_checked t m = Metal_hw.Mregs.read_checked t.mregs m

let set_mreg t m v = Metal_hw.Mregs.write t.mregs m v

let ctrl_read t id =
  if id = Csr.cycle then Word.of_int t.stats.Stats.cycles
  else if id = Csr.instret then Word.of_int t.stats.Stats.instructions
  else if id = Csr.int_pending then Metal_hw.Intc.pending t.intc
  else if id = Csr.fault_vaddr then t.fault_vaddr
  else if id = Csr.fault_cause then t.fault_cause
  else if Csr.is_valid id then t.ctrl.(id)
  else 0

let ctrl_write t id v =
  if Csr.is_read_only id then ()
  else if id = Csr.int_pending then Metal_hw.Intc.clear t.intc ~mask:v
  else if Csr.is_valid id then t.ctrl.(id) <- Word.of_int v

let set_pc t pc =
  t.fetch_pc <- Word.of_int pc;
  t.fetch_metal <- false;
  t.fetch_frozen <- false;
  t.if_id.fvalid <- false;
  t.id_ex.dvalid <- false;
  t.ex_mem.xvalid <- false;
  t.wb_rd <- 0

let read_word t addr = Metal_hw.Phys_mem.read32 (Metal_hw.Bus.memory t.bus) addr

let write_word t addr v =
  Metal_hw.Phys_mem.write32 (Metal_hw.Bus.memory t.bus) addr v

let load_image t img =
  Metal_hw.Phys_mem.load_image (Metal_hw.Bus.memory t.bus) img

let load_mcode t img =
  match Metal_hw.Mram.load_image t.mram img with
  | Ok () ->
    t.mram_hash <- Metal_hw.Mram.checksum_code t.mram;
    Ok ()
  | Error _ as e -> e

let mram_integrity_ok t =
  t.mram_hash < 0 || Metal_hw.Mram.checksum_code t.mram = t.mram_hash

let install_handler t cause ~entry =
  ctrl_write t (Csr.exc_handler cause) (entry + 1)

let install_interrupt_handler t ~irq ~entry =
  ctrl_write t (Csr.int_handler irq) (entry + 1)

let halted_to_string = function
  | Halt_ebreak { pc; metal } ->
    Printf.sprintf "ebreak at %s%s" (Word.to_hex pc)
      (if metal then " (metal mode)" else "")
  | Halt_fault { cause; pc; info } ->
    Printf.sprintf "unhandled %s at %s (info %s)" (Cause.to_string cause)
      (Word.to_hex pc) (Word.to_hex info)
  | Halt_metal_fault { cause; pc; info } ->
    Printf.sprintf "fatal mroutine %s at metal pc %s (info %s)"
      (Cause.to_string cause) (Word.to_hex pc) (Word.to_hex info)
  | Halt_out_of_cycles { budget; pc; metal } ->
    Printf.sprintf "out of cycles: no halt within %d cycles (pc=%s%s)"
      budget (Word.to_hex pc)
      (if metal then ", metal mode" else "")

let trace_capacity = 100_000

let add_trace t ~cycle msg =
  if Queue.length t.trace >= trace_capacity then ignore (Queue.pop t.trace);
  Queue.add (cycle, msg) t.trace

let trace_log t ~max =
  let all = Queue.fold (fun acc (c, m) -> Printf.sprintf "[%7d] %s" c m :: acc) [] t.trace in
  let rec take n = function
    | [] -> []
    | x :: rest -> if n = 0 then [] else x :: take (n - 1) rest
  in
  List.rev (take max all)

(* Host-side cache counters (predecode + block cache), prefixed for
   the metrics "caches" object.  These describe simulator behaviour,
   not architecture, so they live outside Stats and the event-derived
   Metrics record (which must stay bit-identical across steppers). *)
let cache_counters t =
  [ ("predecode_hits", t.predecode.Predecode.hits);
    ("predecode_fills", t.predecode.Predecode.fills);
    ("predecode_flushes", t.predecode.Predecode.flushes) ]
  @ List.map
      (fun (k, v) -> ("blockcache_" ^ k, v))
      (Blockcache.stats_fields t.blockcache)
