(* Basic-block translation cache: phys-addr-keyed superblocks of
   predecoded straight-line code, executed block-at-a-time by
   [Pipeline.step_block].  The cache itself is pure bookkeeping — the
   block builder and the compiled stepper live in [Pipeline], next to
   the stage functions they must stay bit-identical with.  Like
   [Predecode], the type is parameterised over the uop so [Machine]
   can embed one without a dependency cycle.

   Invalidation mirrors the predecode cache's version counters and
   refines them with a per-4KiB-page generation: a pipeline store
   bumps its page's generation (and pre-bumps [phys_synced], exactly
   like [Predecode.note_phys_store]), so a block is valid iff its
   page generation still matches.  Any unannounced memory or MRAM
   version drift (DMA, host pokes, mcode reload) flushes everything,
   exactly like predecode slots. *)

(* Slot classes, in dispatch order.  Body classes first; the three
   control-flow classes terminate a block. *)
let cls_op = 0
let cls_op_imm = 1
let cls_lui = 2
let cls_auipc = 3
let cls_load = 4
let cls_store = 5
let cls_fence = 6
let cls_branch = 7
let cls_jal = 8
let cls_jalr = 9

type 'u slot = {
  cls : int;
  rd : int;
  rs1 : int;
  rs2 : int;
  imm : Word.t;
      (* offset (load/store/branch/jalr), shifted immediate
         (lui/auipc), or operand immediate (op_imm) *)
  op : Instr.alu_op;  (* op/op_imm only; Add elsewhere *)
  cond : Instr.branch_cond;  (* branch only; Beq elsewhere *)
  width : Instr.mem_width;
  unsigned : bool;
  amask : int;  (* load/store alignment mask *)
  wbytes : int;  (* load/store width in bytes *)
  at_mem : bool;  (* result only available after MEM (loads) *)
  conflict_prev : bool;
      (* load-use interlock against the preceding slot *)
  word : Word.t;
  instr : Instr.t;
  uop : 'u;
  (* Taken successor of this slot (branches and jalr), patched in once
     the target translates.  Per slot because a superblock runs
     through not-taken branches, so one block can hold several taken
     edges with distinct targets. *)
  mutable chain : 'u block option;
}

and 'u block = {
  pbase : int;  (* physical address of slot 0 *)
  page : int;  (* pbase lsr 12; a block never crosses a page *)
  n : int;  (* 0 marks an address where no block can start *)
  slots : 'u slot array;
  term : int;  (* cls of the final slot when it is control flow, -1 *)
  built_page_gen : int;
  built_epoch : int;
  (* Per-block inline 1-entry data TLB: caches the last data page this
     block touched.  Validity is re-proved from the snapshot fields
     before every use. *)
  mutable dtlb_vpn : int;
  mutable dtlb_base : int;  (* ppn lsl 12 *)
  mutable dtlb_load_ok : bool;
  mutable dtlb_store_ok : bool;
  mutable dtlb_gen : int;  (* Tlb generation at fill *)
  mutable dtlb_asid : int;
  mutable dtlb_perms : Word.t;  (* pkey_perms at fill *)
}

(* Bailout / exit causes, indexed into [bail].  The first group are
   reasons the stepper fell back to [step_fast] for a cycle; the last
   three are how compiled runs end (kept in the same table so the
   bench can show one breakdown). *)
let bail_probe = 0
let bail_stall = 1
let bail_fetch = 2
let bail_metal = 3
let bail_timer = 4
let bail_icept = 5
let bail_irq = 6
let bail_tlb = 7
let bail_unbuildable = 8
let bail_window = 9
let bail_version = 10
let bail_deadline = 11
let bail_mem = 12
let exit_jump = 13
let exit_fallthrough = 14
let exit_taken = 15
let bail_count = 16

let bail_name = function
  | 0 -> "probe"
  | 1 -> "stall"
  | 2 -> "fetch"
  | 3 -> "metal"
  | 4 -> "timer"
  | 5 -> "icept"
  | 6 -> "irq"
  | 7 -> "tlb"
  | 8 -> "unbuildable"
  | 9 -> "window"
  | 10 -> "version"
  | 11 -> "deadline"
  | 12 -> "mem"
  | 13 -> "exit_jump"
  | 14 -> "exit_fallthrough"
  | 15 -> "exit_taken"
  | _ -> invalid_arg "Blockcache.bail_name"

type 'u t = {
  tbl : (int, 'u block) Hashtbl.t;
  page_gens : int array;
  mutable epoch : int;
  mutable phys_synced : int;
  mutable mram_synced : int;
  (* chain bookkeeping: the block whose taken exit just redirected,
     the slot that redirected, and the target pc its successor must
     engage at *)
  mutable chain_src : 'u block option;
  mutable chain_src_pc : int;
  mutable chain_src_vbase : int;
  mutable chain_src_i : int;
  (* fall-through bookkeeping: the block that just drained off its own
     end, so the next engage can resume compiled in its successor *)
  mutable fall_src : 'u block option;
  mutable fall_vbase : int;
  (* counters *)
  mutable blocks_built : int;
  mutable lookups : int;
  mutable lookup_hits : int;
  mutable chain_hits : int;
  mutable fall_hits : int;
  mutable flushes : int;
  mutable invalidations : int;
  mutable engagements : int;  (* compiled windows entered *)
  mutable block_cycles : int;  (* cycles retired by the compiled loop *)
  bail : int array;
}

let max_blocks = 4096

let create ~pages =
  if pages <= 0 then invalid_arg "Blockcache.create: pages must be positive";
  {
    tbl = Hashtbl.create 256;
    page_gens = Array.make pages 0;
    epoch = 0;
    phys_synced = 0;
    mram_synced = 0;
    chain_src = None;
    chain_src_pc = -1;
    chain_src_vbase = -1;
    chain_src_i = -1;
    fall_src = None;
    fall_vbase = -1;
    blocks_built = 0;
    lookups = 0;
    lookup_hits = 0;
    chain_hits = 0;
    fall_hits = 0;
    flushes = 0;
    invalidations = 0;
    engagements = 0;
    block_cycles = 0;
    bail = Array.make bail_count 0;
  }

let page_gen t ~page =
  if page >= 0 && page < Array.length t.page_gens then t.page_gens.(page)
  else 0

(* A block is valid while nothing on its page changed since it was
   built (and no global flush happened).  Empty blocks are valid in
   the same sense — they cache the fact that no block starts there. *)
let valid t (b : 'u block) =
  b.built_epoch = t.epoch && b.built_page_gen = page_gen t ~page:b.page

let usable t (b : 'u block) = b.n > 0 && valid t b

let flush t =
  Hashtbl.reset t.tbl;
  t.epoch <- t.epoch + 1;
  t.chain_src <- None;
  t.fall_src <- None;
  t.flushes <- t.flushes + 1

let sync_phys t ~version =
  if t.phys_synced <> version then begin
    flush t;
    t.phys_synced <- version
  end

let sync_mram t ~version =
  if t.mram_synced <> version then begin
    flush t;
    t.mram_synced <- version
  end

(* A pipeline store into RAM: invalidate every block on the written
   page by bumping its generation, and pre-bump [phys_synced] so the
   next [sync_phys] does not flush the world (the store already bumped
   [Phys_mem.version], mirroring [Predecode.note_phys_store]). *)
let note_phys_store t ~addr =
  let page = addr lsr 12 in
  if page >= 0 && page < Array.length t.page_gens then begin
    t.page_gens.(page) <- t.page_gens.(page) + 1;
    t.invalidations <- t.invalidations + 1
  end;
  t.phys_synced <- t.phys_synced + 1

let find t ~pa =
  t.lookups <- t.lookups + 1;
  match Hashtbl.find_opt t.tbl pa with
  | Some b when valid t b ->
    t.lookup_hits <- t.lookup_hits + 1;
    Some b
  | Some _ | None -> None

let add t (b : 'u block) =
  if Hashtbl.length t.tbl >= max_blocks then flush t;
  Hashtbl.replace t.tbl b.pbase b;
  t.blocks_built <- t.blocks_built + 1

let bail t cause = t.bail.(cause) <- t.bail.(cause) + 1

(* Uniform counter export for the metrics layer and the bench. *)
let stats_fields t =
  [ ("blocks_built", t.blocks_built);
    ("lookups", t.lookups);
    ("lookup_hits", t.lookup_hits);
    ("chain_hits", t.chain_hits);
    ("fall_hits", t.fall_hits);
    ("flushes", t.flushes);
    ("invalidations", t.invalidations);
    ("engagements", t.engagements);
    ("block_cycles", t.block_cycles) ]
  @ List.init bail_count (fun i -> ("bail_" ^ bail_name i, t.bail.(i)))
