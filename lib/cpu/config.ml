type transition = Fast_replacement | Trap_flush

type mram_backing = Dedicated | Main_memory of { fetch_penalty : int }

type t = {
  mem_size : int;
  mram_code_words : int;
  mram_data_bytes : int;
  tlb_entries : int;
  transition : transition;
  mram_backing : mram_backing;
  mem_latency : int;
  walker_latency : int;
  icache : Metal_hw.Cache.config option;
  dcache : Metal_hw.Cache.config option;
  trace : bool;
  timeout_trace_tail : int;
  predecode : bool;
  predecode_entries : int;
  blockcache : bool;
  ecc : bool;
}

let default =
  {
    mem_size = 4 * 1024 * 1024;
    mram_code_words = 4096;
    mram_data_bytes = 8192;
    tlb_entries = 32;
    transition = Fast_replacement;
    mram_backing = Dedicated;
    mem_latency = 0;
    walker_latency = 2;
    icache = None;
    dcache = None;
    trace = false;
    timeout_trace_tail = 16;
    predecode = true;
    predecode_entries = 4096;
    blockcache = true;
    ecc = false;
  }

let palcode =
  {
    default with
    transition = Trap_flush;
    mram_backing = Main_memory { fetch_penalty = 3 };
  }
