(** Worst-case per-instruction cycle costs in Metal mode.

    The static counterpart of the {!Pipeline} cost behaviour, consumed
    by the mcode verifier's WCET pass ([lib/mverify]).  All numbers
    are upper bounds: summing [instr] over the longest CFG path of an
    mroutine, plus [entry_overhead], bounds the measured
    mode_enter→mode_exit latency of any invocation under the same
    {!Config.t} — and therefore the machine's interrupt latency while
    that mroutine is installed (mroutines are non-interruptible). *)

val fetch : Config.t -> int
(** Worst-case fetch stall for one MRAM instruction fetch (0 with
    dedicated MRAM; the fetch penalty with main-memory mroutines). *)

val instr : Config.t -> Instr.t -> int
(** Worst-case cycles one retired instruction adds to an mroutine
    invocation: retirement itself, its fetch, redirect bubbles and
    wrong-path refetches, the load-use stall it can inflict on its
    consumer, and its worst memory-system stalls. *)

val entry_overhead : Config.t -> int
(** Fixed per-invocation overhead not attributable to any mroutine
    instruction: event delivery, pipeline refill, and the worst
    guest-side stall still draining inside the measured window. *)
