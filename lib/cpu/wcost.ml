(* Worst-case per-instruction cycle costs in Metal mode.

   This is the static side of the Pipeline cost model: for every
   instruction kind, the maximum number of cycles its retirement can
   add to an mroutine invocation, assuming every data-dependent stall
   fires (cache miss, TLB miss + full walk, load-use interlock) and
   every redirect squashes the deepest possible wrong-path prefix.
   The verifier's WCET pass (lib/mverify) sums these along the longest
   CFG path; the soundness property — measured mroutine cycles never
   exceed the summed bound — is checked over the program corpus by
   test_mverify and by [bench verify].

   The numbers mirror the charging sites in Pipeline/Pipeline_slow:
   - EX-stage redirects (taken branch, jalr) squash IF/ID and ID/EX:
     2 bubble cycles, plus up to 2 wrong-path MRAM fetches.
   - jal redirects at decode with a non-combinational refetch: 1
     bubble, 1 wrong-path fetch.
   - mexit interlocks against an m-register write in EX or MEM (up to
     2 stall cycles) and, under Trap_flush, drains like a trap.
   - Producers that deliver at MEM (loads, rmr, tlbprobe, gprr,
     mcsrr) can cost their consumer one load-use stall.
   - Loads/stores pay [mem_latency], a d-cache miss, and — with
     paging on and a TLB miss — a two-level hardware walk. *)

let dcache_miss (c : Config.t) =
  match c.dcache with
  | Some cc -> cc.Metal_hw.Cache.miss_penalty
  | None -> 0

let icache_miss (c : Config.t) =
  match c.icache with
  | Some cc -> cc.Metal_hw.Cache.miss_penalty
  | None -> 0

let fetch (c : Config.t) =
  match c.mram_backing with
  | Config.Dedicated -> 0
  | Config.Main_memory { fetch_penalty } -> fetch_penalty

(* Worst-case memory-system stall of a virtual load/store: bus
   latency, a d-cache miss, and a TLB miss served by a full two-level
   walk (two PTE reads at walker latency each). *)
let vmem_stall c =
  c.Config.mem_latency + dcache_miss c + (2 * c.Config.walker_latency)

let instr c (i : Instr.t) =
  let f = fetch c in
  let base = 1 + f in
  base
  + (match i with
     | Instr.Branch _ | Instr.Jalr _ -> 2 + (2 * f)
     | Instr.Jal _ -> 1 + f
     | Instr.Load _ -> vmem_stall c + 1 (* + load-use on the consumer *)
     | Instr.Store _ -> vmem_stall c
     | Instr.Metal mi ->
       (match mi with
        | Instr.Mexit ->
          (* Up to 2 interlock stalls against a wmr in EX/MEM; under
             Trap_flush the drain squashes 2 fetched slots.  The
             measured window closes at the mode_exit event, so the
             post-exit refill is the guest's problem, not ours. *)
          2 + (2 * f)
        | Instr.Menter _ ->
          (* Illegal inside an mroutine (the verifier rejects it);
             costed like a trap-style entry for completeness. *)
          3 + (2 * f)
        | Instr.Mld _ ->
          (* Produce at MEM: load-use; with ECC armed the MRAM data
             read pays one extra cycle for the in-line SECDED check
             (the regfile read path is modeled combinational). *)
          1 + (if c.Config.ecc then 1 else 0)
        | Instr.Rmr _ -> 1 (* produce at MEM: load-use *)
        | Instr.Mst _ | Instr.Wmr _ -> 0
        | Instr.Feature ft ->
          (match ft with
           | Instr.Physld _ -> c.Config.mem_latency + 1
           | Instr.Physst _ -> c.Config.mem_latency
           | Instr.Tlbprobe _ | Instr.Gprr _ | Instr.Mcsrr _ -> 1
           | Instr.Tlbw _ | Instr.Tlbflush _ | Instr.Gprw _
           | Instr.Iceptset _ | Instr.Iceptclr _ | Instr.Mcsrw _ -> 0))
     | Instr.Lui _ | Instr.Auipc _ | Instr.Op _ | Instr.Op_imm _
     | Instr.Fence | Instr.Ecall | Instr.Ebreak -> 0)

(* Cycles between the mode_enter event and the point where the
   per-instruction charges above take over: event delivery (flush +
   redirect), refilling the 5-stage pipe, and — the subtle part — any
   stall the *guest* charged in the entry cycle that has not drained
   yet (a load retiring in MEM while menter sits in ID charges its
   full memory stall inside the measured window). *)
let entry_overhead c =
  4 + c.Config.mem_latency + dcache_miss c + icache_miss c
  + (2 * c.Config.walker_latency)
