let capacity = 64

(* MRAM data-segment field offsets (absolute). *)
let base = Layout.stm_data
let off_status = base + 0x00
let off_abort_pc = base + 0x04
let off_read_count = base + 0x08
let off_write_count = base + 0x0C
let off_commits = base + 0x10
let off_aborts = base + 0x14
let off_overflows = base + 0x18
let off_reads_total = base + 0x1C
let off_writes_total = base + 0x20
let off_read_set = base + 0x40
let off_write_log = base + 0x40 + (8 * capacity)

let mcode () =
  Printf.sprintf
    {|# Software transactional memory via interception (paper Section 3.3).
.org %d
.equ STATUS, %d
.equ ABORT_PC, %d
.equ READ_COUNT, %d
.equ WRITE_COUNT, %d
.equ COMMITS, %d
.equ ABORTS, %d
.equ OVERFLOWS, %d
.equ READS_TOTAL, %d
.equ WRITES_TOTAL, %d
.equ READ_SET, %d
.equ WRITE_LOG, %d
.equ CAPACITY, %d
.equ LOAD_CLASS, 0
.equ STORE_CLASS, 1

.mentry %d, tstart
.mentry %d, tcommit
.mentry %d, tabort
.mentry %d, tread
.mentry %d, twrite

# Begin a transaction.  a0 = restart address on abort.
tstart:
    mst a0, ABORT_PC(zero)
    li t0, 1
    mst t0, STATUS(zero)
    mst zero, READ_COUNT(zero)
    mst zero, WRITE_COUNT(zero)
    li t0, LOAD_CLASS
    li t1, %d
    iceptset t0, t1
    li t0, STORE_CLASS
    li t1, %d
    iceptset t0, t1
    li t0, 1
    mcsrw icept_enable, t0
    mexit

# Intercepted load.  m28 = address, m26 = destination register index,
# m31 = pc of the load.  t0-t6 parked in m16-m22.
tread:
    wmr m16, t0
    wmr m17, t1
    wmr m18, t2
    wmr m19, t3
    wmr m20, t4
    wmr m21, t5
    wmr m22, t6
    rmr t0, m28
    mld t1, WRITE_COUNT(zero)
    li t2, 0
    .mbound CAPACITY + 1
tread_scan:
    beq t2, t1, tread_mem
    slli t3, t2, 3
    addi t3, t3, WRITE_LOG
    mld t4, 0(t3)
    beq t4, t0, tread_hit
    addi t2, t2, 1
    j tread_scan
tread_hit:
    # Satisfied from our own write log: not validated against memory,
    # so it must not enter the read set (TL2/NOrec rule).
    mld t5, 4(t3)
    j tread_stats
tread_mem:
    physld t5, 0(t0)
    mld t1, READ_COUNT(zero)
    li t4, CAPACITY
    beq t1, t4, stm_overflow
    slli t3, t1, 3
    addi t3, t3, READ_SET
    mst t0, 0(t3)
    mst t5, 4(t3)
    addi t1, t1, 1
    mst t1, READ_COUNT(zero)
tread_stats:
    mld t4, READS_TOTAL(zero)
    addi t4, t4, 1
    mst t4, READS_TOTAL(zero)
    rmr t4, m26
    # If the destination is a parked temp, patch the parked copy; the
    # restore below then materializes the loaded value.
    li t6, 5
    beq t4, t6, tread_fix_t0
    li t6, 6
    beq t4, t6, tread_fix_t1
    li t6, 7
    beq t4, t6, tread_fix_t2
    li t6, 28
    beq t4, t6, tread_fix_t3
    li t6, 29
    beq t4, t6, tread_fix_t4
    li t6, 30
    beq t4, t6, tread_fix_t5
    li t6, 31
    beq t4, t6, tread_fix_t6
    gprw t4, t5
    j tread_done
tread_fix_t0:
    wmr m16, t5
    j tread_done
tread_fix_t1:
    wmr m17, t5
    j tread_done
tread_fix_t2:
    wmr m18, t5
    j tread_done
tread_fix_t3:
    wmr m19, t5
    j tread_done
tread_fix_t4:
    wmr m20, t5
    j tread_done
tread_fix_t5:
    wmr m21, t5
    j tread_done
tread_fix_t6:
    wmr m22, t5
tread_done:
    rmr t4, m31
    addi t4, t4, 4
    wmr m31, t4
    rmr t0, m16
    rmr t1, m17
    rmr t2, m18
    rmr t3, m19
    rmr t4, m20
    rmr t5, m21
    rmr t6, m22
    mexit

# Intercepted store.  m28 = address, m27 = value, m31 = pc.
twrite:
    wmr m16, t0
    wmr m17, t1
    wmr m18, t2
    wmr m19, t3
    wmr m20, t4
    wmr m21, t5
    wmr m22, t6
    rmr t0, m28
    rmr t5, m27
    mld t1, WRITE_COUNT(zero)
    li t2, 0
    .mbound CAPACITY + 1
twrite_scan:
    beq t2, t1, twrite_append
    slli t3, t2, 3
    addi t3, t3, WRITE_LOG
    mld t4, 0(t3)
    beq t4, t0, twrite_update
    addi t2, t2, 1
    j twrite_scan
twrite_update:
    mst t5, 4(t3)
    j twrite_skip
twrite_append:
    li t4, CAPACITY
    beq t1, t4, stm_overflow
    slli t3, t1, 3
    addi t3, t3, WRITE_LOG
    mst t0, 0(t3)
    mst t5, 4(t3)
    addi t1, t1, 1
    mst t1, WRITE_COUNT(zero)
twrite_skip:
    mld t4, WRITES_TOTAL(zero)
    addi t4, t4, 1
    mst t4, WRITES_TOTAL(zero)
    rmr t4, m31
    addi t4, t4, 4
    wmr m31, t4
    rmr t0, m16
    rmr t1, m17
    rmr t2, m18
    rmr t3, m19
    rmr t4, m20
    rmr t5, m21
    rmr t6, m22
    mexit

# Capacity exhausted inside tread/twrite: count it and restart the
# transaction at the abort handler.
stm_overflow:
    mld t0, OVERFLOWS(zero)
    addi t0, t0, 1
    mst t0, OVERFLOWS(zero)
    mld t0, ABORTS(zero)
    addi t0, t0, 1
    mst t0, ABORTS(zero)
    li t0, LOAD_CLASS
    iceptclr t0
    li t0, STORE_CLASS
    iceptclr t0
    mst zero, STATUS(zero)
    mld t0, ABORT_PC(zero)
    wmr m31, t0
    rmr t0, m16
    rmr t1, m17
    rmr t2, m18
    rmr t3, m19
    rmr t4, m20
    rmr t5, m21
    rmr t6, m22
    mexit

# Commit: stop intercepting, validate the read set, apply the write
# log.  a0 = 1 on success; on conflict the transaction restarts at the
# abort handler with a0 = 0.  Invoked by menter, so temporaries follow
# the function-call ABI (caller-saved).
tcommit:
    li t0, LOAD_CLASS
    iceptclr t0
    li t0, STORE_CLASS
    iceptclr t0
    mst zero, STATUS(zero)
    mld t1, READ_COUNT(zero)
    li t2, 0
    .mbound CAPACITY + 1
tcommit_validate:
    beq t2, t1, tcommit_apply
    slli t3, t2, 3
    addi t3, t3, READ_SET
    mld t4, 0(t3)
    mld t5, 4(t3)
    physld t6, 0(t4)
    bne t6, t5, tcommit_fail
    addi t2, t2, 1
    j tcommit_validate
tcommit_apply:
    mld t1, WRITE_COUNT(zero)
    li t2, 0
    .mbound CAPACITY + 1
tcommit_apply_loop:
    beq t2, t1, tcommit_ok
    slli t3, t2, 3
    addi t3, t3, WRITE_LOG
    mld t4, 0(t3)
    mld t5, 4(t3)
    physst t5, 0(t4)
    addi t2, t2, 1
    j tcommit_apply_loop
tcommit_ok:
    mld t0, COMMITS(zero)
    addi t0, t0, 1
    mst t0, COMMITS(zero)
    li a0, 1
    mexit
tcommit_fail:
    mld t0, ABORTS(zero)
    addi t0, t0, 1
    mst t0, ABORTS(zero)
    li a0, 0
    mld t0, ABORT_PC(zero)
    wmr m31, t0
    mexit

# Explicit abort: discard buffered state and restart.
tabort:
    li t0, LOAD_CLASS
    iceptclr t0
    li t0, STORE_CLASS
    iceptclr t0
    mst zero, STATUS(zero)
    mld t0, ABORTS(zero)
    addi t0, t0, 1
    mst t0, ABORTS(zero)
    li a0, 0
    mld t0, ABORT_PC(zero)
    wmr m31, t0
    mexit
|}
    Layout.stm_org off_status off_abort_pc off_read_count off_write_count
    off_commits off_aborts off_overflows off_reads_total off_writes_total
    off_read_set off_write_log capacity Layout.tstart Layout.tcommit
    Layout.tabort Layout.tread Layout.twrite Layout.tread Layout.twrite

let install m =
  match Metal_asm.Asm.assemble (mcode ()) with
  | Error e -> Error (Metal_asm.Asm.error_to_string e)
  | Ok img -> Metal_cpu.Machine.load_mcode m img

type counters = {
  commits : int;
  aborts : int;
  overflow_aborts : int;
  reads : int;
  writes : int;
}

let read_slot m off =
  match Metal_hw.Mram.load_word m.Metal_cpu.Machine.mram ~addr:off with
  | Some v -> v
  | None -> 0

let counters m =
  {
    commits = read_slot m off_commits;
    aborts = read_slot m off_aborts;
    overflow_aborts = read_slot m off_overflows;
    reads = read_slot m off_reads_total;
    writes = read_slot m off_writes_total;
  }

let reset_counters m =
  List.iter
    (fun off ->
       ignore
         (Metal_hw.Mram.store_word m.Metal_cpu.Machine.mram ~addr:off 0))
    [ off_status; off_abort_pc; off_read_count; off_write_count; off_commits;
      off_aborts; off_overflows; off_reads_total; off_writes_total ]
