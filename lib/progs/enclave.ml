type config = {
  entry : int;
  region_base : int;
  region_size : int;
  open_perms : int;
  closed_perms : int;
}

let base = Layout.enclave_data
let off_entry = base + 0x00
let off_base = base + 0x04
let off_size = base + 0x08
let off_saved = base + 0x0C
let off_open = base + 0x10
let off_closed = base + 0x14
let off_meas = base + 0x18
let off_denied = base + 0x1C

(* Upper bound on the measured region, in words: caps the hash loop so
   the verifier's WCET pass has a static iteration bound ([.mbound]
   in the mcode below); [install] enforces it. *)
let max_words = 1024

let mcode () =
  Printf.sprintf
    {|# Security enclaves (paper Section 3.5).
.org %d
.equ ENC_ENTRY, %d
.equ ENC_BASE, %d
.equ ENC_SIZE, %d
.equ ENC_SAVED, %d
.equ ENC_OPEN, %d
.equ ENC_CLOSED, %d
.equ ENC_MEAS, %d
.equ ENC_DENIED, %d
.equ ENC_MAX_WORDS, %d

.mentry %d, enc_enter
.mentry %d, enc_exit
.mentry %d, enc_hash

# Measure the enclave region: h = 5381; h = ((h << 5) + h) ^ word.
# Internal subroutine; link register is t3.  The loop runs
# region_size / 4 times; install rejects regions larger than
# ENC_MAX_WORDS words, which justifies the static .mbound below.
enc_hash_fn:
    mld t0, ENC_BASE(zero)
    mld t1, ENC_SIZE(zero)
    add t1, t1, t0
    li t2, 5381
    .mbound ENC_MAX_WORDS + 1
enc_hash_loop:
    bgeu t0, t1, enc_hash_done
    physld t4, 0(t0)
    slli t5, t2, 5
    add t2, t5, t2
    xor t2, t2, t4
    addi t0, t0, 4
    j enc_hash_loop
enc_hash_done:
    jr t3

# Attestation: a0 = current measurement.
enc_hash:
    jal t3, enc_hash_fn
    mv a0, t2
    mexit

# Enter the enclave after verifying its measurement (code integrity);
# a tampered enclave is refused with a0 = -1.
enc_enter:
    jal t3, enc_hash_fn
    mld t4, ENC_MEAS(zero)
    bne t2, t4, enc_denied
    rmr t0, m31
    mst t0, ENC_SAVED(zero)
    mld t0, ENC_OPEN(zero)
    mcsrw pkey_perms, t0
    mld t0, ENC_ENTRY(zero)
    wmr m31, t0
    mexit
enc_denied:
    mld t0, ENC_DENIED(zero)
    addi t0, t0, 1
    mst t0, ENC_DENIED(zero)
    li a0, -1
    mexit

# Leave the enclave: close the key, return to the original caller.
enc_exit:
    mld t0, ENC_CLOSED(zero)
    mcsrw pkey_perms, t0
    mld t0, ENC_SAVED(zero)
    wmr m31, t0
    mexit
|}
    Layout.enclave_org off_entry off_base off_size off_saved off_open
    off_closed off_meas off_denied max_words Layout.enc_enter
    Layout.enc_exit Layout.enc_hash

let host_hash m ~base:b ~size =
  let rec go addr h =
    if addr >= b + size then h
    else
      let w = Metal_cpu.Machine.read_word m addr in
      let h = Word.logxor (Word.add (Word.shift_left h 5) h) w in
      go (addr + 4) h
  in
  go b 5381

let install m cfg =
  if cfg.region_size land 3 <> 0 then Error "enclave size must be word-aligned"
  else if cfg.region_size > 4 * max_words then
    Error
      (Printf.sprintf
         "enclave region too large: %d bytes (limit %d, the hash loop's \
          static WCET bound)"
         cfg.region_size (4 * max_words))
  else
    match Metal_asm.Asm.assemble (mcode ()) with
    | Error e -> Error (Metal_asm.Asm.error_to_string e)
    | Ok img ->
      begin match Metal_cpu.Machine.load_mcode m img with
      | Error _ as e -> e
      | Ok () ->
        let mram = m.Metal_cpu.Machine.mram in
        let put off v = ignore (Metal_hw.Mram.store_word mram ~addr:off v) in
        put off_entry cfg.entry;
        put off_base cfg.region_base;
        put off_size cfg.region_size;
        put off_open cfg.open_perms;
        put off_closed cfg.closed_perms;
        put off_meas (host_hash m ~base:cfg.region_base ~size:cfg.region_size);
        Metal_cpu.Machine.ctrl_write m Csr.pkey_perms cfg.closed_perms;
        Ok ()
      end

let measurement m =
  match Metal_hw.Mram.load_word m.Metal_cpu.Machine.mram ~addr:off_meas with
  | Some v -> v
  | None -> 0
