(** Security enclaves (Section 3.5).

    "Developers create a trusted execution layer that runs at a higher
    privilege level than the host OS.  After Metal loads and verifies
    an enclave, the enclave runs in the trusted execution layer which
    the host OS cannot access."

    An enclave here is a contiguous memory region whose pages carry a
    dedicated page key.  [enc_enter] opens the key and transfers to
    the enclave entry point ([m31] is parked so [enc_exit] returns to
    the caller); [enc_hash] computes the enclave's measurement — a
    multiplicative checksum over the region — for attestation, and
    [enc_enter] refuses to run an enclave whose current measurement
    differs from the one recorded at configuration time (code
    integrity). *)

type config = {
  entry : int;  (** enclave entry point *)
  region_base : int;
  region_size : int;  (** bytes (multiple of 4) *)
  open_perms : int;
  closed_perms : int;
}

val max_words : int
(** Largest measurable region in words; {!install} rejects bigger
    regions.  This is the static [.mbound] of the hash loop, so the
    verifier's WCET bound for the hashing entries stays finite. *)

val mcode : unit -> string
(** Entries {!Layout.enc_enter}, {!Layout.enc_exit},
    {!Layout.enc_hash}. *)

val install : Metal_cpu.Machine.t -> config -> (unit, string) result
(** Load, configure and record the initial measurement (requires the
    enclave contents to already be in memory). *)

val measurement : Metal_cpu.Machine.t -> int
(** The measurement recorded in MRAM. *)
