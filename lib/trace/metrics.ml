type mroutine = {
  entry : int;
  count : int;
  total_cycles : int;
  min_cycles : int;
  max_cycles : int;
  latencies : (int * int) list;
}

type t = {
  user_cycles : int;
  metal_cycles : int;
  user_instructions : int;
  metal_instructions : int;
  event_counts : (string * int) list;
  stall_cycles : (string * int) list;
  mroutines : mroutine list;
  ecc_corrections : int;
  injections : int;
  events_recorded : int;
  events_dropped : int;
  dropped_entries : int;
}

let zero_counts count name = List.init count (fun k -> (name k, 0))

let empty =
  {
    user_cycles = 0;
    metal_cycles = 0;
    user_instructions = 0;
    metal_instructions = 0;
    event_counts = zero_counts Event.count Event.name;
    stall_cycles = zero_counts Event.stall_count Event.stall_name;
    mroutines = [];
    ecc_corrections = 0;
    injections = 0;
    events_recorded = 0;
    events_dropped = 0;
    dropped_entries = 0;
  }

(* Sum two assoc lists that share the same canonical key order (pad
   with the other's entries when one side was built against an older
   key set). *)
let merge_counts a b =
  let add acc (k, v) =
    let v' = match List.assoc_opt k acc with Some w -> v + w | None -> v in
    (k, v') :: List.remove_assoc k acc
  in
  let merged = List.fold_left add (List.fold_left add [] a) b in
  (* canonical order: as they appear in [a] then leftovers from [b] *)
  let order = List.map fst a @ List.filter (fun k -> not (List.mem_assoc k a)) (List.map fst b) in
  List.map (fun k -> (k, List.assoc k merged)) order

let merge_latencies a b =
  let tbl = Hashtbl.create 16 in
  let add (l, n) =
    Hashtbl.replace tbl l (n + Option.value ~default:0 (Hashtbl.find_opt tbl l))
  in
  List.iter add a;
  List.iter add b;
  List.sort compare (Hashtbl.fold (fun l n acc -> (l, n) :: acc) tbl [])

let merge_mroutine a b =
  {
    entry = a.entry;
    count = a.count + b.count;
    total_cycles = a.total_cycles + b.total_cycles;
    min_cycles = min a.min_cycles b.min_cycles;
    max_cycles = max a.max_cycles b.max_cycles;
    latencies = merge_latencies a.latencies b.latencies;
  }

let merge_mroutines a b =
  let tbl = Hashtbl.create 16 in
  let add m =
    match Hashtbl.find_opt tbl m.entry with
    | None -> Hashtbl.replace tbl m.entry m
    | Some m' -> Hashtbl.replace tbl m.entry (merge_mroutine m' m)
  in
  List.iter add a;
  List.iter add b;
  List.sort
    (fun x y -> compare x.entry y.entry)
    (Hashtbl.fold (fun _ m acc -> m :: acc) tbl [])

let merge a b =
  {
    user_cycles = a.user_cycles + b.user_cycles;
    metal_cycles = a.metal_cycles + b.metal_cycles;
    user_instructions = a.user_instructions + b.user_instructions;
    metal_instructions = a.metal_instructions + b.metal_instructions;
    event_counts = merge_counts a.event_counts b.event_counts;
    stall_cycles = merge_counts a.stall_cycles b.stall_cycles;
    mroutines = merge_mroutines a.mroutines b.mroutines;
    ecc_corrections = a.ecc_corrections + b.ecc_corrections;
    injections = a.injections + b.injections;
    events_recorded = a.events_recorded + b.events_recorded;
    events_dropped = a.events_dropped + b.events_dropped;
    dropped_entries = a.dropped_entries + b.dropped_entries;
  }

let equal (a : t) (b : t) = a = b

let buf_counts buf l =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
       if i > 0 then Buffer.add_string buf ", ";
       Buffer.add_string buf (Printf.sprintf "%S: %d" k v))
    l;
  Buffer.add_string buf "}"

let to_json ?caches t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema\": \"metal-metrics-v1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"user_cycles\": %d,\n  \"metal_cycles\": %d,\n"
       t.user_cycles t.metal_cycles);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"user_instructions\": %d,\n  \"metal_instructions\": %d,\n"
       t.user_instructions t.metal_instructions);
  Buffer.add_string buf "  \"events\": ";
  buf_counts buf t.event_counts;
  Buffer.add_string buf ",\n  \"stall_cycles\": ";
  buf_counts buf t.stall_cycles;
  Buffer.add_string buf ",\n  \"mroutines\": [";
  List.iteri
    (fun i m ->
       if i > 0 then Buffer.add_string buf ",";
       Buffer.add_string buf
         (Printf.sprintf
            "\n    {\"entry\": %d, \"count\": %d, \"total_cycles\": %d, \
             \"min\": %d, \"max\": %d, \"latencies\": [%s]}"
            m.entry m.count m.total_cycles m.min_cycles m.max_cycles
            (String.concat ", "
               (List.map
                  (fun (l, n) -> Printf.sprintf "[%d, %d]" l n)
                  m.latencies))))
    t.mroutines;
  if t.mroutines <> [] then Buffer.add_string buf "\n  ";
  Buffer.add_string buf "],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"ecc_corrections\": %d,\n  \"injections\": %d,\n"
       t.ecc_corrections t.injections);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"events_recorded\": %d,\n  \"events_dropped\": %d,\n\
       \  \"dropped_entries\": %d"
       t.events_recorded t.events_dropped t.dropped_entries);
  (* Host-side simulator cache counters (predecode / block cache).
     Optional: they describe the stepper that produced the run, not
     the architecture, so they ride alongside the event-derived record
     without entering it (the record must stay stepper-independent). *)
  (match caches with
   | None -> ()
   | Some l ->
     Buffer.add_string buf ",\n  \"caches\": ";
     buf_counts buf l);
  Buffer.add_string buf "\n}\n";
  Buffer.contents buf

let pp fmt t =
  let total_cycles = t.user_cycles + t.metal_cycles in
  let pct n =
    if total_cycles = 0 then 0.0
    else 100.0 *. float_of_int n /. float_of_int total_cycles
  in
  Format.fprintf fmt
    "@[<v>mode split: user %d cycles (%.1f%%), metal %d cycles (%.1f%%)@,\
     instructions: user %d, metal %d@,"
    t.user_cycles (pct t.user_cycles) t.metal_cycles (pct t.metal_cycles)
    t.user_instructions t.metal_instructions;
  Format.fprintf fmt "events:";
  List.iter
    (fun (k, v) -> if v > 0 then Format.fprintf fmt " %s=%d" k v)
    t.event_counts;
  Format.fprintf fmt "@,stall cycles:";
  List.iter
    (fun (k, v) -> if v > 0 then Format.fprintf fmt " %s=%d" k v)
    t.stall_cycles;
  if t.mroutines <> [] then begin
    Format.fprintf fmt "@,%-8s %8s %8s %6s %6s %8s" "mroutine" "calls"
      "cycles" "min" "max" "mean";
    List.iter
      (fun m ->
         Format.fprintf fmt "@,%-8d %8d %8d %6d %6d %8.1f" m.entry m.count
           m.total_cycles m.min_cycles m.max_cycles
           (if m.count = 0 then 0.0
            else float_of_int m.total_cycles /. float_of_int m.count))
      t.mroutines
  end;
  if t.events_dropped > 0 then
    Format.fprintf fmt
      "@,WARNING: %d events dropped by ring wraparound \
       (raise the ring capacity)"
      t.events_dropped;
  if t.dropped_entries > 0 then
    Format.fprintf fmt
      "@,WARNING: %d open mode-entry frames dropped \
       (entry stack overflow; latency histogram is incomplete)"
      t.dropped_entries;
  Format.fprintf fmt "@]"
