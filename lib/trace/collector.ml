type agg = {
  mutable count : int;
  mutable total : int;
  mutable min : int;
  mutable max : int;
  buckets : (int, int) Hashtbl.t;
}

(* Open mode_enter frames awaiting their mode_exit.  A single
   cur_entry/enter_cycle pair mis-attributes latencies as soon as a
   second mode_enter arrives before the exit — nested delivery, or an
   entry squashed by an older instruction's fault re-entering through
   the exception handler — so each open entry gets its own slot. *)
let entry_stack_depth = 16

type t = {
  ring : Ring.t;
  kind_counts : int array;
  stall_cycles : int array;
  mutable user_instrs : int;
  mutable metal_instrs : int;
  mutable user_cycles : int;
  mutable metal_cycles : int;
  mutable in_metal : bool;
  mutable mode_since : int;  (* cycle of the last mode transition *)
  entry_stack : int array;  (* MRAM entries of open mode_enter frames *)
  enter_cycles : int array;  (* cycle of each open enter *)
  mutable entry_sp : int;
  mutable dropped_entries : int;  (* frames evicted by stack overflow *)
  mutable last_cycle : int;
  hist : (int, agg) Hashtbl.t;  (* entry -> latency aggregate *)
}

let create ?(capacity = 65536) () =
  {
    ring = Ring.create ~capacity;
    kind_counts = Array.make Event.count 0;
    stall_cycles = Array.make Event.stall_count 0;
    user_instrs = 0;
    metal_instrs = 0;
    user_cycles = 0;
    metal_cycles = 0;
    in_metal = false;
    mode_since = 0;
    entry_stack = Array.make entry_stack_depth 0;
    enter_cycles = Array.make entry_stack_depth 0;
    entry_sp = 0;
    dropped_entries = 0;
    last_cycle = 0;
    hist = Hashtbl.create 16;
  }

let ring t = t.ring

let switch_mode t ~cycle ~metal =
  let elapsed = cycle - t.mode_since in
  if t.in_metal then t.metal_cycles <- t.metal_cycles + elapsed
  else t.user_cycles <- t.user_cycles + elapsed;
  t.mode_since <- cycle;
  t.in_metal <- metal

let record_latency t ~entry ~latency =
  let agg =
    match Hashtbl.find_opt t.hist entry with
    | Some a -> a
    | None ->
      let a =
        { count = 0; total = 0; min = max_int; max = 0;
          buckets = Hashtbl.create 8 }
      in
      Hashtbl.replace t.hist entry a;
      a
  in
  agg.count <- agg.count + 1;
  agg.total <- agg.total + latency;
  if latency < agg.min then agg.min <- latency;
  if latency > agg.max then agg.max <- latency;
  Hashtbl.replace agg.buckets latency
    (1 + Option.value ~default:0 (Hashtbl.find_opt agg.buckets latency))

let probe t cycle kind a b =
  Ring.record t.ring ~cycle ~kind ~a ~b;
  t.kind_counts.(kind) <- t.kind_counts.(kind) + 1;
  t.last_cycle <- cycle;
  if kind = Event.retire then begin
    if b = 1 then t.metal_instrs <- t.metal_instrs + 1
    else t.user_instrs <- t.user_instrs + 1
  end
  else if kind = Event.mode_enter then begin
    switch_mode t ~cycle ~metal:true;
    (* On overflow drop the oldest frame: it can only be squash junk —
       the architecture forbids nesting that deep.  Count the eviction
       so the metrics can warn that the latency histogram is
       incomplete instead of staying silently short. *)
    if t.entry_sp = entry_stack_depth then begin
      Array.blit t.entry_stack 1 t.entry_stack 0 (entry_stack_depth - 1);
      Array.blit t.enter_cycles 1 t.enter_cycles 0 (entry_stack_depth - 1);
      t.entry_sp <- entry_stack_depth - 1;
      t.dropped_entries <- t.dropped_entries + 1
    end;
    t.entry_stack.(t.entry_sp) <- a;
    t.enter_cycles.(t.entry_sp) <- cycle;
    t.entry_sp <- t.entry_sp + 1
  end
  else if kind = Event.mode_exit then begin
    switch_mode t ~cycle ~metal:false;
    (* Pair the exit with the most recent unmatched enter. *)
    if t.entry_sp > 0 then begin
      t.entry_sp <- t.entry_sp - 1;
      record_latency t ~entry:t.entry_stack.(t.entry_sp)
        ~latency:(cycle - t.enter_cycles.(t.entry_sp))
    end
  end
  else if kind = Event.stall_begin then
    t.stall_cycles.(a) <- t.stall_cycles.(a) + b

let metrics t =
  (* Attribute the tail [mode_since .. last_cycle] without mutating the
     collector, so snapshots are repeatable. *)
  let tail = t.last_cycle - t.mode_since in
  let user_cycles, metal_cycles =
    if t.in_metal then (t.user_cycles, t.metal_cycles + tail)
    else (t.user_cycles + tail, t.metal_cycles)
  in
  let counts name arr =
    Array.to_list (Array.mapi (fun k v -> (name k, v)) arr)
  in
  let mroutines =
    List.sort
      (fun (a : Metrics.mroutine) b -> compare a.entry b.entry)
      (Hashtbl.fold
         (fun entry agg acc ->
            {
              Metrics.entry;
              count = agg.count;
              total_cycles = agg.total;
              min_cycles = (if agg.count = 0 then 0 else agg.min);
              max_cycles = agg.max;
              latencies =
                List.sort compare
                  (Hashtbl.fold
                     (fun l n acc -> (l, n) :: acc)
                     agg.buckets []);
            }
            :: acc)
         t.hist [])
  in
  {
    Metrics.user_cycles;
    metal_cycles;
    user_instructions = t.user_instrs;
    metal_instructions = t.metal_instrs;
    event_counts = counts Event.name t.kind_counts;
    stall_cycles = counts Event.stall_name t.stall_cycles;
    mroutines;
    ecc_corrections = t.kind_counts.(Event.ecc_correct);
    injections = t.kind_counts.(Event.inject);
    events_recorded = Ring.total t.ring;
    events_dropped = Ring.dropped t.ring;
    dropped_entries = t.dropped_entries;
  }
