(** Live event collector: the probe target installed on a machine.

    [probe] records every event into the ring and folds it into the
    attribution counters (per-mode cycles/instructions, per-mroutine
    menter→mexit latency histogram, per-cause stall cycles) as it
    arrives, so the counters are exact even after the ring wraps.
    Recording allocates only on mode transitions (hashtable updates on
    a ≤64-entry key space), never per retired instruction. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the ring (default 65536 events). *)

val probe : t -> int -> int -> int -> int -> unit
(** [(probe c) cycle kind a b]: the function to install with
    [Machine.set_probe]. *)

val ring : t -> Ring.t

val metrics : t -> Metrics.t
(** Snapshot.  Cycles between the last mode transition and the last
    recorded event are attributed to the mode active at that point. *)
