(** Flat, mergeable metrics snapshot derived from the event stream.

    Values are immutable and structurally comparable, so the
    differential suite can require the two steppers produce equal
    metrics with [( = )], and [Fleet] can merge per-job metrics across
    domains deterministically (merging is commutative and associative
    over jobs, and every list field keeps a canonical order). *)

type mroutine = {
  entry : int;  (** MRAM entry index *)
  count : int;  (** completed menter→mexit round trips *)
  total_cycles : int;
  min_cycles : int;
  max_cycles : int;
  latencies : (int * int) list;
      (** latency histogram [(cycles, occurrences)], ascending cycles *)
}

type t = {
  user_cycles : int;  (** cycles attributed to normal mode *)
  metal_cycles : int;  (** cycles attributed to Metal mode *)
  user_instructions : int;
  metal_instructions : int;
  event_counts : (string * int) list;  (** per-kind totals, kind order *)
  stall_cycles : (string * int) list;  (** per-cause charged cycles *)
  mroutines : mroutine list;  (** ascending entry index *)
  ecc_corrections : int;
      (** SECDED single-bit repairs at consumption points
          (= the [ecc_correct] event count, surfaced flat) *)
  injections : int;
      (** faults applied by [Metal_inject]
          (= the [inject] event count, surfaced flat) *)
  events_recorded : int;
  events_dropped : int;  (** lost to ring wraparound *)
  dropped_entries : int;
      (** open mode-entry frames evicted by collector entry-stack
          overflow — when non-zero the mroutine latency histogram is
          incomplete and [pp] prints a loud warning *)
}

val empty : t

val merge : t -> t -> t
(** Pointwise sum (min/max for the latency bounds); [empty] is the
    identity. *)

val equal : t -> t -> bool

val to_json : ?caches:(string * int) list -> t -> string
(** JSON export (schema [metal-metrics-v1]).  [caches] adds an
    optional ["caches"] object of host-side simulator cache counters
    (see [Machine.cache_counters]) without touching the event-derived
    record itself. *)

val pp : Format.formatter -> t -> unit
(** Human summary: mode split, event totals, per-mroutine latency
    table (the Figure-2 view of an arbitrary workload). *)
