type t = {
  cap : int;
  cycles : int array;
  kinds : int array;
  a : int array;
  b : int array;
  mutable head : int;  (* next write position *)
  mutable total : int;
}

let create ~capacity =
  let cap = max 1 capacity in
  {
    cap;
    cycles = Array.make cap 0;
    kinds = Array.make cap 0;
    a = Array.make cap 0;
    b = Array.make cap 0;
    head = 0;
    total = 0;
  }

let capacity t = t.cap
let length t = min t.total t.cap
let total t = t.total
let dropped t = t.total - length t

let record t ~cycle ~kind ~a ~b =
  let i = t.head in
  t.cycles.(i) <- cycle;
  t.kinds.(i) <- kind;
  t.a.(i) <- a;
  t.b.(i) <- b;
  t.head <- (if i + 1 = t.cap then 0 else i + 1);
  t.total <- t.total + 1

let iter t f =
  let n = length t in
  let start = if t.total > t.cap then t.head else 0 in
  for k = 0 to n - 1 do
    let i = (start + k) mod t.cap in
    f ~cycle:t.cycles.(i) ~kind:t.kinds.(i) ~a:t.a.(i) ~b:t.b.(i)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun ~cycle ~kind ~a ~b -> acc := (cycle, kind, a, b) :: !acc);
  List.rev !acc

let clear t =
  t.head <- 0;
  t.total <- 0
