(** Chrome [trace_event] exporter.

    Renders a ring as a JSON trace loadable by chrome://tracing and
    Perfetto: one track (tid) per pipeline stage (IF/ID/EX/MEM/WB), a
    sixth track for mode occupancy where each completed menter→mexit
    span is a duration event, and instants for the remaining events.
    One simulated cycle maps to one microsecond of trace time; events
    are written in recording order, so timestamps are monotone per
    track (the CI smoke checks this). *)

val tid_if : int
val tid_id : int
val tid_ex : int
val tid_mem : int
val tid_wb : int
val tid_mode : int

val to_buffer : Buffer.t -> Ring.t -> unit
val to_string : Ring.t -> string
val write : path:string -> Ring.t -> unit
