(** Typed event stream vocabulary.

    Events are carried as four machine integers — [(cycle, kind, a, b)]
    — so recording is allocation-free; this module gives the integers
    names.  The pipeline emits them through the probe installed on
    [Machine.t]; both steppers must emit identical streams (checked by
    the differential suite). *)

(** {2 Event kinds}

    The [a]/[b] payload per kind:
    - [retire]: [a] = pc, [b] = 1 in Metal mode else 0
    - [mode_enter]: [a] = MRAM entry index, [b] = entry reason
    - [mode_exit]: [a] = resume pc
    - [intercept]: [a] = intercept class code, [b] = intercepted pc
    - [exn]: [a] = cause code, [b] = tval
    - [interrupt]: [a] = irq, [b] = resume pc
    - [tlb_miss]: [a] = vaddr, [b] = access (0 fetch, 1 load, 2 store)
    - [hw_walk]: [a] = faulting page base (vpn shifted)
    - [flush]: [a] = flush reason
    - [stall_begin]: [a] = stall cause, [b] = cycles charged
    - [stall_end]: the stall counter drained to zero this cycle
    - [call]: [a] = callee pc, [b] = call-site pc (retired jal/jalr
      that links through ra/t0 — the RISC-V calling convention's
      call hint)
    - [ret]: [a] = return-target pc, [b] = site pc (retired
      [jalr x0, ra/t0] — the convention's return hint)
    - [inject]: a fault was injected this cycle ([Metal_inject]);
      [a] = fault-class code ([Metal_inject.Inject.class_code]),
      [b] = class-specific packed detail (location and bit)
    - [ecc_correct]: the SECDED decoder repaired a single-bit upset at
      a consumption point ([Config.ecc] armed); [a] = protected
      structure (0 MRAM data segment, 1 m-register file), [b] = byte
      offset resp. register index *)

val retire : int
val mode_enter : int
val mode_exit : int
val intercept : int
val exn : int
val interrupt : int
val tlb_miss : int
val hw_walk : int
val flush : int
val stall_begin : int
val stall_end : int
val call : int
val ret : int
val inject : int
val ecc_correct : int

val count : int
(** Number of event kinds; kinds are dense in [0, count). *)

val name : int -> string
(** Short stable name of a kind (used in metrics JSON keys). *)

(** {2 Mode-entry reasons} ([b] of [mode_enter]) *)

val reason_menter : int  (** decode-stage replacement entry *)

val reason_menter_trap : int  (** trap-style (PALcode) entry at MEM *)

val reason_intercept : int

val reason_exception : int

val reason_interrupt : int

val reason_name : int -> string

(** {2 Fault-injection and ECC payload names} *)

val inject_class_name : int -> string
(** Name of an [inject] event's fault-class code ([a] payload).  A
    local copy of [Metal_inject.Inject.class_code]'s vocabulary —
    lib/trace sits below lib/inject in the dependency order — kept in
    sync by a test. *)

val ecc_structure_name : int -> string
(** Name of an [ecc_correct] event's protected-structure code ([a]
    payload): 0 = ["mram-data"], 1 = ["mreg"]. *)

(** {2 Flush reasons} ([a] of [flush]) *)

val flush_redirect : int  (** taken branch / jalr resolved at EX *)

val flush_event : int  (** mode transition or event delivery *)

(** {2 Stall causes} ([a] of [stall_begin]) *)

val stall_fetch_cache : int
val stall_data_cache : int
val stall_mem_latency : int
val stall_walker : int
val stall_mram_fetch : int

val stall_ecc_check : int
(** one-cycle in-line SECDED verify on an [mld] MRAM data read
    ([Config.ecc] armed) *)

val stall_count : int

val stall_name : int -> string
