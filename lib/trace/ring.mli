(** Fixed-size event ring buffer.

    Four parallel [int] arrays, so recording an event is four stores
    and two increments — no allocation on the hot path.  When the ring
    is full the oldest events are overwritten; [total] keeps counting
    so the drop count is recoverable. *)

type t

val create : capacity:int -> t
(** [capacity] is clamped to at least 1. *)

val capacity : t -> int

val length : t -> int
(** Events currently held (at most [capacity]). *)

val total : t -> int
(** Events ever recorded (monotone). *)

val dropped : t -> int
(** [total - length]: events overwritten by wraparound. *)

val record : t -> cycle:int -> kind:int -> a:int -> b:int -> unit

val iter : t -> (cycle:int -> kind:int -> a:int -> b:int -> unit) -> unit
(** Oldest first. *)

val to_list : t -> (int * int * int * int) list
(** [(cycle, kind, a, b)], oldest first.  Bit-identical streams from
    the two steppers compare equal here. *)

val clear : t -> unit
