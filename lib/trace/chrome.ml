let tid_if = 1
let tid_id = 2
let tid_ex = 3
let tid_mem = 4
let tid_wb = 5
let tid_mode = 6

let stage_names =
  [ (tid_if, "IF"); (tid_id, "ID"); (tid_ex, "EX"); (tid_mem, "MEM");
    (tid_wb, "WB"); (tid_mode, "mode") ]

let instant_tid ~kind ~a ~b =
  if kind = Event.retire then tid_wb
  else if kind = Event.intercept || kind = Event.interrupt then tid_id
  else if kind = Event.exn || kind = Event.hw_walk then tid_mem
  else if kind = Event.flush then tid_ex
  else if kind = Event.tlb_miss then if b = 0 then tid_if else tid_mem
  else if kind = Event.stall_begin then
    if a = Event.stall_fetch_cache || a = Event.stall_mram_fetch then tid_if
    else tid_mem
  else if kind = Event.stall_end then tid_mem
  else if kind = Event.call || kind = Event.ret then tid_wb
  else if kind = Event.ecc_correct then tid_mem
  else tid_mode

let instant_args ~kind ~a ~b =
  if kind = Event.retire then
    Printf.sprintf "{\"pc\": %d, \"metal\": %b}" a (b = 1)
  else if kind = Event.intercept then
    Printf.sprintf "{\"class\": %d, \"pc\": %d}" a b
  else if kind = Event.exn then
    Printf.sprintf "{\"cause\": %d, \"tval\": %d}" a b
  else if kind = Event.interrupt then
    Printf.sprintf "{\"irq\": %d, \"resume_pc\": %d}" a b
  else if kind = Event.tlb_miss then
    Printf.sprintf "{\"vaddr\": %d, \"access\": %d}" a b
  else if kind = Event.hw_walk then Printf.sprintf "{\"page\": %d}" a
  else if kind = Event.flush then
    Printf.sprintf "{\"redirect\": %b}" (a = Event.flush_redirect)
  else if kind = Event.stall_begin then
    Printf.sprintf "{\"cause\": %S, \"cycles\": %d}" (Event.stall_name a) b
  else if kind = Event.call then
    Printf.sprintf "{\"callee\": %d, \"site\": %d}" a b
  else if kind = Event.ret then
    Printf.sprintf "{\"target\": %d, \"site\": %d}" a b
  else if kind = Event.inject then
    Printf.sprintf "{\"class\": %S, \"detail\": %d}"
      (Event.inject_class_name a) b
  else if kind = Event.ecc_correct then
    Printf.sprintf "{\"structure\": %S, \"at\": %d}"
      (Event.ecc_structure_name a) b
  else "{}"

let to_buffer buf ring =
  Buffer.add_string buf "{\"traceEvents\": [\n";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf s
  in
  List.iter
    (fun (tid, name) ->
       emit
         (Printf.sprintf
            "{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, \
             \"name\": \"thread_name\", \"args\": {\"name\": %S}}"
            tid name))
    stage_names;
  (* Pending mode span: set at mode_enter, flushed at mode_exit (or at
     end of stream for a trace that stops inside an mroutine). *)
  let pending = ref None in
  let last = ref 0 in
  let span ~upto =
    match !pending with
    | None -> ()
    | Some (entry, reason, since) ->
      pending := None;
      emit
        (Printf.sprintf
           "{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, \"ts\": %d, \
            \"dur\": %d, \"name\": \"mroutine %d\", \
            \"args\": {\"entry\": %d, \"reason\": %S}}"
           tid_mode since (max 1 (upto - since)) entry entry
           (Event.reason_name reason))
  in
  Ring.iter ring (fun ~cycle ~kind ~a ~b ->
      last := cycle;
      if kind = Event.mode_enter then pending := Some (a, b, cycle)
      else if kind = Event.mode_exit then span ~upto:cycle
      else
        emit
          (Printf.sprintf
             "{\"ph\": \"i\", \"pid\": 1, \"tid\": %d, \"ts\": %d, \
              \"s\": \"t\", \"name\": %S, \"args\": %s}"
             (instant_tid ~kind ~a ~b) cycle (Event.name kind)
             (instant_args ~kind ~a ~b)));
  span ~upto:!last;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\", ";
  Buffer.add_string buf
    (Printf.sprintf
       "\"otherData\": {\"events_recorded\": %d, \"events_dropped\": %d}}\n"
       (Ring.total ring) (Ring.dropped ring))

let to_string ring =
  let buf = Buffer.create 4096 in
  to_buffer buf ring;
  Buffer.contents buf

let write ~path ring =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ring))
