(** Minimal JSON reader.

    Just enough to validate the artifacts this library writes (Chrome
    traces, metrics and benchmark JSON) without external dependencies:
    objects, arrays, strings with the common escapes, numbers, bools,
    null. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Errors carry a character offset. *)

val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup; [None] on missing field or non-object. *)

val to_list : t -> t list
(** [Arr] elements; [] for anything else. *)

val to_num : t -> float option
val to_string : t -> string option
