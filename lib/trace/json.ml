type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then s.[!pos] else '\255' in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n then
      match s.[!pos] with
      | ' ' | '\t' | '\n' | '\r' ->
        advance ();
        skip_ws ()
      | _ -> ()
  in
  let expect c =
    if peek () = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
             if !pos + 4 >= n then fail "bad \\u escape";
             let hex = String.sub s (!pos + 1) 4 in
             (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "bad \\u escape"
              | Some cp ->
                (* Replace non-ASCII code points; validation only. *)
                if cp < 128 then Buffer.add_char buf (Char.chr cp)
                else Buffer.add_char buf '?');
             pos := !pos + 4
           | _ -> fail "bad escape");
          advance ();
          go ()
        | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((key, v) :: acc)
          | '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (members [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        Arr (elements [])
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | _ -> fail "expected a JSON value"
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "JSON error at offset %d: %s" at msg)

let parse_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error e -> Error e

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr l -> l | _ -> []
let to_num = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
