let retire = 0
let mode_enter = 1
let mode_exit = 2
let intercept = 3
let exn = 4
let interrupt = 5
let tlb_miss = 6
let hw_walk = 7
let flush = 8
let stall_begin = 9
let stall_end = 10
let call = 11
let ret = 12
let inject = 13
let ecc_correct = 14
let count = 15

let name = function
  | 0 -> "retire"
  | 1 -> "mode_enter"
  | 2 -> "mode_exit"
  | 3 -> "intercept"
  | 4 -> "exception"
  | 5 -> "interrupt"
  | 6 -> "tlb_miss"
  | 7 -> "hw_walk"
  | 8 -> "flush"
  | 9 -> "stall_begin"
  | 10 -> "stall_end"
  | 11 -> "call"
  | 12 -> "ret"
  | 13 -> "inject"
  | 14 -> "ecc_correct"
  | k -> "event_" ^ string_of_int k

let reason_menter = 0
let reason_menter_trap = 1
let reason_intercept = 2
let reason_exception = 3
let reason_interrupt = 4

let reason_name = function
  | 0 -> "menter"
  | 1 -> "menter_trap"
  | 2 -> "intercept"
  | 3 -> "exception"
  | 4 -> "interrupt"
  | r -> "reason_" ^ string_of_int r

let flush_redirect = 0
let flush_event = 1

let stall_fetch_cache = 0
let stall_data_cache = 1
let stall_mem_latency = 2
let stall_walker = 3
let stall_mram_fetch = 4
let stall_ecc_check = 5
let stall_count = 6

(* Keep in sync with [Inject.class_code] — lib/trace sits below
   lib/inject in the dependency order, so the exporters carry their own
   copy of the fault-class vocabulary (pinned by a test in
   test_inject). *)
let inject_class_name = function
  | 0 -> "mram-code"
  | 1 -> "mram-data"
  | 2 -> "mreg"
  | 3 -> "tlb"
  | 4 -> "tlb-drop"
  | 5 -> "irq-spurious"
  | 6 -> "irq-drop"
  | 7 -> "load"
  | c -> "class_" ^ string_of_int c

let ecc_structure_name = function
  | 0 -> "mram-data"
  | 1 -> "mreg"
  | s -> "structure_" ^ string_of_int s

let stall_name = function
  | 0 -> "fetch_cache"
  | 1 -> "data_cache"
  | 2 -> "mem_latency"
  | 3 -> "walker"
  | 4 -> "mram_fetch"
  | 5 -> "ecc_check"
  | c -> "stall_" ^ string_of_int c
