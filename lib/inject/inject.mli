(** Deterministic fault injection.

    The robustness counterpart of the static mverify pass: a seeded
    {!plan} schedules typed hardware faults — MRAM bit flips, Metal
    register corruption, TLB entry corruption and spurious
    invalidation, spurious/dropped device interrupts, transient load
    data flips — at chosen cycle/pc/mode predicates.  Faults are
    applied between pipeline cycles through the narrow mutation APIs
    on {!Metal_hw.Mram}/{!Metal_hw.Mregs}/{!Metal_hw.Tlb}/
    {!Metal_hw.Intc}/{!Metal_hw.Phys_mem} (never by reaching into
    record internals), each application emits a
    [Metal_trace.Event.inject] event through the machine's probe, and
    every run is classified against a fault-free oracle run of the
    same workload:

    - {e Masked}: architectural state (GPRs, Metal registers, memory,
      MRAM data, console output, halt) converges with the oracle;
      timing divergence alone is still Masked.
    - {e Corrected}: converged, and the SECDED ECC layer
      ({!Metal_hw.Ecc}, armed via {!Metal_cpu.Config.t.ecc}) repaired
      at least one consumed single-bit upset along the way.
    - {e Detected}: the machine raised a typed fault the oracle did
      not, or the mverify-style MRAM integrity re-check
      ({!Metal_cpu.Machine.mram_integrity_ok}) tripped on Metal-mode
      entry.
    - {e Silent_corruption}: architectural divergence with no
      detection — the bug class this subsystem exists to find.

    Campaigns fan individual runs out over {!Metal_fleet.Fleet.map};
    every run is reproducible from [(seed, run index)] alone, so
    campaign results are bit-identical for any domain count. *)

(** {1 Seeded PRNG} *)

(** Splitmix64.  [create ~seed ~stream] yields a stream fully
    determined by the pair — campaigns use the run index as the
    stream, which is what makes every run independently replayable. *)
module Prng : sig
  type t

  val create : seed:int -> stream:int -> t
  val next : t -> int64
  val int : t -> bound:int -> int
  (** Uniform in [\[0, bound)]; [bound] must be positive. *)

  val bool : t -> bool
  val pick : t -> 'a list -> 'a
  (** Uniform element of a non-empty list. *)
end

(** {1 Fault vocabulary} *)

type fault_class =
  | Mram_code_flip  (** single-bit flip of an MRAM code-segment word *)
  | Mram_data_flip  (** single-bit flip of an MRAM data-segment word *)
  | Mreg_flip  (** single-bit flip of a Metal register *)
  | Tlb_corrupt  (** single-bit flip of a TLB entry's packed form *)
  | Tlb_drop  (** spurious invalidation of one TLB slot *)
  | Irq_spurious  (** spurious device interrupt (pending bit raised) *)
  | Irq_drop  (** dropped device interrupt (pending bit cleared) *)
  | Load_flip
      (** transient single-bit flip of a physical memory word, visible
          for exactly one cycle (restored afterwards unless the
          program overwrote the word) *)

val all_classes : fault_class list

val class_to_string : fault_class -> string
val class_of_string : string -> (fault_class, string) result
(** Inverse of {!class_to_string}; the error message lists every valid
    class name. *)

val class_code : fault_class -> int
(** Stable dense code, the [a] payload of [Metal_trace.Event.inject]. *)

type fault =
  | Mram_code of { word : int; bit : int }
  | Mram_data of { addr : int; bit : int }  (** word-aligned byte offset *)
  | Mreg of { m : int; bit : int }
  | Tlb_entry of { slot : int; bit : int }  (** see {!Metal_hw.Tlb.corrupt_slot} *)
  | Tlb_inval of { slot : int }
  | Irq_raise of { irq : int }
  | Irq_clear of { irq : int }
  | Load of { addr : int; bit : int }  (** word-aligned physical address *)

val fault_class : fault -> fault_class

val fault_detail : fault -> int
(** Packed location/bit, the [b] payload of [Metal_trace.Event.inject]. *)

val fault_to_string : fault -> string

(** Triggers are evaluated at cycle boundaries (between
    [Pipeline.step] calls); each injection fires at the first boundary
    whose predicate holds, exactly once. *)
type trigger =
  | At_cycle of int  (** first boundary with [cycles >= n] *)
  | At_user_cycle of int  (** … and the fetch unit in normal mode *)
  | At_metal_cycle of int  (** … and the fetch unit in Metal mode *)
  | At_pc of { pc : int; after : int }
      (** first boundary with [cycles >= after] and [fetch_pc = pc] *)

val trigger_to_string : trigger -> string

type injection = { trigger : trigger; fault : fault }
type plan = injection list

val generate :
  Prng.t ->
  config:Metal_cpu.Config.t ->
  classes:fault_class list ->
  window:int * int ->
  user_only:bool ->
  plan
(** Draw a single-injection plan: a class uniform in [classes], a
    fault location uniform in that class's space (sized from
    [config]), and an [At_cycle] (or, with [user_only],
    [At_user_cycle]) trigger uniform in the inclusive cycle
    [window]. *)

(** {1 Architectural snapshots and the differential oracle} *)

module Snapshot : sig
  type t = {
    halt : Metal_cpu.Machine.halt option;
        (** [None] when the run was stopped before halting (integrity
            trip, fuel exhaustion) *)
    regs : Word.t array;  (** the 32 GPRs *)
    mregs : Word.t array;  (** the 32 Metal registers *)
    mram_data_hash : int;
    page_hashes : int array;  (** per-4KiB physical page FNV hash *)
    console : string;
    stats : Metal_cpu.Stats.t;  (** informational; never part of {!diff} *)
  }

  val take :
    Metal_cpu.Machine.t ->
    console:string ->
    halt:Metal_cpu.Machine.halt option ->
    t

  val diff : oracle:t -> injected:t -> string list
  (** Diverging architectural components, e.g. ["halt"; "reg a0";
      "mreg m10"; "page 0x003"; "mram-data"; "console"] — empty means
      architecturally identical.  Timing ([stats]) is deliberately
      excluded: a fault that only costs cycles is Masked. *)
end

(** {1 Running a plan} *)

type stop =
  | Halted of Metal_cpu.Machine.halt
  | Fuel_exhausted
  | Integrity_trip of { cycle : int }
      (** the MRAM integrity re-check failed on a normal→Metal mode
          transition; the run stops before the corrupted mroutine code
          can retire *)

val run_plan :
  ?integrity:bool ->
  Metal_cpu.Machine.t ->
  fuel:int ->
  plan:plan ->
  stop * int
(** Drive the machine one cycle at a time for at most [fuel] cycles,
    applying each of [plan]'s injections at its trigger boundary
    through the narrow device APIs and emitting one
    [Metal_trace.Event.inject] per application.  With
    [integrity] (default false), {!Metal_cpu.Machine.mram_integrity_ok}
    is re-checked on every normal→Metal transition of the fetch unit.
    Returns the stop reason and the number of injections actually
    applied (a trigger that never fires, or a fault aimed at an empty
    TLB slot, does not count).  With an empty [plan] the run is
    bit-identical to [Pipeline.run] — state, stats and event stream
    (the zero-fault property in [test_inject]). *)

type detection =
  | Fault_halt of Metal_cpu.Machine.halt
  | Integrity_menter

type verdict =
  | Masked
  | Corrected of { count : int }
      (** converged with the oracle {e and} the run's SECDED layer
          repaired [count] consumed upsets ([ecc_correct] events) on
          the way — the fault was real, reached a consumption point,
          and the hardware fixed it *)
  | Detected of detection
  | Silent of string list  (** the diverging components *)

val verdict_to_string : verdict -> string
(** ["masked"] / ["corrected"] / ["detected"] / ["silent_corruption"]. *)

val verdict_detail : verdict -> string

val classify :
  ?corrections:int ->
  oracle:Snapshot.t ->
  stop:stop ->
  snap:Snapshot.t ->
  unit ->
  verdict
(** The robustness semantics.  An integrity trip or a fault halt
    differing from the oracle's is [Detected]; otherwise an empty
    {!Snapshot.diff} is [Corrected] when [corrections] (the run's
    [ecc_correct] event count, default 0) is positive, [Masked] when
    it is zero, and anything else (including a hang — fuel exhausted
    while the oracle halted) is [Silent]. *)

(** {1 Campaigns} *)

type workload = {
  label : string;
  config : Metal_cpu.Config.t;
  prepare : Metal_core.System.t -> unit;
      (** loads program/mcode, installs handlers, sets the start pc;
          runs once per campaign run on a fresh system (also in fleet
          worker domains — it must only touch its own system).
          Raises [Failure] on setup errors. *)
  fuel : int;
}

val workload :
  ?config:Metal_cpu.Config.t ->
  ?fuel:int ->
  label:string ->
  (Metal_core.System.t -> unit) ->
  workload
(** Defaults: {!Metal_cpu.Config.default}, fuel 1M cycles. *)

type spec = {
  seed : int;
  runs : int;
  classes : fault_class list;
  integrity : bool;
      (** arm the MRAM integrity re-check on Metal-mode entry *)
  user_only : bool;  (** restrict triggers to normal-mode boundaries *)
}

val default_spec : spec
(** seed 1, 16 runs, every class, integrity on, any-mode triggers. *)

val spec_of_string : string -> (spec, string) result
(** Parse a [--inject] argument: comma-separated
    [seed:N], [runs:N], [classes:NAME+NAME+…] (or [class:…]),
    [integrity], [no-integrity], [user-only] items over
    {!default_spec}.  Unknown keys and unknown class names are loud
    errors listing the valid spellings. *)

val spec_to_string : spec -> string

type run_record = {
  index : int;  (** run index = PRNG stream; replays the run *)
  injection : injection;
  applied : int;  (** injections applied (0 or 1 for generated plans) *)
  events : int;  (** [inject] events observed by the run's collector *)
  ecc_corrected : int;
      (** [ecc_correct] events observed — SECDED single-bit repairs at
          consumption points; always 0 when the workload ran without
          {!Metal_cpu.Config.t.ecc} *)
  verdict : verdict;
  run_cycles : int;
}

type campaign = {
  label : string;
  spec : spec;
  ecc : bool;  (** the workload config had the SECDED layer armed *)
  oracle_cycles : int;
  oracle_halt : Metal_cpu.Machine.halt;
  records : run_record array;
}

val run_campaign :
  ?domains:int -> spec:spec -> workload -> (campaign, string) result
(** Run the fault-free oracle once, then [spec.runs] injected runs of
    the workload fanned out over {!Metal_fleet.Fleet.map}.  Run [i]
    derives its plan from [Prng.create ~seed:spec.seed ~stream:i] with
    the trigger window [(1, oracle_cycles)], so the campaign result is
    a pure function of [(spec, workload)] — bit-identical for any
    [domains].  [Error] when the oracle does not halt within the fuel
    or a run crashes. *)

val summary : campaign -> int * int * int * int
(** (masked, corrected, detected, silent-corruption) run counts. *)

val to_json : campaign -> string
(** Deterministic verdict document, schema ["metal-inject-v1"]:
    spec echo, summary and per-class verdict counts, and one record
    per run (class, trigger, fault, applied/event counts, verdict,
    detail, cycles).  The ECC fields (["ecc": true], ["corrected"]
    counts, per-record ["ecc_corrected"]) appear only when the
    campaign ran with the SECDED layer armed, so ECC-off documents
    are byte-identical to the pre-ECC schema.  Validated by
    [trace_check inject]. *)

val pp : Format.formatter -> campaign -> unit
(** Human verdict summary: rate table plus one line per non-masked
    run. *)
