(* Deterministic fault injection: seeded plans, typed faults applied
   through the narrow device mutation APIs, and verdicts against a
   fault-free oracle.  See inject.mli for the semantics. *)

module Machine = Metal_cpu.Machine
module Pipeline = Metal_cpu.Pipeline
module Stats = Metal_cpu.Stats
module Config = Metal_cpu.Config
module System = Metal_core.System
module Ev = Metal_trace.Event
module Fleet = Metal_fleet.Fleet

(* ------------------------------------------------------------------ *)
(* Splitmix64                                                          *)

module Prng = struct
  type t = { mutable state : int64 }

  let golden = 0x9E3779B97F4A7C15L

  let mix z =
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let create ~seed ~stream =
    (* Mix both halves so nearby (seed, stream) pairs land far apart;
       the stream term gets an extra golden offset so (s, 0) and (0, s)
       differ. *)
    { state =
        Int64.logxor
          (mix (Int64.of_int seed))
          (mix (Int64.add (Int64.of_int stream) golden));
    }

  let next t =
    t.state <- Int64.add t.state golden;
    mix t.state

  let int t ~bound =
    if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let bool t = Int64.logand (next t) 1L = 1L

  let pick t xs =
    match xs with
    | [] -> invalid_arg "Prng.pick: empty list"
    | _ -> List.nth xs (int t ~bound:(List.length xs))
end

(* ------------------------------------------------------------------ *)
(* Fault vocabulary                                                    *)

type fault_class =
  | Mram_code_flip
  | Mram_data_flip
  | Mreg_flip
  | Tlb_corrupt
  | Tlb_drop
  | Irq_spurious
  | Irq_drop
  | Load_flip

let all_classes =
  [ Mram_code_flip; Mram_data_flip; Mreg_flip; Tlb_corrupt; Tlb_drop;
    Irq_spurious; Irq_drop; Load_flip ]

let class_to_string = function
  | Mram_code_flip -> "mram-code"
  | Mram_data_flip -> "mram-data"
  | Mreg_flip -> "mreg"
  | Tlb_corrupt -> "tlb"
  | Tlb_drop -> "tlb-drop"
  | Irq_spurious -> "irq-spurious"
  | Irq_drop -> "irq-drop"
  | Load_flip -> "load"

let class_of_string s =
  match
    List.find_opt (fun c -> class_to_string c = s) all_classes
  with
  | Some c -> Ok c
  | None ->
    Error
      (Printf.sprintf "unknown fault class %S (valid: %s)" s
         (String.concat ", " (List.map class_to_string all_classes)))

let class_code = function
  | Mram_code_flip -> 0
  | Mram_data_flip -> 1
  | Mreg_flip -> 2
  | Tlb_corrupt -> 3
  | Tlb_drop -> 4
  | Irq_spurious -> 5
  | Irq_drop -> 6
  | Load_flip -> 7

type fault =
  | Mram_code of { word : int; bit : int }
  | Mram_data of { addr : int; bit : int }
  | Mreg of { m : int; bit : int }
  | Tlb_entry of { slot : int; bit : int }
  | Tlb_inval of { slot : int }
  | Irq_raise of { irq : int }
  | Irq_clear of { irq : int }
  | Load of { addr : int; bit : int }

let fault_class = function
  | Mram_code _ -> Mram_code_flip
  | Mram_data _ -> Mram_data_flip
  | Mreg _ -> Mreg_flip
  | Tlb_entry _ -> Tlb_corrupt
  | Tlb_inval _ -> Tlb_drop
  | Irq_raise _ -> Irq_spurious
  | Irq_clear _ -> Irq_drop
  | Load _ -> Load_flip

let fault_detail = function
  | Mram_code { word; bit } -> (word lsl 5) lor bit
  | Mram_data { addr; bit } -> (addr lsl 5) lor bit
  | Mreg { m; bit } -> (m lsl 5) lor bit
  | Tlb_entry { slot; bit } -> (slot lsl 6) lor bit
  | Tlb_inval { slot } -> slot
  | Irq_raise { irq } -> irq
  | Irq_clear { irq } -> irq
  | Load { addr; bit } -> (addr lsl 5) lor bit

let fault_to_string = function
  | Mram_code { word; bit } -> Printf.sprintf "mram-code word %d bit %d" word bit
  | Mram_data { addr; bit } -> Printf.sprintf "mram-data 0x%x bit %d" addr bit
  | Mreg { m; bit } -> Printf.sprintf "mreg m%d bit %d" m bit
  | Tlb_entry { slot; bit } -> Printf.sprintf "tlb slot %d bit %d" slot bit
  | Tlb_inval { slot } -> Printf.sprintf "tlb-drop slot %d" slot
  | Irq_raise { irq } -> Printf.sprintf "spurious irq %d" irq
  | Irq_clear { irq } -> Printf.sprintf "dropped irq %d" irq
  | Load { addr; bit } -> Printf.sprintf "load 0x%x bit %d" addr bit

type trigger =
  | At_cycle of int
  | At_user_cycle of int
  | At_metal_cycle of int
  | At_pc of { pc : int; after : int }

let trigger_to_string = function
  | At_cycle n -> Printf.sprintf "cycle>=%d" n
  | At_user_cycle n -> Printf.sprintf "user-cycle>=%d" n
  | At_metal_cycle n -> Printf.sprintf "metal-cycle>=%d" n
  | At_pc { pc; after } -> Printf.sprintf "pc=0x%x after %d" pc after

type injection = { trigger : trigger; fault : fault }
type plan = injection list

(* Meaningful bit positions of a packed TLB entry: data word bits
   (r/w/x, pkey, ppn) then tag word bits offset by 32 (global, asid,
   vpn).  Bits the packed layout skips would be silent no-ops. *)
let tlb_bits =
  [ 1; 2; 3; 5; 6; 7; 8 ]
  @ List.init 20 (fun i -> 12 + i)
  @ (32 :: List.init 8 (fun i -> 36 + i))
  @ List.init 20 (fun i -> 44 + i)

let generate prng ~config ~classes ~window:(lo, hi) ~user_only =
  let cls = Prng.pick prng classes in
  let cycle = lo + Prng.int prng ~bound:(max 1 (hi - lo + 1)) in
  let trigger = if user_only then At_user_cycle cycle else At_cycle cycle in
  let bit32 () = Prng.int prng ~bound:32 in
  let fault =
    match cls with
    | Mram_code_flip ->
      Mram_code
        { word = Prng.int prng ~bound:config.Config.mram_code_words;
          bit = bit32 () }
    | Mram_data_flip ->
      Mram_data
        { addr = 4 * Prng.int prng ~bound:(config.Config.mram_data_bytes / 4);
          bit = bit32 () }
    | Mreg_flip ->
      Mreg { m = Prng.int prng ~bound:Reg.mreg_count; bit = bit32 () }
    | Tlb_corrupt ->
      Tlb_entry
        { slot = Prng.int prng ~bound:config.Config.tlb_entries;
          bit = Prng.pick prng tlb_bits }
    | Tlb_drop ->
      Tlb_inval { slot = Prng.int prng ~bound:config.Config.tlb_entries }
    | Irq_spurious ->
      Irq_raise { irq = Prng.int prng ~bound:Metal_hw.Intc.lines }
    | Irq_drop ->
      Irq_clear { irq = Prng.int prng ~bound:Metal_hw.Intc.lines }
    | Load_flip ->
      Load
        { addr = 4 * Prng.int prng ~bound:(config.Config.mem_size / 4);
          bit = bit32 () }
  in
  [ { trigger; fault } ]

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

module Snapshot = struct
  type t = {
    halt : Machine.halt option;
    regs : Word.t array;
    mregs : Word.t array;
    mram_data_hash : int;
    page_hashes : int array;
    console : string;
    stats : Stats.t;
  }

  let page_size = 4096

  let take (m : Machine.t) ~console ~halt =
    let mem = Metal_hw.Bus.memory m.Machine.bus in
    let size = Metal_hw.Phys_mem.size mem in
    let pages = (size + page_size - 1) / page_size in
    let page_hashes =
      Array.init pages (fun p ->
          let pos = p * page_size in
          Metal_hw.Phys_mem.hash mem ~pos ~len:(min page_size (size - pos)))
    in
    let mram = m.Machine.mram in
    let data_words = Metal_hw.Mram.data_bytes mram / 4 in
    let mram_data_hash =
      let h = ref 0x811c9dc5 in
      for i = 0 to data_words - 1 do
        let w =
          match Metal_hw.Mram.load_word mram ~addr:(4 * i) with
          | Some w -> w
          | None -> 0
        in
        h := (!h lxor w) * 0x01000193 land max_int
      done;
      !h
    in
    {
      halt;
      regs = Array.init 32 (fun r -> Machine.get_reg m r);
      mregs = Metal_hw.Mregs.dump m.Machine.mregs;
      mram_data_hash;
      page_hashes;
      console;
      stats = Stats.copy m.Machine.stats;
    }

  let halt_to_string = function
    | None -> "(still running)"
    | Some h -> Machine.halted_to_string h

  let diff ~oracle ~injected =
    let ds = ref [] in
    let add fmt = Printf.ksprintf (fun s -> ds := s :: !ds) fmt in
    if oracle.halt <> injected.halt then
      add "halt (%s vs %s)"
        (halt_to_string oracle.halt)
        (halt_to_string injected.halt);
    for r = 31 downto 1 do
      if oracle.regs.(r) <> injected.regs.(r) then
        add "reg %s" (Reg.to_string r)
    done;
    for m = Reg.mreg_count - 1 downto 0 do
      if oracle.mregs.(m) <> injected.mregs.(m) then add "mreg m%d" m
    done;
    if oracle.mram_data_hash <> injected.mram_data_hash then add "mram-data";
    let pages = ref [] in
    for p = Array.length oracle.page_hashes - 1 downto 0 do
      if
        p < Array.length injected.page_hashes
        && oracle.page_hashes.(p) <> injected.page_hashes.(p)
      then pages := p :: !pages
    done;
    (match !pages with
     | [] -> ()
     | ps ->
       add "%s"
         (String.concat ", "
            (List.map (Printf.sprintf "page 0x%03x") ps)));
    if oracle.console <> injected.console then add "console";
    List.rev !ds
end

(* ------------------------------------------------------------------ *)
(* The injector loop                                                   *)

type stop =
  | Halted of Machine.halt
  | Fuel_exhausted
  | Integrity_trip of { cycle : int }

let due (m : Machine.t) = function
  | At_cycle n -> m.Machine.stats.Stats.cycles >= n
  | At_user_cycle n ->
    m.Machine.stats.Stats.cycles >= n && not m.Machine.fetch_metal
  | At_metal_cycle n ->
    m.Machine.stats.Stats.cycles >= n && m.Machine.fetch_metal
  | At_pc { pc; after } ->
    m.Machine.stats.Stats.cycles >= after && m.Machine.fetch_pc = pc

(* Apply one fault through the narrow device APIs.  Returns
   [Some restore] for transient faults ([Load]); [None] means nothing
   to undo.  Raises nothing: out-of-range locations simply do not
   apply. *)
let apply (m : Machine.t) fault =
  let mem = Metal_hw.Bus.memory m.Machine.bus in
  match fault with
  | Mram_code { word; bit } ->
    (Metal_hw.Mram.corrupt_code_bit m.Machine.mram ~word ~bit, None)
  | Mram_data { addr; bit } ->
    (Metal_hw.Mram.corrupt_data_bit m.Machine.mram ~addr ~bit, None)
  | Mreg { m = mr; bit } ->
    Metal_hw.Mregs.flip_bit m.Machine.mregs mr ~bit;
    (true, None)
  | Tlb_entry { slot; bit } ->
    (Metal_hw.Tlb.corrupt_slot m.Machine.tlb ~slot ~bit, None)
  | Tlb_inval { slot } -> (Metal_hw.Tlb.drop_slot m.Machine.tlb ~slot, None)
  | Irq_raise { irq } ->
    Metal_hw.Intc.raise_irq m.Machine.intc irq;
    (true, None)
  | Irq_clear { irq } ->
    let was = Metal_hw.Intc.pending m.Machine.intc land (1 lsl irq) <> 0 in
    Metal_hw.Intc.clear m.Machine.intc ~mask:(1 lsl irq);
    (was, None)
  | Load { addr; bit } ->
    if not (Metal_hw.Phys_mem.in_range mem ~addr ~width:4) then (false, None)
    else begin
      let original = Metal_hw.Phys_mem.read32 mem addr in
      let corrupted = Metal_hw.Phys_mem.corrupt_bit mem ~addr ~bit in
      (true, Some (addr, corrupted, original))
    end

let run_plan ?(integrity = false) (m : Machine.t) ~fuel ~plan =
  let mem = Metal_hw.Bus.memory m.Machine.bus in
  let pending = Array.of_list plan in
  let fired = Array.make (Array.length pending) false in
  let applied = ref 0 in
  let restores = ref [] in
  let deadline = m.Machine.stats.Stats.cycles + fuel in
  let prev_metal = ref m.Machine.fetch_metal in
  let rec loop () =
    match m.Machine.halted with
    | Some h -> Halted h
    | None ->
      if m.Machine.stats.Stats.cycles >= deadline then Fuel_exhausted
      else begin
        Array.iteri
          (fun i inj ->
             if not fired.(i) && due m inj.trigger then begin
               fired.(i) <- true;
               let ok, restore = apply m inj.fault in
               if ok then begin
                 incr applied;
                 Machine.emit m Ev.inject
                   (class_code (fault_class inj.fault))
                   (fault_detail inj.fault);
                 match restore with
                 | Some r -> restores := r :: !restores
                 | None -> ()
               end
             end)
          pending;
        Pipeline.step m;
        (* Transient faults last exactly one cycle: put the original
           word back unless the program overwrote it during the step
           (the corrupted value is gone either way). *)
        List.iter
          (fun (addr, corrupted, original) ->
             if Metal_hw.Phys_mem.read32 mem addr = corrupted then
               Metal_hw.Phys_mem.write32 mem addr original)
          !restores;
        restores := [];
        let now_metal = m.Machine.fetch_metal in
        let entered = now_metal && not !prev_metal in
        prev_metal := now_metal;
        if integrity && entered && not (Machine.mram_integrity_ok m) then
          Integrity_trip { cycle = m.Machine.stats.Stats.cycles }
        else loop ()
      end
  in
  let stop = loop () in
  (stop, !applied)

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)

type detection = Fault_halt of Machine.halt | Integrity_menter

type verdict =
  | Masked
  | Corrected of { count : int }
  | Detected of detection
  | Silent of string list

let verdict_to_string = function
  | Masked -> "masked"
  | Corrected _ -> "corrected"
  | Detected _ -> "detected"
  | Silent _ -> "silent_corruption"

let verdict_detail = function
  | Masked -> ""
  | Corrected { count } ->
    Printf.sprintf "secded corrected %d consumption%s" count
      (if count = 1 then "" else "s")
  | Detected Integrity_menter -> "mram integrity re-check failed on menter"
  | Detected (Fault_halt h) -> Machine.halted_to_string h
  | Silent ds -> String.concat "; " ds

(* [corrections] is the run's [ecc_correct] event count: with ECC
   armed, a run that converges with the oracle *because* the decoder
   repaired the upset at a consumption point is [Corrected], not
   [Masked] (the fault was consumed, just survivably).  A repaired run
   that still diverges stays [Silent] — correction is not absolution. *)
let classify ?(corrections = 0) ~oracle ~stop ~snap () =
  match stop with
  | Integrity_trip _ -> Detected Integrity_menter
  | Fuel_exhausted ->
    Silent [ "hang: fuel exhausted while the oracle halted" ]
  | Halted h ->
    let is_fault =
      match h with
      | Machine.Halt_fault _ | Machine.Halt_metal_fault _ -> true
      | Machine.Halt_ebreak _ | Machine.Halt_out_of_cycles _ -> false
    in
    if is_fault && oracle.Snapshot.halt <> Some h then Detected (Fault_halt h)
    else begin
      match Snapshot.diff ~oracle ~injected:snap with
      | [] -> if corrections > 0 then Corrected { count = corrections } else Masked
      | ds -> Silent ds
    end

(* ------------------------------------------------------------------ *)
(* Campaigns                                                           *)

type workload = {
  label : string;
  config : Config.t;
  prepare : System.t -> unit;
  fuel : int;
}

let workload ?(config = Config.default) ?(fuel = 1_000_000) ~label prepare =
  { label; config; prepare; fuel }

type spec = {
  seed : int;
  runs : int;
  classes : fault_class list;
  integrity : bool;
  user_only : bool;
}

let default_spec =
  { seed = 1; runs = 16; classes = all_classes; integrity = true;
    user_only = false }

let spec_to_string s =
  Printf.sprintf "seed:%d,runs:%d,classes:%s%s%s" s.seed s.runs
    (String.concat "+" (List.map class_to_string s.classes))
    (if s.integrity then ",integrity" else ",no-integrity")
    (if s.user_only then ",user-only" else "")

let spec_of_string str =
  let ( let* ) = Result.bind in
  let int_field key v =
    match int_of_string_opt v with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "%s: expected a non-negative integer, got %S" key v)
  in
  let parse_classes v =
    let names = String.split_on_char '+' v in
    let* classes =
      List.fold_left
        (fun acc name ->
           let* acc = acc in
           let* c = class_of_string name in
           Ok (c :: acc))
        (Ok []) names
    in
    match List.rev classes with
    | [] -> Error "classes: empty list"
    | cs -> Ok cs
  in
  let items =
    List.filter (fun s -> s <> "") (String.split_on_char ',' str)
  in
  if items = [] then Error "empty --inject spec"
  else
    List.fold_left
      (fun acc item ->
         let* spec = acc in
         match String.index_opt item ':' with
         | Some i ->
           let key = String.sub item 0 i
           and v = String.sub item (i + 1) (String.length item - i - 1) in
           (match key with
            | "seed" ->
              let* n = int_field "seed" v in
              Ok { spec with seed = n }
            | "runs" ->
              let* n = int_field "runs" v in
              if n = 0 then Error "runs: must be positive"
              else Ok { spec with runs = n }
            | "classes" | "class" ->
              let* cs = parse_classes v in
              Ok { spec with classes = cs }
            | k ->
              Error
                (Printf.sprintf
                   "unknown --inject key %S (valid: seed:N, runs:N, \
                    classes:NAME+NAME, integrity, no-integrity, user-only)"
                   k))
         | None ->
           (match item with
            | "integrity" -> Ok { spec with integrity = true }
            | "no-integrity" -> Ok { spec with integrity = false }
            | "user-only" -> Ok { spec with user_only = true }
            | k ->
              Error
                (Printf.sprintf
                   "unknown --inject item %S (valid: seed:N, runs:N, \
                    classes:NAME+NAME, integrity, no-integrity, user-only)"
                   k)))
      (Ok default_spec) items

type run_record = {
  index : int;
  injection : injection;
  applied : int;
  events : int;
  ecc_corrected : int;
  verdict : verdict;
  run_cycles : int;
}

type campaign = {
  label : string;
  spec : spec;
  ecc : bool;
  oracle_cycles : int;
  oracle_halt : Machine.halt;
  records : run_record array;
}

let build (w : workload) =
  let sys = System.create ~config:w.config () in
  w.prepare sys;
  sys

let run_one ~spec ~(w : workload) ~oracle ~oracle_cycles index =
  let prng = Prng.create ~seed:spec.seed ~stream:index in
  let plan =
    generate prng ~config:w.config ~classes:spec.classes
      ~window:(1, oracle_cycles) ~user_only:spec.user_only
  in
  let sys = build w in
  let m = sys.System.machine in
  (* A small collector ring suffices: verdicts use only the event
     counters, which are exact regardless of ring drops. *)
  let c = Metal_trace.Collector.create ~capacity:1024 () in
  Machine.set_probe m (Metal_trace.Collector.probe c);
  let stop, applied = run_plan ~integrity:spec.integrity m ~fuel:w.fuel ~plan in
  let halt = match stop with Halted h -> Some h | _ -> None in
  let snap = Snapshot.take m ~console:(System.console_output sys) ~halt in
  let counts = (Metal_trace.Collector.metrics c).Metal_trace.Metrics.event_counts in
  let count k = match List.assoc_opt k counts with Some n -> n | None -> 0 in
  let events = count "inject" in
  let ecc_corrected = count "ecc_correct" in
  let verdict = classify ~corrections:ecc_corrected ~oracle ~stop ~snap () in
  {
    index;
    injection = List.hd plan;
    applied;
    events;
    ecc_corrected;
    verdict;
    run_cycles = snap.Snapshot.stats.Stats.cycles;
  }

let run_campaign ?domains ~spec (w : workload) =
  match
    let sys = build w in
    let m = sys.System.machine in
    let stop, _ = run_plan m ~fuel:w.fuel ~plan:[] in
    (stop, sys)
  with
  | exception Failure e -> Error (Printf.sprintf "%s: setup: %s" w.label e)
  | (Fuel_exhausted | Integrity_trip _), _ ->
    Error
      (Printf.sprintf "%s: fault-free oracle did not halt within %d cycles"
         w.label w.fuel)
  | Halted oracle_halt, sys ->
    let m = sys.System.machine in
    let oracle =
      Snapshot.take m ~console:(System.console_output sys)
        ~halt:(Some oracle_halt)
    in
    let oracle_cycles = max 1 oracle.Snapshot.stats.Stats.cycles in
    let results =
      Fleet.map ?domains
        (run_one ~spec ~w ~oracle ~oracle_cycles)
        (Array.init spec.runs (fun i -> i))
    in
    let err = ref None in
    let records =
      Array.mapi
        (fun i r ->
           match r with
           | Ok r -> r
           | Error e ->
             if !err = None then
               err := Some (Printf.sprintf "%s: run %d crashed: %s" w.label i e);
             { index = i;
               injection = { trigger = At_cycle 0; fault = Mreg { m = 0; bit = 0 } };
               applied = 0; events = 0; ecc_corrected = 0; verdict = Masked;
               run_cycles = 0 })
        results
    in
    (match !err with
     | Some e -> Error e
     | None ->
       Ok
         { label = w.label; spec; ecc = w.config.Config.ecc; oracle_cycles;
           oracle_halt; records })

let summary c =
  Array.fold_left
    (fun (m, co, d, s) r ->
       match r.verdict with
       | Masked -> (m + 1, co, d, s)
       | Corrected _ -> (m, co + 1, d, s)
       | Detected _ -> (m, co, d + 1, s)
       | Silent _ -> (m, co, d, s + 1))
    (0, 0, 0, 0) c.records

(* ------------------------------------------------------------------ *)
(* JSON ("metal-inject-v1") and the human summary                      *)

let per_class c =
  List.map
    (fun cls ->
       let count p =
         Array.fold_left
           (fun acc r ->
              if fault_class r.injection.fault = cls && p r.verdict then
                acc + 1
              else acc)
           0 c.records
       in
       ( cls,
         count (fun _ -> true),
         count (function Masked -> true | _ -> false),
         count (function Corrected _ -> true | _ -> false),
         count (function Detected _ -> true | _ -> false),
         count (function Silent _ -> true | _ -> false) ))
    c.spec.classes

(* ECC-off documents must stay byte-identical to the pre-ECC format:
   every ECC field ("ecc", the "corrected" counts, per-record
   "ecc_corrected") is emitted only when the campaign ran with ECC
   armed. *)
let to_json c =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let masked, corrected, detected, silent = summary c in
  add "{\n  \"schema\": \"metal-inject-v1\",\n";
  add "  \"label\": %S,\n" c.label;
  add "  \"seed\": %d,\n  \"runs\": %d,\n" c.spec.seed c.spec.runs;
  add "  \"classes\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun cls -> Printf.sprintf "%S" (class_to_string cls))
          c.spec.classes));
  add "  \"integrity\": %b,\n  \"user_only\": %b,\n" c.spec.integrity
    c.spec.user_only;
  if c.ecc then add "  \"ecc\": true,\n";
  add "  \"oracle_cycles\": %d,\n" c.oracle_cycles;
  add "  \"oracle_halt\": %S,\n" (Machine.halted_to_string c.oracle_halt);
  add "  \"summary\": {\"masked\": %d, %s\"detected\": %d, \
       \"silent_corruption\": %d},\n"
    masked
    (if c.ecc then Printf.sprintf "\"corrected\": %d, " corrected else "")
    detected silent;
  add "  \"per_class\": [\n";
  let pcs = per_class c in
  List.iteri
    (fun i (cls, runs, m, co, d, s) ->
       add
         "    {\"class\": %S, \"runs\": %d, \"masked\": %d, %s\"detected\": \
          %d, \"silent_corruption\": %d}%s\n"
         (class_to_string cls) runs m
         (if c.ecc then Printf.sprintf "\"corrected\": %d, " co else "")
         d s
         (if i = List.length pcs - 1 then "" else ","))
    pcs;
  add "  ],\n  \"records\": [\n";
  Array.iteri
    (fun i r ->
       add
         "    {\"index\": %d, \"class\": %S, \"trigger\": %S, \"fault\": \
          %S, \"applied\": %d, \"events\": %d, %s\"verdict\": %S, \
          \"detail\": %S, \"cycles\": %d}%s\n"
         r.index
         (class_to_string (fault_class r.injection.fault))
         (trigger_to_string r.injection.trigger)
         (fault_to_string r.injection.fault)
         r.applied r.events
         (if c.ecc then Printf.sprintf "\"ecc_corrected\": %d, " r.ecc_corrected
          else "")
         (verdict_to_string r.verdict)
         (verdict_detail r.verdict)
         r.run_cycles
         (if i = Array.length c.records - 1 then "" else ","))
    c.records;
  add "  ]\n}\n";
  Buffer.contents buf

let pp fmt c =
  let masked, corrected, detected, silent = summary c in
  let total = Array.length c.records in
  let pct n =
    if total = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int total
  in
  Format.fprintf fmt
    "campaign %s: %s%s@\noracle: %s (%d cycles)@\n" c.label
    (spec_to_string c.spec)
    (if c.ecc then " [ecc]" else "")
    (Machine.halted_to_string c.oracle_halt)
    c.oracle_cycles;
  Format.fprintf fmt "verdict              runs    rate@\n";
  Format.fprintf fmt "masked             %6d  %5.1f%%@\n" masked (pct masked);
  if c.ecc then
    Format.fprintf fmt "corrected          %6d  %5.1f%%@\n" corrected
      (pct corrected);
  Format.fprintf fmt "detected           %6d  %5.1f%%@\n" detected
    (pct detected);
  Format.fprintf fmt "silent corruption  %6d  %5.1f%%@\n" silent (pct silent);
  Array.iter
    (fun r ->
       match r.verdict with
       | Masked -> ()
       | v ->
         Format.fprintf fmt "  [%d] %s @@ %s -> %s (%s)@\n" r.index
           (fault_to_string r.injection.fault)
           (trigger_to_string r.injection.trigger)
           (verdict_to_string v) (verdict_detail v))
    c.records
