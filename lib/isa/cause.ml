type t =
  | Illegal_instruction
  | Misaligned_fetch
  | Misaligned_load
  | Misaligned_store
  | Page_fault_fetch
  | Page_fault_load
  | Page_fault_store
  | Ecall
  | Breakpoint
  | Pkey_violation_load
  | Pkey_violation_store
  | Access_fault
  | Ecc_uncorrectable

let all =
  [ Illegal_instruction; Misaligned_fetch; Misaligned_load;
    Misaligned_store; Page_fault_fetch; Page_fault_load;
    Page_fault_store; Ecall; Breakpoint; Pkey_violation_load;
    Pkey_violation_store; Access_fault; Ecc_uncorrectable ]

let code = function
  | Illegal_instruction -> 0
  | Misaligned_fetch -> 1
  | Misaligned_load -> 2
  | Misaligned_store -> 3
  | Page_fault_fetch -> 4
  | Page_fault_load -> 5
  | Page_fault_store -> 6
  | Ecall -> 7
  | Breakpoint -> 8
  | Pkey_violation_load -> 9
  | Pkey_violation_store -> 10
  | Access_fault -> 11
  | Ecc_uncorrectable -> 12

let of_code n = List.find_opt (fun c -> code c = n) all

let to_string = function
  | Illegal_instruction -> "illegal-instruction"
  | Misaligned_fetch -> "misaligned-fetch"
  | Misaligned_load -> "misaligned-load"
  | Misaligned_store -> "misaligned-store"
  | Page_fault_fetch -> "page-fault-fetch"
  | Page_fault_load -> "page-fault-load"
  | Page_fault_store -> "page-fault-store"
  | Ecall -> "ecall"
  | Breakpoint -> "breakpoint"
  | Pkey_violation_load -> "pkey-violation-load"
  | Pkey_violation_store -> "pkey-violation-store"
  | Access_fault -> "access-fault"
  | Ecc_uncorrectable -> "ecc-uncorrectable"

let interrupt_code irq = 0x100 lor irq

let intercept_code cls = 0x200 lor cls

let is_interrupt_code n = n land 0x100 <> 0

let is_intercept_code n = n land 0x200 <> 0
