(** Exception, interrupt and interception event causes.

    All event delivery in a Metal machine is delegated to mroutines
    (Section 2.3 of the paper).  The hardware writes the event cause
    code into Metal register [m30] on entry. *)

type t =
  | Illegal_instruction
  | Misaligned_fetch
  | Misaligned_load
  | Misaligned_store
  | Page_fault_fetch
  | Page_fault_load
  | Page_fault_store
  | Ecall
  | Breakpoint
  | Pkey_violation_load
  | Pkey_violation_store
  | Access_fault
      (** Physical access outside implemented memory. *)
  | Ecc_uncorrectable
      (** SECDED double-bit (uncorrectable) error on a protected
          structure (MRAM data segment or the m-register file); only
          raised when [Metal_cpu.Config.ecc] is armed. *)

val code : t -> int
(** [code c] is the numeric cause code written to [m30] for an
    exception (in [0, 15]). *)

val of_code : int -> t option

val all : t list
(** All exception causes, in code order. *)

val to_string : t -> string

val interrupt_code : int -> int
(** [interrupt_code irq] is the [m30] code for interrupt line [irq]:
    [0x100 lor irq]. *)

val intercept_code : int -> int
(** [intercept_code cls] is the [m30] code for an interception of
    class [cls]: [0x200 lor cls]. *)

val is_interrupt_code : int -> bool
val is_intercept_code : int -> bool
