(** The instruction set: RV32I base plus the Metal extension.

    Metal's programming interface is "the host processor's native
    assembly plus several Metal specific instructions" (Section 2).
    The base ISA is RV32I; the Metal extension (Table 1 of the paper
    plus the architectural-feature instructions of Section 2.3) lives
    in the custom-0 and custom-1 opcode spaces. *)

type alu_op =
  | Add
  | Sub
  | Sll
  | Slt
  | Sltu
  | Xor
  | Srl
  | Sra
  | Or
  | And

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type mem_width = Byte | Half | Word

(** Architectural-feature operations exposed to Metal mode only
    (custom-1 opcode space).  Executing any of these in normal mode
    raises an illegal-instruction exception. *)
type metal_feature =
  | Physld of { rd : Reg.t; rs1 : Reg.t; offset : int }
      (** Direct physical-memory word load, bypassing paging. *)
  | Physst of { rs2 : Reg.t; rs1 : Reg.t; offset : int }
      (** Direct physical-memory word store, bypassing paging. *)
  | Tlbw of { rs1 : Reg.t; rs2 : Reg.t }
      (** Write a TLB entry.  [rs1] packs the virtual tag
          ({!Instr.pack_tlb_tag}), [rs2] the physical data
          ({!Instr.pack_tlb_data}). *)
  | Tlbflush of { rs1 : Reg.t }
      (** Flush TLB entries: value 0xFFFFFFFF flushes all, otherwise
          flushes the ASID in the low 8 bits. *)
  | Tlbprobe of { rd : Reg.t; rs1 : Reg.t }
      (** [rd] gets the packed data of the entry matching the virtual
          address in [rs1] under the current ASID, or 0 on miss. *)
  | Gprr of { rd : Reg.t; rs1 : Reg.t }
      (** Indexed GPR read: [rd <- GPR[value rs1 land 31]].  Used by
          mroutines to manipulate arbitrary execution contexts. *)
  | Gprw of { rs1 : Reg.t; rs2 : Reg.t }
      (** Indexed GPR write: [GPR[value rs1 land 31] <- value rs2]. *)
  | Iceptset of { rs1 : Reg.t; rs2 : Reg.t }
      (** Intercept instruction class [value rs1] with mroutine entry
          [value rs2]. *)
  | Iceptclr of { rs1 : Reg.t }
      (** Stop intercepting instruction class [value rs1]. *)
  | Mcsrr of { rd : Reg.t; csr : Csr.t }
      (** Read a machine control register. *)
  | Mcsrw of { csr : Csr.t; rs1 : Reg.t }
      (** Write a machine control register. *)

(** The Metal instructions of Table 1 (custom-0 opcode space).
    [Menter] is the only one legal in normal mode. *)
type metal_instr =
  | Menter of { entry : int }
      (** Enter Metal mode, executing mroutine [entry] (0..63);
          hardware stores the return address in [m31]. *)
  | Mexit
      (** Exit Metal mode, resuming at the address stored in [m31]. *)
  | Rmr of { rd : Reg.t; mr : Reg.mreg }  (** [rd <- m<mr>]. *)
  | Wmr of { mr : Reg.mreg; rs1 : Reg.t }  (** [m<mr> <- rs1]. *)
  | Mld of { rd : Reg.t; rs1 : Reg.t; offset : int }
      (** Word load from the MRAM data segment. *)
  | Mst of { rs2 : Reg.t; rs1 : Reg.t; offset : int }
      (** Word store to the MRAM data segment. *)
  | Feature of metal_feature

type t =
  | Lui of { rd : Reg.t; imm : int }  (** [imm] is the raw 20-bit field. *)
  | Auipc of { rd : Reg.t; imm : int }
  | Jal of { rd : Reg.t; offset : int }
  | Jalr of { rd : Reg.t; rs1 : Reg.t; offset : int }
  | Branch of { cond : branch_cond; rs1 : Reg.t; rs2 : Reg.t; offset : int }
  | Load of { width : mem_width; unsigned : bool; rd : Reg.t; rs1 : Reg.t;
              offset : int }
  | Store of { width : mem_width; rs2 : Reg.t; rs1 : Reg.t; offset : int }
  | Op_imm of { op : alu_op; rd : Reg.t; rs1 : Reg.t; imm : int }
      (** [Sub] is invalid here; shifts take a 5-bit shamt. *)
  | Op of { op : alu_op; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Ecall
  | Ebreak
  | Fence
  | Metal of metal_instr

val pack_tlb_tag : vpn:int -> asid:int -> global:bool -> Word.t
(** Pack the [tlbw] tag operand: vpn in bits 31:12, asid in 11:4,
    global in bit 0. *)

val unpack_tlb_tag : Word.t -> int * int * bool
(** [unpack_tlb_tag w] is [(vpn, asid, global)]. *)

val pack_tlb_data :
  ppn:int -> pkey:int -> r:bool -> w:bool -> x:bool -> Word.t
(** Pack the [tlbw] data operand: ppn in bits 31:12, pkey in 8:5,
    X/W/R in bits 3:1 — deliberately the same positions as the
    page-table-entry format used by the hardware walker, so an mcode
    page-fault handler converts a leaf PTE to TLB data by masking the
    V and G bits (Section 3.2: "In a few lines of assembly, we walk an
    x86-style radix tree").  A packed value of 0 is never a valid
    mapping (used by [tlbprobe] to signal a miss), because a valid
    entry has at least one permission bit set. *)

val unpack_tlb_data : Word.t -> int * int * bool * bool * bool
(** [unpack_tlb_data w] is [(ppn, pkey, r, w, x)]. *)

val writes_gpr : t -> Reg.t option
(** [writes_gpr i] is the destination GPR of [i], if any ([x0] writes
    are reported as [None]). *)

val reads_gprs : t -> Reg.t list
(** Source GPRs of [i] (never includes [x0]). *)

val is_memory_access : t -> bool
(** True for loads, stores, [mld]/[mst] and phys accesses. *)

val is_metal_only : t -> bool
(** True for instructions that are legal only in Metal mode ([mexit],
    [rmr]/[wmr], [mld]/[mst] and every architectural-feature
    operation); [menter] is the one Metal instruction legal in normal
    mode and reports [false]. *)

val writes_mreg : t -> Reg.mreg option
(** The Metal register written by [wmr], if any.  ([menter] and event
    delivery also write m-registers, but as a hardware convention, not
    an instruction operand.) *)

val reads_mreg : t -> Reg.mreg option
(** The Metal register read by [rmr], if any. *)

val static_successors : pc:int -> t -> int list
(** Statically-known fall-through / branch successors of the
    instruction at [pc]: both arms of a branch, the target of [jal],
    [pc + 4] for straight-line instructions, and [] for terminators
    and indirect flow ([jalr], [menter]/[mexit], [ecall], [ebreak]) —
    the mcode verifier resolves those separately. *)

val alu_op_name : alu_op -> string
(** Mnemonic stem of an ALU operation, e.g. ["add"]. *)

val to_string : t -> string
(** Assembly rendering, parseable by the assembler. *)

val pp : Format.formatter -> t -> unit
