type alu_op =
  | Add
  | Sub
  | Sll
  | Slt
  | Sltu
  | Xor
  | Srl
  | Sra
  | Or
  | And

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type mem_width = Byte | Half | Word

type metal_feature =
  | Physld of { rd : Reg.t; rs1 : Reg.t; offset : int }
  | Physst of { rs2 : Reg.t; rs1 : Reg.t; offset : int }
  | Tlbw of { rs1 : Reg.t; rs2 : Reg.t }
  | Tlbflush of { rs1 : Reg.t }
  | Tlbprobe of { rd : Reg.t; rs1 : Reg.t }
  | Gprr of { rd : Reg.t; rs1 : Reg.t }
  | Gprw of { rs1 : Reg.t; rs2 : Reg.t }
  | Iceptset of { rs1 : Reg.t; rs2 : Reg.t }
  | Iceptclr of { rs1 : Reg.t }
  | Mcsrr of { rd : Reg.t; csr : Csr.t }
  | Mcsrw of { csr : Csr.t; rs1 : Reg.t }

type metal_instr =
  | Menter of { entry : int }
  | Mexit
  | Rmr of { rd : Reg.t; mr : Reg.mreg }
  | Wmr of { mr : Reg.mreg; rs1 : Reg.t }
  | Mld of { rd : Reg.t; rs1 : Reg.t; offset : int }
  | Mst of { rs2 : Reg.t; rs1 : Reg.t; offset : int }
  | Feature of metal_feature

type t =
  | Lui of { rd : Reg.t; imm : int }
  | Auipc of { rd : Reg.t; imm : int }
  | Jal of { rd : Reg.t; offset : int }
  | Jalr of { rd : Reg.t; rs1 : Reg.t; offset : int }
  | Branch of { cond : branch_cond; rs1 : Reg.t; rs2 : Reg.t; offset : int }
  | Load of { width : mem_width; unsigned : bool; rd : Reg.t; rs1 : Reg.t;
              offset : int }
  | Store of { width : mem_width; rs2 : Reg.t; rs1 : Reg.t; offset : int }
  | Op_imm of { op : alu_op; rd : Reg.t; rs1 : Reg.t; imm : int }
  | Op of { op : alu_op; rd : Reg.t; rs1 : Reg.t; rs2 : Reg.t }
  | Ecall
  | Ebreak
  | Fence
  | Metal of metal_instr

let pack_tlb_tag ~vpn ~asid ~global =
  Word.of_int
    ((vpn land 0xFFFFF) lsl 12
     lor ((asid land 0xFF) lsl 4)
     lor (if global then 1 else 0))

let unpack_tlb_tag w =
  (Word.bits ~hi:31 ~lo:12 w, Word.bits ~hi:11 ~lo:4 w, Word.bit 0 w = 1)

let pack_tlb_data ~ppn ~pkey ~r ~w ~x =
  Word.of_int
    ((ppn land 0xFFFFF) lsl 12
     lor ((pkey land 0xF) lsl 5)
     lor (if x then 8 else 0)
     lor (if w then 4 else 0)
     lor (if r then 2 else 0))

let unpack_tlb_data d =
  ( Word.bits ~hi:31 ~lo:12 d,
    Word.bits ~hi:8 ~lo:5 d,
    Word.bit 1 d = 1,
    Word.bit 2 d = 1,
    Word.bit 3 d = 1 )

let nonzero r = if r = 0 then None else Some r

let writes_gpr = function
  | Lui { rd; _ } | Auipc { rd; _ } | Jal { rd; _ } | Jalr { rd; _ }
  | Load { rd; _ } | Op_imm { rd; _ } | Op { rd; _ } -> nonzero rd
  | Metal m ->
    begin match m with
    | Rmr { rd; _ } | Mld { rd; _ } -> nonzero rd
    | Feature f ->
      begin match f with
      | Physld { rd; _ } | Tlbprobe { rd; _ } | Gprr { rd; _ }
      | Mcsrr { rd; _ } -> nonzero rd
      | Physst _ | Tlbw _ | Tlbflush _ | Gprw _ | Iceptset _ | Iceptclr _
      | Mcsrw _ -> None
      end
    | Menter _ | Mexit | Wmr _ | Mst _ -> None
    end
  | Branch _ | Store _ | Ecall | Ebreak | Fence -> None

let reads_gprs i =
  let srcs =
    match i with
    | Lui _ | Auipc _ | Jal _ | Ecall | Ebreak | Fence -> []
    | Jalr { rs1; _ } | Load { rs1; _ } | Op_imm { rs1; _ } -> [ rs1 ]
    | Branch { rs1; rs2; _ } | Op { rs1; rs2; _ } -> [ rs1; rs2 ]
    | Store { rs1; rs2; _ } -> [ rs1; rs2 ]
    | Metal m ->
      begin match m with
      | Menter _ | Mexit | Rmr _ -> []
      | Wmr { rs1; _ } | Mld { rs1; _ } -> [ rs1 ]
      | Mst { rs1; rs2; _ } -> [ rs1; rs2 ]
      | Feature f ->
        begin match f with
        | Physld { rs1; _ } | Tlbflush { rs1; _ } | Tlbprobe { rs1; _ }
        | Gprr { rs1; _ } | Iceptclr { rs1; _ } | Mcsrw { rs1; _ } -> [ rs1 ]
        | Physst { rs1; rs2; _ } | Tlbw { rs1; rs2 } | Gprw { rs1; rs2 }
        | Iceptset { rs1; rs2 } -> [ rs1; rs2 ]
        | Mcsrr _ -> []
        end
      end
  in
  List.filter (fun r -> r <> 0) srcs

let is_memory_access = function
  | Load _ | Store _ -> true
  | Metal (Mld _ | Mst _ | Feature (Physld _ | Physst _)) -> true
  | Metal _ | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Op_imm _
  | Op _ | Ecall | Ebreak | Fence -> false

let is_metal_only = function
  | Metal (Menter _) -> false
  | Metal _ -> true
  | Lui _ | Auipc _ | Jal _ | Jalr _ | Branch _ | Load _ | Store _
  | Op_imm _ | Op _ | Ecall | Ebreak | Fence -> false

let writes_mreg = function
  | Metal (Wmr { mr; _ }) -> Some mr
  | _ -> None

let reads_mreg = function
  | Metal (Rmr { mr; _ }) -> Some mr
  | _ -> None

let static_successors ~pc = function
  | Jal { offset; _ } -> [ pc + offset ]
  | Branch { offset; _ } -> [ pc + 4; pc + offset ]
  | Jalr _ | Metal (Menter _ | Mexit) | Ecall | Ebreak -> []
  | Lui _ | Auipc _ | Load _ | Store _ | Op_imm _ | Op _ | Fence
  | Metal _ -> [ pc + 4 ]

let alu_op_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Sll -> "sll"
  | Slt -> "slt"
  | Sltu -> "sltu"
  | Xor -> "xor"
  | Srl -> "srl"
  | Sra -> "sra"
  | Or -> "or"
  | And -> "and"

let branch_name = function
  | Beq -> "beq"
  | Bne -> "bne"
  | Blt -> "blt"
  | Bge -> "bge"
  | Bltu -> "bltu"
  | Bgeu -> "bgeu"

let load_name width unsigned =
  match (width, unsigned) with
  | Byte, false -> "lb"
  | Byte, true -> "lbu"
  | Half, false -> "lh"
  | Half, true -> "lhu"
  | Word, _ -> "lw"

let store_name = function Byte -> "sb" | Half -> "sh" | Word -> "sw"

let r2s = Reg.to_string

let feature_to_string = function
  | Physld { rd; rs1; offset } ->
    Printf.sprintf "physld %s, %d(%s)" (r2s rd) offset (r2s rs1)
  | Physst { rs2; rs1; offset } ->
    Printf.sprintf "physst %s, %d(%s)" (r2s rs2) offset (r2s rs1)
  | Tlbw { rs1; rs2 } -> Printf.sprintf "tlbw %s, %s" (r2s rs1) (r2s rs2)
  | Tlbflush { rs1 } -> Printf.sprintf "tlbflush %s" (r2s rs1)
  | Tlbprobe { rd; rs1 } ->
    Printf.sprintf "tlbprobe %s, %s" (r2s rd) (r2s rs1)
  | Gprr { rd; rs1 } -> Printf.sprintf "gprr %s, %s" (r2s rd) (r2s rs1)
  | Gprw { rs1; rs2 } -> Printf.sprintf "gprw %s, %s" (r2s rs1) (r2s rs2)
  | Iceptset { rs1; rs2 } ->
    Printf.sprintf "iceptset %s, %s" (r2s rs1) (r2s rs2)
  | Iceptclr { rs1 } -> Printf.sprintf "iceptclr %s" (r2s rs1)
  | Mcsrr { rd; csr } -> Printf.sprintf "mcsrr %s, %s" (r2s rd) (Csr.name csr)
  | Mcsrw { csr; rs1 } -> Printf.sprintf "mcsrw %s, %s" (Csr.name csr) (r2s rs1)

let metal_to_string = function
  | Menter { entry } -> Printf.sprintf "menter %d" entry
  | Mexit -> "mexit"
  | Rmr { rd; mr } -> Printf.sprintf "rmr %s, %s" (r2s rd) (Reg.mreg_to_string mr)
  | Wmr { mr; rs1 } -> Printf.sprintf "wmr %s, %s" (Reg.mreg_to_string mr) (r2s rs1)
  | Mld { rd; rs1; offset } ->
    Printf.sprintf "mld %s, %d(%s)" (r2s rd) offset (r2s rs1)
  | Mst { rs2; rs1; offset } ->
    Printf.sprintf "mst %s, %d(%s)" (r2s rs2) offset (r2s rs1)
  | Feature f -> feature_to_string f

let to_string = function
  | Lui { rd; imm } -> Printf.sprintf "lui %s, 0x%x" (r2s rd) imm
  | Auipc { rd; imm } -> Printf.sprintf "auipc %s, 0x%x" (r2s rd) imm
  | Jal { rd; offset } -> Printf.sprintf "jal %s, %d" (r2s rd) offset
  | Jalr { rd; rs1; offset } ->
    Printf.sprintf "jalr %s, %d(%s)" (r2s rd) offset (r2s rs1)
  | Branch { cond; rs1; rs2; offset } ->
    Printf.sprintf "%s %s, %s, %d" (branch_name cond) (r2s rs1) (r2s rs2)
      offset
  | Load { width; unsigned; rd; rs1; offset } ->
    Printf.sprintf "%s %s, %d(%s)" (load_name width unsigned) (r2s rd)
      offset (r2s rs1)
  | Store { width; rs2; rs1; offset } ->
    Printf.sprintf "%s %s, %d(%s)" (store_name width) (r2s rs2) offset
      (r2s rs1)
  | Op_imm { op; rd; rs1; imm } ->
    let name =
      match op with
      | Slt -> "slti"
      | Sltu -> "sltiu"
      | Add | Sub | Sll | Xor | Srl | Sra | Or | And -> alu_op_name op ^ "i"
    in
    Printf.sprintf "%s %s, %s, %d" name (r2s rd) (r2s rs1) imm
  | Op { op; rd; rs1; rs2 } ->
    Printf.sprintf "%s %s, %s, %s" (alu_op_name op) (r2s rd) (r2s rs1)
      (r2s rs2)
  | Ecall -> "ecall"
  | Ebreak -> "ebreak"
  | Fence -> "fence"
  | Metal m -> metal_to_string m

let pp fmt i = Format.fprintf fmt "%s" (to_string i)
