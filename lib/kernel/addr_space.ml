type t = { asid : int; pt : Page_table.t }

let create m ~asid ~alloc =
  if asid < 0 || asid > 0xFF then invalid_arg "Addr_space.create: asid";
  let mem = Metal_hw.Bus.memory m.Metal_cpu.Machine.bus in
  match Page_table.create ~mem ~alloc with
  | pt -> Ok { asid; pt }
  | exception Frame_alloc.Out_of_frames { allocated; total } ->
    Error
      (Printf.sprintf
         "addr_space: no frame for page-table root (%d/%d allocated)"
         allocated total)

let map t ~vaddr ~paddr ?pkey ?global perms =
  Page_table.map t.pt ~vaddr ~paddr ?pkey ?global perms

let map_range t ~vaddr ~paddr ~size ?pkey ?global perms =
  Page_table.map_range t.pt ~vaddr ~paddr ~size ?pkey ?global perms

let activate m t =
  Metal_cpu.Machine.ctrl_write m Csr.asid t.asid;
  Metal_cpu.Machine.ctrl_write m Csr.pt_root (Page_table.root t.pt);
  Metal_progs.Pagetable.set_root m (Page_table.root t.pt)
