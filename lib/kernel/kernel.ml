type t = {
  machine : Metal_cpu.Machine.t;
  console : Metal_hw.Devices.Console.t;
  alloc : Frame_alloc.t;
  mutable procs : Process.t list;
  yield_pc : int;
  exit_pc : int;
  fault_pc : int;
  send_pc : int;
  recv_pc : int;
  user_entry : int;
  mutable next_pid : int;
}

let syscall_putchar = 0
let syscall_getpid = 1
let syscall_yield = 2
let syscall_exit = 3
let syscall_puts = 4
let syscall_send = 5
let syscall_recv = 6
let nsyscalls = 7
let mailbox_capacity = 8

let kernel_base = 0x4000
let kernel_size = 0x2000  (* two pages: code + data *)
let user_code_base = 0x10000
let user_stack_top = 0x90000
let user_stack_size = 4 * Pte.page_size
let frame_region_base = 0x100000

let kernel_pkey = 1
let kernel_pkeys_view = 0
let user_pkeys_view = 0xC  (* key 1: read+write disabled *)

let mmio_page = Metal_hw.Bus.mmio_base

let kernel_asm =
  Printf.sprintf
    {|# The Metal mini-kernel: syscall handlers and scheduler stubs.
.org %d
.equ CONSOLE, %d
.equ KEXIT, %d

syscall_table:
    .word sys_putchar
    .word sys_getpid
    .word sys_yield
    .word sys_exit
    .word sys_puts
    .word sys_send
    .word sys_recv

# Privilege violations and delegated exceptions land here (t5 = pc,
# t6 = cause or vaddr); the host scheduler inspects and reacts.
fault_entry:
    ebreak

sys_putchar:
    li t0, CONSOLE
    sw a1, 0(t0)
    li a0, 0
    menter KEXIT

sys_getpid:
    la t0, current_pid
    lw a0, 0(t0)
    menter KEXIT

sys_yield:
    ebreak                  # host scheduler switches processes here
    li a0, 0
    menter KEXIT

sys_exit:
    ebreak                  # host reaps the process (a1 = exit code)

sys_puts:
    mv t1, a1
    mv t2, a2
    li t0, CONSOLE
puts_loop:
    beqz t2, puts_done
    lbu t3, 0(t1)
    sw t3, 0(t0)
    addi t1, t1, 1
    addi t2, t2, -1
    j puts_loop
puts_done:
    li a0, 0
    menter KEXIT

# IPC: a1 = destination pid, a2 = message.  The host deposits the
# result in a0 at the ebreak.
sys_send:
    ebreak
    menter KEXIT

# IPC: blocks until a message arrives; a0 = message.
sys_recv:
    ebreak
    menter KEXIT

current_pid: .word 0
|}
    kernel_base Metal_hw.Bus.mmio_base Metal_progs.Layout.kexit

let ( let* ) = Result.bind

let boot ?(config = Metal_cpu.Config.default) () =
  let m = Metal_cpu.Machine.create ~config () in
  let console = Metal_hw.Devices.Console.create ~base:mmio_page in
  Metal_hw.Bus.attach m.Metal_cpu.Machine.bus
    (Metal_hw.Devices.Console.device console);
  let* kimg =
    Result.map_error Metal_asm.Asm.error_to_string
      (Metal_asm.Asm.assemble kernel_asm)
  in
  let* () = Metal_cpu.Machine.load_image m kimg in
  let sym name =
    match Metal_asm.Image.find_symbol kimg name with
    | Some a -> Ok a
    | None -> Error ("kernel symbol missing: " ^ name)
  in
  let* table = sym "syscall_table" in
  let* fault_pc = sym "fault_entry" in
  let* yield_pc = sym "sys_yield" in
  let* exit_pc = sym "sys_exit" in
  let* send_pc = sym "sys_send" in
  let* recv_pc = sym "sys_recv" in
  let* () =
    Metal_progs.Privilege.install m
      {
        Metal_progs.Privilege.syscall_table = table;
        nsyscalls;
        kernel_pkeys = kernel_pkeys_view;
        user_pkeys = user_pkeys_view;
        fault_entry = fault_pc;
      }
  in
  let* () =
    Metal_progs.Pagetable.install m
      { Metal_progs.Pagetable.os_fault_entry = fault_pc }
  in
  (* Delegate synchronous exceptions (but not breakpoints: the kernel
     stubs park the machine with ebreak). *)
  List.iter
    (fun cause ->
       Metal_cpu.Machine.install_handler m cause
         ~entry:Metal_progs.Layout.exc_trampoline)
    [ Cause.Illegal_instruction; Cause.Misaligned_fetch;
      Cause.Misaligned_load; Cause.Misaligned_store; Cause.Ecall;
      Cause.Pkey_violation_load; Cause.Pkey_violation_store;
      Cause.Access_fault ];
  Metal_cpu.Machine.ctrl_write m Csr.paging 1;
  let alloc =
    Frame_alloc.create ~base:frame_region_base
      ~limit:config.Metal_cpu.Config.mem_size
  in
  Ok
    {
      machine = m;
      console;
      alloc;
      procs = [];
      yield_pc;
      exit_pc;
      fault_pc;
      send_pc;
      recv_pc;
      user_entry = user_code_base;
      next_pid = 1;
    }

(* Mappings every address space shares: the kernel image (kernel page
   key), and the MMIO page for the kernel's console driver. *)
let map_globals space =
  let* () =
    Addr_space.map_range space ~vaddr:kernel_base ~paddr:kernel_base
      ~size:kernel_size ~pkey:kernel_pkey ~global:true Page_table.rwx
  in
  Addr_space.map space ~vaddr:mmio_page ~paddr:mmio_page ~pkey:kernel_pkey
    ~global:true Page_table.rw

let spawn t ~source =
  if t.next_pid > 0xFF then Error "out of ASIDs"
  else
    let* img =
      Result.map_error Metal_asm.Asm.error_to_string
        (Metal_asm.Asm.assemble ~origin:user_code_base source)
    in
    let pid = t.next_pid in
    t.next_pid <- pid + 1;
    let* space = Addr_space.create t.machine ~asid:pid ~alloc:t.alloc in
    let* () = map_globals space in
    let* () = Loader.load t.machine ~space ~alloc:t.alloc img in
    let* () =
      Loader.map_fresh t.machine ~space ~alloc:t.alloc
        ~vaddr:(user_stack_top - user_stack_size)
        ~size:user_stack_size ()
    in
    let p =
      Process.create ~pid ~space ~entry:user_code_base ~sp:user_stack_top
        ~user_pkeys:user_pkeys_view
    in
    t.procs <- t.procs @ [ p ];
    Ok p

type outcome =
  | All_done
  | Deadlocked
  | Out_of_cycles
  | Machine_halted of Metal_cpu.Machine.halt

let set_current_pid t pid =
  (* current_pid is the last word of the kernel image. *)
  match Metal_asm.Asm.assemble kernel_asm with
  | Error _ -> ()
  | Ok kimg ->
    begin match Metal_asm.Image.find_symbol kimg "current_pid" with
    | Some addr -> Metal_cpu.Machine.write_word t.machine addr pid
    | None -> ()
    end

let next_ready t =
  List.find_opt (fun p -> p.Process.state = Process.Ready) t.procs

let rotate t p =
  t.procs <- List.filter (fun q -> q != p) t.procs @ [ p ]

let find_process t ~pid =
  List.find_opt (fun p -> p.Process.pid = pid) t.procs

let run t ~max_cycles =
  let m = t.machine in
  let deadline = m.Metal_cpu.Machine.stats.Metal_cpu.Stats.cycles + max_cycles in
  let budget () =
    deadline - m.Metal_cpu.Machine.stats.Metal_cpu.Stats.cycles
  in
  (* IPC send, handled at the sys_send ebreak: result goes to a0 and
     the current process continues. *)
  let do_send () =
    let dest = Word.to_signed (Metal_cpu.Machine.get_reg m Reg.a1) in
    let value = Metal_cpu.Machine.get_reg m Reg.a2 in
    match find_process t ~pid:dest with
    | None -> -1
    | Some q ->
      begin match q.Process.state with
      | Process.Exited _ | Process.Faulted _ -> -1
      | Process.Blocked ->
        (* Direct hand-off to a parked receiver. *)
        q.Process.regs.(Reg.a0) <- value;
        q.Process.state <- Process.Ready;
        0
      | Process.Ready | Process.Running ->
        if Queue.length q.Process.mailbox >= mailbox_capacity then -2
        else begin
          Queue.add value q.Process.mailbox;
          0
        end
      end
  in
  let rec sched () =
    match next_ready t with
    | None ->
      if List.exists (fun p -> p.Process.state = Process.Blocked) t.procs
      then Deadlocked
      else All_done
    | Some p ->
      if budget () <= 0 then Out_of_cycles
      else begin
        set_current_pid t p.Process.pid;
        Process.restore m p;
        resume p
      end
  (* Keep running [p] across in-process events (send, recv-with-data)
     until it yields, exits, blocks or faults. *)
  and resume p =
    m.Metal_cpu.Machine.halted <- None;
    if budget () <= 0 then begin
      Process.save m p;
      p.Process.state <- Process.Ready;
      Out_of_cycles
    end
    else
      match Metal_cpu.Pipeline.run m ~max_cycles:(budget ()) with
      | None ->
        Process.save m p;
        p.Process.state <- Process.Ready;
        Out_of_cycles
      | Some (Metal_cpu.Machine.Halt_ebreak { pc; _ }) when pc = t.yield_pc ->
        p.Process.pc <- pc + 4;
        Process.save m p;
        p.Process.state <- Process.Ready;
        p.Process.yields <- p.Process.yields + 1;
        rotate t p;
        sched ()
      | Some (Metal_cpu.Machine.Halt_ebreak { pc; _ }) when pc = t.exit_pc ->
        p.Process.state <-
          Process.Exited
            (Word.to_signed (Metal_cpu.Machine.get_reg m Reg.a1));
        sched ()
      | Some (Metal_cpu.Machine.Halt_ebreak { pc; _ }) when pc = t.send_pc ->
        Metal_cpu.Machine.set_reg m Reg.a0 (do_send ());
        Metal_cpu.Machine.set_pc m (pc + 4);
        resume p
      | Some (Metal_cpu.Machine.Halt_ebreak { pc; _ }) when pc = t.recv_pc ->
        if Queue.is_empty p.Process.mailbox then begin
          (* Park after the ebreak; the sender deposits a0 directly. *)
          p.Process.pc <- pc + 4;
          Process.save m p;
          p.Process.state <- Process.Blocked;
          sched ()
        end
        else begin
          Metal_cpu.Machine.set_reg m Reg.a0 (Queue.pop p.Process.mailbox);
          Metal_cpu.Machine.set_pc m (pc + 4);
          resume p
        end
      | Some (Metal_cpu.Machine.Halt_ebreak { pc; _ }) when pc = t.fault_pc ->
        let epc = Metal_cpu.Machine.get_reg m Reg.t5 in
        let info = Metal_cpu.Machine.get_reg m Reg.t6 in
        p.Process.state <-
          Process.Faulted
            (Printf.sprintf "delegated fault at %s (info %s)"
               (Word.to_hex epc) (Word.to_hex info));
        sched ()
      | Some (Metal_cpu.Machine.Halt_ebreak { pc; metal = false }) ->
        p.Process.state <-
          Process.Faulted
            (Printf.sprintf "stray ebreak at %s" (Word.to_hex pc));
        sched ()
      | Some h -> Machine_halted h
  in
  sched ()

let console_output t = Metal_hw.Devices.Console.output t.console
