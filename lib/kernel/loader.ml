let ( let* ) = Result.bind

(* Frames already mapped for this space, by virtual page number.
   Looked up through the page table itself so that repeated loads into
   the same space reuse frames. *)
let frame_for m ~space ~alloc ~pkey ~perms vpage =
  let vaddr = vpage * Pte.page_size in
  match Page_table.lookup space.Addr_space.pt ~vaddr with
  | Some (pa, _) -> Ok (pa land 0xFFFFF000)
  | None ->
    begin match Frame_alloc.alloc alloc with
    | None ->
      Error
        (Printf.sprintf "loader: out of frames (%d/%d allocated)"
           (Frame_alloc.allocated alloc) (Frame_alloc.total alloc))
    | Some frame ->
      let* () = Addr_space.map space ~vaddr ~paddr:frame ~pkey perms in
      ignore m;
      Ok frame
    end

let load m ~space ~alloc ?(pkey = 0) ?(perms = Page_table.rwx)
    (img : Metal_asm.Image.t) =
  let mem = Metal_hw.Bus.memory m.Metal_cpu.Machine.bus in
  let load_chunk (vaddr, data) =
    let len = String.length data in
    let rec copy i =
      if i >= len then Ok ()
      else begin
        let va = vaddr + i in
        let vpage = va / Pte.page_size in
        let* frame = frame_for m ~space ~alloc ~pkey ~perms vpage in
        (* Copy up to the end of this page. *)
        let page_rem = Pte.page_size - (va land 0xFFF) in
        let n = min page_rem (len - i) in
        let pa = frame + (va land 0xFFF) in
        if not (Metal_hw.Phys_mem.in_range mem ~addr:pa ~width:n) then
          Error "loader: frame outside physical memory"
        else begin
          for k = 0 to n - 1 do
            Metal_hw.Phys_mem.write8 mem (pa + k) (Char.code data.[i + k])
          done;
          copy (i + n)
        end
      end
    in
    copy 0
  in
  List.fold_left
    (fun acc chunk -> Result.bind acc (fun () -> load_chunk chunk))
    (Ok ()) img.Metal_asm.Image.chunks

let map_fresh m ~space ~alloc ~vaddr ~size ?(pkey = 0)
    ?(perms = Page_table.rw) () =
  if vaddr land 0xFFF <> 0 then Error "map_fresh: unaligned vaddr"
  else begin
    let pages = (size + Pte.page_size - 1) / Pte.page_size in
    let rec go i =
      if i = pages then Ok ()
      else
        let* _frame =
          frame_for m ~space ~alloc ~pkey ~perms
            ((vaddr / Pte.page_size) + i)
        in
        go (i + 1)
    in
    go 0
  end
