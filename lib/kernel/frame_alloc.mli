(** Physical frame allocator: a bump allocator over a region of
    physical memory, handing out 4 KiB frames. *)

type t

exception Out_of_frames of { allocated : int; total : int }
(** Raised by {!alloc_exn} when the region is exhausted, carrying the
    occupancy at the point of failure ([allocated = total]).  A printer
    is registered, so uncaught it still renders readably. *)

val create : base:int -> limit:int -> t
(** [create ~base ~limit] manages frames in [base, limit); both must
    be page-aligned. *)

val alloc : t -> int option
(** The physical address of a fresh (zeroed-at-boot) frame. *)

val alloc_exn : t -> int
(** @raise Out_of_frames when out of frames. *)

val total : t -> int
(** Capacity of the region in frames. *)

val allocated : t -> int
(** Frames handed out so far. *)

val remaining : t -> int
