type t = { base : int; limit : int; mutable next : int }

exception Out_of_frames of { allocated : int; total : int }

let () =
  Printexc.register_printer (function
    | Out_of_frames { allocated; total } ->
      Some
        (Printf.sprintf
           "Frame_alloc.Out_of_frames: all %d frames allocated (%d total)"
           allocated total)
    | _ -> None)

let create ~base ~limit =
  if base land 0xFFF <> 0 || limit land 0xFFF <> 0 || limit <= base then
    invalid_arg "Frame_alloc.create: region must be page-aligned and non-empty";
  { base; limit; next = base }

let total t = (t.limit - t.base) / Pte.page_size

let allocated t = (t.next - t.base) / Pte.page_size

let remaining t = (t.limit - t.next) / Pte.page_size

let alloc t =
  if t.next >= t.limit then None
  else begin
    let frame = t.next in
    t.next <- t.next + Pte.page_size;
    Some frame
  end

let alloc_exn t =
  match alloc t with
  | Some f -> f
  | None -> raise (Out_of_frames { allocated = allocated t; total = total t })
