(** Address spaces: an ASID paired with a page table. *)

type t = { asid : int; pt : Page_table.t }

val create :
  Metal_cpu.Machine.t -> asid:int -> alloc:Frame_alloc.t ->
  (t, string) result
(** Allocates the page-table root from [alloc]; reports exhaustion as
    an error (with occupancy) rather than raising. *)

val map :
  t -> vaddr:int -> paddr:int -> ?pkey:int -> ?global:bool ->
  Page_table.perms -> (unit, string) result

val map_range :
  t -> vaddr:int -> paddr:int -> size:int -> ?pkey:int -> ?global:bool ->
  Page_table.perms -> (unit, string) result

val activate : Metal_cpu.Machine.t -> t -> unit
(** Point both walkers at this space: sets the [asid] and [pt_root]
    control registers and the mcode walker's root slot in MRAM.  ASIDs
    make TLB flushes unnecessary on switch. *)
