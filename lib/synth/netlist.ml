type config = {
  mram_code_bytes : int;
  mram_data_bytes : int;
  mreg_count : int;
  tlb_entries : int;
  ecc : bool;
}

let prototype =
  { mram_code_bytes = 2048; mram_data_bytes = 512; mreg_count = 32;
    tlb_entries = 64; ecc = false }

let mk = Component.make

let baseline cfg =
  [
    (* Fetch *)
    mk "pc" (Component.Latch { bits = 32 });
    mk "fetch next-pc adder" (Component.Adder { width = 32 });
    mk "fetch redirect mux" (Component.Mux { width = 32; ways = 3 });
    mk "icache data" (Component.Sram { bytes = 8192; ports = 1 });
    mk "icache tags" (Component.Cam { entries = 64; tag_bits = 20; data_bits = 2 });
    (* Decode *)
    mk "instruction decoder" (Component.Decoder { in_bits = 32; out_signals = 96 });
    mk "immediate mux" (Component.Mux { width = 32; ways = 5 });
    mk "register file"
      (Component.Regfile { entries = 32; width = 32; read_ports = 2;
                           write_ports = 1 });
    mk "hazard unit" (Component.Control { states = 8; signals = 24 });
    mk "jal target adder" (Component.Adder { width = 32 });
    (* Execute *)
    mk "alu" (Component.Alu { width = 32 });
    mk "barrel shifter" (Component.Shifter { width = 32 });
    mk "branch comparator" (Component.Comparator { width = 32 });
    mk "branch target adder" (Component.Adder { width = 32 });
    mk ~count:2 "forwarding mux" (Component.Mux { width = 32; ways = 3 });
    (* Memory *)
    mk "dcache data" (Component.Sram { bytes = 8192; ports = 1 });
    mk "dcache tags" (Component.Cam { entries = 64; tag_bits = 20; data_bits = 2 });
    mk "tlb"
      (Component.Cam { entries = cfg.tlb_entries; tag_bits = 29;
                       data_bits = 27 });
    mk "page-table walker" (Component.Control { states = 12; signals = 30 });
    mk "pkey permission check" (Component.Comparator { width = 32 });
    mk "load align/extend" (Component.Mux { width = 32; ways = 5 });
    mk "store align" (Component.Mux { width = 32; ways = 4 });
    mk "bus interface" (Component.Control { states = 10; signals = 40 });
    (* Writeback *)
    mk "writeback mux" (Component.Mux { width = 32; ways = 3 });
    (* System state *)
    mk "csr file"
      (Component.Regfile { entries = 64; width = 32; read_ports = 1;
                           write_ports = 1 });
    mk "interrupt controller" (Component.Control { states = 6; signals = 20 });
    mk "irq pending" (Component.Latch { bits = 16 });
    (* Pipeline latches *)
    mk "if/id latch" (Component.Latch { bits = 72 });
    mk "id/ex latch" (Component.Latch { bits = 180 });
    mk "ex/mem latch" (Component.Latch { bits = 140 });
    mk "mem/wb latch" (Component.Latch { bits = 72 });
  ]

let metal_additions cfg =
  [
    mk "mram code segment"
      (Component.Sram { bytes = cfg.mram_code_bytes; ports = 1 });
    mk "mram data segment"
      (Component.Sram { bytes = cfg.mram_data_bytes; ports = 1 });
    mk "mroutine entry table" (Component.Sram { bytes = 64 * 2; ports = 1 });
    mk "metal register file"
      (Component.Regfile { entries = cfg.mreg_count; width = 32;
                           read_ports = 1; write_ports = 1 });
    mk "metal mode control" (Component.Control { states = 10; signals = 36 });
    mk "menter/mexit replacement mux" (Component.Mux { width = 32; ways = 3 });
    mk "metal fetch path mux" (Component.Mux { width = 32; ways = 2 });
    mk "intercept match table"
      (Component.Cam { entries = 16; tag_bits = 8; data_bits = 8 });
    mk "event register write path" (Component.Mux { width = 32; ways = 6 });
    mk "mram address decode" (Component.Decoder { in_bits = 12; out_signals = 16 });
  ]

(* SECDED Hamming(39,32) per protected structure (Config.ecc): a
   7-bit check word per 32-bit data word, an encoder on the write
   path, and a syndrome/correct network on the read path.  The MRAM
   data segment's check store widens the SRAM; the m-register file's
   widens the register file.  Corresponds to lib/hw/ecc.ml. *)
let ecc_additions cfg =
  let check_store_bytes data_bytes = ((data_bytes / 4 * 7) + 7) / 8 in
  [
    mk "mram data ecc store"
      (Component.Sram { bytes = check_store_bytes cfg.mram_data_bytes;
                        ports = 1 });
    mk "mram data ecc encoder" (Component.Xor_tree { inputs = 32; outputs = 7 });
    mk "mram data ecc syndrome" (Component.Xor_tree { inputs = 39; outputs = 7 });
    mk "mram data ecc corrector"
      (Component.Decoder { in_bits = 6; out_signals = 39 });
    mk "mram data ecc correct mux" (Component.Mux { width = 32; ways = 2 });
    mk "mreg ecc store"
      (Component.Regfile { entries = cfg.mreg_count; width = 7;
                           read_ports = 1; write_ports = 1 });
    mk "mreg ecc encoder" (Component.Xor_tree { inputs = 32; outputs = 7 });
    mk "mreg ecc syndrome" (Component.Xor_tree { inputs = 39; outputs = 7 });
    mk "mreg ecc corrector"
      (Component.Decoder { in_bits = 6; out_signals = 39 });
    mk "mreg ecc correct mux" (Component.Mux { width = 32; ways = 2 });
  ]

let metal cfg =
  baseline cfg @ metal_additions cfg
  @ (if cfg.ecc then ecc_additions cfg else [])
