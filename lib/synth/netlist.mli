(** Netlists of the proof-of-concept processor (Section 2.4).

    [baseline] is the plain 5-stage pipelined RISC processor: fetch
    with caches, decode, register file, ALU, memory stage with a
    software-filled TLB (plus the hardware-walker option), CSRs,
    forwarding/hazard logic and pipeline latches.

    [metal_additions] is everything Metal adds: the MRAM (code and
    data segments plus the 64-entry mroutine table), the Metal
    register file m0–m31, the Metal-mode control FSM, the decode-stage
    replacement muxes in the fetch path, the interception match table
    and the event-register write paths. *)

type config = {
  mram_code_bytes : int;
  mram_data_bytes : int;
  mreg_count : int;
  tlb_entries : int;
  ecc : bool;
      (** include the SECDED encoder/decoder and check stores for the
          MRAM data segment and the m-register file
          ([Metal_cpu.Config.ecc]). *)
}

val prototype : config
(** The paper-prototype scale: 2 KiB mroutine code, 512 B data, 32
    Metal registers, 64-entry TLB, no ECC. *)

val baseline : config -> Component.t list

val metal_additions : config -> Component.t list

val ecc_additions : config -> Component.t list
(** The SECDED layer per protected structure: check store, write-path
    encoder, read-path syndrome network, corrector decode and
    correction mux ({!Metal_hw.Ecc} is the behavioural model). *)

val metal : config -> Component.t list
(** [baseline @ metal_additions], plus [ecc_additions] when
    [config.ecc]. *)
