type kind =
  | Regfile of { entries : int; width : int; read_ports : int;
                 write_ports : int }
  | Sram of { bytes : int; ports : int }
  | Cam of { entries : int; tag_bits : int; data_bits : int }
  | Alu of { width : int }
  | Adder of { width : int }
  | Shifter of { width : int }
  | Comparator of { width : int }
  | Mux of { width : int; ways : int }
  | Latch of { bits : int }
  | Decoder of { in_bits : int; out_signals : int }
  | Control of { states : int; signals : int }
  | Xor_tree of { inputs : int; outputs : int }

type t = { name : string; kind : kind; count : int }

let make ?(count = 1) name kind = { name; kind; count }

let describe t =
  let k =
    match t.kind with
    | Regfile { entries; width; read_ports; write_ports } ->
      Printf.sprintf "regfile %dx%d (%dr%dw)" entries width read_ports
        write_ports
    | Sram { bytes; ports } -> Printf.sprintf "sram %dB (%dp)" bytes ports
    | Cam { entries; tag_bits; data_bits } ->
      Printf.sprintf "cam %dx(%d+%d)" entries tag_bits data_bits
    | Alu { width } -> Printf.sprintf "alu %d" width
    | Adder { width } -> Printf.sprintf "adder %d" width
    | Shifter { width } -> Printf.sprintf "shifter %d" width
    | Comparator { width } -> Printf.sprintf "cmp %d" width
    | Mux { width; ways } -> Printf.sprintf "mux %dx%d" ways width
    | Latch { bits } -> Printf.sprintf "latch %db" bits
    | Decoder { in_bits; out_signals } ->
      Printf.sprintf "decoder %d->%d" in_bits out_signals
    | Control { states; signals } ->
      Printf.sprintf "control %ds/%dsig" states signals
    | Xor_tree { inputs; outputs } ->
      Printf.sprintf "xor-tree %d->%d" inputs outputs
  in
  if t.count = 1 then Printf.sprintf "%s: %s" t.name k
  else Printf.sprintf "%s: %d x %s" t.name t.count k
