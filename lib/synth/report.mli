(** Table 2 report: hardware resources with and without Metal. *)

type row = { label : string; baseline : int; metal : int; change_pct : float }

type t = { wires : row; cells : row }

val table2 : ?config:Netlist.config -> unit -> t

val pp : Format.formatter -> t -> unit
(** Renders the table in the paper's layout. *)

val to_string : t -> string

val breakdown : ?config:Netlist.config -> unit -> string
(** Per-component cost listing for both configurations (the detail
    behind Table 2); includes the ECC additions when [config.ecc]. *)

type ecc_row = {
  structure : string;
  ecc_cells : int;
  ecc_wires : int;
  latency_cycles : int;  (** extra read-path check latency the
                             simulator charges ([Wcost]) *)
}

val ecc_table : ?config:Netlist.config -> unit -> ecc_row list
(** Table-2-style area/latency delta of the SECDED layer per protected
    structure (independent of [config.ecc] — it always describes what
    arming ECC would add). *)

val ecc_to_string : ecc_row list -> string
