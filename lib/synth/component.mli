(** Structural components of the processor netlist.

    Substitute for the paper's Yosys + Synopsys synthesis flow
    (Section 2.4): the processor is described as a list of parametric
    components; {!Cost_model} assigns standard-cell and wire counts to
    each.  Table 2 compares the totals of the baseline netlist against
    the netlist with the Metal additions. *)

type kind =
  | Regfile of { entries : int; width : int; read_ports : int;
                 write_ports : int }
  | Sram of { bytes : int; ports : int }
  | Cam of { entries : int; tag_bits : int; data_bits : int }
      (** fully-associative match structure (the TLB, intercept table) *)
  | Alu of { width : int }
  | Adder of { width : int }
  | Shifter of { width : int }
  | Comparator of { width : int }
  | Mux of { width : int; ways : int }
  | Latch of { bits : int }  (** pipeline latch / registers *)
  | Decoder of { in_bits : int; out_signals : int }
  | Control of { states : int; signals : int }  (** FSM *)
  | Xor_tree of { inputs : int; outputs : int }
      (** parallel parity network: [outputs] parity bits, each a tree
          over a subset of [inputs] (the SECDED encoder/decoder) *)

type t = {
  name : string;
  kind : kind;
  count : int;  (** number of instances *)
}

val make : ?count:int -> string -> kind -> t

val describe : t -> string
