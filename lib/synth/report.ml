type row = { label : string; baseline : int; metal : int; change_pct : float }

type t = { wires : row; cells : row }

let row label baseline metal =
  let change_pct =
    100.0 *. (float_of_int (metal - baseline) /. float_of_int baseline)
  in
  { label; baseline; metal; change_pct }

let table2 ?(config = Netlist.prototype) () =
  let b = Cost_model.total (Netlist.baseline config) in
  let m = Cost_model.total (Netlist.metal config) in
  {
    wires = row "Number of Wires" b.Cost_model.wires m.Cost_model.wires;
    cells = row "Number of Cells" b.Cost_model.cells m.Cost_model.cells;
  }

let pp fmt t =
  let line r =
    Format.fprintf fmt "%-18s %10d %10d %9.1f%%@." r.label r.baseline r.metal
      r.change_pct
  in
  Format.fprintf fmt "%-18s %10s %10s %10s@." "" "Baseline" "Metal" "%Change";
  line t.wires;
  line t.cells

let to_string t = Format.asprintf "%a" pp t

(* Table-2-style delta for the SECDED layer: per protected structure,
   the cells/wires the encoder + syndrome/correct network + check
   store add, and the check latency the pipeline charges (the MRAM
   data read path pays one cycle; the m-register read is modeled
   combinational — see Wcost). *)
type ecc_row = {
  structure : string;
  ecc_cells : int;
  ecc_wires : int;
  latency_cycles : int;
}

let ecc_table ?(config = Netlist.prototype) () =
  let comps = Netlist.ecc_additions { config with Netlist.ecc = true } in
  let prefixed p =
    List.filter
      (fun (c : Component.t) ->
         String.length c.Component.name >= String.length p
         && String.sub c.Component.name 0 (String.length p) = p)
      comps
  in
  let rowf structure prefix latency_cycles =
    let t = Cost_model.total (prefixed prefix) in
    { structure; ecc_cells = t.Cost_model.cells;
      ecc_wires = t.Cost_model.wires; latency_cycles }
  in
  [
    rowf "mram data segment" "mram data ecc" 1;
    rowf "metal register file" "mreg ecc" 0;
  ]

let ecc_to_string rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "%-22s %10s %10s %10s\n" "ECC delta" "Cells" "Wires"
       "Latency");
  List.iter
    (fun r ->
       Buffer.add_string buf
         (Printf.sprintf "%-22s %10d %10d %9dc\n" r.structure r.ecc_cells
            r.ecc_wires r.latency_cycles))
    rows;
  Buffer.contents buf

let breakdown ?(config = Netlist.prototype) () =
  let buf = Buffer.create 1024 in
  let section title comps =
    Buffer.add_string buf (title ^ "\n");
    List.iter
      (fun comp ->
         let cost = Cost_model.of_component comp in
         Buffer.add_string buf
           (Printf.sprintf "  %-34s cells=%7d wires=%7d\n"
              (Component.describe comp) cost.Cost_model.cells
              cost.Cost_model.wires))
      comps;
    let t = Cost_model.total comps in
    Buffer.add_string buf
      (Printf.sprintf "  %-34s cells=%7d wires=%7d\n" "TOTAL"
         t.Cost_model.cells t.Cost_model.wires)
  in
  section "Baseline processor" (Netlist.baseline config);
  section "Metal additions" (Netlist.metal_additions config);
  if config.Netlist.ecc then
    section "ECC additions" (Netlist.ecc_additions config);
  Buffer.contents buf
