type cost = { cells : int; wires : int }

let zero = { cells = 0; wires = 0 }

let add a b = { cells = a.cells + b.cells; wires = a.wires + b.wires }

let scale n c = { cells = n * c.cells; wires = n * c.wires }

(* Gate-equivalent building blocks (uncalibrated).  Sources: textbook
   figures — D flip-flop ~6 gates, full adder ~9, 2:1 mux ~1.5/bit.
   RAM bits map to memory macros, far denser than discrete flops. *)
let ff_cells = 6.0
let ram_bit_cells = 0.35
let mux2_bit_cells = 1.5
let adder_bit_cells = 9.0
let cmp_bit_cells = 4.0
let alu_bit_cells = 45.0
let shifter_bit_cells = 8.0
let xor2_cells = 2.5

let c cells wires =
  { cells = int_of_float cells; wires = int_of_float wires }

let of_kind = function
  | Component.Regfile { entries; width; read_ports; write_ports } ->
    let storage = float_of_int (entries * width) *. ff_cells in
    let read_net =
      float_of_int (read_ports * (entries - 1) * width) *. mux2_bit_cells
    in
    let write_net = float_of_int (write_ports * entries * width) *. 0.5 in
    let cells = storage +. read_net +. write_net in
    (* Port routing makes register files wire-dense. *)
    c cells (cells *. 1.25)
  | Component.Sram { bytes; ports } ->
    let bits = float_of_int (8 * bytes) in
    let cells = (bits *. ram_bit_cells) +. float_of_int (ports * 150) in
    c cells (cells *. 0.85)
  | Component.Cam { entries; tag_bits; data_bits } ->
    let store =
      float_of_int entries
      *. ((float_of_int tag_bits *. (ff_cells +. cmp_bit_cells))
          +. (float_of_int data_bits *. ff_cells))
    in
    let priority = float_of_int (entries * 4) in
    let cells = store +. priority in
    c cells (cells *. 0.9)
  | Component.Alu { width } ->
    let cells = float_of_int width *. alu_bit_cells in
    c cells (cells *. 0.85)
  | Component.Adder { width } ->
    let cells = float_of_int width *. adder_bit_cells in
    c cells (cells *. 0.85)
  | Component.Shifter { width } ->
    let cells = float_of_int width *. shifter_bit_cells in
    c cells (cells *. 0.9)
  | Component.Comparator { width } ->
    let cells = float_of_int width *. cmp_bit_cells in
    c cells (cells *. 0.85)
  | Component.Mux { width; ways } ->
    let cells = float_of_int (width * (ways - 1)) *. mux2_bit_cells in
    (* Select fan-out and through-routing dominate muxes. *)
    c cells (cells *. 1.4)
  | Component.Latch { bits } ->
    let cells = float_of_int bits *. (ff_cells +. 1.0) in
    c cells (cells *. 0.85)
  | Component.Decoder { in_bits; out_signals } ->
    let cells = float_of_int (in_bits * 3) +. float_of_int (out_signals * 4) in
    c cells (cells *. 1.0)
  | Component.Control { states; signals } ->
    let cells =
      (float_of_int states *. ff_cells) +. float_of_int (states * signals * 2)
    in
    c cells (cells *. 1.1)
  | Component.Xor_tree { inputs; outputs } ->
    (* Each output is a parity tree over roughly half the inputs (a
       Hamming check bit covers the positions with one address bit
       set), so ~inputs/2 XOR2 gates per output. *)
    let cells =
      float_of_int (outputs * max 1 (inputs / 2)) *. xor2_cells
    in
    (* Parity networks touch every input: wire-dense. *)
    c cells (cells *. 1.3)

(* Chosen so the baseline netlist's totals land near the paper's
   Table 2 baseline; see Netlist. *)
let calibration = 1.298

let of_component (t : Component.t) =
  let one = of_kind t.kind in
  let cal v = int_of_float (float_of_int v *. calibration) in
  { cells = cal (t.count * one.cells); wires = cal (t.count * one.wires) }

let total comps = List.fold_left (fun acc x -> add acc (of_component x)) zero comps
