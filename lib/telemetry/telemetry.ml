module Event = Metal_trace.Event
module Json = Metal_trace.Json

(* ------------------------------------------------------------------ *)
(* Watchdog rules                                                      *)
(* ------------------------------------------------------------------ *)

module Watchdog = struct
  type severity = Warn | Fault

  type check =
    | Wcet
    | Ipc_floor of float
    | Stall_share of { cause : int; share : float }
    | Ecc_storm of int
    | Mode_residency of { metal : bool; share : float }

  type rule = { check : check; severity : severity }

  type alarm = {
    rule : string;
    severity : severity;
    window : int;
    cycle : int;
    value : float;
    threshold : float;
    message : string;
  }

  let severity_to_string = function Warn -> "warn" | Fault -> "fault"

  let default_severity = function Wcet -> Fault | _ -> Warn

  let rule ?severity check =
    { check; severity = Option.value severity ~default:(default_severity check) }

  let check_to_string = function
    | Wcet -> "wcet"
    | Ipc_floor r -> Printf.sprintf "ipc_floor:%g" r
    | Stall_share { cause; share } ->
      Printf.sprintf "stall_share:%s>%g" (Event.stall_name cause) share
    | Ecc_storm n -> Printf.sprintf "ecc_storm:%d" n
    | Mode_residency { metal; share } ->
      Printf.sprintf "mode_residency:%s>%g"
        (if metal then "metal" else "user")
        share

  let rule_to_string r =
    let base = check_to_string r.check in
    if r.severity = default_severity r.check then base
    else base ^ ":" ^ severity_to_string r.severity

  let cause_of_string s =
    let rec go c =
      if c >= Event.stall_count then None
      else if Event.stall_name c = s then Some c
      else go (c + 1)
    in
    go 0

  let known_causes () =
    String.concat "|" (List.init Event.stall_count Event.stall_name)

  (* A share/floor parameter: a float in (0, 1] for shares, (0, inf)
     for the IPC floor. *)
  let parse_share s =
    match float_of_string_opt s with
    | Some f when f > 0.0 && f <= 1.0 -> Some f
    | _ -> None

  let parse_one item =
    let err fmt =
      Printf.ksprintf (fun m -> Error (Printf.sprintf "%S: %s" item m)) fmt
    in
    (* Optional trailing severity override on any rule. *)
    let body, severity =
      let strip suffix =
        let n = String.length item - String.length suffix in
        if n > 0 && String.sub item n (String.length suffix) = suffix then
          Some (String.sub item 0 n)
        else None
      in
      match strip ":fault" with
      | Some body -> (body, Some Fault)
      | None -> (
        match strip ":warn" with
        | Some body -> (body, Some Warn)
        | None -> (item, None))
    in
    let name, arg =
      match String.index_opt body ':' with
      | None -> (body, None)
      | Some i ->
        ( String.sub body 0 i,
          Some (String.sub body (i + 1) (String.length body - i - 1)) )
    in
    let finish check = Ok (rule ?severity check) in
    match (name, arg) with
    | "wcet", None -> finish Wcet
    | "wcet", Some _ -> err "wcet takes no parameter"
    | "ipc_floor", Some r -> (
      match float_of_string_opt r with
      | Some f when f > 0.0 -> finish (Ipc_floor f)
      | _ -> err "expected ipc_floor:R with R > 0")
    | "ipc_floor", None -> err "expected ipc_floor:R (retired instructions per cycle)"
    | "stall_share", Some spec -> (
      match String.index_opt spec '>' with
      | None -> err "expected stall_share:CAUSE>P"
      | Some i -> (
        let cause = String.sub spec 0 i in
        let share = String.sub spec (i + 1) (String.length spec - i - 1) in
        match (cause_of_string cause, parse_share share) with
        | None, _ -> err "unknown stall cause %S (one of %s)" cause (known_causes ())
        | _, None -> err "expected a share in (0, 1], got %S" share
        | Some cause, Some share -> finish (Stall_share { cause; share })))
    | "stall_share", None -> err "expected stall_share:CAUSE>P"
    | "ecc_storm", Some n -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> finish (Ecc_storm n)
      | _ -> err "expected ecc_storm:N with N > 0")
    | "ecc_storm", None -> err "expected ecc_storm:N (corrections per window)"
    | "mode_residency", Some spec -> (
      match String.index_opt spec '>' with
      | None -> err "expected mode_residency:user|metal>P"
      | Some i -> (
        let mode = String.sub spec 0 i in
        let share = String.sub spec (i + 1) (String.length spec - i - 1) in
        match (mode, parse_share share) with
        | ("user" | "metal"), Some share ->
          finish (Mode_residency { metal = mode = "metal"; share })
        | ("user" | "metal"), None ->
          err "expected a share in (0, 1], got %S" share
        | _ -> err "unknown mode %S (user or metal)" mode))
    | "mode_residency", None -> err "expected mode_residency:user|metal>P"
    | _ ->
      err "unknown rule (one of wcet, ipc_floor:R, stall_share:CAUSE>P, \
           ecc_storm:N, mode_residency:MODE>P)"

  let rules_of_string s =
    let items =
      List.map String.trim (String.split_on_char ',' (String.trim s))
    in
    if List.mem "" items then
      (* A dangling comma is more likely a typo in a longer spec than a
         deliberate no-op; reject it loudly. *)
      Error "empty rule in watch spec"
    else
      List.fold_left
        (fun acc item ->
           match acc with
           | Error _ as e -> e
           | Ok rs -> (
             match parse_one (String.trim item) with
             | Ok r -> Ok (r :: rs)
             | Error _ as e -> e))
        (Ok []) items
      |> Result.map List.rev

  let needs_wcet rules = List.exists (fun r -> r.check = Wcet) rules

  let alarm_to_string a =
    Printf.sprintf "watchdog[%s] %s w%d @cycle %d: %s"
      (severity_to_string a.severity)
      a.rule a.window a.cycle a.message
end

(* ------------------------------------------------------------------ *)
(* Series: the immutable windowed snapshot                             *)
(* ------------------------------------------------------------------ *)

module Series = struct
  type window = {
    index : int;
    user_cycles : int;
    metal_cycles : int;
    instructions : int;
    metal_instructions : int;
    stalls : (string * int) list;
    tlb_misses : int;
    flushes : int;
    mode_enters : int;
    mroutine_exits : int;
    mroutine_cycles : int;
    mroutine_max : int;
    ecc_corrections : int;
    injections : int;
  }

  type t = {
    window_cycles : int;
    windows : window list;
    dropped_entries : int;
    machine_cycles : int;
    accounted_cycles : int;
  }

  let empty =
    {
      window_cycles = 0;
      windows = [];
      dropped_entries = 0;
      machine_cycles = 0;
      accounted_cycles = 0;
    }

  let equal (a : t) (b : t) = a = b
  let window_cycle_count w = w.user_cycles + w.metal_cycles

  let ipc w =
    let c = window_cycle_count w in
    if c = 0 then 0.0 else float_of_int w.instructions /. float_of_int c

  let total_cycles t =
    List.fold_left (fun acc w -> acc + window_cycle_count w) 0 t.windows

  let total_instructions t =
    List.fold_left (fun acc w -> acc + w.instructions) 0 t.windows

  let stall_causes = List.init Event.stall_count Event.stall_name

  (* Canonical cause order, zero entries elided — the invariant every
     [stalls] field maintains so merged documents render canonically. *)
  let merge_stalls a b =
    let get l k = Option.value ~default:0 (List.assoc_opt k l) in
    List.filter_map
      (fun k ->
         let v = get a k + get b k in
         if v = 0 then None else Some (k, v))
      stall_causes

  let merge_window a b =
    {
      index = a.index;
      user_cycles = a.user_cycles + b.user_cycles;
      metal_cycles = a.metal_cycles + b.metal_cycles;
      instructions = a.instructions + b.instructions;
      metal_instructions = a.metal_instructions + b.metal_instructions;
      stalls = merge_stalls a.stalls b.stalls;
      tlb_misses = a.tlb_misses + b.tlb_misses;
      flushes = a.flushes + b.flushes;
      mode_enters = a.mode_enters + b.mode_enters;
      mroutine_exits = a.mroutine_exits + b.mroutine_exits;
      mroutine_cycles = a.mroutine_cycles + b.mroutine_cycles;
      mroutine_max = max a.mroutine_max b.mroutine_max;
      ecc_corrections = a.ecc_corrections + b.ecc_corrections;
      injections = a.injections + b.injections;
    }

  let rec merge_windows a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: a', y :: b' -> merge_window x y :: merge_windows a' b'

  let merge a b =
    if a.window_cycles = 0 then b
    else if b.window_cycles = 0 then a
    else if a.window_cycles <> b.window_cycles then
      invalid_arg "Telemetry.Series.merge: window size mismatch"
    else
      {
        window_cycles = a.window_cycles;
        windows = merge_windows a.windows b.windows;
        dropped_entries = a.dropped_entries + b.dropped_entries;
        machine_cycles = a.machine_cycles + b.machine_cycles;
        accounted_cycles = a.accounted_cycles + b.accounted_cycles;
      }

  let annotate t ~machine_cycles ~accounted_cycles =
    { t with machine_cycles; accounted_cycles }

  (* --- rendering ------------------------------------------------- *)

  type totals = {
    t_user : int;
    t_metal : int;
    t_instrs : int;
    t_minstrs : int;
    t_stalls : (string * int) list;  (* full canonical set, with zeros *)
    t_tlb : int;
    t_flush : int;
    t_enters : int;
    t_exits : int;
    t_mcycles : int;
    t_mmax : int;
    t_ecc : int;
    t_inj : int;
  }

  let totals t =
    let get l k = Option.value ~default:0 (List.assoc_opt k l) in
    List.fold_left
      (fun acc w ->
         {
           t_user = acc.t_user + w.user_cycles;
           t_metal = acc.t_metal + w.metal_cycles;
           t_instrs = acc.t_instrs + w.instructions;
           t_minstrs = acc.t_minstrs + w.metal_instructions;
           t_stalls =
             List.map
               (fun (k, v) -> (k, v + get w.stalls k))
               acc.t_stalls;
           t_tlb = acc.t_tlb + w.tlb_misses;
           t_flush = acc.t_flush + w.flushes;
           t_enters = acc.t_enters + w.mode_enters;
           t_exits = acc.t_exits + w.mroutine_exits;
           t_mcycles = acc.t_mcycles + w.mroutine_cycles;
           t_mmax = max acc.t_mmax w.mroutine_max;
           t_ecc = acc.t_ecc + w.ecc_corrections;
           t_inj = acc.t_inj + w.injections;
         })
      {
        t_user = 0;
        t_metal = 0;
        t_instrs = 0;
        t_minstrs = 0;
        t_stalls = List.map (fun k -> (k, 0)) stall_causes;
        t_tlb = 0;
        t_flush = 0;
        t_enters = 0;
        t_exits = 0;
        t_mcycles = 0;
        t_mmax = 0;
        t_ecc = 0;
        t_inj = 0;
      }
      t.windows

  let buf_counts buf l =
    Buffer.add_string buf "{";
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_string buf ", ";
         Buffer.add_string buf (Printf.sprintf "%S: %d" k v))
      l;
    Buffer.add_string buf "}"

  let ipc_of ~instrs ~cycles =
    if cycles = 0 then 0.0 else float_of_int instrs /. float_of_int cycles

  let to_ndjson t =
    let buf = Buffer.create 4096 in
    let tot = totals t in
    let cycles = tot.t_user + tot.t_metal in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"schema\": \"metal-telemetry-v1\", \"window_cycles\": %d, \
          \"windows\": %d, \"total_cycles\": %d, \"user_cycles\": %d, \
          \"metal_cycles\": %d, \"instructions\": %d, \
          \"metal_instructions\": %d, \"ipc\": %.4f, \"stall_cycles\": "
         t.window_cycles (List.length t.windows) cycles tot.t_user tot.t_metal
         tot.t_instrs tot.t_minstrs
         (ipc_of ~instrs:tot.t_instrs ~cycles));
    buf_counts buf tot.t_stalls;
    Buffer.add_string buf
      (Printf.sprintf
         ", \"tlb_misses\": %d, \"flushes\": %d, \"mode_enters\": %d, \
          \"mroutine_exits\": %d, \"mroutine_cycles\": %d, \
          \"mroutine_max\": %d, \"ecc_corrections\": %d, \
          \"injections\": %d, \"dropped_entries\": %d, \
          \"machine_cycles\": %d, \"accounted_cycles\": %d}\n"
         tot.t_tlb tot.t_flush tot.t_enters tot.t_exits tot.t_mcycles
         tot.t_mmax tot.t_ecc tot.t_inj t.dropped_entries t.machine_cycles
         t.accounted_cycles);
    List.iter
      (fun w ->
         Buffer.add_string buf
           (Printf.sprintf
              "{\"w\": %d, \"user_cycles\": %d, \"metal_cycles\": %d, \
               \"instructions\": %d, \"metal_instructions\": %d, \
               \"ipc\": %.4f, \"stalls\": "
              w.index w.user_cycles w.metal_cycles w.instructions
              w.metal_instructions (ipc w));
         buf_counts buf w.stalls;
         Buffer.add_string buf
           (Printf.sprintf
              ", \"tlb_misses\": %d, \"flushes\": %d, \"mode_enters\": %d, \
               \"mroutine_exits\": %d, \"mroutine_cycles\": %d, \
               \"mroutine_max\": %d, \"ecc_corrections\": %d, \
               \"injections\": %d}\n"
              w.tlb_misses w.flushes w.mode_enters w.mroutine_exits
              w.mroutine_cycles w.mroutine_max w.ecc_corrections
              w.injections))
      t.windows;
    Buffer.contents buf

  let to_csv t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "window,user_cycles,metal_cycles,instructions,";
    Buffer.add_string buf "metal_instructions,ipc,";
    List.iter
      (fun c -> Buffer.add_string buf (Printf.sprintf "stall_%s," c))
      stall_causes;
    Buffer.add_string buf
      "tlb_misses,flushes,mode_enters,mroutine_exits,mroutine_cycles,\
       mroutine_max,ecc_corrections,injections\n";
    let get l k = Option.value ~default:0 (List.assoc_opt k l) in
    List.iter
      (fun w ->
         Buffer.add_string buf
           (Printf.sprintf "%d,%d,%d,%d,%d,%.4f," w.index w.user_cycles
              w.metal_cycles w.instructions w.metal_instructions (ipc w));
         List.iter
           (fun c -> Buffer.add_string buf (Printf.sprintf "%d," (get w.stalls c)))
           stall_causes;
         Buffer.add_string buf
           (Printf.sprintf "%d,%d,%d,%d,%d,%d,%d,%d\n" w.tlb_misses w.flushes
              w.mode_enters w.mroutine_exits w.mroutine_cycles w.mroutine_max
              w.ecc_corrections w.injections))
      t.windows;
    Buffer.contents buf

  (* --- parsing ---------------------------------------------------- *)

  let int_member name j =
    match Option.bind (Json.member name j) Json.to_num with
    | Some f when Float.is_integer f -> Ok (int_of_float f)
    | Some _ -> Error (Printf.sprintf "field %S is not an integer" name)
    | None -> Error (Printf.sprintf "missing integer field %S" name)

  let ( let* ) = Result.bind

  let stalls_member j =
    match Json.member "stalls" j with
    | Some (Json.Obj fields) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | (k, v) :: rest -> (
          match Json.to_num v with
          | Some f when Float.is_integer f ->
            go ((k, int_of_float f) :: acc) rest
          | _ -> Error (Printf.sprintf "stall count %S is not an integer" k))
      in
      go [] fields
    | _ -> Error "missing \"stalls\" object"

  let window_of_json ~expect j =
    let* index = int_member "w" j in
    if index <> expect then
      Error (Printf.sprintf "window %d out of order (expected %d)" index expect)
    else
      let* user_cycles = int_member "user_cycles" j in
      let* metal_cycles = int_member "metal_cycles" j in
      let* instructions = int_member "instructions" j in
      let* metal_instructions = int_member "metal_instructions" j in
      let* stalls = stalls_member j in
      let* tlb_misses = int_member "tlb_misses" j in
      let* flushes = int_member "flushes" j in
      let* mode_enters = int_member "mode_enters" j in
      let* mroutine_exits = int_member "mroutine_exits" j in
      let* mroutine_cycles = int_member "mroutine_cycles" j in
      let* mroutine_max = int_member "mroutine_max" j in
      let* ecc_corrections = int_member "ecc_corrections" j in
      let* injections = int_member "injections" j in
      Ok
        {
          index;
          user_cycles;
          metal_cycles;
          instructions;
          metal_instructions;
          stalls;
          tlb_misses;
          flushes;
          mode_enters;
          mroutine_exits;
          mroutine_cycles;
          mroutine_max;
          ecc_corrections;
          injections;
        }

  let of_ndjson s =
    let lines =
      List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' s)
    in
    match lines with
    | [] -> Error "empty telemetry document"
    | header :: rest ->
      let* h = Json.parse header in
      let* () =
        match Option.bind (Json.member "schema" h) Json.to_string with
        | Some "metal-telemetry-v1" -> Ok ()
        | Some other -> Error (Printf.sprintf "unexpected schema %S" other)
        | None -> Error "missing \"schema\""
      in
      let* window_cycles = int_member "window_cycles" h in
      let* declared = int_member "windows" h in
      let* dropped_entries = int_member "dropped_entries" h in
      let* machine_cycles = int_member "machine_cycles" h in
      let* accounted_cycles = int_member "accounted_cycles" h in
      if window_cycles <= 0 then Error "window_cycles must be positive"
      else if declared <> List.length rest then
        Error
          (Printf.sprintf "header declares %d windows, document has %d"
             declared (List.length rest))
      else
        let rec go i acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest ->
            let* j = Json.parse line in
            let* w = window_of_json ~expect:i j in
            go (i + 1) (w :: acc) rest
        in
        let* windows = go 0 [] rest in
        Ok
          {
            window_cycles;
            windows;
            dropped_entries;
            machine_cycles;
            accounted_cycles;
          }

  (* --- sparkline summary ------------------------------------------ *)

  let glyphs =
    [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
       "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

  let max_spark_width = 64

  (* Bucket-average [values] down to at most [max_spark_width] cells so
     long runs stay one terminal line wide. *)
  let resample values =
    let n = Array.length values in
    if n <= max_spark_width then values
    else
      Array.init max_spark_width (fun i ->
          let lo = i * n / max_spark_width in
          let hi = max (lo + 1) ((i + 1) * n / max_spark_width) in
          let sum = ref 0.0 in
          for k = lo to hi - 1 do
            sum := !sum +. values.(k)
          done;
          !sum /. float_of_int (hi - lo))

  let spark values =
    let values = resample values in
    let vmax = Array.fold_left max 0.0 values in
    let buf = Buffer.create (3 * Array.length values) in
    Array.iter
      (fun v ->
         let level =
           if vmax <= 0.0 then 0
           else min 7 (int_of_float (v /. vmax *. 8.0))
         in
         Buffer.add_string buf glyphs.(level))
      values;
    Buffer.contents buf

  let extremum cmp values =
    let best = ref 0 in
    Array.iteri (fun i v -> if cmp v values.(!best) then best := i) values;
    !best

  let pp fmt t =
    let windows = Array.of_list t.windows in
    let n = Array.length windows in
    Format.fprintf fmt "@[<v>telemetry: %d windows x %d cycles, %d cycles covered"
      n t.window_cycles (total_cycles t);
    if t.machine_cycles > 0 && t.machine_cycles <> total_cycles t then
      Format.fprintf fmt " (machine ran %d)" t.machine_cycles;
    if n > 0 then begin
      let line name render values =
        let lo = extremum ( < ) values and hi = extremum ( > ) values in
        Format.fprintf fmt "@,  %-7s %s  min %s @w%d  max %s @w%d" name
          (spark values) (render values.(lo)) lo (render values.(hi)) hi
      in
      let share f =
        Array.map
          (fun w ->
             let c = window_cycle_count w in
             if c = 0 then 0.0 else float_of_int (f w) /. float_of_int c)
          windows
      in
      let counts f = Array.map (fun w -> float_of_int (f w)) windows in
      let pct v = Printf.sprintf "%.0f%%" (100.0 *. v) in
      let num v = Printf.sprintf "%.2f" v in
      let int v = Printf.sprintf "%.0f" v in
      let total f = Array.fold_left (fun a w -> a + f w) 0 windows in
      line "ipc" num (Array.map ipc windows);
      line "metal%" pct (share (fun w -> w.metal_cycles));
      line "stall%" pct
        (share (fun w -> List.fold_left (fun a (_, v) -> a + v) 0 w.stalls));
      if total (fun w -> w.tlb_misses) > 0 then
        line "tlbmiss" int (counts (fun w -> w.tlb_misses));
      if total (fun w -> w.mroutine_exits) > 0 then
        line "mexits" int (counts (fun w -> w.mroutine_exits));
      if total (fun w -> w.ecc_corrections) > 0 then
        line "ecc" int (counts (fun w -> w.ecc_corrections));
      if total (fun w -> w.injections) > 0 then
        line "inject" int (counts (fun w -> w.injections))
    end;
    if t.dropped_entries > 0 then
      Format.fprintf fmt
        "@,WARNING: %d open mode-entry frames dropped (latencies incomplete)"
        t.dropped_entries;
    Format.fprintf fmt "@]"
end

(* ------------------------------------------------------------------ *)
(* The live collector                                                  *)
(* ------------------------------------------------------------------ *)

(* Mirrors [Trace.Collector]'s open-frame stack: nested deliveries keep
   at most this many unmatched mode_enter frames. *)
let entry_stack_depth = 16

type acc = {
  mutable a_user : int;
  mutable a_metal : int;
  mutable a_instrs : int;
  mutable a_minstrs : int;
  a_stalls : int array;
  mutable a_tlb : int;
  mutable a_flush : int;
  mutable a_enters : int;
  mutable a_exits : int;
  mutable a_mcycles : int;
  mutable a_mmax : int;
  mutable a_ecc : int;
  mutable a_inj : int;
}

type t = {
  window_cycles : int;
  rules : Watchdog.rule list;
  wcet_bounds : (int * int) list;
  acc : acc;
  mutable index : int;
  mutable last_cycle : int;
  mutable in_metal : bool;
  entry_stack : int array;
  enter_cycles : int array;
  mutable entry_sp : int;
  mutable dropped_entries : int;
  mutable closed_rev : Series.window list;
  mutable alarms_rev : Watchdog.alarm list;
}

let default_window = 1024

let create ?(window_cycles = default_window) ?(rules = []) ?(wcet_bounds = [])
    () =
  if window_cycles <= 0 then
    invalid_arg "Telemetry.create: window_cycles must be positive";
  {
    window_cycles;
    rules;
    wcet_bounds;
    acc =
      {
        a_user = 0;
        a_metal = 0;
        a_instrs = 0;
        a_minstrs = 0;
        a_stalls = Array.make Event.stall_count 0;
        a_tlb = 0;
        a_flush = 0;
        a_enters = 0;
        a_exits = 0;
        a_mcycles = 0;
        a_mmax = 0;
        a_ecc = 0;
        a_inj = 0;
      };
    index = 0;
    last_cycle = 0;
    in_metal = false;
    entry_stack = Array.make entry_stack_depth 0;
    enter_cycles = Array.make entry_stack_depth 0;
    entry_sp = 0;
    dropped_entries = 0;
    closed_rev = [];
    alarms_rev = [];
  }

let window_of_acc t =
  let a = t.acc in
  let stalls = ref [] in
  for c = Event.stall_count - 1 downto 0 do
    if a.a_stalls.(c) > 0 then
      stalls := (Event.stall_name c, a.a_stalls.(c)) :: !stalls
  done;
  {
    Series.index = t.index;
    user_cycles = a.a_user;
    metal_cycles = a.a_metal;
    instructions = a.a_instrs;
    metal_instructions = a.a_minstrs;
    stalls = !stalls;
    tlb_misses = a.a_tlb;
    flushes = a.a_flush;
    mode_enters = a.a_enters;
    mroutine_exits = a.a_exits;
    mroutine_cycles = a.a_mcycles;
    mroutine_max = a.a_mmax;
    ecc_corrections = a.a_ecc;
    injections = a.a_inj;
  }

let reset_acc t =
  let a = t.acc in
  a.a_user <- 0;
  a.a_metal <- 0;
  a.a_instrs <- 0;
  a.a_minstrs <- 0;
  Array.fill a.a_stalls 0 Event.stall_count 0;
  a.a_tlb <- 0;
  a.a_flush <- 0;
  a.a_enters <- 0;
  a.a_exits <- 0;
  a.a_mcycles <- 0;
  a.a_mmax <- 0;
  a.a_ecc <- 0;
  a.a_inj <- 0

let raise_alarm t rule ~window ~cycle ~value ~threshold message =
  t.alarms_rev <-
    {
      Watchdog.rule = Watchdog.rule_to_string rule;
      severity = rule.Watchdog.severity;
      window;
      cycle;
      value;
      threshold;
      message;
    }
    :: t.alarms_rev

(* Window rules are judged as the window closes — on exactly
   [window_cycles] cycles of residency, so rates compare fairly. *)
let eval_window t (w : Series.window) =
  let cycles = Series.window_cycle_count w in
  let close_cycle = (w.index + 1) * t.window_cycles in
  List.iter
    (fun (rule : Watchdog.rule) ->
       match rule.check with
       | Watchdog.Wcet -> ()
       | Watchdog.Ipc_floor floor ->
         let ipc = Series.ipc w in
         if cycles > 0 && ipc < floor then
           raise_alarm t rule ~window:w.index ~cycle:close_cycle ~value:ipc
             ~threshold:floor
             (Printf.sprintf "ipc %.2f < floor %.2f (%d instructions in %d cycles)"
                ipc floor w.instructions cycles)
       | Watchdog.Stall_share { cause; share } ->
         let s =
           Option.value ~default:0
             (List.assoc_opt (Event.stall_name cause) w.stalls)
         in
         let observed =
           if cycles = 0 then 0.0 else float_of_int s /. float_of_int cycles
         in
         if cycles > 0 && observed > share then
           raise_alarm t rule ~window:w.index ~cycle:close_cycle
             ~value:observed ~threshold:share
             (Printf.sprintf "%s stalls %.2f of window > %.2f (%d of %d cycles)"
                (Event.stall_name cause) observed share s cycles)
       | Watchdog.Ecc_storm n ->
         if w.ecc_corrections >= n then
           raise_alarm t rule ~window:w.index ~cycle:close_cycle
             ~value:(float_of_int w.ecc_corrections)
             ~threshold:(float_of_int n)
             (Printf.sprintf "%d ecc corrections >= storm threshold %d"
                w.ecc_corrections n)
       | Watchdog.Mode_residency { metal; share } ->
         let s = if metal then w.metal_cycles else w.user_cycles in
         let observed =
           if cycles = 0 then 0.0 else float_of_int s /. float_of_int cycles
         in
         if cycles > 0 && observed > share then
           raise_alarm t rule ~window:w.index ~cycle:close_cycle
             ~value:observed ~threshold:share
             (Printf.sprintf "%s residency %.2f > %.2f (%d of %d cycles)"
                (if metal then "metal" else "user")
                observed share s cycles))
    t.rules

(* The [wcet] rule fires at the offending mroutine exit, not at window
   close: a latency violation is a fact the moment the exit retires. *)
let check_wcet t ~entry ~latency ~cycle =
  List.iter
    (fun (rule : Watchdog.rule) ->
       if rule.check = Watchdog.Wcet then
         match List.assoc_opt entry t.wcet_bounds with
         | Some bound ->
           if latency > bound then
             raise_alarm t rule ~window:t.index ~cycle
               ~value:(float_of_int latency) ~threshold:(float_of_int bound)
               (Printf.sprintf
                  "mroutine entry %d: measured %d cycles > static bound %d"
                  entry latency bound)
         | None ->
           raise_alarm t
             { rule with severity = Watchdog.Fault }
             ~window:t.index ~cycle ~value:(float_of_int latency)
             ~threshold:0.0
             (Printf.sprintf "mroutine entry %d has no static bound" entry))
    t.rules

let add_residency t n =
  if n > 0 then
    if t.in_metal then t.acc.a_metal <- t.acc.a_metal + n
    else t.acc.a_user <- t.acc.a_user + n

let close_window t =
  let w = window_of_acc t in
  t.closed_rev <- w :: t.closed_rev;
  eval_window t w;
  reset_acc t;
  t.index <- t.index + 1

(* Attribute the residency span [last_cycle, cycle) to windows,
   splitting it at window boundaries and crediting the mode active
   over the span (mode flips happen *after* the advance, mirroring
   [Collector.switch_mode]'s previous-mode attribution). *)
let advance t ~cycle =
  let rec go () =
    let boundary = (t.index + 1) * t.window_cycles in
    if cycle >= boundary then begin
      add_residency t (boundary - t.last_cycle);
      t.last_cycle <- boundary;
      close_window t;
      go ()
    end
  in
  go ();
  add_residency t (cycle - t.last_cycle);
  t.last_cycle <- cycle

let probe t cycle kind a b =
  advance t ~cycle;
  let acc = t.acc in
  if kind = Event.retire then begin
    acc.a_instrs <- acc.a_instrs + 1;
    if b = 1 then acc.a_minstrs <- acc.a_minstrs + 1
  end
  else if kind = Event.mode_enter then begin
    t.in_metal <- true;
    acc.a_enters <- acc.a_enters + 1;
    if t.entry_sp = entry_stack_depth then begin
      Array.blit t.entry_stack 1 t.entry_stack 0 (entry_stack_depth - 1);
      Array.blit t.enter_cycles 1 t.enter_cycles 0 (entry_stack_depth - 1);
      t.entry_sp <- entry_stack_depth - 1;
      t.dropped_entries <- t.dropped_entries + 1
    end;
    t.entry_stack.(t.entry_sp) <- a;
    t.enter_cycles.(t.entry_sp) <- cycle;
    t.entry_sp <- t.entry_sp + 1
  end
  else if kind = Event.mode_exit then begin
    t.in_metal <- false;
    if t.entry_sp > 0 then begin
      t.entry_sp <- t.entry_sp - 1;
      let entry = t.entry_stack.(t.entry_sp) in
      let latency = cycle - t.enter_cycles.(t.entry_sp) in
      acc.a_exits <- acc.a_exits + 1;
      acc.a_mcycles <- acc.a_mcycles + latency;
      if latency > acc.a_mmax then acc.a_mmax <- latency;
      check_wcet t ~entry ~latency ~cycle
    end
  end
  else if kind = Event.stall_begin then
    acc.a_stalls.(a) <- acc.a_stalls.(a) + b
  else if kind = Event.tlb_miss then acc.a_tlb <- acc.a_tlb + 1
  else if kind = Event.flush then acc.a_flush <- acc.a_flush + 1
  else if kind = Event.ecc_correct then acc.a_ecc <- acc.a_ecc + 1
  else if kind = Event.inject then acc.a_inj <- acc.a_inj + 1

let nonzero_window (w : Series.window) =
  w.user_cycles > 0 || w.metal_cycles > 0 || w.instructions > 0
  || w.stalls <> [] || w.tlb_misses > 0 || w.flushes > 0 || w.mode_enters > 0
  || w.mroutine_exits > 0 || w.ecc_corrections > 0 || w.injections > 0

let series t =
  let tail = window_of_acc t in
  let windows =
    List.rev
      (if nonzero_window tail then tail :: t.closed_rev else t.closed_rev)
  in
  {
    Series.window_cycles = t.window_cycles;
    windows;
    dropped_entries = t.dropped_entries;
    machine_cycles = 0;
    accounted_cycles = 0;
  }

let alarms t = List.rev t.alarms_rev

let fault_alarms l =
  List.filter (fun (a : Watchdog.alarm) -> a.severity = Watchdog.Fault) l
