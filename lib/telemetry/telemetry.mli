(** Windowed telemetry time-series + runtime invariant watchdogs.

    Where [Trace.Collector] answers "what happened over the whole run",
    this module answers "how did the run evolve": the probe stream is
    folded into fixed-size windows of [window_cycles] pipeline cycles
    each — per-mode cycle residency, instructions (hence IPC),
    per-cause stall cycles, TLB misses, flushes, mroutine latencies,
    ECC corrections and injected faults per window.  The collector is
    a pure observer on the PR-3 probe hook: one load-and-branch when
    disabled, identical streams from both steppers, and attaching it
    never changes architectural state or timing.

    On top sits a declarative watchdog engine: small rule specs
    evaluated as windows close (and, for [wcet], at every mroutine
    exit), emitting typed alarm records.  The [wcet] rule closes the
    loop with the static verifier: every *measured* menter→mexit
    latency is checked against the per-entry static bound computed by
    [Mverify] — the bounds are passed in as plain [(entry, bound)]
    pairs so this library stays below lib/mverify in the dependency
    order. *)

module Watchdog : sig
  type severity = Warn | Fault

  type check =
    | Wcet
        (** measured mroutine latency must stay ≤ the static bound *)
    | Ipc_floor of float  (** per-window IPC must stay ≥ the floor *)
    | Stall_share of { cause : int; share : float }
        (** per-window stall cycles of [cause] must stay ≤ share of
            the window's cycles *)
    | Ecc_storm of int
        (** per-window ECC corrections must stay < the count *)
    | Mode_residency of { metal : bool; share : float }
        (** per-window residency of the mode must stay ≤ the share *)

  type rule = { check : check; severity : severity }

  val rule : ?severity:severity -> check -> rule
  (** Default severity: fault for [Wcet], warn for the window rules. *)

  type alarm = {
    rule : string;  (** canonical spec of the rule that fired *)
    severity : severity;
    window : int;  (** window index the violation was observed in *)
    cycle : int;  (** cycle of the violation (window end; exit cycle
                      for [wcet]) *)
    value : float;  (** observed value *)
    threshold : float;  (** configured limit *)
    message : string;  (** one-line human rendering of the violation *)
  }

  val rule_to_string : rule -> string
  (** Canonical spec syntax; [rules_of_string] round-trips it. *)

  val rules_of_string : string -> (rule list, string) result
  (** Parse a comma-separated spec list: [wcet[:warn|:fault]],
      [ipc_floor:R], [stall_share:CAUSE>P], [ecc_storm:N],
      [mode_residency:user|metal>P].  Any rule takes an optional
      [:warn]/[:fault] severity suffix; [wcet] defaults to fault, the
      window rules default to warn.  [Error] carries a one-line
      description of the first bad spec. *)

  val needs_wcet : rule list -> bool
  (** True when the list contains a [Wcet] rule (the caller must then
      supply static bounds). *)

  val severity_to_string : severity -> string

  val alarm_to_string : alarm -> string
  (** ["watchdog[SEV] RULE wN @cycle C: MESSAGE"]. *)
end

module Series : sig
  type window = {
    index : int;  (** window index; covers cycles
                      [index * window_cycles, (index+1) * window_cycles) *)
    user_cycles : int;
    metal_cycles : int;
    instructions : int;  (** retires attributed to the window *)
    metal_instructions : int;
    stalls : (string * int) list;
        (** per-cause stall cycles charged at the stall's begin event,
            canonical cause order, zero causes elided *)
    tlb_misses : int;
    flushes : int;
    mode_enters : int;
    mroutine_exits : int;  (** completed menter→mexit round trips *)
    mroutine_cycles : int;  (** sum of completed latencies *)
    mroutine_max : int;  (** worst completed latency in the window *)
    ecc_corrections : int;
    injections : int;
  }

  type t = {
    window_cycles : int;  (** 0 only in [empty] *)
    windows : window list;  (** contiguous, ascending from index 0 *)
    dropped_entries : int;
        (** mode-entry frames evicted by stack overflow *)
    machine_cycles : int;
        (** [Stats.cycles] of the producing run(s); 0 = unannotated *)
    accounted_cycles : int;
        (** [Stats.accounted_cycles] of the producing run(s);
            0 = unannotated *)
  }

  val empty : t
  (** Identity for [merge]. *)

  val equal : t -> t -> bool

  val window_cycle_count : window -> int
  (** [user_cycles + metal_cycles]. *)

  val ipc : window -> float
  (** [instructions / cycles] of the window (0 for an empty window). *)

  val total_cycles : t -> int
  (** Sum of every window's residency — for a halting run this equals
      [Stats.cycles] (checked by [trace_check telemetry] against the
      [machine_cycles] annotation). *)

  val total_instructions : t -> int

  val merge : t -> t -> t
  (** Pointwise sum by window index (the shorter series is padded with
      empty windows); annotations are summed.  [empty] is the
      identity.  Commutative and associative, so [Fleet]'s index-order
      fold is byte-identical for any domain count.
      @raise Invalid_argument on a [window_cycles] mismatch. *)

  val annotate : t -> machine_cycles:int -> accounted_cycles:int -> t

  val to_ndjson : t -> string
  (** One header object (schema ["metal-telemetry-v1"], run totals),
      then one JSON object per window, newline-delimited.  Rendering
      is canonical: [to_ndjson (of_ndjson s)] is byte-identical. *)

  val of_ndjson : string -> (t, string) result

  val to_csv : t -> string
  (** Spreadsheet view: a header row then one row per window. *)

  val pp : Format.formatter -> t -> unit
  (** Human summary: per-metric sparklines over the window axis (IPC,
      stall share, Metal-mode residency; ECC/injection rows only when
      non-zero) with min/max annotations. *)
end

type t
(** A live windowed collector (optionally with watchdog rules). *)

val default_window : int
(** 1024 cycles. *)

val create :
  ?window_cycles:int ->
  ?rules:Watchdog.rule list ->
  ?wcet_bounds:(int * int) list ->
  unit ->
  t
(** [wcet_bounds] maps MRAM entry index to the static WCET bound in
    cycles (from [Mverify.wcet]); only consulted by a [Wcet] rule — an
    exit whose entry has no bound raises a fault-severity alarm.
    @raise Invalid_argument if [window_cycles <= 0]. *)

val probe : t -> int -> int -> int -> int -> unit
(** [(probe t) cycle kind a b]: the function to install with
    [Machine.set_probe] (composes with [Trace.Collector.probe] and
    [Profile.probe] through a fan-out). *)

val series : t -> Series.t
(** Non-mutating snapshot; the trailing partial window is included.
    Cycle residency covers [0, last event cycle) — on a halting run
    the final event lands on the halt cycle, so the series total
    equals [Stats.cycles]. *)

val alarms : t -> Watchdog.alarm list
(** Alarms raised so far, in firing order.  Window rules are evaluated
    when a window closes (the trailing partial window is never judged:
    a fraction of a window can not violate a rate rule fairly); [wcet]
    fires at the offending mroutine exit. *)

val fault_alarms : Watchdog.alarm list -> Watchdog.alarm list
