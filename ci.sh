#!/bin/sh
# CI entry point: full build, full test run, and sandbox hygiene.
#
# Fails if:
#   - the build or any test suite fails;
#   - build artifacts (_build/) are tracked in git;
#   - the working tree is dirty after the tests (a test or the build
#     wrote into the source tree).
set -eu

cd "$(dirname "$0")"

echo "== dune build @all =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== checking for tracked build artifacts =="
if git ls-files | grep -q '^_build/'; then
  echo "error: _build/ artifacts are tracked:" >&2
  git ls-files | grep '^_build/' >&2
  exit 1
fi

echo "== checking the sandbox is clean =="
status=$(git status --porcelain)
if [ -n "$status" ]; then
  echo "error: working tree dirty after tests:" >&2
  echo "$status" >&2
  exit 1
fi

echo "ci: OK"
