(* Mgen tests: compiling structured mroutines to mcode and running
   them on the machine. *)

open Metal_cpu
open Metal_mgen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot routines =
  let m = Machine.create () in
  (match Mgen.install m routines with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  m

let run m src =
  let img = Metal_asm.Asm.assemble_exn src in
  (match Machine.load_image m img with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Machine.set_pc m 0;
  match Pipeline.run m ~max_cycles:1_000_000 with
  | Some (Machine.Halt_ebreak _) -> ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "cycle budget exhausted"

let reg m name =
  match Reg.of_string name with
  | Some r -> Machine.get_reg m r
  | None -> Alcotest.fail name

(* ------------------------------------------------------------------ *)

let popcount =
  Mgen.(
    routine ~name:"popcount" ~entry:0
      [ let_ "bits" (param 0);
        let_ "n" (int 0);
        while_ (ne (var "bits") (int 0))
          [ set "n" (add (var "n") (and_ (var "bits") (int 1)));
            set "bits" (shr (var "bits") (int 1)) ];
        set_param 0 (var "n") ])

let test_popcount () =
  let m = boot [ popcount ] in
  run m "li a0, 0xF0F01234\nmenter 0\nmv s0, a0\nli a0, 0\nmenter 0\n\
         mv s1, a0\nli a0, -1\nmenter 0\nmv s2, a0\nebreak\n";
  check_int "popcount(0xF0F01234)" 13 (reg m "s0");
  check_int "popcount(0)" 0 (reg m "s1");
  check_int "popcount(-1)" 32 (reg m "s2")

(* Euclid by repeated subtraction; Mgen variables are statically
   allocated per compile (Section 2.1), so the swap uses xor instead of
   a branch-local temporary. *)
let gcd =
  Mgen.(
    routine ~name:"gcd" ~entry:1
      [ let_ "a" (param 0);
        let_ "b" (param 1);
        while_ (ne (var "b") (int 0))
          [ if_ (geu (var "a") (var "b"))
              [ set "a" (sub (var "a") (var "b")) ]
              [ (* swap *)
                set "a" (xor (var "a") (var "b"));
                set "b" (xor (var "a") (var "b"));
                set "a" (xor (var "a") (var "b")) ] ];
        set_param 0 (var "a") ])

(* asr_ (arithmetic shift right, keyword-mangled) and the .mbound
   emission of bounded loops. *)
let shifter =
  Mgen.(
    routine ~name:"shifter" ~entry:2
      [ let_ "x" (asr_ (param 0) (int 4));
        let_ "i" (int 3);
        while_ ~bound:3 (ne (var "i") (int 0))
          [ set "i" (sub (var "i") (int 1));
            set "x" (asr_ (var "x") (int 1)) ];
        set_param 0 (var "x") ])

let test_asr_bounded () =
  let src =
    match Mgen.compile [ shifter ] with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  check_bool "emits .mbound" true (Tutil.contains src ".mbound 4");
  let img = Metal_asm.Asm.assemble_exn src in
  check_int "one mbound annotation" 1 (List.length img.Metal_asm.Image.mbounds);
  let m = boot [ shifter ] in
  run m "li a0, -4096\nmenter 2\nmv s0, a0\nebreak\n";
  (* -4096 asr 4 = -256, then asr 1 three times = -32 *)
  check_int "asr chain" (-32) (Word.to_signed (reg m "s0"))

let test_gcd () =
  let m = boot [ gcd ] in
  run m "li a0, 252\nli a1, 105\nmenter 1\nmv s0, a0\n\
         li a0, 17\nli a1, 5\nmenter 1\nmv s1, a0\nebreak\n";
  check_int "gcd(252,105)" 21 (reg m "s0");
  check_int "gcd(17,5)" 1 (reg m "s1")

(* Memory access + store: checksum over a physical range, then write
   it after the range (a custom "checksum instruction"). *)
let checksum =
  Mgen.(
    routine ~name:"checksum" ~entry:2
      [ let_ "p" (param 0);
        let_ "end" (add (param 0) (param 1));
        let_ "h" (int 0);
        while_ (ltu (var "p") (var "end"))
          [ set "h" (xor (add (shl (var "h") (int 1)) (var "h"))
                       (load (var "p")));
            set "p" (add (var "p") (int 4)) ];
        store ~addr:(var "end") ~value:(var "h");
        set_param 0 (var "h") ])

let test_checksum () =
  let m = boot [ checksum ] in
  Machine.write_word m 0x8000 5;
  Machine.write_word m 0x8004 7;
  Machine.write_word m 0x8008 11;
  run m "li a0, 0x8000\nli a1, 12\nmenter 2\nmv s0, a0\nebreak\n";
  (* h0=0; h1=(0*3)^5=5; h2=(15)^7=8; h3=(24)^11=19 *)
  check_int "checksum" 19 (reg m "s0");
  check_int "stored after range" 19 (Machine.read_word m 0x800C)

(* Metal primitives: a routine reading/writing Metal registers and
   control registers. *)
let cycle_probe =
  Mgen.(
    routine ~name:"cycle_probe" ~entry:3
      [ set_mreg 9 (csr Csr.cycle);
        set_param 0 (mreg 9);
        set_param 1 (csr Csr.instret) ])

let test_metal_primitives () =
  let m = boot [ cycle_probe ] in
  run m "menter 3\nmv s0, a0\nmv s1, a1\nebreak\n";
  check_bool "cycle read" true (reg m "s0" > 0);
  check_bool "mreg holds it" true
    (Machine.get_mreg m 9 = reg m "s0");
  check_bool "instret read" true (reg m "s1" > 0)

(* A TLB-filling routine written in Mgen: identity-map the page of the
   address in a0 with rwx, pkey 0 (a tiny software TLB refill). *)
let identity_fill =
  Mgen.(
    routine ~name:"identity_fill" ~entry:4
      [ let_ "page" (and_ (param 0) (int 0xFFFFF000));
        (* tag: page | asid<<4, data: page | XWR *)
        tlb_write
          ~tag:(or_ (var "page") (shl (csr Csr.asid) (int 4)))
          ~data:(or_ (var "page") (int 0xE)) ])

let test_tlb_fill () =
  let m = boot [ identity_fill ] in
  run m "li a0, 0x5123\nmenter 4\nebreak\n";
  match Metal_hw.Tlb.lookup m.Machine.tlb ~asid:0 ~vpn:5 with
  | Some e ->
    check_int "ppn" 5 e.Metal_hw.Tlb.ppn;
    check_bool "perms" true (e.Metal_hw.Tlb.r && e.Metal_hw.Tlb.w && e.Metal_hw.Tlb.x)
  | None -> Alcotest.fail "tlb entry missing"

(* Several routines in one compile share the variable region without
   collision. *)
let test_multiple_routines () =
  let m = boot [ popcount; gcd; checksum ] in
  Machine.write_word m 0x8000 1;
  run m "li a0, 7\nmenter 0\nmv s0, a0\nli a0, 12\nli a1, 8\nmenter 1\n\
         mv s1, a0\nebreak\n";
  check_int "popcount" 3 (reg m "s0");
  check_int "gcd" 4 (reg m "s1")

(* Compiler diagnostics. *)
let test_errors () =
  let fails routines =
    match Mgen.compile routines with
    | Error _ -> true
    | Ok _ -> false
  in
  check_bool "undefined variable" true
    (fails Mgen.[ routine ~name:"r" ~entry:0 [ set "x" (int 1) ] ]);
  check_bool "redeclared variable" true
    (fails Mgen.[ routine ~name:"r" ~entry:0
                    [ let_ "x" (int 1); let_ "x" (int 2) ] ]);
  check_bool "bad parameter" true
    (fails Mgen.[ routine ~name:"r" ~entry:0 [ set_param 9 (int 1) ] ]);
  check_bool "bad entry" true
    (fails Mgen.[ routine ~name:"r" ~entry:64 [ Mgen.exit ] ]);
  check_bool "duplicate names" true
    (fails Mgen.[ routine ~name:"r" ~entry:0 [ Mgen.exit ];
                  routine ~name:"r" ~entry:1 [ Mgen.exit ] ]);
  (* deep expressions exhaust the scratch pool *)
  let rec deep n = if n = 0 then Mgen.int 1 else Mgen.add (Mgen.int 1) (deep (n - 1)) in
  check_bool "too deep" true
    (fails Mgen.[ routine ~name:"r" ~entry:0 [ set_param 0 (deep 10) ] ]);
  check_bool "shallow ok" false
    (fails Mgen.[ routine ~name:"r" ~entry:0 [ set_param 0 (deep 3) ] ])

(* The implicit mexit: a routine without explicit exit still returns. *)
let test_implicit_exit () =
  let m =
    boot Mgen.[ routine ~name:"nopr" ~entry:5 [ set_param 0 (int 99) ] ]
  in
  run m "li a0, 0\nmenter 5\nmv s0, a0\nebreak\n";
  check_int "returned" 99 (reg m "s0")

let () =
  Alcotest.run "mgen"
    [
      ( "programs",
        [ Alcotest.test_case "popcount" `Quick test_popcount;
          Alcotest.test_case "gcd" `Quick test_gcd;
          Alcotest.test_case "checksum" `Quick test_checksum;
          Alcotest.test_case "metal primitives" `Quick test_metal_primitives;
          Alcotest.test_case "tlb fill" `Quick test_tlb_fill;
          Alcotest.test_case "multiple routines" `Quick test_multiple_routines;
          Alcotest.test_case "implicit exit" `Quick test_implicit_exit;
          Alcotest.test_case "asr + bounded while" `Quick test_asr_bounded ] );
      ( "diagnostics", [ Alcotest.test_case "errors" `Quick test_errors ] );
    ]
