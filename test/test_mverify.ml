(* Tests for the static mcode verifier (lib/mverify): accept/reject
   fixtures for each check, and the WCET soundness property — for a
   fixed-seed corpus of random Mgen mroutines, the measured
   mode_enter->mode_exit latency of every invocation stays within the
   static bound, on both steppers. *)

open Metal_cpu
module V = Metal_mverify.Mverify
module Mgen = Metal_mgen.Mgen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let verify ?config src =
  V.verify ?config (Metal_asm.Asm.assemble_exn src)

let has_error r check =
  List.exists (fun (f : V.finding) -> f.V.check = check) (V.errors r)

let has_warning r check =
  List.exists (fun (f : V.finding) -> f.V.check = check) (V.warnings r)

(* ------------------------------------------------------------------ *)
(* Accept fixtures *)

let test_accept_straight_line () =
  let r = verify ".mentry 0, f\nf:\naddi t0, t0, 1\nslli t1, t0, 2\nmexit\n" in
  check_bool "ok" true (V.ok r);
  check_int "entries" 1 (List.length r.V.entries);
  (match V.wcet r ~entry:0 with
   | None -> Alcotest.fail "no WCET for a straight-line mroutine"
   | Some w ->
     (* 3 instructions + entry overhead; must be positive and small. *)
     check_bool "bound is positive" true (w > 3);
     check_bool "bound is tight-ish" true (w < 60));
  match V.interrupt_latency_bound r with
  | Some b -> check_int "latency bound = only entry's WCET" b
                (Option.get (V.wcet r ~entry:0))
  | None -> Alcotest.fail "no interrupt-latency bound"

let bounded_loop n =
  Printf.sprintf
    ".mentry 3, f\nf:\nli t0, %d\n.mbound %d\nhead:\naddi t0, t0, -1\n\
     bne t0, zero, head\nmexit\n"
    n (n + 1)

let test_accept_bounded_loop () =
  let r4 = verify (bounded_loop 4) and r64 = verify (bounded_loop 64) in
  check_bool "ok (4)" true (V.ok r4);
  check_bool "ok (64)" true (V.ok r64);
  let w4 = Option.get (V.wcet r4 ~entry:3)
  and w64 = Option.get (V.wcet r64 ~entry:3) in
  check_bool "bound scales with .mbound" true (w64 > w4 + 100)

let test_accept_call_ret () =
  let r =
    verify
      ".mentry 0, f\nf:\njal t3, sub\naddi t1, t1, 1\nmexit\n\
       sub:\naddi t0, t0, 1\njr t3\n"
  in
  check_bool "ok" true (V.ok r);
  check_bool "has WCET" true (V.wcet r ~entry:0 <> None)

(* Clobbers parked in an m-register are not warned about. *)
let test_accept_parked_clobber () =
  let r =
    verify
      ".mentry 0, f\nf:\nwmr m20, s0\nli s0, 99\naddi s0, s0, 1\n\
       rmr s0, m20\nmexit\n"
  in
  check_bool "ok" true (V.ok r);
  check_bool "no clobber warning" false (has_warning r "regs")

(* ------------------------------------------------------------------ *)
(* Reject fixtures *)

let test_reject_out_of_segment_branch () =
  (* jal to beyond the 16 KiB code segment, and a backward branch to
     a negative address *)
  let r1 = verify ".mentry 0, f\nf:\njal zero, 20000\nmexit\n" in
  check_bool "forward out" true (has_error r1 "segment");
  let r2 = verify ".mentry 0, f\nf:\nbeq zero, zero, -8\nmexit\n" in
  check_bool "backward out" true (has_error r2 "segment")

let test_reject_missing_mexit () =
  (* Falls off the end of the assembled image. *)
  let r = verify ".mentry 0, f\nf:\naddi t0, t0, 1\n" in
  check_bool "not ok" false (V.ok r);
  check_bool "terminate error" true (has_error r "terminate");
  check_bool "WCET defeated" true (V.wcet r ~entry:0 = None)

let test_reject_stray_ret () =
  let r = verify ".mentry 0, f\nf:\njalr zero, 0(t0)\n" in
  check_bool "stray ret" true (has_error r "terminate")

let test_reject_forbidden () =
  let r = verify ".mentry 0, f\nf:\necall\nmexit\n" in
  check_bool "ecall" true (has_error r "forbidden");
  let r = verify ".mentry 0, f\nf:\nmenter 1\nmexit\n" in
  check_bool "nested menter" true (has_error r "forbidden")

let test_reject_undecodable () =
  let r = verify ".mentry 0, f\nf:\n.word 0xFFFFFFFF\nmexit\n" in
  check_bool "undecodable" true (has_error r "decode")

let test_reject_bad_data_slot () =
  let r = verify ".mentry 0, f\nf:\nmld t0, -4(zero)\nmexit\n" in
  check_bool "negative slot" true (has_error r "data");
  let r = verify ".mentry 0, f\nf:\nmst t0, 6(zero)\nmexit\n" in
  check_bool "misaligned slot" true (has_error r "data")

let test_reject_unbounded_loop () =
  let r =
    verify
      ".mentry 0, f\nf:\nhead:\naddi t0, t0, -1\nbne t0, zero, head\nmexit\n"
  in
  check_bool "not ok" false (V.ok r);
  check_bool "wcet error" true (has_error r "wcet");
  check_bool "no bound" true (V.wcet r ~entry:0 = None)

(* Clobbering a guest-visible register without parking it is reported
   (as a warning: the standard library does it deliberately in one
   place, so it must not fail verification). *)
let test_warn_clobbered_reg () =
  let r = verify ".mentry 0, f\nf:\nli s3, 7\nmexit\n" in
  check_bool "still ok" true (V.ok r);
  check_bool "clobber warning" true (has_warning r "regs")

let test_warn_uninit_mreg () =
  let r = verify ".mentry 0, f\nf:\nrmr t0, m5\nmexit\n" in
  check_bool "still ok" true (V.ok r);
  check_bool "uninit warning" true (has_warning r "mreg");
  (* the hardware-written convention registers are fine *)
  let r = verify ".mentry 0, f\nf:\nrmr t0, m30\nmexit\n" in
  check_bool "mconv read ok" false (has_warning r "mreg")

(* ------------------------------------------------------------------ *)
(* WCET soundness: random Mgen mroutines, measured vs bound, both
   steppers.  Same fixed-seed corpus pattern as the differential
   suite. *)

let corpus_size = 300

let gen_routine rand ~entry =
  let open Mgen in
  let int_small () = int (Random.State.int rand 64) in
  let bin a b =
    match Random.State.int rand 6 with
    | 0 -> add a b
    | 1 -> sub a b
    | 2 -> and_ a b
    | 3 -> or_ a b
    | 4 -> xor a b
    | _ -> asr_ a (int (Random.State.int rand 8))
  in
  let rand_expr () =
    let base = if Random.State.bool rand then param 0 else var "a" in
    if Random.State.bool rand then bin base (int_small ()) else base
  in
  let iters = 1 + Random.State.int rand 6 in
  let sets =
    List.init
      (Random.State.int rand 3)
      (fun _ -> set "b" (bin (var "b") (rand_expr ())))
  in
  let branchy =
    if Random.State.bool rand then
      [ if_ (lt (var "a") (int 32))
          [ set "a" (add (var "a") (int 1)) ]
          [ set "a" (sub (var "a") (int 1)) ] ]
    else []
  in
  routine ~name:(Printf.sprintf "r%d" entry) ~entry
    ([ let_ "a" (param 0); let_ "b" (int_small ()); let_ "i" (int iters) ]
     @ sets @ branchy
     @ [ while_ ~bound:iters
           (ne (var "i") (int 0))
           [ set "i" (sub (var "i") (int 1));
             set "a" (bin (var "a") (var "b")) ];
         set_param 0 (var "a") ])

let corpus =
  lazy
    (let rand = Random.State.make [| 0xACE; corpus_size |] in
     List.init corpus_size (fun i ->
         (i, gen_routine rand ~entry:(1 + (i mod 8)))))

let measured_max ~predecode mcode_src entry =
  let config =
    { Config.default with Config.mem_size = 64 * 1024; Config.predecode }
  in
  let m = Machine.create ~config () in
  (match Metal_asm.Asm.assemble mcode_src with
   | Error e -> Alcotest.fail (Metal_asm.Asm.error_to_string e)
   | Ok mimg ->
     (match Machine.load_mcode m mimg with
      | Ok () -> ()
      | Error e -> Alcotest.fail e));
  let c = Metal_trace.Collector.create () in
  Machine.set_probe m (Metal_trace.Collector.probe c);
  let guest =
    Printf.sprintf "start:\nli a0, 0x1234\nmenter %d\nmv s0, a0\n\
                    li a0, -7\nmenter %d\nebreak\n"
      entry entry
  in
  let img = Metal_asm.Asm.assemble_exn guest in
  (match Machine.load_image m img with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Machine.set_pc m 0;
  (match Pipeline.run m ~max_cycles:100_000 with
   | Some (Machine.Halt_ebreak _) -> ()
   | Some h -> Alcotest.fail (Machine.halted_to_string h)
   | None -> Alcotest.fail "cycle budget exhausted");
  match
    List.find_opt
      (fun r -> r.Metal_trace.Metrics.entry = entry)
      (Metal_trace.Collector.metrics c).Metal_trace.Metrics.mroutines
  with
  | Some row -> row.Metal_trace.Metrics.max_cycles
  | None -> Alcotest.fail "mroutine never invoked"

let test_corpus_wcet_soundness () =
  let failures = ref [] in
  List.iter
    (fun (i, r) ->
       let entry = 1 + (i mod 8) in
       let src =
         match Mgen.compile [ r ] with
         | Ok s -> s
         | Error e -> Alcotest.fail (Printf.sprintf "corpus[%d]: %s" i e)
       in
       let report = verify src in
       if not (V.ok report) then
         failures :=
           Printf.sprintf "corpus[%d] fails verification:\n%s" i
             (String.concat "\n"
                (List.map V.finding_to_string (V.errors report)))
           :: !failures
       else
         let bound =
           match V.wcet report ~entry with
           | Some b -> b
           | None ->
             Alcotest.fail (Printf.sprintf "corpus[%d]: no bound" i)
         in
         List.iter
           (fun predecode ->
              let got = measured_max ~predecode src entry in
              if got > bound then
                failures :=
                  Printf.sprintf
                    "corpus[%d] (predecode=%b): measured %d > bound %d" i
                    predecode got bound
                  :: !failures)
           [ true; false ])
    (Lazy.force corpus);
  match !failures with
  | [] -> ()
  | fs ->
    Alcotest.fail
      (Printf.sprintf "%d corpus WCET violations:\n%s" (List.length fs)
         (String.concat "\n" (List.rev fs)))

(* ------------------------------------------------------------------ *)
(* The standard library must verify under both configurations (same
   gate as ci.sh / tools/mverify --progs, kept here so dune runtest
   alone catches a regression). *)

let test_standard_progs () =
  let open Metal_progs in
  let images =
    [ ("privilege",
       Privilege.mcode
         { Privilege.syscall_table = 0x2000; nsyscalls = 1; kernel_pkeys = 0;
           user_pkeys = 0; fault_entry = 0x3F00 });
      ("pagetable", Pagetable.mcode { Pagetable.os_fault_entry = 0 });
      ("vmm",
       Vmm.mcode
         { Vmm.guest_base = 0x10000; guest_size = 0x8000;
           vmm_fault_entry = 0x700 });
      ("capability", Capability.mcode ());
      ("enclave", Enclave.mcode ());
      ("isolation", Isolation.mcode ());
      ("nested", Nested.mcode ());
      ("shadowstack", Shadowstack.mcode ());
      ("stm", Stm.mcode ());
      ("uintr", Uintr.mcode ()) ]
  in
  List.iter
    (fun (name, src) ->
       List.iter
         (fun (cname, config) ->
            let r = verify ~config src in
            if not (V.ok r) then
              Alcotest.fail
                (Printf.sprintf "%s (%s):\n%s" name cname
                   (String.concat "\n"
                      (List.map V.finding_to_string (V.errors r)))))
         [ ("default", Config.default); ("palcode", Config.palcode) ])
    images

let () =
  Alcotest.run "mverify"
    [
      ( "accept",
        [ Alcotest.test_case "straight line" `Quick test_accept_straight_line;
          Alcotest.test_case "bounded loop" `Quick test_accept_bounded_loop;
          Alcotest.test_case "call/ret" `Quick test_accept_call_ret;
          Alcotest.test_case "parked clobber" `Quick
            test_accept_parked_clobber ] );
      ( "reject",
        [ Alcotest.test_case "out-of-segment branch" `Quick
            test_reject_out_of_segment_branch;
          Alcotest.test_case "missing mexit" `Quick test_reject_missing_mexit;
          Alcotest.test_case "stray ret" `Quick test_reject_stray_ret;
          Alcotest.test_case "forbidden instructions" `Quick
            test_reject_forbidden;
          Alcotest.test_case "undecodable word" `Quick
            test_reject_undecodable;
          Alcotest.test_case "bad data slot" `Quick test_reject_bad_data_slot;
          Alcotest.test_case "unbounded loop" `Quick
            test_reject_unbounded_loop;
          Alcotest.test_case "clobbered register" `Quick
            test_warn_clobbered_reg;
          Alcotest.test_case "uninitialized m-reg" `Quick
            test_warn_uninit_mreg ] );
      ( "wcet",
        [ Alcotest.test_case "300-routine corpus soundness (both steppers)"
            `Quick test_corpus_wcet_soundness ] );
      ( "stdlib",
        [ Alcotest.test_case "all standard progs verify" `Quick
            test_standard_progs ] );
    ]
