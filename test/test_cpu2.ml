(* Pipeline edge cases: interrupt masking and re-arming, delegation
   corners, Metal-mode legality, interception of control flow,
   interlocks, TLB instructions under pressure, latency configs and
   counter invariants. *)

open Metal_cpu

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let boot ?(config = Config.default) ?mcode src =
  let m = Machine.create ~config () in
  let img = Metal_asm.Asm.assemble_exn src in
  (match Machine.load_image m img with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  (match mcode with
   | None -> ()
   | Some s ->
     let mi = Metal_asm.Asm.assemble_exn s in
     (match Machine.load_mcode m mi with
      | Ok () -> ()
      | Error e -> Alcotest.fail e));
  Machine.set_pc m 0;
  m

let run_to_ebreak ?(max_cycles = 200_000) m =
  match Pipeline.run m ~max_cycles with
  | Some (Machine.Halt_ebreak { pc; _ }) -> pc
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "cycle budget exhausted"

let reg m name =
  match Reg.of_string name with
  | Some r -> Machine.get_reg m r
  | None -> Alcotest.fail name

(* ------------------------------------------------------------------ *)
(* Interrupt corners *)

let tick_mcode =
  ".mentry 2, tick\ntick:\naddi s0, s0, 1\nwmr m14, t6\nli t6, 1\n\
   mcsrw int_pending, t6\nrmr t6, m14\nmexit\n"

let spin_200 = "li t0, 200\nl: addi t0, t0, -1\nbnez t0, l\nebreak\n"

let test_interrupt_masked () =
  let m = boot ~mcode:tick_mcode spin_200 in
  Machine.install_interrupt_handler m ~irq:0 ~entry:2;
  (* int_enable left at 0: the pending bit must sit there unserved. *)
  Machine.ctrl_write m Csr.timer_cmp 50;
  ignore (run_to_ebreak m);
  check_int "handler never ran" 0 (reg m "s0");
  check_bool "still pending" true
    (Metal_hw.Intc.pending m.Machine.intc land 1 = 1)

let test_interrupt_without_handler () =
  let m = boot ~mcode:tick_mcode spin_200 in
  (* enabled but no routed handler: not delivered, machine unharmed *)
  Machine.ctrl_write m Csr.int_enable 1;
  Machine.ctrl_write m Csr.timer_cmp 50;
  ignore (run_to_ebreak m);
  check_int "handler never ran" 0 (reg m "s0")

let test_timer_rearm_periodic () =
  (* The handler re-arms the timer; we expect several ticks. *)
  let mcode =
    ".mentry 2, tick\ntick:\naddi s0, s0, 1\nwmr m14, t6\nli t6, 1\n\
     mcsrw int_pending, t6\nmcsrr t6, cycle\naddi t6, t6, 100\n\
     mcsrw timer_cmp, t6\nrmr t6, m14\nmexit\n"
  in
  let m = boot ~mcode "li t0, 1000\nl: addi t0, t0, -1\nbnez t0, l\nebreak\n" in
  Machine.install_interrupt_handler m ~irq:0 ~entry:2;
  Machine.ctrl_write m Csr.int_enable 1;
  Machine.ctrl_write m Csr.timer_cmp 100;
  ignore (run_to_ebreak m);
  check_bool
    (Printf.sprintf "many ticks (%d)" (reg m "s0"))
    true
    (reg m "s0" >= 10)

let test_interrupt_resumes_precisely () =
  (* The loop's final register state must be unaffected by when the
     interrupt hits. *)
  let baseline = boot ~mcode:tick_mcode "li t0, 100\nli s1, 0\n\
                                         l: addi s1, s1, 3\naddi t0, t0, -1\n\
                                         bnez t0, l\nebreak\n" in
  ignore (run_to_ebreak baseline);
  let m = boot ~mcode:tick_mcode "li t0, 100\nli s1, 0\n\
                                  l: addi s1, s1, 3\naddi t0, t0, -1\n\
                                  bnez t0, l\nebreak\n" in
  Machine.install_interrupt_handler m ~irq:0 ~entry:2;
  Machine.ctrl_write m Csr.int_enable 1;
  Machine.ctrl_write m Csr.timer_cmp 77;
  ignore (run_to_ebreak m);
  check_int "loop result identical" (reg baseline "s1") (reg m "s1");
  check_int "interrupt did run" 1 (reg m "s0")

let test_interrupt_priority () =
  (* Two lines pending: the lowest-numbered line is delivered first. *)
  let mcode =
    ".mentry 2, h0\nh0:\nwmr m14, t6\nli t6, 1\nmcsrw int_pending, t6\n\
     rmr t6, m14\nslli s0, s0, 4\nori s0, s0, 1\nmexit\n\
     .mentry 3, h1\nh1:\nwmr m14, t6\nli t6, 2\nmcsrw int_pending, t6\n\
     rmr t6, m14\nslli s0, s0, 4\nori s0, s0, 2\nmexit\n"
  in
  let m = boot ~mcode spin_200 in
  Machine.install_interrupt_handler m ~irq:0 ~entry:2;
  Machine.install_interrupt_handler m ~irq:1 ~entry:3;
  Machine.ctrl_write m Csr.int_enable 3;
  Metal_hw.Intc.raise_irq m.Machine.intc 1;
  Metal_hw.Intc.raise_irq m.Machine.intc 0;
  ignore (run_to_ebreak m);
  (* line 0 first, then line 1: s0 = (0<<4|1)<<4|2 = 0x12 *)
  check_int "delivery order" 0x12 (reg m "s0")

let test_branch_not_taken_is_free () =
  (* Not-taken branches flow through the pipe like ALU ops. *)
  let with_branches =
    "li t0, 1\nli t1, 2\n"
    ^ String.concat "" (List.init 40 (fun _ -> "beq t0, t1, target\n"))
    ^ "target:\nebreak\n"
  in
  let with_nops =
    "li t0, 1\nli t1, 2\n"
    ^ String.concat "" (List.init 40 (fun _ -> "nop\n"))
    ^ "target:\nebreak\n"
  in
  let a = boot with_branches in
  ignore (run_to_ebreak a);
  let b = boot with_nops in
  ignore (run_to_ebreak b);
  check_int "not-taken branch = nop cost" b.Machine.stats.Stats.cycles
    a.Machine.stats.Stats.cycles

(* ------------------------------------------------------------------ *)
(* Delegation corners *)

let test_breakpoint_delegated () =
  let mcode =
    ".mentry 4, bp\nbp:\naddi s2, s2, 1\nrmr t0, m31\naddi t0, t0, 4\n\
     wmr m31, t0\nmexit\n"
  in
  let m = boot ~mcode "ebreak\nli s3, 5\nebreak\n" in
  Machine.install_handler m Cause.Breakpoint ~entry:4;
  (* first ebreak is delegated and skipped; then we remove the handler
     so the second one halts. *)
  let run () =
    match Pipeline.run m ~max_cycles:1000 with
    | Some (Machine.Halt_ebreak _) -> ()
    | Some h -> Alcotest.fail (Machine.halted_to_string h)
    | None -> Alcotest.fail "no halt"
  in
  (* disable delegation after first delivery via a bounded run *)
  let steps = ref 0 in
  while reg m "s2" = 0 && !steps < 100 do
    Pipeline.step m;
    incr steps
  done;
  Machine.ctrl_write m (Csr.exc_handler Cause.Breakpoint) 0;
  run ();
  check_int "handler saw the first ebreak" 1 (reg m "s2");
  check_int "execution continued past it" 5 (reg m "s3")

let test_misaligned_fetch_via_jalr () =
  (* jalr clears bit 0 but bit 1 makes the target misaligned. *)
  let m = boot "li t0, 0x102\njr t0\nebreak\n" in
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_fault { cause = Cause.Misaligned_fetch; _ }) -> ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

let test_fetch_beyond_memory () =
  let m = boot "li t0, 0x3FFFF0\njr t0\nebreak\n" in
  (* inside RAM but holds zeros -> illegal; beyond RAM -> access fault *)
  let m2 = boot "li t0, 0x10000000\njr t0\nebreak\n" in
  (match Pipeline.run m ~max_cycles:1000 with
   | Some (Machine.Halt_fault { cause = Cause.Illegal_instruction; _ }) -> ()
   | Some h -> Alcotest.fail (Machine.halted_to_string h)
   | None -> Alcotest.fail "no halt");
  match Pipeline.run m2 ~max_cycles:1000 with
  | Some (Machine.Halt_fault { cause = Cause.Access_fault; _ }) -> ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

(* ------------------------------------------------------------------ *)
(* Metal-mode legality and transitions *)

let test_menter_inside_mroutine_fatal () =
  let mcode = ".mentry 0, f\nf:\nmenter 0\nmexit\n" in
  let m = boot ~mcode "menter 0\nebreak\n" in
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_metal_fault { cause = Cause.Illegal_instruction; _ }) ->
    ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

let test_mexit_in_normal_mode_illegal () =
  let m = boot "mexit\nebreak\n" in
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_fault { cause = Cause.Illegal_instruction; _ }) -> ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

let test_chained_menters () =
  let mcode =
    ".mentry 0, a\na:\naddi s0, s0, 1\nmexit\n\
     .mentry 1, b\nb:\nslli s0, s0, 1\nmexit\n"
  in
  let m =
    boot ~mcode
      "li s0, 1\nmenter 0\nmenter 1\nmenter 0\nmenter 1\nmenter 0\nebreak\n"
  in
  ignore (run_to_ebreak m);
  (* ((1+1)*2+1)*2+1 = 11 *)
  check_int "chain result" 11 (reg m "s0");
  check_int "five entries" 5 m.Machine.stats.Stats.menters

let test_wmr_mexit_interlock () =
  (* wmr m31 immediately before mexit: the interlock must make the new
     return address visible. *)
  let mcode = ".mentry 0, f\nf:\nli t0, 0x100\nwmr m31, t0\nmexit\n" in
  let m =
    boot ~mcode
      "menter 0\nli s0, 1\nebreak\n.org 0x100\ntarget:\nli s0, 2\nebreak\n"
  in
  ignore (run_to_ebreak m);
  check_int "redirected return" 2 (reg m "s0");
  check_bool "interlock stalled" true
    (m.Machine.stats.Stats.interlock_stalls >= 1)

let test_rmr_after_wmr () =
  let mcode =
    ".mentry 0, f\nf:\nli t0, 0xAB\nwmr m7, t0\nrmr s0, m7\n\
     li t1, 0xCD\nwmr m7, t1\nnop\nnop\nrmr s1, m7\nmexit\n"
  in
  let m = boot ~mcode "menter 0\nebreak\n" in
  ignore (run_to_ebreak m);
  check_int "back-to-back wmr/rmr" 0xAB (reg m "s0");
  check_int "spaced wmr/rmr" 0xCD (reg m "s1")

let test_mroutine_console_mmio () =
  (* mroutines can drive devices through physst. *)
  let mcode =
    ".mentry 0, say\nsay:\nli t0, 0xF0000000\nli t1, 'M'\n\
     physst t1, 0(t0)\nmexit\n"
  in
  let m = Machine.create () in
  let console = Metal_hw.Devices.Console.create ~base:0xF0000000 in
  Metal_hw.Bus.attach m.Machine.bus (Metal_hw.Devices.Console.device console);
  let img = Metal_asm.Asm.assemble_exn "menter 0\nebreak\n" in
  (match Machine.load_image m img with Ok () -> () | Error e -> Alcotest.fail e);
  let mi = Metal_asm.Asm.assemble_exn mcode in
  (match Machine.load_mcode m mi with Ok () -> () | Error e -> Alcotest.fail e);
  Machine.set_pc m 0;
  ignore (run_to_ebreak m);
  Alcotest.(check string) "console" "M" (Metal_hw.Devices.Console.output console)

let test_mld_out_of_range_fatal () =
  let mcode = ".mentry 0, f\nf:\nli t0, 0x4000\nmld s0, 0(t0)\nmexit\n" in
  let m = boot ~mcode "menter 0\nebreak\n" in
  match Pipeline.run m ~max_cycles:1000 with
  | Some (Machine.Halt_metal_fault { cause = Cause.Access_fault; _ }) -> ()
  | Some h -> Alcotest.fail (Machine.halted_to_string h)
  | None -> Alcotest.fail "no halt"

let test_gprw_x0_ignored () =
  let mcode = ".mentry 0, f\nf:\nli t0, 0\nli t1, 99\ngprw t0, t1\nmexit\n" in
  let m = boot ~mcode "menter 0\nadd s0, zero, zero\nebreak\n" in
  ignore (run_to_ebreak m);
  check_int "x0 unchanged" 0 (reg m "s0")

(* ------------------------------------------------------------------ *)
(* Interception of control flow *)

let icept_arm m cls entry =
  Machine.ctrl_write m (Csr.icept_handler (Icept.code cls)) (entry + 1);
  Machine.ctrl_write m Csr.icept_enable 1

let test_intercept_jal_emulates_jump () =
  (* The handler performs the jump itself (target in m28, link rd in
     m26), adding instrumentation. *)
  let mcode =
    ".mentry 6, onjal\nonjal:\naddi s10, s10, 1\n\
     wmr m16, t0\nwmr m17, t1\n\
     rmr t0, m26\nbeqz t0, nolink\nrmr t1, m31\naddi t1, t1, 4\n\
     gprw t0, t1\nnolink:\nrmr t0, m28\nwmr m31, t0\n\
     rmr t0, m16\nrmr t1, m17\nmexit\n"
  in
  let m =
    boot ~mcode "li s0, 0\ncall f\nli s1, 7\nebreak\nf:\naddi s0, s0, 3\nret\n"
  in
  icept_arm m Icept.Jal_class 6;
  ignore (run_to_ebreak m);
  check_int "call+ret still work" 3 (reg m "s0");
  check_int "fallthrough ran" 7 (reg m "s1");
  check_int "jal intercepted once" 1 (reg m "s10")

let test_intercept_branch () =
  (* Emulate branches: m28 holds the taken-target; the handler decides
     from the recorded instruction whether to take it.  Here it simply
     always takes the branch — turning bne into an unconditional
     jump — to prove the redirect path works. *)
  let mcode =
    ".mentry 6, onbr\nonbr:\naddi s10, s10, 1\nwmr m16, t0\n\
     rmr t0, m28\nwmr m31, t0\nrmr t0, m16\nmexit\n"
  in
  let m =
    boot ~mcode
      "li t0, 1\nli t1, 1\nbne t0, t1, away\nli s0, 1\nebreak\n\
       away:\nli s0, 2\nebreak\n"
  in
  icept_arm m Icept.Branch_class 6;
  ignore (run_to_ebreak m);
  check_int "branch forced taken" 2 (reg m "s0");
  check_int "intercepted" 1 (reg m "s10")

let test_intercept_system_class () =
  (* Emulate ecall entirely in an mroutine: a0 <- a0 * 2 + 1. *)
  (* ebreak shares the system class, so the handler pattern-matches
     the recorded instruction word: ecall is emulated and skipped;
     ebreak un-intercepts the class and retries (the paper's "patch an
     insecure instruction at runtime", in reverse). *)
  let mcode =
    {|.mentry 6, onsys
onsys:
    wmr m16, t0
    wmr m17, t1
    rmr t0, m29
    li t1, 0x00100073
    beq t0, t1, onsys_ebreak
    slli a0, a0, 1
    addi a0, a0, 1
    rmr t0, m31
    addi t0, t0, 4
    wmr m31, t0
    rmr t0, m16
    rmr t1, m17
    mexit
onsys_ebreak:
    li t0, 5
    iceptclr t0
    rmr t0, m16
    rmr t1, m17
    mexit
|}
  in
  let m = boot ~mcode "li a0, 20\necall\nmv s0, a0\nebreak\n" in
  icept_arm m Icept.System_class 6;
  ignore (run_to_ebreak m);
  check_int "ecall emulated" 41 (reg m "s0");
  check_int "no exception taken" 0 m.Machine.stats.Stats.exceptions

(* ------------------------------------------------------------------ *)
(* TLB instructions under pressure *)

let test_tlb_instruction_pressure () =
  (* Fill more entries than the TLB holds via tlbw in a loop; the
     machine's round-robin TLB keeps the most recent N. *)
  let mcode =
    {|.mentry 0, fill
fill:
    # a0 = count; insert identity mappings for pages 0..count-1
    li t0, 0
floop:
    slli t1, t0, 12
    slli t2, t0, 12
    ori t2, t2, 0xE
    tlbw t1, t2
    addi t0, t0, 1
    bne t0, a0, floop
    mexit
|}
  in
  let m = boot ~mcode "li a0, 40\nmenter 0\nebreak\n" in
  ignore (run_to_ebreak m);
  let entries = Metal_hw.Tlb.entries m.Machine.tlb in
  check_int "capacity bounded" (Metal_hw.Tlb.capacity m.Machine.tlb)
    (List.length entries);
  (* The oldest pages were evicted round-robin; the newest survive. *)
  check_bool "newest present" true
    (Metal_hw.Tlb.lookup m.Machine.tlb ~asid:0 ~vpn:39 <> None);
  check_bool "oldest evicted" true
    (Metal_hw.Tlb.lookup m.Machine.tlb ~asid:0 ~vpn:0 = None)

let test_tlbflush_selectivity () =
  let mcode =
    {|.mentry 0, setup
setup:
    li t0, 0x1014          # vpn 1, asid 1
    li t1, 0x100E
    tlbw t0, t1
    li t0, 0x2024          # vpn 2, asid 2
    li t1, 0x200E
    tlbw t0, t1
    li t0, 0x3001          # vpn 3, global
    li t1, 0x300E
    tlbw t0, t1
    li t2, 1
    tlbflush t2            # drop asid 1 only
    mexit
|}
  in
  let m = boot ~mcode "menter 0\nebreak\n" in
  ignore (run_to_ebreak m);
  check_bool "asid1 gone" true
    (Metal_hw.Tlb.lookup m.Machine.tlb ~asid:1 ~vpn:1 = None);
  check_bool "asid2 kept" true
    (Metal_hw.Tlb.lookup m.Machine.tlb ~asid:2 ~vpn:2 <> None);
  check_bool "global kept" true
    (Metal_hw.Tlb.lookup m.Machine.tlb ~asid:7 ~vpn:3 <> None)

(* ------------------------------------------------------------------ *)
(* Latency configuration and counters *)

let test_mem_latency_scales () =
  let prog =
    "li t0, 0x1000\nli t1, 50\nl:\nlw t2, 0(t0)\naddi t1, t1, -1\n\
     bnez t1, l\nebreak\n"
  in
  let fast = boot prog in
  ignore (run_to_ebreak fast);
  let slow =
    boot ~config:{ Config.default with Config.mem_latency = 5 } prog
  in
  ignore (run_to_ebreak slow);
  let delta =
    slow.Machine.stats.Stats.cycles - fast.Machine.stats.Stats.cycles
  in
  (* 50 loads x 5 extra cycles (plus the fetch path is unaffected:
     instruction fetches are not data accesses). *)
  check_int "memory latency charged per access" 250 delta;
  check_int "stall accounting" 250 slow.Machine.stats.Stats.mem_stall_cycles

let test_counter_invariants () =
  let m =
    boot "li t0, 30\nl:\naddi t0, t0, -1\nbnez t0, l\nebreak\n"
  in
  ignore (run_to_ebreak m);
  let s = m.Machine.stats in
  check_bool "instructions <= cycles" true
    (s.Stats.instructions <= s.Stats.cycles);
  check_bool "ipc sane" true
    (float_of_int s.Stats.instructions /. float_of_int s.Stats.cycles > 0.4);
  (* ctrl counters agree with stats *)
  check_int "cycle csr" s.Stats.cycles (Machine.ctrl_read m Csr.cycle);
  check_int "instret csr" s.Stats.instructions
    (Machine.ctrl_read m Csr.instret)

let test_pkey_fetch_unaffected () =
  (* Page keys gate loads/stores, not execution. *)
  let m = Machine.create () in
  (match Metal_progs.Pagetable.install m
           { Metal_progs.Pagetable.os_fault_entry = 0 } with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  let alloc = Metal_kernel.Frame_alloc.create ~base:0x100000 ~limit:0x200000 in
  let mem = Metal_hw.Bus.memory m.Machine.bus in
  let pt = Metal_kernel.Page_table.create ~mem ~alloc in
  (* code page with pkey 3, read+write disabled for key 3 *)
  (match Metal_kernel.Page_table.map pt ~vaddr:0 ~paddr:0 ~pkey:3
           Metal_kernel.Page_table.rx with
   | Ok () -> ()
   | Error e -> Alcotest.fail e);
  Metal_progs.Pagetable.set_root m (Metal_kernel.Page_table.root pt);
  let img = Metal_asm.Asm.assemble_exn "li s0, 77\nebreak\n" in
  (match Machine.load_image m img with Ok () -> () | Error e -> Alcotest.fail e);
  Machine.set_pc m 0;
  Machine.ctrl_write m Csr.pkey_perms 0xC0;  (* key 3 rd/wr disabled *)
  Machine.ctrl_write m Csr.paging 1;
  ignore (run_to_ebreak m);
  check_int "executed despite disabled key" 77 (reg m "s0")

(* ------------------------------------------------------------------ *)
(* Cache timing and MRAM bypass (Section 2 / Section 4) *)

let icache_cfg =
  { Metal_hw.Cache.lines = 16; line_bytes = 16; miss_penalty = 10 }

let test_icache_warm_vs_cold () =
  let config = { Config.default with Config.icache = Some icache_cfg } in
  (* A loop body executes the same lines repeatedly: only the first
     iteration pays miss penalties. *)
  let m =
    boot ~config "li t0, 50\nl:\naddi t1, t1, 1\naddi t0, t0, -1\n\
                  bnez t0, l\nebreak\n"
  in
  ignore (run_to_ebreak m);
  let c = Option.get m.Machine.icache in
  check_bool "misses bounded by footprint" true (Metal_hw.Cache.misses c <= 3);
  check_bool "lots of hits" true (Metal_hw.Cache.hits c > 100)

let test_dedicated_mram_bypasses_icache () =
  (* Running a long mroutine must not touch the instruction cache at
     all: "Accesses to the RAM do not alter processor caches". *)
  let config = { Config.default with Config.icache = Some icache_cfg } in
  let body = String.concat "" (List.init 40 (fun _ -> "addi t1, t1, 1\n")) in
  let m = boot ~config ~mcode:(".mentry 0, f\nf:\n" ^ body ^ "mexit\n")
      "menter 0\nebreak\n" in
  let c = Option.get m.Machine.icache in
  ignore (run_to_ebreak m);
  let resident = Metal_hw.Cache.resident_lines c in
  (* Only the two normal-mode instructions' line(s) are resident. *)
  check_bool
    (Printf.sprintf "mroutine left no cache footprint (%d lines)" resident)
    true (resident <= 2)

let test_main_memory_mroutines_pollute_icache () =
  let config =
    { Config.default with
      Config.icache = Some icache_cfg;
      Config.mram_backing = Config.Main_memory { fetch_penalty = 10 } }
  in
  let body = String.concat "" (List.init 40 (fun _ -> "addi t1, t1, 1\n")) in
  let m = boot ~config ~mcode:(".mentry 0, f\nf:\n" ^ body ^ "mexit\n")
      "menter 0\nebreak\n" in
  let c = Option.get m.Machine.icache in
  ignore (run_to_ebreak m);
  check_bool "PALcode-style routine fills the cache" true
    (Metal_hw.Cache.resident_lines c > 8)

let test_dcache_hit_miss () =
  let config =
    { Config.default with
      Config.dcache =
        Some { Metal_hw.Cache.lines = 8; line_bytes = 16; miss_penalty = 7 } }
  in
  let m =
    boot ~config
      "li t0, 0x1000\nli t1, 20\nl:\nlw t2, 0(t0)\naddi t1, t1, -1\n\
       bnez t1, l\nebreak\n"
  in
  ignore (run_to_ebreak m);
  let c = Option.get m.Machine.dcache in
  check_int "one data miss" 1 (Metal_hw.Cache.misses c);
  check_int "rest hit" 19 (Metal_hw.Cache.hits c);
  check_int "stall accounting" 7 m.Machine.stats.Stats.mem_stall_cycles

(* ------------------------------------------------------------------ *)
(* Edge-case regressions: segment-boundary mexit, interception under a
   load-use stall, and MRAM reconfiguration racing the predecode
   cache. *)

(* [mexit] as the very last instruction of the MRAM code segment.  The
   fetch unit walks sequentially past the routine before the mexit
   redirect resolves; that speculative fetch lands outside the segment
   and must be squashed, not turned into a fetch fault.  Exercised
   under both transition styles and both steppers. *)
let test_mexit_at_mram_segment_end () =
  let code_bytes = Config.default.Config.mram_code_words * 4 in
  let tail_org = code_bytes - 8 in
  let mcode =
    Printf.sprintf ".org %d\n.mentry 1, tail\ntail:\naddi s5, s5, 1\nmexit\n"
      tail_org
  in
  let run ~transition ~predecode =
    let config = { Config.default with Config.transition; predecode } in
    let m = boot ~config ~mcode "menter 1\nmenter 1\nebreak\n" in
    ignore (run_to_ebreak m);
    check_int "routine ran twice" 2 (reg m "s5");
    m.Machine.stats.Stats.cycles
  in
  List.iter
    (fun transition ->
       let fast = run ~transition ~predecode:true in
       let slow = run ~transition ~predecode:false in
       check_int "predecode timing-invariant at segment end" slow fast)
    [ Config.Fast_replacement; Config.Trap_flush ]

(* An intercepted store whose value operand is produced by the load
   directly before it.  Operand capture (m27/m28) happens at decode, so
   the interception interlock must hold the store until the load writes
   back — a stale capture would hand the handler the old register
   value. *)
let test_intercept_during_load_use_stall () =
  let mcode =
    ".mentry 6, onst\nonst:\naddi s10, s10, 1\nwmr m16, t0\nwmr m17, t1\n\
     rmr t0, m28\nrmr t1, m27\nphysst t1, 0(t0)\n\
     rmr t0, m31\naddi t0, t0, 4\nwmr m31, t0\n\
     rmr t0, m16\nrmr t1, m17\nmexit\n"
  in
  let src =
    "li t3, 0x1000\nli t0, 0xBEE\nsw t0, 0(t3)\nlw t1, 0(t3)\n\
     sw t1, 4(t3)\nlw s0, 4(t3)\nebreak\n"
  in
  let run ~predecode =
    let config = { Config.default with Config.predecode } in
    let m = boot ~config ~mcode src in
    icept_arm m Icept.Store_class 6;
    ignore (run_to_ebreak m);
    check_int "loaded value captured, not stale" 0xBEE (reg m "s0");
    check_int "both stores intercepted" 2 (reg m "s10");
    check_bool "interception interlock engaged" true
      (m.Machine.stats.Stats.interlock_stalls >= 1);
    m.Machine.stats.Stats.cycles
  in
  check_int "predecode timing-invariant under interlock"
    (run ~predecode:false) (run ~predecode:true)

(* Host-side MRAM reconfiguration between runs: the predecode cache
   holds Metal-mode entries keyed by the MRAM version, so new code at
   an already-executed offset must be picked up, never served stale.
   Covers both reconfiguration paths ([load_image] overwrite and
   [set_entry] retarget). *)
let test_mram_reconfig_vs_cached_fetch () =
  let resume m =
    m.Machine.halted <- None;
    Machine.set_pc m 0;
    ignore (run_to_ebreak m)
  in
  let overwrite predecode =
    let config = { Config.default with Config.predecode } in
    let m =
      boot ~config ~mcode:".mentry 0, f\nf:\nli s0, 111\nmexit\n"
        "menter 0\nebreak\n"
    in
    ignore (run_to_ebreak m);
    check_int "original routine ran" 111 (reg m "s0");
    let v0 = Metal_hw.Mram.version m.Machine.mram in
    let patch = Metal_asm.Asm.assemble_exn "li s0, 222\nmexit\n" in
    (match Metal_hw.Mram.load_image m.Machine.mram patch with
     | Ok () -> ()
     | Error e -> Alcotest.fail e);
    check_bool "load_image bumps version" true
      (Metal_hw.Mram.version m.Machine.mram > v0);
    resume m;
    reg m "s0"
  in
  check_int "overwritten code executes (fast)" 222 (overwrite true);
  check_int "overwritten code executes (oracle)" 222 (overwrite false);
  (* Additive path: registering a new entry bumps the version too, so
     the already-predecoded entry-0 code must refill (and still run
     right) and the fresh entry must be reachable. *)
  let extend predecode =
    let config = { Config.default with Config.predecode } in
    let m =
      boot ~config ~mcode:".mentry 0, f\nf:\nli s0, 111\nmexit\n"
        "menter 0\nebreak\n"
    in
    ignore (run_to_ebreak m);
    check_int "entry 0 ran" 111 (reg m "s0");
    let v0 = Metal_hw.Mram.version m.Machine.mram in
    let extra =
      Metal_asm.Asm.assemble_exn
        ".org 0x100\n.mentry 1, g\ng:\naddi s0, s0, 1\nmexit\n"
    in
    (match Metal_hw.Mram.load_image m.Machine.mram extra with
     | Ok () -> ()
     | Error e -> Alcotest.fail e);
    check_bool "additive load_image bumps version" true
      (Metal_hw.Mram.version m.Machine.mram > v0);
    let prog2 = Metal_asm.Asm.assemble_exn ~origin:0x200
        "menter 0\nmenter 1\nebreak\n" in
    (match Machine.load_image m prog2 with
     | Ok () -> ()
     | Error e -> Alcotest.fail e);
    m.Machine.halted <- None;
    Machine.set_pc m 0x200;
    ignore (run_to_ebreak m);
    reg m "s0"
  in
  check_int "old entry refills, new entry runs (fast)" 112 (extend true);
  check_int "old entry refills, new entry runs (oracle)" 112 (extend false)

let () =
  Alcotest.run "cpu-edge"
    [
      ( "interrupts",
        [ Alcotest.test_case "masked" `Quick test_interrupt_masked;
          Alcotest.test_case "no handler" `Quick test_interrupt_without_handler;
          Alcotest.test_case "periodic re-arm" `Quick test_timer_rearm_periodic;
          Alcotest.test_case "precise resume" `Quick
            test_interrupt_resumes_precisely;
          Alcotest.test_case "priority order" `Quick test_interrupt_priority ] );
      ( "delegation",
        [ Alcotest.test_case "breakpoint" `Quick test_breakpoint_delegated;
          Alcotest.test_case "misaligned jalr" `Quick
            test_misaligned_fetch_via_jalr;
          Alcotest.test_case "bad fetch" `Quick test_fetch_beyond_memory ] );
      ( "metal-mode",
        [ Alcotest.test_case "nested menter fatal" `Quick
            test_menter_inside_mroutine_fatal;
          Alcotest.test_case "mexit illegal in normal" `Quick
            test_mexit_in_normal_mode_illegal;
          Alcotest.test_case "chained menters" `Quick test_chained_menters;
          Alcotest.test_case "wmr/mexit interlock" `Quick
            test_wmr_mexit_interlock;
          Alcotest.test_case "rmr after wmr" `Quick test_rmr_after_wmr;
          Alcotest.test_case "mmio from metal" `Quick test_mroutine_console_mmio;
          Alcotest.test_case "mld bounds fatal" `Quick
            test_mld_out_of_range_fatal;
          Alcotest.test_case "gprw x0" `Quick test_gprw_x0_ignored ] );
      ( "interception",
        [ Alcotest.test_case "jal" `Quick test_intercept_jal_emulates_jump;
          Alcotest.test_case "branch" `Quick test_intercept_branch;
          Alcotest.test_case "system" `Quick test_intercept_system_class ] );
      ( "tlb",
        [ Alcotest.test_case "pressure" `Quick test_tlb_instruction_pressure;
          Alcotest.test_case "selective flush" `Quick test_tlbflush_selectivity ] );
      ( "cache",
        [ Alcotest.test_case "icache warm/cold" `Quick test_icache_warm_vs_cold;
          Alcotest.test_case "dedicated MRAM bypass" `Quick
            test_dedicated_mram_bypasses_icache;
          Alcotest.test_case "main-memory pollution" `Quick
            test_main_memory_mroutines_pollute_icache;
          Alcotest.test_case "dcache" `Quick test_dcache_hit_miss ] );
      ( "timing",
        [ Alcotest.test_case "memory latency" `Quick test_mem_latency_scales;
          Alcotest.test_case "not-taken branches" `Quick
            test_branch_not_taken_is_free;
          Alcotest.test_case "counters" `Quick test_counter_invariants;
          Alcotest.test_case "pkey fetch" `Quick test_pkey_fetch_unaffected ] );
      ( "edge-regressions",
        [ Alcotest.test_case "mexit at MRAM segment end" `Quick
            test_mexit_at_mram_segment_end;
          Alcotest.test_case "intercept during load-use stall" `Quick
            test_intercept_during_load_use_stall;
          Alcotest.test_case "MRAM reconfig vs cached fetch" `Quick
            test_mram_reconfig_vs_cached_fetch ] );
    ]
